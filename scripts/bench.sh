#!/usr/bin/env bash
# bench.sh — run the perf-trajectory benchmark suite and emit a JSON
# snapshot (BENCH_<git-sha>.json by default) so successive PRs can track
# wall-clock AND allocation numbers for the hot paths: forest fit, batch
# prediction, the ask/tell loop, and the end-to-end Listing 1 optimization
# benchmark. Compare two snapshots with scripts/bench_compare.sh.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_$(git rev-parse --short HEAD 2>/dev/null || echo local).json}"
benchtime="${BENCHTIME:-3x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run() { # run <package> <bench regexp>
    go test -run '^$' -bench "$2" -benchtime "$benchtime" -benchmem "$1" 2>/dev/null |
        grep -E '^Benchmark' || true
}

{
    run ./internal/surrogate/ 'BenchmarkForestFit|BenchmarkPredictBatch'
    run ./internal/bo/ 'BenchmarkAskLoop'
    run ./internal/scenario/ 'BenchmarkSuite|BenchmarkNetworkPath|BenchmarkFaultedCampaign|BenchmarkResilientCampaign'
    run ./internal/plantnet/ 'BenchmarkShardedScale'
    run . 'BenchmarkTable3Optimization|BenchmarkTable2Baseline'
} >"$tmp"

# Convert benchmark lines to JSON: the name, iterations, and each of the
# `<value> <unit>` pairs we track (ns/op, B/op, allocs/op, and the campaign
# benchmarks' scenario count, so readers can price campaigns per scenario).
{
    printf '{\n'
    printf '  "git": "%s",\n' "$(git rev-parse HEAD 2>/dev/null || echo unknown)"
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "gomaxprocs": %s,\n' "${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}"
    printf '  "benchmarks": [\n'
    awk '
        {
            name = $1
            sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
            iters = $2
            ns = "null"; bytes = "null"; allocs = "null"; scenarios = "null"
            for (i = 3; i < NF; i++) {
                if ($(i+1) == "ns/op") ns = $i
                else if ($(i+1) == "B/op") bytes = $i
                else if ($(i+1) == "allocs/op") allocs = $i
                else if ($(i+1) == "scenarios") scenarios = $i
            }
            if (n++) printf ",\n"
            printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
                name, iters, ns, bytes, allocs
            if (scenarios != "null") printf ", \"scenarios\": %s", scenarios
            printf "}"
        }
        END { if (n) printf "\n" }
    ' "$tmp"
    printf '  ]\n}\n'
} >"$out"

echo "wrote $out"
cat "$out"
