#!/usr/bin/env bash
# bench.sh — run the perf-trajectory benchmark suite and emit a JSON
# snapshot (BENCH_<git-sha>.json by default) so successive PRs can track
# wall-clock numbers for the hot paths: forest fit, batch prediction, the
# ask/tell loop, and the end-to-end Listing 1 optimization benchmark.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_$(git rev-parse --short HEAD 2>/dev/null || echo local).json}"
benchtime="${BENCHTIME:-3x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run() { # run <package> <bench regexp>
    go test -run '^$' -bench "$2" -benchtime "$benchtime" "$1" 2>/dev/null |
        grep -E '^Benchmark' || true
}

{
    run ./internal/surrogate/ 'BenchmarkForestFit|BenchmarkPredictBatch'
    run ./internal/bo/ 'BenchmarkAskLoop'
    run . 'BenchmarkTable3Optimization|BenchmarkTable2Baseline'
} >"$tmp"

# Convert `BenchmarkName<tab>N<tab>ns/op [extra metrics]` lines to JSON.
{
    printf '{\n'
    printf '  "git": "%s",\n' "$(git rev-parse HEAD 2>/dev/null || echo unknown)"
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "gomaxprocs": %s,\n' "${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}"
    printf '  "benchmarks": [\n'
    first=1
    while read -r name iters ns _unit rest; do
        [ -n "$name" ] || continue
        [ $first -eq 1 ] || printf ',\n'
        first=0
        printf '    {"name": "%s", "iterations": %s, "ns_per_op": %s}' \
            "$name" "$iters" "$ns"
    done <"$tmp"
    printf '\n  ]\n}\n'
} >"$out"

echo "wrote $out"
cat "$out"
