#!/usr/bin/env bash
# bench_compare.sh — diff two BENCH_<sha>.json snapshots (scripts/bench.sh
# output) and flag regressions: any benchmark whose ns_per_op or
# allocs_per_op grew by more than THRESHOLD (default 10%) fails the check.
#
# Usage: scripts/bench_compare.sh OLD.json NEW.json
#        THRESHOLD=0.25 scripts/bench_compare.sh OLD.json NEW.json
#
# Exit status: 0 when no regression, 1 when at least one metric regressed.
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 OLD.json NEW.json" >&2
    exit 2
fi
old="$1" new="$2"
threshold="${THRESHOLD:-0.10}"

# Snapshots are written one benchmark per line, so a line-oriented parse is
# reliable. Pre-PR-3 snapshots lack the memory fields; those read as null
# and their allocation check is skipped. Campaign benchmarks carry a
# "scenarios" count; when BOTH snapshots have one, ns/op and allocs/op are
# normalized per scenario before gating, so a suite that grew from 9 to 14
# scenarios is priced by per-scenario cost instead of reading as a
# regression.
extract() {
    awk '
        /"name":/ {
            name = ""; ns = "null"; bytes = "null"; allocs = "null"; scn = "null"
            if (match($0, /"name": "[^"]*"/))            name = substr($0, RSTART + 9, RLENGTH - 10)
            if (match($0, /"ns_per_op": [0-9.e+-]+/))     ns = substr($0, RSTART + 13, RLENGTH - 13)
            if (match($0, /"bytes_per_op": [0-9.e+-]+/))  bytes = substr($0, RSTART + 16, RLENGTH - 16)
            if (match($0, /"allocs_per_op": [0-9.e+-]+/)) allocs = substr($0, RSTART + 17, RLENGTH - 17)
            if (match($0, /"scenarios": [0-9.e+-]+/))     scn = substr($0, RSTART + 13, RLENGTH - 13)
            if (name != "") print name, ns, bytes, allocs, scn
        }' "$1"
}

extract "$old" >/tmp/bench_old.$$
extract "$new" >/tmp/bench_new.$$
trap 'rm -f /tmp/bench_old.$$ /tmp/bench_new.$$' EXIT

# A benchmark present in the old snapshot but absent from the new one is a
# failure, not a silent skip — a renamed or no-longer-emitted benchmark must
# not let the gate go green while checking nothing.
awk -v thr="$threshold" '
    function pct(o, n) { return (n - o) / o * 100 }
    function check(name, metric, o, n) {
        if (o == "null" || n == "null") return
        if (o + 0 == 0) {
            # Zero baseline: any growth is an infinite-percent regression
            # (e.g. a 0-allocs/op path that starts allocating).
            if (n + 0 > 0) {
                printf "%-45s %-10s %14.0f -> %14.0f      +inf  REGRESSION\n", name, metric, o, n
                bad++
            }
            return
        }
        d = pct(o + 0, n + 0)
        mark = " "
        if (d > thr * 100) { mark = "REGRESSION"; bad++ }
        else if (d < -5)   { mark = "improved" }
        printf "%-45s %-10s %14.0f -> %14.0f  %+7.1f%%  %s\n", name, metric, o, n, d, mark
    }
    function norm(v, scn) {
        if (v == "null" || scn == "null" || scn + 0 == 0) return v
        return v / scn
    }
    NR == FNR {
        order[++nOld] = $1
        oldNs[$1] = $2; oldAllocs[$1] = $4; oldScn[$1] = $5
        next
    }
    {
        newSeen[$1] = 1
        if (!($1 in oldNs)) { printf "%-45s new benchmark (no baseline)\n", $1; next }
        newNs[$1] = $2; newAllocs[$1] = $4; newScn[$1] = $5
    }
    END {
        matched = 0
        for (i = 1; i <= nOld; i++) {
            name = order[i]
            if (!(name in newSeen)) {
                printf "%-45s MISSING from new snapshot\n", name
                bad++
                continue
            }
            matched++
            # Per-scenario normalization only when both sides carry a count;
            # a count on one side only falls back to the raw comparison.
            if (oldScn[name] != "null" && newScn[name] != "null") {
                check(name, "ns/scn", norm(oldNs[name], oldScn[name]), norm(newNs[name], newScn[name]))
                check(name, "allocs/scn", norm(oldAllocs[name], oldScn[name]), norm(newAllocs[name], newScn[name]))
                continue
            }
            check(name, "ns/op", oldNs[name], newNs[name])
            check(name, "allocs/op", oldAllocs[name], newAllocs[name])
        }
        if (matched == 0) { print "no benchmarks in common — nothing was checked"; exit 1 }
        if (bad) { printf "\n%d metric(s) regressed or went missing (threshold %.0f%%)\n", bad, thr * 100; exit 1 }
        print "\nno regressions"
    }
' /tmp/bench_old.$$ /tmp/bench_new.$$
