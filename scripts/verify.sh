#!/usr/bin/env bash
# verify.sh — the tier-1 verification recipe (see ROADMAP.md). Beyond the
# build and full test suite, it vets the tree, runs simlint (the custom
# static-analysis gate machine-enforcing the determinism / RNG-discipline /
# zero-alloc / kernel-synchronization / checkpoint-schema standing
# invariants), race-checks the packages with goroutine-parallel paths
# (surrogate worker pool, bo batch scoring, plantnet repeated-run pool —
# including the simulated-network link, fault-schedule, resilience-policy,
# and piecewise-arrival code it drives — scenario suite runner, tune's
# concurrent trial executor, space transforms it exercises), and runs the
# allocation-regression gate: the kernel's steady-state zero-alloc
# contracts (sim/alloc_test.go) must hold, or the freelist/calendar work of
# PR 3 has silently rotted. For wall-clock trends, diff bench snapshots
# with scripts/bench_compare.sh (flags >10% ns/op or allocs/op growth
# between two scripts/bench.sh outputs) and render the committed history
# with scripts/bench_report.sh.
#
# Each gate's wall-clock time is reported at exit (also on failure) so a
# creeping gate shows up in CI logs before it becomes the bottleneck. When
# the simlint gate fails, its findings are re-emitted as JSON to
# $SIMLINT_JSON (default simlint-findings.json) for CI artifact upload.
set -euo pipefail
cd "$(dirname "$0")/.."

gate_names=()
gate_secs=()

timings() {
    local i
    echo
    echo "gate timings:"
    for i in "${!gate_names[@]}"; do
        printf '  %-24s %4ss\n' "${gate_names[$i]}" "${gate_secs[$i]}"
    done
}
trap timings EXIT

gate() {
    local name="$1" start rc=0
    shift
    start=$SECONDS
    "$@" || rc=$?
    gate_names+=("$name")
    gate_secs+=($((SECONDS - start)))
    if [ "$rc" -ne 0 ]; then
        echo "verify: gate '$name' failed (exit $rc)" >&2
        exit "$rc"
    fi
}

# Static-analysis gate: exits 1 on any unsuppressed finding. On failure the
# findings are preserved machine-readably for the CI artifact step.
simlint_gate() {
    if ! go run ./cmd/simlint; then
        local out="${SIMLINT_JSON:-simlint-findings.json}"
        go run ./cmd/simlint -json >"$out" 2>/dev/null || true
        echo "simlint: findings written to $out" >&2
        return 1
    fi
}

race_pkgs=(
    ./internal/surrogate/... ./internal/bo/... ./internal/fault/...
    ./internal/resilience/... ./internal/plantnet/... ./internal/scenario/...
    ./internal/sim/... ./internal/workload/... ./internal/tune/...
    ./internal/space/...
)

gate build go build ./...
gate vet go vet ./...
gate simlint simlint_gate
gate test go test ./...
gate race go test -race "${race_pkgs[@]}"
# Chaos gate: the faulted and policied campaign paths — churn/crash/flap
# hooks, resilience checkpoints (retry/hedge/breaker/failover), and the
# availability sweep — re-run under the race detector with a real
# (uncached) pass, since these exercise the parallel suite runner and
# repeated-run pool against mutated engine state.
gate chaos-race go test -race -count=1 -run 'Fault|Chaos|Resilien|Availability|Flap|Crash|Churn' \
    ./internal/plantnet/ ./internal/scenario/
# Allocation-regression gate: -count=1 forces a real (uncached) run. The
# sharded coordinator's steady-state window loop carries the same contract
# (TestZeroAllocShardWindows).
gate zero-alloc go test -run 'TestZeroAlloc' -count=1 ./internal/sim/ ./internal/sim/shard/
echo "verify OK"
