#!/usr/bin/env bash
# verify.sh — the tier-1 verification recipe (see ROADMAP.md). Beyond the
# build and full test suite, it vets the tree, runs simlint (the custom
# static-analysis gate machine-enforcing the determinism / RNG-discipline /
# zero-alloc standing invariants), race-checks the packages with
# goroutine-parallel paths (surrogate worker pool, bo batch scoring,
# plantnet repeated-run pool — including the simulated-network link,
# fault-schedule, resilience-policy, and piecewise-arrival code it drives — scenario suite
# runner, tune's
# concurrent trial executor, space transforms it exercises), and runs the
# allocation-regression gate: the
# kernel's steady-state zero-alloc contracts (sim/alloc_test.go) must hold,
# or the freelist/calendar work of PR 3 has silently rotted. For wall-clock
# trends, diff bench snapshots with scripts/bench_compare.sh (flags >10%
# ns/op or allocs/op growth between two scripts/bench.sh outputs).
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# Static-analysis gate: exits 1 on any unsuppressed finding.
go run ./cmd/simlint
go test ./...
go test -race ./internal/surrogate/... ./internal/bo/... ./internal/fault/... ./internal/resilience/... ./internal/plantnet/... ./internal/scenario/... ./internal/sim/... ./internal/workload/... ./internal/tune/... ./internal/space/...
# Chaos gate: the faulted and policied campaign paths — churn/crash/flap
# hooks, resilience checkpoints (retry/hedge/breaker/failover), and the
# availability sweep — re-run under the race detector with a real
# (uncached) pass, since these exercise the parallel suite runner and
# repeated-run pool against mutated engine state.
go test -race -count=1 -run 'Fault|Chaos|Resilien|Availability|Flap|Crash|Churn' \
    ./internal/plantnet/ ./internal/scenario/
# Allocation-regression gate: -count=1 forces a real (uncached) run.
go test -run 'TestZeroAlloc' -count=1 ./internal/sim/
echo "verify OK"
