// Sensitivity analysis (Section IV-C): refine the preliminary optimum with
// One-at-a-time sweeps of the extract and simsearch pools, then rank all
// four pools with Morris screening.
//
//	go run ./examples/sensitivity [-duration 300]
package main

import (
	"flag"
	"fmt"
	"log"

	"e2clab/internal/plantnet"
	"e2clab/internal/sensitivity"
	"e2clab/internal/space"
)

func main() {
	duration := flag.Float64("duration", 300, "seconds of engine time per evaluation")
	flag.Parse()

	p := space.PlantNetProblem()
	respTime := func(x []float64) float64 {
		m, err := plantnet.Run(plantnet.RunOptions{
			Pools: plantnet.FromVector(x), Clients: 80, Duration: *duration, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		return m.UserResponseTime.Mean
	}

	// OAT: extract ±2 around the preliminary optimum (the paper's Fig. 9).
	center := plantnet.PreliminaryOptimum.Vector()
	sweep, err := sensitivity.OAT(p.Space, center, "extract", 2, respTime)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("OAT sweep of the extract pool (preliminary optimum center):")
	for _, pt := range sweep.Points {
		marker := ""
		if pt.Value == sweep.Best().Value {
			marker = "   <- best"
		}
		fmt.Printf("  extract=%d  user_resp_time=%.3f s%s\n", int(pt.Value), pt.Y, marker)
	}
	fmt.Printf("effect size (max-min): %.3f s\n\n", sweep.Range())

	// Sequential refinement (extract then simsearch), as the paper derives
	// the refined optimum.
	refined, _, err := sensitivity.Refine(p.Space, center, []string{"extract", "simsearch"}, 2, respTime)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refined optimum: %s (paper: extract 7 -> 6)\n\n", plantnet.FromVector(refined))

	// Morris screening ranks the four pools by global influence.
	fmt.Println("Morris elementary-effects screening (10 trajectories):")
	morris, err := sensitivity.Morris(p.Space, 10, 4, 3, respTime)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range morris {
		fmt.Printf("  %-10s mu*=%.4f  sigma=%.4f\n", r.Dimension, r.MuStar, r.Sigma)
	}
}
