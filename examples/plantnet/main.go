// Pl@ntNet end-to-end reproduction of the paper's Listing 1: the
// user-defined optimization that tunes the Identification Engine's thread
// pools on the (simulated) Grid'5000 testbed.
//
// The Go equivalent of the paper's Python:
//
//	algo = SkOptSearch(Optimizer(base_estimator='ET', n_initial_points=45,
//	                             initial_point_generator="lhs",
//	                             acq_func="gp_hedge"))
//	algo = ConcurrencyLimiter(algo, max_concurrent=2)
//	scheduler = AsyncHyperBandScheduler()
//	tune.run(run_objective, metric="user_resp_time", mode="min",
//	         name="plantnet_engine", search_alg=algo, scheduler=scheduler,
//	         num_samples=10, config={http/download/simsearch: 20..60,
//	                                  extract: 3..9})
//
//	go run ./examples/plantnet [-duration 300] [-samples 24]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"e2clab/internal/core"
	"e2clab/internal/plantnet"
	"e2clab/internal/space"
)

func main() {
	duration := flag.Float64("duration", 300, "seconds of engine time per evaluation (paper: 1380)")
	samples := flag.Int("samples", 24, "configurations to evaluate (Listing 1 used 10 after 45 initial points)")
	flag.Parse()

	// The scenario: engine on chifflot (GPU nodes), deployed through the
	// E2Clab service abstraction.
	registry := core.NewRegistry()
	svc := &core.PlantNetService{}
	if err := registry.Register(svc); err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "plantnet-opt-*")
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := core.NewManager(core.Spec{
		Problem: space.PlantNetProblem(), // Equation 2: bounds ±50% of Table II
		Search: core.SearchSpec{
			Algorithm:             "skopt",
			BaseEstimator:         "ET",
			NInitialPoints:        10,
			InitialPointGenerator: "lhs",
			AcqFunc:               "gp_hedge",
		},
		NumSamples:    *samples,
		MaxConcurrent: 2, // ConcurrencyLimiter(max_concurrent=2)
		UseASHA:       true,
		Repeat:        1,
		Duration:      *duration,
		Seed:          42,
		ArchiveDir:    dir,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("optimizing Pl@ntNet thread pools (workload: 80 simultaneous requests)...")
	res, err := mgr.Optimize(core.PlantNetObjective(80, 42))
	if err != nil {
		log.Fatal(err)
	}

	found := plantnet.FromVector(res.Best)
	fmt.Printf("\nfound configuration:    %s\n", found)
	fmt.Printf("user response time:     %.3f s\n", res.BestY)

	// Compare with the production baseline, as Table III does.
	base, err := plantnet.RunRepeated(plantnet.RunOptions{
		Pools: plantnet.Baseline, Clients: 80, Duration: *duration, Seed: 42}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (%s): %.3f s\n", plantnet.Baseline, base.UserResponseTime.Mean)
	gain := (base.UserResponseTime.Mean - res.BestY) / base.UserResponseTime.Mean * 100
	fmt.Printf("improvement:            %.1f%% (paper: 7%%)\n", gain)
	fmt.Printf("HTTP pool (simultaneous users served): %d vs %d (+%.0f%%)\n",
		found.HTTP, plantnet.Baseline.HTTP,
		float64(found.HTTP-plantnet.Baseline.HTTP)/float64(plantnet.Baseline.HTTP)*100)
	fmt.Printf("archive:                %s\n", dir)
}
