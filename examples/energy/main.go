// Energy-aware scaling: the paper's Section II-B names "minimizing energy
// consumption ... and maximize throughput" as the canonical multi-objective
// problem class. This example runs NSGA-II directly on the engine model to
// trade user response time against total engine power draw under a heavy
// 160-request workload, with the replica count (how many chifflot nodes
// run the engine) as an optimization variable alongside the Equation 2
// thread pools.
//
// More replicas cut the response time but each powered node costs ~150-200
// watts, so the Pareto front exposes the scale-out decision of Section V-B.
//
//	go run ./examples/energy [-duration 150] [-generations 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"e2clab/internal/export"
	"e2clab/internal/metaheur"
	"e2clab/internal/plantnet"
	"e2clab/internal/space"
)

func main() {
	duration := flag.Float64("duration", 150, "simulated seconds per evaluation")
	generations := flag.Int("generations", 8, "NSGA-II generations")
	flag.Parse()

	s := space.New(
		space.Int("http", 20, 60),
		space.Int("download", 20, 60),
		space.Int("simsearch", 20, 60),
		space.Int("extract", 3, 9),
		space.Int("replicas", 1, 4),
	)
	evals := 0
	objectives := func(x []float64) []float64 {
		evals++
		m, err := plantnet.Run(plantnet.RunOptions{
			Pools:    plantnet.FromVector(x[:4]),
			Replicas: int(x[4]),
			Clients:  160,
			Duration: *duration,
			Seed:     17,
		})
		if err != nil {
			log.Fatal(err)
		}
		power := m.GPUPowerW.Mean + m.CPUPowerW.Mean // total engine watts
		return []float64{m.UserResponseTime.Mean, power}
	}

	fmt.Println("optimizing (user_resp_time, engine power) with NSGA-II, workload 160...")
	front := metaheur.NSGA2{Seed: 17, PopSize: 16}.MinimizeMulti(s, objectives, *generations)
	sort.Slice(front, func(i, j int) bool { return front[i].Y[0] < front[j].Y[0] })

	t := export.NewTable(fmt.Sprintf("Pareto front (%d points, %d engine runs)", len(front), evals),
		"config", "resp (s)", "power (W)")
	for _, pt := range front {
		t.AddRow(s.Format(pt.X), pt.Y[0], fmt.Sprintf("%.0f", pt.Y[1]))
	}
	fmt.Print(t.String())
	fmt.Println("\nreading: every extra replica roughly halves the saturated response")
	fmt.Println("time at the cost of another node's power draw — the operator picks")
	fmt.Println("the knee; the paper's methodology automates finding this front.")
}
