// Capacity planning: the paper's motivating question (Section I) — "one
// main challenge faced by Pl@ntNet engineers is to anticipate the necessary
// evolution of the infrastructure to pass the upcoming spring peak and
// adapt the system configuration to some expected evolution of application
// usage (e.g., an increase of its number of users)".
//
// This example combines the Figure 2 user-growth model with the engine
// model: it projects the simultaneous-request load of the next spring
// peaks, finds the maximum load each thread-pool configuration sustains
// within the 4-second user tolerance, and reports in which year each
// configuration stops being sufficient.
//
//	go run ./examples/capacity [-duration 250]
package main

import (
	"flag"
	"fmt"
	"log"

	"e2clab/internal/export"
	"e2clab/internal/plantnet"
	"e2clab/internal/workload"
)

const responseSLO = 4.0 // seconds, "the maximum tolerated by users"

func respAt(cfg plantnet.PoolConfig, clients int, duration float64) float64 {
	m, err := plantnet.Run(plantnet.RunOptions{
		Pools: cfg, Clients: clients, Duration: duration, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	return m.UserResponseTime.Mean
}

// maxLoad binary-searches the largest simultaneous-request population a
// configuration serves within the SLO.
func maxLoad(cfg plantnet.PoolConfig, duration float64) int {
	lo, hi := 1, 400
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if respAt(cfg, mid, duration) <= responseSLO {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

func main() {
	duration := flag.Float64("duration", 250, "simulated seconds per capacity probe")
	flag.Parse()

	configs := []struct {
		name string
		cfg  plantnet.PoolConfig
	}{
		{"baseline", plantnet.Baseline},
		{"preliminary", plantnet.PreliminaryOptimum},
		{"refined", plantnet.RefinedOptimum},
	}

	fmt.Printf("SLO: user response time <= %.0f s\n\n", responseSLO)
	caps := map[string]int{}
	t := export.NewTable("sustainable simultaneous requests per configuration",
		"configuration", "pools", "max load (requests)")
	for _, c := range configs {
		caps[c.name] = maxLoad(c.cfg, *duration)
		t.AddRow(c.name, c.cfg.String(), caps[c.name])
	}
	fmt.Print(t.String())

	// Project peak demand: peak-week concurrent load grows with the user
	// base. Anchor: the 2021 peak corresponds to ~110 simultaneous
	// requests (just below the baseline's observed ~120-request limit, the
	// situation the paper describes).
	g := workload.DefaultGrowthModel()
	g.Years = 11 // project through 2025
	trace := g.Generate()
	_, peak2021 := workload.PeakWeek(trace, 2021)
	loadPerUser := 110.0 / peak2021

	fmt.Println()
	p := export.NewTable("projected spring-peak load and configuration adequacy",
		"year", "peak demand (simultaneous requests)", "baseline", "preliminary", "refined")
	ok := func(capacity, demand int) string {
		if capacity >= demand {
			return "ok"
		}
		return "EXCEEDED"
	}
	for year := 2021; year <= 2025; year++ {
		_, peak := workload.PeakWeek(trace, year)
		demand := int(peak * loadPerUser)
		p.AddRow(year, demand, ok(caps["baseline"], demand),
			ok(caps["preliminary"], demand), ok(caps["refined"], demand))
	}
	fmt.Print(p.String())
	fmt.Println("\nreading: software tuning raises the sustainable load ~9% for free (the")
	fmt.Println("baseline's 120-request ceiling matches the paper's Figure 3), but at")
	fmt.Println("~45%/year user growth the next spring peak still requires hardware")
	fmt.Println("evolution — exactly the anticipation problem the paper's methodology")
	fmt.Println("is designed to inform.")
}
