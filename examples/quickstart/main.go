// Quickstart: define an optimization problem, run the Optimization Manager
// with the paper's default stack (Extra Trees surrogate, Latin Hypercube
// initial design, gp_hedge acquisition), and read the Phase III summary.
//
// The objective here is a cheap synthetic function so the example runs in
// milliseconds; examples/plantnet drives the real engine model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"e2clab/internal/core"
	"e2clab/internal/space"
)

func main() {
	// Phase I — define the optimization problem: variables with bounds,
	// objective, constraints (Equation 1 of the paper).
	problem := space.NewProblem(
		"quickstart",
		space.New(
			space.Int("workers", 1, 64),
			space.Float("batch", 0.1, 10),
		),
		space.Objective{Name: "latency", Mode: space.Min},
	)
	problem.AddConstraint("workers_le_48", func(x []float64) float64 { return x[0] - 48 })

	// Phase II — pick the evaluation methods: sampler, surrogate,
	// acquisition, parallelism.
	dir, err := os.MkdirTemp("", "quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := core.NewManager(core.Spec{
		Problem: problem,
		Search: core.SearchSpec{
			Algorithm:             "skopt",
			BaseEstimator:         "ET",
			NInitialPoints:        10,
			InitialPointGenerator: "lhs",
			AcqFunc:               "gp_hedge",
		},
		NumSamples:    40,
		MaxConcurrent: 4,
		Seed:          7,
		ArchiveDir:    dir,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The objective: a latency bowl with optimum at workers=32, batch=2.
	objective := func(ev *core.Evaluation) (float64, error) {
		w, b := ev.X[0], ev.X[1]
		return 1 + math.Pow(w-32, 2)/500 + math.Pow(math.Log(b/2), 2), nil
	}

	res, err := mgr.Optimize(objective)
	if err != nil {
		log.Fatal(err)
	}

	// Phase III — the summary of computations for reproducibility.
	fmt.Printf("best configuration: %s\n", problem.Space.Format(res.Best))
	fmt.Printf("best latency:       %.4f\n", res.BestY)
	fmt.Printf("evaluations:        %d\n", res.Summary.Evaluations)
	fmt.Printf("archive:            %s/summary.json\n", dir)
}
