// Continuum placement: the right-hand optimization problem of the paper's
// Figure 4 — "where should the workflow components be executed to minimize
// communication costs AND end-to-end latency?" — a single multi-objective
// problem over the Edge-Fog-Cloud testbed model.
//
// A three-stage workflow (preprocess -> inference -> aggregation) must be
// placed on Edge, Fog, or Cloud. Each placement yields a communication cost
// (traffic crossing constrained links) and an end-to-end latency (compute
// speed + network delays). We scalarize with WeightedSum for the
// Optimization Manager, then extract the Pareto front from the archive of
// evaluated points.
//
//	go run ./examples/continuum
package main

import (
	"fmt"
	"log"

	"e2clab/internal/core"
	"e2clab/internal/metaheur"
	"e2clab/internal/netem"
	"e2clab/internal/space"
)

// layerNames maps the categorical placement index to a continuum layer.
var layerNames = []string{"edge", "fog", "cloud"}

// computeSpeed is the relative processing speed of each layer (edge
// devices are ~20x slower than cloud nodes).
var computeSpeed = map[string]float64{"edge": 1, "fog": 6, "cloud": 20}

// stageWork is the compute demand of each workflow stage and the data
// volume (MB) it emits to the next stage.
var stages = []struct {
	name    string
	work    float64
	emitsMB float64
}{
	{"preprocess", 1, 0.2},  // shrinks the 2 MB image to 0.2 MB
	{"inference", 20, 0.01}, // heavy DNN, emits a tiny prediction
	{"aggregate", 2, 0.01},
}

// network models the continuum links: slow constrained edge uplink, faster
// fog-to-cloud backbone.
var network = netem.New(
	netem.Rule{Src: "edge", Dst: "fog", DelayMS: 10, RateGbps: 0.05, Symmetric: true},
	netem.Rule{Src: "fog", Dst: "cloud", DelayMS: 40, RateGbps: 1, Symmetric: true},
	netem.Rule{Src: "edge", Dst: "cloud", DelayMS: 50, RateGbps: 0.05, Symmetric: true},
)

// hop returns the transfer seconds for mb megabytes between two layers
// (zero when colocated).
func hop(from, to string, mb float64) float64 {
	if from == to {
		return 0
	}
	return network.TransferSeconds(from, to, mb*1e6)
}

// evaluate returns (communication cost in transferred MB-hops weighted by
// link slowness, end-to-end latency in seconds) for a placement vector.
func evaluate(x []float64) (commCost, latency float64) {
	// Source data (the 2 MB photo) originates at the edge.
	prev := "edge"
	carryMB := 2.0
	for i, st := range stages {
		place := layerNames[int(x[i])]
		t := hop(prev, place, carryMB)
		latency += t + st.work/computeSpeed[place]
		commCost += t // transfer time doubles as the paid communication cost
		prev = place
		carryMB = st.emitsMB
	}
	// The response returns to the edge user.
	back := hop(prev, "edge", carryMB)
	latency += back
	commCost += back
	return commCost, latency
}

func main() {
	s := space.New(
		space.Categorical("preprocess", layerNames...),
		space.Categorical("inference", layerNames...),
		space.Categorical("aggregate", layerNames...),
	)
	problem := &space.Problem{
		Name:  "continuum_placement",
		Space: s,
		Objectives: []space.Objective{
			{Name: "comm_cost", Mode: space.Min},
			{Name: "latency", Mode: space.Min},
		},
	}
	if err := problem.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-objective problem (%d placements): %v\n\n", 27, problem.MultiObjective())

	// Scalarize and optimize with differential evolution (a short-running
	// application, per Phase II of the methodology).
	scalar := core.WeightedSum([]float64{1, 1},
		func(x []float64) float64 { c, _ := evaluate(x); return c },
		func(x []float64) float64 { _, l := evaluate(x); return l },
	)
	res := metaheur.DE{Seed: 5}.Minimize(s, scalar, 300)
	fmt.Printf("weighted-sum optimum: preprocess=%s inference=%s aggregate=%s (scalar %.3f)\n\n",
		layerNames[int(res.X[0])], layerNames[int(res.X[1])], layerNames[int(res.X[2])], res.Y)

	// Enumerate all 27 placements and print the Pareto front.
	var points [][]float64
	var configs [][]float64
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 3; c++ {
				x := []float64{float64(a), float64(b), float64(c)}
				cc, lat := evaluate(x)
				points = append(points, []float64{cc, lat})
				configs = append(configs, x)
			}
		}
	}
	front := core.ParetoFront(points)
	fmt.Printf("Pareto front (%d of %d placements):\n", len(front), len(points))
	fmt.Printf("  %-12s %-12s %-12s %10s %12s\n", "preprocess", "inference", "aggregate", "comm_cost", "latency(s)")
	for _, i := range front {
		x := configs[i]
		fmt.Printf("  %-12s %-12s %-12s %10.3f %12.3f\n",
			layerNames[int(x[0])], layerNames[int(x[1])], layerNames[int(x[2])],
			points[i][0], points[i][1])
	}
}
