// Scenario-suite campaign: the methodology step the paper leaves to the
// practitioner — evaluating the optimized application across MANY
// edge-to-cloud deployments before moving to production, not just the one
// 42-node scenario of Section IV.
//
// The suite definition is declarative (suite.json next to this file):
// twelve ready-made scenarios covering a topology sweep (the Figure 2
// spring-peak question), a degraded fog-cloud backbone (in both network
// models — the "-simnet" variant folds the congested backbone into the
// event kernel, so its response time includes gateway queueing), a
// heterogeneous fiber/LTE/satellite gateway mix, a fog engine placement,
// bursty/diurnal workload shapes (the "-continuous" variant carries
// queue state across phase boundaries via a piecewise arrival rate), a
// trace replay, and a churn/crash/flap chaos schedule run bare and under
// a retry + failover resilience policy (the "-resilient" row adds the
// availability and goodput the policy buys under identical faults). The
// runner executes them on a bounded worker pool; for a fixed seed the
// comparison table is bit-identical at every parallelism level, and the
// checkpoint makes the campaign crash-safe: kill it mid-run, start it
// again, and completed scenarios are skipped.
//
//	go run ./examples/suite                      # run the campaign
//	go run ./examples/suite -interrupt 3         # simulate a crash after 3 scenarios
//	go run ./examples/suite                      # ...and resume it
//	go run ./examples/suite -netmodel simulated  # every scenario through the event-kernel network
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"e2clab/internal/scenario"
)

func main() {
	suiteFile := flag.String("suite", "", "suite JSON (default: suite.json next to this example)")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
	checkpoint := flag.String("checkpoint", filepath.Join(os.TempDir(), "e2clab-suite-checkpoint.json"),
		"checkpoint path (crash-safe resume)")
	interrupt := flag.Int("interrupt", 0, "simulate a crash after N scenarios")
	netmodel := flag.String("netmodel", "", "network model default for the suite: analytical or simulated")
	flag.Parse()

	path := *suiteFile
	if path == "" {
		path = filepath.Join("examples", "suite", "suite.json")
		if _, err := os.Stat(path); err != nil {
			path = "suite.json" // run from the example directory
		}
	}
	s, err := scenario.LoadSuite(path)
	if err != nil {
		log.Fatal(err)
	}
	if *netmodel != "" {
		// Fingerprinted: flipping this between runs re-runs the affected
		// scenarios instead of resuming mixed-model results.
		s.NetworkModel = *netmodel
	}
	fmt.Printf("suite %q: %d scenarios, seed %d, checkpoint %s\n\n",
		s.Name, len(s.Scenarios), s.Seed, *checkpoint)

	sr, err := scenario.RunSuite(*s, scenario.Options{
		Parallel:       *parallel,
		CheckpointPath: *checkpoint,
		InterruptAfter: *interrupt,
		Logger: func(event string, index int, name string) {
			fmt.Printf("  %-9s %s\n", event, name)
		},
	})
	if errors.Is(err, scenario.ErrInterrupted) {
		fmt.Printf("\ninterrupted after %d scenario(s) — run again to resume from the checkpoint\n",
			sr.Executed)
		return
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(scenario.ComparisonTable(sr).String())
	if sr.Resumed > 0 {
		fmt.Printf("\n%d scenario(s) resumed from checkpoint, %d executed this run\n",
			sr.Resumed, sr.Executed)
	}
	if sr.Executed+sr.Resumed == len(s.Scenarios) {
		_ = os.Remove(*checkpoint) // campaign complete; next run starts fresh
	}
}
