// Package acquisition implements the acquisition functions that decide
// which configuration the Bayesian optimization cycle evaluates next:
// Expected Improvement (EI), Probability of Improvement (PI), Lower
// Confidence Bound (LCB), and the gp_hedge portfolio used by the paper's
// Listing 1 (acq_func="gp_hedge").
//
// All functions assume minimization and are written as scores to MAXIMIZE:
// the optimizer picks the candidate with the highest score.
package acquisition

import (
	"math"
	"math/rand"
)

// Function scores a candidate from its posterior mean and std and the best
// (lowest) objective value observed so far.
type Function interface {
	Score(mean, std, best float64) float64
	Name() string
}

// normPDF is the standard normal density.
func normPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// normCDF is the standard normal CDF via erf.
func normCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// EI is Expected Improvement with exploration bonus Xi.
type EI struct{ Xi float64 }

// Name implements Function.
func (EI) Name() string { return "EI" }

// Score implements Function.
func (a EI) Score(mean, std, best float64) float64 {
	if std <= 0 {
		if v := best - a.Xi - mean; v > 0 {
			return v
		}
		return 0
	}
	z := (best - a.Xi - mean) / std
	return (best-a.Xi-mean)*normCDF(z) + std*normPDF(z)
}

// PI is Probability of Improvement with exploration bonus Xi.
type PI struct{ Xi float64 }

// Name implements Function.
func (PI) Name() string { return "PI" }

// Score implements Function.
func (a PI) Score(mean, std, best float64) float64 {
	if std <= 0 {
		if mean < best-a.Xi {
			return 1
		}
		return 0
	}
	return normCDF((best - a.Xi - mean) / std)
}

// LCB is the (negated) Lower Confidence Bound: score = -(mean - Kappa*std),
// so maximizing the score minimizes the optimistic bound.
type LCB struct{ Kappa float64 }

// Name implements Function.
func (LCB) Name() string { return "LCB" }

// Score implements Function.
func (a LCB) Score(mean, std, _ float64) float64 {
	k := a.Kappa
	if k == 0 {
		k = 1.96
	}
	return -(mean - k*std)
}

// Default returns skopt-compatible defaults for a named acquisition
// function ("EI", "PI", "LCB"). gp_hedge is a portfolio, built with
// NewHedge.
func Default(name string) (Function, bool) {
	switch name {
	case "EI":
		return EI{Xi: 0.01}, true
	case "PI":
		return PI{Xi: 0.01}, true
	case "LCB":
		return LCB{Kappa: 1.96}, true
	}
	return nil, false
}

// Hedge is the GP-Hedge portfolio strategy (Hoffman et al.): it keeps one
// cumulative gain per base acquisition function and picks, at every
// iteration, which function's candidate to trust via a softmax over gains.
// After the chosen point is evaluated, gains are updated with the negated
// posterior mean at each function's proposal (lower predicted objective =
// higher gain).
type Hedge struct {
	Funcs []Function
	Eta   float64
	gains []float64
	rng   *rand.Rand
}

// NewHedge builds the default EI/PI/LCB portfolio of skopt's
// acq_func="gp_hedge".
func NewHedge(r *rand.Rand) *Hedge {
	return &Hedge{
		Funcs: []Function{LCB{Kappa: 1.96}, EI{Xi: 0.01}, PI{Xi: 0.01}},
		Eta:   1.0,
		gains: make([]float64, 3),
		rng:   r,
	}
}

// Name identifies the portfolio.
func (h *Hedge) Name() string { return "gp_hedge" }

// Choose samples the index of the base function to follow this iteration,
// with probability softmax(eta * gains).
func (h *Hedge) Choose() int {
	maxG := math.Inf(-1)
	for _, g := range h.gains {
		if g > maxG {
			maxG = g
		}
	}
	var z float64
	probs := make([]float64, len(h.gains))
	for i, g := range h.gains {
		probs[i] = math.Exp(h.Eta * (g - maxG))
		z += probs[i]
	}
	u := h.rng.Float64() * z
	for i, p := range probs {
		u -= p
		if u <= 0 {
			return i
		}
	}
	return len(probs) - 1
}

// Update adds the reward for each base function's proposal: proposalMeans[i]
// is the posterior mean at the point function i proposed.
func (h *Hedge) Update(proposalMeans []float64) {
	for i, m := range proposalMeans {
		h.gains[i] -= m
	}
}

// Gains returns a copy of the cumulative gains (for the reproducibility
// summary).
func (h *Hedge) Gains() []float64 { return append([]float64(nil), h.gains...) }
