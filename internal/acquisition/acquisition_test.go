package acquisition

import (
	"math"
	"math/rand"
	"testing"
)

func TestEIBasics(t *testing.T) {
	a := EI{}
	// Candidate well below best with uncertainty: strong positive score.
	if s := a.Score(1, 0.5, 2); s <= 0 {
		t.Errorf("EI for promising point = %v, want > 0", s)
	}
	// Deep below best dominates slightly below best.
	if a.Score(0.5, 0.3, 2) <= a.Score(1.9, 0.3, 2) {
		t.Error("EI not monotone in improvement")
	}
	// Zero std and mean above best: no improvement possible.
	if s := a.Score(3, 0, 2); s != 0 {
		t.Errorf("EI with std=0, mean>best = %v, want 0", s)
	}
	// Zero std, mean below best: improvement is deterministic.
	if s := a.Score(1, 0, 2); math.Abs(s-1) > 1e-12 {
		t.Errorf("EI deterministic improvement = %v, want 1", s)
	}
}

func TestEIUncertaintyBonus(t *testing.T) {
	a := EI{}
	// Same mean as best: only uncertainty can yield improvement.
	if a.Score(2, 1.0, 2) <= a.Score(2, 0.1, 2) {
		t.Error("EI should grow with std at equal mean")
	}
}

func TestPIBasics(t *testing.T) {
	a := PI{}
	if s := a.Score(1, 0.5, 2); s <= 0.5 {
		t.Errorf("PI for point 2 std below best = %v, want > 0.5", s)
	}
	if s := a.Score(3, 0.5, 2); s >= 0.5 {
		t.Errorf("PI for point above best = %v, want < 0.5", s)
	}
	if s := a.Score(1, 0, 2); s != 1 {
		t.Errorf("PI deterministic improvement = %v, want 1", s)
	}
	if s := a.Score(3, 0, 2); s != 0 {
		t.Errorf("PI deterministic non-improvement = %v, want 0", s)
	}
}

func TestLCB(t *testing.T) {
	a := LCB{Kappa: 2}
	// Lower mean wins at equal std.
	if a.Score(1, 0.5, 0) <= a.Score(2, 0.5, 0) {
		t.Error("LCB not preferring lower mean")
	}
	// Higher std wins at equal mean (optimism under uncertainty).
	if a.Score(1, 1.0, 0) <= a.Score(1, 0.1, 0) {
		t.Error("LCB not preferring higher std")
	}
	// Zero kappa falls back to default 1.96.
	d := LCB{}
	if d.Score(1, 1, 0) != -(1 - 1.96) {
		t.Errorf("LCB default kappa wrong: %v", d.Score(1, 1, 0))
	}
}

func TestDefaultLookup(t *testing.T) {
	for _, n := range []string{"EI", "PI", "LCB"} {
		if _, ok := Default(n); !ok {
			t.Errorf("Default(%q) missing", n)
		}
	}
	if _, ok := Default("gp_hedge"); ok {
		t.Error("gp_hedge should not be a plain Function")
	}
}

func TestHedgeChooseRespectsGains(t *testing.T) {
	h := NewHedge(rand.New(rand.NewSource(1)))
	// Massively favor function 1: its proposals predicted much lower
	// objective values.
	for i := 0; i < 50; i++ {
		h.Update([]float64{10, -10, 10})
	}
	counts := make([]int, 3)
	for i := 0; i < 300; i++ {
		counts[h.Choose()]++
	}
	if counts[1] < 290 {
		t.Errorf("hedge did not converge to best arm: %v", counts)
	}
}

func TestHedgeUniformAtStart(t *testing.T) {
	h := NewHedge(rand.New(rand.NewSource(2)))
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[h.Choose()]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("arm %d chosen %d/3000 times; want ~1000", i, c)
		}
	}
}

func TestHedgeGainsCopy(t *testing.T) {
	h := NewHedge(rand.New(rand.NewSource(3)))
	h.Update([]float64{1, 2, 3})
	g := h.Gains()
	g[0] = 999
	if h.Gains()[0] == 999 {
		t.Error("Gains returned internal slice")
	}
	if h.Gains()[2] != -3 {
		t.Errorf("gain update wrong: %v", h.Gains())
	}
}

func TestNormHelpers(t *testing.T) {
	if math.Abs(normCDF(0)-0.5) > 1e-12 {
		t.Error("normCDF(0) != 0.5")
	}
	if math.Abs(normCDF(1.96)-0.975) > 1e-3 {
		t.Errorf("normCDF(1.96) = %v", normCDF(1.96))
	}
	if math.Abs(normPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Error("normPDF(0) wrong")
	}
}
