package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v", m.At(2, 1))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Errorf("Set failed")
	}
	tr := m.T()
	if tr.Rows != 2 || tr.Cols != 3 || tr.At(1, 2) != 6 {
		t.Errorf("transpose wrong: %+v", tr)
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 9 {
		t.Error("Clone aliases data")
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	c := a.Mul(b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Errorf("MulVec = %v, want [17 39]", got)
	}
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
}

func randomSPD(r *rand.Rand, n int) *Matrix {
	// A = B Bᵀ + n*I is SPD.
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = r.NormFloat64()
	}
	a := b.Mul(b.T())
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 5, 20} {
		a := randomSPD(r, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := ch.L.Mul(ch.L.T())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(rec.At(i, j), a.At(i, j), 1e-8*float64(n)) {
					t.Fatalf("n=%d: LLᵀ[%d][%d]=%v want %v", n, i, j, rec.At(i, j), a.At(i, j))
				}
			}
		}
	}
}

func TestCholeskySolveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(10)
		a := randomSPD(rr, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rr.NormFloat64()
		}
		b := a.MulVec(xTrue)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x := ch.Solve(b)
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-6) {
				return false
			}
		}
		return true
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err == nil {
		t.Error("indefinite matrix accepted")
	}
	b := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if _, err := NewCholesky(b); err == nil {
		t.Error("non-square matrix accepted")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ch.LogDet(), math.Log(36), 1e-12) {
		t.Errorf("LogDet = %v, want log(36)", ch.LogDet())
	}
}

func TestSolveVecL(t *testing.T) {
	a := randomSPD(rand.New(rand.NewSource(3)), 6)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3, 4, 5, 6}
	y := ch.SolveVecL(b)
	back := ch.L.MulVec(y)
	for i := range b {
		if !almostEq(back[i], b[i], 1e-9) {
			t.Fatalf("L*SolveVecL(b) != b at %d: %v vs %v", i, back[i], b[i])
		}
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square nonsingular system: LS solution equals the exact solution.
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := []float64{5, 10}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-10) || !almostEq(x[1], 3, 1e-10) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2 + 3t to noiseless data; exact recovery expected.
	ts := []float64{0, 1, 2, 3, 4}
	rows := make([][]float64, len(ts))
	b := make([]float64, len(ts))
	for i, v := range ts {
		rows[i] = []float64{1, v}
		b[i] = 2 + 3*v
	}
	x, err := LeastSquares(FromRows(rows), b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-9) || !almostEq(x[1], 3, 1e-9) {
		t.Errorf("x = %v, want [2 3]", x)
	}
}

// TestLeastSquaresResidualOrthogonality: the LS residual must be orthogonal
// to the column space of A.
func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		m, n := 8+r.Intn(10), 2+r.Intn(4)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ax := a.MulVec(x)
		res := make([]float64, m)
		for i := range res {
			res[i] = b[i] - ax[i]
		}
		at := a.T()
		for j := 0; j < n; j++ {
			if v := Dot(at.Row(j), res); !almostEq(v, 0, 1e-7) {
				t.Fatalf("trial %d: Aᵀr[%d] = %v, want 0", trial, j, v)
			}
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}})
	if _, err := LeastSquares(a, []float64{1}); err == nil {
		t.Error("underdetermined system accepted")
	}
	b := FromRows([][]float64{{1}, {2}})
	if _, err := LeastSquares(b, []float64{1, 2, 3}); err == nil {
		t.Error("rhs length mismatch accepted")
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	// Second column is a copy of the first; solver must not blow up.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := []float64{2, 4, 6}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax := a.MulVec(x)
	for i := range b {
		if !almostEq(ax[i], b[i], 1e-8) {
			t.Errorf("rank-deficient fit misses consistent rhs: Ax=%v b=%v", ax, b)
		}
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrix(0, 3) did not panic")
		}
	}()
	NewMatrix(0, 3)
}

// TestSolveLBatchMatchesSolveVecL asserts the multi-RHS forward
// substitution is bit-identical, column by column, to the single-RHS path.
func TestSolveLBatchMatchesSolveVecL(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 3, 8, 25} {
		for _, cols := range []int{1, 2, 7} {
			a := randomSPD(r, n)
			ch, err := NewCholesky(a)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			b := NewMatrix(n, cols)
			for i := range b.Data {
				b.Data[i] = r.NormFloat64()
			}
			y := ch.SolveLBatch(b)
			for j := 0; j < cols; j++ {
				col := make([]float64, n)
				for i := 0; i < n; i++ {
					col[i] = b.At(i, j)
				}
				want := ch.SolveVecL(col)
				for i := 0; i < n; i++ {
					if y.At(i, j) != want[i] {
						t.Fatalf("n=%d col %d row %d: batch %v != single %v", n, j, i, y.At(i, j), want[i])
					}
				}
			}
		}
	}
}

// TestSolveBatchMatchesSolve asserts the full multi-RHS solve is
// bit-identical, column by column, to Solve.
func TestSolveBatchMatchesSolve(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for _, n := range []int{1, 4, 12} {
		a := randomSPD(r, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		const cols = 5
		b := NewMatrix(n, cols)
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		x := ch.SolveBatch(b)
		for j := 0; j < cols; j++ {
			col := make([]float64, n)
			for i := 0; i < n; i++ {
				col[i] = b.At(i, j)
			}
			want := ch.Solve(col)
			for i := 0; i < n; i++ {
				if x.At(i, j) != want[i] {
					t.Fatalf("n=%d col %d row %d: batch %v != single %v", n, j, i, x.At(i, j), want[i])
				}
			}
		}
	}
}

// TestSolveBatchShapeMismatchPanics pins the contract for bad shapes.
func TestSolveBatchShapeMismatchPanics(t *testing.T) {
	a := randomSPD(rand.New(rand.NewSource(23)), 3)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	ch.SolveLBatch(NewMatrix(2, 2))
}
