// Package linalg provides the small dense linear-algebra kernel needed by
// the surrogate models: matrix products, Cholesky factorization (Gaussian
// process / Kriging), and Householder QR least squares (polynomial
// regression). It is deliberately minimal — row-major float64, no views —
// since surrogate training matrices here are at most a few hundred rows.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (copied).
func FromRows(rows [][]float64) *Matrix {
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range oi {
				oi[j] += a * bk[j]
			}
		}
	}
	return out
}

// MulVec returns m * x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic("linalg: mulvec shape mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L Lᵀ.
type Cholesky struct {
	L *Matrix
}

// NewCholesky factors the SPD matrix a. It returns an error if a is not
// positive definite (within floating-point tolerance). a is not modified.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: cholesky of non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		lj := l.Row(j)
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (d=%g)", j, d)
		}
		ljj := math.Sqrt(d)
		lj[j] = ljj
		for i := j + 1; i < n; i++ {
			li := l.Row(i)
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			li[j] = s / ljj
		}
	}
	return &Cholesky{L: l}, nil
}

// Solve solves A x = b using the factorization.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.L.Rows
	if len(b) != n {
		panic("linalg: cholesky solve length mismatch")
	}
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		li := c.L.Row(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= li[k] * y[k]
		}
		y[i] = s / li[i]
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
	return x
}

// SolveBatch solves A X = B column-wise for an n x m right-hand-side matrix,
// reusing the factorization across all columns. Column j of the result is
// bit-identical to Solve applied to column j of b: the per-column operation
// order matches the single-RHS path exactly.
func (c *Cholesky) SolveBatch(b *Matrix) *Matrix {
	n := c.L.Rows
	if b.Rows != n {
		panic(fmt.Sprintf("linalg: cholesky batch solve shape mismatch %d rows, want %d", b.Rows, n))
	}
	y := c.SolveLBatch(b)
	// Back substitution: Lᵀ X = Y, all columns per row at once.
	for i := n - 1; i >= 0; i-- {
		yi := y.Row(i)
		for k := i + 1; k < n; k++ {
			lki := c.L.At(k, i)
			yk := y.Row(k)
			for j := range yi {
				yi[j] -= lki * yk[j]
			}
		}
		d := c.L.At(i, i)
		for j := range yi {
			yi[j] /= d
		}
	}
	return y
}

// SolveLBatch solves L Y = B column-wise for an n x m right-hand-side matrix
// (multi-RHS forward substitution). The GP's batch predictor uses it to
// reuse one Cholesky factor across a whole candidate pool instead of
// re-running forward substitution per point. Per column the arithmetic is
// performed in the same order as SolveVecL, so results are bit-identical.
func (c *Cholesky) SolveLBatch(b *Matrix) *Matrix {
	n := c.L.Rows
	if b.Rows != n {
		panic(fmt.Sprintf("linalg: cholesky batch solve shape mismatch %d rows, want %d", b.Rows, n))
	}
	y := b.Clone()
	for i := 0; i < n; i++ {
		li := c.L.Row(i)
		yi := y.Row(i)
		for k := 0; k < i; k++ {
			lik := li[k]
			yk := y.Row(k)
			for j := range yi {
				yi[j] -= lik * yk[j]
			}
		}
		d := li[i]
		for j := range yi {
			yi[j] /= d
		}
	}
	return y
}

// SolveVecL solves L y = b (forward substitution only), used by the GP for
// predictive variance.
func (c *Cholesky) SolveVecL(b []float64) []float64 {
	n := c.L.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		li := c.L.Row(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= li[k] * y[k]
		}
		y[i] = s / li[i]
	}
	return y
}

// LogDet returns log(det(A)) = 2 * sum(log(L_ii)).
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}

// LeastSquares solves min ||A x - b||₂ via Householder QR with column
// protection against rank deficiency (tiny diagonal entries of R are
// regularized). A has shape m x n with m >= n.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	m, n := a.Rows, a.Cols
	if len(b) != m {
		return nil, fmt.Errorf("linalg: lstsq rhs length %d != rows %d", len(b), m)
	}
	if m < n {
		return nil, fmt.Errorf("linalg: lstsq underdetermined %dx%d", m, n)
	}
	r := a.Clone()
	qtb := append([]float64(nil), b...)
	// Householder reflections applied in place to R and qtb. The reflector
	// applications are organized as row-major passes (one scratch entry per
	// trailing column) so the inner loops walk contiguous row slices; per
	// column the accumulation order over rows matches the textbook
	// column-at-a-time formulation exactly.
	scratch := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute the norm of column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, r.At(i, k))
		}
		if norm == 0 {
			continue
		}
		// Give norm the sign of the diagonal element so the reflector pivot
		// 1 + a_kk/norm stays >= 1 (numerically stable; the stored R
		// diagonal is then -norm).
		if r.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			ri := r.Row(i)
			ri[k] /= norm
		}
		r.Set(k, k, r.At(k, k)+1)
		// Accumulate vᵀ·column for every remaining column and for b in one
		// row-major sweep, then apply the rank-1 update in a second sweep.
		for j := k + 1; j < n; j++ {
			scratch[j] = 0
		}
		var sb float64
		for i := k; i < m; i++ {
			ri := r.Row(i)
			v := ri[k]
			for j := k + 1; j < n; j++ {
				scratch[j] += v * ri[j]
			}
			sb += v * qtb[i]
		}
		pivot := r.At(k, k)
		for j := k + 1; j < n; j++ {
			scratch[j] = -scratch[j] / pivot
		}
		sb = -sb / pivot
		for i := k; i < m; i++ {
			ri := r.Row(i)
			v := ri[k]
			for j := k + 1; j < n; j++ {
				ri[j] += scratch[j] * v
			}
			qtb[i] += sb * v
		}
		r.Set(k, k, norm) // store R's diagonal (negated reflector norm)
	}
	// Back substitution on the upper triangle; diag(R) is at r[k][k] but
	// negated by construction above — recover it.
	x := make([]float64, n)
	const tiny = 1e-12
	for i := n - 1; i >= 0; i-- {
		ri := r.Row(i)
		s := qtb[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		d := -ri[i]
		if math.Abs(d) < tiny {
			x[i] = 0 // rank-deficient column: minimum-norm-ish fallback
			continue
		}
		x[i] = s / d
	}
	return x, nil
}
