// Package rngutil provides deterministic, splittable random-number streams.
//
// Reproducibility is a first-class requirement of the E2Clab methodology
// (Phase III of the optimization cycle archives every seed). All stochastic
// components of this repository — samplers, surrogate models, the
// discrete-event simulator, metaheuristics — draw from streams created here
// so that a run is fully determined by its root seed.
package rngutil

import "math/rand"

// SplitMix64 advances a 64-bit state and returns the next output of the
// SplitMix64 generator. It is used to derive independent child seeds from a
// root seed: consecutive outputs are statistically independent, so each
// subsystem (sampler, simulator, model, ...) gets its own stream.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seeder derives independent child seeds from a root seed.
type Seeder struct {
	state uint64
}

// NewSeeder returns a Seeder rooted at seed.
func NewSeeder(seed int64) *Seeder {
	return &Seeder{state: uint64(seed)}
}

// Next returns the next derived seed.
func (s *Seeder) Next() int64 {
	return int64(SplitMix64(&s.state))
}

// NextRand returns a new *rand.Rand seeded with the next derived seed.
func (s *Seeder) NextRand() *rand.Rand {
	return rand.New(rand.NewSource(s.Next()))
}

// New returns a *rand.Rand for a root seed, for components that need a
// single stream.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
