package rngutil

import "testing"

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 0 from the canonical SplitMix64.
	var state uint64
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Errorf("output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSeederDeterministic(t *testing.T) {
	a, b := NewSeeder(42), NewSeeder(42)
	for i := 0; i < 10; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("seeders diverged at %d", i)
		}
	}
}

func TestSeederStreamsDiffer(t *testing.T) {
	s := NewSeeder(1)
	r1, r2 := s.NextRand(), s.NextRand()
	same := 0
	for i := 0; i < 100; i++ {
		if r1.Int63() == r2.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("derived streams look identical (%d collisions)", same)
	}
}

func TestNewReproducible(t *testing.T) {
	if New(7).Int63() != New(7).Int63() {
		t.Error("New not reproducible")
	}
}
