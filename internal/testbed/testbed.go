// Package testbed models a large-scale experimental testbed — Grid'5000 in
// the paper — with sites, clusters, node hardware, and reservations. The
// E2Clab managers deploy layers/services onto reserved nodes exactly as the
// real framework maps the scenario onto physical machines.
//
// The paper's experiments reserve 42 nodes across the chifflot, chiclet,
// chetemi, chifflet and gros clusters; the Pl@ntNet Identification Engine
// runs on chifflot (Dell PowerEdge R740, 2x Xeon Gold 6126, 192 GB RAM,
// Tesla V100-PCIE-32GB), clients on the other four.
package testbed

import (
	"fmt"
	"sort"
	"sync"
)

// GPUSpec describes one GPU model.
type GPUSpec struct {
	Model    string
	MemoryGB float64
}

// NodeSpec is the hardware of every node in a cluster.
type NodeSpec struct {
	CPUModel    string
	CPUs        int
	CoresPerCPU int
	MemoryGB    float64
	DiskGB      float64
	NICGbps     float64
	GPUs        int
	GPU         *GPUSpec
}

// Cores returns the total CPU core count of one node.
func (s NodeSpec) Cores() int { return s.CPUs * s.CoresPerCPU }

// Cluster is a homogeneous set of nodes at one site.
type Cluster struct {
	Name  string
	Site  string
	Count int
	Spec  NodeSpec
}

// Node is one reservable machine.
type Node struct {
	ID      string
	Cluster string
	Site    string
	Spec    NodeSpec
}

// Testbed holds clusters and tracks reservations.
type Testbed struct {
	mu       sync.Mutex
	clusters map[string]*Cluster
	order    []string
	reserved map[string]int // cluster -> reserved node count
}

// New builds a testbed from cluster definitions.
func New(clusters ...Cluster) *Testbed {
	tb := &Testbed{
		clusters: make(map[string]*Cluster),
		reserved: make(map[string]int),
	}
	for i := range clusters {
		c := clusters[i]
		tb.clusters[c.Name] = &c
		tb.order = append(tb.order, c.Name)
	}
	return tb
}

// Grid5000 returns the five-cluster slice of Grid'5000 used in the paper's
// Section IV. Node counts and specs follow the public Grid'5000 reference
// (chifflot is exact per the paper's text; the client clusters carry
// representative specs — only their count and NICs matter to the scenario).
func Grid5000() *Testbed {
	return New(
		Cluster{Name: "chifflot", Site: "lille", Count: 8, Spec: NodeSpec{
			CPUModel: "Intel Xeon Gold 6126", CPUs: 2, CoresPerCPU: 12,
			MemoryGB: 192, DiskGB: 480, NICGbps: 25,
			GPUs: 2, GPU: &GPUSpec{Model: "Nvidia Tesla V100-PCIE-32GB", MemoryGB: 32},
		}},
		Cluster{Name: "chiclet", Site: "lille", Count: 8, Spec: NodeSpec{
			CPUModel: "AMD EPYC 7301", CPUs: 2, CoresPerCPU: 16,
			MemoryGB: 128, DiskGB: 480, NICGbps: 25,
		}},
		Cluster{Name: "chetemi", Site: "lille", Count: 15, Spec: NodeSpec{
			CPUModel: "Intel Xeon E5-2630 v4", CPUs: 2, CoresPerCPU: 10,
			MemoryGB: 256, DiskGB: 600, NICGbps: 10,
		}},
		Cluster{Name: "chifflet", Site: "lille", Count: 8, Spec: NodeSpec{
			CPUModel: "Intel Xeon E5-2680 v4", CPUs: 2, CoresPerCPU: 14,
			MemoryGB: 768, DiskGB: 400, NICGbps: 10,
			GPUs: 2, GPU: &GPUSpec{Model: "Nvidia GTX 1080 Ti", MemoryGB: 11},
		}},
		Cluster{Name: "gros", Site: "nancy", Count: 124, Spec: NodeSpec{
			CPUModel: "Intel Xeon Gold 5220", CPUs: 1, CoresPerCPU: 18,
			MemoryGB: 96, DiskGB: 480, NICGbps: 25,
		}},
	)
}

// Clusters lists cluster names in definition order.
func (tb *Testbed) Clusters() []string { return append([]string(nil), tb.order...) }

// Cluster returns the named cluster, or nil.
func (tb *Testbed) Cluster(name string) *Cluster { return tb.clusters[name] }

// Available returns the number of free nodes in a cluster.
func (tb *Testbed) Available(cluster string) int {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	c, ok := tb.clusters[cluster]
	if !ok {
		return 0
	}
	return c.Count - tb.reserved[cluster]
}

// Reservation is a set of reserved nodes, released as a unit (oarsub job
// semantics).
type Reservation struct {
	tb       *Testbed
	Nodes    []*Node
	released bool
}

// Reserve allocates n nodes from the named cluster.
func (tb *Testbed) Reserve(cluster string, n int) (*Reservation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("testbed: reservation size %d", n)
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	c, ok := tb.clusters[cluster]
	if !ok {
		return nil, fmt.Errorf("testbed: unknown cluster %q", cluster)
	}
	free := c.Count - tb.reserved[cluster]
	if n > free {
		return nil, fmt.Errorf("testbed: cluster %q has %d free nodes, requested %d", cluster, free, n)
	}
	start := tb.reserved[cluster]
	tb.reserved[cluster] += n
	res := &Reservation{tb: tb}
	for i := 0; i < n; i++ {
		res.Nodes = append(res.Nodes, &Node{
			ID:      fmt.Sprintf("%s-%d.%s.grid5000.fr", cluster, start+i+1, c.Site),
			Cluster: cluster,
			Site:    c.Site,
			Spec:    c.Spec,
		})
	}
	return res, nil
}

// Release frees the reservation's nodes. Releasing twice is a no-op.
func (r *Reservation) Release() {
	if r.released {
		return
	}
	r.released = true
	r.tb.mu.Lock()
	defer r.tb.mu.Unlock()
	counts := map[string]int{}
	for _, n := range r.Nodes {
		counts[n.Cluster]++
	}
	for c, n := range counts {
		r.tb.reserved[c] -= n
		if r.tb.reserved[c] < 0 {
			r.tb.reserved[c] = 0
		}
	}
}

// TotalNodes returns the testbed's node count.
func (tb *Testbed) TotalNodes() int {
	var n int
	for _, c := range tb.clusters {
		n += c.Count
	}
	return n
}

// Service is an E2Clab service: a system (or group of systems) providing a
// specific functionality in the scenario workflow, placed on a layer.
type Service struct {
	// Name identifies the service ("plantnet_engine", "client", ...).
	Name string
	// Quantity is the number of nodes the service spans.
	Quantity int
	// Cluster pins the service to a cluster (required in this model; the
	// real E2Clab can also auto-select).
	Cluster string
	// Env carries service-specific settings (thread pool sizes etc.).
	Env map[string]string
}

// Layer groups services belonging to one part of the continuum (Edge, Fog,
// Cloud in the E2Clab layers-services configuration).
type Layer struct {
	Name     string
	Services []Service
}

// Deployment maps services onto reserved nodes.
type Deployment struct {
	reservations []*Reservation
	// Placement maps "layer/service" to its nodes.
	Placement map[string][]*Node
}

// Deploy reserves nodes for every service of every layer and returns the
// placement. On failure everything already reserved is released.
func (tb *Testbed) Deploy(layers []Layer) (*Deployment, error) {
	d := &Deployment{Placement: make(map[string][]*Node)}
	for _, l := range layers {
		if len(l.Services) == 0 {
			d.ReleaseAll()
			return nil, fmt.Errorf("testbed: layer %q has no services", l.Name)
		}
		for _, svc := range l.Services {
			q := svc.Quantity
			if q <= 0 {
				q = 1
			}
			res, err := tb.Reserve(svc.Cluster, q)
			if err != nil {
				d.ReleaseAll()
				return nil, fmt.Errorf("testbed: deploying %s/%s: %w", l.Name, svc.Name, err)
			}
			d.reservations = append(d.reservations, res)
			d.Placement[l.Name+"/"+svc.Name] = res.Nodes
		}
	}
	return d, nil
}

// ReleaseAll frees every reservation of the deployment.
func (d *Deployment) ReleaseAll() {
	for _, r := range d.reservations {
		r.Release()
	}
}

// NodeCount returns the total nodes held by the deployment.
func (d *Deployment) NodeCount() int {
	var n int
	for _, nodes := range d.Placement {
		n += len(nodes)
	}
	return n
}

// Keys returns the placement keys sorted (stable output for manifests).
func (d *Deployment) Keys() []string {
	keys := make([]string, 0, len(d.Placement))
	for k := range d.Placement {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
