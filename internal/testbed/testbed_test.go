package testbed

import (
	"strings"
	"testing"
)

func TestGrid5000Inventory(t *testing.T) {
	tb := Grid5000()
	if got := len(tb.Clusters()); got != 5 {
		t.Fatalf("clusters = %d, want 5", got)
	}
	chifflot := tb.Cluster("chifflot")
	if chifflot == nil {
		t.Fatal("chifflot missing")
	}
	// Paper: Dell R740, 2 CPUs/node, 12 cores/CPU, 192GB, 480GB SSD,
	// 25Gbps, Tesla V100-PCIE-32GB.
	if chifflot.Spec.Cores() != 24 {
		t.Errorf("chifflot cores = %d, want 24", chifflot.Spec.Cores())
	}
	if chifflot.Spec.MemoryGB != 192 || chifflot.Spec.NICGbps != 25 {
		t.Errorf("chifflot spec wrong: %+v", chifflot.Spec)
	}
	if chifflot.Spec.GPU == nil || chifflot.Spec.GPU.MemoryGB != 32 ||
		!strings.Contains(chifflot.Spec.GPU.Model, "V100") {
		t.Errorf("chifflot GPU wrong: %+v", chifflot.Spec.GPU)
	}
	for _, name := range []string{"chiclet", "chetemi", "chifflet", "gros"} {
		if tb.Cluster(name) == nil {
			t.Errorf("cluster %q missing", name)
		}
	}
}

func TestReserveAndRelease(t *testing.T) {
	tb := Grid5000()
	if tb.Available("chifflot") != 8 {
		t.Fatalf("available = %d", tb.Available("chifflot"))
	}
	res, err := tb.Reserve("chifflot", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 3 || tb.Available("chifflot") != 5 {
		t.Errorf("reserve accounting wrong: %d nodes, %d free", len(res.Nodes), tb.Available("chifflot"))
	}
	if res.Nodes[0].ID != "chifflot-1.lille.grid5000.fr" {
		t.Errorf("node id = %q", res.Nodes[0].ID)
	}
	res.Release()
	if tb.Available("chifflot") != 8 {
		t.Errorf("release did not free nodes: %d", tb.Available("chifflot"))
	}
	res.Release() // double release is a no-op
	if tb.Available("chifflot") != 8 {
		t.Error("double release corrupted accounting")
	}
}

func TestReserveErrors(t *testing.T) {
	tb := Grid5000()
	if _, err := tb.Reserve("nonexistent", 1); err == nil {
		t.Error("unknown cluster accepted")
	}
	if _, err := tb.Reserve("chifflot", 9); err == nil {
		t.Error("over-reservation accepted")
	}
	if _, err := tb.Reserve("chifflot", 0); err == nil {
		t.Error("zero-size reservation accepted")
	}
}

func TestReserveExhaustion(t *testing.T) {
	tb := Grid5000()
	if _, err := tb.Reserve("chifflot", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Reserve("chifflot", 1); err == nil {
		t.Error("reservation on exhausted cluster accepted")
	}
}

// TestPaperScenarioDeployment reproduces the paper's 42-node scenario:
// the engine on chifflot, clients spread over four clusters.
func TestPaperScenarioDeployment(t *testing.T) {
	tb := Grid5000()
	layers := []Layer{
		{Name: "cloud", Services: []Service{
			{Name: "plantnet_engine", Quantity: 2, Cluster: "chifflot",
				Env: map[string]string{"http": "40", "download": "40", "extract": "7", "simsearch": "40"}},
		}},
		{Name: "edge", Services: []Service{
			{Name: "client", Quantity: 8, Cluster: "chiclet"},
			{Name: "client2", Quantity: 15, Cluster: "chetemi"},
			{Name: "client3", Quantity: 8, Cluster: "chifflet"},
			{Name: "client4", Quantity: 9, Cluster: "gros"},
		}},
	}
	d, err := tb.Deploy(layers)
	if err != nil {
		t.Fatal(err)
	}
	defer d.ReleaseAll()
	if d.NodeCount() != 42 {
		t.Errorf("deployed %d nodes, want 42 (paper)", d.NodeCount())
	}
	engine := d.Placement["cloud/plantnet_engine"]
	if len(engine) != 2 || engine[0].Spec.GPU == nil {
		t.Errorf("engine placement wrong: %+v", engine)
	}
	keys := d.Keys()
	if len(keys) != 5 || keys[0] != "cloud/plantnet_engine" {
		t.Errorf("keys = %v", keys)
	}
}

func TestDeployRollbackOnFailure(t *testing.T) {
	tb := Grid5000()
	layers := []Layer{
		{Name: "cloud", Services: []Service{
			{Name: "ok", Quantity: 4, Cluster: "chifflot"},
			{Name: "too_big", Quantity: 100, Cluster: "chiclet"},
		}},
	}
	if _, err := tb.Deploy(layers); err == nil {
		t.Fatal("oversized deployment accepted")
	}
	// The partial reservation must have been rolled back.
	if tb.Available("chifflot") != 8 {
		t.Errorf("rollback failed: chifflot available = %d", tb.Available("chifflot"))
	}
}

func TestDeployEmptyLayerRejected(t *testing.T) {
	tb := Grid5000()
	if _, err := tb.Deploy([]Layer{{Name: "empty"}}); err == nil {
		t.Error("empty layer accepted")
	}
}

func TestDeployDefaultQuantity(t *testing.T) {
	tb := Grid5000()
	d, err := tb.Deploy([]Layer{{Name: "l", Services: []Service{{Name: "s", Cluster: "gros"}}}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.ReleaseAll()
	if len(d.Placement["l/s"]) != 1 {
		t.Errorf("default quantity != 1")
	}
}

func TestTotalNodes(t *testing.T) {
	tb := Grid5000()
	if got := tb.TotalNodes(); got != 8+8+15+8+124 {
		t.Errorf("TotalNodes = %d", got)
	}
}
