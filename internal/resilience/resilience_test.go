package resilience

import (
	"encoding/json"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    *Policy
		ok   bool
	}{
		{"nil", nil, true},
		{"zero", &Policy{}, true},
		{"timeout only", &Policy{TimeoutSeconds: 4}, true},
		{"negative timeout", &Policy{TimeoutSeconds: -1}, false},
		{"retry", &Policy{Retry: &Retry{Max: 3}}, true},
		{"retry zero max", &Policy{Retry: &Retry{Max: 0}}, false},
		{"retry over cap", &Policy{Retry: &Retry{Max: MaxRetries + 1}}, false},
		{"retry inverted delays", &Policy{Retry: &Retry{Max: 2, BaseDelaySeconds: 4, MaxDelaySeconds: 1}}, false},
		{"hedge quantile", &Policy{Hedge: &Hedge{Quantile: 0.95}}, true},
		{"hedge fixed", &Policy{Hedge: &Hedge{DelaySeconds: 1.5}}, true},
		{"hedge empty", &Policy{Hedge: &Hedge{}}, false},
		{"hedge quantile 1", &Policy{Hedge: &Hedge{Quantile: 1}}, false},
		{"breaker without timeout", &Policy{Breaker: &Breaker{FailureThreshold: 5}}, false},
		{"breaker", &Policy{TimeoutSeconds: 4, Breaker: &Breaker{FailureThreshold: 5}}, true},
		{"breaker zero threshold", &Policy{TimeoutSeconds: 4, Breaker: &Breaker{}}, false},
		{"shed", &Policy{Shed: &Shed{QueueDepth: 64}}, true},
		{"shed zero", &Policy{Shed: &Shed{}}, false},
		{"failover", &Policy{Failover: true}, true},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestIsZeroAndJSONOmission(t *testing.T) {
	if !(*Policy)(nil).IsZero() || !(&Policy{}).IsZero() {
		t.Fatal("nil and empty policies must be zero")
	}
	if (&Policy{Failover: true}).IsZero() {
		t.Fatal("failover-only policy must not be zero")
	}
	// The zero policy must serialize to an empty object so unpolicied
	// scenario fingerprints are unchanged by the new field.
	b, err := json.Marshal(&Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "{}" {
		t.Fatalf("zero policy serialized to %s, want {}", b)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := &Policy{
		TimeoutSeconds: 4,
		Retry:          &Retry{Max: 3},
		Hedge:          &Hedge{Quantile: 0.95},
		Breaker:        &Breaker{FailureThreshold: 5},
		Failover:       true,
		Shed:           &Shed{QueueDepth: 64},
	}
	c := p.Clone()
	c.Retry.Max = 9
	c.Hedge.Quantile = 0.5
	c.Breaker.FailureThreshold = 1
	c.Shed.QueueDepth = 1
	if p.Retry.Max != 3 || p.Hedge.Quantile != 0.95 ||
		p.Breaker.FailureThreshold != 5 || p.Shed.QueueDepth != 64 {
		t.Fatal("Clone shares nested blocks with the original")
	}
	if (*Policy)(nil).Clone() != nil {
		t.Fatal("Clone of nil must be nil")
	}
}

func TestDefaults(t *testing.T) {
	r := &Retry{Max: 3}
	if r.Base() != DefaultRetryBaseSeconds || r.Cap() != DefaultRetryMaxSeconds {
		t.Fatalf("retry defaults: base=%g cap=%g", r.Base(), r.Cap())
	}
	b := &Breaker{FailureThreshold: 5}
	if b.Open() != DefaultBreakerOpenSec {
		t.Fatalf("breaker default open=%g", b.Open())
	}
}

// TestBackoffIsDecorrelatedAndBounded pins the backoff contract: every
// draw lies in [base, min(cap, 3*prev)], the stream is deterministic for
// a fixed (seed, serial), and distinct serials give distinct streams.
func TestBackoffIsDecorrelatedAndBounded(t *testing.T) {
	base := SubstreamBase(42)
	st := RequestState(base, 1)
	prev := 0.25
	var first []float64
	for i := 0; i < 50; i++ {
		d := NextBackoff(&st, 0.25, 8, prev)
		lo, hi := 0.25, prev*3
		if hi < lo {
			hi = lo
		}
		if hi > 8 {
			hi = 8
		}
		if d < lo || d > hi {
			t.Fatalf("draw %d: %g outside [%g, %g]", i, d, lo, hi)
		}
		first = append(first, d)
		prev = d
	}
	// Replay: identical.
	st = RequestState(base, 1)
	prev = 0.25
	for i, want := range first {
		d := NextBackoff(&st, 0.25, 8, prev)
		if d != want {
			t.Fatalf("replay draw %d: %g != %g", i, d, want)
		}
		prev = d
	}
	// A different serial must give a different first draw.
	st2 := RequestState(base, 2)
	st = RequestState(base, 1)
	if NextBackoff(&st, 0.25, 8, 0.25) == NextBackoff(&st2, 0.25, 8, 0.25) {
		t.Fatal("serials 1 and 2 produced identical first draws")
	}
}

func TestSummary(t *testing.T) {
	if s := (*Policy)(nil).Summary(); s != "none" {
		t.Fatalf("nil summary = %q", s)
	}
	p := &Policy{
		TimeoutSeconds: 4,
		Retry:          &Retry{Max: 3},
		Hedge:          &Hedge{Quantile: 0.95},
		Failover:       true,
	}
	if s := p.Summary(); s != "timeout=4s retry=3 hedge@p95 failover" {
		t.Fatalf("summary = %q", s)
	}
}
