// Package resilience defines the declarative client/gateway resilience
// policy applied to engine runs: per-request timeouts, bounded retries
// with seeded decorrelated-jitter backoff, hedged requests, per-replica
// circuit breakers, gateway failover routing, and queue-depth load
// shedding. A Policy is plain data — JSON-serializable so it rides
// scenario specs and checkpoint fingerprints — and is compiled by
// internal/plantnet at setup into pre-bound event-kernel hooks.
//
// Determinism: every stochastic choice a policy introduces (the retry
// jitter) draws from a per-request SplitMix64 substream derived
// arithmetically from the run seed and a request serial number
// (SubstreamBase / RequestState), never from the engine's own streams —
// so one request's retry timing is independent of the others, and a
// policy-free run consumes exactly zero extra randomness.
package resilience

import (
	"fmt"

	"e2clab/internal/rngutil"
)

// Policy is a declarative resilience configuration. The zero value (and
// nil) mean "no policy": every mechanism is opt-in via its own block, so
// unpolicied scenarios serialize to nothing (omitempty) and their
// checkpoint fingerprints are unchanged.
type Policy struct {
	// TimeoutSeconds is the per-attempt deadline, measured from dispatch
	// (initial submission, retry, or hedge launch). An attempt past its
	// deadline is failed at the next pipeline checkpoint — arrival,
	// HTTP-slot grant, or uplink hop — and feeds the circuit breaker.
	// 0 disables timeouts.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Retry enables bounded retries with decorrelated-jitter backoff.
	Retry *Retry `json:"retry,omitempty"`
	// Hedge enables hedged requests: a duplicate attempt launched on
	// another replica after a delay, first response wins.
	Hedge *Hedge `json:"hedge,omitempty"`
	// Breaker enables a per-replica circuit breaker with half-open probes.
	Breaker *Breaker `json:"breaker,omitempty"`
	// Failover re-routes requests bound for (or in flight at) a churned
	// gateway to the nearest surviving gateway of the same class, paying
	// the surviving uplink's cost. Requires a simulated network model.
	Failover bool `json:"failover,omitempty"`
	// Shed enables admission control: arrivals above the HTTP queue-depth
	// watermark are rejected at the replica (a retryable failure).
	Shed *Shed `json:"shed,omitempty"`
}

// Retry bounds the retry loop. Backoff is AWS-style decorrelated jitter:
// delay_n = min(max_delay, uniform(base_delay, 3*delay_{n-1})), drawn
// from the request's own substream.
type Retry struct {
	// Max is the number of retries after the initial attempt (1..16; the
	// upper bound keeps retry amplification bounded by construction).
	Max int `json:"max"`
	// BaseDelaySeconds is the backoff floor (default 0.25).
	BaseDelaySeconds float64 `json:"base_delay_seconds,omitempty"`
	// MaxDelaySeconds caps the backoff (default 8).
	MaxDelaySeconds float64 `json:"max_delay_seconds,omitempty"`
}

// Hedge launches one duplicate attempt per request after a delay; the
// first arm to complete wins and the loser is torn down at its next
// pipeline checkpoint. The delay is either fixed (DelaySeconds) or
// derived from the live response-time distribution (Quantile), falling
// back to DelaySeconds until HedgeMinSamples post-warmup responses have
// been observed (hedging stays dormant if there is no fallback).
type Hedge struct {
	// Quantile in (0,1): hedge after the running q-quantile of observed
	// response times (recomputed every sample interval). 0 disables the
	// adaptive delay and uses DelaySeconds alone.
	Quantile float64 `json:"quantile,omitempty"`
	// DelaySeconds is the fixed (or fallback) hedge delay. 0 with a
	// Quantile set means "dormant until the quantile is available".
	DelaySeconds float64 `json:"delay_seconds,omitempty"`
}

// Breaker is a per-replica circuit breaker: FailureThreshold consecutive
// deadline failures open the circuit for OpenSeconds, after which one
// half-open probe decides between closing and re-opening. Because its
// failure signal is the deadline, a Breaker requires TimeoutSeconds.
type Breaker struct {
	FailureThreshold int `json:"failure_threshold"`
	// OpenSeconds is how long an opened circuit rejects routing before
	// admitting a half-open probe (default 5).
	OpenSeconds float64 `json:"open_seconds,omitempty"`
}

// Shed is the admission-control watermark: an arrival finding its
// replica's HTTP queue at or above QueueDepth is rejected.
type Shed struct {
	QueueDepth int `json:"queue_depth"`
}

// Defaults, resolved by the accessor methods so zero-valued JSON fields
// behave documented-default rather than degenerate.
const (
	DefaultRetryBaseSeconds = 0.25
	DefaultRetryMaxSeconds  = 8
	DefaultBreakerOpenSec   = 5
	// MaxRetries bounds Retry.Max so worst-case amplification per logical
	// request is fixed at validation time.
	MaxRetries = 16
	// HedgeMinSamples is how many post-warmup responses the adaptive
	// hedge delay needs before the quantile estimate is trusted.
	HedgeMinSamples = 32
)

// Base returns the resolved backoff floor.
func (r *Retry) Base() float64 {
	if r.BaseDelaySeconds > 0 {
		return r.BaseDelaySeconds
	}
	return DefaultRetryBaseSeconds
}

// Cap returns the resolved backoff ceiling.
func (r *Retry) Cap() float64 {
	if r.MaxDelaySeconds > 0 {
		return r.MaxDelaySeconds
	}
	return DefaultRetryMaxSeconds
}

// Open returns the resolved open-circuit duration.
func (b *Breaker) Open() float64 {
	if b.OpenSeconds > 0 {
		return b.OpenSeconds
	}
	return DefaultBreakerOpenSec
}

// IsZero reports whether p enables nothing (nil included), the gate the
// runner uses: a zero policy takes the exact unpolicied code paths.
func (p *Policy) IsZero() bool {
	return p == nil || (p.TimeoutSeconds == 0 && p.Retry == nil &&
		p.Hedge == nil && p.Breaker == nil && !p.Failover && p.Shed == nil)
}

// Clone deep-copies p so sweep generators can mutate scenario copies
// independently. Clone of nil is nil.
func (p *Policy) Clone() *Policy {
	if p == nil {
		return nil
	}
	c := *p
	if p.Retry != nil {
		r := *p.Retry
		c.Retry = &r
	}
	if p.Hedge != nil {
		h := *p.Hedge
		c.Hedge = &h
	}
	if p.Breaker != nil {
		b := *p.Breaker
		c.Breaker = &b
	}
	if p.Shed != nil {
		s := *p.Shed
		c.Shed = &s
	}
	return &c
}

// Validate checks internal consistency. Topology-dependent constraints
// (Failover needs a simulated network) are checked by the runner against
// the lowered scenario.
func (p *Policy) Validate() error {
	if p == nil {
		return nil
	}
	if p.TimeoutSeconds < 0 {
		return fmt.Errorf("resilience: timeout_seconds %g is negative", p.TimeoutSeconds)
	}
	if r := p.Retry; r != nil {
		if r.Max < 1 || r.Max > MaxRetries {
			return fmt.Errorf("resilience: retry max %d outside [1, %d]", r.Max, MaxRetries)
		}
		if r.BaseDelaySeconds < 0 || r.MaxDelaySeconds < 0 {
			return fmt.Errorf("resilience: retry delays must be non-negative")
		}
		if r.Cap() < r.Base() {
			return fmt.Errorf("resilience: retry max_delay_seconds %g below base_delay_seconds %g", r.Cap(), r.Base())
		}
	}
	if h := p.Hedge; h != nil {
		if h.Quantile < 0 || h.Quantile >= 1 {
			return fmt.Errorf("resilience: hedge quantile %g outside [0, 1)", h.Quantile)
		}
		if h.DelaySeconds < 0 {
			return fmt.Errorf("resilience: hedge delay_seconds %g is negative", h.DelaySeconds)
		}
		if h.Quantile == 0 && h.DelaySeconds == 0 {
			return fmt.Errorf("resilience: hedge needs a quantile or a fixed delay")
		}
	}
	if b := p.Breaker; b != nil {
		if b.FailureThreshold < 1 {
			return fmt.Errorf("resilience: breaker failure_threshold %d must be >= 1", b.FailureThreshold)
		}
		if b.OpenSeconds < 0 {
			return fmt.Errorf("resilience: breaker open_seconds %g is negative", b.OpenSeconds)
		}
		if p.TimeoutSeconds <= 0 {
			return fmt.Errorf("resilience: breaker requires timeout_seconds (the deadline is its failure signal)")
		}
	}
	if s := p.Shed; s != nil && s.QueueDepth < 1 {
		return fmt.Errorf("resilience: shed queue_depth %d must be >= 1", s.QueueDepth)
	}
	return nil
}

// Summary renders a compact human-readable digest for tables and logs,
// e.g. "timeout=4s retry=3 hedge@p95 breaker=5 failover shed=64".
func (p *Policy) Summary() string {
	if p.IsZero() {
		return "none"
	}
	s := ""
	sep := func() {
		if s != "" {
			s += " "
		}
	}
	if p.TimeoutSeconds > 0 {
		s += fmt.Sprintf("timeout=%gs", p.TimeoutSeconds)
	}
	if p.Retry != nil {
		sep()
		s += fmt.Sprintf("retry=%d", p.Retry.Max)
	}
	if p.Hedge != nil {
		sep()
		if p.Hedge.Quantile > 0 {
			s += fmt.Sprintf("hedge@p%g", p.Hedge.Quantile*100)
		} else {
			s += fmt.Sprintf("hedge@%gs", p.Hedge.DelaySeconds)
		}
	}
	if p.Breaker != nil {
		sep()
		s += fmt.Sprintf("breaker=%d", p.Breaker.FailureThreshold)
	}
	if p.Failover {
		sep()
		s += "failover"
	}
	if p.Shed != nil {
		sep()
		s += fmt.Sprintf("shed=%d", p.Shed.QueueDepth)
	}
	return s
}

// SubstreamBase derives the per-run base all request substreams of one
// run hang off: a SplitMix64 finalization of the run seed, so adjacent
// seeds yield unrelated bases.
func SubstreamBase(seed int64) uint64 {
	s := uint64(seed) ^ 0x5bf0f1e2c1ab0000
	return rngutil.SplitMix64(&s)
}

// RequestState derives request substream #serial from a run base. The
// serial is finalized through SplitMix64 before mixing so consecutive
// requests start at unrelated stream positions (a plain base+serial*γ
// offset would make one request's stream a shift of the next one's).
//
//simlint:noalloc per-request substream derivation on the retry hot path
func RequestState(base, serial uint64) uint64 {
	s := serial
	return base ^ rngutil.SplitMix64(&s)
}

// NextBackoff advances a request substream by one draw and returns the
// next decorrelated-jitter delay: min(maxDelay, uniform(base, 3*prev)).
//
//simlint:noalloc backoff draw on the retry hot path
func NextBackoff(state *uint64, base, maxDelay, prev float64) float64 {
	hi := prev * 3
	if hi < base {
		hi = base
	}
	u := float64(rngutil.SplitMix64(state)>>11) / (1 << 53)
	d := base + u*(hi-base)
	if d > maxDelay {
		d = maxDelay
	}
	return d
}
