package sim

import (
	"math"
	"math/rand"
	"testing"
)

// TestLinkNoContentionMatchesClosedForm: a single transfer on an idle link
// takes exactly serialization + propagation (the netem.TransferSeconds
// figure at zero loss).
func TestLinkNoContentionMatchesClosedForm(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 0.020, 1e8, 0, rand.New(rand.NewSource(1))) // 20 ms, 100 Mbps
	var done float64 = -1
	l.Transfer(1.2e6, func() { done = e.Now() })
	e.Run(1000)
	want := 0.020 + 1.2e6*8/1e8
	if math.Abs(done-want) > 1e-9 {
		t.Errorf("delivery at %v, want %v", done, want)
	}
	if l.Delivered() != 1 || l.Retransmits() != 0 {
		t.Errorf("delivered=%d retransmits=%d", l.Delivered(), l.Retransmits())
	}

	// Unlimited rate: pure propagation.
	l2 := NewLink(e, 0.005, 0, 0, rand.New(rand.NewSource(1)))
	start := e.Now()
	done = -1
	l2.Transfer(5e4, func() { done = e.Now() })
	e.Run(e.Now() + 10)
	if math.Abs((done-start)-0.005) > 1e-9 {
		t.Errorf("unlimited-rate delivery took %v, want 0.005", done-start)
	}
}

// TestLinkBandwidthSharing: two simultaneous transfers share the pipe, so
// both finish in twice the solo serialization time (plus delay).
func TestLinkBandwidthSharing(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 0, 8e6, 0, rand.New(rand.NewSource(1))) // 8 Mbps, no delay
	var t1, t2 float64
	l.Transfer(1e6, func() { t1 = e.Now() }) // 1 MB = 8e6 bits -> 1 s solo
	l.Transfer(1e6, func() { t2 = e.Now() })
	e.Run(100)
	if math.Abs(t1-2) > 1e-9 || math.Abs(t2-2) > 1e-9 {
		t.Errorf("shared-pipe completions at %v and %v, want 2 s (processor sharing)", t1, t2)
	}
}

// TestLinkQueueingBacklog: a burst of transfers on a slow uplink backs up —
// the k-th completes after ~k serialization times, which the analytical
// model (every request sees the full rate) cannot produce.
func TestLinkQueueingBacklog(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 0, 8e6, 0, rand.New(rand.NewSource(1)))
	const n = 8
	times := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		l.Transfer(1e6, func() { times = append(times, e.Now()) })
	}
	e.Run(1000)
	if len(times) != n {
		t.Fatalf("delivered %d of %d", len(times), n)
	}
	// Under processor sharing all n finish together at n * solo time.
	if math.Abs(times[n-1]-n) > 1e-9 {
		t.Errorf("last delivery at %v, want %v", times[n-1], float64(n))
	}
}

// TestLinkLossRetransmission: mean delivery time over many transfers on a
// lossy link approaches (serialize + delay) / (1 - p).
func TestLinkLossRetransmission(t *testing.T) {
	e := NewEngine()
	const loss = 25.0
	l := NewLink(e, 0.010, 1e8, loss, rand.New(rand.NewSource(7)))
	attempt := 0.010 + 1e5*8/1e8
	want := attempt / (1 - loss/100)
	const n = 4000
	var sum float64
	var count int
	var launch func()
	start := 0.0
	launch = func() {
		start = e.Now()
		l.Transfer(1e5, func() {
			sum += e.Now() - start
			count++
			if count < n {
				launch()
			}
		})
	}
	launch()
	e.Run(1e9)
	if count != n {
		t.Fatalf("delivered %d of %d", count, n)
	}
	got := sum / n
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("mean lossy delivery %v, want %v (±5%%)", got, want)
	}
	if l.Retransmits() == 0 {
		t.Error("no retransmissions recorded at 25% loss")
	}
}

// TestLinkFullyLossyIsBlackHole: loss >= 100% never delivers and never
// schedules (the analytical +Inf path).
func TestLinkFullyLossyIsBlackHole(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 0.001, 1e9, 100, rand.New(rand.NewSource(1)))
	fired := false
	l.Transfer(1e6, func() { fired = true })
	if e.Pending() != 0 {
		t.Errorf("black-hole transfer scheduled %d events", e.Pending())
	}
	e.Run(100)
	if fired {
		t.Error("fully lossy link delivered a payload")
	}
	if l.Blackholed() != 1 {
		t.Errorf("Blackholed = %d, want 1", l.Blackholed())
	}
}

// TestLinkResetRepeatsBitIdentical: Engine.Reset + Link.Reset + an RNG
// re-seed reproduce a run's delivery times exactly — the contract the
// pooled plantnet Runner relies on.
func TestLinkResetRepeatsBitIdentical(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(3))
	l := NewLink(e, 0.002, 2e7, 10, rng)
	run := func() []float64 {
		var times []float64
		var launch func()
		launch = func() {
			l.Transfer(2e5, func() {
				times = append(times, e.Now())
				if len(times) < 50 {
					launch()
				}
			})
		}
		launch()
		e.Run(1e9)
		return times
	}
	first := run()
	e.Reset()
	l.Reset()
	rng.Seed(3)
	second := run()
	if len(first) != len(second) {
		t.Fatalf("lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if math.Float64bits(first[i]) != math.Float64bits(second[i]) {
			t.Fatalf("delivery %d differs after reset: %v vs %v", i, first[i], second[i])
		}
	}
	if l.Delivered() != 50 {
		t.Errorf("post-reset Delivered = %d, want 50 (stats must reset)", l.Delivered())
	}
}

// TestSharedResourceProgressAtLargeClock: completion events keep making
// progress when the clock is so large that the residual work left by float
// subtraction is below one ulp of the clock (regression: the reschedule
// loop used to re-fire the same instant forever).
func TestSharedResourceProgressAtLargeClock(t *testing.T) {
	e := NewEngine()
	e.Schedule(1e6, nopFn)
	e.Run(1e6) // park the clock at 10^6 s
	pipe := NewSharedResource(e, 1, func(w float64) float64 {
		if w <= 0 {
			return 0
		}
		return 1
	})
	done := 0
	for i := 0; i < 16; i++ {
		pipe.Add(0.08, 1, func() { done++ })
	}
	e.Run(e.Now() + 100)
	if done != 16 {
		t.Fatalf("completed %d of 16 jobs at large clock", done)
	}
}

// TestEngineResetFreshEquivalence: a reset engine fires a schedule exactly
// like a fresh one (same times, same order).
func TestEngineResetFreshEquivalence(t *testing.T) {
	drive := func(e *Engine) []float64 {
		var fired []float64
		for i := 0; i < 200; i++ {
			d := float64(i%37) * 0.21
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.Schedule(30, func() { fired = append(fired, e.Now()) }) // overflow tier
		e.Run(1e6)
		return fired
	}
	used := NewEngine()
	drive(used) // dirty it
	used.Reset()
	got := drive(used)
	want := drive(NewEngine())
	if len(got) != len(want) {
		t.Fatalf("event counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("firing %d differs: %v vs %v", i, got[i], want[i])
		}
	}
	if used.Now() != NewEngine().Now()+1e6 && used.Now() != 1e6 {
		t.Errorf("clock after reset run = %v", used.Now())
	}
}

// TestSharedResourceAndPoolReset: resources on a reset engine behave like
// fresh ones.
func TestSharedResourceAndPoolReset(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 2)
	p := NewPool(e, "x", 2)
	for i := 0; i < 8; i++ {
		cpu.Add(1, 1, func() {})
		p.Request(func() { e.Schedule(0.5, p.Release) })
	}
	e.Run(2) // leave work in flight
	e.Reset()
	cores := 3.0
	cpu.Reset(cores, func(w float64) float64 { return math.Min(w, cores) })
	p.Reset(4)
	if cpu.ActiveJobs() != 0 || cpu.ActiveWeight() != 0 || cpu.WorkIntegral() != 0 {
		t.Errorf("cpu not reset: jobs=%d weight=%v work=%v", cpu.ActiveJobs(), cpu.ActiveWeight(), cpu.WorkIntegral())
	}
	if p.Busy() != 0 || p.Queued() != 0 || p.Grants() != 0 || p.Size() != 4 {
		t.Errorf("pool not reset: %+v", p)
	}
	done := 0
	cpu.Add(1.5, 1, func() { done++ })
	p.Request(func() { done++ })
	e.Run(10)
	if done != 2 {
		t.Errorf("post-reset resources not functional: done=%d", done)
	}
}
