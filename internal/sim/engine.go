// Package sim is a deterministic discrete-event simulation kernel. It is the
// substrate on which the Pl@ntNet Identification Engine model
// (internal/plantnet) and the testbed network model run.
//
// The kernel is callback-based and single-threaded: events fire in
// (time, insertion) order, so a simulation is fully determined by its inputs
// and seed — a requirement for the reproducible experiments the paper's
// methodology mandates.
//
// # Calendar structure
//
// The event calendar is a two-tier ladder instead of one big binary heap:
//
//   - front: a small flat min-heap ordered by (time, seq) holding only the
//     events of the bucket the clock is currently in. All pops come from
//     here, so the per-event heap work is O(log bucketSize), not
//     O(log totalEvents).
//   - ring: ringSlots unsorted buckets of bucketW seconds each, covering the
//     near future (curB, curB+ringSlots). Insertion is an O(1) append; a
//     bucket is heapified into front only when the clock reaches it.
//   - over: an overflow min-heap for events beyond the ring horizon. Events
//     migrate ring-ward (at most once each) when the horizon advances past
//     them.
//
// Event nodes live in an arena recycled through a generation-counted
// freelist, and Event handles are plain values (arena index + generation),
// so steady-state Schedule/Reschedule/Cancel/Step perform zero heap
// allocations and never leave cancelled tombstones in the calendar. Firing
// order is exactly (time, seq) in every tier, which keeps fixed-seed runs
// bit-identical to the old single-heap kernel (see calendar_equiv_test.go).
package sim

import "math"

const (
	// ringSlots is the number of near-future buckets (power of two).
	ringSlots = 256
	ringMask  = ringSlots - 1
	// bucketW is the bucket width in simulated seconds: sized so that at the
	// Pl@ntNet engine's event density (hundreds of events per simulated
	// second) a bucket holds on the order of ten events, keeping the front
	// heap tiny. Any value is semantically equivalent — order is always
	// (time, seq) — it only shifts work between tiers.
	bucketW    = 1.0 / 32
	invBucketW = 32.0
	// maxBucketable guards the float->int64 bucket conversion. Once the
	// clock must advance past this many buckets (~10^15 s of simulated
	// time), the engine degrades to a flat heap (frontEnd = +Inf), which is
	// still exactly correct — just unbucketed.
	maxBucketable = 1 << 50
)

// loc says which calendar tier an event node currently sits in.
type loc uint8

const (
	locFree loc = iota
	locFront
	locRing
	locOver
)

// entry is a calendar slot: the sort key plus the arena index of its node.
type entry struct {
	time float64
	seq  int64
	idx  int32
}

func entryLess(a, b entry) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// eventNode is the arena-resident part of an event. gen is bumped every time
// the node is released, so stale Event handles (fired, cancelled, or
// recycled) are detected in O(1).
type eventNode struct {
	fn   func()
	gen  uint32
	loc  loc
	slot uint16 // ring slot index when loc == locRing
	pos  int32  // index within its tier's slice
}

// Engine is an event calendar with a simulation clock.
type Engine struct {
	now  float64
	seq  int64
	live int // scheduled, non-cancelled events (O(1) Pending)

	nodes []eventNode
	free  []int32

	curB     int64   // absolute bucket index the front heap belongs to
	frontEnd float64 // (curB+1)*bucketW: front admits t < frontEnd
	ringEnd  float64 // (curB+ringSlots)*bucketW: ring admits t < ringEnd

	front []entry            // min-heap by (time, seq)
	ring  [ringSlots][]entry // unsorted near-future buckets
	ringN int
	over  []entry // min-heap by (time, seq), t >= ringEnd at insert time
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		frontEnd: bucketW,
		ringEnd:  ringSlots * bucketW,
	}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Event is a value handle to a scheduled callback; it can be cancelled or
// rescheduled. The zero Event is inert. Handles stay cheap to copy (no heap
// allocation per Schedule) and detect staleness through the node's
// generation counter: cancelling a fired, cancelled, or recycled event is a
// no-op.
type Event struct {
	eng *Engine
	idx int32
	gen uint32
}

// Cancel prevents the event from firing, removing it from the calendar
// immediately (no tombstone). Cancelling a fired or already cancelled event
// is a no-op.
//
//simlint:noalloc steady-state calendar path (PR 3 contract, sim/alloc_test.go)
func (ev Event) Cancel() {
	e := ev.eng
	if e == nil {
		return
	}
	nd := &e.nodes[ev.idx]
	if nd.gen != ev.gen || nd.loc == locFree {
		return
	}
	e.removeEntry(ev.idx)
	e.release(ev.idx)
	e.live--
}

// Schedule runs fn after delay seconds of simulated time. A negative or NaN
// delay is treated as zero (fires at the current instant, after
// already-queued events for that instant).
//
//simlint:noalloc steady-state calendar path
func (e *Engine) Schedule(delay float64, fn func()) Event {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute simulation time t. Times in the past and NaN are
// clamped to now (a NaN must not enter the calendar: it is unordered, so it
// would corrupt every tier's invariants). +Inf is a valid "never unless the
// horizon is infinite" time.
//
//simlint:noalloc steady-state calendar path
func (e *Engine) At(t float64, fn func()) Event {
	if t < e.now || math.IsNaN(t) {
		t = e.now
	}
	idx := e.alloc(fn)
	e.seq++
	e.insert(entry{time: t, seq: e.seq, idx: idx})
	e.live++
	return Event{eng: e, idx: idx, gen: e.nodes[idx].gen}
}

// Reschedule moves a still-pending event to absolute time t (clamped to
// now), with the same (time, seq) tie semantics as cancelling it and
// scheduling afresh — but in place, reusing the event's node. It returns
// false when ev has already fired or been cancelled; the caller should then
// Schedule a new event. High-frequency reschedulers (SharedResource
// recomputes its next completion on every job arrival) use this to keep the
// calendar free of dead entries.
//
//simlint:noalloc steady-state calendar path
func (e *Engine) Reschedule(ev Event, t float64) bool {
	if ev.eng != e || e == nil {
		return false
	}
	nd := &e.nodes[ev.idx]
	if nd.gen != ev.gen || nd.loc == locFree {
		return false
	}
	if t < e.now || math.IsNaN(t) {
		t = e.now
	}
	e.removeEntry(ev.idx)
	e.seq++
	e.insert(entry{time: t, seq: e.seq, idx: ev.idx})
	return true
}

// Step fires the next event. It returns false when the calendar is empty.
//
//simlint:noalloc steady-state calendar path
func (e *Engine) Step() bool {
	if len(e.front) == 0 && !e.advance() {
		return false
	}
	ent := e.heapPopMin(&e.front, locFront)
	fn := e.nodes[ent.idx].fn
	e.release(ent.idx)
	e.live--
	e.now = ent.time
	fn()
	return true
}

// Run fires events until the calendar is empty or the clock would pass
// until. The clock is left at min(until, last event time); events scheduled
// beyond until remain queued.
//
//simlint:noalloc steady-state calendar path
func (e *Engine) Run(until float64) {
	for {
		if len(e.front) == 0 {
			if e.ringN == 0 && (len(e.over) == 0 || e.over[0].time > until) {
				// Nothing within the horizon; don't rebase the calendar for
				// events we are not going to fire.
				if len(e.over) > 0 {
					e.now = until
					return
				}
				break
			}
			e.advance()
		}
		if e.front[0].time > until {
			e.now = until
			return
		}
		ent := e.heapPopMin(&e.front, locFront)
		fn := e.nodes[ent.idx].fn
		e.release(ent.idx)
		e.live--
		e.now = ent.time
		fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of scheduled (non-cancelled) events. It is
// O(1): the count is maintained incrementally on Schedule, Cancel, and fire.
func (e *Engine) Pending() int { return e.live }

// Reset returns the engine to the fresh-constructed state — clock at zero,
// empty calendar — while keeping the arena, freelist, and tier backing
// arrays, so a pooled engine's next run schedules without re-growing
// anything. Every outstanding Event handle (and any resource built on the
// engine, e.g. SharedResource/Pool/Link) becomes invalid and must be reset
// or dropped by its owner; plantnet's Runner is the canonical caller.
//
//simlint:noalloc pooled-reuse path (PR 5 contract): reset must not re-grow
func (e *Engine) Reset() {
	e.now, e.seq, e.live = 0, 0, 0
	for i := range e.nodes {
		e.nodes[i].fn = nil
	}
	e.nodes = e.nodes[:0]
	e.free = e.free[:0]
	e.curB = 0
	e.frontEnd = bucketW
	e.ringEnd = ringSlots * bucketW
	e.front = e.front[:0]
	for i := range e.ring {
		e.ring[i] = e.ring[i][:0]
	}
	e.ringN = 0
	e.over = e.over[:0]
}

// --- arena -----------------------------------------------------------------

//simlint:noalloc arena pop; growth is an amortized append into kept capacity
func (e *Engine) alloc(fn func()) int32 {
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.nodes = append(e.nodes, eventNode{})
		idx = int32(len(e.nodes) - 1)
	}
	e.nodes[idx].fn = fn
	return idx
}

//simlint:noalloc
func (e *Engine) release(idx int32) {
	nd := &e.nodes[idx]
	nd.fn = nil
	nd.gen++
	nd.loc = locFree
	e.free = append(e.free, idx)
}

// --- calendar tiers --------------------------------------------------------

// insert files an entry into the tier its time belongs to.
//
//simlint:noalloc
func (e *Engine) insert(ent entry) {
	switch {
	case ent.time < e.frontEnd:
		e.heapPush(&e.front, locFront, ent)
	case ent.time < e.ringEnd:
		e.ringPut(ent)
	default:
		e.heapPush(&e.over, locOver, ent)
	}
}

//simlint:noalloc
func (e *Engine) ringPut(ent entry) {
	s := int(int64(ent.time*invBucketW) & ringMask)
	nd := &e.nodes[ent.idx]
	nd.loc, nd.slot, nd.pos = locRing, uint16(s), int32(len(e.ring[s]))
	e.ring[s] = append(e.ring[s], ent)
	e.ringN++
}

// removeEntry detaches a live entry from whatever tier holds it.
//
//simlint:noalloc
func (e *Engine) removeEntry(idx int32) {
	nd := &e.nodes[idx]
	switch nd.loc {
	case locFront:
		e.heapRemove(&e.front, locFront, int(nd.pos))
	case locOver:
		e.heapRemove(&e.over, locOver, int(nd.pos))
	case locRing:
		s := int(nd.slot)
		sl := e.ring[s]
		p := int(nd.pos)
		last := len(sl) - 1
		if p != last {
			sl[p] = sl[last]
			e.nodes[sl[p].idx].pos = int32(p)
		}
		e.ring[s] = sl[:last]
		e.ringN--
	}
}

// advance moves the calendar to the next nonempty bucket, loading it into
// the front heap. It returns false when no events remain anywhere. The front
// heap must be empty on entry.
//
//simlint:noalloc
func (e *Engine) advance() bool {
	if e.ringN > 0 {
		// The ring invariant guarantees a nonempty slot within ringSlots-1
		// steps, and that every ring event precedes every overflow event.
		b := e.curB + 1
		for i := 0; i < ringSlots; i++ {
			if len(e.ring[b&ringMask]) > 0 {
				e.rebase(b)
				return true
			}
			b++
		}
		panic("sim: ring count out of sync with slots")
	}
	if len(e.over) == 0 {
		return false
	}
	if m := e.over[0].time; m*invBucketW < maxBucketable {
		e.rebase(int64(m * invBucketW))
		return true
	}
	// Beyond bucketable time: degrade to a flat heap, permanently. Still
	// exact (time, seq) order — just no ring tier from here on.
	e.frontEnd = math.Inf(1)
	e.ringEnd = math.Inf(1)
	e.front = append(e.front[:0], e.over...)
	e.over = e.over[:0]
	e.heapifyFront()
	return true
}

// rebase advances the calendar base to bucket b: loads b's ring slot into
// the front heap and migrates newly in-horizon overflow events into the
// ring (each event migrates at most once).
//
//simlint:noalloc
func (e *Engine) rebase(b int64) {
	e.curB = b
	e.frontEnd = float64(b+1) * bucketW
	e.ringEnd = float64(b+ringSlots) * bucketW
	s := int(b & ringMask)
	if sl := e.ring[s]; len(sl) > 0 {
		e.ringN -= len(sl)
		e.front = append(e.front[:0], sl...)
		e.ring[s] = sl[:0]
		e.heapifyFront()
	}
	for len(e.over) > 0 && e.over[0].time < e.ringEnd {
		ent := e.heapPopMin(&e.over, locOver)
		if ent.time < e.frontEnd {
			e.heapPush(&e.front, locFront, ent)
		} else {
			e.ringPut(ent)
		}
	}
}

// --- flat (time, seq) min-heaps with arena position tracking ---------------

//simlint:noalloc
func (e *Engine) heapifyFront() {
	h := e.front
	for i, ent := range h {
		nd := &e.nodes[ent.idx]
		nd.loc, nd.pos = locFront, int32(i)
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		e.siftDown(h, i, locFront)
	}
}

//simlint:noalloc
func (e *Engine) siftUp(h []entry, i int, l loc) {
	ent := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if !entryLess(ent, h[p]) {
			break
		}
		h[i] = h[p]
		e.nodes[h[i].idx].pos = int32(i)
		i = p
	}
	h[i] = ent
	nd := &e.nodes[ent.idx]
	nd.loc, nd.pos = l, int32(i)
}

//simlint:noalloc
func (e *Engine) siftDown(h []entry, i int, l loc) {
	n := len(h)
	ent := h[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && entryLess(h[r], h[c]) {
			c = r
		}
		if !entryLess(h[c], ent) {
			break
		}
		h[i] = h[c]
		e.nodes[h[i].idx].pos = int32(i)
		i = c
	}
	h[i] = ent
	nd := &e.nodes[ent.idx]
	nd.loc, nd.pos = l, int32(i)
}

//simlint:noalloc
func (e *Engine) heapPush(h *[]entry, l loc, ent entry) {
	*h = append(*h, ent)
	e.siftUp(*h, len(*h)-1, l)
}

//simlint:noalloc
func (e *Engine) heapPopMin(h *[]entry, l loc) entry {
	s := *h
	min := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	if last > 0 {
		e.siftDown(*h, 0, l)
	}
	return min
}

//simlint:noalloc
func (e *Engine) heapRemove(h *[]entry, l loc, i int) {
	s := *h
	last := len(s) - 1
	s[i] = s[last]
	*h = s[:last]
	s = s[:last]
	if i < last {
		if i > 0 && entryLess(s[i], s[(i-1)/2]) {
			e.siftUp(s, i, l)
		} else {
			e.siftDown(s, i, l)
		}
	}
}
