// Package sim is a deterministic discrete-event simulation kernel. It is the
// substrate on which the Pl@ntNet Identification Engine model
// (internal/plantnet) and the testbed network model run.
//
// The kernel is callback-based and single-threaded: events fire in
// (time, insertion) order, so a simulation is fully determined by its inputs
// and seed — a requirement for the reproducible experiments the paper's
// methodology mandates.
package sim

import (
	"container/heap"
	"math"
)

// Engine is an event calendar with a simulation clock.
type Engine struct {
	now    float64
	seq    int64
	events eventHeap
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Event is a handle to a scheduled callback; it can be cancelled.
type Event struct {
	time      float64
	seq       int64
	fn        func()
	index     int // heap index, -1 once popped or cancelled
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling a fired or already
// cancelled event is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// Schedule runs fn after delay seconds of simulated time. A negative delay
// is treated as zero (fires at the current instant, after already-queued
// events for that instant).
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute simulation time t (clamped to now).
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &Event{time: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// Reschedule moves a still-pending event to absolute time t (clamped to
// now), with the same (time, seq) tie semantics as cancelling it and
// scheduling afresh — but in place, without allocating a new event or
// leaving a cancelled tombstone in the calendar. It returns false when ev
// has already fired or been cancelled; the caller should then Schedule a
// new event. High-frequency reschedulers (SharedResource recomputes its
// next completion on every job arrival) use this to keep the calendar free
// of dead entries.
func (e *Engine) Reschedule(ev *Event, t float64) bool {
	if ev == nil || ev.cancelled || ev.index < 0 {
		return false
	}
	if t < e.now || math.IsNaN(t) {
		t = e.now
	}
	e.seq++
	ev.time = t
	ev.seq = e.seq
	heap.Fix(&e.events, ev.index)
	return true
}

// Step fires the next event. It returns false when the calendar is empty.
func (e *Engine) Step() bool {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.time
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the calendar is empty or the clock would pass
// until. The clock is left at min(until, last event time); events scheduled
// beyond until remain queued.
func (e *Engine) Run(until float64) {
	for e.events.Len() > 0 {
		next := e.events[0]
		if next.cancelled {
			heap.Pop(&e.events)
			continue
		}
		if next.time > until {
			e.now = until
			return
		}
		heap.Pop(&e.events)
		e.now = next.time
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// eventHeap orders events by (time, seq): simultaneous events fire in
// scheduling order, which keeps runs deterministic.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
