// Package shard runs several private discrete-event engines in parallel
// under Chandy–Misra-style conservative synchronization. Virtual time is cut
// into fixed-width windows no wider than the minimum cross-shard lookahead;
// within a window every node advances its own engine independently (no locks,
// no shared state), and cross-node events travel as value messages through
// per-node-pair mailboxes that the coordinator drains at the window barrier
// in (time, srcNode, seq) order. Because a message emitted inside window k
// can only be due strictly after window k ends (the lookahead bound), the
// barrier order — and therefore every engine's event order — is independent
// of how many OS workers execute the windows, which is what makes fixed-seed
// sharded runs bit-identical at any worker count.
//
// This package deliberately lives OUTSIDE lint.KernelPackages: the
// single-threaded kernel in internal/sim stays free of runtime
// synchronization (statically enforced by simlint's kernelsync check), and
// every goroutine, channel and atomic in the sharded discipline is confined
// to this one blessed coordinator with per-site //simlint:ordered
// attestations.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Msg is the cross-node event envelope: a fixed-size value so mailboxes are
// flat slices the coordinator can retain and reuse without per-message
// allocation. At is the virtual delivery time; Src/Seq are stamped by the
// Outbox and, with At, form the total delivery order (At, Src, Seq). The
// remaining fields are an application-defined payload (opcode, correlation
// tokens, scalars, and a small vector — sized for plantnet's per-request
// task breakdown).
type Msg struct {
	At  float64
	Src int32
	Dst int32
	Seq int64

	Kind   int32
	Ref    int32
	Token  int64
	Token2 int64
	F0, F1 float64
	Vec    [9]float64
}

// less is the mailbox delivery order: (At, Src, Seq).
func (m *Msg) less(o *Msg) bool {
	if m.At != o.At {
		return m.At < o.At
	}
	if m.Src != o.Src {
		return m.Src < o.Src
	}
	return m.Seq < o.Seq
}

// Node is one shard: it owns a private engine and advances it in windows.
// Advance must run the node's virtual clock up to and including until, after
// first applying every message in inbox (already sorted in delivery order;
// each At lies in the current window). Messages to other nodes are emitted
// via out. Advance is called from coordinator workers: it must touch only
// node-private state — determinism and the race detector both depend on it.
type Node interface {
	Advance(until float64, inbox []Msg, out *Outbox)
}

// Outbox collects one node's cross-shard emissions for the current window,
// stamping each message with the source node and a per-destination sequence
// number that is monotonic over the whole run — the (At, Src, Seq) delivery
// order needs no other tiebreak. Each node writes only its own Outbox, so
// emission is synchronization-free.
type Outbox struct {
	src  int32
	msgs []Msg
	seq  []int64 // per-destination emission counters
}

// Send emits m to node dst. m.At must already be set to the virtual delivery
// time; Src/Dst/Seq are stamped here.
//
//simlint:noalloc steady-state emission appends into buffers retained across windows
func (o *Outbox) Send(dst int32, m Msg) {
	m.Src = o.src
	m.Dst = dst
	m.Seq = o.seq[dst]
	o.seq[dst]++
	o.msgs = append(o.msgs, m)
}

// Coordinator owns the window loop: it cuts [0, until] into windows of the
// configured width, hands each node its due mailbox prefix, runs every
// node's Advance (inline, or on a persistent worker pool), then routes the
// emitted messages into per-destination pending buffers kept in delivery
// order. All mutable state is either node-private (engines, outboxes) or
// touched only between barriers on the coordinator goroutine.
type Coordinator struct {
	nodes   []Node
	window  float64
	outs    []Outbox
	pending [][]Msg // per destination, sorted by (At, Src, Seq)
	inboxes [][]Msg // per destination, the due prefix copied out per window
	cursor  atomic.Int64
}

// NewCoordinator builds a coordinator over nodes with the given window
// width, which must be positive and no larger than the minimum cross-node
// lookahead (the caller derives it from propagation delay; the Run loop
// panics on any message that violates it).
func NewCoordinator(nodes []Node, window float64) *Coordinator {
	if window <= 0 {
		panic(fmt.Sprintf("shard: window width must be positive, got %v", window))
	}
	n := len(nodes)
	c := &Coordinator{
		nodes:   nodes,
		window:  window,
		outs:    make([]Outbox, n),
		pending: make([][]Msg, n),
		inboxes: make([][]Msg, n),
	}
	for i := range c.outs {
		c.outs[i].src = int32(i)
		c.outs[i].seq = make([]int64, n)
	}
	return c
}

// Reset prepares a pooled coordinator for a fresh run over the same nodes:
// emission counters return to zero and the mailbox buffers are emptied, but
// their backing arrays are retained so a reused coordinator's steady state
// allocates nothing.
func (c *Coordinator) Reset(window float64) {
	if window <= 0 {
		panic(fmt.Sprintf("shard: window width must be positive, got %v", window))
	}
	c.window = window
	for i := range c.outs {
		c.outs[i].msgs = c.outs[i].msgs[:0]
		for j := range c.outs[i].seq {
			c.outs[i].seq[j] = 0
		}
		c.pending[i] = c.pending[i][:0]
		c.inboxes[i] = c.inboxes[i][:0]
	}
}

// Run advances every node to virtual time until (inclusive), window by
// window. workers bounds the OS-level parallelism: values <= 1 run the
// window loop inline on the calling goroutine (bit-identical to any other
// worker count — the tests enforce it); higher values spawn that many
// persistent workers for the duration of the call, each pulling node
// indices from a shared atomic cursor. Which worker advances which node can
// never affect output: nodes share nothing, and routing happens on the
// coordinator goroutine between barriers in fixed node order. The parallel
// path lives in runParallel so the inline path stays allocation-free (the
// worker closure would otherwise make its captured variables escape here).
//
//simlint:noalloc steady-state window loop: delivery, advance and routing reuse buffers retained across windows
func (c *Coordinator) Run(until float64, workers int) {
	if workers > len(c.nodes) {
		workers = len(c.nodes)
	}
	if workers > 1 {
		c.runParallel(until, workers) //simlint:allow noallocclosure runParallel is the explicitly-parallel cold path; its worker spawn is per-Run, not per-window
		return
	}
	for k := int64(1); ; k++ {
		end := c.window * float64(k)
		if end > until {
			end = until
		}
		c.deliver(end)
		for i := range c.nodes {
			c.nodes[i].Advance(end, c.inboxes[i], &c.outs[i]) //simlint:allow noallocclosure Advance is an interface call; each node's own steady-state paths carry their own noalloc contracts (plantnet shSlot pool, sim freelists)
		}
		c.route(end)
		if end >= until {
			return
		}
	}
}

// runParallel is Run's worker-pool variant: the same window loop with the
// Advance phase fanned out over persistent goroutines. The channels form
// the barrier — every worker has sent done (and thus finished every Advance
// it claimed) before the coordinator routes, and the coordinator has
// finished delivering before any worker receives start — so node-private
// state is handed off with a happens-before edge in each direction and the
// race detector observes the discipline, not just the schedule.
//
//simlint:ordered worker assignment is load-balancing only: nodes touch disjoint state and the coordinator routes outboxes in fixed node order after the barrier, so output is independent of worker interleaving
func (c *Coordinator) runParallel(until float64, workers int) {
	n := len(c.nodes)
	start := make(chan float64, workers)
	done := make(chan struct{}, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for end := range start {
				for {
					i := c.cursor.Add(1) - 1
					if i >= int64(n) {
						break
					}
					c.nodes[i].Advance(end, c.inboxes[i], &c.outs[i])
				}
				done <- struct{}{}
			}
		}()
	}
	for k := int64(1); ; k++ {
		end := c.window * float64(k)
		if end > until {
			end = until
		}
		c.deliver(end)
		c.cursor.Store(0)
		for w := 0; w < workers; w++ {
			start <- end
		}
		for w := 0; w < workers; w++ {
			<-done
		}
		c.route(end)
		if end >= until {
			break
		}
	}
	close(start)
	wg.Wait()
}

// deliver copies each destination's due mailbox prefix (At <= end) into its
// inbox buffer and compacts the remainder. pending is sorted, so the prefix
// is contiguous.
//
//simlint:noalloc steady-state delivery reuses inbox buffers retained across windows
func (c *Coordinator) deliver(end float64) {
	for d := range c.pending {
		p := c.pending[d]
		due := 0
		for due < len(p) && p[due].At <= end {
			due++
		}
		c.inboxes[d] = append(c.inboxes[d][:0], p[:due]...)
		c.pending[d] = p[:copy(p, p[due:])]
	}
}

// route moves every node's window emissions into the destination pending
// buffers in fixed node order, enforcing the lookahead bound (a message due
// within the window just executed would have to travel backwards in virtual
// time at its destination — a programming error, not a recoverable
// condition).
//
//simlint:noalloc steady-state routing reuses pending buffers retained across windows
func (c *Coordinator) route(end float64) {
	for i := range c.outs {
		for _, m := range c.outs[i].msgs {
			if m.At <= end {
				lookaheadPanic(i, m.At, end, c.window) //simlint:allow noallocclosure fatal-path formatting; the process dies here
			}
			insert(&c.pending[m.Dst], m)
		}
		c.outs[i].msgs = c.outs[i].msgs[:0]
	}
}

// lookaheadPanic reports a lookahead violation. Kept out of line so route's
// steady state stays provably allocation-free (the Sprintf arguments would
// otherwise escape at every call site).
//
//go:noinline
func lookaheadPanic(node int, at, end, window float64) {
	panic(fmt.Sprintf(
		"shard: lookahead violation: node %d emitted a message due at %v inside its own window ending %v (window width %v)",
		node, at, end, window))
}

// insert places m into the sorted pending buffer. Emissions arrive nearly
// sorted (each source emits in nondecreasing At), so the linear
// shift-from-the-back insertion is effectively O(1) per message; hand-rolled
// to keep the steady-state window loop allocation-free (sort.Slice's closure
// would escape).
//
//simlint:noalloc steady-state routing appends into buffers retained across windows
func insert(ps *[]Msg, m Msg) {
	p := append(*ps, m)
	for i := len(p) - 1; i > 0 && p[i].less(&p[i-1]); i-- {
		p[i], p[i-1] = p[i-1], p[i]
	}
	*ps = p
}
