package shard

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"e2clab/internal/sim"
)

// echoNode is a synthetic shard: a private sim.Engine that, on each applied
// message, records the delivery order and (for a few generations) emits a
// reply to a deterministically chosen peer one lookahead later. It exercises
// exactly the discipline plantnet's domain/core nodes use, with an
// application log the tests can compare bit-for-bit across worker counts.
type echoNode struct {
	id    int32
	n     int32
	eng   *sim.Engine
	out   *Outbox
	log   []string
	emits int
}

func newEchoNode(id, n int32) *echoNode {
	return &echoNode{id: id, n: n, eng: sim.NewEngine()}
}

const lookahead = 0.5

func (e *echoNode) Advance(until float64, inbox []Msg, out *Outbox) {
	e.out = out
	for i := range inbox {
		m := inbox[i] // copy: schedule captures the loop-local value
		e.eng.At(m.At, func() {
			e.log = append(e.log, fmt.Sprintf("t=%.3f src=%d seq=%d kind=%d", e.eng.Now(), m.Src, m.Seq, m.Kind))
			if m.Kind > 0 {
				dst := (m.Src + m.Ref) % e.n
				e.out.Send(dst, Msg{At: e.eng.Now() + lookahead, Kind: m.Kind - 1, Ref: m.Ref})
				e.emits++
			}
		})
	}
	e.eng.Run(until)
}

// seedRound emits the initial message wave before the first window, the way
// plantnet seeds arrivals: scheduled on the engines, delivered via mailboxes.
func seed(nodes []*echoNode, c *Coordinator) {
	for _, nd := range nodes {
		// Each node starts three generations-of-8 cascades to varied peers.
		for k := int32(1); k <= 3; k++ {
			c.pending[(nd.id+k)%nd.n] = append(c.pending[(nd.id+k)%nd.n],
				Msg{At: float64(k) * 0.6, Src: nd.id, Dst: (nd.id + k) % nd.n, Seq: int64(k), Kind: 8, Ref: k})
		}
	}
	for i := range c.pending {
		p := c.pending[i]
		for j := 1; j < len(p); j++ {
			for k := j; k > 0 && p[k].less(&p[k-1]); k-- {
				p[k], p[k-1] = p[k-1], p[k]
			}
		}
	}
}

func runEcho(t *testing.T, nNodes, workers int) []string {
	t.Helper()
	nodes := make([]*echoNode, nNodes)
	ifaces := make([]Node, nNodes)
	for i := range nodes {
		nodes[i] = newEchoNode(int32(i), int32(nNodes))
		ifaces[i] = nodes[i]
	}
	c := NewCoordinator(ifaces, lookahead)
	seed(nodes, c)
	c.Run(40, workers)
	var all []string
	for _, nd := range nodes {
		all = append(all, fmt.Sprintf("-- node %d --", nd.id))
		all = append(all, nd.log...)
	}
	return all
}

// TestShardWorkerCountInvariance is the core determinism contract: the full
// per-node application logs must be byte-identical whether windows run
// inline or on 2, 4, or 8 workers.
func TestShardWorkerCountInvariance(t *testing.T) {
	ref := runEcho(t, 7, 1)
	if len(ref) < 7+8 {
		t.Fatalf("reference run produced implausibly few events: %d lines", len(ref))
	}
	for _, w := range []int{2, 4, 8} {
		got := runEcho(t, 7, w)
		if strings.Join(got, "\n") != strings.Join(ref, "\n") {
			t.Errorf("workers=%d diverged from inline run", w)
		}
	}
}

// TestShardDeliveryOrder checks the (At, Src, Seq) mailbox discipline: ties
// in virtual time are broken by source node, then emission sequence.
func TestShardDeliveryOrder(t *testing.T) {
	nd := newEchoNode(0, 2)
	c := NewCoordinator([]Node{nd, newEchoNode(1, 2)}, lookahead)
	// Same delivery instant from both a peer and two emissions of one src.
	c.pending[0] = []Msg{
		{At: 0.3, Src: 1, Seq: 0, Kind: 0},
		{At: 0.3, Src: 1, Seq: 1, Kind: 0},
		{At: 0.3, Src: 0, Seq: 5, Kind: 0},
		{At: 0.1, Src: 1, Seq: 2, Kind: 0},
	}
	p := c.pending[0]
	for j := 1; j < len(p); j++ {
		for k := j; k > 0 && p[k].less(&p[k-1]); k-- {
			p[k], p[k-1] = p[k-1], p[k]
		}
	}
	c.Run(1, 1)
	want := []string{
		"t=0.100 src=1 seq=2 kind=0",
		"t=0.300 src=0 seq=5 kind=0",
		"t=0.300 src=1 seq=0 kind=0",
		"t=0.300 src=1 seq=1 kind=0",
	}
	if strings.Join(nd.log, "\n") != strings.Join(want, "\n") {
		t.Errorf("delivery order:\n got %v\nwant %v", nd.log, want)
	}
}

// farNode emits a message due several windows ahead; the pending buffer must
// hold it until its window and not deliver early or late.
type farNode struct {
	eng  *sim.Engine
	sent bool
	got  []float64
}

func (f *farNode) Advance(until float64, inbox []Msg, out *Outbox) {
	for i := range inbox {
		f.got = append(f.got, inbox[i].At)
	}
	if !f.sent {
		f.sent = true
		out.Send(1, Msg{At: 3.25}) // 6.5 windows ahead at width 0.5
	}
	f.eng.Run(until)
}

func TestShardPendingAcrossWindows(t *testing.T) {
	a := &farNode{eng: sim.NewEngine()}
	b := &farNode{eng: sim.NewEngine(), sent: true}
	c := NewCoordinator([]Node{a, b}, 0.5)
	c.Run(10, 1)
	if len(b.got) != 1 || b.got[0] != 3.25 {
		t.Fatalf("far message delivery: got %v, want [3.25]", b.got)
	}
}

type badNode struct{ eng *sim.Engine }

func (bn *badNode) Advance(until float64, inbox []Msg, out *Outbox) {
	out.Send(0, Msg{At: until}) // due inside our own window: violates lookahead
	bn.eng.Run(until)
}

func TestShardLookaheadViolationPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected lookahead-violation panic")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead violation") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	c := NewCoordinator([]Node{&badNode{eng: sim.NewEngine()}}, 0.5)
	c.Run(1, 1)
}

// countNode ping-pongs a fixed population of messages forever — a warm
// steady state for the allocation gate.
type countNode struct {
	id  int32
	eng *sim.Engine
}

func (cn *countNode) Advance(until float64, inbox []Msg, out *Outbox) {
	for i := range inbox {
		out.Send(1-cn.id, Msg{At: inbox[i].At + 0.75})
	}
	cn.eng.Run(until)
}

// TestZeroAllocShardWindows proves the steady-state window loop — delivery,
// advance, routing, pending insertion — allocates nothing once the mailbox
// buffers are warm. Goroutine spawn costs are per-Run, not per-window, so
// the gate drives the inline path and separately bounds the parallel path's
// per-Run overhead as window-count-independent.
func TestZeroAllocShardWindows(t *testing.T) {
	a := &countNode{id: 0, eng: sim.NewEngine()}
	b := &countNode{id: 1, eng: sim.NewEngine()}
	c := NewCoordinator([]Node{a, b}, 0.5)
	for i := 0; i < 16; i++ {
		c.pending[0] = append(c.pending[0], Msg{At: 0.25 + float64(i)*0.01, Src: 1, Seq: int64(i)})
	}
	var horizon float64 = 50
	c.Run(horizon, 1) // warm every buffer
	allocs := testing.AllocsPerRun(10, func() {
		horizon += 50
		c.Run(horizon, 1)
	})
	if allocs != 0 {
		t.Errorf("steady-state inline window loop allocates %v/run, want 0", allocs)
	}

	// Parallel: per-Run setup may allocate (worker goroutines, channels) but
	// windows must not — a 10x longer run may not allocate meaningfully more.
	short := testing.AllocsPerRun(5, func() {
		horizon += 10
		c.Run(horizon, 2)
	})
	long := testing.AllocsPerRun(5, func() {
		horizon += 100
		c.Run(horizon, 2)
	})
	if long > short+8 {
		t.Errorf("parallel window loop allocates per window: short-run=%v long-run=%v", short, long)
	}
	if math.IsNaN(short) || math.IsNaN(long) {
		t.Fatal("alloc measurement failed")
	}
}
