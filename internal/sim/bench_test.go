package sim

import "testing"

// BenchmarkEventThroughput measures raw calendar throughput: schedule and
// fire chained events.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(1, tick)
		}
	}
	e.Schedule(1, tick)
	b.ResetTimer()
	for e.Step() {
	}
	if n < b.N {
		b.Fatalf("fired %d of %d", n, b.N)
	}
}

// BenchmarkProcessorSharing measures the PS resource with a steady
// population of jobs arriving and completing.
func BenchmarkProcessorSharing(b *testing.B) {
	e := NewEngine()
	cpu := NewCPU(e, 8)
	done := 0
	var spawn func()
	spawn = func() {
		cpu.Add(1, 1, func() {
			done++
			if done < b.N {
				spawn()
			}
		})
	}
	for i := 0; i < 16; i++ {
		spawn()
	}
	b.ResetTimer()
	for done < b.N && e.Step() {
	}
}

// BenchmarkPoolGrantRelease measures pool queue churn.
func BenchmarkPoolGrantRelease(b *testing.B) {
	e := NewEngine()
	p := NewPool(e, "x", 4)
	done := 0
	var spawn func()
	spawn = func() {
		p.Request(func() {
			e.Schedule(0.001, func() {
				p.Release()
				done++
				if done < b.N {
					spawn()
				}
			})
		})
	}
	for i := 0; i < 8; i++ {
		spawn()
	}
	b.ResetTimer()
	for done < b.N && e.Step() {
	}
}
