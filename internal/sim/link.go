package sim

import (
	"math"
	"math/rand"
)

// Packet-mode congestion constants: the initial and maximum congestion
// window in packets, and the default MTU. AIMD: a lossy flight halves the
// window, a clean flight grows it by one.
const (
	pktInitialCwnd = 4
	pktMaxCwnd     = 64
	pktDefaultMTU  = 1500
)

// Link models one direction of a network hop as a first-class simulated
// component: a propagation delay, a bandwidth-shared pipe, and a packet-loss
// probability driving retransmission. It is the unit netem rules lower to
// when a scenario runs in simulated-network mode — unlike the closed-form
// netem.TransferSeconds, concurrent transfers on a Link contend for the
// pipe, so bursts back up on a slow gateway uplink exactly as they would on
// the real testbed.
//
// A transfer proceeds in attempts: serialize the payload through the shared
// pipe (processor-sharing — n concurrent transfers each get rate/n), then
// propagate for the fixed delay, then draw loss; a lost attempt resends the
// whole payload. Expected delivery time under zero contention is therefore
// (serialization + delay) / (1 - loss), matching netem.TransferSeconds
// exactly, and the loss draws come from the seeded RNG the link was built
// with, so fixed-seed runs are fully deterministic.
//
// EnablePacket switches the link to packetized TCP-like transport: the
// payload is cut into MTU-sized packets sent in congestion windows (AIMD
// backoff), each packet drawing loss independently, so lossy-path delivery
// tails are credible instead of whole-payload geometric.
//
// A fully lossy link (loss >= 100%) built that way is a black hole:
// Transfer returns without scheduling anything and onDone never fires (the
// analytical model prices the same path at +Inf). Callers that must not
// hang should reject such paths up front, as scenario.Run does. A link
// taken to loss >= 100 by Reconfigure mid-run is DOWN, not a black hole:
// payloads stall (new ones immediately, in-flight ones when their current
// attempt resolves) and resume in arrival order when a later transition
// brings loss back under 100.
//
// Transfer nodes are owned by the link's freelist with their stage
// continuations bound once per node, so steady-state link traffic performs
// zero heap allocations (gated by sim/alloc_test.go).
type Link struct {
	eng   *Engine
	delay float64
	loss  float64
	rng   *rand.Rand
	// bw shares the pipe among concurrent transfers (nil when the rate is
	// unlimited). Work is expressed in solo-serialization SECONDS (bits /
	// rateBps) with an aggregate rate of 1, not in raw bits: the shared
	// resource's completion epsilon is absolute, so feeding it 1e6-scale
	// bit counts would leave float residues that never cross it.
	bw *SharedResource

	invRate float64 // 1/rateBps, 0 when unlimited

	// rateRatio scales the pipe's aggregate rate relative to the built
	// rate; the bw TotalRate closure reads it, so Reconfigure can rescale
	// bandwidth mid-run for in-flight and future transfers alike. 1 on an
	// unreconfigured link (numerically identical to a constant-rate pipe).
	rateRatio float64

	// Construction-time parameters, the target of Restore (a flap's "up"
	// transition returns here regardless of intermediate transitions).
	origDelay, origRate, origLoss float64

	// managed marks a link under a fault schedule (set by the first
	// Reconfigure): loss >= 100 then means "down, park payloads" instead
	// of the construction-time black hole.
	managed bool
	// stalled holds payloads parked while the link is down, in arrival
	// order; capacity is pre-grown on the cold node-construction path so
	// parking itself never allocates.
	stalled []*linkTransfer

	// mtu > 0 selects packet mode (EnablePacket).
	mtu float64

	free []*linkTransfer
	all  []*linkTransfer // every node ever built, for Reset

	delivered   int64
	retransmits int64
	blackholed  int64
}

// linkTransfer is one in-flight payload; recycled through the freelist.
type linkTransfer struct {
	work   float64 // solo serialization time in seconds (whole-payload mode)
	onDone func()
	// Stage continuations, bound once per node: serialization finished
	// (start propagation) and propagation finished (loss draw / delivery).
	sent, arrived func()

	// Packet-mode state: payload bytes still to deliver, bytes in the
	// current flight, and the AIMD congestion window in packets.
	bytesLeft   float64
	flightBytes float64
	cwnd        int32
}

// NewLink builds a link on the engine. delaySec is the one-way propagation
// delay, rateBps the shared bandwidth in bits/s (0 = unlimited), lossPct
// the per-attempt loss percentage. The rng drives the loss draws; it may be
// shared with other links on the same engine (draws happen in deterministic
// event order).
func NewLink(eng *Engine, delaySec, rateBps, lossPct float64, rng *rand.Rand) *Link {
	if delaySec < 0 || delaySec != delaySec {
		delaySec = 0
	}
	l := &Link{eng: eng, delay: delaySec, loss: lossPct, rng: rng, rateRatio: 1}
	l.origDelay, l.origRate, l.origLoss = delaySec, rateBps, lossPct
	if rateBps > 0 {
		l.invRate = 1 / rateBps
		l.bw = NewSharedResource(eng, 1, func(w float64) float64 {
			if w <= 0 {
				return 0
			}
			return l.rateRatio
		})
	}
	return l
}

// EnablePacket switches the link to packetized TCP-like transport: payloads
// are cut into mtuBytes packets sent in congestion windows (AIMD: halve the
// window on a lossy flight, grow by one per clean flight), each packet
// drawing loss independently. mtuBytes <= 0 selects the 1500-byte default.
// Must be called before the first Transfer.
func (l *Link) EnablePacket(mtuBytes float64) {
	if mtuBytes <= 0 {
		mtuBytes = pktDefaultMTU
	}
	l.mtu = mtuBytes
}

// Reconfigure transitions the link to new parameters mid-run — the kernel
// primitive behind time-varying netem schedules (flaps, stepwise
// degradation). A negative delaySec, non-positive rateBps, or negative
// lossPct keeps the current value; a link built with unlimited rate stays
// unlimited. Raising loss to >= 100 takes the (now managed) link down:
// in-flight payloads stall when their current attempt resolves and new
// transfers park immediately, all resuming oldest-first when a later
// transition brings loss back under 100. Rate changes rescale the shared
// pipe for in-flight and future transfers alike, pricing elapsed
// serialization at the old rate first.
//
//simlint:noalloc fault event path (link schedules, PR 7 contract)
func (l *Link) Reconfigure(delaySec, rateBps, lossPct float64) {
	l.managed = true
	if delaySec >= 0 && delaySec == delaySec {
		l.delay = delaySec
	}
	if rateBps > 0 && l.bw != nil {
		l.bw.Sync() // charge elapsed serialization at the old rate
		if rateBps == l.origRate {
			l.rateRatio = 1
		} else {
			l.rateRatio = rateBps * l.invRate
		}
		l.bw.Sync() // reschedule pending completions at the new rate
	}
	if lossPct >= 0 {
		wasDown := l.loss >= 100
		l.loss = lossPct
		if wasDown && lossPct < 100 {
			l.drainStalled()
		}
	}
}

// Restore returns the link to its construction-time parameters — the "up"
// transition of a flap schedule.
//
//simlint:noalloc fault event path (link schedules, PR 7 contract)
func (l *Link) Restore() {
	l.Reconfigure(l.origDelay, l.origRate, l.origLoss)
}

// drainStalled resends every payload parked while the link was down, in
// arrival order.
//
//simlint:noalloc fault event path (link schedules, PR 7 contract)
func (l *Link) drainStalled() {
	for i, t := range l.stalled {
		l.stalled[i] = nil
		l.send(t)
	}
	l.stalled = l.stalled[:0]
}

// Transfer moves payloadBytes across the link and runs onDone on delivery.
// On a fully lossy unmanaged link onDone never runs (nothing is scheduled);
// on a managed link that is currently down the payload parks until the link
// comes back up.
//
//simlint:noalloc steady-state link traffic (PR 5 contract, sim/alloc_test.go)
func (l *Link) Transfer(payloadBytes float64, onDone func()) {
	var t *linkTransfer
	if l.loss >= 100 && !l.managed {
		l.blackholed++
		return
	}
	if n := len(l.free); n > 0 {
		t = l.free[n-1]
		l.free = l.free[:n-1]
	} else {
		t = l.newTransfer() //simlint:allow noallocclosure //go:noinline freelist-growth constructor; the hot path reuses pooled transfers
	}
	t.work, t.onDone = payloadBytes*8*l.invRate, onDone
	if l.mtu > 0 {
		t.bytesLeft, t.cwnd = payloadBytes, pktInitialCwnd
	}
	if l.loss >= 100 {
		l.stalled = append(l.stalled, t)
		return
	}
	l.send(t)
}

// newTransfer builds a node with its stage continuations bound once; the
// cold path of Transfer. It must stay out of line so the node and closure
// escapes are not re-attributed into Transfer's //simlint:noalloc span.
// It also pre-grows the stall queue's capacity so parking payloads on a
// downed link never allocates on the event path.
//
//go:noinline
func (l *Link) newTransfer() *linkTransfer {
	t := &linkTransfer{}
	t.sent = func() { l.eng.Schedule(l.delay, t.arrived) }
	t.arrived = func() { l.arrive(t) }
	l.all = append(l.all, t)
	if cap(l.stalled) < len(l.all) {
		ns := make([]*linkTransfer, len(l.stalled), 2*len(l.all))
		copy(ns, l.stalled)
		l.stalled = ns
	}
	return t
}

// send starts one attempt: serialization through the shared pipe (when the
// rate is bounded), then propagation. In packet mode the attempt is the
// next congestion-window flight rather than the whole payload.
//
//simlint:noalloc steady-state link traffic
func (l *Link) send(t *linkTransfer) {
	if l.mtu > 0 {
		bytes := float64(t.cwnd) * l.mtu
		if bytes > t.bytesLeft {
			bytes = t.bytesLeft
		}
		t.flightBytes = bytes
		if l.bw != nil {
			l.bw.Add(bytes*8*l.invRate, 1, t.sent)
			return
		}
		l.eng.Schedule(l.delay, t.arrived)
		return
	}
	if l.bw != nil {
		l.bw.Add(t.work, 1, t.sent)
		return
	}
	l.eng.Schedule(l.delay, t.arrived)
}

// arrive resolves one attempt. If the link went down while the payload was
// in flight it parks until the link recovers; otherwise whole-payload mode
// draws a single loss (retransmit or deliver) and packet mode draws loss
// per packet of the flight, advancing the AIMD window.
//
//simlint:noalloc steady-state link traffic
func (l *Link) arrive(t *linkTransfer) {
	if l.loss >= 100 {
		// Only reachable on a managed link: an unmanaged fully-lossy link
		// never schedules attempts in the first place.
		l.stalled = append(l.stalled, t)
		return
	}
	if l.mtu > 0 {
		l.arriveFlight(t)
		return
	}
	if l.loss > 0 && l.rng.Float64()*100 < l.loss {
		l.retransmits++
		l.send(t)
		return
	}
	l.deliver(t)
}

// arriveFlight applies per-packet loss draws to the flight in packet order,
// advances the congestion window, and either finishes the payload or sends
// the next flight.
//
//simlint:noalloc steady-state link traffic (packet mode)
func (l *Link) arriveFlight(t *linkTransfer) {
	n := int(math.Ceil(t.flightBytes / l.mtu))
	if n < 1 {
		n = 1
	}
	lost := 0
	if l.loss > 0 {
		for i := 0; i < n; i++ {
			if l.rng.Float64()*100 < l.loss {
				lost++
			}
		}
	}
	if lost > 0 {
		l.retransmits += int64(lost)
		t.bytesLeft -= t.flightBytes * float64(n-lost) / float64(n)
		if t.cwnd /= 2; t.cwnd < 1 {
			t.cwnd = 1
		}
	} else {
		t.bytesLeft -= t.flightBytes
		if t.cwnd++; t.cwnd > pktMaxCwnd {
			t.cwnd = pktMaxCwnd
		}
	}
	if t.bytesLeft <= 1e-9 {
		l.deliver(t)
		return
	}
	l.send(t)
}

// deliver completes the payload and recycles the node.
//
//simlint:noalloc steady-state link traffic
func (l *Link) deliver(t *linkTransfer) {
	l.delivered++
	fn := t.onDone
	t.onDone = nil
	l.free = append(l.free, t)
	fn()
}

// Delivered returns how many payloads completed delivery.
func (l *Link) Delivered() int64 { return l.delivered }

// Retransmits returns how many attempts (whole-payload mode) or packets
// (packet mode) were lost and resent.
func (l *Link) Retransmits() int64 { return l.retransmits }

// Blackholed returns how many transfers were swallowed by a >= 100% lossy
// link.
func (l *Link) Blackholed() int64 { return l.blackholed }

// Stalled returns how many payloads are currently parked on a downed link.
func (l *Link) Stalled() int { return len(l.stalled) }

// Reset returns the link to a fresh state after an Engine.Reset, keeping
// the transfer freelist (and its bound continuations) so the next run's
// steady state allocates nothing. Reconfigured parameters revert to their
// construction-time values; packet mode persists. The caller owns
// re-seeding the rng.
//
//simlint:noalloc pooled-reuse path (PR 5 contract)
func (l *Link) Reset() {
	for _, t := range l.all {
		t.onDone = nil
	}
	l.free = append(l.free[:0], l.all...)
	for i := range l.stalled {
		l.stalled[i] = nil
	}
	l.stalled = l.stalled[:0]
	l.delay, l.loss, l.rateRatio = l.origDelay, l.origLoss, 1
	l.managed = false
	if l.bw != nil {
		l.bw.Reset(l.bw.MaxRate, nil)
	}
	l.delivered, l.retransmits, l.blackholed = 0, 0, 0
}
