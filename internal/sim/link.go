package sim

import "math/rand"

// Link models one direction of a network hop as a first-class simulated
// component: a propagation delay, a bandwidth-shared pipe, and a packet-loss
// probability driving retransmission. It is the unit netem rules lower to
// when a scenario runs in simulated-network mode — unlike the closed-form
// netem.TransferSeconds, concurrent transfers on a Link contend for the
// pipe, so bursts back up on a slow gateway uplink exactly as they would on
// the real testbed.
//
// A transfer proceeds in attempts: serialize the payload through the shared
// pipe (processor-sharing — n concurrent transfers each get rate/n), then
// propagate for the fixed delay, then draw loss; a lost attempt resends the
// whole payload. Expected delivery time under zero contention is therefore
// (serialization + delay) / (1 - loss), matching netem.TransferSeconds
// exactly, and the loss draws come from the seeded RNG the link was built
// with, so fixed-seed runs are fully deterministic.
//
// A fully lossy link (loss >= 100%) is a black hole: Transfer returns
// without scheduling anything and onDone never fires (the analytical model
// prices the same path at +Inf). Callers that must not hang should reject
// such paths up front, as scenario.Run does.
//
// Transfer nodes are owned by the link's freelist with their stage
// continuations bound once per node, so steady-state link traffic performs
// zero heap allocations (gated by sim/alloc_test.go).
type Link struct {
	eng   *Engine
	delay float64
	loss  float64
	rng   *rand.Rand
	// bw shares the pipe among concurrent transfers (nil when the rate is
	// unlimited). Work is expressed in solo-serialization SECONDS (bits /
	// rateBps) with an aggregate rate of 1, not in raw bits: the shared
	// resource's completion epsilon is absolute, so feeding it 1e6-scale
	// bit counts would leave float residues that never cross it.
	bw *SharedResource

	invRate float64 // 1/rateBps, 0 when unlimited

	free []*linkTransfer
	all  []*linkTransfer // every node ever built, for Reset

	delivered   int64
	retransmits int64
	blackholed  int64
}

// linkTransfer is one in-flight payload; recycled through the freelist.
type linkTransfer struct {
	work   float64 // solo serialization time in seconds
	onDone func()
	// Stage continuations, bound once per node: serialization finished
	// (start propagation) and propagation finished (loss draw / delivery).
	sent, arrived func()
}

// NewLink builds a link on the engine. delaySec is the one-way propagation
// delay, rateBps the shared bandwidth in bits/s (0 = unlimited), lossPct
// the per-attempt loss percentage. The rng drives the loss draws; it may be
// shared with other links on the same engine (draws happen in deterministic
// event order).
func NewLink(eng *Engine, delaySec, rateBps, lossPct float64, rng *rand.Rand) *Link {
	if delaySec < 0 || delaySec != delaySec {
		delaySec = 0
	}
	l := &Link{eng: eng, delay: delaySec, loss: lossPct, rng: rng}
	if rateBps > 0 {
		l.invRate = 1 / rateBps
		l.bw = NewSharedResource(eng, 1, func(w float64) float64 {
			if w <= 0 {
				return 0
			}
			return 1
		})
	}
	return l
}

// Transfer moves payloadBytes across the link and runs onDone on delivery.
// On a fully lossy link onDone never runs (nothing is scheduled).
//
//simlint:noalloc steady-state link traffic (PR 5 contract, sim/alloc_test.go)
func (l *Link) Transfer(payloadBytes float64, onDone func()) {
	var t *linkTransfer
	if l.loss >= 100 {
		l.blackholed++
		return
	}
	if n := len(l.free); n > 0 {
		t = l.free[n-1]
		l.free = l.free[:n-1]
	} else {
		t = l.newTransfer()
	}
	t.work, t.onDone = payloadBytes*8*l.invRate, onDone
	l.send(t)
}

// newTransfer builds a node with its stage continuations bound once; the
// cold path of Transfer. It must stay out of line so the node and closure
// escapes are not re-attributed into Transfer's //simlint:noalloc span.
//
//go:noinline
func (l *Link) newTransfer() *linkTransfer {
	t := &linkTransfer{}
	t.sent = func() { l.eng.Schedule(l.delay, t.arrived) }
	t.arrived = func() { l.arrive(t) }
	l.all = append(l.all, t)
	return t
}

// send starts one attempt: serialization through the shared pipe (when the
// rate is bounded), then propagation.
//
//simlint:noalloc steady-state link traffic
func (l *Link) send(t *linkTransfer) {
	if l.bw != nil {
		l.bw.Add(t.work, 1, t.sent)
		return
	}
	l.eng.Schedule(l.delay, t.arrived)
}

// arrive applies the loss draw: retransmit the whole payload or deliver.
//
//simlint:noalloc steady-state link traffic
func (l *Link) arrive(t *linkTransfer) {
	if l.loss > 0 && l.rng.Float64()*100 < l.loss {
		l.retransmits++
		l.send(t)
		return
	}
	l.delivered++
	fn := t.onDone
	t.onDone = nil
	l.free = append(l.free, t)
	fn()
}

// Delivered returns how many payloads completed delivery.
func (l *Link) Delivered() int64 { return l.delivered }

// Retransmits returns how many attempts were lost and resent.
func (l *Link) Retransmits() int64 { return l.retransmits }

// Blackholed returns how many transfers were swallowed by a >= 100% lossy
// link.
func (l *Link) Blackholed() int64 { return l.blackholed }

// Reset returns the link to a fresh state after an Engine.Reset, keeping
// the transfer freelist (and its bound continuations) so the next run's
// steady state allocates nothing. The caller owns re-seeding the rng.
//
//simlint:noalloc pooled-reuse path (PR 5 contract)
func (l *Link) Reset() {
	for _, t := range l.all {
		t.onDone = nil
	}
	l.free = append(l.free[:0], l.all...)
	if l.bw != nil {
		l.bw.Reset(l.bw.MaxRate, nil)
	}
	l.delivered, l.retransmits, l.blackholed = 0, 0, 0
}
