package sim

import "math"

// SharedResource models a capacity shared among concurrent jobs under
// (weighted) processor sharing with a configurable aggregate-rate curve.
//
// Two instantiations matter for the Pl@ntNet engine model:
//
//   - CPU: TotalRate(w) = min(w, cores). Below saturation every job runs at
//     full speed; beyond it, all CPU-bound work slows proportionally — the
//     contention that makes extract pools of 8–9 threads hurt simsearch time
//     in Figure 9.
//   - GPU: TotalRate(w) = peak * min(w, ksat)/ksat. Aggregate inference
//     throughput grows until ~ksat concurrent inferences then saturates, so
//     extra concurrency only inflates per-inference latency — why extract=6
//     is the response-time minimum and "the extract task time was not
//     reduced when increasing the extract thread pool size".
type SharedResource struct {
	eng *Engine
	// TotalRate maps the active weight sum to delivered aggregate rate
	// (work units per second). Must be positive for positive weight.
	TotalRate func(activeWeight float64) float64
	// MaxRate is the rate used as the denominator for utilization
	// accounting (e.g. number of cores).
	MaxRate float64

	// jobs is a dense, insertion-ordered slice: advance/reschedule walk it
	// on every resource event, which made the old map representation (with
	// its per-event iterator overhead and nondeterministic completion
	// ordering) the single hottest path of a whole optimization run.
	jobs []*sharedJob
	// freeJobs recycles completed/cancelled job nodes, so steady-state job
	// churn allocates nothing. Nodes are generation-counted: a stale Job
	// handle (completed, cancelled, or recycled) is detected in O(1).
	freeJobs []*sharedJob
	// jobWeight is the running Σ job weights, maintained incrementally so
	// ActiveWeight is O(1) instead of an O(jobs) sum per event. It is reset
	// to exactly 0 whenever the resource drains, so float drift cannot
	// accumulate across bursts.
	jobWeight float64
	holds     float64 // weight of persistent loads (see Hold)
	nextEv    Event
	hasNext   bool
	// completeFn is the next-completion callback, bound once so the
	// reschedule path never allocates a closure.
	completeFn func()
	lastT      float64
	workInt    float64 // ∫ delivered rate dt (work-seconds, for utilization)
}

type sharedJob struct {
	remaining float64
	weight    float64
	rate      float64
	onDone    func()
	gen       uint32
}

// Job is a value handle to a submitted job, used to cancel it (failure
// injection in tests). The zero Job is inert.
type Job struct {
	s   *SharedResource
	j   *sharedJob
	gen uint32
}

// Cancel aborts the job if it is still running. Cancelling a completed,
// cancelled, or zero Job is a no-op.
//
//simlint:noalloc steady-state job churn (PR 3 contract, sim/alloc_test.go)
func (h Job) Cancel() {
	if h.j == nil || h.j.gen != h.gen {
		return
	}
	s := h.s
	s.advance()
	if h.j.gen != h.gen { // completed during the advance
		return
	}
	s.removeJob(h.j)
	s.releaseJob(h.j)
	s.reschedule()
}

// NewSharedResource builds a shared resource on the engine.
func NewSharedResource(eng *Engine, maxRate float64, totalRate func(float64) float64) *SharedResource {
	s := &SharedResource{
		eng:       eng,
		TotalRate: totalRate,
		MaxRate:   maxRate,
		lastT:     eng.Now(),
	}
	// Bind the next-completion callback here, once per resource, so the
	// reschedule hot path never allocates a closure (it is annotated
	// //simlint:noalloc and must stay free of escape sites).
	s.completeFn = func() {
		s.hasNext = false
		s.advance()
		s.reschedule()
	}
	return s
}

// CPURate is the processor-sharing CPU rate curve: every job runs at full
// speed below saturation, all CPU-bound work slows proportionally beyond
// it. Exposed so pooled callers resetting a CPU (SharedResource.Reset
// rebinds the curve per run) share one source of truth with NewCPU.
func CPURate(cores float64) func(float64) float64 {
	return func(w float64) float64 { return math.Min(w, cores) }
}

// NewCPU returns a processor-sharing CPU with the given core count.
func NewCPU(eng *Engine, cores float64) *SharedResource {
	return NewSharedResource(eng, cores, CPURate(cores))
}

// NewGPU returns a GPU whose aggregate throughput saturates at ksat
// concurrent unit-weight jobs, with peak aggregate rate peak.
func NewGPU(eng *Engine, peak float64, ksat float64) *SharedResource {
	return NewSharedResource(eng, peak, func(w float64) float64 {
		if w <= 0 {
			return 0
		}
		return peak * math.Min(w, ksat) / ksat
	})
}

//simlint:noalloc steady-state job churn pops the freelist; growth is in newSharedJob
func (s *SharedResource) allocJob(work, weight float64, onDone func()) *sharedJob {
	var j *sharedJob
	if n := len(s.freeJobs); n > 0 {
		j = s.freeJobs[n-1]
		s.freeJobs = s.freeJobs[:n-1]
	} else {
		j = newSharedJob() //simlint:allow noallocclosure //go:noinline freelist-growth constructor; the hot path reuses pooled jobs
	}
	j.remaining, j.weight, j.rate, j.onDone = work, weight, 0, onDone
	return j
}

// newSharedJob is the cold-path node allocator, kept out of line so its
// escape stays outside the //simlint:noalloc span of allocJob (inlining
// would re-attribute the allocation to the call site).
//
//go:noinline
func newSharedJob() *sharedJob { return &sharedJob{} }

// releaseJob retires a node to the freelist; the generation bump invalidates
// every outstanding handle to it.
//
//simlint:noalloc
func (s *SharedResource) releaseJob(j *sharedJob) {
	j.gen++
	j.onDone = nil
	s.freeJobs = append(s.freeJobs, j)
}

// Add submits a job with the given amount of work and weight; onDone fires
// when the work completes. The returned handle can Cancel the job (used for
// failure injection in tests).
//
//simlint:noalloc steady-state job churn
func (s *SharedResource) Add(work, weight float64, onDone func()) Job {
	if work <= 0 {
		// Zero-length jobs complete immediately (via the calendar for
		// deterministic ordering).
		s.eng.Schedule(0, onDone)
		return Job{}
	}
	if weight <= 0 {
		panic("sim: job weight must be positive")
	}
	s.advance()
	j := s.allocJob(work, weight, onDone)
	s.jobs = append(s.jobs, j)
	s.jobWeight += weight
	s.reschedule()
	return Job{s: s, j: j, gen: j.gen}
}

// removeJob drops j from the dense slice, preserving insertion order (which
// keeps completion ordering deterministic), and updates the running weight.
//
//simlint:noalloc
func (s *SharedResource) removeJob(j *sharedJob) {
	for i, other := range s.jobs {
		if other == j {
			s.jobs = append(s.jobs[:i], s.jobs[i+1:]...)
			break
		}
	}
	s.jobWeight -= j.weight
	if len(s.jobs) == 0 {
		s.jobWeight = 0
	}
}

// AddHold adds a persistent load of the given weight: it consumes capacity
// (slowing completing jobs under contention) without ever finishing — the
// model for busy-polling worker threads or background daemons. Each AddHold
// must be balanced by one RemoveHold with the same weight.
//
//simlint:noalloc closure-free hold path (the engine's download stage calls it per request)
func (s *SharedResource) AddHold(weight float64) {
	if weight <= 0 {
		return
	}
	s.advance()
	s.holds += weight
	s.reschedule()
}

// RemoveHold releases weight previously added with AddHold. The total hold
// weight is floored at zero.
//
//simlint:noalloc
func (s *SharedResource) RemoveHold(weight float64) {
	if weight <= 0 {
		return
	}
	s.advance()
	s.holds -= weight
	if s.holds < 0 {
		s.holds = 0
	}
	s.reschedule()
}

// Hold is the closure-based convenience form of AddHold/RemoveHold: the
// returned function removes the load; calling it twice is a no-op. Hot paths
// that would allocate a closure per call (the engine's download stage) use
// AddHold/RemoveHold directly.
func (s *SharedResource) Hold(weight float64) (release func()) {
	if weight <= 0 {
		return func() {}
	}
	s.AddHold(weight)
	released := false
	return func() {
		if released {
			return
		}
		released = true
		s.RemoveHold(weight)
	}
}

// Reset returns the resource to a fresh state after an Engine.Reset,
// recycling in-flight jobs into the freelist so the next run's steady state
// allocates nothing. totalRate replaces the rate curve when non-nil (rate
// curves usually close over run parameters, so pooled callers rebind them
// per run); maxRate is only applied alongside a non-nil totalRate.
//
//simlint:noalloc pooled-reuse path (PR 5 contract)
func (s *SharedResource) Reset(maxRate float64, totalRate func(float64) float64) {
	for _, j := range s.jobs {
		s.releaseJob(j)
	}
	for i := range s.jobs {
		s.jobs[i] = nil
	}
	s.jobs = s.jobs[:0]
	s.jobWeight, s.holds = 0, 0
	s.nextEv, s.hasNext = Event{}, false
	s.lastT = s.eng.Now()
	s.workInt = 0
	if totalRate != nil {
		s.TotalRate, s.MaxRate = totalRate, maxRate
	}
}

// Sync prices elapsed time at the current rates and recomputes the next
// completion event. Callers that change the rate environment out of band
// (e.g. a Link rescaling its bandwidth pipe mid-run) bracket the change
// with Sync: once before, so elapsed work is charged at the old rates, and
// once after, so the pending completion reflects the new ones.
//
//simlint:noalloc fault/reconfiguration event path (PR 7 contract)
func (s *SharedResource) Sync() {
	s.advance()
	s.reschedule()
}

// Crash drops every running job without firing its completion and clears
// all persistent holds — the kernel primitive for failure injection: a
// crashed resource loses its in-service work, while the utilization
// integrals survive so monitors keep reporting across the outage. Elapsed
// time is priced into the work integral WITHOUT firing completions (work
// that was numerically due at the crash instant is lost with the rest),
// so no stale continuation can run on the crashed resource. Dropped jobs
// return to the freelist; outstanding Job handles become inert.
//
//simlint:noalloc fault event path (crash/failover, PR 7 contract)
func (s *SharedResource) Crash() {
	now := s.eng.Now()
	if dt := now - s.lastT; dt > 0 {
		if w := s.ActiveWeight(); w > 0 {
			s.workInt += s.TotalRate(w) * dt
		}
		s.lastT = now
	}
	for _, j := range s.jobs {
		s.releaseJob(j)
	}
	for i := range s.jobs {
		s.jobs[i] = nil
	}
	s.jobs = s.jobs[:0]
	s.jobWeight, s.holds = 0, 0
	if s.hasNext {
		s.nextEv.Cancel()
		s.hasNext = false
	}
}

// ActiveWeight returns the current total weight of running jobs plus holds.
func (s *SharedResource) ActiveWeight() float64 {
	return s.holds + s.jobWeight
}

// ActiveJobs returns the number of running jobs.
func (s *SharedResource) ActiveJobs() int { return len(s.jobs) }

// WorkIntegral returns ∫ delivered-rate dt up to now (work-seconds).
func (s *SharedResource) WorkIntegral() float64 {
	s.advance()
	s.reschedule()
	return s.workInt
}

// Utilization returns the average delivered rate over [t0, now] as a
// fraction of MaxRate, given the work integral observed at t0. This is what
// the monitoring manager samples as "CPU usage %".
func (s *SharedResource) Utilization(workIntAtT0, t0 float64) float64 {
	now := s.eng.Now()
	if now <= t0 || s.MaxRate <= 0 {
		return 0
	}
	return (s.WorkIntegral() - workIntAtT0) / (s.MaxRate * (now - t0))
}

// advance applies elapsed time to every running job at its current rate and
// fires completions that are (numerically) due.
//
//simlint:noalloc steady-state job churn
func (s *SharedResource) advance() {
	now := s.eng.Now()
	dt := now - s.lastT
	if dt <= 0 {
		return
	}
	s.lastT = now
	w := s.ActiveWeight()
	if w <= 0 {
		return
	}
	total := s.TotalRate(w)
	s.workInt += total * dt
	const eps = 1e-12
	// Completions fire in insertion order (the slice order), which — unlike
	// the old map iteration — makes simultaneous completions deterministic.
	// Survivors are compacted in place; their remaining work was already
	// decremented at the old (slower) rate for this slice, which is the
	// correct PS semantics.
	kept := s.jobs[:0]
	for _, j := range s.jobs {
		j.rate = j.weight * total / w
		j.remaining -= j.rate * dt
		if j.remaining <= eps {
			s.jobWeight -= j.weight
			s.eng.Schedule(0, j.onDone)
			s.releaseJob(j)
		} else {
			kept = append(kept, j)
		}
	}
	for i := len(kept); i < len(s.jobs); i++ {
		s.jobs[i] = nil
	}
	s.jobs = kept
	if len(s.jobs) == 0 {
		s.jobWeight = 0
	}
}

// reschedule recomputes the next completion event, moving the pending
// event in place when possible so the calendar stays free of cancelled
// tombstones.
//
//simlint:noalloc steady-state job churn; completeFn is bound once in NewSharedResource
func (s *SharedResource) reschedule() {
	if len(s.jobs) == 0 {
		// Holds alone never complete; nothing to schedule.
		if s.hasNext {
			s.nextEv.Cancel()
			s.hasNext = false
		}
		return
	}
	w := s.ActiveWeight()
	total := s.TotalRate(w)
	if total <= 0 {
		if s.hasNext {
			s.nextEv.Cancel()
			s.hasNext = false
		}
		return
	}
	soonest := math.Inf(1)
	for _, j := range s.jobs {
		rate := j.weight * total / w
		t := j.remaining / rate
		if t < soonest {
			soonest = t
		}
	}
	// At large clock values now+soonest can collapse to exactly now (the
	// residue left by advance's float subtraction is below one ulp of the
	// clock); a completion firing with dt == 0 makes no progress, so pin
	// the event at least one ulp into the future. Runs whose completions
	// stay above ulp scale — every run that terminated before this guard
	// existed — are bit-identical: the branch only fires where the old
	// code would have rescheduled the same instant forever.
	now := s.eng.Now()
	at := now + soonest
	if at <= now {
		at = math.Nextafter(now, math.Inf(1))
	}
	if s.hasNext && s.eng.Reschedule(s.nextEv, at) {
		return
	}
	s.nextEv = s.eng.At(at, s.completeFn)
	s.hasNext = true
}
