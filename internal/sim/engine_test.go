package sim

import (
	"math"
	"math/rand"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(2, func() { order = append(order, 2) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(3, func() { order = append(order, 3) })
	e.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 10 {
		t.Errorf("clock = %v, want 10", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of order at %d: %v", i, v)
		}
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(5, func() { fired = true })
	e.Run(4)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if e.Now() != 4 {
		t.Errorf("clock = %v, want 4", e.Now())
	}
	e.Run(6)
	if !fired {
		t.Error("event not fired after extending horizon")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	ev.Cancel()
	e.Run(2)
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d", e.Pending())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {
		e.Schedule(-5, func() {
			if e.Now() != 1 {
				t.Errorf("negative delay fired at %v", e.Now())
			}
		})
	})
	e.Run(2)
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(1, func() { times = append(times, e.Now()) })
	})
	e.Run(5)
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Errorf("times = %v", times)
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(1, func() { n++ })
	e.Schedule(2, func() { n++ })
	if !e.Step() || n != 1 || e.Now() != 1 {
		t.Fatalf("first step: n=%d now=%v", n, e.Now())
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second step: n=%d", n)
	}
	if e.Step() {
		t.Error("Step on empty calendar returned true")
	}
}

func TestPoolFIFOAndCounts(t *testing.T) {
	e := NewEngine()
	p := NewPool(e, "http", 2)
	var granted []int
	for i := 0; i < 5; i++ {
		i := i
		p.Request(func() {
			granted = append(granted, i)
			e.Schedule(1, p.Release)
		})
	}
	e.Run(100)
	if len(granted) != 5 {
		t.Fatalf("granted %d, want 5", len(granted))
	}
	for i, v := range granted {
		if v != i {
			t.Fatalf("grant order %v not FIFO", granted)
		}
	}
	if p.Busy() != 0 || p.Queued() != 0 {
		t.Errorf("pool not drained: busy=%d queued=%d", p.Busy(), p.Queued())
	}
	if p.Grants() != 5 {
		t.Errorf("Grants = %d", p.Grants())
	}
	if p.MaxQueued() != 3 {
		t.Errorf("MaxQueued = %d, want 3", p.MaxQueued())
	}
}

func TestPoolBusyIntegral(t *testing.T) {
	e := NewEngine()
	p := NewPool(e, "x", 2)
	// Two holders for 3s each, starting immediately: busy integral = 6.
	for i := 0; i < 2; i++ {
		p.Request(func() { e.Schedule(3, p.Release) })
	}
	e.Run(10)
	if got := p.BusyIntegral(); math.Abs(got-6) > 1e-9 {
		t.Errorf("BusyIntegral = %v, want 6", got)
	}
	// Average utilization over [0,10] with 2 slots = 6/20.
	if got := p.Utilization(0, 0); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("Utilization = %v, want 0.3", got)
	}
}

func TestPoolQueueIntegral(t *testing.T) {
	e := NewEngine()
	p := NewPool(e, "x", 1)
	p.Request(func() { e.Schedule(2, p.Release) })
	p.Request(func() { e.Schedule(2, p.Release) }) // waits 2s in queue
	e.Run(10)
	if got := p.QueueIntegral(); math.Abs(got-2) > 1e-9 {
		t.Errorf("QueueIntegral = %v, want 2", got)
	}
}

func TestPoolReleasePanicsWhenIdle(t *testing.T) {
	e := NewEngine()
	p := NewPool(e, "x", 1)
	defer func() {
		if recover() == nil {
			t.Error("Release on idle pool did not panic")
		}
	}()
	p.Release()
}

func TestSharedResourceSingleJob(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 4)
	var doneAt float64
	cpu.Add(2, 1, func() { doneAt = e.Now() }) // 2 units of work at rate 1
	e.Run(100)
	if math.Abs(doneAt-2) > 1e-9 {
		t.Errorf("single job done at %v, want 2", doneAt)
	}
}

func TestSharedResourceProcessorSharing(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 1) // 1 core
	var at []float64
	// Two equal jobs of 1s of work share the core: both finish at t=2.
	cpu.Add(1, 1, func() { at = append(at, e.Now()) })
	cpu.Add(1, 1, func() { at = append(at, e.Now()) })
	e.Run(100)
	if len(at) != 2 || math.Abs(at[0]-2) > 1e-9 || math.Abs(at[1]-2) > 1e-9 {
		t.Errorf("completion times = %v, want [2 2]", at)
	}
}

func TestSharedResourceUnequalArrival(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 1)
	var a, b float64
	cpu.Add(1, 1, func() { a = e.Now() })
	e.Schedule(0.5, func() { cpu.Add(1, 1, func() { b = e.Now() }) })
	e.Run(100)
	// Job A: runs alone [0,0.5] (0.5 done), shares [0.5,1.5] (0.5 done) -> 1.5.
	// Job B: shares [0.5,1.5] (0.5 done), runs alone [1.5,2.0] -> 2.0.
	if math.Abs(a-1.5) > 1e-9 || math.Abs(b-2.0) > 1e-9 {
		t.Errorf("a=%v b=%v, want 1.5, 2.0", a, b)
	}
}

func TestSharedResourceWeights(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 1)
	var heavy, light float64
	cpu.Add(1, 3, func() { heavy = e.Now() }) // gets 3/4 of the core
	cpu.Add(1, 1, func() { light = e.Now() }) // gets 1/4
	e.Run(100)
	// heavy finishes 1/(3/4) = 4/3; then light has 1 - (4/3)*(1/4) = 2/3
	// remaining at full rate -> 4/3 + 2/3 = 2.
	if math.Abs(heavy-4.0/3) > 1e-9 || math.Abs(light-2) > 1e-9 {
		t.Errorf("heavy=%v light=%v, want 1.333, 2", heavy, light)
	}
}

func TestSharedResourceBelowSaturationNoSlowdown(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 8)
	var done []float64
	for i := 0; i < 4; i++ {
		cpu.Add(1, 1, func() { done = append(done, e.Now()) })
	}
	e.Run(100)
	for _, d := range done {
		if math.Abs(d-1) > 1e-9 {
			t.Errorf("job under light load finished at %v, want 1", d)
		}
	}
}

func TestGPUSaturation(t *testing.T) {
	e := NewEngine()
	// GPU: peak aggregate rate 6 work/s, saturating at 6 concurrent jobs.
	gpu := NewGPU(e, 6, 6)
	// 12 jobs of 1 unit each: aggregate rate 6 -> each job rate 0.5,
	// all finish at t=2. Throughput is capped, latency doubles.
	n := 0
	for i := 0; i < 12; i++ {
		gpu.Add(1, 1, func() { n++ })
	}
	e.Run(1.99)
	if n != 0 {
		t.Fatalf("%d jobs finished before t=2", n)
	}
	e.Run(2.01)
	if n != 12 {
		t.Fatalf("%d jobs finished, want 12", n)
	}
}

func TestGPUBelowSaturationLatencyConstant(t *testing.T) {
	e := NewEngine()
	gpu := NewGPU(e, 6, 6)
	// 3 concurrent jobs: total rate 6*3/6 = 3, each gets rate 1.
	var done []float64
	for i := 0; i < 3; i++ {
		gpu.Add(1, 1, func() { done = append(done, e.Now()) })
	}
	e.Run(100)
	for _, d := range done {
		if math.Abs(d-1) > 1e-9 {
			t.Errorf("below saturation latency %v, want 1", d)
		}
	}
}

func TestSharedResourceCancel(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 1)
	var a float64
	bFired := false
	cpu.Add(2, 1, func() { a = e.Now() })
	job := cpu.Add(2, 1, func() { bFired = true })
	e.Schedule(1, job.Cancel)
	e.Run(100)
	if bFired {
		t.Error("cancelled job completed")
	}
	// A shares [0,1] (0.5 done), then runs alone: 1 + 1.5 = 2.5.
	if math.Abs(a-2.5) > 1e-9 {
		t.Errorf("a done at %v, want 2.5", a)
	}
	// Cancelling twice is a no-op.
	job.Cancel()
}

// TestAtNaNInfClamped pins the regression where a NaN (or -Inf) target time
// bypassed At's `t < now` clamp and corrupted calendar ordering; +Inf stays
// a valid "beyond any horizon" time.
func TestAtNaNInfClamped(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(1, func() {
		e.At(math.NaN(), func() { order = append(order, "nan") })
		e.At(math.Inf(-1), func() { order = append(order, "neginf") })
		e.Schedule(0, func() { order = append(order, "zero") })
	})
	infFired := false
	e.At(math.Inf(1), func() { infFired = true })
	e.Run(10)
	// NaN and -Inf clamp to now (t=1) and fire in scheduling order, before
	// later events but after nothing earlier.
	want := []string{"nan", "neginf", "zero"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 10 {
		t.Errorf("clock = %v, want 10", e.Now())
	}
	if infFired {
		t.Error("+Inf event fired within a finite horizon")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1 (the +Inf event)", e.Pending())
	}
	// NaN delay in Schedule and NaN target in Reschedule stay clamped too.
	ev := e.Schedule(math.NaN(), func() { order = append(order, "nan-delay") })
	if !e.Reschedule(ev, math.NaN()) {
		t.Error("Reschedule to NaN should clamp and succeed")
	}
	e.Run(11)
	if order[len(order)-1] != "nan-delay" {
		t.Errorf("NaN-delay event did not fire: %v", order)
	}
}

func TestSharedResourceZeroWork(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 1)
	done := false
	cpu.Add(0, 1, func() { done = true })
	e.Run(0.001)
	if !done {
		t.Error("zero-work job did not complete immediately")
	}
}

func TestSharedResourceUtilization(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 4)
	// One job of 2 units at weight 1: delivers rate 1 for 2s.
	cpu.Add(2, 1, func() {})
	e.Run(4)
	// Utilization over [0,4]: delivered 2 work-units / (4 cores * 4 s).
	if got := cpu.Utilization(0, 0); math.Abs(got-2.0/16) > 1e-9 {
		t.Errorf("Utilization = %v, want 0.125", got)
	}
}

func TestSharedResourceSaturatedUtilizationIs100(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 2)
	for i := 0; i < 8; i++ {
		cpu.Add(1, 1, func() {})
	}
	e.Run(4) // 8 units of work at capped rate 2 -> busy exactly [0,4]
	if got := cpu.Utilization(0, 0); math.Abs(got-1) > 1e-9 {
		t.Errorf("saturated utilization = %v, want 1", got)
	}
}

func TestDistributions(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	dists := []Dist{
		Deterministic{V: 2},
		Exponential{MeanV: 0.5},
		Uniform{Low: 1, High: 3},
		LogNormal{MeanV: 1.5, CV: 0.4},
		TruncNormal{MeanV: 2, StdDev: 0.5},
	}
	for _, d := range dists {
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			v := d.Sample(r)
			if v < 0 {
				t.Fatalf("%T sampled negative %v", d, v)
			}
			sum += v
		}
		got := sum / float64(n)
		if math.Abs(got-d.Mean())/d.Mean() > 0.05 {
			t.Errorf("%T empirical mean %v, want %v", d, got, d.Mean())
		}
	}
}

func TestLogNormalZeroCV(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := LogNormal{MeanV: 2, CV: 0}
	if d.Sample(r) != 2 {
		t.Error("CV=0 should be deterministic")
	}
}

// TestReschedule covers the in-place calendar move used by SharedResource:
// same tie semantics as cancel+schedule, no tombstone left behind.
func TestReschedule(t *testing.T) {
	e := NewEngine()
	var order []string
	a := e.Schedule(1, func() { order = append(order, "a") })
	e.Schedule(2, func() { order = append(order, "b") })
	if !e.Reschedule(a, 3) {
		t.Fatal("reschedule of a pending event should succeed")
	}
	e.Run(10)
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order = %v, want [b a]", order)
	}
	// A fired event cannot be rescheduled.
	if e.Reschedule(a, 5) {
		t.Fatal("reschedule of a fired event should fail")
	}
	// A cancelled event cannot be rescheduled.
	c := e.Schedule(1, func() { order = append(order, "c") })
	c.Cancel()
	if e.Reschedule(c, 2) {
		t.Fatal("reschedule of a cancelled event should fail")
	}
	// Rescheduling to the past clamps to now (fires immediately on Run).
	d := e.Schedule(100, func() { order = append(order, "d") })
	if !e.Reschedule(d, -5) {
		t.Fatal("clamped reschedule should succeed")
	}
	e.Run(20)
	if order[len(order)-1] != "d" {
		t.Fatalf("clamped event did not fire: %v", order)
	}
	if e.Pending() != 0 {
		t.Fatalf("calendar should be empty, %d pending", e.Pending())
	}
}

// TestRescheduleTieOrder pins that a rescheduled event behaves like a
// freshly scheduled one on time ties: it fires after events already queued
// at that instant.
func TestRescheduleTieOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	x := e.Schedule(5, func() { order = append(order, "x") })
	e.Schedule(7, func() { order = append(order, "y") })
	e.Reschedule(x, 7) // now ties with y, but was (re)scheduled later
	e.Run(10)
	if len(order) != 2 || order[0] != "y" || order[1] != "x" {
		t.Fatalf("order = %v, want [y x]", order)
	}
}
