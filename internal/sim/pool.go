package sim

// Pool is a bounded thread pool with a FIFO wait queue — the model for the
// HTTP, Download, Extract and Simsearch pools of Table II. It accounts for
// busy-slot time so monitors can report "thread pool busy time" exactly as
// Figures 9f/9g/10c/10d do.
type Pool struct {
	eng  *Engine
	name string
	size int
	busy int
	// queue is a head-indexed FIFO: grants pop by advancing head instead of
	// re-slicing, so the backing array's capacity is reused and steady-state
	// queue churn allocates nothing. It compacts when drained (and when head
	// grows large without draining).
	queue []func()
	head  int

	lastT     float64
	busyInt   float64 // ∫ busy(t) dt
	queueInt  float64 // ∫ queueLen(t) dt
	grants    int64
	maxQueued int
}

// NewPool creates a pool of size slots on the engine.
func NewPool(eng *Engine, name string, size int) *Pool {
	if size < 1 {
		panic("sim: pool size must be >= 1")
	}
	return &Pool{eng: eng, name: name, size: size, lastT: eng.Now()}
}

// Name returns the pool's name.
func (p *Pool) Name() string { return p.name }

// Reset returns the pool to a fresh state with the given slot count after
// an Engine.Reset, keeping the queue's backing array so the next run's
// steady state allocates nothing. Waiters still queued are dropped.
//
//simlint:noalloc pooled-reuse path (PR 5 contract)
func (p *Pool) Reset(size int) {
	if size < 1 {
		panic("sim: pool size must be >= 1")
	}
	p.size, p.busy = size, 0
	for i := range p.queue {
		p.queue[i] = nil
	}
	p.queue, p.head = p.queue[:0], 0
	p.lastT = p.eng.Now()
	p.busyInt, p.queueInt = 0, 0
	p.grants, p.maxQueued = 0, 0
}

// Crash empties the pool mid-run: every held slot and queued waiter is
// dropped without running (the owner re-drives the affected requests
// elsewhere — the engine's replica-failover path), while the busy and
// queue integrals, grant count, and queue high-water mark survive so
// monitoring stays continuous across the outage. Unlike Reset, Crash is
// safe mid-run: accounting is closed at the crash instant first.
//
//simlint:noalloc fault event path (crash/failover, PR 7 contract)
func (p *Pool) Crash() {
	p.account()
	for i := range p.queue {
		p.queue[i] = nil
	}
	p.queue, p.head = p.queue[:0], 0
	p.busy = 0
}

// Size returns the number of slots (the thread-pool size).
func (p *Pool) Size() int { return p.size }

// Busy returns the number of currently held slots.
func (p *Pool) Busy() int { return p.busy }

// Queued returns the number of waiting requests.
func (p *Pool) Queued() int { return len(p.queue) - p.head }

// Grants returns how many acquisitions have been granted so far.
func (p *Pool) Grants() int64 { return p.grants }

// Request asks for a slot; fn runs (at the current or a later simulation
// instant) once a slot is granted. The holder must call Release exactly once.
//
//simlint:noalloc steady-state pool churn (PR 3 contract, sim/alloc_test.go)
func (p *Pool) Request(fn func()) {
	p.account()
	if p.busy < p.size {
		p.busy++
		p.grants++
		// Run via the calendar so grant ordering is deterministic and
		// callers never observe re-entrant callbacks.
		p.eng.Schedule(0, fn)
		return
	}
	if p.head > 256 && p.head*2 >= len(p.queue) {
		// Long-lived backlog: slide the live tail down so the dead prefix
		// doesn't grow without bound.
		n := copy(p.queue, p.queue[p.head:])
		for i := n; i < len(p.queue); i++ {
			p.queue[i] = nil
		}
		p.queue = p.queue[:n]
		p.head = 0
	}
	p.queue = append(p.queue, fn)
	if q := len(p.queue) - p.head; q > p.maxQueued {
		p.maxQueued = q
	}
}

// Release returns a slot, handing it to the oldest waiter if any.
//
//simlint:noalloc steady-state pool churn
func (p *Pool) Release() {
	p.account()
	if p.busy <= 0 {
		//simlint:allow noalloc message concat sits on the panic path, which is never reached in steady state
		panic("sim: Release on idle pool " + p.name)
	}
	if p.head < len(p.queue) {
		fn := p.queue[p.head]
		p.queue[p.head] = nil
		p.head++
		if p.head == len(p.queue) {
			p.queue = p.queue[:0]
			p.head = 0
		}
		p.grants++
		p.eng.Schedule(0, fn)
		return // slot transfers directly to the waiter
	}
	p.busy--
}

// account integrates busy and queue time up to the current instant.
//
//simlint:noalloc
func (p *Pool) account() {
	now := p.eng.Now()
	dt := now - p.lastT
	if dt > 0 {
		p.busyInt += float64(p.busy) * dt
		p.queueInt += float64(len(p.queue)-p.head) * dt
		p.lastT = now
	}
}

// BusyIntegral returns ∫ busy(t) dt up to the current simulation time, in
// slot-seconds.
func (p *Pool) BusyIntegral() float64 {
	p.account()
	return p.busyInt
}

// QueueIntegral returns ∫ queueLen(t) dt in request-seconds.
func (p *Pool) QueueIntegral() float64 {
	p.account()
	return p.queueInt
}

// MaxQueued returns the high-water mark of the wait queue.
func (p *Pool) MaxQueued() int { return p.maxQueued }

// Utilization returns average busy fraction over [t0, now] given the busy
// integral recorded at t0.
func (p *Pool) Utilization(busyIntAtT0, t0 float64) float64 {
	now := p.eng.Now()
	if now <= t0 {
		return 0
	}
	return (p.BusyIntegral() - busyIntAtT0) / (float64(p.size) * (now - t0))
}
