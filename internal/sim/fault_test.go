package sim

import (
	"math"
	"math/rand"
	"testing"
)

// Crash/reconfiguration primitives behind the fault-injection layer:
// SharedResource.Crash, Pool.Crash, Link.Reconfigure/Restore (flap
// stall/drain), and the packetized transport.

func TestSharedResourceCrash(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 4)
	fired := 0
	done := func() { fired++ }
	cpu.Add(10, 1, done)
	cpu.Add(10, 1, done)
	cpu.AddHold(2)
	e.Run(1)
	w0 := cpu.WorkIntegral()
	if w0 <= 0 {
		t.Fatal("expected work accrued before the crash")
	}
	cpu.Crash()
	if got := cpu.ActiveWeight(); got != 0 {
		t.Errorf("ActiveWeight after crash = %v, want 0 (jobs and holds cleared)", got)
	}
	e.Run(100)
	if fired != 0 {
		t.Errorf("%d completions fired after crash, want 0", fired)
	}
	if got := cpu.WorkIntegral(); got < w0 {
		t.Errorf("work integral shrank across crash: %v < %v", got, w0)
	}
	// The resource keeps working after a crash.
	cpu.Add(0.5, 1, done)
	e.Run(200)
	if fired != 1 {
		t.Errorf("post-crash job completions = %d, want 1", fired)
	}
}

func TestPoolCrash(t *testing.T) {
	e := NewEngine()
	p := NewPool(e, "x", 1)
	granted := 0
	p.Request(func() { granted++ })
	p.Request(func() { granted++ }) // queued behind the held slot
	e.Run(1)
	if granted != 1 {
		t.Fatalf("granted = %d before crash, want 1", granted)
	}
	p.Crash()
	if p.Busy() != 0 || p.Queued() != 0 {
		t.Errorf("after crash busy=%d queued=%d, want 0/0", p.Busy(), p.Queued())
	}
	e.Run(10)
	if granted != 1 {
		t.Errorf("queued waiter ran after crash: granted = %d", granted)
	}
	if p.BusyIntegral() <= 0 {
		t.Error("busy integral lost across crash")
	}
	// The pool keeps granting after a crash.
	p.Request(func() { granted++ })
	e.Run(20)
	if granted != 2 {
		t.Errorf("post-crash grants = %d, want 2", granted)
	}
}

func TestLinkReconfigureRateMidTransfer(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 0, 1e6, 0, rand.New(rand.NewSource(1)))
	var doneAt float64
	l.Transfer(1e6, func() { doneAt = e.Now() }) // 8 s solo serialization
	e.At(2, func() { l.Reconfigure(-1, 4e6, -1) })
	e.Run(100)
	// 2 s at the built rate leaves 6 s of solo work, served 4x faster.
	if math.Abs(doneAt-3.5) > 1e-6 {
		t.Errorf("delivery at %v, want 3.5 (rate change applies to in-flight work)", doneAt)
	}
}

func TestLinkFlapStallsAndDrains(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 0.01, 1e8, 0, rand.New(rand.NewSource(1)))
	var doneAt []float64
	done := func() { doneAt = append(doneAt, e.Now()) }
	// One payload mid-flight when the link goes down, one submitted while
	// it is down.
	e.At(0.995, func() { l.Transfer(1e5, done) })
	e.At(1.0, func() { l.Reconfigure(-1, 0, 100) })
	e.At(1.5, func() { l.Transfer(1e5, done) })
	e.At(5.0, func() { l.Restore() })
	e.Run(100)
	if len(doneAt) != 2 {
		t.Fatalf("delivered %d payloads, want 2", len(doneAt))
	}
	for _, at := range doneAt {
		if at < 5 {
			t.Errorf("delivery at %v while the link was down", at)
		}
	}
	if l.Stalled() != 0 {
		t.Errorf("%d payloads still stalled after restore", l.Stalled())
	}
	if l.Blackholed() != 0 {
		t.Errorf("managed down link blackholed %d transfers, want 0 (they park)", l.Blackholed())
	}
}

func TestUnmanagedFullyLossyLinkStillBlackholes(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 0.01, 1e8, 100, rand.New(rand.NewSource(1)))
	l.Transfer(1e5, func() { t.Error("delivery on a black hole") })
	e.Run(10)
	if l.Blackholed() != 1 {
		t.Errorf("Blackholed = %d, want 1", l.Blackholed())
	}
}

func TestLinkResetRestoresReconfiguredParams(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 0.01, 1e8, 0, rand.New(rand.NewSource(1)))
	l.Reconfigure(5, 1e6, 50)
	e.Reset()
	l.Reset()
	var doneAt float64
	l.Transfer(1e5, func() { doneAt = e.Now() })
	e.Run(100)
	// 1e5 bytes at the ORIGINAL 1e8 bps + 0.01 delay = 0.018 s; the
	// reconfigured delay/rate/loss must not survive the reset.
	if math.Abs(doneAt-0.018) > 1e-9 {
		t.Errorf("post-reset delivery at %v, want 0.018", doneAt)
	}
}

func TestLinkPacketMode(t *testing.T) {
	deliver := func(seed int64) (times []float64, retrans int64) {
		e := NewEngine()
		l := NewLink(e, 0.005, 1e8, 5, rand.New(rand.NewSource(seed)))
		l.EnablePacket(1500)
		done := func() { times = append(times, e.Now()) }
		for i := 0; i < 10; i++ {
			l.Transfer(1.2e6, done)
		}
		e.Run(1e6)
		if l.Delivered() != 10 {
			t.Fatalf("delivered %d payloads, want 10", l.Delivered())
		}
		return times, l.Retransmits()
	}
	a, ra := deliver(7)
	b, rb := deliver(7)
	if ra == 0 {
		t.Error("lossy packet path produced no retransmissions")
	}
	if ra != rb {
		t.Errorf("retransmits differ across identical seeds: %d vs %d", ra, rb)
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("delivery %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
	}

	// Lossless packet transport delivers everything without retransmits.
	e := NewEngine()
	l := NewLink(e, 0.005, 1e8, 0, rand.New(rand.NewSource(1)))
	l.EnablePacket(0) // default MTU
	n := 0
	l.Transfer(1.2e6, func() { n++ })
	e.Run(1e6)
	if n != 1 || l.Retransmits() != 0 {
		t.Errorf("lossless packet transfer: delivered=%d retransmits=%d", n, l.Retransmits())
	}
}

// Fault-edge matrix, kernel level: a zero-duration outage (down and
// restore at the same instant) must leave deliveries untouched; a
// reconfiguration scheduled exactly on the horizon still fires; one
// scheduled past the horizon does not.
func TestFaultEdgesAtKernelLevel(t *testing.T) {
	// Zero-duration outage: down then restore at t=1, both before the
	// payload's delivery event. The transfer must complete as if the
	// outage never happened (stall and drain at the same instant).
	e := NewEngine()
	l := NewLink(e, 0.01, 1e8, 0, rand.New(rand.NewSource(1)))
	var doneAt float64
	e.At(0.995, func() { l.Transfer(1e5, func() { doneAt = e.Now() }) })
	e.At(1.0, func() { l.Reconfigure(-1, 0, 100) })
	e.At(1.0, func() { l.Restore() })
	e.Run(100)
	want := 0.995 + 0.01 + 1e5*8/1e8
	if math.Abs(doneAt-want) > 1e-9 {
		t.Errorf("zero-duration outage delivery at %v, want %v", doneAt, want)
	}
	if l.Stalled() != 0 || l.Blackholed() != 0 {
		t.Errorf("stalled=%d blackholed=%d after zero-duration outage", l.Stalled(), l.Blackholed())
	}

	// An event at exactly the horizon fires; one past it does not.
	e2 := NewEngine()
	p := NewPool(e2, "x", 1)
	atHorizon, pastHorizon := false, false
	e2.At(10, func() { atHorizon = true; p.Crash() })
	e2.At(10.000001, func() { pastHorizon = true })
	e2.Run(10)
	if !atHorizon {
		t.Error("event at exactly the horizon did not fire")
	}
	if pastHorizon {
		t.Error("event past the horizon fired")
	}
}
