package sim

import (
	"math/rand"
	"testing"
)

// Steady-state allocation contracts of the simulation kernel: once the
// arena, freelists, and tier capacities are warm, the hot loops — event
// scheduling/firing, shared-resource job churn, pool grant/release — must
// not allocate at all. These tests are the allocation-regression gate run by
// scripts/verify.sh.

var nopFn = func() {}

func requireZeroAllocs(t *testing.T, what string, f func()) {
	t.Helper()
	if allocs := testing.AllocsPerRun(100, f); allocs != 0 {
		t.Errorf("%s: %v allocs/op, want 0", what, allocs)
	}
}

func TestZeroAllocScheduleStep(t *testing.T) {
	e := NewEngine()
	// Warm every tier: front, ring, overflow (> 8 s horizon), freelist.
	for i := 0; i < 512; i++ {
		e.Schedule(float64(i%80)*0.25, nopFn)
	}
	e.Run(1e6)
	requireZeroAllocs(t, "Schedule/Step churn", func() {
		for i := 0; i < 8; i++ {
			e.Schedule(float64(i)*0.3, nopFn) // front + ring
		}
		e.Schedule(20, nopFn) // overflow, migrates ring-ward
		for e.Step() {
		}
	})
}

func TestZeroAllocCancelReschedule(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 64; i++ {
		e.Schedule(float64(i), nopFn)
	}
	e.Run(1e6)
	requireZeroAllocs(t, "Cancel/Reschedule churn", func() {
		a := e.Schedule(1, nopFn)
		b := e.Schedule(12, nopFn)
		e.Reschedule(b, e.Now()+0.5)
		a.Cancel()
		for e.Step() {
		}
	})
}

func TestZeroAllocSharedJobChurn(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 4)
	done := func() {}
	for i := 0; i < 64; i++ {
		cpu.Add(1, 1, done)
	}
	e.Run(1e6)
	requireZeroAllocs(t, "sharedJob churn", func() {
		for i := 0; i < 8; i++ {
			cpu.Add(0.5, 1, done)
		}
		e.Run(e.Now() + 100)
	})
}

func TestZeroAllocLinkTransfer(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(1))
	lossy := NewLink(e, 0.003, 1e7, 20, rng) // bounded pipe + retransmission path
	pure := NewLink(e, 0.001, 0, 0, rng)     // unlimited-rate, delay-only path
	done := func() {}
	// Warm the transfer freelists, the pipe's job freelist, and the calendar.
	for i := 0; i < 64; i++ {
		lossy.Transfer(1e5, done)
		pure.Transfer(1e5, done)
	}
	e.Run(1e6)
	requireZeroAllocs(t, "link transfer churn", func() {
		for i := 0; i < 8; i++ {
			lossy.Transfer(1e5, done)
			pure.Transfer(1e5, done)
		}
		e.Run(e.Now() + 100)
	})
}

func TestZeroAllocEngineReset(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 4)
	done := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(float64(i)*0.3, nopFn)
		cpu.Add(1, 1, done)
	}
	e.Run(1e6)
	requireZeroAllocs(t, "Engine/SharedResource reset churn", func() {
		e.Reset()
		cpu.Reset(cpu.MaxRate, nil)
		for i := 0; i < 8; i++ {
			e.Schedule(float64(i)*0.3, nopFn)
			cpu.Add(0.5, 1, done)
		}
		e.Run(1e6)
	})
}

func TestZeroAllocPoolChurn(t *testing.T) {
	e := NewEngine()
	p := NewPool(e, "x", 2)
	release := p.Release // bind the method value once
	var hold func()
	hold = func() { e.Schedule(0.01, release) }
	for i := 0; i < 16; i++ {
		p.Request(hold)
	}
	e.Run(1e6)
	requireZeroAllocs(t, "pool grant/release churn", func() {
		for i := 0; i < 8; i++ {
			p.Request(hold)
		}
		e.Run(e.Now() + 100)
	})
}

func TestZeroAllocLinkFlapChurn(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(2))
	l := NewLink(e, 0.002, 1e7, 0, rng)
	done := func() {}
	// Warm the transfer freelist and the stall FIFO capacity.
	for i := 0; i < 64; i++ {
		l.Transfer(1e5, done)
	}
	e.Run(1e6)
	requireZeroAllocs(t, "link flap churn", func() {
		l.Reconfigure(-1, 0, 100) // down: new transfers park
		for i := 0; i < 8; i++ {
			l.Transfer(1e5, done)
		}
		l.Reconfigure(-1, 5e6, 0) // up at half rate: stalled queue drains
		l.Restore()
		e.Run(e.Now() + 100)
	})
}

func TestZeroAllocPacketTransfer(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 0.003, 1e7, 10, rand.New(rand.NewSource(3)))
	l.EnablePacket(1500)
	done := func() {}
	for i := 0; i < 64; i++ {
		l.Transfer(1e5, done)
	}
	e.Run(1e6)
	requireZeroAllocs(t, "packet transfer churn", func() {
		for i := 0; i < 8; i++ {
			l.Transfer(1e5, done)
		}
		e.Run(e.Now() + 100)
	})
}

func TestZeroAllocCrashChurn(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 4)
	p := NewPool(e, "x", 2)
	done := func() {}
	for i := 0; i < 16; i++ {
		cpu.Add(1, 1, done)
		p.Request(nopFn)
		p.Crash()
	}
	e.Run(1e6)
	requireZeroAllocs(t, "crash/recovery churn", func() {
		for i := 0; i < 4; i++ {
			cpu.Add(5, 1, done)
			p.Request(nopFn) // slot held until the crash wipes it
		}
		cpu.AddHold(1.5)
		e.Run(e.Now() + 0.1)
		cpu.Crash()
		p.Crash()
		e.Run(e.Now() + 100)
	})
}

func TestZeroAllocRetryHedgeTimerChurn(t *testing.T) {
	// The resilience layer's steady-state calendar pattern: arm a hedge
	// timer per request, cancel most at completion, reschedule the rest as
	// backoff retries. Pure schedule/cancel churn on warm tiers.
	e := NewEngine()
	for i := 0; i < 256; i++ {
		e.Schedule(float64(i%40)*0.25, nopFn)
	}
	e.Run(1e6)
	var hedges [8]Event
	requireZeroAllocs(t, "retry/hedge timer churn", func() {
		for i := range hedges {
			hedges[i] = e.Schedule(1.5, nopFn) // hedge armed at dispatch
		}
		for i := 0; i < 6; i++ {
			hedges[i].Cancel() // primary finished first: cancel the hedge
		}
		for i := 6; i < 8; i++ {
			e.Schedule(0.25*float64(i), nopFn) // backoff retry
		}
		for e.Step() {
		}
	})
}
