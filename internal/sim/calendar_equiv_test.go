package sim

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"
)

// This file keeps the pre-ladder event calendar — the single binary heap the
// kernel shipped with through PR 2 — as a test-only reference
// implementation, and drives randomized Schedule/Cancel/Reschedule/Run/Step
// sequences through both calendars side by side. The firing sequence (event
// identity and bit-exact clock value) must be identical: the ladder is a
// performance structure, never a semantic one.

// --- reference implementation (the old container/heap engine) --------------

type refEngine struct {
	now    float64
	seq    int64
	events refHeap
}

type refEvent struct {
	time      float64
	seq       int64
	fn        func()
	index     int
	cancelled bool
}

func (ev *refEvent) Cancel() { ev.cancelled = true }

func (e *refEngine) Schedule(delay float64, fn func()) *refEvent {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

func (e *refEngine) At(t float64, fn func()) *refEvent {
	if t < e.now || math.IsNaN(t) {
		t = e.now
	}
	e.seq++
	ev := &refEvent{time: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

func (e *refEngine) Reschedule(ev *refEvent, t float64) bool {
	if ev == nil || ev.cancelled || ev.index < 0 {
		return false
	}
	if t < e.now || math.IsNaN(t) {
		t = e.now
	}
	e.seq++
	ev.time = t
	ev.seq = e.seq
	heap.Fix(&e.events, ev.index)
	return true
}

func (e *refEngine) Step() bool {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*refEvent)
		if ev.cancelled {
			continue
		}
		e.now = ev.time
		ev.fn()
		return true
	}
	return false
}

func (e *refEngine) Run(until float64) {
	for e.events.Len() > 0 {
		next := e.events[0]
		if next.cancelled {
			heap.Pop(&e.events)
			continue
		}
		if next.time > until {
			e.now = until
			return
		}
		heap.Pop(&e.events)
		e.now = next.time
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

func (e *refEngine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *refHeap) Push(x any) {
	ev := x.(*refEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// --- side-by-side property test --------------------------------------------

type fireRec struct {
	id int
	t  float64
}

// eventFire logs a firing and optionally spawns a child event with a delay
// fixed at schedule time, exercising nested scheduling identically in both
// calendars. Child ids derive deterministically from the parent's.
func newFireFn(log *[]fireRec, now func() float64, sched func(delay float64, fn func()), id int, childDelay float64) func() {
	return func() {
		*log = append(*log, fireRec{id, now()})
		if childDelay >= 0 {
			childID := -(id + 1000)
			sched(childDelay, newFireFn(log, now, sched, childID, -1))
		}
	}
}

func TestCalendarMatchesReferenceHeap(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		runCalendarEquiv(t, seed, 400)
	}
}

func runCalendarEquiv(t *testing.T, seed int64, nOps int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	eNew := NewEngine()
	eOld := &refEngine{}
	var logNew, logOld []fireRec
	schedNew := func(d float64, fn func()) { eNew.Schedule(d, fn) }
	schedOld := func(d float64, fn func()) { eOld.Schedule(d, fn) }

	type pair struct {
		nev Event
		oev *refEvent
	}
	var handles []pair // includes fired/cancelled handles: staleness must agree
	nextID := 0

	randDelay := func() float64 {
		switch r.Intn(10) {
		case 0:
			return 0 // the Schedule(0, ...) hot path
		case 1, 2:
			return r.Float64() * 0.05 // same-bucket churn
		case 3, 4, 5:
			return r.Float64() * 2 // near ring
		case 6, 7:
			return r.Float64() * 30 // beyond the 8 s ring horizon
		case 8:
			return r.Float64() * 300 // deep overflow
		default:
			return -r.Float64() // negative: clamps to now
		}
	}

	schedulePair := func(t float64, absolute bool) {
		id := nextID
		nextID++
		childDelay := -1.0
		if r.Intn(10) < 3 {
			childDelay = r.Float64()
		}
		fnN := newFireFn(&logNew, eNew.Now, schedNew, id, childDelay)
		fnO := newFireFn(&logOld, func() float64 { return eOld.now }, schedOld, id, childDelay)
		if absolute {
			handles = append(handles, pair{eNew.At(t, fnN), eOld.At(t, fnO)})
		} else {
			handles = append(handles, pair{eNew.Schedule(t, fnN), eOld.Schedule(t, fnO)})
		}
	}

	check := func(op string) {
		if len(logNew) != len(logOld) {
			t.Fatalf("seed %d after %s: fired %d vs reference %d", seed, op, len(logNew), len(logOld))
		}
		for i := range logNew {
			if logNew[i].id != logOld[i].id || math.Float64bits(logNew[i].t) != math.Float64bits(logOld[i].t) {
				t.Fatalf("seed %d after %s: fire %d = %+v, reference %+v", seed, op, i, logNew[i], logOld[i])
			}
		}
		if math.Float64bits(eNew.Now()) != math.Float64bits(eOld.now) {
			t.Fatalf("seed %d after %s: now %v vs reference %v", seed, op, eNew.Now(), eOld.now)
		}
		if eNew.Pending() != eOld.Pending() {
			t.Fatalf("seed %d after %s: pending %d vs reference %d", seed, op, eNew.Pending(), eOld.Pending())
		}
	}

	for op := 0; op < nOps; op++ {
		switch k := r.Intn(100); {
		case k < 45:
			schedulePair(randDelay(), false)
		case k < 55:
			schedulePair(eNew.Now()+r.Float64()*5-2, true) // absolute, possibly past
		case k < 65:
			if len(handles) > 0 {
				p := handles[r.Intn(len(handles))]
				p.nev.Cancel()
				p.oev.Cancel()
			}
		case k < 75:
			if len(handles) > 0 {
				p := handles[r.Intn(len(handles))]
				target := eNew.Now() + r.Float64()*11 - 1
				gotN := eNew.Reschedule(p.nev, target)
				gotO := eOld.Reschedule(p.oev, target)
				if gotN != gotO {
					t.Fatalf("seed %d: Reschedule returned %v, reference %v", seed, gotN, gotO)
				}
			}
		case k < 80:
			sn, so := eNew.Step(), eOld.Step()
			if sn != so {
				t.Fatalf("seed %d: Step returned %v, reference %v", seed, sn, so)
			}
			check("step")
		default:
			until := eNew.Now() + r.Float64()*3
			eNew.Run(until)
			eOld.Run(until)
			check("run")
		}
	}
	// Drain both calendars completely.
	eNew.Run(1e9)
	eOld.Run(1e9)
	check("final drain")
}
