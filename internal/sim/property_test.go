package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPSWorkConservationProperty: for any set of jobs on a
// processor-sharing CPU, the total work delivered equals the total work
// submitted once everything completes, and no job finishes before
// totalWork/capacity (the capacity bound).
func TestPSWorkConservationProperty(t *testing.T) {
	f := func(seed int64, rawJobs uint8, rawCores uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nJobs := int(rawJobs%20) + 1
		cores := float64(rawCores%8) + 1
		e := NewEngine()
		cpu := NewCPU(e, cores)
		var totalWork float64
		var lastDone float64
		done := 0
		for i := 0; i < nJobs; i++ {
			w := 0.1 + r.Float64()*3
			totalWork += w
			cpu.Add(w, 1, func() {
				done++
				lastDone = e.Now()
			})
		}
		e.Run(1e6)
		if done != nJobs {
			return false
		}
		// Work conservation.
		if math.Abs(cpu.WorkIntegral()-totalWork) > 1e-6*totalWork {
			return false
		}
		// Makespan lower bound: work/capacity (all jobs start at t=0).
		if lastDone < totalWork/cores-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPSFairnessProperty: equal-weight jobs of equal size submitted
// together finish together.
func TestPSFairnessProperty(t *testing.T) {
	f := func(seed int64, rawJobs uint8) bool {
		nJobs := int(rawJobs%10) + 2
		e := NewEngine()
		cpu := NewCPU(e, 1)
		var times []float64
		for i := 0; i < nJobs; i++ {
			cpu.Add(1, 1, func() { times = append(times, e.Now()) })
		}
		e.Run(1e6)
		if len(times) != nJobs {
			return false
		}
		for _, tm := range times {
			if math.Abs(tm-times[0]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPoolConservationProperty: every request is eventually granted exactly
// once and the busy integral equals the sum of hold times.
func TestPoolConservationProperty(t *testing.T) {
	f := func(seed int64, rawN, rawSize uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(rawN%40) + 1
		size := int(rawSize%6) + 1
		e := NewEngine()
		p := NewPool(e, "p", size)
		var holdSum float64
		granted := 0
		for i := 0; i < n; i++ {
			hold := 0.05 + r.Float64()
			holdSum += hold
			p.Request(func() {
				granted++
				e.Schedule(hold, p.Release)
			})
		}
		e.Run(1e6)
		if granted != n || p.Busy() != 0 || p.Queued() != 0 {
			return false
		}
		return math.Abs(p.BusyIntegral()-holdSum) < 1e-6*holdSum+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestHoldNeverCompletes: persistent loads consume capacity but never fire
// completions; jobs sharing with a hold finish later than alone.
func TestHoldNeverCompletes(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 1)
	release := cpu.Hold(1) // consumes half the core alongside one job
	var done float64
	cpu.Add(1, 1, func() { done = e.Now() })
	e.Run(1e6)
	if math.Abs(done-2) > 1e-9 {
		t.Errorf("job sharing with equal-weight hold finished at %v, want 2", done)
	}
	release()
	release() // double release is a no-op
	if cpu.ActiveWeight() != 0 {
		t.Errorf("weight after release = %v", cpu.ActiveWeight())
	}
	// After release, new jobs run at full speed.
	start := e.Now()
	var done2 float64
	cpu.Add(1, 1, func() { done2 = e.Now() })
	e.Run(start + 100)
	if math.Abs(done2-start-1) > 1e-9 {
		t.Errorf("post-release job took %v, want 1", done2-start)
	}
}

// TestHoldUtilizationAccounted: capacity consumed by holds shows up in the
// work integral (CPU usage includes polling overhead).
func TestHoldUtilizationAccounted(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 4)
	cpu.Hold(2)
	e.Schedule(10, func() {})
	e.Run(10)
	// 2 cores consumed for 10s = 20 work-seconds; utilization 50%.
	if got := cpu.Utilization(0, 0); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("hold utilization = %v, want 0.5", got)
	}
}

// TestGPUThroughputCapProperty: regardless of concurrency, a saturating GPU
// never delivers more than its peak rate.
func TestGPUThroughputCapProperty(t *testing.T) {
	f := func(rawJobs uint8) bool {
		nJobs := int(rawJobs%60) + 1
		e := NewEngine()
		gpu := NewGPU(e, 6, 6)
		for i := 0; i < nJobs; i++ {
			gpu.Add(1, 1, func() {})
		}
		horizon := 100.0
		e.Run(horizon)
		delivered := gpu.WorkIntegral()
		return delivered <= 6*horizon+1e-6 && delivered <= float64(nJobs)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
