package sim

import (
	"math"
	"math/rand"
)

// Dist is a distribution of nonnegative durations (seconds).
type Dist interface {
	// Sample draws one value using r.
	Sample(r *rand.Rand) float64
	// Mean returns the distribution mean.
	Mean() float64
}

// Deterministic always returns V.
type Deterministic struct{ V float64 }

// Sample implements Dist.
func (d Deterministic) Sample(*rand.Rand) float64 { return d.V }

// Mean implements Dist.
func (d Deterministic) Mean() float64 { return d.V }

// Exponential has rate 1/MeanV.
type Exponential struct{ MeanV float64 }

// Sample implements Dist.
func (d Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() * d.MeanV }

// Mean implements Dist.
func (d Exponential) Mean() float64 { return d.MeanV }

// Uniform is uniform on [Low, High].
type Uniform struct{ Low, High float64 }

// Sample implements Dist.
func (d Uniform) Sample(r *rand.Rand) float64 { return d.Low + r.Float64()*(d.High-d.Low) }

// Mean implements Dist.
func (d Uniform) Mean() float64 { return (d.Low + d.High) / 2 }

// LogNormal is parameterized directly by its mean and the coefficient of
// variation CV (stddev/mean), which is how service-time variability is
// naturally specified when calibrating against measured latencies.
type LogNormal struct {
	MeanV float64
	CV    float64
}

// Sample implements Dist.
func (d LogNormal) Sample(r *rand.Rand) float64 {
	if d.CV <= 0 {
		return d.MeanV
	}
	sigma2 := math.Log(1 + d.CV*d.CV)
	mu := math.Log(d.MeanV) - sigma2/2
	return math.Exp(mu + math.Sqrt(sigma2)*r.NormFloat64())
}

// Mean implements Dist.
func (d LogNormal) Mean() float64 { return d.MeanV }

// TruncNormal is a normal distribution truncated at zero (resampled).
type TruncNormal struct{ MeanV, StdDev float64 }

// Sample implements Dist.
func (d TruncNormal) Sample(r *rand.Rand) float64 {
	for i := 0; i < 64; i++ {
		v := d.MeanV + d.StdDev*r.NormFloat64()
		if v >= 0 {
			return v
		}
	}
	return 0
}

// Mean implements Dist (approximate when truncation mass is significant).
func (d TruncNormal) Mean() float64 { return d.MeanV }
