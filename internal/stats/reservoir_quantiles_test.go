package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestQuantilesMatchesQuantile pins the S-PR10 contract: Quantiles must be
// bit-identical to repeated Quantile calls (the metrics finalize path swaps
// three Quantile calls for one Quantiles call and the golden pins must not
// move), while sorting the retained sample only once into a reused scratch.
func TestQuantilesMatchesQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := NewReservoir(512, rand.New(rand.NewSource(7)))
	for i := 0; i < 5000; i++ {
		r.Add(rng.ExpFloat64() * 3.5)
	}
	qs := []float64{0, 0.25, 0.50, 0.95, 0.99, 1}
	got := r.Quantiles(nil, qs...)
	if len(got) != len(qs) {
		t.Fatalf("Quantiles returned %d values, want %d", len(got), len(qs))
	}
	for i, q := range qs {
		want := r.Quantile(q)
		if got[i] != want {
			t.Errorf("q=%v: Quantiles=%v Quantile=%v (must be bit-identical)", q, got[i], want)
		}
	}
	// Reuse must not allocate and must not perturb values.
	buf := got[:0]
	again := r.Quantiles(buf, qs...)
	for i := range qs {
		if again[i] != got[i] {
			t.Errorf("reused-buffer call diverged at q=%v", qs[i])
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = r.Quantiles(buf[:0], 0.50, 0.95, 0.99)
	})
	if allocs != 0 {
		t.Errorf("steady-state Quantiles allocates %v times per call, want 0", allocs)
	}
}

func TestQuantilesEmpty(t *testing.T) {
	r := NewReservoir(8, rand.New(rand.NewSource(1)))
	got := r.Quantiles(nil, 0.5, 0.99)
	if len(got) != 2 || !math.IsNaN(got[0]) || !math.IsNaN(got[1]) {
		t.Fatalf("empty reservoir: got %v, want two NaNs", got)
	}
}
