package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("Mean = %v, want 5", Mean(xs))
	}
	if math.Abs(Variance(xs)-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", Variance(xs), 32.0/7)
	}
	if math.Abs(StdDev(xs)-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) not NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of singleton not NaN")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) not NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Error("extreme quantiles wrong")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Errorf("median = %v, want 3", Quantile(xs, 0.5))
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %v, want 2", got)
	}
	if got := Quantile(xs, 0.375); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("q37.5 = %v, want 2.5", got)
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated input")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if math.Abs(Pearson(xs, ys)-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", Pearson(xs, ys))
	}
	neg := []float64{8, 6, 4, 2}
	if math.Abs(Pearson(xs, neg)+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", Pearson(xs, neg))
	}
	if !math.IsNaN(Pearson(xs, []float64{1, 1, 1, 1})) {
		t.Error("constant series should give NaN")
	}
	if !math.IsNaN(Pearson(xs, ys[:3])) {
		t.Error("length mismatch should give NaN")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-10 {
		t.Errorf("Welford mean %v vs batch %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.Variance()-Variance(xs)) > 1e-9 {
		t.Errorf("Welford var %v vs batch %v", w.Variance(), Variance(xs))
	}
	if w.Min() != Quantile(xs, 0) || w.Max() != Quantile(xs, 1) {
		t.Error("Welford min/max mismatch")
	}
	if w.N() != 500 {
		t.Errorf("N = %d", w.N())
	}
}

func TestWelfordMergeProperty(t *testing.T) {
	f := func(seed int64, na, nb uint8) bool {
		r := rand.New(rand.NewSource(seed))
		a := make([]float64, int(na%40)+2)
		b := make([]float64, int(nb%40)+2)
		var wa, wb, wAll Welford
		all := make([]float64, 0, len(a)+len(b))
		for i := range a {
			a[i] = r.NormFloat64()
			wa.Add(a[i])
			wAll.Add(a[i])
			all = append(all, a[i])
		}
		for i := range b {
			b[i] = r.NormFloat64() * 5
			wb.Add(b[i])
			wAll.Add(b[i])
			all = append(all, b[i])
		}
		wa.Merge(wb)
		return math.Abs(wa.Mean()-wAll.Mean()) < 1e-9 &&
			math.Abs(wa.Variance()-wAll.Variance()) < 1e-8 &&
			wa.Min() == wAll.Min() && wa.Max() == wAll.Max() && wa.N() == len(all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	b.Add(3)
	a.Merge(b)
	if a.N() != 1 || a.Mean() != 3 {
		t.Error("merge into empty failed")
	}
	var c Welford
	a.Merge(c)
	if a.N() != 1 {
		t.Error("merge of empty changed state")
	}
}

func TestWelfordEmptyAccessors(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Min()) || !math.IsNaN(w.Max()) || !math.IsNaN(w.Variance()) {
		t.Error("empty accessors should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	var w Welford
	for _, x := range []float64{1, 2, 3} {
		w.Add(x)
	}
	snap := w.Snapshot()
	if snap.Mean != s.Mean || snap.N != s.N || math.Abs(snap.StdDev-s.StdDev) > 1e-12 {
		t.Errorf("Snapshot %+v != Summarize %+v", snap, s)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	small := make([]float64, 10)
	big := make([]float64, 1000)
	for i := range small {
		small[i] = r.NormFloat64()
	}
	for i := range big {
		big[i] = r.NormFloat64()
	}
	if CI95(big) >= CI95(small) {
		t.Errorf("CI95 did not shrink: n=10 %v vs n=1000 %v", CI95(small), CI95(big))
	}
}

func TestReservoirSmallStreamExact(t *testing.T) {
	r := NewReservoir(100, rand.New(rand.NewSource(1)))
	for i := 1; i <= 50; i++ {
		r.Add(float64(i))
	}
	if r.N() != 50 {
		t.Errorf("N = %d", r.N())
	}
	// Below capacity the reservoir holds everything: quantiles are exact.
	if got := r.Quantile(0.5); math.Abs(got-25.5) > 1e-12 {
		t.Errorf("median = %v, want 25.5", got)
	}
	if r.Quantile(0) != 1 || r.Quantile(1) != 50 {
		t.Error("extremes wrong")
	}
}

func TestReservoirLargeStreamApproximate(t *testing.T) {
	r := NewReservoir(2000, rand.New(rand.NewSource(2)))
	src := rand.New(rand.NewSource(3))
	for i := 0; i < 200000; i++ {
		r.Add(src.Float64()) // uniform [0,1)
	}
	if len(r.Values()) != 2000 {
		t.Fatalf("retained %d", len(r.Values()))
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := r.Quantile(q); math.Abs(got-q) > 0.03 {
			t.Errorf("q%.0f = %v, want ~%v", q*100, got, q)
		}
	}
}

func TestReservoirDegenerate(t *testing.T) {
	r := NewReservoir(0, nil) // clamped to 1
	r.Add(7)
	r.Add(8)
	if v := r.Quantile(0.5); v != 7 && v != 8 {
		t.Errorf("single-slot reservoir = %v", v)
	}
}
