package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Reservoir keeps a uniform random sample of a stream (Vitter's algorithm
// R) so that quantiles of unbounded metric streams — per-request response
// times over a 23-minute run — can be estimated in bounded memory.
type Reservoir struct {
	cap     int
	n       int64
	rng     *rand.Rand
	data    []float64
	scratch []float64 // reusable sorted copy for Quantiles
}

// NewReservoir builds a reservoir of the given capacity (minimum 1).
func NewReservoir(capacity int, rng *rand.Rand) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	if rng == nil {
		//simlint:allow rngseed deterministic fallback for a nil rng keeps zero-config reservoirs reproducible; seeded callers pass their own stream
		rng = rand.New(rand.NewSource(1))
	}
	return &Reservoir{cap: capacity, rng: rng, data: make([]float64, 0, capacity)}
}

// Add observes one value.
//
//simlint:noalloc steady-state sampling path: the backing array is sized at construction and len<cap guards every append
func (r *Reservoir) Add(v float64) {
	r.n++
	if len(r.data) < r.cap {
		r.data = append(r.data, v)
		return
	}
	if j := r.rng.Int63n(r.n); j < int64(r.cap) {
		r.data[j] = v
	}
}

// Reset empties the reservoir, keeping its backing array so a pooled
// reservoir's next stream retains samples without reallocating. The caller
// owns re-seeding the rng it was built with.
func (r *Reservoir) Reset() {
	r.n = 0
	r.data = r.data[:0]
}

// N returns how many values were observed (not retained).
func (r *Reservoir) N() int64 { return r.n }

// Quantile estimates the q-quantile from the retained sample.
func (r *Reservoir) Quantile(q float64) float64 {
	return Quantile(r.data, q)
}

// Quantiles estimates several quantiles at once, appending one value per q
// to dst (which may be nil or a reused buffer with spare capacity). The
// retained sample is copied and sorted ONCE into a scratch buffer that is
// reused across calls — unlike Quantile, which re-copies and re-sorts per
// call — so a reservoir polled every sample interval allocates nothing in
// steady state. Each estimate is bit-identical to Quantile(q) on the same
// reservoir: both interpolate the same sorted order statistics.
func (r *Reservoir) Quantiles(dst []float64, qs ...float64) []float64 {
	if len(r.data) == 0 {
		for range qs {
			dst = append(dst, math.NaN())
		}
		return dst
	}
	r.scratch = append(r.scratch[:0], r.data...)
	sort.Float64s(r.scratch)
	s := r.scratch
	for _, q := range qs {
		switch {
		case q <= 0:
			dst = append(dst, s[0])
		case q >= 1:
			dst = append(dst, s[len(s)-1])
		default:
			pos := q * float64(len(s)-1)
			lo := int(math.Floor(pos))
			frac := pos - float64(lo)
			if lo+1 >= len(s) {
				dst = append(dst, s[lo])
			} else {
				dst = append(dst, s[lo]*(1-frac)+s[lo+1]*frac)
			}
		}
	}
	return dst
}

// Values returns a copy of the retained sample.
func (r *Reservoir) Values() []float64 { return append([]float64(nil), r.data...) }
