// Package stats provides the statistical aggregation used throughout the
// paper's evaluation: means and standard deviations over repeated
// experiments (e.g. "2.657 (±0.0914)" aggregates 966 measurements = 138
// samples x 7 repetitions), quantiles, confidence intervals, and
// correlation.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (NaN for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval on the mean.
func CI95(xs []float64) float64 { return 1.96 * StdErr(xs) }

// Quantile returns the q-quantile (0<=q<=1) using linear interpolation
// between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Pearson returns the Pearson correlation coefficient of paired samples.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Welford accumulates mean and variance online in a single pass, used by
// the monitoring manager to aggregate samples without retaining them.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN when empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased running variance (NaN for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (NaN when empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation (NaN when empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// Merge combines another accumulator into w (parallel aggregation).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	mean := w.mean + d*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n, w.mean, w.m2 = n, mean, m2
}

// Summary is a frozen snapshot of an aggregated metric, formatted the way
// the paper reports values: "mean (±stddev)".
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs), Min: Quantile(xs, 0), Max: Quantile(xs, 1)}
}

// Snapshot freezes a Welford accumulator into a Summary.
func (w *Welford) Snapshot() Summary {
	return Summary{N: w.n, Mean: w.Mean(), StdDev: w.StdDev(), Min: w.Min(), Max: w.Max()}
}
