package lint

import (
	"go/ast"
)

// seedConstructors are the math/rand (and v2) entry points whose argument
// is a seed. rand.New is covered transitively: its argument is always a
// NewSource/NewPCG/NewChaCha8 call or an existing Source value.
var seedConstructors = map[string]bool{
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// checkRNGSeed enforces seed discipline on every generator construction
// outside _test.go files: the seed must trace to a function parameter, a
// struct field, or an rngutil derivation — never a hard-coded literal and
// never the wall clock. Hard-coded seeds silently correlate supposedly
// independent streams; wall-clock seeds destroy reproducibility outright.
func checkRNGSeed(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg, call)
			if fn == nil || fn.Pkg() == nil || !isPackageFunc(fn) {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if !seedConstructors[fn.Name()] {
				return true
			}
			for _, arg := range call.Args {
				tv, ok := pkg.Info.Types[arg]
				switch {
				case ok && tv.Value != nil:
					diags = append(diags, diag(prog, arg.Pos(), "rngseed",
						"hard-coded seed %s: derive the seed from a parameter, field, or rngutil stream so runs stay independently seeded", tv.Value))
				case timeDerived(pkg, arg):
					diags = append(diags, diag(prog, arg.Pos(), "rngseed",
						"wall-clock-derived seed: a time-seeded generator makes every run unrepeatable; thread a root seed instead"))
				}
			}
			return true
		})
	}
	return diags
}

// timeDerived reports whether any call to the time package appears inside
// the seed expression (time.Now().UnixNano() and friends).
func timeDerived(pkg *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pkg, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			found = true
			return false
		}
		return true
	})
	return found
}
