package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"testing"
)

// FuzzDirective hammers the //simlint: directive surface: the parser must
// be total (never panic) and the hygiene findings a comment produces must
// be deterministic — a directive that parses differently across runs would
// make the repo self-check flap. The fuzz input is an arbitrary comment
// body tried both as a free-standing comment and as a function doc
// comment, the two placements collectDirectives distinguishes.
func FuzzDirective(f *testing.F) {
	for _, seed := range []string{
		"//simlint:allow wallclock justified by the fixture",
		"//simlint:allow nosuchcheck reason",
		"//simlint:allow wallclock",
		"//simlint:allow",
		"//simlint:noalloc proven arithmetic",
		"//simlint:noalloc",
		"//simlint:ordered",
		"//simlint:ordered reason\r\ntrailing after crlf",
		"//simlint:bogusverb x",
		"//simlint:",
		"// simlint:allow maprange accidental space form",
		"//simlint:allow wallclock\ttab separated reason",
		"///simlint:allow goroutine triple slash",
		"// an unrelated comment",
		"//simlint:allow kernelsync \x00 control bytes",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, comment string) {
		// The raw parser is total and deterministic, CRLF and all.
		v1, r1, ok1 := parseDirective(comment)
		v2, r2, ok2 := parseDirective(comment)
		if v1 != v2 || r1 != r2 || ok1 != ok2 {
			t.Fatalf("parseDirective(%q) not deterministic: (%q,%q,%v) vs (%q,%q,%v)",
				comment, v1, r1, ok1, v2, r2, ok2)
		}

		// Embed the comment in a synthetic file — once as a function doc
		// comment, once free-standing inside a body — and require the
		// hygiene findings to be byte-identical across two independent
		// parse+collect runs.
		line := strings.NewReplacer("\r", " ", "\n", " ", "\x00", " ").Replace(comment)
		if !strings.HasPrefix(line, "//") {
			line = "//" + line
		}
		src := "package fuzzdir\n\n" + line + "\nfunc target() {}\n\nfunc body() {\n\t_ = 1 " + line + "\n}\n"
		run := func() []Diagnostic {
			fset := token.NewFileSet()
			file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil
			}
			prog := &Program{Fset: fset}
			pkg := &Package{Files: []string{"fuzz.go"}, Syntax: []*ast.File{file}}
			return collectDirectives(prog, pkg).hygiene
		}
		d1, d2 := run(), run()
		if !reflect.DeepEqual(d1, d2) {
			t.Fatalf("hygiene findings not deterministic for %q:\n%v\nvs\n%v", comment, d1, d2)
		}
		for _, dg := range d1 {
			if dg.Check != "directive" {
				t.Fatalf("hygiene finding with check %q (want directive): %s", dg.Check, dg)
			}
		}
	})
}
