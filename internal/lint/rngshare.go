package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkRNGShare flags RNG streams shared across goroutine boundaries in
// the deterministic packages. A *rand.Rand is a mutable cursor: two
// goroutines drawing from one stream produce draw sequences that depend on
// scheduling, which breaks fixed-seed bit-identity on exactly the runs
// where -race stays silent (draws that interleave without a data-race
// window, or paths the race tier never executes). The sanctioned pattern
// is the one the repo already uses everywhere: derive independent child
// seeds up front (rngutil.Seeder) and hand each goroutine its own stream.
//
// Three sharing shapes are reported, per enclosing function:
//
//   - the same stream captured by two or more `go` statements;
//   - a `go` statement inside a loop capturing a stream declared outside
//     the loop (one cursor, N spawns);
//   - a stream captured by a `go` statement and also used outside any
//     goroutine in the same function (spawner and worker interleave).
//
// A stream stored into a struct that is then handed to goroutines is
// tracked one alias hop deep: `w := worker{rng: rng}; go w.run()` counts
// as the goroutine capturing rng, while the binding itself does not count
// as a spawner-side use. Dynamic flow beyond one hop is out of scope —
// the goroutine/ordered-helper discipline bounds how much can hide there.
func checkRNGShare(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, rngShareInFunc(prog, pkg, fd)...)
		}
	}
	return diags
}

// rngStream reports whether t is an RNG stream type: *rand.Rand or
// rand.Source (math/rand or math/rand/v2), or any named type from the
// module's rngutil package (Seeder and friends), possibly behind a pointer.
func rngStream(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "math/rand", "math/rand/v2":
		return named.Obj().Name() == "Rand" || named.Obj().Name() == "Source"
	case "e2clab/internal/rngutil":
		return true
	}
	return false
}

// streamKey identifies one RNG stream inside a function: a root variable
// plus the selector path reaching the stream ("" for the variable itself).
type streamKey struct {
	root types.Object
	path string
}

func (k streamKey) name() string {
	if k.path == "" {
		return k.root.Name()
	}
	return k.root.Name() + "." + k.path
}

// goSpawn is one `go` statement plus the innermost for/range enclosing it
// within the function (nil when not spawned from a loop).
type goSpawn struct {
	stmt *ast.GoStmt
	loop ast.Node
}

func rngShareInFunc(prog *Program, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	// Collect the go statements with their enclosing loops.
	var gos []goSpawn
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if gs, ok := n.(*ast.GoStmt); ok {
			var loop ast.Node
			for i := len(stack) - 1; i >= 0 && loop == nil; i-- {
				switch stack[i].(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					loop = stack[i]
				}
			}
			gos = append(gos, goSpawn{stmt: gs, loop: loop})
		}
		stack = append(stack, n)
		return true
	})
	if len(gos) == 0 {
		return nil
	}
	spawnOf := func(n ast.Node) *goSpawn {
		for i := range gos {
			g := &gos[i]
			if g.stmt.Pos() <= n.Pos() && n.End() <= g.stmt.End() {
				return g
			}
		}
		return nil
	}

	// keyOf resolves a stream-typed expression to its (root, path) key.
	keyOf := func(e ast.Expr) (streamKey, bool) {
		if !rngStream(pkg.Info.TypeOf(e)) {
			return streamKey{}, false
		}
		path := ""
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				obj := pkg.Info.Uses[x]
				if obj == nil {
					obj = pkg.Info.Defs[x]
				}
				if obj == nil {
					return streamKey{}, false
				}
				return streamKey{root: obj, path: path}, true
			case *ast.SelectorExpr:
				if path == "" {
					path = x.Sel.Name
				} else {
					path = x.Sel.Name + "." + path
				}
				e = x.X
			default:
				return streamKey{}, false
			}
		}
	}

	// Alias pass. Binding a stream into a variable's field or a composite
	// literal makes that variable carry the stream: a goroutine referencing
	// the carrier captures the stream. The binding expression itself is
	// recorded so the spawner-use rule does not count pure handoffs.
	alias := map[types.Object][]streamKey{}
	binding := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			root := rootObj(pkg, as.Lhs[i])
			if root == nil {
				continue
			}
			// Direct store: w.rng = rng (only field stores alias; `r2 := rng`
			// keeps r2 as its own reference, resolved by keyOf directly).
			if k, ok := keyOf(rhs); ok {
				if _, isSel := ast.Unparen(as.Lhs[i]).(*ast.SelectorExpr); isSel {
					alias[root] = append(alias[root], k)
					binding[rhs] = true
				}
				continue
			}
			// Literal store: w := worker{rng: rng} or &worker{rng: rng}.
			lit, ok := ast.Unparen(stripAddr(rhs)).(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, el := range lit.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if k, ok := keyOf(v); ok {
					alias[root] = append(alias[root], k)
					binding[v] = true
				}
			}
		}
		return true
	})

	// Reference pass: which go statements capture each stream, and where
	// each stream is used outside every goroutine.
	var order []streamKey
	captures := map[streamKey][]*goSpawn{}
	outside := map[streamKey]ast.Expr{}
	addCapture := func(k streamKey, g *goSpawn) {
		for _, have := range captures[k] {
			if have == g {
				return
			}
		}
		if len(captures[k]) == 0 {
			order = append(order, k)
		}
		captures[k] = append(captures[k], g)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if k, isStream := keyOf(e); isStream {
			// The defining occurrence (`rng := ...`) is not a use.
			if id, isIdent := ast.Unparen(e).(*ast.Ident); isIdent && pkg.Info.Defs[id] != nil {
				return false
			}
			// w.rng reaches the stream bound into carrier w, so credit
			// both the field key and the underlying streams.
			keys := append([]streamKey{k}, alias[k.root]...)
			if g := spawnOf(e); g != nil {
				for _, ak := range keys {
					addCapture(ak, g)
				}
			} else if !binding[e] {
				for _, ak := range keys {
					if _, have := outside[ak]; !have {
						outside[ak] = e
					}
				}
			}
			return false // the full chain is the canonical reference
		}
		// A carrier variable referenced inside a go statement pulls in the
		// streams bound into it.
		if id, isIdent := e.(*ast.Ident); isIdent {
			if obj := pkg.Info.Uses[id]; obj != nil {
				if streams, isCarrier := alias[obj]; isCarrier {
					if g := spawnOf(e); g != nil {
						for _, k := range streams {
							addCapture(k, g)
						}
					}
				}
			}
		}
		return true
	})

	// One finding per offending position: a carrier field key and its
	// underlying stream key describe the same sharing, so the first
	// (declaration-ordered) key reports it.
	var diags []Diagnostic
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			diags = append(diags, diag(prog, pos, "rngshare", format, args...))
		}
	}
	for _, k := range order {
		refs := captures[k]
		switch {
		// One cursor spawned N times from a loop.
		case refs[0].loop != nil && k.root.Pos() < refs[0].loop.Pos():
			report(refs[0].stmt.Pos(),
				"goroutine spawned in a loop captures RNG stream %s declared outside the loop: every spawn shares one draw cursor; derive a child stream per iteration (rngutil.Seeder)", k.name())
		// Same cursor in two or more go statements.
		case len(refs) > 1:
			first := prog.Fset.Position(refs[0].stmt.Pos())
			report(refs[1].stmt.Pos(),
				"RNG stream %s is also captured by the goroutine spawned at line %d: concurrent draws make the sequence schedule-dependent; derive independent child streams instead", k.name(), first.Line)
		// Spawner and worker share the cursor.
		default:
			if use, ok := outside[k]; ok {
				gpos := prog.Fset.Position(refs[0].stmt.Pos())
				report(use.Pos(),
					"RNG stream %s is drawn on here and also captured by the goroutine spawned at line %d: spawner and worker draws interleave nondeterministically; give the goroutine its own derived stream", k.name(), gpos.Line)
			}
		}
	}
	return diags
}

// stripAddr unwraps a leading & so `w := &worker{...}` aliases like the
// value form.
func stripAddr(e ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return e
}
