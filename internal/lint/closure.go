package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkNoAllocClosure closes the //simlint:noalloc proof over the static
// call graph. The escape-analysis cross-check (noalloc) proves that an
// annotated function's own body allocates nothing — but an allocation
// moved into an un-annotated helper vanishes from the annotated span, so
// the contract could be hollowed out one extraction at a time while the
// check stays green. This check makes that impossible: a proven function
// directly calling a module function that is neither proven itself nor
// inlined at the call site is a finding.
//
// A call site is exempt when:
//
//   - the callee is not resolvable statically (builtins, conversions,
//     closures, interface/func-value calls) — dynamic dispatch inside a
//     hot path is caught by the escape check itself when it allocates;
//   - the callee lives outside the module (stdlib math, sort, ...): the
//     kernel's stdlib surface is the allocation-free arithmetic core, and
//     anything heavier shows up as an escape in the caller;
//   - the callee carries its own //simlint:noalloc proof (any package,
//     already analyzed — Run visits packages bottom-up);
//   - the compiler inlined the call, which folds the callee's body into
//     the caller's proven span (same compile as the escape check, so the
//     two can never disagree about one build).
//
// Sanctioned cold-path calls (//go:noinline constructors and freelist
// growth) are attested per call site with //simlint:allow noallocclosure.
func checkNoAllocClosure(prog *Program, pkg *Package, dirs *directives, facts *compileFacts) []Diagnostic {
	var diags []Diagnostic
	for _, a := range dirs.noalloc {
		if a.fn.Body == nil {
			continue
		}
		caller := a.fn.Name.Name
		ast.Inspect(a.fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg, call)
			if fn == nil || !moduleFunc(prog, pkg, fn) {
				return true
			}
			if prog.proven[fn] {
				return true
			}
			lp := prog.Fset.Position(call.Lparen)
			if facts.inlinedAt(lp.Filename, lp.Line, lp.Column) {
				return true
			}
			diags = append(diags, diag(prog, call.Pos(), "noallocclosure",
				"%s is proven //simlint:noalloc but calls %s, which is neither proven nor inlined here: the zero-allocation contract does not cover the callee's body; annotate %s, let it inline, or attest the cold path with //simlint:allow noallocclosure", caller, fn.Name(), fn.Name()))
			return true
		})
	}
	return diags
}

// moduleFunc reports whether fn is declared in this module (same package,
// or any package under the module path). Fixture loads have no module
// path, so there only same-package callees count.
func moduleFunc(prog *Program, pkg *Package, fn *types.Func) bool {
	p := fn.Pkg()
	if p == nil {
		return false
	}
	if p == pkg.Types {
		return true
	}
	return prog.Module != "" &&
		(p.Path() == prog.Module || strings.HasPrefix(p.Path(), prog.Module+"/"))
}
