package lint

import (
	"go/ast"
	"go/types"
)

// globalRandExempt lists the package-level math/rand functions that do not
// draw from the shared global source: constructors for explicitly seeded
// generators.
var globalRandExempt = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// checkDeterminism applies the wallclock and globalrand checks module-wide
// and the maprange check inside deterministic packages.
func checkDeterminism(prog *Program, pkg *Package, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Syntax {
		if cfg.enabled("wallclock") || cfg.enabled("globalrand") {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if cfg.enabled("wallclock") && (fn.Name() == "Now" || fn.Name() == "Since") {
						diags = append(diags, diag(prog, call.Pos(), "wallclock",
							"time.%s reads the wall clock; outputs must be a function of inputs and seed (derive times from the simulation clock, or //simlint:allow wallclock <reason> for archival metadata)",
							fn.Name()))
					}
				case "math/rand", "math/rand/v2":
					if cfg.enabled("globalrand") && isPackageFunc(fn) && !globalRandExempt[fn.Name()] {
						diags = append(diags, diag(prog, call.Pos(), "globalrand",
							"rand.%s draws from the process-global source; draw from a seeded *rand.Rand (see rngutil) instead", fn.Name()))
					}
				}
				return true
			})
		}
		if cfg.enabled("maprange") && pkg.Deterministic {
			diags = append(diags, checkMapRange(prog, pkg, file)...)
		}
	}
	return diags
}

// calleeFunc resolves the *types.Func a call invokes, or nil for builtins,
// conversions, and indirect calls.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// isPackageFunc reports whether fn is a package-level function (not a
// method).
func isPackageFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// checkMapRange flags `range` statements over maps whose bodies feed an
// aggregate or output declared outside the loop — the spots where Go's
// randomized map iteration order leaks into results. Two order-insensitive
// idioms are recognized and allowed:
//
//   - collect-then-sort: the body only appends to an outer slice that is
//     later passed to a sort call in the same function;
//   - keyed writes: the body writes m2[k] for the loop key k, which lands
//     each key exactly once regardless of visit order.
func checkMapRange(prog *Program, pkg *Package, file *ast.File) []Diagnostic {
	var diags []Diagnostic
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, isMap := pkg.Info.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := orderSensitiveEffect(pkg, fd, rs); reason != "" {
				diags = append(diags, diag(prog, rs.Pos(), "maprange",
					"map iteration order is randomized, and this loop %s; iterate sorted keys, or //simlint:allow maprange <reason> if order provably cannot reach an output", reason))
			}
			return true
		})
	}
	return diags
}

// orderSensitiveEffect scans the range body for a write that makes the
// loop's outcome depend on iteration order. It returns a description of the
// first such effect, or "" when the body looks order-insensitive.
func orderSensitiveEffect(pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) string {
	keyObj := declaredObj(pkg, rs.Key)
	reason := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				obj := rootObj(pkg, lhs)
				if obj == nil || declaredWithin(obj, rs) {
					continue
				}
				if isKeyedMapWrite(pkg, lhs, keyObj) {
					continue
				}
				if i < len(st.Rhs) && isSortedAppend(pkg, lhs, st.Rhs[i], fd, rs) {
					continue
				}
				reason = "assigns to " + obj.Name() + ", declared outside it"
				return false
			}
		case *ast.IncDecStmt:
			if obj := rootObj(pkg, st.X); obj != nil && !declaredWithin(obj, rs) &&
				!isKeyedMapWrite(pkg, st.X, keyObj) {
				reason = "updates " + obj.Name() + ", declared outside it"
				return false
			}
		case *ast.SendStmt:
			reason = "sends on a channel"
			return false
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && !isOrderFreeCall(pkg, call) {
				reason = "calls a function for its side effects"
				return false
			}
		}
		return true
	})
	return reason
}

// declaredObj returns the object an ident expression defines, or nil.
func declaredObj(pkg *Package, e ast.Expr) types.Object {
	if id, ok := e.(*ast.Ident); ok {
		return pkg.Info.Defs[id]
	}
	return nil
}

// rootObj unwraps an assignable expression (x, x.f, x[i], *x, ...) down to
// the variable at its root.
func rootObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			if obj := pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside the range
// statement (loop variables and body-local temporaries).
func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return rs.Pos() <= obj.Pos() && obj.Pos() <= rs.End()
}

// isKeyedMapWrite recognizes m2[k] = v / m2[k]++ for the loop key k: every
// key is written exactly once, so visit order cannot matter.
func isKeyedMapWrite(pkg *Package, lhs ast.Expr, keyObj types.Object) bool {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok || keyObj == nil {
		return false
	}
	if _, isMap := pkg.Info.TypeOf(ix.X).Underlying().(*types.Map); !isMap {
		return false
	}
	id, ok := ast.Unparen(ix.Index).(*ast.Ident)
	return ok && pkg.Info.Uses[id] == keyObj
}

// isSortedAppend recognizes the collect-then-sort idiom: lhs = append(lhs,
// ...) inside the loop with a sort call over lhs later in the same
// function.
func isSortedAppend(pkg *Package, lhs ast.Expr, rhs ast.Expr, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	target := rootObj(pkg, lhs)
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || target == nil {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if b, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "append" {
		return false
	}
	if rootObj(pkg, call.Args[0]) != target {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted || n == nil || n.End() <= rs.End() {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if rootObj(pkg, arg) == target {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// isOrderFreeCall reports whether a bare call statement cannot leak
// iteration order: the delete/panic builtins and nothing else.
func isOrderFreeCall(pkg *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	return id.Name == "delete" || id.Name == "panic"
}
