package lint

import "go/ast"

// checkStaleSuppress reports directives that no longer suppress or prove
// anything. Every surviving //simlint: directive is a standing claim about
// the code next to it; when the code changes and the claim goes dead, the
// directive becomes misdirection — it reads as "there is a finding here
// being consciously accepted" when there is nothing. Keeping the
// suppression inventory honest means it can only shrink: a dead directive
// is itself a finding, and (like directive hygiene) it can never be
// suppressed — the remedy is deleting it.
//
// Staleness is judged only against checks that actually ran for this
// package under this configuration (Config.ran): an //simlint:allow
// maprange in a non-deterministic package, or any allow during a -checks
// subset run that excludes its check, is not reported — the directive may
// well be load-bearing under the full configuration.
func checkStaleSuppress(prog *Program, pkg *Package, dirs *directives, cfg *Config) []Diagnostic {
	var diags []Diagnostic

	// Allow directives that matched no finding.
	for _, byLine := range dirs.allow {
		for _, list := range byLine {
			for _, a := range list {
				if a.used || !cfg.ran(a.check, pkg) {
					continue
				}
				diags = append(diags, diag(prog, a.pos, "stalesuppress",
					"//simlint:allow %s suppresses nothing on this line or the line below; delete it (a suppression that outlives its finding reads as an accepted violation that does not exist)", a.check))
			}
		}
	}

	// Ordered annotations on functions that spawn nothing.
	if cfg.ran("goroutine", pkg) {
		for _, o := range dirs.orderedList {
			if o.fn.Body == nil || spawnsGoroutine(o.fn.Body) {
				continue
			}
			diags = append(diags, diag(prog, o.pos, "stalesuppress",
				"//simlint:ordered on %s, which spawns no goroutine: the ordered-aggregation attestation proves nothing here; delete it", o.fn.Name.Name))
		}
	}

	// Dead noalloc annotations: bodyless functions prove nothing (the
	// escape check compiles bodies), and duplicates restate an existing
	// proof.
	if cfg.enabled("noalloc") {
		seen := map[*ast.FuncDecl]bool{}
		for _, a := range dirs.noalloc {
			switch {
			case a.fn.Body == nil:
				diags = append(diags, diag(prog, a.pos, "stalesuppress",
					"//simlint:noalloc on bodyless declaration %s: escape analysis has no body to prove; annotate the implementation instead", a.fn.Name.Name))
			case seen[a.fn]:
				diags = append(diags, diag(prog, a.pos, "stalesuppress",
					"duplicate //simlint:noalloc on %s: one annotation per function carries the proof; delete the extras", a.fn.Name.Name))
			default:
				seen[a.fn] = true
			}
		}
	}
	return diags
}

// spawnsGoroutine reports whether body contains a go statement.
func spawnsGoroutine(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}
