// Package globalrand exercises the global-source check: package-level
// math/rand draws consume shared, unseedable state.
package globalrand

import "math/rand"

// Draw consumes the process-global source.
func Draw() int {
	return rand.Int() // want "globalrand: rand.Int draws from the process-global source"
}

// Mix shuffles through the global source.
func Mix(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "globalrand: rand.Shuffle draws"
}

// Seeded builds an explicit generator; the constructors are exempt, and
// draws on the instance are method calls, not package-level functions.
func Seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
