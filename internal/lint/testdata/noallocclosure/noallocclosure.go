// Package noallocclosure exercises the call-graph closure of the noalloc
// proof: a proven function calling an un-proven, non-inlined module
// function punches a hole in the zero-allocation contract. The package
// imports nothing so the fixture compiles with a minimal importcfg.
package noallocclosure

// box is what the cold paths allocate.
type box struct{ v int }

// small is tiny and inlines into every caller, so a proven caller's own
// escape span covers it.
func small(x int) int { return x + 1 }

// coldBuild is the hole: un-proven, and kept out of line so its
// allocation is never folded into the caller.
//
//go:noinline
func coldBuild(x int) *box { return &box{v: x} }

// provenHelper carries its own contract; forced out of line so the call
// below exercises the proven-callee branch rather than inlining.
//
//simlint:noalloc pure arithmetic
//go:noinline
func provenHelper(x int) int { return x * 2 }

// attestedBuild is a sanctioned freelist-growth-style cold path: callers
// attest each call site.
//
//go:noinline
func attestedBuild(x int) *box { return &box{v: x} }

// Hot is proven; its four calls split across the four cases.
//
//simlint:noalloc steady-state fixture hot path
func Hot(x int, sink *box) int {
	x = small(x)           // inlined: covered by this function's own escape span
	b := coldBuild(x)      // want "noallocclosure: Hot is proven //simlint:noalloc but calls coldBuild"
	x = provenHelper(x)    // proven callee: the contracts compose
	b2 := attestedBuild(x) //simlint:allow noallocclosure fixture: sanctioned cold-path constructor
	sink.v = b.v + b2.v
	return x
}
