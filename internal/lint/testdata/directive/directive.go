// Package directive exercises hygiene of the simlint comments themselves:
// unknown verbs and checks, missing reasons, and misplaced annotations.
// Hygiene findings are never suppressible.
package directive

// Unknown carries a verb outside the directive vocabulary.
//
//simlint:frobnicate no such verb
func Unknown() {} // want -1 "directive: unknown directive"

// Bare blesses its goroutine but forgot to say why that is sound.
//
//simlint:ordered
func Bare() { // want -1 "directive: //simlint:ordered on Bare needs a reason"
	ch := make(chan struct{})
	go func() { close(ch) }()
	<-ch
}

// DocAllow parks a line suppression in a doc comment, where it covers
// nothing useful.
//
//simlint:allow wallclock misplaced into the doc block
func DocAllow() {} // want -1 "directive: //simlint:allow belongs on"

// Misplaced collects the free-standing failure modes.
func Misplaced() {
	//simlint:noalloc function annotations go on declarations // want "directive: //simlint:noalloc must sit in the doc comment"
	_ = 0
	//simlint:allow nosuchcheck made-up check name // want "directive: //simlint:allow names unknown check"
	_ = 1
	//simlint:allow wallclock
	_ = 2 // want -1 "directive: //simlint:allow wallclock needs a written reason"
	//simlint:alow wallclock typo in the verb // want "directive: unknown directive //simlint:alow"
	_ = 3
}
