// Package noalloc exercises the escape-analysis cross-check: a
// //simlint:noalloc annotation on a function that genuinely allocates must
// fail, pure arithmetic must pass, and constant-string panics (static
// data, not runtime allocation) must be filtered out. The package imports
// nothing so the fixture compiles with an empty importcfg.
package noalloc

// Box is a heap cell for Leaky to lose.
type Box struct{ N int }

// Sink keeps the compiler honest about Leaky's escape.
var Sink *Box

// Leaky claims a zero-allocation contract it does not honor: the box
// escapes through the package-level sink.
//
//simlint:noalloc claimed steady-state path (deliberately wrong)
func Leaky(n int) {
	b := &Box{N: n} // want "noalloc: Leaky is annotated .*escapes to heap"
	Sink = b
}

// Sum is genuinely allocation-free.
//
//simlint:noalloc pure arithmetic over the input slice
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Check panics with a constant string; the "escapes to heap" the compiler
// reports for it points at static data and must not fail the contract.
//
//simlint:noalloc constant-string panics are static data
func Check(ok bool) {
	if !ok {
		panic("noalloc fixture: not ok")
	}
}
