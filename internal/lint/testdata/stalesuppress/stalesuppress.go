// Package stalesuppress exercises dead-directive detection: every
// surviving //simlint: directive must still suppress or prove something,
// so the suppression inventory can only shrink honestly.
package stalesuppress

import "time"

// LiveAllow suppresses a real wallclock finding: the negative case.
func LiveAllow() int64 {
	return time.Now().UnixNano() //simlint:allow wallclock fixture: live suppression of a real finding
}

// DeadAllow suppresses nothing: the line it guards stopped using the wall
// clock and the directive outlived its finding.
func DeadAllow(x int64) int64 {
	//simlint:allow wallclock fixture: the draw below was rewritten long ago
	// want -1 "stalesuppress: //simlint:allow wallclock suppresses nothing on this line or the line below"
	return x + 1
}

// NotRun holds an allow for a check that never ran here: kernelsync is
// scoped to kernel packages, so the directive is not reported as stale.
func NotRun(ch chan int) {
	ch <- 1 //simlint:allow kernelsync fixture: live only under the kernel configuration
}

// Spawning is a live ordered attestation: the negative case.
//
//simlint:ordered fixture: single goroutine joined before return
func Spawning(done chan int) int {
	go func() { done <- 1 }()
	return <-done
}

// Calm spawns nothing; its ordered attestation proves nothing.
//
// want 2 "stalesuppress: //simlint:ordered on Calm, which spawns no goroutine"
//
//simlint:ordered fixture: claims ordered aggregation with no goroutines
func Calm(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// Twice restates an existing proof: the duplicate is dead weight.
//
// want 3 "stalesuppress: duplicate //simlint:noalloc on Twice"
//
//simlint:noalloc pure arithmetic
//simlint:noalloc restated — the duplicate proves nothing new
func Twice(x int) int { return x * x }

// Elsewhere has no body for escape analysis to prove.
//
// want 2 "stalesuppress: //simlint:noalloc on bodyless declaration Elsewhere"
//
//simlint:noalloc no body to prove
func Elsewhere(x int) int
