// Package kernelsync exercises the kernel-package synchronization ban:
// the event kernel is single-threaded under virtual time, so runtime
// synchronization there either does nothing or couples event order to the
// Go scheduler.
package kernelsync

import (
	"sync"
	"sync/atomic"
	"time"
)

// event guards kernel state with a mutex — the exact pattern the check
// exists to reject.
type event struct {
	mu    sync.Mutex // want "kernelsync: sync.Mutex in a kernel package"
	count int64
}

func bump(e *event) {
	atomic.AddInt64(&e.count, 1) // want "kernelsync: sync/atomic.AddInt64 in a kernel package"
}

func wait() {
	time.Sleep(time.Millisecond) // want "kernelsync: time.Sleep blocks on the wall clock"
}

func signal(done chan struct{}) { // want "kernelsync: channel type in a kernel package"
	done <- struct{}{} // want "kernelsync: channel send in a kernel package"
	close(done)        // want "kernelsync: close on a channel in a kernel package"
}

func drain(ch chan int) int { // want "kernelsync: channel type in a kernel package"
	total := 0
	for v := range ch { // want "kernelsync: range over a channel in a kernel package"
		total += v
	}
	return total
}

func pick(a, b chan int) int { // want "kernelsync: channel type in a kernel package"
	select { // want "kernelsync: select in a kernel package"
	case v := <-a: // want "kernelsync: channel receive in a kernel package"
		return v
	case v := <-b: // want "kernelsync: channel receive in a kernel package"
		return v
	}
}

// advance is pure virtual-time arithmetic: the negative case.
func advance(now, dt float64) float64 { return now + dt }

// attested keeps one documented exception alive through the directive
// escape hatch.
func attested(done chan struct{}) { // want "kernelsync: channel type in a kernel package"
	<-done //simlint:allow kernelsync fixture: attested one-shot completion barrier outside the event loop
}
