// Package rngshare exercises the shared-RNG-stream check: one mutable
// draw cursor reached from more than one goroutine is schedule-dependent
// nondeterminism, even when -race sees no overlapping access.
package rngshare

import (
	"math/rand"

	"e2clab/internal/rngutil"
)

// TwoGoroutines share one stream: the draw order depends on scheduling.
//
//simlint:ordered fixture: results joined through a sized channel
func TwoGoroutines(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	done := make(chan int64, 2)
	go func() { done <- rng.Int63() }()
	go func() { done <- rng.Int63() }() // want "rngshare: RNG stream rng is also captured by the goroutine spawned at line"
	<-done
	<-done
}

// LoopSpawn captures one stream in a loop-spawned closure: every spawn
// shares the cursor.
//
//simlint:ordered fixture: index-ordered writes into out
func LoopSpawn(seed int64, out []float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range out {
		i := i
		go func() { out[i] = rng.Float64() }() // want "rngshare: goroutine spawned in a loop captures RNG stream rng declared outside the loop"
	}
}

// SpawnerDraws hands the stream to a goroutine and keeps drawing on it.
//
//simlint:ordered fixture: worker joined before return
func SpawnerDraws(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	ch := make(chan float64)
	go func() { ch <- rng.Float64() }()
	x := rng.Float64() // want "rngshare: RNG stream rng is drawn on here and also captured by the goroutine spawned at line"
	return x + <-ch
}

// carrier smuggles a stream into a goroutine through a struct field.
type carrier struct {
	rng *rand.Rand
}

// Carried is the one-alias-hop case: the spawner draws on rng while a
// goroutine reaches the same cursor through w.rng.
//
//simlint:ordered fixture: worker joined before return
func Carried(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	w := carrier{rng: rng}
	ch := make(chan float64)
	go func() { ch <- w.rng.Float64() }()
	x := rng.Float64() // want "rngshare: RNG stream rng is drawn on here and also captured by the goroutine spawned at line"
	return x + <-ch
}

// SeederShared shares a module Seeder across goroutines: deriving child
// seeds concurrently is as order-dependent as drawing from one Rand.
//
//simlint:ordered fixture: results joined through a sized channel
func SeederShared(seed int64) {
	s := rngutil.NewSeeder(seed)
	done := make(chan int64, 2)
	go func() { done <- s.Next() }()
	go func() { done <- s.Next() }() // want "rngshare: RNG stream s is also captured by the goroutine spawned at line"
	<-done
	<-done
}

// DerivedStreams is the sanctioned pattern: each goroutine gets its own
// child stream, derived up front by the spawner.
//
//simlint:ordered fixture: index-ordered writes into out
func DerivedStreams(seed int64, out []float64) {
	s := rngutil.NewSeeder(seed)
	for i := range out {
		i := i
		rng := rand.New(rand.NewSource(s.Next()))
		go func() { out[i] = rng.Float64() }()
	}
}

// SingleHandoff passes the stream to exactly one goroutine and never
// touches it again: ownership transfer, not sharing.
//
//simlint:ordered fixture: worker joined before return
func SingleHandoff(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	done := make(chan struct{})
	go worker(rng, done)
	<-done
}

func worker(rng *rand.Rand, done chan struct{}) {
	_ = rng.Int63()
	close(done)
}
