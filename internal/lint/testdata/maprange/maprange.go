// Package maprange exercises the map-iteration-order check (deterministic
// packages only): loops whose bodies feed outer state are flagged, while
// the two order-insensitive idioms — collect-then-sort and keyed writes —
// pass untouched.
package maprange

import "sort"

// Sum folds map values into an accumulator declared outside the loop:
// float addition is not associative, so visit order leaks into the result.
func Sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "maprange: .*assigns to total, declared outside it"
		total += v
	}
	return total
}

// Count bumps an outer counter with IncDec.
func Count(m map[string]int) (n int) {
	for range m { // want "maprange: .*updates n, declared outside it"
		n++
	}
	return n
}

// Emit hands each key to a side-effecting callback in visit order.
func Emit(m map[string]int, emit func(string)) {
	for k := range m { // want "maprange: .*calls a function for its side effects"
		emit(k)
	}
}

// SortedKeys is the collect-then-sort idiom: the only outer write is an
// append later canonicalized by a sort call, so order cannot escape.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clone writes out[k] for the loop key k: each key lands exactly once
// regardless of visit order.
func Clone(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Drain closes every channel; close order is observable in principle, so
// the check fires and the author attests it cannot reach an output.
func Drain(m map[string]chan int) {
	//simlint:allow maprange close order is not observable by any consumer; each channel has one independent reader
	for _, c := range m {
		close(c)
	}
}
