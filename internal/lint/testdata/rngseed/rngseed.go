// Package rngseed exercises seed discipline: generator seeds must trace to
// a parameter, field, or derivation — never a literal or the wall clock.
package rngseed

import (
	"math/rand"
	"time"
)

// Fixed hard-codes the seed, silently correlating every caller's stream.
func Fixed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "rngseed: hard-coded seed 42"
}

// Clock seeds from the wall clock, which also trips the wallclock check on
// the same line.
func Clock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "rngseed: wall-clock-derived seed" "wallclock: time.Now reads the wall clock"
}

// Derived threads a caller-supplied seed: the sanctioned pattern.
func Derived(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Fallback is the blessed nil-rng default, suppressed with a reason as the
// repository's own constructors do.
func Fallback(rng *rand.Rand) *rand.Rand {
	if rng == nil {
		//simlint:allow rngseed deterministic fallback when the caller passes no stream
		rng = rand.New(rand.NewSource(1))
	}
	return rng
}
