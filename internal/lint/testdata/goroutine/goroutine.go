// Package goroutine exercises the goroutine-spawn check (deterministic
// packages only): bare go statements are flagged unless the enclosing
// helper is blessed with //simlint:ordered.
package goroutine

// Fan spawns workers without any determinism attestation.
func Fan(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		go fn(i) // want "goroutine: goroutine spawned outside"
	}
}

// Ordered fans out with index-ordered writes: each worker owns out[i] and
// the join is a count, so the parallel result is bit-identical to the
// sequential one.
//
//simlint:ordered each worker writes only its own out slot; the join counts completions
func Ordered(n int, fn func(int) int) []int {
	out := make([]int, n)
	done := make(chan struct{}, n)
	for i := range out {
		go func(i int) {
			out[i] = fn(i)
			done <- struct{}{}
		}(i)
	}
	for range out {
		<-done
	}
	return out
}

// Suppressed shows the line-level escape hatch for a one-off spawn.
func Suppressed(stop chan struct{}) {
	//simlint:allow goroutine fixture demonstrates line-level suppression
	go func() { <-stop }()
}
