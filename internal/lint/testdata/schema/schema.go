// Package schema exercises the checkpoint-layout cross-check. The package
// mirrors the scenario contract — a Result struct, a checkpointLayout /
// checkpointOmitted declaration pair, encode/decode, and render tables —
// with one deliberate drift per rule.
package schema

// Summary stands in for stats.Summary: a nested numeric struct.
type Summary struct {
	N    int
	Mean float64
}

// Result is the checkpointed aggregate.
type Result struct {
	Index      int
	Name       string
	Labels     []string
	EngineResp Summary
	RespMean   float64
	Throughput float64
	Uncovered  float64
	Scratch    float64
	Forgotten  float64
}

type checkpointField struct {
	Name string
	get  func(r *Result) float64
	set  func(r *Result, v float64)
}

type checkpointOmission struct {
	Field  string
	Reason string
}

var checkpointLayout = []checkpointField{ // want "schema: numeric Result field Forgotten is in neither checkpointLayout nor checkpointOmitted" "schema: non-numeric Result field Labels must be declared in checkpointOmitted"
	{"EngineResp.N",
		func(r *Result) float64 { return float64(r.EngineResp.N) },
		func(r *Result, v float64) { r.EngineResp.N = int(v) }},
	{"EngineResp.Mean", // want "schema: checkpointLayout entry .EngineResp.Mean. reads r.RespMean in its get accessor"
		func(r *Result) float64 { return r.RespMean },
		func(r *Result, v float64) { r.EngineResp.Mean = v }},
	{"RespMean", // want "schema: checkpointLayout entry .RespMean. writes r.Throughput in its set accessor"
		func(r *Result) float64 { return r.RespMean },
		func(r *Result, v float64) { r.Throughput = v }},
	{"Throughput",
		func(r *Result) float64 { return r.Throughput },
		func(r *Result, v float64) { r.Throughput = v }},
	{"Throughput", // want "schema: duplicate checkpointLayout entry .Throughput."
		func(r *Result) float64 { return r.Throughput },
		func(r *Result, v float64) { r.Throughput = v }},
	{"Bogus", // want "schema: checkpointLayout entry .Bogus. does not name a numeric Result field"
		func(r *Result) float64 { return r.RespMean },
		func(r *Result, v float64) { r.RespMean = v }},
	{"RespMean", getRespMean, setRespMean}, // want "schema: checkpointLayout entry is not statically checkable"
	{"Uncovered", // want "schema: layout field Uncovered is rendered by neither ComparisonTable nor DetailTable"
		func(r *Result) float64 { return r.Uncovered },
		func(r *Result, v float64) { r.Uncovered = v }},
}

func getRespMean(r *Result) float64    { return r.RespMean }
func setRespMean(r *Result, v float64) { r.RespMean = v }

var checkpointOmitted = []checkpointOmission{
	{"Index", "assigned by the runner from the trial slot at decode"},
	{"Name", "non-numeric; restored from the spec at decode"},
	{"Ghost", "names a field that no longer exists"}, // want "schema: checkpointOmitted names .Ghost., which is not a Result field"
	{"Throughput", "already carried"},                // want "schema: .Throughput. is declared omitted but has a checkpointLayout slot"
	{"Scratch", ""},                                  // want "schema: checkpointOmitted entry .Scratch. needs a reason"
}

// encodeResult drifts from the layout: a parallel hand-maintained list.
func encodeResult(r *Result) []float64 { // want "schema: encodeResult does not consume checkpointLayout"
	return []float64{float64(r.Index), r.RespMean}
}

// decodeResult consumes the layout — the negative case.
func decodeResult(vals []float64) (*Result, bool) {
	if len(vals) != len(checkpointLayout) {
		return nil, false
	}
	r := &Result{}
	for i, v := range vals {
		checkpointLayout[i].set(r, v)
	}
	return r, true
}

// DetailTable renders everything except Uncovered.
func DetailTable(r *Result) []float64 {
	return []float64{
		float64(r.EngineResp.N),
		r.EngineResp.Mean,
		r.RespMean,
		r.Throughput,
	}
}
