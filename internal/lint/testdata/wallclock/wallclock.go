// Package wallclock exercises the wall-clock check: time.Now and
// time.Since are forbidden module-wide unless explicitly allowed.
package wallclock

import "time"

// Stamp reads the wall clock directly.
func Stamp() string {
	return time.Now().String() // want "wallclock: time.Now reads the wall clock"
}

// Elapsed measures real elapsed time.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wallclock: time.Since reads the wall clock"
}

// Archival shows the sanctioned escape hatch: an allow directive with a
// written reason, directly above the offending line.
func Archival() string {
	//simlint:allow wallclock archival run metadata, never part of simulated outputs
	return time.Now().String()
}

// Inline shows the same suppression at the end of the offending line.
func Inline() string {
	return time.Now().String() //simlint:allow wallclock archival run metadata again
}
