package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is one type-checked module package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []string // absolute paths of non-test Go files
	Syntax     []*ast.File
	Types      *types.Package
	Info       *types.Info
	Imports    []string
	// Deterministic marks membership in the deterministic-package set
	// (set by Run from the Config; fixture loaders set it directly).
	Deterministic bool
	// Kernel marks membership in the kernel-package set subject to the
	// kernelsync check (set by Run from the Config; fixture loaders set it
	// directly).
	Kernel bool
}

// Program is a loaded module: every module package type-checked in
// dependency order, plus the export-data locations of the full transitive
// closure (used both by the type-checking importer and by the noalloc
// escape-analysis compile).
type Program struct {
	Dir      string // module root (absolute)
	Module   string // module path ("" for fixture loads)
	Fset     *token.FileSet
	Packages []*Package        // module packages, dependency order
	Export   map[string]string // import path -> export data file

	// proven accumulates the //simlint:noalloc-annotated functions of every
	// analyzed package (keyed by their types.Object), in dependency order,
	// so the noallocclosure check can recognize cross-package proven callees.
	proven map[types.Object]bool
}

// registerProven records pkg's //simlint:noalloc functions in the
// module-wide proven set. Run analyzes packages bottom-up, so by the time a
// caller is checked every callee it can reach is already registered.
func (p *Program) registerProven(pkg *Package, dirs *directives) {
	if p.proven == nil {
		p.proven = map[types.Object]bool{}
	}
	for _, a := range dirs.noalloc {
		if obj := pkg.Info.Defs[a.fn.Name]; obj != nil {
			p.proven[obj] = true
		}
	}
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Export     string
	Module     *struct{ Path string }
	Incomplete bool
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// Load discovers, parses, and type-checks every package of the module at
// dir. Discovery runs `go list -deps -export -json ./...`: the -export flag
// makes the go tool compile (or reuse from the build cache) export data for
// the whole dependency closure, which satisfies standard-library imports
// without ever type-checking them from source. Module packages are then
// checked bottom-up from source with an importer that consults the
// already-checked package map first.
func Load(dir string) (*Program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := goList(abs, "-deps", "-export", "-json", "./...")
	if err != nil {
		return nil, err
	}
	prog := &Program{Dir: abs, Fset: token.NewFileSet(), Export: map[string]string{}}
	var module []*listPackage
	for _, lp := range pkgs {
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			prog.Export[lp.ImportPath] = lp.Export
		}
		if !lp.Standard && lp.Module != nil {
			prog.Module = lp.Module.Path
			module = append(module, lp)
		}
	}
	if len(module) == 0 {
		return nil, fmt.Errorf("lint: no module packages found under %s", abs)
	}
	ordered, err := topoOrder(module)
	if err != nil {
		return nil, err
	}

	checked := map[string]*types.Package{}
	imp := &chainImporter{
		checked:  checked,
		fallback: exportImporter(prog.Fset, prog.Export),
	}
	for _, lp := range ordered {
		pkg, err := typeCheck(prog, lp, imp)
		if err != nil {
			return nil, err
		}
		checked[pkg.ImportPath] = pkg.Types
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// goList runs `go list` in dir and decodes its JSON object stream.
func goList(dir string, args ...string) ([]*listPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", args, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPackage
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// topoOrder sorts module packages so every package follows its in-module
// imports.
func topoOrder(pkgs []*listPackage) ([]*listPackage, error) {
	byPath := make(map[string]*listPackage, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	var (
		out     []*listPackage
		state   = map[string]int{} // 0 unvisited, 1 visiting, 2 done
		visit   func(p *listPackage) error
		visited = 0
	)
	visit = func(p *listPackage) error {
		switch state[p.ImportPath] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", p.ImportPath)
		case 2:
			return nil
		}
		state[p.ImportPath] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = 2
		visited++
		out = append(out, p)
		return nil
	}
	// Deterministic traversal order regardless of go list output order.
	sorted := append([]*listPackage(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, p := range sorted {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// typeCheck parses and checks one module package from source.
func typeCheck(prog *Program, lp *listPackage, imp types.Importer) (*Package, error) {
	pkg := &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Imports:    lp.Imports,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(prog.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		pkg.Files = append(pkg.Files, path)
		pkg.Syntax = append(pkg.Syntax, f)
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, prog.Fset, pkg.Syntax, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// chainImporter satisfies imports from the already-checked module package
// map first, falling back to compiler export data for everything else
// (in practice: the standard library, as the module has no external deps).
type chainImporter struct {
	checked  map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := c.checked[path]; ok {
		return p, nil
	}
	return c.fallback.Import(path)
}

// exportImporter builds a gc-export-data importer whose file lookup is the
// export map produced by `go list -export`.
func exportImporter(fset *token.FileSet, export map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := export[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// LoadExports resolves export-data files for the given import paths (and
// their transitive dependencies) by shelling out to `go list`. Fixture
// tests use it to type-check standalone testdata packages against the real
// standard library.
func LoadExports(dir string, paths ...string) (map[string]string, error) {
	pkgs, err := goList(dir, append([]string{"-deps", "-export", "-json"}, paths...)...)
	if err != nil {
		return nil, err
	}
	export := map[string]string{}
	for _, lp := range pkgs {
		if lp.Export != "" {
			export[lp.ImportPath] = lp.Export
		}
	}
	return export, nil
}

// LoadDir parses and type-checks a single directory as one package outside
// any module — the fixture path. export supplies the dependency export data
// (see LoadExports); det marks the package deterministic.
func LoadDir(fset *token.FileSet, dir string, export map[string]string, det bool) (*Program, *Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	prog := &Program{Dir: abs, Fset: fset, Export: export}
	pkg := &Package{Dir: abs, Deterministic: det, Info: &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(abs, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		pkg.Files = append(pkg.Files, path)
		pkg.Syntax = append(pkg.Syntax, f)
	}
	if len(pkg.Syntax) == 0 {
		return nil, nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg.ImportPath = "fixture/" + pkg.Syntax[0].Name.Name
	conf := types.Config{
		Importer: &chainImporter{fallback: exportImporter(fset, export)},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkg.ImportPath, fset, pkg.Syntax, pkg.Info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking fixture %s: %v", dir, err)
	}
	pkg.Types = tpkg
	return prog, pkg, nil
}
