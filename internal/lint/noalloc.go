package lint

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// noallocSpan is the body extent of one //simlint:noalloc function.
type noallocSpan struct {
	path      string // absolute file path
	name      string
	startLine int
	endLine   int
}

// checkNoAlloc cross-checks every //simlint:noalloc function against the
// compiler's escape analysis. The package is compiled once with `go tool
// compile -m` (export data for its dependencies comes from the loader's
// `go list -export` run, so no build-cache trickery is needed and the
// diagnostics can never be silently swallowed by a cached build); any
// "escapes to heap" or "moved to heap" finding whose position falls inside
// an annotated function's body is a violation.
//
// Two classes of compiler output are deliberately ignored:
//
//   - pure string-constant escapes ("..." escapes to heap): a constant
//     interface conversion, e.g. panic("message"), points at static data
//     and performs no runtime allocation;
//   - diagnostics outside annotated spans: cold paths (freelist growth,
//     constructors) are expected to allocate and must live in separate,
//     un-annotated functions — with //go:noinline where the compiler would
//     otherwise fold them into an annotated caller and re-attribute the
//     allocation to the call site.
//
// The returned compileFacts carry the inlining decisions of the same
// compile for the noallocclosure check, so both checks see one consistent
// compiler run.
func checkNoAlloc(prog *Program, pkg *Package, dirs *directives) ([]Diagnostic, *compileFacts, error) {
	if len(dirs.noalloc) == 0 {
		return nil, nil, nil
	}
	var spans []noallocSpan
	for _, a := range dirs.noalloc {
		if a.fn.Body == nil {
			// Nothing to prove; stalesuppress reports the dead annotation.
			continue
		}
		start := prog.Fset.Position(a.fn.Pos())
		end := prog.Fset.Position(a.fn.Body.End())
		spans = append(spans, noallocSpan{
			path:      a.path,
			name:      a.fn.Name.Name,
			startLine: start.Line,
			endLine:   end.Line,
		})
	}
	escapes, facts, err := escapeAnalysis(pkg.ImportPath, pkg.Dir, pkg.Files, prog.Export)
	if err != nil {
		return nil, nil, err
	}
	var diags []Diagnostic
	for _, esc := range escapes {
		for _, sp := range spans {
			if esc.path == sp.path && sp.startLine <= esc.line && esc.line <= sp.endLine {
				diags = append(diags, Diagnostic{
					File:    relFile(prog, esc.path),
					Line:    esc.line,
					Col:     esc.col,
					Check:   "noalloc",
					Message: fmt.Sprintf("%s is annotated //simlint:noalloc but the compiler reports %q; hoist the allocation into a //go:noinline cold-path helper or drop the annotation", sp.name, esc.msg),
				})
				break
			}
		}
	}
	return diags, facts, nil
}

// escapeDiag is one parsed compiler escape finding.
type escapeDiag struct {
	path string
	line int
	col  int
	msg  string
}

// compileFacts are the non-escape observations of the `go tool compile -m`
// run: the call sites the compiler inlined, keyed "path:line:col". A call
// that is inlined has no frame of its own — its allocations (if any) are
// attributed to the caller and therefore already covered by the caller's
// noalloc span, which is why the noallocclosure check treats inlined call
// sites as proven.
type compileFacts struct {
	inlined map[string]bool
}

func (f *compileFacts) inlinedAt(path string, line, col int) bool {
	return f != nil && f.inlined[fmt.Sprintf("%s:%d:%d", path, line, col)]
}

var (
	posLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)
	// A message consisting solely of a quoted string constant escaping is
	// static data, not a runtime allocation.
	constString = regexp.MustCompile(`^"(?:[^"\\]|\\.)*" escapes to heap$`)
)

// escapeAnalysis compiles the given files as one package with -m and
// returns the heap-allocation diagnostics plus the inlining facts. export
// maps every dependency import path to its export-data file (a superset is
// fine).
func escapeAnalysis(importPath, dir string, files []string, export map[string]string) ([]escapeDiag, *compileFacts, error) {
	tmp, err := os.MkdirTemp("", "simlint-noalloc-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(tmp)

	var cfg bytes.Buffer
	paths := make([]string, 0, len(export))
	for p := range export {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(&cfg, "packagefile %s=%s\n", p, export[p])
	}
	importcfg := filepath.Join(tmp, "importcfg")
	if err := os.WriteFile(importcfg, cfg.Bytes(), 0o644); err != nil {
		return nil, nil, err
	}

	args := []string{"tool", "compile",
		"-p", importPath,
		"-importcfg", importcfg,
		"-o", filepath.Join(tmp, "out.o"),
		"-m",
	}
	args = append(args, files...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// The compiler writes -m diagnostics to stdout and errors to stderr.
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go tool compile -m %s: %v\n%s", importPath, err, stderr.String())
	}

	var out []escapeDiag
	facts := &compileFacts{inlined: map[string]bool{}}
	seen := map[escapeDiag]bool{}
	for _, line := range strings.Split(stdout.String(), "\n") {
		m := posLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		path := m[1]
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, path)
		}
		if strings.HasPrefix(msg, "inlining call to ") {
			facts.inlined[fmt.Sprintf("%s:%d:%d", path, ln, col)] = true
			continue
		}
		isEscape := strings.HasSuffix(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap:")
		if !isEscape || constString.MatchString(msg) {
			continue
		}
		// The compiler can repeat a diagnostic (e.g. once per inlining
		// consideration); report each site once.
		d := escapeDiag{path: path, line: ln, col: col, msg: msg}
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out, facts, nil
}
