package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// wallBlockFuncs are the time-package entry points that block on (or arm
// timers against) the wall clock. time.Now/Since are already covered
// module-wide by the wallclock check; these are the scheduler-blocking
// class that must never appear where virtual time is authoritative.
var wallBlockFuncs = map[string]bool{
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// checkKernelSync bans runtime synchronization inside the kernel packages
// (KernelPackages): any use of sync or sync/atomic, channel operations
// (send, receive, select, range-over-channel, close, channel types),
// and wall-clock blocking (time.Sleep and friends). The event kernel runs
// single-threaded under a virtual clock — a mutex or channel there either
// does nothing or, worse, couples event order to the Go scheduler, which is
// exactly the nondeterminism the calendar exists to exclude. Attested
// exceptions use //simlint:allow kernelsync <reason>.
func checkKernelSync(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				// Any use of the sync / sync/atomic packages, including
				// type references like a sync.Mutex struct field.
				if id, ok := x.X.(*ast.Ident); ok {
					if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
						switch pn.Imported().Path() {
						case "sync", "sync/atomic":
							diags = append(diags, diag(prog, x.Pos(), "kernelsync",
								"%s.%s in a kernel package: the event kernel is single-threaded under virtual time and must not depend on runtime synchronization", pn.Imported().Path(), x.Sel.Name))
						}
					}
				}
			case *ast.CallExpr:
				if fn := calleeFunc(pkg, x); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "time" && wallBlockFuncs[fn.Name()] {
					diags = append(diags, diag(prog, x.Pos(), "kernelsync",
						"time.%s blocks on the wall clock; kernel code advances time only through the event calendar", fn.Name()))
				}
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
					if b, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "close" {
						diags = append(diags, diag(prog, x.Pos(), "kernelsync",
							"close on a channel in a kernel package: channel signaling couples event order to the Go scheduler"))
					}
				}
			case *ast.SendStmt:
				diags = append(diags, diag(prog, x.Pos(), "kernelsync",
					"channel send in a kernel package: channel signaling couples event order to the Go scheduler"))
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					diags = append(diags, diag(prog, x.Pos(), "kernelsync",
						"channel receive in a kernel package: channel signaling couples event order to the Go scheduler"))
				}
			case *ast.SelectStmt:
				diags = append(diags, diag(prog, x.Pos(), "kernelsync",
					"select in a kernel package: select order is scheduler- and runtime-dependent"))
			case *ast.RangeStmt:
				if t := pkg.Info.TypeOf(x.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						diags = append(diags, diag(prog, x.Pos(), "kernelsync",
							"range over a channel in a kernel package: channel signaling couples event order to the Go scheduler"))
					}
				}
			case *ast.ChanType:
				diags = append(diags, diag(prog, x.Pos(), "kernelsync",
					"channel type in a kernel package: kernel state must not be shared through channels"))
			}
			return true
		})
	}
	return diags
}
