package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// The schema check cross-links the four places a checkpointed metric must
// exist — the Result struct, the declared checkpoint layout, the
// encode/decode functions, and the render tables — so adding a field to
// one layer and forgetting another is a lint failure instead of a metric
// that silently stops surviving resume (or survives but is never shown).
//
// The check self-gates on a package declaring
//
//	var checkpointLayout = []checkpointField{ {"Path", get, set}, ... }
//
// next to a struct type named Result, which is exactly the contract
// internal/scenario exposes (and what the fixture package mirrors). Within
// such a package it verifies:
//
//   - every layout entry names a numeric Result field (recursing through
//     named struct fields like stats.Summary), exactly once, and its get
//     and set accessor bodies read and write precisely the field the entry
//     names — a mislabeled slot would corrupt resumes undetectably;
//   - every numeric Result field is carried by exactly one of
//     checkpointLayout and checkpointOmitted, and every non-numeric field
//     is declared omitted with a reason — a new counter cannot be
//     forgotten silently;
//   - encodeResult and decodeResult (when present) consume the layout
//     variable rather than a parallel hand-maintained list;
//   - every layout path is rendered by ComparisonTable or DetailTable
//     (when the package defines them) — a checkpointed metric the tables
//     never show is invisible drift.

// schemaLayout is a located checkpoint-layout declaration.
type schemaLayout struct {
	ident *ast.Ident        // the checkpointLayout name
	lit   *ast.CompositeLit // the slice literal
}

// findSchemaLayout locates a package-level `var checkpointLayout =
// []checkpointField{...}` declaration, or nil. Its presence is what opts a
// package into the schema check.
func findSchemaLayout(pkg *Package) *schemaLayout {
	for _, file := range pkg.Syntax {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
					continue
				}
				if vs.Names[0].Name != "checkpointLayout" {
					continue
				}
				if lit, ok := vs.Values[0].(*ast.CompositeLit); ok {
					return &schemaLayout{ident: vs.Names[0], lit: lit}
				}
			}
		}
	}
	return nil
}

func checkSchema(prog *Program, pkg *Package) []Diagnostic {
	lay := findSchemaLayout(pkg)
	if lay == nil {
		return nil
	}
	var diags []Diagnostic

	resultObj, _ := pkg.Types.Scope().Lookup("Result").(*types.TypeName)
	if resultObj == nil {
		return []Diagnostic{diag(prog, lay.ident.Pos(), "schema",
			"checkpointLayout is declared but the package has no Result struct to lay out")}
	}
	st, ok := resultObj.Type().Underlying().(*types.Struct)
	if !ok {
		return []Diagnostic{diag(prog, lay.ident.Pos(), "schema",
			"checkpointLayout is declared but Result is not a struct")}
	}
	numeric, other := flattenResult(st, "", pkg.Types)
	numericSet := map[string]bool{}
	for _, f := range numeric {
		numericSet[f] = true
	}
	otherSet := map[string]bool{}
	for _, f := range other {
		otherSet[f] = true
	}

	// Layout entries: name/get/set agreement, existence, uniqueness.
	layout := map[string]token.Pos{}
	for _, elt := range lay.lit.Elts {
		name, getPath, setPath, perr := parseLayoutEntry(pkg, elt)
		if perr != "" {
			diags = append(diags, diag(prog, elt.Pos(), "schema",
				"checkpointLayout entry is not statically checkable: %s (the analyzer needs the {\"Path\", get, set} literal shape)", perr))
			continue
		}
		if _, dup := layout[name]; dup {
			diags = append(diags, diag(prog, elt.Pos(), "schema",
				"duplicate checkpointLayout entry %q: the slot would be encoded twice and decode would double-write the field", name))
			continue
		}
		layout[name] = elt.Pos()
		if !numericSet[name] {
			diags = append(diags, diag(prog, elt.Pos(), "schema",
				"checkpointLayout entry %q does not name a numeric Result field", name))
			continue
		}
		if getPath != name {
			diags = append(diags, diag(prog, elt.Pos(), "schema",
				"checkpointLayout entry %q reads r.%s in its get accessor: a mislabeled slot corrupts every resumed Result silently", name, getPath))
		}
		if setPath != name {
			diags = append(diags, diag(prog, elt.Pos(), "schema",
				"checkpointLayout entry %q writes r.%s in its set accessor: a mislabeled slot corrupts every resumed Result silently", name, setPath))
		}
	}

	// Omissions: real fields, with reasons, not double-declared.
	omitted := map[string]token.Pos{}
	for _, om := range findOmissions(pkg) {
		if om.field == "" {
			diags = append(diags, diag(prog, om.pos, "schema",
				"checkpointOmitted entry is not a {\"Field\", \"reason\"} literal the analyzer can read"))
			continue
		}
		if _, dup := omitted[om.field]; dup {
			diags = append(diags, diag(prog, om.pos, "schema",
				"duplicate checkpointOmitted entry %q", om.field))
			continue
		}
		omitted[om.field] = om.pos
		if om.reason == "" {
			diags = append(diags, diag(prog, om.pos, "schema",
				"checkpointOmitted entry %q needs a reason the field survives resume without being stored", om.field))
		}
		if !numericSet[om.field] && !otherSet[om.field] {
			diags = append(diags, diag(prog, om.pos, "schema",
				"checkpointOmitted names %q, which is not a Result field: delete the stale omission", om.field))
		}
		if _, inLayout := layout[om.field]; inLayout {
			diags = append(diags, diag(prog, om.pos, "schema",
				"%q is declared omitted but has a checkpointLayout slot: a field is carried by exactly one of the two", om.field))
		}
	}

	// Every field in exactly one of layout / omitted.
	for _, f := range numeric {
		if _, inLayout := layout[f]; inLayout {
			continue
		}
		if _, inOmitted := omitted[f]; inOmitted {
			continue
		}
		diags = append(diags, diag(prog, lay.ident.Pos(), "schema",
			"numeric Result field %s is in neither checkpointLayout nor checkpointOmitted: append a layout slot (old checkpoints are rejected by the length check and re-run) or declare the omission", f))
	}
	for _, f := range other {
		if _, inOmitted := omitted[f]; inOmitted {
			continue
		}
		diags = append(diags, diag(prog, lay.ident.Pos(), "schema",
			"non-numeric Result field %s must be declared in checkpointOmitted with the reason it survives resume", f))
	}

	// encode/decode must consume the layout, not a parallel list.
	layoutObj := pkg.Info.Defs[lay.ident]
	for _, name := range []string{"encodeResult", "decodeResult"} {
		fd := lookupFunc(pkg, name)
		if fd == nil || fd.Body == nil {
			continue
		}
		if !usesObject(pkg, fd.Body, layoutObj) {
			diags = append(diags, diag(prog, fd.Pos(), "schema",
				"%s does not consume checkpointLayout: the layout is the single source of the checkpoint wire format", name))
		}
	}

	// Render coverage: every layout path must be read by a table function.
	covered, haveTables := tableCoverage(pkg, resultObj)
	if haveTables {
		for _, elt := range lay.lit.Elts {
			name, _, _, perr := parseLayoutEntry(pkg, elt)
			if perr != "" || !numericSet[name] {
				continue
			}
			if !covered[name] {
				diags = append(diags, diag(prog, elt.Pos(), "schema",
					"layout field %s is rendered by neither ComparisonTable nor DetailTable: a checkpointed metric the tables never show drifts invisibly", name))
			}
		}
	}
	return diags
}

// flattenResult lists Result's leaf fields as dotted paths, split into
// numeric (integer/float underlying, including named struct sub-fields
// reachable from here) and non-numeric leaves. Fields of foreign structs
// that are unexported there are invisible to this package and skipped.
func flattenResult(st *types.Struct, prefix string, from *types.Package) (numeric, other []string) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() && f.Pkg() != from {
			continue
		}
		path := prefix + f.Name()
		switch u := f.Type().Underlying().(type) {
		case *types.Basic:
			if u.Info()&(types.IsInteger|types.IsFloat) != 0 {
				numeric = append(numeric, path)
			} else {
				other = append(other, path)
			}
		case *types.Struct:
			n, o := flattenResult(u, path+".", from)
			numeric = append(numeric, n...)
			other = append(other, o...)
		default:
			other = append(other, path)
		}
	}
	return numeric, other
}

// parseLayoutEntry destructures one {"Path", get, set} element. perr
// describes why the element cannot be checked; empty on success.
func parseLayoutEntry(pkg *Package, elt ast.Expr) (name, getPath, setPath, perr string) {
	lit, ok := elt.(*ast.CompositeLit)
	if !ok || len(lit.Elts) != 3 {
		return "", "", "", "expected a three-element composite literal"
	}
	name, ok = stringLit(lit.Elts[0])
	if !ok {
		return "", "", "", "the field name must be a string literal"
	}
	getPath, ok = accessorPath(pkg, lit.Elts[1], false)
	if !ok {
		return name, "", "", "the get accessor must be func(r *Result) float64 { return [float64(]r.Field[)] }"
	}
	setPath, ok = accessorPath(pkg, lit.Elts[2], true)
	if !ok {
		return name, getPath, "", "the set accessor must be func(r *Result, v float64) { r.Field = [T(]v[)] }"
	}
	return name, getPath, setPath, ""
}

// accessorPath extracts the Result field path a get or set accessor
// touches. Get shape: a single `return r.Path` or `return float64(r.Path)`.
// Set shape: a single `r.Path = v` or `r.Path = T(v)`.
func accessorPath(pkg *Package, e ast.Expr, set bool) (string, bool) {
	fl, ok := ast.Unparen(e).(*ast.FuncLit)
	if !ok || fl.Type.Params == nil || len(fl.Type.Params.List) == 0 ||
		len(fl.Type.Params.List[0].Names) == 0 || len(fl.Body.List) != 1 {
		return "", false
	}
	recv := pkg.Info.Defs[fl.Type.Params.List[0].Names[0]]
	if recv == nil {
		return "", false
	}
	if set {
		as, ok := fl.Body.List[0].(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
			return "", false
		}
		return fieldPath(pkg, recv, as.Lhs[0])
	}
	ret, ok := fl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return "", false
	}
	return fieldPath(pkg, recv, stripConversion(ret.Results[0]))
}

// stripConversion unwraps a single-argument call (float64(x), int(x), ...)
// to its argument.
func stripConversion(e ast.Expr) ast.Expr {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && len(call.Args) == 1 {
		return call.Args[0]
	}
	return e
}

// fieldPath resolves a selector chain rooted at recv to its dotted path.
func fieldPath(pkg *Package, recv types.Object, e ast.Expr) (string, bool) {
	var parts []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if pkg.Info.Uses[x] != recv {
				return "", false
			}
			if len(parts) == 0 {
				return "", false
			}
			return strings.Join(parts, "."), true
		case *ast.SelectorExpr:
			parts = append([]string{x.Sel.Name}, parts...)
			e = x.X
		default:
			return "", false
		}
	}
}

// omission is one parsed checkpointOmitted element.
type omission struct {
	field  string
	reason string
	pos    token.Pos
}

func findOmissions(pkg *Package) []omission {
	var out []omission
	for _, file := range pkg.Syntax {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "checkpointOmitted" || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range lit.Elts {
					om := omission{pos: elt.Pos()}
					if el, ok := elt.(*ast.CompositeLit); ok && len(el.Elts) == 2 {
						if f, ok := stringLit(el.Elts[0]); ok {
							om.field = f
						}
						if r, ok := stringLit(el.Elts[1]); ok {
							om.reason = r
						}
					}
					out = append(out, om)
				}
			}
		}
	}
	return out
}

func stringLit(e ast.Expr) (string, bool) {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	return s, err == nil
}

// lookupFunc finds the package-level function declaration named name.
func lookupFunc(pkg *Package, name string) *ast.FuncDecl {
	for _, file := range pkg.Syntax {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(pkg *Package, n ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// tableCoverage collects every Result field path read through a selector
// chain inside ComparisonTable or DetailTable. haveTables is false when the
// package defines neither (coverage is then not checked — the layout may
// live in a package that renders elsewhere).
func tableCoverage(pkg *Package, result *types.TypeName) (map[string]bool, bool) {
	covered := map[string]bool{}
	have := false
	for _, name := range []string{"ComparisonTable", "DetailTable"} {
		fd := lookupFunc(pkg, name)
		if fd == nil || fd.Body == nil {
			continue
		}
		have = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if path, ok := resultRootedPath(pkg, result, sel); ok {
				covered[path] = true
			}
			return true
		})
	}
	return covered, have
}

// resultRootedPath resolves a selector chain whose root expression has type
// Result (or *Result) to its dotted field path.
func resultRootedPath(pkg *Package, result *types.TypeName, sel *ast.SelectorExpr) (string, bool) {
	var parts []string
	var e ast.Expr = sel
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			parts = append([]string{x.Sel.Name}, parts...)
			e = x.X
		default:
			t := pkg.Info.TypeOf(e)
			if t == nil {
				return "", false
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || named.Obj() != result {
				return "", false
			}
			return strings.Join(parts, "."), true
		}
	}
}
