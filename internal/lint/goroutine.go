package lint

import (
	"go/ast"
)

// checkGoroutine flags `go` statements in deterministic packages whose
// enclosing function is not blessed with //simlint:ordered. Unordered
// concurrency is how parallel≠sequential drift starts: results must be
// written to index-addressed slots (never appended or merged in completion
// order) for a parallel run to stay bit-identical to the sequential one,
// and that property is a per-helper design fact a human must attest to.
func checkGoroutine(prog *Program, pkg *Package, dirs *directives) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if fd := funcFor(file, gs.Pos()); fd != nil && dirs.ordered[fd] {
				return true
			}
			diags = append(diags, diag(prog, gs.Pos(), "goroutine",
				"goroutine spawned outside a //simlint:ordered helper; deterministic packages may only fan out through worker pools with index-ordered writes"))
			return true
		})
	}
	return diags
}
