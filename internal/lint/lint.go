// Package lint implements simlint, the repository's custom static-analysis
// suite. It machine-enforces the two standing invariants of ROADMAP.md that
// runtime tests can only sample:
//
//   - determinism: fixed-seed simulation outputs are bit-identical at any
//     parallelism. A stray time.Now(), a draw from the global math/rand
//     source, an aggregation loop ranging over a map, or an unmanaged
//     goroutine can each break that silently on paths the golden tests do
//     not happen to execute.
//   - zero allocation: the steady-state kernel paths of PR 3 (ladder
//     calendar, freelists) and PR 5 (pooled links/resets) allocate nothing.
//     sim/alloc_test.go samples specific churn loops; the noalloc check
//     proves the property for every annotated function via the compiler's
//     own escape analysis.
//
// The suite is built entirely on the standard library (go/parser, go/ast,
// go/types, go/importer): the module is stdlib-only and must stay buildable
// offline. Package discovery and type-checking are driven by `go list
// -deps -export -json` — module packages are type-checked from source
// bottom-up with an importer backed by the already-checked package map,
// while standard-library imports are satisfied from compiler export data.
//
// # Checks
//
//   - wallclock:  time.Now / time.Since anywhere outside _test.go files.
//   - globalrand: package-level math/rand draws (rand.Int, rand.Float64,
//     rand.Perm, rand.Shuffle, ...) that consume the shared global source.
//   - maprange:   `range` over a map whose body feeds output or an
//     aggregate declared outside the loop, in the deterministic packages.
//     Collect-then-sort key loops are recognized and allowed.
//   - rngseed:    rand.NewSource / rand.New seeds that are hard-coded
//     literals or derived from the wall clock instead of tracing to a
//     parameter, field, or rngutil derivation.
//   - goroutine:  bare `go` statements in the deterministic packages
//     outside functions blessed with //simlint:ordered.
//   - noalloc:    functions annotated //simlint:noalloc are cross-checked
//     against `go tool compile -m` escape analysis; any "escapes to heap"
//     or "moved to heap" diagnostic inside the function body fails.
//   - directive:  hygiene of the //simlint: comments themselves (unknown
//     checks, missing reasons, misplaced annotations).
//
// # Directives
//
//   - //simlint:allow <check> <reason>   suppresses findings of <check> on
//     the same line and the line below; the reason is mandatory.
//   - //simlint:noalloc <reason>         (function doc comment) declares a
//     zero-allocation contract checked against escape analysis.
//   - //simlint:ordered <reason>         (function doc comment) marks an
//     ordered-aggregation helper whose goroutines are deterministic by
//     construction (index-ordered writes, parallel == sequential).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Diagnostic is a single finding, addressed by position within the module.
type Diagnostic struct {
	File    string `json:"file"` // path relative to the module root
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// KnownChecks is the vocabulary accepted by //simlint:allow.
var KnownChecks = map[string]bool{
	"wallclock":  true,
	"globalrand": true,
	"maprange":   true,
	"rngseed":    true,
	"goroutine":  true,
	"noalloc":    true,
}

// DeterministicPackages lists the import paths whose code must be a pure
// function of inputs and seed: everything the simulation, workload,
// sampling, surrogate, and optimization layers execute between reading a
// config and emitting a result. maprange and goroutine findings are scoped
// to these; wallclock, globalrand, and rngseed apply module-wide.
var DeterministicPackages = []string{
	"e2clab/internal/sim",
	"e2clab/internal/fault",
	"e2clab/internal/resilience",
	"e2clab/internal/plantnet",
	"e2clab/internal/scenario",
	"e2clab/internal/surrogate",
	"e2clab/internal/bo",
	"e2clab/internal/workload",
	"e2clab/internal/sample",
	"e2clab/internal/tune",
	"e2clab/internal/metaheur",
}

// Config controls a Run.
type Config struct {
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// Deterministic lists import paths subject to the deterministic-package
	// checks. Nil means DeterministicPackages.
	Deterministic []string
	// Checks enables a subset of checks by name; nil enables all. The
	// directive check is always on.
	Checks map[string]bool
	// SkipNoAlloc disables the escape-analysis cross-check (it shells out
	// to the compiler, which pure-AST callers may want to avoid).
	SkipNoAlloc bool
}

func (c *Config) enabled(check string) bool {
	return c.Checks == nil || c.Checks[check]
}

func (c *Config) deterministic(importPath string) bool {
	det := c.Deterministic
	if det == nil {
		det = DeterministicPackages
	}
	for _, p := range det {
		if p == importPath {
			return true
		}
	}
	return false
}

// Run loads the module at cfg.Dir and applies every enabled check,
// returning the surviving (unsuppressed) diagnostics sorted by position. A
// non-nil error means the analysis itself could not run (a build or load
// failure), not that findings exist.
func Run(cfg Config) ([]Diagnostic, error) {
	prog, err := Load(cfg.Dir)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		pkg.Deterministic = cfg.deterministic(pkg.ImportPath)
		diags = append(diags, AnalyzePackage(prog, pkg, &cfg)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// AnalyzePackage applies every enabled check to one loaded package and
// returns the unsuppressed findings. Exposed for fixture tests.
func AnalyzePackage(prog *Program, pkg *Package, cfg *Config) []Diagnostic {
	dirs := collectDirectives(prog, pkg)
	var diags []Diagnostic
	diags = append(diags, dirs.hygiene...)
	if cfg.enabled("wallclock") || cfg.enabled("globalrand") || cfg.enabled("maprange") {
		diags = append(diags, checkDeterminism(prog, pkg, cfg)...)
	}
	if cfg.enabled("rngseed") {
		diags = append(diags, checkRNGSeed(prog, pkg)...)
	}
	if cfg.enabled("goroutine") && pkg.Deterministic {
		diags = append(diags, checkGoroutine(prog, pkg, dirs)...)
	}
	if cfg.enabled("noalloc") && !cfg.SkipNoAlloc {
		nd, err := checkNoAlloc(prog, pkg, dirs)
		if err != nil {
			diags = append(diags, Diagnostic{
				File:    relFile(prog, pkg.Files[0]),
				Line:    1,
				Col:     1,
				Check:   "noalloc",
				Message: fmt.Sprintf("escape analysis failed: %v", err),
			})
		}
		diags = append(diags, nd...)
	}
	return dirs.filter(diags)
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}

// diag builds a Diagnostic at pos, with the file path relativized to the
// module root.
func diag(prog *Program, pos token.Pos, check, format string, args ...any) Diagnostic {
	p := prog.Fset.Position(pos)
	return Diagnostic{
		File:    relFile(prog, p.Filename),
		Line:    p.Line,
		Col:     p.Column,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	}
}

func relFile(prog *Program, abs string) string {
	if prog.Dir != "" && strings.HasPrefix(abs, prog.Dir+"/") {
		return abs[len(prog.Dir)+1:]
	}
	return abs
}

// funcFor returns the innermost top-level function declaration enclosing
// pos in file, or nil.
func funcFor(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil &&
			fd.Body.Pos() <= pos && pos <= fd.Body.End() {
			return fd
		}
	}
	return nil
}
