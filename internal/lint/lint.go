// Package lint implements simlint, the repository's custom static-analysis
// suite. It machine-enforces the two standing invariants of ROADMAP.md that
// runtime tests can only sample:
//
//   - determinism: fixed-seed simulation outputs are bit-identical at any
//     parallelism. A stray time.Now(), a draw from the global math/rand
//     source, an aggregation loop ranging over a map, or an unmanaged
//     goroutine can each break that silently on paths the golden tests do
//     not happen to execute.
//   - zero allocation: the steady-state kernel paths of PR 3 (ladder
//     calendar, freelists) and PR 5 (pooled links/resets) allocate nothing.
//     sim/alloc_test.go samples specific churn loops; the noalloc check
//     proves the property for every annotated function via the compiler's
//     own escape analysis.
//
// The suite is built entirely on the standard library (go/parser, go/ast,
// go/types, go/importer): the module is stdlib-only and must stay buildable
// offline. Package discovery and type-checking are driven by `go list
// -deps -export -json` — module packages are type-checked from source
// bottom-up with an importer backed by the already-checked package map,
// while standard-library imports are satisfied from compiler export data.
//
// # Checks
//
//   - wallclock:  time.Now / time.Since anywhere outside _test.go files.
//   - globalrand: package-level math/rand draws (rand.Int, rand.Float64,
//     rand.Perm, rand.Shuffle, ...) that consume the shared global source.
//   - maprange:   `range` over a map whose body feeds output or an
//     aggregate declared outside the loop, in the deterministic packages.
//     Collect-then-sort key loops are recognized and allowed.
//   - rngseed:    rand.NewSource / rand.New seeds that are hard-coded
//     literals or derived from the wall clock instead of tracing to a
//     parameter, field, or rngutil derivation.
//   - goroutine:  bare `go` statements in the deterministic packages
//     outside functions blessed with //simlint:ordered.
//   - noalloc:    functions annotated //simlint:noalloc are cross-checked
//     against `go tool compile -m` escape analysis; any "escapes to heap"
//     or "moved to heap" diagnostic inside the function body fails.
//   - noallocclosure: the //simlint:noalloc proof is closed over the static
//     call graph — a proven function directly calling a module function
//     that is neither proven itself nor inlined at the call site is a
//     finding, so the contract cannot be hollowed out one helper at a time.
//   - rngshare:   a *rand.Rand (or rngutil stream) captured by more than
//     one spawned goroutine, spawned repeatedly from a loop, or drawn on
//     by both the spawner and a goroutine, in the deterministic packages —
//     the nondeterminism class -race only catches when draws collide.
//   - kernelsync: wall-clock and scheduler blocking primitives
//     (sync.Mutex, sync/atomic, channel operations, select, time.Sleep)
//     inside the kernel packages (KernelPackages): virtual time must never
//     block on the Go runtime.
//   - schema:     the declared checkpoint layout (`checkpointLayout`) is
//     cross-checked against the Result struct, the encode/decode
//     functions, and the render tables, so a field added in one layer but
//     not the others is a build error instead of a silent drift.
//   - stalesuppress: a //simlint:allow that suppresses nothing, a
//     //simlint:ordered on a function that spawns nothing, or a dead
//     //simlint:noalloc (no body, or duplicated) is itself a finding —
//     the suppression inventory can only shrink honestly.
//   - directive:  hygiene of the //simlint: comments themselves (unknown
//     checks, missing reasons, misplaced annotations).
//
// # Directives
//
//   - //simlint:allow <check> <reason>   suppresses findings of <check> on
//     the same line and the line below; the reason is mandatory.
//   - //simlint:noalloc <reason>         (function doc comment) declares a
//     zero-allocation contract checked against escape analysis.
//   - //simlint:ordered <reason>         (function doc comment) marks an
//     ordered-aggregation helper whose goroutines are deterministic by
//     construction (index-ordered writes, parallel == sequential).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Diagnostic is a single finding, addressed by position within the module.
type Diagnostic struct {
	File    string `json:"file"` // path relative to the module root
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// KnownChecks is the vocabulary accepted by //simlint:allow and -checks.
// (Findings of the always-on directive hygiene check and of stalesuppress
// are never suppressible: the remedy for a stale directive is deleting it.)
var KnownChecks = map[string]bool{
	"wallclock":      true,
	"globalrand":     true,
	"maprange":       true,
	"rngseed":        true,
	"goroutine":      true,
	"noalloc":        true,
	"noallocclosure": true,
	"rngshare":       true,
	"kernelsync":     true,
	"schema":         true,
	"stalesuppress":  true,
}

// DeterministicPackages lists the import paths whose code must be a pure
// function of inputs and seed: everything the simulation, workload,
// sampling, surrogate, and optimization layers execute between reading a
// config and emitting a result. maprange and goroutine findings are scoped
// to these; wallclock, globalrand, and rngseed apply module-wide.
var DeterministicPackages = []string{
	"e2clab/internal/sim",
	// The sharded coordinator is deterministic BY design despite its
	// goroutines (worker count never affects output; see the package doc),
	// so it takes the full deterministic-package checks — its parallel
	// sites carry per-site //simlint:ordered attestations. It is NOT in
	// KernelPackages: kernelsync keeps the single-threaded kernel free of
	// synchronization, and this one blessed package holds all of it.
	"e2clab/internal/sim/shard",
	"e2clab/internal/fault",
	"e2clab/internal/resilience",
	"e2clab/internal/plantnet",
	"e2clab/internal/scenario",
	"e2clab/internal/surrogate",
	"e2clab/internal/bo",
	"e2clab/internal/workload",
	"e2clab/internal/sample",
	"e2clab/internal/tune",
	"e2clab/internal/metaheur",
}

// KernelPackages lists the import paths whose code runs inside the
// discrete-event kernel: virtual time there must never block on wall-clock
// or scheduler primitives, which is what the kernelsync check bans
// (sync.Mutex, sync/atomic, channel operations, select, time.Sleep).
var KernelPackages = []string{
	"e2clab/internal/sim",
}

// Config controls a Run.
type Config struct {
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// Deterministic lists import paths subject to the deterministic-package
	// checks. Nil means DeterministicPackages.
	Deterministic []string
	// Kernel lists import paths subject to the kernelsync check. Nil means
	// KernelPackages.
	Kernel []string
	// Checks enables a subset of checks by name; nil enables all. The
	// directive check is always on.
	Checks map[string]bool
	// SkipNoAlloc disables the escape-analysis cross-check (it shells out
	// to the compiler, which pure-AST callers may want to avoid).
	SkipNoAlloc bool
}

func (c *Config) enabled(check string) bool {
	return c.Checks == nil || c.Checks[check]
}

func (c *Config) deterministic(importPath string) bool {
	det := c.Deterministic
	if det == nil {
		det = DeterministicPackages
	}
	for _, p := range det {
		if p == importPath {
			return true
		}
	}
	return false
}

func (c *Config) kernel(importPath string) bool {
	ker := c.Kernel
	if ker == nil {
		ker = KernelPackages
	}
	for _, p := range ker {
		if p == importPath {
			return true
		}
	}
	return false
}

// ran reports whether findings of check could have been produced for pkg
// under this configuration — the gate the stalesuppress check uses so an
// //simlint:allow is only "stale" when the check it suppresses actually ran
// (a -checks subset run must not misreport every other allow as dead).
func (c *Config) ran(check string, pkg *Package) bool {
	if !c.enabled(check) {
		return false
	}
	switch check {
	case "maprange", "goroutine", "rngshare":
		return pkg.Deterministic
	case "kernelsync":
		return pkg.Kernel
	case "noalloc", "noallocclosure":
		return !c.SkipNoAlloc
	case "schema":
		return findSchemaLayout(pkg) != nil
	case "stalesuppress":
		return false // never suppressible, so an allow for it never fires
	}
	return true
}

// Run loads the module at cfg.Dir and applies every enabled check,
// returning the surviving (unsuppressed) diagnostics sorted by position. A
// non-nil error means the analysis itself could not run (a build or load
// failure), not that findings exist.
func Run(cfg Config) ([]Diagnostic, error) {
	prog, err := Load(cfg.Dir)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		pkg.Deterministic = cfg.deterministic(pkg.ImportPath)
		pkg.Kernel = cfg.kernel(pkg.ImportPath)
		diags = append(diags, AnalyzePackage(prog, pkg, &cfg)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// AnalyzePackage applies every enabled check to one loaded package and
// returns the unsuppressed findings. Exposed for fixture tests.
func AnalyzePackage(prog *Program, pkg *Package, cfg *Config) []Diagnostic {
	dirs := collectDirectives(prog, pkg)
	prog.registerProven(pkg, dirs)
	var diags []Diagnostic
	diags = append(diags, dirs.hygiene...)
	if cfg.enabled("wallclock") || cfg.enabled("globalrand") || cfg.enabled("maprange") {
		diags = append(diags, checkDeterminism(prog, pkg, cfg)...)
	}
	if cfg.enabled("rngseed") {
		diags = append(diags, checkRNGSeed(prog, pkg)...)
	}
	if cfg.enabled("goroutine") && pkg.Deterministic {
		diags = append(diags, checkGoroutine(prog, pkg, dirs)...)
	}
	if cfg.enabled("rngshare") && pkg.Deterministic {
		diags = append(diags, checkRNGShare(prog, pkg)...)
	}
	if cfg.enabled("kernelsync") && pkg.Kernel {
		diags = append(diags, checkKernelSync(prog, pkg)...)
	}
	if cfg.enabled("schema") {
		diags = append(diags, checkSchema(prog, pkg)...)
	}
	if (cfg.enabled("noalloc") || cfg.enabled("noallocclosure")) && !cfg.SkipNoAlloc {
		nd, facts, err := checkNoAlloc(prog, pkg, dirs)
		if err != nil {
			diags = append(diags, Diagnostic{
				File:    relFile(prog, pkg.Files[0]),
				Line:    1,
				Col:     1,
				Check:   "noalloc",
				Message: fmt.Sprintf("escape analysis failed: %v", err),
			})
		}
		if cfg.enabled("noalloc") {
			diags = append(diags, nd...)
		}
		if cfg.enabled("noallocclosure") && facts != nil {
			diags = append(diags, checkNoAllocClosure(prog, pkg, dirs, facts)...)
		}
	}
	out := dirs.filter(diags)
	if cfg.enabled("stalesuppress") {
		out = append(out, checkStaleSuppress(prog, pkg, dirs, cfg)...)
	}
	return out
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}

// diag builds a Diagnostic at pos, with the file path relativized to the
// module root.
func diag(prog *Program, pos token.Pos, check, format string, args ...any) Diagnostic {
	p := prog.Fset.Position(pos)
	return Diagnostic{
		File:    relFile(prog, p.Filename),
		Line:    p.Line,
		Col:     p.Column,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	}
}

func relFile(prog *Program, abs string) string {
	if prog.Dir != "" && strings.HasPrefix(abs, prog.Dir+"/") {
		return abs[len(prog.Dir)+1:]
	}
	return abs
}

// funcFor returns the innermost top-level function declaration enclosing
// pos in file, or nil.
func funcFor(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil &&
			fd.Body.Pos() <= pos && pos <= fd.Body.End() {
			return fd
		}
	}
	return nil
}
