package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is one parsed //simlint:allow comment.
type allowDirective struct {
	check  string
	reason string
	used   bool
	pos    token.Pos
}

// funcAnnotation is a //simlint:noalloc or //simlint:ordered directive
// attached to a function declaration.
type funcAnnotation struct {
	fn     *ast.FuncDecl
	file   *ast.File
	path   string // absolute file path
	reason string
	pos    token.Pos // the directive comment itself
}

// directives indexes every //simlint: comment of a package.
type directives struct {
	// allow maps file path -> line -> suppressions active on that line.
	// A directive on line L suppresses matching findings on L and L+1, so
	// it can sit either at the end of the offending line or just above it.
	allow map[string]map[int][]*allowDirective
	// noalloc and ordered collect the annotated functions.
	noalloc     []funcAnnotation
	ordered     map[*ast.FuncDecl]bool
	orderedList []funcAnnotation
	// hygiene carries findings about the directives themselves.
	hygiene []Diagnostic
}

const directivePrefix = "//simlint:"

// collectDirectives parses every simlint directive in the package and
// checks its hygiene: known verbs, known check names, mandatory reasons,
// and placement (noalloc/ordered must annotate a function declaration).
func collectDirectives(prog *Program, pkg *Package) *directives {
	d := &directives{
		allow:   map[string]map[int][]*allowDirective{},
		ordered: map[*ast.FuncDecl]bool{},
	}
	for i, file := range pkg.Syntax {
		path := pkg.Files[i]
		// Directives inside function doc comments.
		docOwned := map[*ast.Comment]bool{}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				verb, rest, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				docOwned[c] = true
				switch verb {
				case "noalloc":
					d.noalloc = append(d.noalloc, funcAnnotation{fn: fd, file: file, path: path, reason: rest, pos: c.Pos()})
				case "ordered":
					if strings.TrimSpace(rest) == "" {
						d.hygiene = append(d.hygiene, diag(prog, c.Pos(), "directive",
							"//simlint:ordered on %s needs a reason explaining why its goroutines preserve determinism", fd.Name.Name))
					}
					d.ordered[fd] = true
					d.orderedList = append(d.orderedList, funcAnnotation{fn: fd, file: file, path: path, reason: rest, pos: c.Pos()})
				case "allow":
					// allow inside a doc comment suppresses nothing useful
					// (it would cover the func keyword line only); treat as
					// misplaced to keep suppressions next to their finding.
					d.hygiene = append(d.hygiene, diag(prog, c.Pos(), "directive",
						"//simlint:allow belongs on (or directly above) the offending line, not in a function doc comment"))
				default:
					d.hygiene = append(d.hygiene, diag(prog, c.Pos(), "directive",
						"unknown directive //simlint:%s", verb))
				}
			}
		}
		// Free-standing directives (suppressions and misplacements).
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				verb, rest, ok := parseDirective(c.Text)
				if !ok || docOwned[c] {
					continue
				}
				switch verb {
				case "allow":
					check, reason, _ := strings.Cut(rest, " ")
					reason = strings.TrimSpace(reason)
					pos := prog.Fset.Position(c.Pos())
					switch {
					case !KnownChecks[check]:
						d.hygiene = append(d.hygiene, diag(prog, c.Pos(), "directive",
							"//simlint:allow names unknown check %q", check))
					case reason == "":
						d.hygiene = append(d.hygiene, diag(prog, c.Pos(), "directive",
							"//simlint:allow %s needs a written reason", check))
					default:
						byLine := d.allow[path]
						if byLine == nil {
							byLine = map[int][]*allowDirective{}
							d.allow[path] = byLine
						}
						byLine[pos.Line] = append(byLine[pos.Line],
							&allowDirective{check: check, reason: reason, pos: c.Pos()})
					}
				case "noalloc", "ordered":
					d.hygiene = append(d.hygiene, diag(prog, c.Pos(), "directive",
						"//simlint:%s must sit in the doc comment of a function declaration", verb))
				default:
					d.hygiene = append(d.hygiene, diag(prog, c.Pos(), "directive",
						"unknown directive //simlint:%s", verb))
				}
			}
		}
	}
	return d
}

// parseDirective splits a raw comment into (verb, rest) when it is a
// simlint directive. Both "//simlint:verb ..." and the accidental
// "// simlint:verb ..." spelling are accepted so a misformatted directive
// is reported rather than silently ignored.
func parseDirective(text string) (verb, rest string, ok bool) {
	body, found := strings.CutPrefix(text, directivePrefix)
	if !found {
		trimmed := strings.TrimSpace(strings.TrimPrefix(text, "//"))
		if body, found = strings.CutPrefix(trimmed, "simlint:"); !found {
			return "", "", false
		}
	}
	verb, rest, _ = strings.Cut(body, " ")
	return verb, strings.TrimSpace(rest), true
}

// filter drops diagnostics covered by an allow directive for their check on
// the same line or the line above. Directive-hygiene and stalesuppress
// findings are never suppressible: the remedy is fixing or deleting the
// directive itself.
func (d *directives) filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, dg := range diags {
		if dg.Check != "directive" && dg.Check != "stalesuppress" && d.suppressed(dg) {
			continue
		}
		out = append(out, dg)
	}
	return out
}

func (d *directives) suppressed(dg Diagnostic) bool {
	for path, byLine := range d.allow {
		if !strings.HasSuffix(path, dg.File) {
			continue
		}
		for _, line := range []int{dg.Line, dg.Line - 1} {
			for _, a := range byLine[line] {
				if a.check == dg.Check {
					a.used = true
					return true
				}
			}
		}
	}
	return false
}
