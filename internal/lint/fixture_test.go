package lint

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"
)

// fixtureExports resolves export data once for every fixture test; go list
// is module-aware, so resolution runs from the repository root. rngutil is
// included so the rngshare fixture can exercise module stream types.
var fixtureExports = sync.OnceValues(func() (map[string]string, error) {
	return LoadExports("../..", "time", "math/rand", "sort", "e2clab/internal/rngutil")
})

// expectation is one parsed `// want "regex"` marker. The optional signed
// offset after want shifts the expected line, for diagnostics whose anchor
// (a doc-comment directive, say) cannot carry a trailing comment itself:
// `// want -1 "re"` on line L expects a finding on line L-1.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var (
	wantMarker = regexp.MustCompile(`\bwant((?:\s+-?\d+)?(?:\s+"[^"]*")+)`)
	wantOffset = regexp.MustCompile(`^\s*(-?\d+)`)
	wantQuoted = regexp.MustCompile(`"([^"]*)"`)
)

// collectWants parses every want marker in the fixture's comments.
func collectWants(t *testing.T, fset *token.FileSet, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantMarker.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				rest := m[1]
				if om := wantOffset.FindStringSubmatch(rest); om != nil {
					off, _ := strconv.Atoi(om[1])
					line += off
					rest = rest[len(om[0]):]
				}
				for _, qm := range wantQuoted.FindAllStringSubmatch(rest, -1) {
					re, err := regexp.Compile(qm[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, qm[1], err)
					}
					wants = append(wants, &expectation{
						file: filepath.Base(pos.Filename),
						line: line,
						re:   re,
					})
				}
			}
		}
	}
	return wants
}

// fixtureOpts positions a testdata package inside the configuration axes a
// real module package would occupy.
type fixtureOpts struct {
	det     bool // member of the deterministic-package set
	kernel  bool // member of the kernel-package set (kernelsync)
	noalloc bool // run the compile-backed noalloc/noallocclosure checks
}

// runFixture analyzes one testdata package and matches its diagnostics
// against the want markers: every finding needs a marker on its line and
// every marker needs a finding, so both false positives and false
// negatives fail the test.
func runFixture(t *testing.T, name string, opt fixtureOpts) {
	t.Helper()
	exports, err := fixtureExports()
	if err != nil {
		t.Fatalf("resolving stdlib export data: %v", err)
	}
	fset := token.NewFileSet()
	prog, pkg, err := LoadDir(fset, filepath.Join("testdata", name), exports, opt.det)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	pkg.Kernel = opt.kernel
	cfg := Config{SkipNoAlloc: !opt.noalloc}
	diags := AnalyzePackage(prog, pkg, &cfg)
	wants := collectWants(t, fset, pkg)

	for _, dg := range diags {
		text := dg.Check + ": " + dg.Message
		matched := false
		for _, w := range wants {
			if w.hit || w.file != dg.File || w.line != dg.Line || !w.re.MatchString(text) {
				continue
			}
			w.hit = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("unexpected finding: %s", dg)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestWallclockFixture(t *testing.T)  { runFixture(t, "wallclock", fixtureOpts{}) }
func TestGlobalrandFixture(t *testing.T) { runFixture(t, "globalrand", fixtureOpts{}) }
func TestMaprangeFixture(t *testing.T)   { runFixture(t, "maprange", fixtureOpts{det: true}) }
func TestRNGSeedFixture(t *testing.T)    { runFixture(t, "rngseed", fixtureOpts{}) }
func TestGoroutineFixture(t *testing.T)  { runFixture(t, "goroutine", fixtureOpts{det: true}) }
func TestDirectiveFixture(t *testing.T)  { runFixture(t, "directive", fixtureOpts{det: true}) }
func TestRNGShareFixture(t *testing.T)   { runFixture(t, "rngshare", fixtureOpts{det: true}) }
func TestKernelSyncFixture(t *testing.T) { runFixture(t, "kernelsync", fixtureOpts{kernel: true}) }
func TestSchemaFixture(t *testing.T)     { runFixture(t, "schema", fixtureOpts{}) }
func TestStaleFixture(t *testing.T)      { runFixture(t, "stalesuppress", fixtureOpts{det: true}) }

// TestNoAllocFixture and TestNoAllocClosureFixture shell out to go tool
// compile, so they exercise the real escape-analysis and inlining-fact
// paths end to end.
func TestNoAllocFixture(t *testing.T) { runFixture(t, "noalloc", fixtureOpts{noalloc: true}) }
func TestNoAllocClosureFixture(t *testing.T) {
	runFixture(t, "noallocclosure", fixtureOpts{noalloc: true})
}

// TestNonDeterministicScope pins the scoping rule: outside the
// deterministic set, maprange and goroutine stay quiet while the
// module-wide checks still fire.
func TestNonDeterministicScope(t *testing.T) {
	exports, err := fixtureExports()
	if err != nil {
		t.Fatalf("resolving stdlib export data: %v", err)
	}
	fset := token.NewFileSet()
	prog, pkg, err := LoadDir(fset, filepath.Join("testdata", "goroutine"), exports, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{SkipNoAlloc: true}
	for _, dg := range AnalyzePackage(prog, pkg, &cfg) {
		t.Errorf("non-deterministic package should produce no findings, got: %s", dg)
	}
}

// TestRepoLintsClean locks the gate green: the repository itself must
// produce zero findings, with every intentional exception suppressed in
// place. This is the self-run the CI gate relies on.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis is too slow for -short")
	}
	diags, err := Run(Config{Dir: "../.."})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, dg := range diags {
		t.Errorf("repository finding (fix it or suppress with a reason): %s", dg)
	}
}
