package scenario

import (
	"e2clab/internal/config"
	"e2clab/internal/plantnet"
)

// PaperScenario is the paper's 42-node Section IV deployment as a
// declarative scenario: 40 edge gateways behind a metropolitan fiber
// uplink feeding 2 engine replicas in the cloud, 80 simultaneous requests.
func PaperScenario() Scenario {
	return Scenario{
		Name:     "paper-42-nodes",
		Replicas: 2,
		Pools:    plantnet.Baseline,
		Gateways: []GatewayClass{
			{Name: "fiber", Count: 40, DelayMS: 2, RateGbps: 10},
		},
		ClientsPerGateway: 2,
	}
}

// StandardSuite is the built-in campaign `experiments suite` runs: the
// paper's deployment plus topology, degradation, simulated-network,
// heterogeneity, placement, and workload-shape variations of it — nine
// ready-made edge-to-cloud scenarios.
func StandardSuite(durationSeconds float64, repeats int, seed int64) Suite {
	base := PaperScenario()

	// Topology sweep: the spring-peak growth question of Figure 2 — what
	// happens when the gateway estate doubles?
	sweep := GatewaySweep(base, []int{40, 80})

	// Netem degradation: a congested metro backbone and a lossy uplink.
	degraded := DegradationSweep(base, []Degradation{
		{Name: "slow-backbone", Rules: []config.NetworkRule{
			{Src: "fog", Dst: "cloud", DelayMS: 150, RateGbps: 0.1, Symmetric: true},
		}},
		{Name: "lossy-uplink", Rules: []config.NetworkRule{
			{Src: "edge", Dst: "fog", DelayMS: 30, LossPct: 5, Symmetric: true},
		}},
	})

	// Heterogeneous gateway mix: fiber sites, LTE sites, and two remote
	// satellite-backhauled sites.
	hetero := MixSweep(base, map[string][]GatewayClass{
		"hetero": {
			{Name: "fiber", Count: 24, DelayMS: 2, RateGbps: 10},
			{Name: "lte", Count: 14, DelayMS: 45, RateGbps: 0.05},
			{Name: "sat", Count: 2, DelayMS: 550, RateGbps: 0.02, LossPct: 1},
		},
	})

	// The congested backbone again, but with the network folded into the
	// event kernel: 80 clients' uploads share the 0.1 Gbps fog-cloud pipe,
	// so the response time includes the queueing the analytical
	// slow-backbone row cannot see.
	simnet := clone(base)
	simnet.Name = "slow-backbone-simnet"
	simnet.NetworkModel = "simulated"
	simnet.Degradation = []config.NetworkRule{
		{Src: "fog", Dst: "cloud", DelayMS: 150, RateGbps: 0.1, Symmetric: true},
	}

	// Placement: the engine offloaded to the fog tier (one hop closer,
	// but a single replica on weaker nodes).
	fog := clone(base)
	fog.Name = "fog-offload"
	fog.EngineLayer = "fog"
	fog.Replicas = 1

	// Workload shapes: the identification bursts of the spring peak and a
	// day-long diurnal cycle.
	shapes := ShapeSweep(base, []Shape{
		{Kind: "bursty"},
		{Kind: "diurnal"},
	})

	var scenarios []Scenario
	scenarios = append(scenarios, sweep...)
	scenarios = append(scenarios, degraded...)
	scenarios = append(scenarios, simnet)
	scenarios = append(scenarios, hetero...)
	scenarios = append(scenarios, fog)
	scenarios = append(scenarios, shapes...)

	return Suite{
		Name:            "plantnet-continuum",
		Seed:            seed,
		DurationSeconds: durationSeconds,
		Repeats:         repeats,
		Scenarios:       scenarios,
	}
}
