package scenario

import (
	"e2clab/internal/config"
	"e2clab/internal/fault"
	"e2clab/internal/plantnet"
	"e2clab/internal/resilience"
	"e2clab/internal/workload"
)

// PaperScenario is the paper's 42-node Section IV deployment as a
// declarative scenario: 40 edge gateways behind a metropolitan fiber
// uplink feeding 2 engine replicas in the cloud, 80 simultaneous requests.
func PaperScenario() Scenario {
	return Scenario{
		Name:     "paper-42-nodes",
		Replicas: 2,
		Pools:    plantnet.Baseline,
		Gateways: []GatewayClass{
			{Name: "fiber", Count: 40, DelayMS: 2, RateGbps: 10},
		},
		ClientsPerGateway: 2,
	}
}

// StandardSuite is the built-in campaign `experiments suite` runs: the
// paper's deployment plus topology, degradation, simulated-network,
// heterogeneity, placement, workload-shape, fault-injection, resilience-
// policy, packet-transport, and trace-driven variations of it — fourteen
// ready-made edge-to-cloud scenarios.
func StandardSuite(durationSeconds float64, repeats int, seed int64) Suite {
	base := PaperScenario()

	// Topology sweep: the spring-peak growth question of Figure 2 — what
	// happens when the gateway estate doubles?
	sweep := GatewaySweep(base, []int{40, 80})

	// Netem degradation: a congested metro backbone and a lossy uplink.
	degraded := DegradationSweep(base, []Degradation{
		{Name: "slow-backbone", Rules: []config.NetworkRule{
			{Src: "fog", Dst: "cloud", DelayMS: 150, RateGbps: 0.1, Symmetric: true},
		}},
		{Name: "lossy-uplink", Rules: []config.NetworkRule{
			{Src: "edge", Dst: "fog", DelayMS: 30, LossPct: 5, Symmetric: true},
		}},
	})

	// Heterogeneous gateway mix: fiber sites, LTE sites, and two remote
	// satellite-backhauled sites.
	hetero := MixSweep(base, map[string][]GatewayClass{
		"hetero": {
			{Name: "fiber", Count: 24, DelayMS: 2, RateGbps: 10},
			{Name: "lte", Count: 14, DelayMS: 45, RateGbps: 0.05},
			{Name: "sat", Count: 2, DelayMS: 550, RateGbps: 0.02, LossPct: 1},
		},
	})

	// The congested backbone again, but with the network folded into the
	// event kernel: 80 clients' uploads share the 0.1 Gbps fog-cloud pipe,
	// so the response time includes the queueing the analytical
	// slow-backbone row cannot see.
	simnet := clone(base)
	simnet.Name = "slow-backbone-simnet"
	simnet.NetworkModel = "simulated"
	simnet.Degradation = []config.NetworkRule{
		{Src: "fog", Dst: "cloud", DelayMS: 150, RateGbps: 0.1, Symmetric: true},
	}

	// Placement: the engine offloaded to the fog tier (one hop closer,
	// but a single replica on weaker nodes).
	fog := clone(base)
	fog.Name = "fog-offload"
	fog.EngineLayer = "fog"
	fog.Replicas = 1

	// Workload shapes: the identification bursts of the spring peak and a
	// day-long diurnal cycle.
	shapes := ShapeSweep(base, []Shape{
		{Kind: "bursty"},
		{Kind: "diurnal"},
	})

	// Robustness axis: the paper deployment on the simulated network under
	// escalating fault schedules — occasional gateway churn versus churn
	// plus a replica crash and a flapping uplink.
	chaosBase := clone(base)
	chaosBase.Name = "chaos"
	chaosBase.NetworkModel = "simulated"
	chaos := FaultSweep(chaosBase, []FaultProfile{
		{Name: "light", Spec: &fault.Spec{
			GatewayChurn: &fault.Churn{MeanUpSeconds: 120, MeanDownSeconds: 15, Gateways: 8},
		}},
		{Name: "heavy", Spec: &fault.Spec{
			GatewayChurn:   &fault.Churn{MeanUpSeconds: 45, MeanDownSeconds: 20},
			ReplicaCrashes: []fault.Crash{{Replica: 1, AtSeconds: 30, RecoverAfterSeconds: 20}},
			LinkFlaps:      []fault.Flap{{Gateway: 0, FirstAtSeconds: 15, DownSeconds: 5, PeriodSeconds: 40}},
		}},
	})

	// Availability axis: the heavy chaos schedule re-run under a
	// resilience policy — bounded jittered retries plus gateway failover —
	// so the suite table shows what the policy buys (availability, goodput)
	// and what it costs (re-routed uplink time) under identical faults.
	resilient := clone(chaos[1])
	resilient.Name = "chaos-heavy-resilient"
	resilient.Resilience = &resilience.Policy{
		TimeoutSeconds: 8,
		Retry:          &resilience.Retry{Max: 3, BaseDelaySeconds: 0.25, MaxDelaySeconds: 4},
		Failover:       true,
	}

	// The lossy uplink again under packetized TCP-like transport: per-packet
	// loss and congestion backoff instead of whole-payload resend.
	packet := clone(base)
	packet.Name = "lossy-uplink-packet"
	packet.NetworkModel = "packet"
	packet.Degradation = []config.NetworkRule{
		{Src: "edge", Dst: "fog", DelayMS: 30, LossPct: 5, Symmetric: true},
	}

	// Trace-driven load: a recorded spring-day surge replayed open-loop.
	traces := TraceSweep(base, []NamedTrace{
		{Name: "spring-surge", Trace: &workload.Trace{
			BinSeconds: 30,
			Counts:     []float64{150, 300, 600, 450, 240, 120},
		}},
	})

	var scenarios []Scenario
	scenarios = append(scenarios, sweep...)
	scenarios = append(scenarios, degraded...)
	scenarios = append(scenarios, simnet)
	scenarios = append(scenarios, hetero...)
	scenarios = append(scenarios, fog)
	scenarios = append(scenarios, shapes...)
	scenarios = append(scenarios, chaos...)
	scenarios = append(scenarios, resilient)
	scenarios = append(scenarios, packet)
	scenarios = append(scenarios, traces...)

	return Suite{
		Name:            "plantnet-continuum",
		Seed:            seed,
		DurationSeconds: durationSeconds,
		Repeats:         repeats,
		Scenarios:       scenarios,
	}
}
