package scenario

import (
	"fmt"
	"sort"

	"e2clab/internal/config"
	"e2clab/internal/fault"
	"e2clab/internal/resilience"
	"e2clab/internal/workload"
)

// Generators expand one base scenario into a parameterized family — the
// "topology sweeps, heterogeneous gateway mixes, netem degradation
// profiles, and workload shapes" axes of an experiment campaign. Each
// generator returns fresh scenarios with derived names so a Suite can
// concatenate families from several axes.

// GatewaySweep scales the base scenario's total gateway count across the
// given values, preserving the relative mix of gateway classes. Counts are
// apportioned by largest remainder so they sum to exactly the requested
// total (which the "-<n>gw" name suffix claims), except that every class
// keeps at least one gateway.
func GatewaySweep(base Scenario, totals []int) []Scenario {
	baseTotal := base.TotalGateways()
	out := make([]Scenario, 0, len(totals))
	for _, total := range totals {
		s := clone(base)
		s.Name = fmt.Sprintf("%s-%dgw", base.Name, total)
		if baseTotal > 0 && total > 0 {
			counts := make([]int, len(s.Gateways))
			order := make([]int, len(s.Gateways))
			sum := 0
			for i, g := range s.Gateways {
				counts[i] = g.Count * total / baseTotal
				order[i] = i
				sum += counts[i]
			}
			// Hand the leftover units (< #classes) to the largest
			// fractional remainders, lowest index first on ties.
			sort.SliceStable(order, func(a, b int) bool {
				ra := s.Gateways[order[a]].Count * total % baseTotal
				rb := s.Gateways[order[b]].Count * total % baseTotal
				return ra > rb
			})
			for j := 0; j < total-sum; j++ {
				counts[order[j]]++
			}
			for i := range counts {
				if counts[i] < 1 {
					counts[i] = 1
				}
				s.Gateways[i].Count = counts[i]
			}
		}
		out = append(out, s)
	}
	return out
}

// PlacementSweep emits one scenario per engine placement ("cloud", "fog"),
// with "-on-<layer>" name suffixes — the layer-placement axis of the
// continuum ("where should the workflow components be executed?").
func PlacementSweep(base Scenario, layers ...string) []Scenario {
	if len(layers) == 0 {
		layers = []string{"cloud", "fog"}
	}
	out := make([]Scenario, 0, len(layers))
	for _, l := range layers {
		s := clone(base)
		s.Name = fmt.Sprintf("%s-on-%s", base.Name, l)
		s.EngineLayer = l
		out = append(out, s)
	}
	return out
}

// MixSweep replaces the base scenario's gateway tier with each given mix of
// classes (heterogeneous uplinks). Names get a "-<mixName>" suffix.
func MixSweep(base Scenario, mixes map[string][]GatewayClass) []Scenario {
	out := make([]Scenario, 0, len(mixes))
	for _, name := range sortedKeys(mixes) {
		s := clone(base)
		s.Name = fmt.Sprintf("%s-%s", base.Name, name)
		s.Gateways = append([]GatewayClass(nil), mixes[name]...)
		out = append(out, s)
	}
	return out
}

// Degradation is a named netem profile: extra latency/loss/rate rules
// applied between layers on top of the gateway uplinks.
type Degradation struct {
	Name  string               `json:"name"`
	Rules []config.NetworkRule `json:"rules"`
}

// DegradationSweep applies each profile to the base scenario, appending its
// rules to any the base already carries. Names get a "-<profile>" suffix.
func DegradationSweep(base Scenario, profiles []Degradation) []Scenario {
	out := make([]Scenario, 0, len(profiles))
	for _, p := range profiles {
		s := clone(base)
		s.Name = fmt.Sprintf("%s-%s", base.Name, p.Name)
		s.Degradation = append(append([]config.NetworkRule(nil), base.Degradation...), p.Rules...)
		out = append(out, s)
	}
	return out
}

// ShapeSweep emits one scenario per workload shape, named "-<kind>".
func ShapeSweep(base Scenario, shapes []Shape) []Scenario {
	out := make([]Scenario, 0, len(shapes))
	for _, sh := range shapes {
		s := clone(base)
		s.Name = fmt.Sprintf("%s-%s", base.Name, sh.kind())
		s.Workload = sh
		out = append(out, s)
	}
	return out
}

// FaultProfile is a named fault schedule — the unit of the robustness
// axis ("how does the deployment degrade under churn, crashes, and link
// failures?").
type FaultProfile struct {
	Name string      `json:"name"`
	Spec *fault.Spec `json:"spec"`
}

// FaultSweep applies each fault profile to the base scenario, replacing
// any schedule the base carries. Names get a "-<profile>" suffix; specs
// are deep-copied so profiles stay independent across the family.
func FaultSweep(base Scenario, profiles []FaultProfile) []Scenario {
	out := make([]Scenario, 0, len(profiles))
	for _, p := range profiles {
		s := clone(base)
		s.Name = fmt.Sprintf("%s-%s", base.Name, p.Name)
		if p.Spec != nil {
			spec := p.Spec.Clone()
			s.Faults = &spec
		} else {
			s.Faults = nil
		}
		out = append(out, s)
	}
	return out
}

// ResilienceProfile is a named resilience policy — the unit of the
// availability axis ("which client/routing policy meets the SLO under
// this fault schedule, and at what cost?").
type ResilienceProfile struct {
	Name   string             `json:"name"`
	Policy *resilience.Policy `json:"policy"`
}

// ResilienceSweep applies each policy to the base scenario, replacing any
// policy the base carries (the fault schedule is kept, so the family
// compares policies under identical chaos). Names get a "-<profile>"
// suffix; policies are deep-copied so profiles stay independent across
// the family.
func ResilienceSweep(base Scenario, profiles []ResilienceProfile) []Scenario {
	out := make([]Scenario, 0, len(profiles))
	for _, p := range profiles {
		s := clone(base)
		s.Name = fmt.Sprintf("%s-%s", base.Name, p.Name)
		s.Resilience = p.Policy.Clone()
		out = append(out, s)
	}
	return out
}

// NamedTrace is a recorded workload trace with a display name.
type NamedTrace struct {
	Name  string          `json:"name"`
	Trace *workload.Trace `json:"trace"`
}

// TraceSweep drives the base scenario with each recorded trace (the
// trace-driven-load axis). Names get a "-<trace>" suffix; the workload
// shape is replaced wholesale with the trace's continuous form.
func TraceSweep(base Scenario, traces []NamedTrace) []Scenario {
	out := make([]Scenario, 0, len(traces))
	for _, nt := range traces {
		s := clone(base)
		s.Name = fmt.Sprintf("%s-%s", base.Name, nt.Name)
		var tr *workload.Trace
		if nt.Trace != nil {
			c := nt.Trace.Clone()
			tr = &c
		}
		s.Workload = Shape{Kind: "trace", Trace: tr}
		out = append(out, s)
	}
	return out
}

// clone deep-copies the slices and pointers a generator mutates.
func clone(s Scenario) Scenario {
	s.Gateways = append([]GatewayClass(nil), s.Gateways...)
	s.Degradation = append([]config.NetworkRule(nil), s.Degradation...)
	if s.Faults != nil {
		spec := s.Faults.Clone()
		s.Faults = &spec
	}
	s.Resilience = s.Resilience.Clone()
	if s.Workload.Trace != nil {
		tr := s.Workload.Trace.Clone()
		s.Workload.Trace = &tr
	}
	return s
}

func sortedKeys(m map[string][]GatewayClass) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
