package scenario

import (
	"math"
	"path/filepath"
	"testing"

	"e2clab/internal/config"
)

// TestNetworkModelEquivalenceNoContention: under zero contention (one
// client per gateway, unconstrained backhaul) the simulated network mode's
// user response time converges to the analytical figure — engine mean plus
// netem.TransferSeconds path cost.
func TestNetworkModelEquivalenceNoContention(t *testing.T) {
	sc := Scenario{
		Name: "equiv",
		Gateways: []GatewayClass{
			// Slow enough that the network share is substantial (~0.5 s of
			// a ~3.2 s response), but one client per gateway keeps every
			// uplink contention-free.
			{Name: "dsl", Count: 2, DelayMS: 50, RateGbps: 0.05},
		},
		ClientsPerGateway: 1,
		Degradation: []config.NetworkRule{
			{Src: "fog", Dst: "cloud", DelayMS: 10, Symmetric: true}, // delay-only: cannot queue
		},
		DurationSeconds: 300,
	}
	ana, err := sc.Run(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim := sc
	sim.NetworkModel = "simulated"
	simRes, err := sim.Run(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ana.NetModel != "analytical" || simRes.NetModel != "simulated" {
		t.Errorf("NetModel labels: %q / %q", ana.NetModel, simRes.NetModel)
	}
	if ana.NetOverheadSec <= 0.3 {
		t.Fatalf("test scenario's network share too small to be meaningful: %v", ana.NetOverheadSec)
	}
	if rel := math.Abs(simRes.RespMean-ana.RespMean) / ana.RespMean; rel > 0.05 {
		t.Errorf("simulated %0.4f vs analytical %0.4f: relative gap %.3f > 5%%",
			simRes.RespMean, ana.RespMean, rel)
	}
	// Both modes report the same closed-form reference figure.
	if math.Float64bits(simRes.NetOverheadSec) != math.Float64bits(ana.NetOverheadSec) {
		t.Errorf("NetOverheadSec differs: %v vs %v", simRes.NetOverheadSec, ana.NetOverheadSec)
	}
}

// TestNetworkModelQueueingChangesResult: a congested shared backhaul makes
// the simulated response time exceed the analytical one by far more than
// the closed-form transfer cost — the result class the paper's Table-style
// comparisons get wrong without gateway queueing.
func TestNetworkModelQueueingChangesResult(t *testing.T) {
	sc := Scenario{
		Name: "congested",
		Gateways: []GatewayClass{
			{Name: "fiber", Count: 20, DelayMS: 2, RateGbps: 10},
		},
		ClientsPerGateway: 2,
		Degradation: []config.NetworkRule{
			// 40 clients' 1.2 MB uploads share 100 Mbps: ~0.1 s each solo,
			// heavily queued in aggregate.
			{Src: "fog", Dst: "cloud", DelayMS: 50, RateGbps: 0.1, Symmetric: true},
		},
		DurationSeconds: 240,
	}
	ana, err := sc.Run(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim := sc
	sim.NetworkModel = "simulated"
	simRes, err := sim.Run(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if simRes.RespMean <= ana.RespMean*1.05 {
		t.Errorf("congested backhaul: simulated %0.3f not above analytical %0.3f — queueing missing",
			simRes.RespMean, ana.RespMean)
	}
}

// Pinned values for TestSimulatedScenarioGoldenPin, captured from the PR
// that introduced simulated network mode.
const (
	goldenCompleted  = 3257
	goldenRespMean   = 1.4544114799658154
	goldenStd        = 0.017059826163184643
	goldenP95        = 1.8368484686733819
	goldenThroughput = 13.761111111111111
)

// TestSimulatedScenarioGoldenPin pins one simulated-mode fixed-seed
// scenario bit-for-bit. If this fails, the simulated network path's
// determinism contract (seeded link RNG, (time, seq) event order, fixed
// aggregation order) has drifted — understand the reordering before
// updating the values.
func TestSimulatedScenarioGoldenPin(t *testing.T) {
	sc := Scenario{
		Name:         "golden-simnet",
		NetworkModel: "simulated",
		Gateways: []GatewayClass{
			{Name: "fiber", Count: 6, DelayMS: 2, RateGbps: 10},
			{Name: "lte", Count: 4, DelayMS: 45, RateGbps: 0.05, LossPct: 1},
		},
		ClientsPerGateway: 2,
		Degradation: []config.NetworkRule{
			{Src: "fog", Dst: "cloud", DelayMS: 20, RateGbps: 0.5, Symmetric: true},
		},
		DurationSeconds: 120,
		Repeats:         2,
	}
	r, err := sc.Run(77, 1)
	if err != nil {
		t.Fatal(err)
	}
	exact := func(field string, got, want float64) {
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s = %.17g, want %.17g (bit-exact)", field, got, want)
		}
	}
	if r.Completed != goldenCompleted {
		t.Errorf("Completed = %d, want %d", r.Completed, goldenCompleted)
	}
	exact("RespMean", r.RespMean, goldenRespMean)
	exact("EngineResp.StdDev", r.EngineResp.StdDev, goldenStd)
	exact("RespP95", r.RespP95, goldenP95)
	exact("Throughput", r.Throughput, goldenThroughput)
}

// TestSimulatedUnreachableScenarioFails: the +Inf reachability gate applies
// in simulated mode too — a fully lossy path must fail up front, not
// strand every request on a black-hole link for the whole run.
func TestSimulatedUnreachableScenarioFails(t *testing.T) {
	sc := Scenario{
		Name:         "dead-uplink-simnet",
		NetworkModel: "simulated",
		Gateways:     []GatewayClass{{Name: "g", Count: 2, DelayMS: 10, LossPct: 40}},
		Degradation: []config.NetworkRule{
			{Src: "edge", Dst: "fog", LossPct: 100, Symmetric: true},
		},
		DurationSeconds: 60,
	}
	if _, err := sc.Run(1, 1); err == nil {
		t.Fatal("unreachable simulated scenario ran successfully")
	}
}

// TestSuiteCheckpointInvalidatedByNetworkModelChange: flipping the network
// model — at the suite level — changes every affected scenario's
// fingerprint, so a resumed campaign re-runs instead of silently mixing
// analytical and simulated results.
func TestSuiteCheckpointInvalidatedByNetworkModelChange(t *testing.T) {
	s := testSuite()
	ckpt := filepath.Join(t.TempDir(), "suite.json")
	mustRun(t, s, Options{Parallel: 1, CheckpointPath: ckpt})

	s.NetworkModel = "simulated"
	sr := mustRun(t, s, Options{Parallel: 1, CheckpointPath: ckpt})
	if sr.Resumed != 0 || sr.Executed != len(s.Scenarios) {
		t.Errorf("model change not fingerprinted: executed=%d resumed=%d", sr.Executed, sr.Resumed)
	}

	// An explicit "analytical" fingerprints identically to the default, so
	// the (re-written, simulated) checkpoint is again fully invalidated —
	// and a default rerun after THAT resumes nothing from it either.
	s.NetworkModel = "analytical"
	sr = mustRun(t, s, Options{Parallel: 1, CheckpointPath: ckpt})
	if sr.Resumed != 0 {
		t.Errorf("analytical rerun resumed %d scenarios from a simulated checkpoint", sr.Resumed)
	}
	// Now the checkpoint is analytical; the spelled-out default must resume
	// everything (normalization makes "" and "analytical" the same spec).
	s.NetworkModel = ""
	sr = mustRun(t, s, Options{Parallel: 1, CheckpointPath: ckpt})
	if sr.Resumed != len(s.Scenarios) || sr.Executed != 0 {
		t.Errorf("default rerun after analytical: executed=%d resumed=%d", sr.Executed, sr.Resumed)
	}
}

// TestContinuousShapeScenario: a continuous bursty shape lowers to one
// piecewise-rate run (queue state carries across phases) and stays
// deterministic and resumable like everything else.
func TestContinuousShapeScenario(t *testing.T) {
	sc := Scenario{
		Name:              "burst-cont",
		Gateways:          []GatewayClass{{Name: "g", Count: 10, DelayMS: 2, RateGbps: 10}},
		ClientsPerGateway: 2,
		Workload:          Shape{Kind: "bursty", Phases: 4, Continuous: true},
		DurationSeconds:   240,
	}
	a, err := sc.Run(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Phases != 4 {
		t.Errorf("Phases = %d, want 4 (the shape's resolution)", a.Phases)
	}
	if a.Completed == 0 || a.Throughput <= 0 {
		t.Errorf("continuous run produced nothing: %+v", a)
	}
	b, err := sc.Run(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.RespMean) != math.Float64bits(b.RespMean) || a.Completed != b.Completed {
		t.Error("continuous scenario not deterministic for a fixed seed")
	}
	// Continuous + simulated network compose.
	both := sc
	both.NetworkModel = "simulated"
	r, err := both.Run(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Error("continuous+simulated run produced nothing")
	}
	if bad := (Shape{RatePerClient: -1}); bad.Validate() == nil {
		t.Error("negative rate_per_client accepted")
	}
}

// TestSimulatedSuiteParallelDeterminism: a suite mixing analytical and
// simulated scenarios keeps the bit-identical-at-any-parallelism contract.
func TestSimulatedSuiteParallelDeterminism(t *testing.T) {
	s := testSuite()
	s.NetworkModel = "simulated"
	seq, err := RunSuite(s, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSuite(s, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Results {
		if seq.Errs[i] != nil || par.Errs[i] != nil {
			t.Fatalf("scenario %d failed: %v / %v", i, seq.Errs[i], par.Errs[i])
		}
		if math.Float64bits(seq.Results[i].RespMean) != math.Float64bits(par.Results[i].RespMean) {
			t.Errorf("scenario %d: simulated RespMean differs across parallelism", i)
		}
	}
	if ComparisonTable(seq).String() != ComparisonTable(par).String() {
		t.Error("simulated-mode comparison tables differ between sequential and parallel runs")
	}
}
