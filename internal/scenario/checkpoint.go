package scenario

import "e2clab/internal/tune"

// checkpointField is one ordered slot of the Result checkpoint layout: the
// Result field it carries (Name is the exact selector path, verified
// against the get/set bodies by the simlint schema analyzer) and the
// accessors encode/decode use. The layout is the single source of truth
// for the checkpoint wire format — its length replaces the old magic
// report count, and its order IS the on-disk order, so reordering or
// removing an entry invalidates every existing checkpoint (decode rejects
// the stale length/shape and the suite re-runs the scenario).
type checkpointField struct {
	Name string
	get  func(r *Result) float64
	set  func(r *Result, v float64)
}

// checkpointOmission names a Result field deliberately absent from the
// checkpoint layout, with the reason it need not survive a resume. The
// schema analyzer requires every Result field to appear in exactly one of
// checkpointLayout and checkpointOmitted, so a new counter cannot be
// forgotten silently.
type checkpointOmission struct {
	Field  string
	Reason string
}

// checkpointLayout is the ordered Result checkpoint schema. Appending a
// field grows the layout (old checkpoints are rejected as stale by the
// length check in decodeResult and re-run); the simlint schema analyzer
// cross-checks the layout against the Result struct and the render tables,
// so a field added in one place but not the others is a lint failure, not
// a silent drift.
var checkpointLayout = []checkpointField{
	{"Gateways",
		func(r *Result) float64 { return float64(r.Gateways) },
		func(r *Result, v float64) { r.Gateways = int(v) }},
	{"Clients",
		func(r *Result) float64 { return float64(r.Clients) },
		func(r *Result, v float64) { r.Clients = int(v) }},
	{"Phases",
		func(r *Result) float64 { return float64(r.Phases) },
		func(r *Result, v float64) { r.Phases = int(v) }},
	{"EngineResp.N",
		func(r *Result) float64 { return float64(r.EngineResp.N) },
		func(r *Result, v float64) { r.EngineResp.N = int(v) }},
	{"EngineResp.Mean",
		func(r *Result) float64 { return r.EngineResp.Mean },
		func(r *Result, v float64) { r.EngineResp.Mean = v }},
	{"EngineResp.StdDev",
		func(r *Result) float64 { return r.EngineResp.StdDev },
		func(r *Result, v float64) { r.EngineResp.StdDev = v }},
	{"EngineResp.Min",
		func(r *Result) float64 { return r.EngineResp.Min },
		func(r *Result, v float64) { r.EngineResp.Min = v }},
	{"EngineResp.Max",
		func(r *Result) float64 { return r.EngineResp.Max },
		func(r *Result, v float64) { r.EngineResp.Max = v }},
	{"NetOverheadSec",
		func(r *Result) float64 { return r.NetOverheadSec },
		func(r *Result, v float64) { r.NetOverheadSec = v }},
	{"RespMean",
		func(r *Result) float64 { return r.RespMean },
		func(r *Result, v float64) { r.RespMean = v }},
	{"RespP95",
		func(r *Result) float64 { return r.RespP95 },
		func(r *Result, v float64) { r.RespP95 = v }},
	{"Throughput",
		func(r *Result) float64 { return r.Throughput },
		func(r *Result, v float64) { r.Throughput = v }},
	{"Completed",
		func(r *Result) float64 { return float64(r.Completed) },
		func(r *Result, v float64) { r.Completed = int(v) }},
	{"FaultGatewayFailures",
		func(r *Result) float64 { return float64(r.FaultGatewayFailures) },
		func(r *Result, v float64) { r.FaultGatewayFailures = int(v) }},
	{"FaultCrashRequeues",
		func(r *Result) float64 { return float64(r.FaultCrashRequeues) },
		func(r *Result, v float64) { r.FaultCrashRequeues = int(v) }},
	{"FaultCrashFailures",
		func(r *Result) float64 { return float64(r.FaultCrashFailures) },
		func(r *Result, v float64) { r.FaultCrashFailures = int(v) }},
	{"FaultDropped",
		func(r *Result) float64 { return float64(r.FaultDropped) },
		func(r *Result, v float64) { r.FaultDropped = int(v) }},
	{"Failed",
		func(r *Result) float64 { return float64(r.Failed) },
		func(r *Result, v float64) { r.Failed = int(v) }},
	{"Retries",
		func(r *Result) float64 { return float64(r.Retries) },
		func(r *Result, v float64) { r.Retries = int(v) }},
	{"RetrySuccesses",
		func(r *Result) float64 { return float64(r.RetrySuccesses) },
		func(r *Result, v float64) { r.RetrySuccesses = int(v) }},
	{"Hedges",
		func(r *Result) float64 { return float64(r.Hedges) },
		func(r *Result, v float64) { r.Hedges = int(v) }},
	{"HedgeWins",
		func(r *Result) float64 { return float64(r.HedgeWins) },
		func(r *Result, v float64) { r.HedgeWins = int(v) }},
	{"Rerouted",
		func(r *Result) float64 { return float64(r.Rerouted) },
		func(r *Result, v float64) { r.Rerouted = int(v) }},
	{"Shed",
		func(r *Result) float64 { return float64(r.Shed) },
		func(r *Result, v float64) { r.Shed = int(v) }},
	{"BreakerOpens",
		func(r *Result) float64 { return float64(r.BreakerOpens) },
		func(r *Result, v float64) { r.BreakerOpens = int(v) }},
	{"DeadlineExceeded",
		func(r *Result) float64 { return float64(r.DeadlineExceeded) },
		func(r *Result, v float64) { r.DeadlineExceeded = int(v) }},
	{"Goodput",
		func(r *Result) float64 { return r.Goodput },
		func(r *Result, v float64) { r.Goodput = v }},
	{"Availability",
		func(r *Result) float64 { return r.Availability },
		func(r *Result, v float64) { r.Availability = v }},
}

// checkpointOmitted declares the Result fields the checkpoint does not
// carry. Every entry must name a real field that is not in the layout.
var checkpointOmitted = []checkpointOmission{
	{"Index", "assigned by the suite runner from the trial slot at decode"},
	{"Name", "non-numeric; restored from the scenario spec at decode"},
	{"NetModel", "derived from the spec; the checkpoint fingerprint pins the spec"},
}

// encodeResult flattens a Result into checkpoint reports (all finite) in
// checkpointLayout order.
func encodeResult(r *Result) []tune.Report {
	out := make([]tune.Report, len(checkpointLayout))
	for i, f := range checkpointLayout {
		out[i] = tune.Report{Iteration: i, Value: f.get(r)}
	}
	return out
}

// decodeResult rebuilds a Result from checkpoint reports; ok is false when
// the reports do not carry the layout's exact shape (stale checkpoint
// format — e.g. written before a layout field was added or removed).
func decodeResult(index int, name string, reports []tune.Report) (*Result, bool) {
	if len(reports) != len(checkpointLayout) {
		return nil, false
	}
	r := &Result{Index: index, Name: name}
	for i, rep := range reports {
		if rep.Iteration != i {
			return nil, false
		}
		checkpointLayout[i].set(r, rep.Value)
	}
	return r, true
}
