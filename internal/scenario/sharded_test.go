package scenario

import (
	"path/filepath"
	"reflect"
	"testing"
)

// shardedScenario is a simulated-network scenario eligible for the
// domain-sharded kernel (several gateway classes = several domain shards).
func shardedScenario() Scenario {
	return Scenario{
		Name:         "sharded",
		NetworkModel: "simulated",
		Shards:       2,
		Gateways: []GatewayClass{
			{Name: "fiber", Count: 6, DelayMS: 2, RateGbps: 10},
			{Name: "lte", Count: 4, DelayMS: 45, RateGbps: 0.05, LossPct: 1},
		},
		ClientsPerGateway: 2,
		DurationSeconds:   120,
		Repeats:           2,
	}
}

// TestShardedScenarioWorkerCountInvariant: at the scenario layer too, the
// shard count is only a parallelism knob — Shards 2, 4, and 8 produce
// bit-identical Results.
func TestShardedScenarioWorkerCountInvariant(t *testing.T) {
	ref, err := shardedScenario().Run(21, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Completed == 0 {
		t.Fatal("sharded scenario completed nothing")
	}
	for _, shards := range []int{4, 8} {
		sc := shardedScenario()
		sc.Shards = shards
		r, err := sc.Run(21, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bits(ref), bits(r)) {
			t.Errorf("Shards=%d scenario result diverged from Shards=2", shards)
		}
	}
}

// TestShardedScenarioNormalization: Shards without a simulated network (or
// Shards: 1) resolves to the sequential kernel and fingerprints identically
// to a spec that never mentions shards.
func TestShardedScenarioNormalization(t *testing.T) {
	an := shardedScenario()
	an.NetworkModel = "" // analytical: no network to partition
	d := an.withDefaults()
	if d.Shards != 0 {
		t.Errorf("analytical scenario resolved Shards = %d, want 0", d.Shards)
	}
	one := shardedScenario()
	one.Shards = 1
	if d := one.withDefaults(); d.Shards != 0 {
		t.Errorf("Shards=1 resolved to %d, want 0", d.Shards)
	}
	plain := shardedScenario()
	plain.Shards = 0
	hi1, lo1 := fingerprint(one.withDefaults(), 5)
	hi2, lo2 := fingerprint(plain.withDefaults(), 5)
	if hi1 != hi2 || lo1 != lo2 {
		t.Error("Shards=1 fingerprints differently from the sequential spec")
	}
}

// TestShardedSuiteCheckpointSemantics: retuning the worker count resumes a
// finished campaign untouched (the fingerprint collapses invariant shard
// counts), while switching between the sequential and sharded deterministic
// families re-runs it.
func TestShardedSuiteCheckpointSemantics(t *testing.T) {
	mk := func(shards int) Suite {
		sc := shardedScenario()
		sc.Shards = shards
		return Suite{Name: "sharded-suite", Seed: 3, Scenarios: []Scenario{sc}}
	}
	ckpt := filepath.Join(t.TempDir(), "suite.json")
	first := mustRun(t, mk(2), Options{Parallel: 1, CheckpointPath: ckpt})
	if first.Executed != 1 {
		t.Fatalf("first run executed %d scenarios, want 1", first.Executed)
	}
	// Worker-count change: same family, same bits — resume.
	sr := mustRun(t, mk(8), Options{Parallel: 1, CheckpointPath: ckpt})
	if sr.Resumed != 1 || sr.Executed != 0 {
		t.Errorf("worker-count change: executed=%d resumed=%d, want pure resume", sr.Executed, sr.Resumed)
	}
	if !reflect.DeepEqual(bits(first.Results[0]), bits(sr.Results[0])) {
		t.Error("resumed result differs from the original run")
	}
	// Family switch to sequential: different deterministic family — re-run.
	sr = mustRun(t, mk(0), Options{Parallel: 1, CheckpointPath: ckpt})
	if sr.Executed != 1 || sr.Resumed != 0 {
		t.Errorf("family switch: executed=%d resumed=%d, want full re-run", sr.Executed, sr.Resumed)
	}
}

// TestShardedSuiteDefault: a suite-level Shards applies to scenarios that
// do not set their own.
func TestShardedSuiteDefault(t *testing.T) {
	sc := shardedScenario()
	sc.Shards = 0
	s := Suite{Name: "inherit", Seed: 3, Shards: 4, Scenarios: []Scenario{sc}}
	resolved, err := s.resolved()
	if err != nil {
		t.Fatal(err)
	}
	if resolved[0].Shards != 4 {
		t.Errorf("resolved Shards = %d, want the suite default 4", resolved[0].Shards)
	}
}
