package scenario

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"e2clab/internal/config"
	"e2clab/internal/plantnet"
)

// testSuite is a small but diverse fixed-seed suite: topology sweep,
// degradation, heterogeneous mix, fog placement, and a shaped workload —
// five scenarios, short durations so the whole suite runs in tens of
// milliseconds.
func testSuite() Suite {
	base := Scenario{
		Name:     "base",
		Replicas: 1,
		Pools:    plantnet.Baseline,
		Gateways: []GatewayClass{
			{Name: "fiber", Count: 10, DelayMS: 2, RateGbps: 10},
		},
		ClientsPerGateway: 2,
	}
	scenarios := GatewaySweep(base, []int{10, 20})
	scenarios = append(scenarios, DegradationSweep(base, []Degradation{
		{Name: "lossy", Rules: []config.NetworkRule{
			{Src: "edge", Dst: "fog", DelayMS: 30, LossPct: 5, Symmetric: true},
		}},
	})...)
	fog := base
	fog.Name = "fog-offload"
	fog.EngineLayer = "fog"
	scenarios = append(scenarios, fog)
	scenarios = append(scenarios, ShapeSweep(base, []Shape{{Kind: "bursty", Phases: 2}})...)
	return Suite{
		Name:            "test-suite",
		Seed:            7,
		DurationSeconds: 60,
		Repeats:         2,
		Scenarios:       scenarios,
	}
}

// bits flattens a Result into raw float bits plus ints for bit-exact
// comparison.
func bits(r *Result) []uint64 {
	return []uint64{
		uint64(r.Gateways), uint64(r.Clients), uint64(r.Phases),
		uint64(r.EngineResp.N),
		math.Float64bits(r.EngineResp.Mean), math.Float64bits(r.EngineResp.StdDev),
		math.Float64bits(r.EngineResp.Min), math.Float64bits(r.EngineResp.Max),
		math.Float64bits(r.NetOverheadSec), math.Float64bits(r.RespMean),
		math.Float64bits(r.RespP95), math.Float64bits(r.Throughput),
		uint64(r.Completed),
		uint64(r.FaultGatewayFailures), uint64(r.FaultCrashRequeues),
		uint64(r.FaultCrashFailures), uint64(r.FaultDropped),
		uint64(r.Failed), uint64(r.Retries), uint64(r.RetrySuccesses),
		uint64(r.Hedges), uint64(r.HedgeWins), uint64(r.Rerouted),
		uint64(r.Shed), uint64(r.BreakerOpens), uint64(r.DeadlineExceeded),
		math.Float64bits(r.Goodput), math.Float64bits(r.Availability),
	}
}

func mustRun(t *testing.T, s Suite, opts Options) *SuiteResult {
	t.Helper()
	sr, err := RunSuite(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range sr.Errs {
		if e != nil {
			t.Fatalf("scenario %d failed: %v", i, e)
		}
	}
	return sr
}

func TestSuiteParallelMatchesSequentialBitExact(t *testing.T) {
	s := testSuite()
	if len(s.Scenarios) < 5 {
		t.Fatalf("test suite has %d scenarios, want >= 5", len(s.Scenarios))
	}
	seq := mustRun(t, s, Options{Parallel: 1})
	par := mustRun(t, s, Options{Parallel: 4})
	if len(seq.Results) != len(par.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(seq.Results), len(par.Results))
	}
	for i := range seq.Results {
		if !reflect.DeepEqual(bits(seq.Results[i]), bits(par.Results[i])) {
			t.Errorf("scenario %d (%s): parallel result differs from sequential\nseq: %+v\npar: %+v",
				i, seq.Results[i].Name, seq.Results[i], par.Results[i])
		}
	}
	// The rendered comparison table — the user-facing aggregate — must be
	// byte-identical too.
	if ComparisonTable(seq).String() != ComparisonTable(par).String() {
		t.Error("comparison tables differ between sequential and parallel runs")
	}
}

func TestSuiteInterruptResumeSkipsCompleted(t *testing.T) {
	s := testSuite()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "suite.json")

	// Reference: one uninterrupted run, no checkpoint.
	ref := mustRun(t, s, Options{Parallel: 1})

	// Kill the suite after 2 scenarios.
	const killAfter = 2
	partial, err := RunSuite(s, Options{Parallel: 1, CheckpointPath: ckpt, InterruptAfter: killAfter})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if partial.Executed != killAfter {
		t.Fatalf("executed %d scenarios before the kill, want %d", partial.Executed, killAfter)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written before the kill: %v", err)
	}

	// Resume: completed scenarios must be skipped, the rest executed, and
	// the final aggregates bit-identical to the uninterrupted run.
	var events []string
	resumed, err := RunSuite(s, Options{Parallel: 1, CheckpointPath: ckpt,
		Logger: func(ev string, i int, name string) { events = append(events, ev) }})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != killAfter {
		t.Errorf("resumed %d scenarios from checkpoint, want %d", resumed.Resumed, killAfter)
	}
	if want := len(s.Scenarios) - killAfter; resumed.Executed != want {
		t.Errorf("re-ran %d scenarios, want %d (completed ones must not re-run)", resumed.Executed, want)
	}
	for i := range ref.Results {
		if !reflect.DeepEqual(bits(ref.Results[i]), bits(resumed.Results[i])) {
			t.Errorf("scenario %d (%s): resumed result differs from uninterrupted run",
				i, ref.Results[i].Name)
		}
	}
	if ComparisonTable(ref).String() != ComparisonTable(resumed).String() {
		t.Error("comparison tables differ between uninterrupted and resumed runs")
	}

	// A third run over the now-complete checkpoint re-runs nothing.
	again, err := RunSuite(s, Options{Parallel: 1, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if again.Executed != 0 || again.Resumed != len(s.Scenarios) {
		t.Errorf("complete checkpoint: executed=%d resumed=%d, want 0/%d",
			again.Executed, again.Resumed, len(s.Scenarios))
	}
}

func TestSuiteInterruptBoundHoldsUnderParallelPool(t *testing.T) {
	// The InterruptAfter claim bound is atomic: even with several workers
	// racing, no more than InterruptAfter scenarios execute.
	s := testSuite()
	ckpt := filepath.Join(t.TempDir(), "suite.json")
	partial, err := RunSuite(s, Options{Parallel: 3, CheckpointPath: ckpt, InterruptAfter: 2})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if partial.Executed != 2 {
		t.Errorf("executed %d scenarios, want exactly 2", partial.Executed)
	}
	// Resume with a parallel pool still re-runs only the remainder and
	// matches the uninterrupted aggregates bit-exactly.
	ref := mustRun(t, s, Options{Parallel: 1})
	resumed := mustRun(t, s, Options{Parallel: 3, CheckpointPath: ckpt})
	if resumed.Executed+resumed.Resumed != len(s.Scenarios) || resumed.Resumed != 2 {
		t.Errorf("resume executed=%d resumed=%d", resumed.Executed, resumed.Resumed)
	}
	for i := range ref.Results {
		if !reflect.DeepEqual(bits(ref.Results[i]), bits(resumed.Results[i])) {
			t.Errorf("scenario %d: parallel resumed result differs from sequential uninterrupted run", i)
		}
	}
}

func TestSuiteCheckpointInvalidatedBySeedChange(t *testing.T) {
	s := testSuite()
	ckpt := filepath.Join(t.TempDir(), "suite.json")
	mustRun(t, s, Options{Parallel: 1, CheckpointPath: ckpt})

	// Same suite, different seed: every fingerprint changes, nothing may
	// be resumed from the stale checkpoint.
	s.Seed = 8
	sr := mustRun(t, s, Options{Parallel: 1, CheckpointPath: ckpt})
	if sr.Resumed != 0 || sr.Executed != len(s.Scenarios) {
		t.Errorf("stale checkpoint trusted: executed=%d resumed=%d", sr.Executed, sr.Resumed)
	}
}

func TestSuiteUnreachableScenarioFails(t *testing.T) {
	// A gateway uplink composing with a degradation rule to 100% loss is
	// unreachable: expected transfer time is +Inf (netem fix), and the
	// scenario must fail rather than report a finite response time.
	sc := Scenario{
		Name:     "dead-uplink",
		Gateways: []GatewayClass{{Name: "g", Count: 2, DelayMS: 10, LossPct: 40}},
		Degradation: []config.NetworkRule{
			{Src: "edge", Dst: "fog", LossPct: 100, Symmetric: true},
		},
		DurationSeconds: 60,
	}
	if !math.IsInf(sc.NetworkOverheadSeconds(), 1) {
		t.Fatalf("overhead = %v, want +Inf", sc.NetworkOverheadSeconds())
	}
	if _, err := sc.Run(1, 1); err == nil {
		t.Fatal("unreachable scenario ran successfully")
	}
	// In a suite it fails without sinking the other scenarios.
	s := Suite{Name: "mixed", Seed: 3, DurationSeconds: 60,
		Scenarios: []Scenario{sc, {
			Name:            "alive",
			Gateways:        []GatewayClass{{Name: "g", Count: 2, DelayMS: 2, RateGbps: 1}},
			DurationSeconds: 60,
		}}}
	sr, err := RunSuite(s, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Errs[0] == nil {
		t.Error("unreachable scenario did not fail")
	}
	if sr.Results[1] == nil || sr.Errs[1] != nil {
		t.Errorf("healthy scenario sunk by unreachable one: %v", sr.Errs[1])
	}
	// The comparison table renders the failure in place of metrics (the
	// ragged-row form the export fix guarantees renders).
	out := ComparisonTable(sr).String()
	if out == "" {
		t.Error("comparison table empty")
	}
}

func TestScenarioDeploymentLowersToConfig(t *testing.T) {
	sc := PaperScenario()
	cfg, err := sc.Deployment()
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Layers) != 3 {
		t.Fatalf("layers = %d, want 3 (edge/fog/cloud)", len(cfg.Layers))
	}
	if cfg.Layers[0].Services[0].Quantity != 40 {
		t.Errorf("gateway quantity = %d, want 40", cfg.Layers[0].Services[0].Quantity)
	}
	// Fog placement drops the cloud layer.
	sc.EngineLayer = "fog"
	cfg, err = sc.Deployment()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Layers) != 2 {
		t.Fatalf("fog placement layers = %d, want 2", len(cfg.Layers))
	}
}

func TestGenerators(t *testing.T) {
	base := PaperScenario()
	sweep := GatewaySweep(base, []int{10, 40, 80})
	if len(sweep) != 3 || sweep[0].TotalGateways() != 10 || sweep[2].TotalGateways() != 80 {
		t.Errorf("gateway sweep wrong: %+v", sweep)
	}
	if base.TotalGateways() != 40 {
		t.Error("generator mutated its base scenario")
	}
	// Multi-class bases must hit the requested total exactly (largest-
	// remainder apportionment), not truncate each class independently.
	hetero := base
	hetero.Gateways = []GatewayClass{
		{Name: "fiber", Count: 24}, {Name: "lte", Count: 14}, {Name: "sat", Count: 2},
	}
	for _, total := range []int{20, 50, 77} {
		got := GatewaySweep(hetero, []int{total})[0]
		if got.TotalGateways() != total {
			t.Errorf("hetero sweep to %d gateways produced %d (%+v)",
				total, got.TotalGateways(), got.Gateways)
		}
	}
	// The at-least-one-per-class floor is the documented exception to
	// exactness: at total=10 the sat class's share rounds to zero and is
	// floored to 1.
	if got := GatewaySweep(hetero, []int{10})[0]; got.TotalGateways() != 11 {
		t.Errorf("floored sweep produced %d gateways (%+v)", got.TotalGateways(), got.Gateways)
	}
	for _, s := range PlacementSweep(base) {
		if err := s.Validate(); err != nil {
			t.Errorf("placement %q invalid: %v", s.Name, err)
		}
	}
	mixes := MixSweep(base, map[string][]GatewayClass{
		"m1": {{Name: "a", Count: 1}},
		"m2": {{Name: "b", Count: 2}},
	})
	if len(mixes) != 2 || mixes[0].Name != "paper-42-nodes-m1" {
		t.Errorf("mix sweep wrong: %+v", mixes)
	}
	deg := DegradationSweep(base, []Degradation{{Name: "x",
		Rules: []config.NetworkRule{{Src: "fog", Dst: "cloud", DelayMS: 9}}}})
	if len(deg) != 1 || len(deg[0].Degradation) != 1 {
		t.Errorf("degradation sweep wrong: %+v", deg)
	}
	if len(base.Degradation) != 0 {
		t.Error("degradation sweep mutated its base")
	}
}

func TestShapeExpansion(t *testing.T) {
	if got := (Shape{}).Expand(80, 300); len(got) != 1 || got[0].Clients != 80 || got[0].DurationSeconds != 300 {
		t.Errorf("constant shape = %+v", got)
	}
	bursty := Shape{Kind: "bursty", Phases: 4, BaseFrac: 0.25}.Expand(80, 400)
	if len(bursty) != 4 {
		t.Fatalf("bursty phases = %d", len(bursty))
	}
	if bursty[0].Clients != 20 || bursty[1].Clients != 80 {
		t.Errorf("bursty alternation wrong: %+v", bursty)
	}
	diurnal := Shape{Kind: "diurnal", Phases: 8}.Expand(100, 800)
	if len(diurnal) != 8 {
		t.Fatalf("diurnal phases = %d", len(diurnal))
	}
	if diurnal[0].Clients >= diurnal[4].Clients {
		t.Errorf("diurnal trough/crest wrong: %+v", diurnal)
	}
	if err := (Shape{Kind: "square"}).Validate(); err == nil {
		t.Error("unknown shape kind accepted")
	}
}

func TestLoadSuiteJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.json")
	body := `{
  "name": "mini",
  "seed": 5,
  "duration_seconds": 60,
  "scenarios": [
    {"name": "a", "gateways": [{"name": "g", "count": 2, "delay_ms": 2}]},
    {"name": "b", "gateways": [{"name": "g", "count": 4}],
     "workload": {"kind": "diurnal", "phases": 2}}
  ]
}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSuite(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "mini" || len(s.Scenarios) != 2 || s.Scenarios[1].Workload.Kind != "diurnal" {
		t.Errorf("loaded suite = %+v", s)
	}
	if _, err := s.resolved(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(`{"name": "x", "bogus": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSuite(path); err == nil {
		t.Error("unknown suite field accepted")
	}
}

func TestStandardSuiteValidates(t *testing.T) {
	s := StandardSuite(60, 1, 42)
	if len(s.Scenarios) < 5 {
		t.Fatalf("standard suite ships %d scenarios, want >= 5", len(s.Scenarios))
	}
	if _, err := s.resolved(); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, sc := range s.Scenarios {
		if names[sc.Name] {
			t.Errorf("duplicate scenario %q", sc.Name)
		}
		names[sc.Name] = true
	}
}

func TestSuiteArchiveProvenance(t *testing.T) {
	s := Suite{Name: "arch", Seed: 2, DurationSeconds: 60,
		Scenarios: []Scenario{{
			Name:     "only",
			Gateways: []GatewayClass{{Name: "g", Count: 2, DelayMS: 2, RateGbps: 1}},
		}}}
	dir := t.TempDir()
	mustRun(t, s, Options{Parallel: 1, ArchiveDir: dir})
	if _, err := os.Stat(filepath.Join(dir, "suite.json")); err != nil {
		t.Errorf("suite manifest missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "optimization_0000", "evaluation.json")); err != nil {
		t.Errorf("per-scenario record missing: %v", err)
	}
}
