// Package scenario is the declarative scenario-suite layer of the
// reproduction: where config.Scenario describes ONE Edge-to-Cloud
// deployment, this package generates and executes FAMILIES of them — the
// experiment campaigns the E2Clab methodology prescribes ("evaluate the
// application under as many deployment scenarios as needed before moving to
// production").
//
// A Scenario pairs a gateway-level topology (how many edge gateways of
// which network class feed the engine, and on which continuum layer the
// engine runs) with a netem degradation profile, a workload shape
// (constant, bursty, or diurnal), and the engine configuration to evaluate.
// Scenario.Deployment lowers it to the config.Scenario / netem form the
// rest of the framework consumes; Run executes it on the calibrated
// Pl@ntNet engine simulator.
//
// Determinism contract: a Scenario's Result is a pure function of the
// scenario spec and the seed it is run under. All stochastic inputs are
// derived up front (rngutil), phases and repeats aggregate in a fixed
// order, and the suite runner (suite.go) preserves that order regardless
// of worker-pool parallelism — fixed-seed suite output is bit-identical
// whether it runs sequentially, in parallel, or across an interruption and
// resume.
package scenario

import (
	"fmt"
	"math"

	"e2clab/internal/config"
	"e2clab/internal/fault"
	"e2clab/internal/netem"
	"e2clab/internal/plantnet"
	"e2clab/internal/resilience"
	"e2clab/internal/rngutil"
	"e2clab/internal/stats"
	"e2clab/internal/workload"
)

// GatewayClass is a homogeneous group of edge gateways sharing an uplink
// quality — the unit of heterogeneous gateway mixes (fiber-, LTE- and
// satellite-backhauled sites behave very differently).
type GatewayClass struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	// Uplink constraints from this class's gateways to the next layer up.
	DelayMS  float64 `json:"delay_ms,omitempty"`
	RateGbps float64 `json:"rate_gbps,omitempty"`
	LossPct  float64 `json:"loss_pct,omitempty"`
	// Cluster is the testbed cluster hosting this class's gateway nodes
	// (defaults to "chiclet", the paper's edge-client cluster).
	Cluster string `json:"cluster,omitempty"`
}

// Scenario is one declarative edge-to-cloud deployment to evaluate.
type Scenario struct {
	Name string `json:"name"`

	// EngineLayer places the identification engine on "cloud" (default) or
	// "fog": a fog placement shortens the request path by one hop.
	EngineLayer string `json:"engine_layer,omitempty"`
	// NetworkModel selects how the request path is priced: "analytical"
	// (the default, also spelled "") adds the closed-form
	// netem.TransferSeconds path cost to the engine-side response time,
	// while "simulated" folds the path into the discrete-event kernel —
	// every request crosses per-gateway uplink and shared backhaul
	// sim.Links, so queueing at the gateways and loss-driven
	// retransmission interact with load. "packet" is the simulated model
	// with packetized TCP-like transport on every link: per-packet loss
	// draws and multiplicative congestion backoff instead of whole-payload
	// geometric resend. The resolved value is part of the suite checkpoint
	// fingerprint: resumed campaigns cannot silently mix models.
	NetworkModel string `json:"network_model,omitempty"`
	// Shards runs each engine repetition on the domain-sharded parallel
	// kernel with this many workers (>= 2). It requires a simulated
	// network model and is normalized to 0 (sequential) otherwise. Results
	// are bit-identical for every Shards >= 2, so the checkpoint
	// fingerprint collapses the worker count: a resumed campaign may
	// change it freely. The sharded kernel is its own deterministic
	// family, though — switching between sequential and sharded DOES
	// change results, and that switch is fingerprinted.
	Shards int `json:"shards,omitempty"`
	// Replicas is the number of engine instances (paper: 2 chifflot nodes).
	Replicas int `json:"replicas,omitempty"`
	// Pools is the engine thread-pool configuration; zero value means the
	// production baseline of Table II.
	Pools plantnet.PoolConfig `json:"pools,omitempty"`

	// Gateways describes the edge tier; at least one class is required.
	Gateways []GatewayClass `json:"gateways"`
	// ClientsPerGateway scales the closed-loop population: total clients =
	// sum of class counts x this (default 2, the paper's 40 gateways x 2 =
	// 80-request workload).
	ClientsPerGateway int `json:"clients_per_gateway,omitempty"`

	// Degradation holds extra netem rules applied on top of the gateway
	// uplinks (added latency/loss between layers — tc/netem profiles).
	Degradation []config.NetworkRule `json:"degradation,omitempty"`

	// Workload shapes the client population over the experiment (constant,
	// bursty, diurnal, trace). Zero value means constant.
	Workload Shape `json:"workload,omitempty"`

	// Faults is the deterministic fault schedule injected into every engine
	// run of the scenario (fault times are relative to each run's own
	// t=0, so a phased workload replays the schedule per phase). Gateway
	// churn and link faults require a simulated network model. The schedule
	// is part of the JSON spec and therefore of the suite checkpoint
	// fingerprint: changing it invalidates resume for the scenario.
	Faults *fault.Spec `json:"faults,omitempty"`

	// Resilience is the client/routing policy every engine run applies on
	// top of whatever the fault schedule throws at it: per-request
	// timeouts, jittered retries, hedged requests, circuit breaking,
	// gateway failover, and admission control. Nil (or the zero policy)
	// means the pre-policy behavior, bit-for-bit. Failover requires a
	// simulated network model. Like Faults, the policy is part of the JSON
	// spec and therefore of the suite checkpoint fingerprint.
	Resilience *resilience.Policy `json:"resilience,omitempty"`

	// UploadBytes / ResponseBytes size the request payloads crossing the
	// network (defaults: 1.2 MB photo up, 50 KB identification down).
	UploadBytes   float64 `json:"upload_bytes,omitempty"`
	ResponseBytes float64 `json:"response_bytes,omitempty"`

	// DurationSeconds / Repeats override the suite-level protocol for this
	// scenario (0 = inherit).
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
	Repeats         int     `json:"repeats,omitempty"`
}

// withDefaults returns a copy with every optional field resolved.
func (s Scenario) withDefaults() Scenario {
	if s.EngineLayer == "" {
		s.EngineLayer = "cloud"
	}
	// Normalize the explicit default spelling so a scenario that says
	// "analytical" fingerprints identically to one that says nothing.
	if s.NetworkModel == "analytical" {
		s.NetworkModel = ""
	}
	if s.Replicas <= 0 {
		s.Replicas = 1
	}
	// The sharded kernel needs a simulated network to partition; anything
	// else (including Shards: 1) is the sequential kernel, spelled 0 so
	// equivalent specs fingerprint identically. (NetworkModel is checked
	// directly — it is already normalized above, and simulatesNetwork()
	// would recurse into withDefaults.)
	if s.Shards <= 1 || (s.NetworkModel != "simulated" && s.NetworkModel != "packet") {
		s.Shards = 0
	}
	if s.Pools == (plantnet.PoolConfig{}) {
		s.Pools = plantnet.Baseline
	}
	if s.ClientsPerGateway <= 0 {
		s.ClientsPerGateway = 2
	}
	for i := range s.Gateways {
		if s.Gateways[i].Cluster == "" {
			s.Gateways[i].Cluster = "chiclet"
		}
	}
	if s.UploadBytes <= 0 {
		s.UploadBytes = 1.2e6
	}
	if s.ResponseBytes <= 0 {
		s.ResponseBytes = 5e4
	}
	if s.DurationSeconds <= 0 {
		s.DurationSeconds = 300
	}
	if s.Repeats <= 0 {
		s.Repeats = 1
	}
	return s
}

// Validate checks the scenario is structurally sound, including that its
// lowered deployment passes config.Scenario and netem validation.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: needs a name")
	}
	d := s.withDefaults()
	if d.EngineLayer != "cloud" && d.EngineLayer != "fog" {
		return fmt.Errorf("scenario %q: engine_layer must be cloud or fog, got %q", s.Name, s.EngineLayer)
	}
	if d.NetworkModel != "" && d.NetworkModel != "simulated" && d.NetworkModel != "packet" {
		return fmt.Errorf("scenario %q: network_model must be analytical, simulated, or packet, got %q", s.Name, s.NetworkModel)
	}
	if len(d.Gateways) == 0 {
		return fmt.Errorf("scenario %q: needs at least one gateway class", s.Name)
	}
	for _, g := range d.Gateways {
		if g.Name == "" {
			return fmt.Errorf("scenario %q: unnamed gateway class", s.Name)
		}
		if g.Count < 1 {
			return fmt.Errorf("scenario %q: gateway class %q has count %d", s.Name, g.Name, g.Count)
		}
	}
	if err := d.Pools.Validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if err := d.Workload.Validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if err := d.validateFaults(); err != nil {
		return err
	}
	if err := d.validateResilience(); err != nil {
		return err
	}
	cfg, err := d.Deployment()
	if err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	// Validate every per-class network against the deployment's layers.
	layers := make([]string, len(cfg.Layers))
	for i, l := range cfg.Layers {
		layers[i] = l.Name
	}
	for _, g := range d.Gateways {
		if err := d.classNetwork(g).Validate(layers); err != nil {
			return fmt.Errorf("scenario %q, class %q: %w", s.Name, g.Name, err)
		}
	}
	return nil
}

// validateFaults cross-checks the fault schedule against the scenario's
// lowered topology; d is already defaulted.
func (d Scenario) validateFaults() error {
	if d.Faults.IsZero() {
		return nil
	}
	if err := d.Faults.Validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", d.Name, err)
	}
	netFaults := d.Faults.GatewayChurn != nil || len(d.Faults.LinkFlaps) > 0 ||
		len(d.Faults.LinkSchedule) > 0
	if netFaults && d.NetworkModel != "simulated" && d.NetworkModel != "packet" {
		return fmt.Errorf("scenario %q: gateway churn and link faults need network_model simulated or packet", d.Name)
	}
	for _, cr := range d.Faults.ReplicaCrashes {
		if cr.Replica >= d.Replicas {
			return fmt.Errorf("scenario %q: fault crashes replica %d of %d", d.Name, cr.Replica, d.Replicas)
		}
	}
	total := d.TotalGateways()
	checkTarget := func(g int, what string) error {
		if g == fault.Backhaul {
			if d.EngineLayer == "fog" {
				return fmt.Errorf("scenario %q: %s targets the backhaul, but a fog placement has none", d.Name, what)
			}
			return nil
		}
		if g >= total {
			return fmt.Errorf("scenario %q: %s targets gateway %d of %d", d.Name, what, g, total)
		}
		return nil
	}
	for _, f := range d.Faults.LinkFlaps {
		if err := checkTarget(f.Gateway, "link flap"); err != nil {
			return err
		}
	}
	for _, tr := range d.Faults.LinkSchedule {
		if err := checkTarget(tr.Gateway, "link transition"); err != nil {
			return err
		}
	}
	return nil
}

// validateResilience cross-checks the policy against the scenario's
// lowered topology; d is already defaulted.
func (d Scenario) validateResilience() error {
	if d.Resilience.IsZero() {
		return nil
	}
	if err := d.Resilience.Validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", d.Name, err)
	}
	if d.Resilience.Failover && !d.simulatesNetwork() {
		return fmt.Errorf("scenario %q: failover routing needs network_model simulated or packet", d.Name)
	}
	return nil
}

// TotalGateways sums the gateway counts across classes.
func (s Scenario) TotalGateways() int {
	n := 0
	for _, g := range s.Gateways {
		n += g.Count
	}
	return n
}

// Clients is the full closed-loop population the scenario drives.
func (s Scenario) Clients() int {
	d := s.withDefaults()
	return d.TotalGateways() * d.ClientsPerGateway
}

// path lists the layer hops a request crosses from the edge to the engine.
func (s Scenario) path() [][2]string {
	if s.EngineLayer == "fog" {
		return [][2]string{{"edge", "fog"}}
	}
	return [][2]string{{"edge", "fog"}, {"fog", "cloud"}}
}

// layers returns the continuum layers of the deployment, edge first.
func (s Scenario) layers() []string {
	if s.EngineLayer == "fog" {
		return []string{"edge", "fog"}
	}
	return []string{"edge", "fog", "cloud"}
}

// Deployment lowers the scenario to the config.Scenario form (layers,
// services, composed network rules) that `e2clab deploy` and the
// provenance archive consume.
func (s Scenario) Deployment() (*config.Scenario, error) {
	d := s.withDefaults()
	if len(d.Gateways) == 0 {
		return nil, fmt.Errorf("scenario %q: needs at least one gateway class", s.Name)
	}
	engineCluster := "chifflot" // the paper's GPU nodes
	engineSvc := config.ServiceConfig{
		Name: "plantnet_engine", Quantity: d.Replicas, Cluster: engineCluster,
		Env: map[string]string{
			"http":      fmt.Sprint(d.Pools.HTTP),
			"download":  fmt.Sprint(d.Pools.Download),
			"extract":   fmt.Sprint(d.Pools.Extract),
			"simsearch": fmt.Sprint(d.Pools.Simsearch),
		},
	}
	edge := config.LayerConfig{Name: "edge"}
	for _, g := range d.Gateways {
		edge.Services = append(edge.Services, config.ServiceConfig{
			Name: "gateway_" + g.Name, Quantity: g.Count, Cluster: g.Cluster,
		})
	}
	fog := config.LayerConfig{Name: "fog", Services: []config.ServiceConfig{
		{Name: "relay", Quantity: 1, Cluster: "chetemi"},
	}}
	var layers []config.LayerConfig
	if d.EngineLayer == "fog" {
		fog.Services = append(fog.Services, engineSvc)
		layers = []config.LayerConfig{edge, fog}
	} else {
		cloud := config.LayerConfig{Name: "cloud", Services: []config.ServiceConfig{engineSvc}}
		layers = []config.LayerConfig{edge, fog, cloud}
	}
	var rules []config.NetworkRule
	for _, g := range d.Gateways {
		if g.DelayMS > 0 || g.RateGbps > 0 || g.LossPct > 0 {
			rules = append(rules, config.NetworkRule{
				Src: "edge", Dst: "fog", DelayMS: g.DelayMS,
				RateGbps: g.RateGbps, LossPct: g.LossPct, Symmetric: true,
			})
		}
	}
	rules = append(rules, d.Degradation...)
	return &config.Scenario{Name: d.Name, NetworkModel: d.networkModelName(),
		Layers: layers, Network: rules}, nil
}

// networkModelName is the resolved, explicit model name ("analytical",
// "simulated", or "packet") — what tables, archives, and resumed Results
// report.
func (s Scenario) networkModelName() string {
	switch s.withDefaults().NetworkModel {
	case "simulated":
		return "simulated"
	case "packet":
		return "packet"
	}
	return "analytical"
}

// simulatesNetwork reports whether the resolved model folds the request
// path into the event kernel ("simulated" or "packet").
func (s Scenario) simulatesNetwork() bool {
	m := s.withDefaults().NetworkModel
	return m == "simulated" || m == "packet"
}

// toNetemRules converts config-form rules to the netem form.
func toNetemRules(rules []config.NetworkRule) []netem.Rule {
	out := make([]netem.Rule, len(rules))
	for i, r := range rules {
		out[i] = netem.Rule{Src: r.Src, Dst: r.Dst, DelayMS: r.DelayMS,
			RateGbps: r.RateGbps, LossPct: r.LossPct, Symmetric: r.Symmetric}
	}
	return out
}

// classNetwork builds the netem network one gateway class experiences: its
// own uplink on the edge hop, plus the scenario-wide degradation rules.
func (s Scenario) classNetwork(g GatewayClass) *netem.Network {
	rules := append([]netem.Rule{{
		Src: "edge", Dst: "fog", DelayMS: g.DelayMS,
		RateGbps: g.RateGbps, LossPct: g.LossPct, Symmetric: true,
	}}, toNetemRules(s.Degradation)...)
	return netem.New(rules...)
}

// networkModel lowers the scenario's topology and netem rules to the
// simulated-network form the engine consumes: each gateway becomes its own
// uplink contention domain on the edge hop (class uplink composed with the
// degradation rules, one link per direction), and — for a cloud placement —
// the fog->cloud hop becomes a single backhaul chain shared by every
// request, which is where a congested backbone queues. Unconstrained hops
// are elided (they are priced at exactly zero by both models).
func (s Scenario) networkModel() *plantnet.NetworkModel {
	d := s.withDefaults()
	m := &plantnet.NetworkModel{UploadBytes: d.UploadBytes, ResponseBytes: d.ResponseBytes}
	for _, g := range d.Gateways {
		n := d.classNetwork(g)
		m.Classes = append(m.Classes, plantnet.NetworkClass{
			Gateways: g.Count,
			Up:       n.Lower("edge", "fog"),
			Down:     n.Lower("fog", "edge"),
		})
	}
	if d.EngineLayer != "fog" {
		// Per-class uplink rules only touch the edge hop, so the shared
		// backhaul is fully described by the degradation rules.
		deg := netem.New(toNetemRules(d.Degradation)...)
		m.BackhaulUp = []netem.LinkSpec{deg.Lower("fog", "cloud")}
		m.BackhaulDown = []netem.LinkSpec{deg.Lower("cloud", "fog")}
	}
	if d.NetworkModel == "packet" {
		m.Packet = true
	}
	return m
}

// NetworkOverheadSeconds returns the expected per-request network time —
// the 1.2 MB photo travelling up the continuum path and the identification
// result coming back — averaged over gateway classes weighted by gateway
// count. It is +Inf when any class's path is fully lossy (see
// netem.TransferSeconds), in which case the scenario is unreachable.
func (s Scenario) NetworkOverheadSeconds() float64 {
	d := s.withDefaults()
	total := d.TotalGateways()
	if total == 0 {
		return 0
	}
	var overhead float64
	for _, g := range d.Gateways {
		n := d.classNetwork(g)
		var t float64
		for _, hop := range d.path() {
			t += n.TransferSeconds(hop[0], hop[1], d.UploadBytes)
			t += n.TransferSeconds(hop[1], hop[0], d.ResponseBytes)
		}
		overhead += t * float64(g.Count) / float64(total)
	}
	return overhead
}

// Result is one executed scenario's aggregate, the row unit of the
// cross-scenario comparison tables. Every field is finite (unreachable or
// sample-free scenarios fail with an error instead), so Results round-trip
// bit-exactly through the JSON checkpoint.
type Result struct {
	Index    int    `json:"index"`
	Name     string `json:"name"`
	Gateways int    `json:"gateways"`
	Clients  int    `json:"clients"`
	Phases   int    `json:"phases"`
	// NetModel is the resolved network model the scenario ran under
	// ("analytical" or "simulated"); it is derived from the spec, not
	// stored in checkpoints (the fingerprint pins the spec).
	NetModel string `json:"net_model,omitempty"`

	// EngineResp pools every post-warmup response-time sample across
	// phases and repeats. Analytical mode: engine-side only, excluding the
	// network path. Simulated mode: the full user-observed time — requests
	// cross the simulated links inside the run.
	EngineResp stats.Summary `json:"engine_resp"`
	// NetOverheadSec is the closed-form expected per-request network time.
	// In simulated mode it is reported for comparison only (the measured
	// samples already include the network, queueing and all).
	NetOverheadSec float64 `json:"net_overhead_sec"`
	// RespMean is the user-observed mean: engine + network overhead in
	// analytical mode, the pooled sample mean in simulated mode.
	RespMean float64 `json:"resp_mean"`
	// RespP95 is the duration-weighted mean of per-run engine p95s.
	RespP95 float64 `json:"resp_p95"`
	// Throughput is the duration-weighted completions/s.
	Throughput float64 `json:"throughput"`
	Completed  int     `json:"completed"`

	// Fault outcome counters, aggregated across phases and repeats; all
	// zero when the scenario injects no faults. See plantnet.Metrics for
	// the taxonomy.
	FaultGatewayFailures int `json:"fault_gateway_failures,omitempty"`
	FaultCrashRequeues   int `json:"fault_crash_requeues,omitempty"`
	FaultCrashFailures   int `json:"fault_crash_failures,omitempty"`
	FaultDropped         int `json:"fault_dropped,omitempty"`

	// Resilience outcome counters, aggregated across phases and repeats;
	// all zero when the scenario applies no policy (Failed also counts
	// unpolicied fault losses). See plantnet.Metrics for the taxonomy.
	Failed           int `json:"failed,omitempty"`
	Retries          int `json:"retries,omitempty"`
	RetrySuccesses   int `json:"retry_successes,omitempty"`
	Hedges           int `json:"hedges,omitempty"`
	HedgeWins        int `json:"hedge_wins,omitempty"`
	Rerouted         int `json:"rerouted,omitempty"`
	Shed             int `json:"shed,omitempty"`
	BreakerOpens     int `json:"breaker_opens,omitempty"`
	DeadlineExceeded int `json:"deadline_exceeded,omitempty"`
	// Goodput is the duration-weighted post-warmup completions/s whose
	// response met the policy timeout (== Throughput with no policy);
	// Availability is completed / (completed + failed), 1 when nothing
	// failed — the availability-SLO fraction the resilience layer targets.
	Goodput      float64 `json:"goodput"`
	Availability float64 `json:"availability"`
}

// Run executes the scenario: every workload phase (or, for a continuous
// shape, the single piecewise-rate run) executes plantnet.RunRepeated with
// a seed derived from `seed`, and results aggregate in phase order — the
// Result is a pure function of (scenario, seed). One plantnet.Runner is
// carried across the phases, so engine setup is paid once per scenario.
// repeatParallelism bounds the per-phase RunRepeated pool; <= 0 means
// sequential (not GOMAXPROCS: the suite pool is the parallelism knob, and
// nesting a repeat pool inside every suite worker would oversubscribe).
func (s Scenario) Run(seed int64, repeatParallelism int) (*Result, error) {
	if repeatParallelism <= 0 {
		repeatParallelism = 1
	}
	d := s.withDefaults()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	// The closed-form path cost: the response-time addend in analytical
	// mode, a reported reference in simulated mode — and, in both, the
	// reachability gate (+Inf means some class's path composes to total
	// loss; simulating it would strand every request on a black-hole link).
	overhead := d.NetworkOverheadSeconds()
	if math.IsInf(overhead, 1) {
		return nil, fmt.Errorf("scenario %q: unreachable — a gateway class's path composes to 100%% loss", d.Name)
	}
	var netmod *plantnet.NetworkModel
	if d.simulatesNetwork() {
		netmod = d.networkModel()
	}
	phases := d.Workload.Expand(d.Clients(), d.DurationSeconds)
	phaseCount := len(phases)
	seeder := rngutil.NewSeeder(seed + 31)
	runner := plantnet.NewRunner()
	// One engine run per phase — or one continuous run when the shape
	// carries queue state across its phase boundaries (or is a trace).
	type phaseRun struct {
		clients  int
		arrivals *workload.PiecewiseRate
		duration float64
	}
	var runs []phaseRun
	if d.Workload.continuous() {
		var pr *workload.PiecewiseRate
		if d.Workload.kind() == "trace" {
			pr = d.Workload.Trace.Rates()
			phaseCount = len(d.Workload.Trace.Counts)
		} else {
			rpc := d.Workload.RatePerClient
			if rpc <= 0 {
				// Calibration draws its probe seed before the phase seeds,
				// so explicit-rate and calibrated scenarios stay pure
				// functions of (spec, seed).
				cal, err := d.calibrateRate(runner, netmod, seeder.Next())
				if err != nil {
					return nil, fmt.Errorf("scenario %q: calibrating rate: %w", d.Name, err)
				}
				rpc = cal
			}
			pr = d.Workload.rates(phases, rpc)
		}
		runs = []phaseRun{{arrivals: pr, duration: d.DurationSeconds}}
	} else {
		for _, ph := range phases {
			runs = append(runs, phaseRun{clients: ph.Clients, duration: ph.DurationSeconds})
		}
	}
	// Phased workloads lower the fault schedule ONCE onto the scenario's
	// wall-clock timeline and slice it into per-phase windows, so a crash
	// scheduled at t=400 of a 3x300s diurnal shape lands mid-phase-2
	// instead of replaying relative to every phase's own t=0. The
	// dedicated compile seed is drawn before the phase seeds (mirroring
	// the engine's Seed+307 convention), and repeats of a phase replay the
	// same realization — one timeline per scenario execution.
	var fwin [][]fault.Event
	if !d.Faults.IsZero() && len(runs) > 1 {
		durs := make([]float64, len(runs))
		var total float64
		for i, pr := range runs {
			durs[i] = pr.duration
			total += pr.duration
		}
		ngw := 0
		if netmod != nil {
			ngw = d.TotalGateways()
		}
		tl := fault.Compile(d.Faults, seeder.Next()+307, total, ngw)
		fwin = fault.Windows(tl, durs)
	}
	var pooled stats.Welford
	var thrSec, p95Sec, goodSec, elapsed float64
	completed := 0
	var gwFail, crashReq, crashFail, dropped int64
	var failed, retries, retrySucc, hedges, hedgeWins, rerouted, shedded, brkOpens, deadline int64
	for i, pr := range runs {
		opts := plantnet.RunOptions{
			Pools:          d.Pools,
			Clients:        pr.clients,
			Arrivals:       pr.arrivals,
			Network:        netmod,
			Shards:         d.Shards,
			Replicas:       d.Replicas,
			Faults:         d.Faults,
			Resilience:     d.Resilience,
			Duration:       pr.duration,
			Warmup:         math.Min(60, pr.duration/5),
			SampleInterval: math.Min(10, pr.duration/10),
			MaxParallel:    repeatParallelism,
			Seed:           seeder.Next(),
		}
		if fwin != nil {
			opts.FaultTimeline = fwin[i]
		}
		rep, err := runner.RunRepeated(opts, d.Repeats)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", d.Name, err)
		}
		for _, m := range rep.Runs {
			for _, sample := range m.Samples {
				if !math.IsNaN(sample.RespTime) {
					pooled.Add(sample.RespTime)
				}
			}
			p95Sec += m.RespP95 * pr.duration
			goodSec += m.Goodput * pr.duration
			completed += m.Completed
			gwFail += m.GatewayFailures
			crashReq += m.CrashRequeues
			crashFail += m.CrashFailures
			dropped += m.DroppedArrivals
			failed += m.FailedRequests
			retries += m.Retries
			retrySucc += m.RetrySuccesses
			hedges += m.Hedges
			hedgeWins += m.HedgeWins
			rerouted += m.Rerouted
			shedded += m.Shed
			brkOpens += m.BreakerOpens
			deadline += m.DeadlineExceeded
		}
		thrSec += rep.Throughput * pr.duration
		elapsed += pr.duration
	}
	// Fewer than two samples would leave NaNs (StdDev) in the Result,
	// which the JSON checkpoint cannot represent.
	if pooled.N() < 2 {
		return nil, fmt.Errorf("scenario %q: %d post-warmup samples (duration too short?)", d.Name, pooled.N())
	}
	engine := pooled.Snapshot()
	respMean := engine.Mean + overhead
	if netmod != nil {
		// Simulated mode measures the network inside the run; adding the
		// closed form on top would double-count it.
		respMean = engine.Mean
	}
	availability := 1.0
	if completed+int(failed) > 0 {
		availability = float64(completed) / float64(completed+int(failed))
	}
	return &Result{
		Name:                 d.Name,
		Gateways:             d.TotalGateways(),
		Clients:              d.Clients(),
		Phases:               phaseCount,
		NetModel:             d.networkModelName(),
		EngineResp:           engine,
		NetOverheadSec:       overhead,
		RespMean:             respMean,
		RespP95:              p95Sec / (elapsed * float64(d.Repeats)),
		Throughput:           thrSec / elapsed,
		Completed:            completed,
		FaultGatewayFailures: int(gwFail),
		FaultCrashRequeues:   int(crashReq),
		FaultCrashFailures:   int(crashFail),
		FaultDropped:         int(dropped),
		Failed:               int(failed),
		Retries:              int(retries),
		RetrySuccesses:       int(retrySucc),
		Hedges:               int(hedges),
		HedgeWins:            int(hedgeWins),
		Rerouted:             int(rerouted),
		Shed:                 int(shedded),
		BreakerOpens:         int(brkOpens),
		DeadlineExceeded:     int(deadline),
		Goodput:              goodSec / (elapsed * float64(d.Repeats)),
		Availability:         availability,
	}, nil
}

// calibrateRate measures the per-client request rate this configuration
// actually sustains: a short healthy closed-loop probe (same pools,
// replicas, and network model; no faults) whose throughput divided by the
// population becomes the continuous lowering's RatePerClient. The probe
// runs on the scenario's own Runner and draws a dedicated seed, so the
// calibrated rate — and everything downstream of it — is deterministic in
// (spec, seed). Falls back to 0.35 req/s (the baseline engine's inverse
// ~2.8 s cycle) if the probe completes nothing.
func (d Scenario) calibrateRate(runner *plantnet.Runner, netmod *plantnet.NetworkModel, seed int64) (float64, error) {
	probe := plantnet.RunOptions{
		Pools:    d.Pools,
		Clients:  d.Clients(),
		Network:  netmod,
		Replicas: d.Replicas,
		Duration: 120,
		Warmup:   30,
		Seed:     seed,
	}
	m, err := runner.Run(probe)
	if err != nil {
		return 0, err
	}
	if m.Throughput <= 0 {
		return 0.35, nil
	}
	return m.Throughput / float64(d.Clients()), nil
}
