package scenario

import (
	"math"
	"reflect"
	"testing"

	"e2clab/internal/fault"
	"e2clab/internal/resilience"
)

// resilientScenario is faultedScenario under the retry+failover policy —
// the fixed-seed golden of the resilience layer.
func resilientScenario() Scenario {
	s := faultedScenario()
	s.Name = "golden-resilient"
	s.Resilience = &resilience.Policy{
		TimeoutSeconds: 8,
		Retry:          &resilience.Retry{Max: 3, BaseDelaySeconds: 0.25, MaxDelaySeconds: 4},
		Failover:       true,
	}
	return s
}

// Pinned values for TestResilientScenarioGoldenPin, captured from the PR
// that introduced the resilience policy layer.
const (
	goldenResCompleted    = 1208
	goldenResRespMean     = 1.6108463495097172
	goldenResRerouted     = 156
	goldenResAvailability = 1.0
)

// TestResilientScenarioGoldenPin pins a policied fixed-seed scenario
// bit-for-bit: the policy substream derivation, failover routing, and the
// retry backoff draws are all part of the determinism contract. If this
// fails, understand the reordering before updating the values.
func TestResilientScenarioGoldenPin(t *testing.T) {
	r, err := resilientScenario().Run(55, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != goldenResCompleted {
		t.Errorf("Completed = %d, want %d", r.Completed, goldenResCompleted)
	}
	if math.Float64bits(r.RespMean) != math.Float64bits(goldenResRespMean) {
		t.Errorf("RespMean = %.17g, want %.17g (bit-exact)", r.RespMean, goldenResRespMean)
	}
	if r.Rerouted != goldenResRerouted {
		t.Errorf("Rerouted = %d, want %d", r.Rerouted, goldenResRerouted)
	}
	if math.Float64bits(r.Availability) != math.Float64bits(goldenResAvailability) {
		t.Errorf("Availability = %.17g, want %.17g (bit-exact)", r.Availability, goldenResAvailability)
	}
}

// TestResilienceSweepSuiteParallelDeterminism: a ResilienceSweep campaign
// — identical chaos, escalating policies — stays bit-identical at any
// suite parallelism, policy counters included (bits covers all 28 fields).
func TestResilienceSweepSuiteParallelDeterminism(t *testing.T) {
	base := faultedScenario()
	base.Name = "slo"
	s := Suite{
		Name: "resilience-sweep", Seed: 11, DurationSeconds: 120,
		Scenarios: ResilienceSweep(base, []ResilienceProfile{
			{Name: "none", Policy: nil},
			{Name: "retry", Policy: &resilience.Policy{
				Retry: &resilience.Retry{Max: 3, BaseDelaySeconds: 0.25, MaxDelaySeconds: 4},
			}},
			{Name: "retry-failover", Policy: &resilience.Policy{
				TimeoutSeconds: 8,
				Retry:          &resilience.Retry{Max: 3, BaseDelaySeconds: 0.25, MaxDelaySeconds: 4},
				Failover:       true,
			}},
		}),
	}
	seq := mustRun(t, s, Options{Parallel: 1})
	par := mustRun(t, s, Options{Parallel: 4})
	for i := range seq.Results {
		if !reflect.DeepEqual(bits(seq.Results[i]), bits(par.Results[i])) {
			t.Errorf("scenario %d (%s): parallel policied result differs from sequential",
				i, seq.Results[i].Name)
		}
	}
	// The policies must actually bite in the policied rows.
	if seq.Results[1].Retries == 0 {
		t.Error("retry profile produced no retries")
	}
	if seq.Results[2].Rerouted == 0 {
		t.Error("failover profile produced no re-routes")
	}
	if r := seq.Results[0]; r.Retries != 0 || r.Rerouted != 0 || r.Hedges != 0 {
		t.Error("policy-free profile reported resilience outcomes")
	}
}

// TestResilienceSweepCloneIsolation: mutating one family member's policy
// must not leak into the base scenario or its siblings.
func TestResilienceSweepCloneIsolation(t *testing.T) {
	base := faultedScenario()
	base.Resilience = &resilience.Policy{Retry: &resilience.Retry{Max: 2}}
	fam := ResilienceSweep(base, []ResilienceProfile{
		{Name: "a", Policy: &resilience.Policy{Retry: &resilience.Retry{Max: 3}}},
		{Name: "b", Policy: &resilience.Policy{Retry: &resilience.Retry{Max: 4}}},
	})
	fam[0].Resilience.Retry.Max = 9
	fam[0].Faults.ReplicaCrashes[0].Replica = 7
	if base.Resilience.Retry.Max != 2 {
		t.Error("sweep mutated the base policy")
	}
	if fam[1].Resilience.Retry.Max != 4 {
		t.Error("sweep members share policy state")
	}
	if base.Faults.ReplicaCrashes[0].Replica == 7 {
		t.Error("sweep mutated the base fault schedule")
	}
}

// TestAvailabilitySLOImprovement: under the chaos-heavy fault profile,
// retry+failover strictly improves the availability fraction with bounded
// retry amplification — the acceptance sweep of the resilience layer.
func TestAvailabilitySLOImprovement(t *testing.T) {
	plain, err := faultedScenario().Run(55, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Failed == 0 || plain.Availability >= 1 {
		t.Fatalf("chaos baseline lost nothing (failed=%d, availability=%v) — the comparison is vacuous",
			plain.Failed, plain.Availability)
	}
	pol, err := resilientScenario().Run(55, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(pol.Availability > plain.Availability) {
		t.Errorf("policied availability %v not strictly above unpolicied %v",
			pol.Availability, plain.Availability)
	}
	// Bounded amplification: at most Retry.Max extra attempts per logical
	// request that needed any.
	if max := 3 * (pol.Failed + pol.RetrySuccesses); pol.Retries > max {
		t.Errorf("retry amplification: %d retries > bound %d", pol.Retries, max)
	}
}

// TestPhasedFaultTimelineIsContinuous: with the windowed lowering, a
// phased workload shares ONE wall-clock fault timeline — a crash
// scheduled past the first phase's duration still fires, inside the
// phase whose window contains it. (Under the old per-phase replay,
// AtSeconds beyond the phase duration could never fire at all.)
func TestPhasedFaultTimelineIsContinuous(t *testing.T) {
	s := Scenario{
		Name:     "phased-crash",
		Replicas: 2,
		Gateways: []GatewayClass{
			{Name: "fiber", Count: 4, DelayMS: 2, RateGbps: 10},
		},
		ClientsPerGateway: 4,
		DurationSeconds:   300, // bursty => 6 phases of 50 s
		Workload:          Shape{Kind: "bursty"},
		Faults: &fault.Spec{ReplicaCrashes: []fault.Crash{
			{Replica: 1, AtSeconds: 120, RecoverAfterSeconds: 30},
		}},
	}
	r, err := s.Run(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Phases != 6 {
		t.Fatalf("Phases = %d, want 6", r.Phases)
	}
	if r.FaultCrashRequeues == 0 {
		t.Error("crash at t=120 of a 6x50 s phased run never fired — the timeline is not continuous")
	}
	// Repeatable: the windowed lowering draws its compile seed from the
	// scenario seeder, so the whole phased-faulted run is deterministic.
	r2, err := s.Run(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bits(r), bits(r2)) {
		t.Error("phased-faulted run is not deterministic")
	}
}
