package scenario

import "testing"

// BenchmarkSuite tracks the cost of a full standard-suite campaign at a
// short protocol (60 s scenarios, 1 repeat) — the suite-runner entry in
// the perf-trajectory snapshots (scripts/bench.sh).
func BenchmarkSuite(b *testing.B) {
	s := StandardSuite(60, 1, 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sr, err := RunSuite(s, Options{})
		if err != nil {
			b.Fatal(err)
		}
		for j, e := range sr.Errs {
			if e != nil {
				b.Fatalf("scenario %d: %v", j, e)
			}
		}
	}
}
