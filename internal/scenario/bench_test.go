package scenario

import (
	"testing"

	"e2clab/internal/config"
	"e2clab/internal/fault"
	"e2clab/internal/resilience"
)

// BenchmarkSuite tracks the cost of a full standard-suite campaign at a
// short protocol (60 s scenarios, 1 repeat) — the suite-runner entry in
// the perf-trajectory snapshots (scripts/bench.sh).
// BenchmarkNetworkPath tracks the cost of a simulated-network scenario
// with a loaded uplink: 40 clients' uploads queue on 20 LTE gateway pipes
// and a congested shared backhaul, so the hot path exercises link
// serialization, loss retransmission, and the pooled transfer freelists.
func BenchmarkNetworkPath(b *testing.B) {
	sc := Scenario{
		Name:         "bench-netpath",
		NetworkModel: "simulated",
		Gateways: []GatewayClass{
			{Name: "lte", Count: 20, DelayMS: 45, RateGbps: 0.05, LossPct: 1},
		},
		ClientsPerGateway: 2,
		Degradation: []config.NetworkRule{
			{Src: "fog", Dst: "cloud", DelayMS: 20, RateGbps: 0.5, Symmetric: true},
		},
		DurationSeconds: 120,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Run(42, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultedCampaign tracks a FaultSweep campaign through the event
// kernel: the same base scenario under no faults, gateway churn, and
// churn + replica crash. It prices the fault-injection hot paths (timer
// cancellation on crash, in-flight reassignment on churn, link restores)
// on top of the simulated-network transport.
func BenchmarkFaultedCampaign(b *testing.B) {
	base := Scenario{
		Name:         "bench-chaos",
		NetworkModel: "simulated",
		Replicas:     2,
		Gateways: []GatewayClass{
			{Name: "fiber", Count: 16, DelayMS: 2, RateGbps: 10},
			{Name: "lte", Count: 4, DelayMS: 45, RateGbps: 0.05},
		},
		DurationSeconds: 120,
	}
	s := Suite{
		Name: "bench-fault-sweep", Seed: 42, DurationSeconds: 120,
		Scenarios: FaultSweep(base, []FaultProfile{
			{Name: "none", Spec: nil},
			{Name: "churn", Spec: &fault.Spec{
				GatewayChurn: &fault.Churn{MeanUpSeconds: 40, MeanDownSeconds: 10},
			}},
			{Name: "churn-crash", Spec: &fault.Spec{
				GatewayChurn:   &fault.Churn{MeanUpSeconds: 40, MeanDownSeconds: 10},
				ReplicaCrashes: []fault.Crash{{Replica: 1, AtSeconds: 50, RecoverAfterSeconds: 25}},
				LinkFlaps:      []fault.Flap{{Gateway: 0, FirstAtSeconds: 20, DownSeconds: 6, PeriodSeconds: 45}},
			}},
		}),
	}
	b.ReportAllocs()
	reportScenarios(b, len(s.Scenarios))
	for i := 0; i < b.N; i++ {
		sr, err := RunSuite(s, Options{})
		if err != nil {
			b.Fatal(err)
		}
		for j, e := range sr.Errs {
			if e != nil {
				b.Fatalf("scenario %d: %v", j, e)
			}
		}
	}
}

// reportScenarios emits the campaign's scenario count as a benchmark metric
// so the snapshot scripts can price campaigns per scenario: a suite that
// grows from 9 to 14 scenarios costs more per op without being slower.
func reportScenarios(b *testing.B, n int) {
	b.ReportMetric(float64(n), "scenarios")
}

// BenchmarkResilientCampaign tracks a ResilienceSweep campaign: the
// BenchmarkFaultedCampaign chaos schedule re-run policy-free, with bounded
// retries, and with retry + hedging + failover. It prices the resilience
// hot paths (per-request policy substream, deadline checks at the pipeline
// checkpoints, hedge timer churn, breaker bookkeeping, gateway re-routes)
// on top of the faulted simulated-network transport.
func BenchmarkResilientCampaign(b *testing.B) {
	base := Scenario{
		Name:         "bench-resilient",
		NetworkModel: "simulated",
		Replicas:     2,
		Gateways: []GatewayClass{
			{Name: "fiber", Count: 16, DelayMS: 2, RateGbps: 10},
			{Name: "lte", Count: 4, DelayMS: 45, RateGbps: 0.05},
		},
		DurationSeconds: 120,
		Faults: &fault.Spec{
			GatewayChurn:   &fault.Churn{MeanUpSeconds: 40, MeanDownSeconds: 10},
			ReplicaCrashes: []fault.Crash{{Replica: 1, AtSeconds: 50, RecoverAfterSeconds: 25}},
		},
	}
	s := Suite{
		Name: "bench-resilience-sweep", Seed: 42, DurationSeconds: 120,
		Scenarios: ResilienceSweep(base, []ResilienceProfile{
			{Name: "none", Policy: nil},
			{Name: "retry", Policy: &resilience.Policy{
				Retry: &resilience.Retry{Max: 3, BaseDelaySeconds: 0.25, MaxDelaySeconds: 4},
			}},
			{Name: "full", Policy: &resilience.Policy{
				TimeoutSeconds: 8,
				Retry:          &resilience.Retry{Max: 3, BaseDelaySeconds: 0.25, MaxDelaySeconds: 4},
				Hedge:          &resilience.Hedge{Quantile: 0.95},
				Failover:       true,
			}},
		}),
	}
	b.ReportAllocs()
	reportScenarios(b, len(s.Scenarios))
	for i := 0; i < b.N; i++ {
		sr, err := RunSuite(s, Options{})
		if err != nil {
			b.Fatal(err)
		}
		for j, e := range sr.Errs {
			if e != nil {
				b.Fatalf("scenario %d: %v", j, e)
			}
		}
	}
}

func BenchmarkSuite(b *testing.B) {
	s := StandardSuite(60, 1, 42)
	b.ReportAllocs()
	reportScenarios(b, len(s.Scenarios))
	for i := 0; i < b.N; i++ {
		sr, err := RunSuite(s, Options{})
		if err != nil {
			b.Fatal(err)
		}
		for j, e := range sr.Errs {
			if e != nil {
				b.Fatalf("scenario %d: %v", j, e)
			}
		}
	}
}
