package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"e2clab/internal/provenance"
	"e2clab/internal/rngutil"
	"e2clab/internal/space"
	"e2clab/internal/tune"
)

// Suite is a named family of scenarios evaluated under one protocol — the
// paper's experiment campaign unit.
type Suite struct {
	Name string `json:"name"`
	// Seed roots every scenario's derived seed; the suite's output is a
	// pure function of (suite spec, seed).
	Seed int64 `json:"seed,omitempty"`
	// DurationSeconds / Repeats apply to scenarios that do not override
	// them (defaults 300 s / 1).
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
	Repeats         int     `json:"repeats,omitempty"`
	// NetworkModel is the default for scenarios that do not set their own
	// ("analytical" or "simulated"; see Scenario.NetworkModel). The
	// resolved per-scenario value is fingerprinted, so changing it
	// invalidates the checkpoint of every affected scenario.
	NetworkModel string `json:"network_model,omitempty"`
	// Shards is the default sharded-kernel worker count for scenarios that
	// do not set their own (see Scenario.Shards; 0 = sequential).
	Shards    int        `json:"shards,omitempty"`
	Scenarios []Scenario `json:"scenarios"`
}

// LoadSuite reads a suite definition from JSON (the declarative form the
// ready-made suites under examples/suite ship in).
func LoadSuite(path string) (*Suite, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Suite
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return &s, nil
}

// resolved returns the scenarios with suite-level protocol defaults
// applied, after validating the suite.
func (s Suite) resolved() ([]Scenario, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("scenario: suite needs a name")
	}
	if len(s.Scenarios) == 0 {
		return nil, fmt.Errorf("scenario: suite %q has no scenarios", s.Name)
	}
	out := make([]Scenario, len(s.Scenarios))
	seen := make(map[string]bool, len(s.Scenarios))
	for i, sc := range s.Scenarios {
		if sc.DurationSeconds <= 0 {
			sc.DurationSeconds = s.DurationSeconds
		}
		if sc.Repeats <= 0 {
			sc.Repeats = s.Repeats
		}
		if sc.NetworkModel == "" {
			sc.NetworkModel = s.NetworkModel
		}
		if sc.Shards == 0 {
			sc.Shards = s.Shards
		}
		sc = sc.withDefaults()
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		if seen[sc.Name] {
			return nil, fmt.Errorf("scenario: suite %q has duplicate scenario name %q", s.Name, sc.Name)
		}
		seen[sc.Name] = true
		out[i] = sc
	}
	return out, nil
}

// Options configures a suite execution.
type Options struct {
	// Parallel bounds the suite-level worker pool (0 = GOMAXPROCS, 1 =
	// sequential). Results are aggregated in scenario-index order after
	// all workers finish, so fixed-seed output is bit-identical at any
	// parallelism (the plantnet.RunRepeated pattern).
	Parallel int
	// RepeatParallelism bounds each scenario's internal RunRepeated pool
	// (default 1: the suite pool is the parallelism knob).
	RepeatParallelism int
	// CheckpointPath enables crash-safe resume: the suite state is saved
	// (atomically, via the tune checkpoint machinery) after every scenario
	// completes, and a restart skips scenarios already completed under the
	// same spec, seed, and protocol.
	CheckpointPath string
	// ArchiveDir, when set, archives suite provenance: one evaluation
	// record per scenario plus a suite.json manifest.
	ArchiveDir string
	// Logger, when set, receives one event per scenario state change
	// ("resumed", "started", "completed", "failed").
	Logger func(event string, index int, name string)
	// InterruptAfter, when positive, stops claiming new scenarios after
	// this many have been executed in this invocation and makes RunSuite
	// return ErrInterrupted — a crash simulation hook for resume tests and
	// demos. In-flight scenarios still complete and checkpoint.
	InterruptAfter int
}

// ErrInterrupted reports a suite stopped by Options.InterruptAfter.
var ErrInterrupted = errors.New("scenario: suite interrupted")

// SuiteResult aggregates a suite execution in scenario-index order.
type SuiteResult struct {
	Suite string
	// Results holds one entry per scenario, index-aligned; nil where the
	// scenario failed or was not reached before an interruption.
	Results []*Result
	// Errs is index-aligned with Results (nil on success).
	Errs []error
	// Executed counts scenarios actually run in this invocation; Resumed
	// counts those restored from the checkpoint without re-running.
	Executed int
	Resumed  int
}

// suiteMetric is the checkpoint metric name.
const suiteMetric = "user_resp_time"

// fingerprint identifies a (scenario, derived seed) pair in the checkpoint
// so resume only trusts trials whose spec, protocol, and seed all match.
// The two halves are stored as exact small integers in Trial.Config.
func fingerprint(sc Scenario, seed int64) (hi, lo float64) {
	// The sharded kernel is worker-count invariant (bit-identical results
	// for any Shards >= 2), so the fingerprint collapses the count to its
	// canonical 2: retuning parallelism never invalidates a checkpoint,
	// while switching between the sequential (0) and sharded (>= 2)
	// deterministic families still does.
	if sc.Shards > 2 {
		sc.Shards = 2
	}
	h := fnv.New64a()
	b, _ := json.Marshal(sc)
	h.Write(b)
	fmt.Fprintf(h, "|seed=%d", seed)
	sum := h.Sum64()
	return float64(sum >> 32), float64(sum & 0xffffffff)
}

// RunSuite executes every scenario of the suite on a bounded worker pool
// with ordered aggregation, optional crash-safe checkpointing, and optional
// provenance archiving. See Options for the determinism and resume
// contracts.
//
//simlint:ordered per-scenario seeds are derived before the pool starts and workers write results[i]/errs[i] by claimed index; aggregation walks index order (suite_test pins parallel == sequential)
func RunSuite(s Suite, opts Options) (*SuiteResult, error) {
	scenarios, err := s.resolved()
	if err != nil {
		return nil, err
	}
	n := len(scenarios)

	// All per-scenario seeds derive from the suite seed up front, so a
	// scenario's result does not depend on which worker runs it or on what
	// completed before it.
	seeder := rngutil.NewSeeder(s.Seed + 17)
	seeds := make([]int64, n)
	fpHi := make([]float64, n)
	fpLo := make([]float64, n)
	for i := range seeds {
		seeds[i] = seeder.Next()
		fpHi[i], fpLo[i] = fingerprint(scenarios[i], seeds[i])
	}

	results := make([]*Result, n)
	errs := make([]error, n)
	trials := make([]*tune.Trial, n)
	resumed := 0

	// Resume: trust only checkpoint trials whose fingerprint still matches
	// the scenario spec + seed + protocol at the same index.
	if opts.CheckpointPath != "" {
		if ck, lerr := tune.Load(opts.CheckpointPath); lerr == nil && ck.Name == s.Name {
			for _, t := range ck.Trials {
				i := t.ID
				if i < 0 || i >= n || t.Status != tune.Completed {
					continue
				}
				if len(t.Config) != 3 || t.Config[0] != float64(i) ||
					t.Config[1] != fpHi[i] || t.Config[2] != fpLo[i] {
					continue
				}
				if r, ok := decodeResult(i, scenarios[i].Name, t.Reports); ok {
					// NetModel is derived, not checkpointed: the
					// fingerprint guarantees the spec (and therefore the
					// model) is unchanged.
					r.NetModel = scenarios[i].networkModelName()
					results[i] = r
					resumed++
					if opts.Logger != nil {
						opts.Logger("resumed", i, scenarios[i].Name)
					}
				}
			}
		} else if lerr != nil && !errors.Is(lerr, os.ErrNotExist) {
			return nil, fmt.Errorf("scenario: checkpoint %s unusable: %w", opts.CheckpointPath, lerr)
		}
	}
	for i := range trials {
		trials[i] = &tune.Trial{
			ID:     i,
			Config: []float64{float64(i), fpHi[i], fpLo[i]},
			Status: tune.Pending,
		}
		if results[i] != nil {
			trials[i].Status = tune.Completed
			trials[i].Value = results[i].RespMean
			trials[i].Reports = encodeResult(results[i])
		}
	}

	var archive *provenance.Archive
	if opts.ArchiveDir != "" {
		archive, err = provenance.NewArchive(opts.ArchiveDir)
		if err != nil {
			return nil, err
		}
	}

	var mu sync.Mutex // guards trials, results, errs, checkpoint writes
	saveCheckpoint := func() error {
		if opts.CheckpointPath == "" {
			return nil
		}
		a := &tune.Analysis{Name: s.Name, Metric: suiteMetric, Mode: space.Min,
			Trials: trials}
		return a.Save(opts.CheckpointPath)
	}

	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var next, started atomic.Int64
	var executed atomic.Int64
	var saveErr atomic.Value // first checkpoint-write failure
	interrupted := false
	runOne := func(i int) {
		sc := scenarios[i]
		mu.Lock()
		trials[i].Status = tune.Running
		if opts.Logger != nil {
			opts.Logger("started", i, sc.Name)
		}
		mu.Unlock()
		r, rerr := sc.Run(seeds[i], opts.RepeatParallelism)
		mu.Lock()
		defer mu.Unlock()
		if rerr != nil {
			errs[i] = rerr
			trials[i].Status = tune.Failed
			trials[i].Err = rerr
			if opts.Logger != nil {
				opts.Logger("failed", i, sc.Name)
			}
		} else {
			r.Index = i
			results[i] = r
			trials[i].Status = tune.Completed
			trials[i].Value = r.RespMean
			trials[i].Reports = encodeResult(r)
			if opts.Logger != nil {
				opts.Logger("completed", i, sc.Name)
			}
		}
		executed.Add(1)
		if err := saveCheckpoint(); err != nil {
			saveErr.CompareAndSwap(nil, err)
		}
	}

	claim := func() int {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return -1
			}
			if results[i] != nil {
				continue // resumed from checkpoint; never re-run
			}
			// Atomic add-then-compare: at most InterruptAfter claims
			// succeed even with a parallel pool (a worker that lands past
			// the limit abandons its index — it counts as never reached).
			if opts.InterruptAfter > 0 && started.Add(1) > int64(opts.InterruptAfter) {
				return -1
			}
			return i
		}
	}

	if workers <= 1 {
		for i := claim(); i >= 0; i = claim() {
			runOne(i)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := claim(); i >= 0; i = claim() {
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}
	if err, _ := saveErr.Load().(error); err != nil {
		return nil, fmt.Errorf("scenario: saving checkpoint: %w", err)
	}
	if opts.InterruptAfter > 0 {
		for i := range results {
			if results[i] == nil && errs[i] == nil {
				interrupted = true // some scenario was never reached
				break
			}
		}
	}

	// Ordered aggregation: everything below walks scenarios in index
	// order, so the output is independent of worker scheduling.
	out := &SuiteResult{
		Suite:    s.Name,
		Results:  results,
		Errs:     errs,
		Executed: int(executed.Load()),
		Resumed:  resumed,
	}
	if interrupted {
		return out, ErrInterrupted
	}
	if archive != nil {
		if err := archiveSuite(archive, s, scenarios, seeds, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// archiveSuite stores suite provenance: one evaluation record per completed
// scenario (its deployment, netem rules, and aggregate metrics) plus a
// suite.json manifest with the full declarative spec and root seed.
func archiveSuite(a *provenance.Archive, s Suite, scenarios []Scenario, seeds []int64, out *SuiteResult) error {
	for i, r := range out.Results {
		if r == nil {
			continue
		}
		sc := scenarios[i]
		dep := &provenance.DeploymentRecord{
			Configuration: map[string]string{
				"engine_layer":  sc.withDefaults().EngineLayer,
				"network_model": sc.networkModelName(),
				"pools":         sc.withDefaults().Pools.String(),
				"workload":      sc.Workload.kind(),
				"seed":          fmt.Sprint(seeds[i]),
			},
		}
		if cfg, err := sc.Deployment(); err == nil {
			for _, rule := range cfg.Network {
				dep.NetworkRules = append(dep.NetworkRules,
					fmt.Sprintf("%s->%s delay=%gms rate=%gGbps loss=%g%% sym=%v",
						rule.Src, rule.Dst, rule.DelayMS, rule.RateGbps, rule.LossPct, rule.Symmetric))
			}
		}
		rec := provenance.EvaluationRecord{
			Index:      i,
			Config:     map[string]float64{"gateways": float64(r.Gateways), "clients": float64(r.Clients)},
			Objective:  r.RespMean,
			Metric:     suiteMetric,
			Deployment: dep,
			Extra: map[string]float64{
				"engine_resp_mean": r.EngineResp.Mean,
				"net_overhead_sec": r.NetOverheadSec,
				"resp_p95":         r.RespP95,
				"throughput":       r.Throughput,
				"completed":        float64(r.Completed),
			},
		}
		if err := a.Finalize(rec); err != nil {
			return err
		}
	}
	manifest, err := json.MarshalIndent(struct {
		Suite    Suite   `json:"suite"`
		Seeds    []int64 `json:"scenario_seeds"`
		Executed int     `json:"executed"`
		Resumed  int     `json:"resumed"`
	}{s, seeds, out.Executed, out.Resumed}, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: marshal suite manifest: %w", err)
	}
	return a.WriteBlob("suite.json", manifest)
}
