package scenario

import (
	"fmt"

	"e2clab/internal/export"
)

// ComparisonTable renders the cross-scenario comparison: one row per
// scenario in suite order, so fixed-seed output is reproducible
// byte-for-byte. Failed or unreached scenarios render their status in
// place of metrics.
func ComparisonTable(sr *SuiteResult) *export.Table {
	t := export.NewTable(fmt.Sprintf("suite %s — cross-scenario comparison", sr.Suite),
		"scenario", "net model", "gateways", "clients", "resp (s)", "±std", "engine (s)",
		"network (s)", "p95 (s)", "throughput (req/s)", "completed", "availability")
	for i, r := range sr.Results {
		if r == nil {
			status := "not run"
			if sr.Errs[i] != nil {
				status = "FAILED: " + sr.Errs[i].Error()
			}
			t.AddRow(fmt.Sprintf("#%d", i), status)
			continue
		}
		t.AddRow(r.Name, r.NetModel, r.Gateways, r.Clients,
			r.RespMean, r.EngineResp.StdDev, r.EngineResp.Mean,
			r.NetOverheadSec, r.RespP95, r.Throughput, r.Completed,
			fmt.Sprintf("%.4f", r.Availability))
	}
	return t
}

// DetailTable renders one scenario's aggregate as a metric/value table.
func DetailTable(r *Result) *export.Table {
	t := export.NewTable(fmt.Sprintf("scenario %s", r.Name), "metric", "value")
	t.AddRow("network model", r.NetModel)
	t.AddRow("gateways", r.Gateways)
	t.AddRow("clients", r.Clients)
	t.AddRow("workload phases", r.Phases)
	t.AddRow("user resp time (s)", fmt.Sprintf("%.3f (±%.4f)", r.RespMean, r.EngineResp.StdDev))
	t.AddRow("engine resp time (s)", r.EngineResp.Mean)
	t.AddRow("network overhead (s)", r.NetOverheadSec)
	t.AddRow("engine resp min/max (s)", fmt.Sprintf("%.3f / %.3f", r.EngineResp.Min, r.EngineResp.Max))
	t.AddRow("engine resp p95 (s)", r.RespP95)
	t.AddRow("throughput (req/s)", r.Throughput)
	t.AddRow("completed requests", r.Completed)
	t.AddRow("samples", r.EngineResp.N)
	if r.FaultGatewayFailures+r.FaultCrashRequeues+r.FaultCrashFailures+r.FaultDropped > 0 {
		t.AddRow("fault: gateway failures", r.FaultGatewayFailures)
		t.AddRow("fault: crash requeues", r.FaultCrashRequeues)
		t.AddRow("fault: crash failures", r.FaultCrashFailures)
		t.AddRow("fault: dropped arrivals", r.FaultDropped)
	}
	if r.Failed+r.Retries+r.Hedges+r.Rerouted+r.Shed+r.BreakerOpens+r.DeadlineExceeded > 0 {
		t.AddRow("availability", fmt.Sprintf("%.4f", r.Availability))
		t.AddRow("goodput (req/s)", r.Goodput)
		t.AddRow("failed requests", r.Failed)
		t.AddRow("resilience: retries", fmt.Sprintf("%d (%d won)", r.Retries, r.RetrySuccesses))
		t.AddRow("resilience: hedges", fmt.Sprintf("%d (%d won)", r.Hedges, r.HedgeWins))
		t.AddRow("resilience: rerouted", r.Rerouted)
		t.AddRow("resilience: shed", r.Shed)
		t.AddRow("resilience: breaker opens", r.BreakerOpens)
		t.AddRow("resilience: deadline exceeded", r.DeadlineExceeded)
	}
	return t
}
