package scenario

import (
	"fmt"
	"math"

	"e2clab/internal/workload"
)

// Shape describes how the client population evolves over a scenario run.
//
// By default a shape is realized as a deterministic sequence of
// piecewise-constant closed-loop phases, each executed as its own (seeded)
// engine run; queue state does not carry across phase boundaries — the
// shape models demand, not a continuous trace. Setting Continuous instead
// lowers the shape to ONE open-loop engine run driven by a piecewise
// arrival-rate profile (seeded Lewis thinning), so backlog built during a
// burst drains into the next phase exactly as it would in production.
type Shape struct {
	// Kind is "constant" (default), "bursty" (alternating off-peak/peak
	// plateaus, the spring-identification-burst pattern of Figure 2),
	// "diurnal" (a sinusoidal day profile sampled into phases), or "trace"
	// (a recorded arrival-count trace driven open-loop; requires Trace and
	// is always continuous).
	Kind string `json:"kind,omitempty"`
	// Phases is the number of piecewise-constant phases the experiment
	// duration is split into (defaults: constant 1, bursty 6, diurnal 8).
	Phases int `json:"phases,omitempty"`
	// BaseFrac is the off-peak population as a fraction of the scenario's
	// full client population (default 0.5; constant shapes ignore it).
	BaseFrac float64 `json:"base_frac,omitempty"`
	// Continuous carries queue state across phase boundaries by lowering
	// the shape to a single time-varying open-loop run instead of
	// independent closed-loop phases. Trace shapes are continuous by
	// definition.
	Continuous bool `json:"continuous,omitempty"`
	// RatePerClient converts phase populations to arrival rates for the
	// continuous lowering, in req/s per client. Zero (the default)
	// calibrates it per configuration: the scenario probes its own
	// closed-loop throughput with a short healthy run and divides by the
	// population, so the continuous form presents the demand its phased
	// form actually sustains under THESE pools, replicas, and network —
	// not a global constant.
	RatePerClient float64 `json:"rate_per_client,omitempty"`
	// Trace is the recorded workload for kind "trace": per-bin arrival
	// counts lowered to a piecewise arrival-rate profile.
	Trace *workload.Trace `json:"trace,omitempty"`
}

// Phase is one piecewise-constant segment of a shaped workload.
type Phase struct {
	Clients         int
	DurationSeconds float64
}

func (s Shape) kind() string {
	if s.Kind == "" {
		return "constant"
	}
	return s.Kind
}

func (s Shape) phases() int {
	if s.Phases > 0 {
		return s.Phases
	}
	switch s.kind() {
	case "bursty":
		return 6
	case "diurnal":
		return 8
	}
	return 1
}

func (s Shape) baseFrac() float64 {
	if s.BaseFrac > 0 {
		return s.BaseFrac
	}
	return 0.5
}

// continuous reports whether the shape lowers to one open-loop run: set
// explicitly, or implied by the trace kind (a recorded trace has no
// phased closed-loop form).
func (s Shape) continuous() bool {
	return s.Continuous || s.kind() == "trace"
}

// Validate rejects unknown kinds and degenerate parameters.
func (s Shape) Validate() error {
	switch s.kind() {
	case "constant", "bursty", "diurnal":
		if s.Trace != nil {
			return fmt.Errorf("workload shape: trace set but kind is %q, not trace", s.kind())
		}
	case "trace":
		if s.Trace == nil {
			return fmt.Errorf("workload shape: kind trace needs a trace")
		}
		if err := s.Trace.Validate(); err != nil {
			return fmt.Errorf("workload shape: %w", err)
		}
	default:
		return fmt.Errorf("workload shape: unknown kind %q", s.Kind)
	}
	if s.Phases < 0 {
		return fmt.Errorf("workload shape: negative phase count %d", s.Phases)
	}
	if s.BaseFrac < 0 || s.BaseFrac > 1 {
		return fmt.Errorf("workload shape: base_frac %v outside [0,1]", s.BaseFrac)
	}
	if s.RatePerClient < 0 {
		return fmt.Errorf("workload shape: negative rate_per_client %v", s.RatePerClient)
	}
	return nil
}

// rates lowers already-expanded phases to the piecewise arrival-rate
// profile of the shape's continuous form: each phase's population times
// rpc (the explicit or calibrated per-client rate). Taking the phases
// (instead of re-expanding) keeps the Result's reported phase count and
// the profile driving the run derived from one expansion.
func (s Shape) rates(phases []Phase, rpc float64) *workload.PiecewiseRate {
	pr := &workload.PiecewiseRate{Phases: make([]workload.RatePhase, len(phases))}
	for i, ph := range phases {
		pr.Phases[i] = workload.RatePhase{
			Rate:            float64(ph.Clients) * rpc,
			DurationSeconds: ph.DurationSeconds,
		}
	}
	return pr
}

// Expand realizes the shape over a full client population and experiment
// duration. The expansion is deterministic: equal-length phases whose
// populations follow the shape, floored at one client.
func (s Shape) Expand(clients int, durationSeconds float64) []Phase {
	n := s.phases()
	if s.kind() == "constant" {
		n = 1
	}
	out := make([]Phase, n)
	per := durationSeconds / float64(n)
	base := s.baseFrac() * float64(clients)
	span := float64(clients) - base
	for i := range out {
		var c float64
		switch s.kind() {
		case "bursty":
			// Alternating plateaus, starting off-peak, ending on-peak.
			if i%2 == 0 {
				c = base
			} else {
				c = float64(clients)
			}
		case "diurnal":
			// One sinusoidal period: trough at the first phase, crest
			// mid-experiment.
			c = base + span*0.5*(1-math.Cos(2*math.Pi*float64(i)/float64(n)))
		default:
			c = float64(clients)
		}
		cl := int(math.Round(c))
		if cl < 1 {
			cl = 1
		}
		out[i] = Phase{Clients: cl, DurationSeconds: per}
	}
	return out
}
