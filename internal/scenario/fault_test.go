package scenario

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"e2clab/internal/fault"
	"e2clab/internal/workload"
)

// faultedScenario is the fixed-seed churn+crash+flap scenario behind the
// golden pin and the sweep-determinism tests.
func faultedScenario() Scenario {
	return Scenario{
		Name:         "golden-faulted",
		NetworkModel: "simulated",
		Replicas:     2,
		Gateways: []GatewayClass{
			{Name: "fiber", Count: 4, DelayMS: 2, RateGbps: 10},
			{Name: "lte", Count: 2, DelayMS: 45, RateGbps: 0.05},
		},
		ClientsPerGateway: 2,
		DurationSeconds:   150,
		Faults: &fault.Spec{
			GatewayChurn:   &fault.Churn{MeanUpSeconds: 50, MeanDownSeconds: 12},
			ReplicaCrashes: []fault.Crash{{Replica: 1, AtSeconds: 60, RecoverAfterSeconds: 30}},
			LinkFlaps:      []fault.Flap{{Gateway: 0, FirstAtSeconds: 40, DownSeconds: 8, PeriodSeconds: 55}},
		},
	}
}

// Pinned values for TestFaultedScenarioGoldenPin, captured from the PR that
// introduced fault injection.
const (
	goldenFaultCompleted  = 1201
	goldenFaultRespMean   = 1.5361568230053009
	goldenFaultThroughput = 7.8818181818181818
	goldenFaultGwFails    = 22
	goldenFaultRequeues   = 6
)

// TestFaultedScenarioGoldenPin pins a faulted fixed-seed scenario
// bit-for-bit: the fault timeline compilation, the failover RNG streams,
// and the churned event order are all part of the determinism contract. If
// this fails, understand the reordering before updating the values.
func TestFaultedScenarioGoldenPin(t *testing.T) {
	r, err := faultedScenario().Run(55, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != goldenFaultCompleted {
		t.Errorf("Completed = %d, want %d", r.Completed, goldenFaultCompleted)
	}
	if math.Float64bits(r.RespMean) != math.Float64bits(goldenFaultRespMean) {
		t.Errorf("RespMean = %.17g, want %.17g (bit-exact)", r.RespMean, goldenFaultRespMean)
	}
	if math.Float64bits(r.Throughput) != math.Float64bits(goldenFaultThroughput) {
		t.Errorf("Throughput = %.17g, want %.17g (bit-exact)", r.Throughput, goldenFaultThroughput)
	}
	if r.FaultGatewayFailures != goldenFaultGwFails {
		t.Errorf("FaultGatewayFailures = %d, want %d", r.FaultGatewayFailures, goldenFaultGwFails)
	}
	if r.FaultCrashRequeues != goldenFaultRequeues {
		t.Errorf("FaultCrashRequeues = %d, want %d", r.FaultCrashRequeues, goldenFaultRequeues)
	}
}

// TestFaultSweepSuiteParallelDeterminism: a FaultSweep campaign — the
// failure-rate sweep `experiments suite` exposes — stays bit-identical at
// any suite parallelism, fault counters included.
func TestFaultSweepSuiteParallelDeterminism(t *testing.T) {
	base := faultedScenario()
	base.Name = "chaos"
	base.Faults = nil
	s := Suite{
		Name: "fault-sweep", Seed: 11, DurationSeconds: 120,
		Scenarios: FaultSweep(base, []FaultProfile{
			{Name: "none", Spec: nil},
			{Name: "churn", Spec: &fault.Spec{
				GatewayChurn: &fault.Churn{MeanUpSeconds: 40, MeanDownSeconds: 10},
			}},
			{Name: "churn-crash", Spec: &fault.Spec{
				GatewayChurn:   &fault.Churn{MeanUpSeconds: 40, MeanDownSeconds: 10},
				ReplicaCrashes: []fault.Crash{{Replica: 0, AtSeconds: 50, RecoverAfterSeconds: 25}},
			}},
		}),
	}
	seq := mustRun(t, s, Options{Parallel: 1})
	par := mustRun(t, s, Options{Parallel: 4})
	for i := range seq.Results {
		if !reflect.DeepEqual(bits(seq.Results[i]), bits(par.Results[i])) {
			t.Errorf("scenario %d (%s): parallel faulted result differs from sequential",
				i, seq.Results[i].Name)
		}
	}
	// The schedule must actually bite in the faulted rows.
	if seq.Results[1].FaultGatewayFailures == 0 {
		t.Error("churn profile produced no gateway failures")
	}
	if seq.Results[2].FaultCrashRequeues == 0 {
		t.Error("crash profile produced no requeues")
	}
	if seq.Results[0].FaultGatewayFailures != 0 || seq.Results[0].FaultDropped != 0 {
		t.Error("fault-free profile reported fault outcomes")
	}
}

// TestSuiteCheckpointInvalidatedByFaultChange: editing the fault schedule
// changes the scenario fingerprint, so a resumed campaign re-runs it
// instead of serving results from a different failure regime.
func TestSuiteCheckpointInvalidatedByFaultChange(t *testing.T) {
	sc := faultedScenario()
	sc.DurationSeconds = 90
	s := Suite{Name: "faulted-ck", Seed: 4, Scenarios: []Scenario{sc}}
	ckpt := filepath.Join(t.TempDir(), "suite.json")
	mustRun(t, s, Options{Parallel: 1, CheckpointPath: ckpt})

	// Unchanged spec resumes.
	sr := mustRun(t, s, Options{Parallel: 1, CheckpointPath: ckpt})
	if sr.Resumed != 1 || sr.Executed != 0 {
		t.Fatalf("unchanged faulted scenario did not resume: executed=%d resumed=%d",
			sr.Executed, sr.Resumed)
	}

	// Moving the crash invalidates.
	s.Scenarios[0].Faults.ReplicaCrashes[0].AtSeconds = 70
	sr = mustRun(t, s, Options{Parallel: 1, CheckpointPath: ckpt})
	if sr.Resumed != 0 || sr.Executed != 1 {
		t.Errorf("fault change not fingerprinted: executed=%d resumed=%d", sr.Executed, sr.Resumed)
	}

	// Dropping the schedule entirely invalidates too.
	s.Scenarios[0].Faults = nil
	sr = mustRun(t, s, Options{Parallel: 1, CheckpointPath: ckpt})
	if sr.Resumed != 0 || sr.Executed != 1 {
		t.Errorf("fault removal not fingerprinted: executed=%d resumed=%d", sr.Executed, sr.Resumed)
	}
}

// TestFaultValidationAtScenarioLevel: schedules are cross-checked against
// the scenario topology before anything runs.
func TestFaultValidationAtScenarioLevel(t *testing.T) {
	base := faultedScenario()

	analytical := base
	analytical.NetworkModel = ""
	if err := analytical.Validate(); err == nil {
		t.Error("churn+flap schedule accepted on the analytical model")
	}

	badReplica := faultedScenario()
	badReplica.Faults.ReplicaCrashes[0].Replica = 7
	if err := badReplica.Validate(); err == nil {
		t.Error("crash beyond the replica count accepted")
	}

	badGateway := faultedScenario()
	badGateway.Faults.LinkFlaps[0].Gateway = 99
	if err := badGateway.Validate(); err == nil {
		t.Error("flap beyond the gateway count accepted")
	}

	fogBackhaul := faultedScenario()
	fogBackhaul.EngineLayer = "fog"
	fogBackhaul.Faults.LinkFlaps[0].Gateway = fault.Backhaul
	if err := fogBackhaul.Validate(); err == nil {
		t.Error("backhaul flap accepted on a fog placement with no backhaul")
	}

	if err := base.Validate(); err != nil {
		t.Errorf("valid faulted scenario rejected: %v", err)
	}
}

// Pinned values for TestPacketScenarioGoldenPin.
const (
	goldenPacketCompleted = 838
	goldenPacketRespMean  = 2.8191034601521952
)

// TestPacketScenarioGoldenPin pins the packet network model on the golden
// simnet topology and checks it actually diverges from whole-payload
// transport (same spec, same seed, different loss accounting).
func TestPacketScenarioGoldenPin(t *testing.T) {
	sc := Scenario{
		Name:         "golden-packet",
		NetworkModel: "packet",
		Gateways: []GatewayClass{
			{Name: "fiber", Count: 6, DelayMS: 2, RateGbps: 10},
			{Name: "lte", Count: 4, DelayMS: 45, RateGbps: 0.05, LossPct: 1},
		},
		ClientsPerGateway: 2,
		DurationSeconds:   120,
	}
	r, err := sc.Run(77, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.NetModel != "packet" {
		t.Errorf("NetModel = %q, want packet", r.NetModel)
	}
	if r.Completed != goldenPacketCompleted {
		t.Errorf("Completed = %d, want %d", r.Completed, goldenPacketCompleted)
	}
	if math.Float64bits(r.RespMean) != math.Float64bits(goldenPacketRespMean) {
		t.Errorf("RespMean = %.17g, want %.17g (bit-exact)", r.RespMean, goldenPacketRespMean)
	}
	// Same topology and seed under whole-payload transport must differ —
	// otherwise the packet flag is dead.
	whole := sc
	whole.NetworkModel = "simulated"
	w, err := whole.Run(77, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(w.RespMean) == math.Float64bits(r.RespMean) {
		t.Error("packet and whole-payload transport produced identical results")
	}
}

// TestTraceScenario: a recorded trace drives one continuous open-loop run;
// the Result reports the trace's bins as its phases and the run is
// deterministic in its seed.
func TestTraceScenario(t *testing.T) {
	sc := Scenario{
		Name:     "traced",
		Gateways: []GatewayClass{{Name: "g", Count: 4, DelayMS: 2, RateGbps: 10}},
		Workload: Shape{Kind: "trace", Trace: &workload.Trace{
			BinSeconds: 30,
			Counts:     []float64{60, 150, 240, 120, 60},
		}},
		DurationSeconds: 150,
	}
	a, err := sc.Run(19, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Phases != 5 {
		t.Errorf("Phases = %d, want 5 (one per trace bin)", a.Phases)
	}
	if a.Completed == 0 {
		t.Error("trace-driven run completed nothing")
	}
	b, err := sc.Run(19, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.RespMean) != math.Float64bits(b.RespMean) || a.Completed != b.Completed {
		t.Error("trace scenario not deterministic for a fixed seed")
	}

	// Sweep naming + required trace.
	family := TraceSweep(sc, []NamedTrace{{Name: "day1", Trace: sc.Workload.Trace}})
	if len(family) != 1 || family[0].Name != "traced-day1" {
		t.Errorf("trace sweep naming wrong: %+v", family)
	}
	family[0].Workload.Trace.Counts[0] = 999
	if sc.Workload.Trace.Counts[0] != 60 {
		t.Error("trace sweep shares its trace with the base")
	}
	bad := sc
	bad.Workload = Shape{Kind: "trace"}
	if bad.Validate() == nil {
		t.Error("trace kind without a trace accepted")
	}
}

// TestFaultSweepCloneIsolation: profiles are deep-copied into the family —
// mutating one generated scenario's schedule must not leak into the
// profile or its siblings.
func TestFaultSweepCloneIsolation(t *testing.T) {
	spec := &fault.Spec{ReplicaCrashes: []fault.Crash{{Replica: 0, AtSeconds: 10}}}
	base := Scenario{
		Name:     "b",
		Replicas: 1,
		Gateways: []GatewayClass{{Name: "g", Count: 2, DelayMS: 2}},
	}
	family := FaultSweep(base, []FaultProfile{{Name: "p1", Spec: spec}, {Name: "p2", Spec: spec}})
	if family[0].Name != "b-p1" || family[1].Name != "b-p2" {
		t.Fatalf("fault sweep naming wrong: %q, %q", family[0].Name, family[1].Name)
	}
	family[0].Faults.ReplicaCrashes[0].AtSeconds = 99
	if spec.ReplicaCrashes[0].AtSeconds != 10 {
		t.Error("fault sweep mutated the source profile")
	}
	if family[1].Faults.ReplicaCrashes[0].AtSeconds != 10 {
		t.Error("fault sweep shares schedules between siblings")
	}
	if base.Faults != nil {
		t.Error("fault sweep mutated its base")
	}
	// clone() itself isolates too.
	c := clone(family[1])
	c.Faults.ReplicaCrashes[0].AtSeconds = 77
	if family[1].Faults.ReplicaCrashes[0].AtSeconds != 10 {
		t.Error("clone shares the fault schedule")
	}
}

// TestContinuousCalibrationTightensCorrespondence: with RatePerClient
// unset, the continuous lowering probes the configuration's own
// closed-loop throughput instead of assuming the global 0.35 req/s — on a
// lightly-loaded deployment (short request cycle, per-client rate well
// above 0.35) the calibrated open-loop run must track the phased form far
// more closely than the old constant does.
func TestContinuousCalibrationTightensCorrespondence(t *testing.T) {
	base := Scenario{
		Name:              "corr",
		Gateways:          []GatewayClass{{Name: "g", Count: 4, DelayMS: 2, RateGbps: 10}},
		ClientsPerGateway: 2,
		DurationSeconds:   240,
	}
	phased, err := base.Run(23, 1)
	if err != nil {
		t.Fatal(err)
	}
	calibrated := base
	calibrated.Workload = Shape{Continuous: true}
	cal, err := calibrated.Run(23, 1)
	if err != nil {
		t.Fatal(err)
	}
	forced := base
	forced.Workload = Shape{Continuous: true, RatePerClient: 0.35}
	old, err := forced.Run(23, 1)
	if err != nil {
		t.Fatal(err)
	}
	gap := func(r *Result) float64 {
		return math.Abs(r.Throughput-phased.Throughput) / phased.Throughput
	}
	if g := gap(cal); g > 0.15 {
		t.Errorf("calibrated continuous throughput %0.3f vs phased %0.3f: gap %.3f > 15%%",
			cal.Throughput, phased.Throughput, g)
	}
	if gap(cal) >= gap(old) {
		t.Errorf("calibration did not tighten correspondence: calibrated gap %.3f >= 0.35-default gap %.3f",
			gap(cal), gap(old))
	}
	// An explicit rate is honored verbatim: the old default's demand is
	// roughly 0.35 x clients, far below this configuration's capacity.
	if old.Throughput >= cal.Throughput {
		t.Errorf("forced 0.35 throughput %0.3f not below calibrated %0.3f",
			old.Throughput, cal.Throughput)
	}
}
