package tune

import (
	"encoding/json"
	"fmt"
	"os"

	"e2clab/internal/space"
)

// The paper's Optimization Manager leans on Ray Tune's checkpointing and
// logging; this file persists an Analysis so an interrupted or finished
// tuning run can be reloaded for reporting, and a resumed run can be seeded
// from the completed trials.

// analysisJSON is the serialized form of an Analysis.
type analysisJSON struct {
	Name   string      `json:"name"`
	Metric string      `json:"metric"`
	Mode   string      `json:"mode"`
	Trials []trialJSON `json:"trials"`
}

type trialJSON struct {
	ID      int       `json:"id"`
	Config  []float64 `json:"config"`
	Status  string    `json:"status"`
	Value   float64   `json:"value"`
	Reports []Report  `json:"reports,omitempty"`
	Err     string    `json:"error,omitempty"`
}

// Save writes the analysis as JSON.
func (a *Analysis) Save(path string) error {
	out := analysisJSON{Name: a.Name, Metric: a.Metric, Mode: a.Mode.String()}
	for _, t := range a.Trials {
		tj := trialJSON{ID: t.ID, Config: t.Config, Status: t.Status.String(),
			Value: t.Value, Reports: t.Reports}
		if t.Err != nil {
			tj.Err = t.Err.Error()
		}
		out.Trials = append(out.Trials, tj)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("tune: marshal analysis: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load reads an analysis previously written by Save.
func Load(path string) (*Analysis, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tune: %w", err)
	}
	var in analysisJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return nil, fmt.Errorf("tune: corrupt analysis %s: %w", path, err)
	}
	a := &Analysis{Name: in.Name, Metric: in.Metric}
	// A mangled mode must not silently fall back to Min: SeedFrom would
	// negate values with the wrong sign and a resumed max-mode run would
	// optimize the wrong direction. Accept exactly the Mode.String() values
	// Save writes.
	switch in.Mode {
	case space.Min.String():
		a.Mode = space.Min
	case space.Max.String():
		a.Mode = space.Max
	default:
		return nil, fmt.Errorf("tune: corrupt analysis %s: unknown mode %q", path, in.Mode)
	}
	for _, tj := range in.Trials {
		t := &Trial{ID: tj.ID, Config: tj.Config, Value: tj.Value, Reports: tj.Reports}
		switch tj.Status {
		case "completed":
			t.Status = Completed
		case "stopped":
			t.Status = Stopped
		case "failed":
			t.Status = Failed
		case "running":
			t.Status = Running
		default:
			t.Status = Pending
		}
		if tj.Err != "" {
			t.Err = fmt.Errorf("%s", tj.Err)
		}
		a.Trials = append(a.Trials, t)
	}
	return a, nil
}

// SeedFrom replays a saved analysis' completed and stopped trials into a
// search algorithm (Tell for each), so a resumed run continues from the
// prior evidence instead of restarting cold.
func SeedFrom(a *Analysis, search SearchAlgorithm) int {
	sign := 1.0
	if a.Mode == space.Max {
		sign = -1
	}
	n := 0
	for _, t := range a.Trials {
		if t.Status == Completed || t.Status == Stopped {
			search.Tell(t.Config, sign*t.Value)
			n++
		}
	}
	return n
}
