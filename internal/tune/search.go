package tune

import (
	"math/rand"
	"sync"

	"e2clab/internal/rngutil"
	"e2clab/internal/space"
)

// RandomSearch samples configurations uniformly from the space — tune's
// basic variant generator for config dicts like Listing 1's tune.randint
// ranges.
type RandomSearch struct {
	Space *space.Space
	rng   *rand.Rand
	once  sync.Once
	Seed  int64
}

// Ask implements SearchAlgorithm.
func (r *RandomSearch) Ask() []float64 {
	r.once.Do(func() { r.rng = rngutil.New(r.Seed + 1) })
	u := make([]float64, r.Space.Len())
	for i := range u {
		u[i] = r.rng.Float64()
	}
	return r.Space.FromUnit(u)
}

// Tell implements SearchAlgorithm (random search does not learn).
func (r *RandomSearch) Tell([]float64, float64) {}

// ListSearch replays a fixed list of configurations — used for the OAT
// sensitivity sweeps of Section IV-C and for baseline-vs-optimum
// comparisons. Asks beyond the list cycle back to the start.
type ListSearch struct {
	Configs [][]float64
	next    int
}

// Ask implements SearchAlgorithm.
func (l *ListSearch) Ask() []float64 {
	x := l.Configs[l.next%len(l.Configs)]
	l.next++
	return append([]float64(nil), x...)
}

// Tell implements SearchAlgorithm.
func (l *ListSearch) Tell([]float64, float64) {}

// GridSearch enumerates the full cross product of per-dimension levels
// (integer dimensions enumerate every value; float dimensions use Levels
// evenly spaced points). Asks beyond the grid cycle.
type GridSearch struct {
	Space  *space.Space
	Levels int // float-dimension resolution (default 5)
	grid   [][]float64
	next   int
}

// Ask implements SearchAlgorithm.
func (g *GridSearch) Ask() []float64 {
	if g.grid == nil {
		g.build()
	}
	x := g.grid[g.next%len(g.grid)]
	g.next++
	return append([]float64(nil), x...)
}

// Tell implements SearchAlgorithm.
func (g *GridSearch) Tell([]float64, float64) {}

// Size returns the number of grid points.
func (g *GridSearch) Size() int {
	if g.grid == nil {
		g.build()
	}
	return len(g.grid)
}

func (g *GridSearch) build() {
	levels := g.Levels
	if levels < 2 {
		levels = 5
	}
	axes := make([][]float64, g.Space.Len())
	for i := 0; i < g.Space.Len(); i++ {
		d := g.Space.Dim(i)
		switch d.Kind {
		case space.IntKind:
			for v := d.Low; v <= d.High; v++ {
				axes[i] = append(axes[i], v)
			}
		case space.CategoricalKind:
			for c := range d.Categories {
				axes[i] = append(axes[i], float64(c))
			}
		default:
			for k := 0; k < levels; k++ {
				axes[i] = append(axes[i], d.Low+(d.High-d.Low)*float64(k)/float64(levels-1))
			}
		}
	}
	idx := make([]int, len(axes))
	for {
		x := make([]float64, len(axes))
		for i, a := range axes {
			x[i] = a[idx[i]]
		}
		g.grid = append(g.grid, x)
		i := 0
		for ; i < len(axes); i++ {
			idx[i]++
			if idx[i] < len(axes[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(axes) {
			return
		}
	}
}
