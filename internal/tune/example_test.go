package tune_test

import (
	"fmt"

	"e2clab/internal/space"
	"e2clab/internal/tune"
)

// A minimal tune.run equivalent: random search over a config space with
// four parallel workers.
func ExampleRun() {
	s := space.New(space.Int("threads", 1, 32))
	analysis, err := tune.Run(tune.RunConfig{
		Name:          "example",
		Metric:        "latency",
		Mode:          space.Min,
		NumSamples:    32,
		MaxConcurrent: 4,
	}, &tune.RandomSearch{Space: s, Seed: 7},
		func(ctx *tune.Context, x []float64) (float64, error) {
			t := x[0]
			return (t - 16) * (t - 16), nil // optimum at 16 threads
		})
	if err != nil {
		panic(err)
	}
	best := analysis.Best()
	fmt.Printf("best threads within 16±1: %v (%d trials)\n",
		best.Config[0] >= 15 && best.Config[0] <= 17, len(analysis.Trials))
	// Output:
	// best threads within 16±1: true (32 trials)
}
