package tune

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"e2clab/internal/bo"
	"e2clab/internal/space"
)

func plantSpace() *space.Space { return space.PlantNetProblem().Space }

func sphereObjective(ctx *Context, x []float64) (float64, error) {
	var s float64
	for _, v := range x {
		s += (v - 0.5) * (v - 0.5)
	}
	return s, nil
}

func unitSpace(d int) *space.Space {
	dims := make([]space.Dimension, d)
	for i := range dims {
		dims[i] = space.Float(fmt.Sprintf("x%d", i), 0, 1)
	}
	return space.New(dims...)
}

func TestRunCompletesAllSamples(t *testing.T) {
	s := unitSpace(2)
	a, err := Run(RunConfig{Name: "t", Metric: "m", NumSamples: 12, MaxConcurrent: 4},
		&RandomSearch{Space: s, Seed: 1}, sphereObjective)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trials) != 12 {
		t.Fatalf("got %d trials", len(a.Trials))
	}
	if got := a.CountByStatus()[Completed]; got != 12 {
		t.Errorf("completed = %d, want 12", got)
	}
	if a.Best() == nil {
		t.Fatal("no best trial")
	}
}

func TestRunValidation(t *testing.T) {
	s := unitSpace(1)
	if _, err := Run(RunConfig{NumSamples: 0}, &RandomSearch{Space: s}, sphereObjective); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := Run(RunConfig{NumSamples: 1}, nil, sphereObjective); err == nil {
		t.Error("nil search accepted")
	}
	if _, err := Run(RunConfig{NumSamples: 1}, &RandomSearch{Space: s}, nil); err == nil {
		t.Error("nil objective accepted")
	}
}

func TestConcurrencyLimit(t *testing.T) {
	s := unitSpace(1)
	var cur, peak int64
	var mu sync.Mutex
	obj := func(ctx *Context, x []float64) (float64, error) {
		c := atomic.AddInt64(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		defer atomic.AddInt64(&cur, -1)
		// Busy-wait a moment to force overlap.
		for i := 0; i < 100000; i++ {
			_ = i
		}
		return x[0], nil
	}
	if _, err := Run(RunConfig{NumSamples: 16, MaxConcurrent: 2}, &RandomSearch{Space: s, Seed: 2}, obj); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if peak > 2 {
		t.Errorf("peak concurrency %d exceeded limit 2", peak)
	}
}

func TestFailedTrialsRecorded(t *testing.T) {
	s := unitSpace(1)
	obj := func(ctx *Context, x []float64) (float64, error) {
		if ctx.TrialID()%2 == 0 {
			return 0, errors.New("deployment failed")
		}
		return x[0], nil
	}
	a, err := Run(RunConfig{NumSamples: 6}, &RandomSearch{Space: s, Seed: 3}, obj)
	if err != nil {
		t.Fatal(err)
	}
	counts := a.CountByStatus()
	if counts[Failed] != 3 || counts[Completed] != 3 {
		t.Errorf("counts = %v", counts)
	}
	best := a.Best()
	if best == nil || best.Status != Completed {
		t.Error("Best should skip failed trials")
	}
	// Failed trials sort last.
	sorted := a.Sorted()
	for _, tr := range sorted[:3] {
		if tr.Status != Completed {
			t.Error("completed trials should sort first")
		}
	}
}

func TestAllTrialsFailed(t *testing.T) {
	s := unitSpace(1)
	obj := func(ctx *Context, x []float64) (float64, error) { return 0, errors.New("boom") }
	a, err := Run(RunConfig{NumSamples: 3}, &RandomSearch{Space: s, Seed: 4}, obj)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best() != nil {
		t.Error("Best() should be nil when everything failed")
	}
}

func TestModeMaxSelectsLargest(t *testing.T) {
	s := unitSpace(1)
	obj := func(ctx *Context, x []float64) (float64, error) { return x[0], nil }
	a, err := Run(RunConfig{NumSamples: 20, Mode: space.Max}, &RandomSearch{Space: s, Seed: 5}, obj)
	if err != nil {
		t.Fatal(err)
	}
	best := a.Best()
	for _, tr := range a.Trials {
		if tr.Value > best.Value {
			t.Errorf("trial %v better than Best %v under Max", tr.Value, best.Value)
		}
	}
	sorted := a.Sorted()
	if sorted[0].ID != best.ID {
		t.Error("Sorted()[0] != Best()")
	}
}

func TestBOIntegrationListing1(t *testing.T) {
	// The Listing 1 stack: SkOpt-style search + concurrency limiter 2 +
	// ASHA + 30 samples on the Pl@ntNet space with a synthetic response
	// surface whose optimum is (54, 54, 53, 6).
	sp := plantSpace()
	opt, err := bo.New(sp, bo.Config{BaseEstimator: "ET", NInitialPoints: 10,
		InitialPointGenerator: "lhs", AcqFunc: "gp_hedge", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	obj := func(ctx *Context, x []float64) (float64, error) {
		v := 2.4 + math.Pow(x[0]-54, 2)/800 + math.Pow(x[1]-54, 2)/3000 +
			math.Pow(x[2]-53, 2)/2500 + math.Pow(x[3]-6, 2)/40
		return v, nil
	}
	a, err := Run(RunConfig{Name: "plantnet_engine", Metric: "user_resp_time",
		Mode: space.Min, NumSamples: 30, MaxConcurrent: 2,
		Scheduler: &AsyncHyperBand{}}, opt, obj)
	if err != nil {
		t.Fatal(err)
	}
	best := a.Best()
	if best == nil {
		t.Fatal("no best")
	}
	if best.Value > 2.55 {
		t.Errorf("best %v at %v — BO failed to descend", best.Value, best.Config)
	}
}

func TestListSearchReplaysConfigs(t *testing.T) {
	cfgs := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	ls := &ListSearch{Configs: cfgs}
	for i := 0; i < 6; i++ {
		x := ls.Ask()
		want := cfgs[i%3]
		if x[0] != want[0] || x[1] != want[1] {
			t.Fatalf("ask %d = %v, want %v", i, x, want)
		}
	}
	// Returned slices are copies.
	x := ls.Ask()
	x[0] = -1
	if cfgs[0][0] == -1 {
		t.Error("ListSearch leaked internal slice")
	}
}

func TestGridSearchEnumeratesIntSpace(t *testing.T) {
	s := space.New(space.Int("a", 1, 3), space.Int("b", 0, 1))
	g := &GridSearch{Space: s}
	if g.Size() != 6 {
		t.Fatalf("Size = %d, want 6", g.Size())
	}
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		seen[s.Format(g.Ask())] = true
	}
	if len(seen) != 6 {
		t.Errorf("grid visited %d distinct configs, want 6", len(seen))
	}
}

func TestGridSearchFloatLevels(t *testing.T) {
	s := space.New(space.Float("x", 0, 1))
	g := &GridSearch{Space: s, Levels: 3}
	want := []float64{0, 0.5, 1}
	for _, w := range want {
		x := g.Ask()
		if math.Abs(x[0]-w) > 1e-12 {
			t.Errorf("grid level = %v, want %v", x[0], w)
		}
	}
}

func TestASHAStopsBadTrials(t *testing.T) {
	sched := &AsyncHyperBand{GracePeriod: 1, ReductionFactor: 2, MaxT: 64}
	// Four trials report at rung 1: values 1, 2, 3, 4. With eta=2 the
	// top half (<= 2) continues.
	if d := sched.OnReport(0, 1, 1); d != Continue {
		t.Error("first report should continue (not enough evidence)")
	}
	if d := sched.OnReport(1, 1, 2); d != Stop {
		t.Error("value 2 of {1,2} is below the top-1/2 cut (only the best continues)")
	}
	if d := sched.OnReport(2, 1, 3); d != Stop {
		t.Error("value 3 of {1,2,3} should stop (cut=2)")
	}
	if d := sched.OnReport(3, 1, 0.5); d != Continue {
		t.Error("best value should continue")
	}
}

func TestASHADecidesBetweenRungs(t *testing.T) {
	// Rungs are 1, 4, 16, 64 (grace=1, eta=4). A trial reporting every 5
	// iterations never lands on a rung exactly; decisions must fire at the
	// first report crossing each rung, or bad trials are never halved.
	sched := &AsyncHyperBand{GracePeriod: 1, ReductionFactor: 4, MaxT: 100}
	// Four trials cross rungs 1 and 4 with their first report at iteration
	// 5. With eta=4 the cutoff at rung 4 is the best value; the fourth
	// (worst) trial must stop.
	for id, v := range []float64{1, 2, 3} {
		if d := sched.OnReport(id, 5, v); d != Continue {
			t.Errorf("trial %d should continue (not enough evidence yet)", id)
		}
	}
	if d := sched.OnReport(3, 5, 9); d != Stop {
		t.Error("worst of 4 trials crossing rung 4 off-boundary should stop")
	}
}

func TestASHARecordsTrialOncePerRung(t *testing.T) {
	// Repeat reports at an already-recorded rung must not re-enter the
	// cutoff quantile: one chatty trial used to fill a rung by itself and
	// trigger premature halving of the next reporter.
	sched := &AsyncHyperBand{GracePeriod: 1, ReductionFactor: 4, MaxT: 100}
	for i := 0; i < 4; i++ {
		if d := sched.OnReport(0, 1, 1); d != Continue {
			t.Fatal("single-trial rung should never decide")
		}
	}
	// Only the second distinct trial at rung 1: 2 < eta values recorded,
	// so no decision yet — even though trial 0 reported four times.
	if d := sched.OnReport(1, 1, 5); d != Stop && d != Continue {
		t.Fatalf("unexpected decision %v", d)
	} else if d == Stop {
		t.Error("trial stopped off a rung double-counted by repeat reports")
	}
}

func TestASHAGracePeriod(t *testing.T) {
	sched := &AsyncHyperBand{GracePeriod: 8, ReductionFactor: 2}
	for i := 0; i < 20; i++ {
		if d := sched.OnReport(i, 3, float64(1000+i)); d != Stop && true {
			if d == Stop {
				t.Fatal("stopped before grace period")
			}
		}
	}
}

func TestASHAMaxT(t *testing.T) {
	sched := &AsyncHyperBand{GracePeriod: 1, ReductionFactor: 2, MaxT: 10}
	if d := sched.OnReport(0, 10, 1); d != Stop {
		t.Error("report at MaxT should stop (training budget exhausted)")
	}
}

func TestSchedulerStopsViaContext(t *testing.T) {
	s := unitSpace(1)
	// A scheduler that stops everything after the first report.
	sched := &stopAllScheduler{}
	obj := func(ctx *Context, x []float64) (float64, error) {
		for it := 1; it <= 100; it++ {
			if !ctx.Report(it, x[0]) {
				return x[0], nil // stopped early
			}
		}
		return x[0], nil
	}
	a, err := Run(RunConfig{NumSamples: 4, Scheduler: sched}, &RandomSearch{Space: s, Seed: 6}, obj)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.CountByStatus()[Stopped]; got != 4 {
		t.Errorf("stopped = %d, want 4", got)
	}
	for _, tr := range a.Trials {
		if len(tr.Reports) != 1 {
			t.Errorf("trial %d has %d reports, want 1", tr.ID, len(tr.Reports))
		}
	}
}

type stopAllScheduler struct{}

func (stopAllScheduler) OnReport(int, int, float64) Decision { return Stop }
func (stopAllScheduler) OnDone(int)                          {}
func (stopAllScheduler) Name() string                        { return "stopall" }

func TestStatusString(t *testing.T) {
	want := map[Status]string{Pending: "pending", Running: "running",
		Completed: "completed", Stopped: "stopped", Failed: "failed"}
	for st, w := range want {
		if st.String() != w {
			t.Errorf("%d.String() = %q", int(st), st.String())
		}
	}
}

func TestStoppedTrialsFeedSearch(t *testing.T) {
	// Even early-stopped trials must Tell the optimizer (asynchronous
	// model optimization uses every observation).
	s := unitSpace(1)
	var telles int64
	cs := &countingSearch{inner: &RandomSearch{Space: s, Seed: 7}, tells: &telles}
	obj := func(ctx *Context, x []float64) (float64, error) {
		ctx.Report(1, x[0])
		return x[0], nil
	}
	if _, err := Run(RunConfig{NumSamples: 5, Scheduler: &stopAllScheduler{}}, cs, obj); err != nil {
		t.Fatal(err)
	}
	if telles != 5 {
		t.Errorf("search received %d tells, want 5", telles)
	}
}

type countingSearch struct {
	inner SearchAlgorithm
	tells *int64
}

func (c *countingSearch) Ask() []float64 { return c.inner.Ask() }
func (c *countingSearch) Tell(x []float64, y float64) {
	atomic.AddInt64(c.tells, 1)
	c.inner.Tell(x, y)
}

func TestMedianStoppingRule(t *testing.T) {
	m := &MedianStopping{GracePeriod: 2, MinTrials: 2}
	// Three good peers reporting at iterations 1..3.
	for _, id := range []int{0, 1, 2} {
		for it := 1; it <= 3; it++ {
			if d := m.OnReport(id, it, 1.0); d != Continue {
				t.Fatalf("good trial %d stopped at iteration %d", id, it)
			}
		}
	}
	// A bad trial: value far above the peers' median running average.
	if d := m.OnReport(9, 1, 10); d != Continue {
		t.Error("stopped during grace period")
	}
	if d := m.OnReport(9, 2, 10); d != Stop {
		t.Error("bad trial not stopped after grace period")
	}
}

func TestMedianStoppingNeedsPeers(t *testing.T) {
	m := &MedianStopping{GracePeriod: 1, MinTrials: 3}
	// Only one peer: rule must not activate.
	m.OnReport(0, 1, 1)
	m.OnReport(0, 2, 1)
	if d := m.OnReport(1, 2, 100); d != Continue {
		t.Error("rule activated without enough peers")
	}
}

func TestMedianStoppingInRunner(t *testing.T) {
	s := unitSpace(1)
	obj := func(ctx *Context, x []float64) (float64, error) {
		for it := 1; it <= 20; it++ {
			if !ctx.Report(it, x[0]) {
				return x[0], nil
			}
		}
		return x[0], nil
	}
	a, err := Run(RunConfig{NumSamples: 20, MaxConcurrent: 4,
		Scheduler: &MedianStopping{GracePeriod: 3}},
		&RandomSearch{Space: s, Seed: 8}, obj)
	if err != nil {
		t.Fatal(err)
	}
	counts := a.CountByStatus()
	if counts[Stopped] == 0 {
		t.Errorf("median rule never stopped a trial: %v", counts)
	}
	if counts[Completed] == 0 {
		t.Errorf("median rule stopped everything: %v", counts)
	}
}

func TestCheckpointSaveLoad(t *testing.T) {
	s := unitSpace(2)
	obj := func(ctx *Context, x []float64) (float64, error) {
		if ctx.TrialID() == 2 {
			return 0, errors.New("node lost")
		}
		ctx.Report(1, x[0])
		return x[0] + x[1], nil
	}
	a, err := Run(RunConfig{Name: "ckpt", Metric: "m", Mode: space.Max, NumSamples: 5},
		&RandomSearch{Space: s, Seed: 12}, obj)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/analysis.json"
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "ckpt" || got.Metric != "m" || got.Mode != space.Max {
		t.Errorf("metadata lost: %+v", got)
	}
	if len(got.Trials) != 5 {
		t.Fatalf("trials = %d", len(got.Trials))
	}
	if got.Best().ID != a.Best().ID || got.Best().Value != a.Best().Value {
		t.Error("best trial changed across save/load")
	}
	counts := got.CountByStatus()
	if counts[Failed] != 1 || counts[Completed] != 4 {
		t.Errorf("statuses lost: %v", counts)
	}
	for _, tr := range got.Trials {
		if tr.Status == Completed && len(tr.Reports) != 1 {
			t.Errorf("trial %d reports lost", tr.ID)
		}
		if tr.Status == Failed && tr.Err == nil {
			t.Error("failure error lost")
		}
	}
}

func TestSeedFromReplaysEvidence(t *testing.T) {
	s := unitSpace(1)
	a, err := Run(RunConfig{NumSamples: 6}, &RandomSearch{Space: s, Seed: 14},
		func(ctx *Context, x []float64) (float64, error) { return x[0], nil })
	if err != nil {
		t.Fatal(err)
	}
	var tells int64
	cs := &countingSearch{inner: &RandomSearch{Space: s, Seed: 15}, tells: &tells}
	if n := SeedFrom(a, cs); n != 6 {
		t.Errorf("SeedFrom replayed %d, want 6", n)
	}
	if tells != 6 {
		t.Errorf("search received %d tells", tells)
	}
}

func TestCheckpointModeRoundTrip(t *testing.T) {
	s := unitSpace(1)
	obj := func(ctx *Context, x []float64) (float64, error) { return x[0], nil }
	for _, mode := range []space.Mode{space.Min, space.Max} {
		a, err := Run(RunConfig{Name: "modes", Metric: "m", Mode: mode, NumSamples: 3},
			&RandomSearch{Space: s, Seed: 21}, obj)
		if err != nil {
			t.Fatal(err)
		}
		path := t.TempDir() + "/analysis.json"
		if err := a.Save(path); err != nil {
			t.Fatal(err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Mode != mode {
			t.Errorf("mode %v became %v across save/load", mode, got.Mode)
		}
		if got.Best().ID != a.Best().ID || got.Best().Value != a.Best().Value {
			t.Errorf("mode %v: best trial changed across save/load", mode)
		}
	}
}

func TestLoadRejectsUnknownMode(t *testing.T) {
	// An unknown or corrupted mode string used to silently become Min,
	// flipping the optimization direction of a resumed max-mode run.
	dir := t.TempDir()
	for _, mode := range []string{"maximum", "", "MAX", "garbage"} {
		path := dir + "/bad.json"
		body := `{"name":"x","metric":"m","mode":"` + mode + `","trials":[]}`
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("mode %q accepted", mode)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/analysis.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoggerReceivesLifecycleEvents(t *testing.T) {
	s := unitSpace(1)
	var events []string
	logger := func(ev string, tr *Trial) { events = append(events, ev) }
	obj := func(ctx *Context, x []float64) (float64, error) {
		if ctx.TrialID() == 1 {
			return 0, errors.New("boom")
		}
		return x[0], nil
	}
	if _, err := Run(RunConfig{NumSamples: 3, Logger: logger},
		&RandomSearch{Space: s, Seed: 20}, obj); err != nil {
		t.Fatal(err)
	}
	var started, completed, failed int
	for _, ev := range events {
		switch ev {
		case "started":
			started++
		case "completed":
			completed++
		case "failed":
			failed++
		}
	}
	if started != 3 || completed != 2 || failed != 1 {
		t.Errorf("events = %v", events)
	}
}
