package tune

import (
	"math"
	"sort"
	"sync"
)

// AsyncHyperBand is the Async Successive Halving (ASHA) scheduler of
// Listing 1's AsyncHyperBandScheduler: trials report at increasing
// iterations ("rungs"); at each rung, a trial continues only if its value
// is within the top 1/ReductionFactor of all values recorded at that rung
// so far. Being asynchronous, decisions never wait for other trials.
type AsyncHyperBand struct {
	// GracePeriod is the minimum iterations before a trial can be stopped
	// (default 1).
	GracePeriod int
	// ReductionFactor is eta (default 4, Ray's default).
	ReductionFactor int
	// MaxT caps useful training iterations (default 100).
	MaxT int

	mu    sync.Mutex
	rungs map[int][]float64    // rung iteration -> values recorded (min-oriented)
	seen  map[int]map[int]bool // rung iteration -> trial IDs already recorded there
}

// Name implements Scheduler.
func (a *AsyncHyperBand) Name() string { return "async_hyperband" }

func (a *AsyncHyperBand) defaults() (grace, eta, maxT int) {
	grace, eta, maxT = a.GracePeriod, a.ReductionFactor, a.MaxT
	if grace <= 0 {
		grace = 1
	}
	if eta <= 1 {
		eta = 4
	}
	if maxT <= 0 {
		maxT = 100
	}
	return grace, eta, maxT
}

// OnReport implements Scheduler.
//
// Trials rarely report at a rung iteration exactly (a trial reporting every
// 5 iterations never lands on rungs 4/16/64), so the decision fires at the
// first report *crossing* each rung: the report's value is recorded — at
// most once per trial — at every rung it newly crosses, and the halving
// decision is taken at the highest of them. Repeat reports at an
// already-recorded rung neither re-enter the cutoff quantile nor trigger a
// decision.
func (a *AsyncHyperBand) OnReport(trialID, iteration int, value float64) Decision {
	grace, eta, maxT := a.defaults()
	if iteration >= maxT {
		return Stop // trained long enough; stop to free resources
	}
	if iteration < grace {
		return Continue
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.rungs == nil {
		a.rungs = make(map[int][]float64)
		a.seen = make(map[int]map[int]bool)
	}
	decide := -1
	for r := grace; r <= iteration && r <= maxT; r *= eta {
		if a.seen[r] == nil {
			a.seen[r] = make(map[int]bool)
		}
		if a.seen[r][trialID] {
			continue // this trial already recorded at this rung
		}
		a.seen[r][trialID] = true
		a.rungs[r] = append(a.rungs[r], value)
		decide = r
	}
	if decide < 0 {
		return Continue // no rung newly crossed by this report
	}
	vals := a.rungs[decide]
	if len(vals) < eta {
		return Continue // not enough evidence at this rung yet
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	cut := sorted[int(math.Ceil(float64(len(sorted))/float64(eta)))-1]
	if value <= cut {
		return Continue
	}
	return Stop
}

// OnDone implements Scheduler.
func (a *AsyncHyperBand) OnDone(int) {}
