package tune

import (
	"math"
	"sort"
	"sync"
)

// AsyncHyperBand is the Async Successive Halving (ASHA) scheduler of
// Listing 1's AsyncHyperBandScheduler: trials report at increasing
// iterations ("rungs"); at each rung, a trial continues only if its value
// is within the top 1/ReductionFactor of all values recorded at that rung
// so far. Being asynchronous, decisions never wait for other trials.
type AsyncHyperBand struct {
	// GracePeriod is the minimum iterations before a trial can be stopped
	// (default 1).
	GracePeriod int
	// ReductionFactor is eta (default 4, Ray's default).
	ReductionFactor int
	// MaxT caps useful training iterations (default 100).
	MaxT int

	mu    sync.Mutex
	rungs map[int][]float64 // rung iteration -> values recorded (min-oriented)
}

// Name implements Scheduler.
func (a *AsyncHyperBand) Name() string { return "async_hyperband" }

func (a *AsyncHyperBand) defaults() (grace, eta, maxT int) {
	grace, eta, maxT = a.GracePeriod, a.ReductionFactor, a.MaxT
	if grace <= 0 {
		grace = 1
	}
	if eta <= 1 {
		eta = 4
	}
	if maxT <= 0 {
		maxT = 100
	}
	return grace, eta, maxT
}

// rungOf returns the highest rung <= iter, or -1. Rungs are
// grace * eta^k for k = 0, 1, ...
func (a *AsyncHyperBand) rungOf(iter int) int {
	grace, eta, maxT := a.defaults()
	if iter < grace {
		return -1
	}
	r := grace
	for next := r * eta; next <= iter && next <= maxT; next *= eta {
		r = next
	}
	return r
}

// OnReport implements Scheduler.
func (a *AsyncHyperBand) OnReport(trialID, iteration int, value float64) Decision {
	grace, eta, maxT := a.defaults()
	rung := a.rungOf(iteration)
	if rung < 0 {
		return Continue
	}
	if iteration >= maxT {
		return Stop // trained long enough; stop to free resources
	}
	// Only decide exactly at rung boundaries (asynchronous successive
	// halving evaluates at rungs, not every report).
	if iteration != rung {
		return Continue
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.rungs == nil {
		a.rungs = make(map[int][]float64)
	}
	vals := append(a.rungs[rung], value)
	a.rungs[rung] = vals
	if len(vals) < eta {
		return Continue // not enough evidence at this rung yet
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	cut := sorted[int(math.Ceil(float64(len(sorted))/float64(eta)))-1]
	if value <= cut {
		return Continue
	}
	_ = grace
	return Stop
}

// OnDone implements Scheduler.
func (a *AsyncHyperBand) OnDone(int) {}
