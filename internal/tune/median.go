package tune

import (
	"sort"
	"sync"
)

// MedianStopping implements Google Vizier's median stopping rule, the other
// widely used early-stopping scheduler alongside ASHA: a trial is stopped
// at iteration t when its best value so far is worse than the median of the
// running averages of all completed-or-running trials at iteration t.
type MedianStopping struct {
	// GracePeriod is the minimum iterations before stopping (default 5).
	GracePeriod int
	// MinTrials is the minimum number of peer trials with data at the
	// iteration before the rule activates (default 3).
	MinTrials int

	mu      sync.Mutex
	history map[int][]float64 // trialID -> reported values (min-oriented)
}

// Name implements Scheduler.
func (m *MedianStopping) Name() string { return "median_stopping" }

// OnReport implements Scheduler.
func (m *MedianStopping) OnReport(trialID, iteration int, value float64) Decision {
	grace := m.GracePeriod
	if grace <= 0 {
		grace = 5
	}
	minTrials := m.MinTrials
	if minTrials <= 0 {
		minTrials = 3
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.history == nil {
		m.history = make(map[int][]float64)
	}
	m.history[trialID] = append(m.history[trialID], value)
	if iteration < grace {
		return Continue
	}
	// Running average up to this iteration for every peer with >= iteration
	// reports.
	var avgs []float64
	for id, vals := range m.history {
		if id == trialID || len(vals) < iteration {
			continue
		}
		var s float64
		for _, v := range vals[:iteration] {
			s += v
		}
		avgs = append(avgs, s/float64(iteration))
	}
	if len(avgs) < minTrials {
		return Continue
	}
	sort.Float64s(avgs)
	median := avgs[len(avgs)/2]
	// Best value this trial has achieved so far.
	best := m.history[trialID][0]
	for _, v := range m.history[trialID] {
		if v < best {
			best = v
		}
	}
	if best > median {
		return Stop
	}
	return Continue
}

// OnDone implements Scheduler.
func (m *MedianStopping) OnDone(trialID int) {}
