// Package tune is a Ray Tune-like parallel trial runner: the execution
// substrate the paper's Optimization Manager uses to "run parallel
// application workflows" with "state of the art search algorithms",
// concurrency limiting, and early-stopping schedulers (Listing 1 uses
// ConcurrencyLimiter(max_concurrent=2) and AsyncHyperBandScheduler).
//
// Trials run on goroutines; the search algorithm is consulted under a lock,
// so any ask/tell optimizer (package bo, random/grid/list search) can drive
// the loop.
package tune

import (
	"fmt"
	"sort"
	"sync"

	"e2clab/internal/space"
)

// Status is a trial's lifecycle state.
type Status int

const (
	// Pending trials have been created but not started.
	Pending Status = iota
	// Running trials are executing their objective.
	Running
	// Completed trials finished and reported a final metric.
	Completed
	// Stopped trials were terminated early by a scheduler.
	Stopped
	// Failed trials returned an error.
	Failed
)

func (s Status) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Stopped:
		return "stopped"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Report is one intermediate metric report from a running trial.
type Report struct {
	Iteration int
	Value     float64
}

// Trial is one evaluation of a configuration.
type Trial struct {
	ID      int
	Config  []float64 // value-space configuration
	Status  Status
	Value   float64 // final metric (valid when Completed or Stopped)
	Reports []Report
	Err     error
}

// SearchAlgorithm proposes configurations and learns from results. Values
// passed to Tell are already oriented for minimization (the runner negates
// when Mode is Max).
type SearchAlgorithm interface {
	Ask() []float64
	Tell(x []float64, y float64)
}

// Decision is a scheduler's verdict on a reporting trial.
type Decision int

const (
	// Continue lets the trial keep training.
	Continue Decision = iota
	// Stop terminates the trial early; its last reported value stands.
	Stop
)

// Scheduler implements early stopping across concurrent trials.
type Scheduler interface {
	// OnReport is called for every intermediate report; value is oriented
	// for minimization.
	OnReport(trialID, iteration int, value float64) Decision
	// OnDone is called when a trial finishes or is stopped.
	OnDone(trialID int)
	Name() string
}

// FIFOScheduler never stops trials (tune's default).
type FIFOScheduler struct{}

// OnReport implements Scheduler.
func (FIFOScheduler) OnReport(int, int, float64) Decision { return Continue }

// OnDone implements Scheduler.
func (FIFOScheduler) OnDone(int) {}

// Name implements Scheduler.
func (FIFOScheduler) Name() string { return "fifo" }

// Context is handed to the objective for intermediate reporting.
type Context struct {
	trial   *Trial
	sched   Scheduler
	sign    float64
	mu      *sync.Mutex
	stopped bool
}

// Report records an intermediate metric value; it returns false when the
// scheduler decides the trial should stop (the objective should return
// promptly with its current value).
func (c *Context) Report(iteration int, value float64) bool {
	c.mu.Lock()
	c.trial.Reports = append(c.trial.Reports, Report{Iteration: iteration, Value: value})
	c.mu.Unlock()
	if c.sched.OnReport(c.trial.ID, iteration, c.sign*value) == Stop {
		c.stopped = true
		return false
	}
	return true
}

// TrialID returns the running trial's id.
func (c *Context) TrialID() int { return c.trial.ID }

// Objective evaluates one configuration; it may call ctx.Report for
// intermediate values and must return the final metric.
type Objective func(ctx *Context, x []float64) (float64, error)

// RunConfig configures a tuning run, mirroring tune.run's arguments in
// Listing 1.
type RunConfig struct {
	// Name labels the experiment ("plantnet_engine" in the paper).
	Name string
	// Metric is the reported metric's name ("user_resp_time").
	Metric string
	// Mode is space.Min or space.Max.
	Mode space.Mode
	// NumSamples is the number of trials (num_samples=10).
	NumSamples int
	// MaxConcurrent bounds parallel trials (ConcurrencyLimiter's
	// max_concurrent=2). Default 1.
	MaxConcurrent int
	// Scheduler early-stops trials; nil means FIFO.
	Scheduler Scheduler
	// Logger, when set, receives one event per trial state change
	// ("started", "completed", "stopped", "failed") — tune's experiment
	// logging. It is called under the runner's lock; keep it fast.
	Logger func(event string, trial *Trial)
}

// Run executes the tuning loop: ask the search algorithm, evaluate in
// parallel, tell results back asynchronously — the paper's optimization
// cycle (parallel deployment, simultaneous execution, asynchronous model
// optimization, reconfiguration).
//
//simlint:ordered trial configs are Asked under the mutex in submission order; completion-order effects on Tell are part of the documented Concurrency semantics, and Concurrency=1 gives the sequential reference
func Run(cfg RunConfig, search SearchAlgorithm, objective Objective) (*Analysis, error) {
	if cfg.NumSamples <= 0 {
		return nil, fmt.Errorf("tune: NumSamples must be positive, got %d", cfg.NumSamples)
	}
	if search == nil {
		return nil, fmt.Errorf("tune: nil search algorithm")
	}
	if objective == nil {
		return nil, fmt.Errorf("tune: nil objective")
	}
	conc := cfg.MaxConcurrent
	if conc <= 0 {
		conc = 1
	}
	sched := cfg.Scheduler
	if sched == nil {
		sched = FIFOScheduler{}
	}
	sign := 1.0
	if cfg.Mode == space.Max {
		sign = -1
	}

	var mu sync.Mutex // guards search, trials, schedulers
	trials := make([]*Trial, 0, cfg.NumSamples)
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup

	for i := 0; i < cfg.NumSamples; i++ {
		sem <- struct{}{} // acquire before asking: limiter semantics
		mu.Lock()
		x := search.Ask()
		trial := &Trial{ID: i, Config: append([]float64(nil), x...), Status: Running}
		trials = append(trials, trial)
		if cfg.Logger != nil {
			cfg.Logger("started", trial)
		}
		mu.Unlock()

		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			ctx := &Context{trial: trial, sched: sched, sign: sign, mu: &mu}
			v, err := objective(ctx, trial.Config)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				trial.Status = Failed
				trial.Err = err
			case ctx.stopped:
				trial.Status = Stopped
				trial.Value = v
				search.Tell(trial.Config, sign*v)
			default:
				trial.Status = Completed
				trial.Value = v
				search.Tell(trial.Config, sign*v)
			}
			if cfg.Logger != nil {
				cfg.Logger(trial.Status.String(), trial)
			}
			sched.OnDone(trial.ID)
		}()
	}
	wg.Wait()

	a := &Analysis{Name: cfg.Name, Metric: cfg.Metric, Mode: cfg.Mode, Trials: trials}
	return a, nil
}

// Analysis summarizes a finished run, like tune.ExperimentAnalysis.
type Analysis struct {
	Name   string
	Metric string
	Mode   space.Mode
	Trials []*Trial
}

// Best returns the best completed-or-stopped trial according to Mode, or
// nil when every trial failed.
func (a *Analysis) Best() *Trial {
	var best *Trial
	for _, t := range a.Trials {
		if t.Status != Completed && t.Status != Stopped {
			continue
		}
		if best == nil {
			best = t
			continue
		}
		if (a.Mode == space.Min && t.Value < best.Value) ||
			(a.Mode == space.Max && t.Value > best.Value) {
			best = t
		}
	}
	return best
}

// CountByStatus tallies trials per status.
func (a *Analysis) CountByStatus() map[Status]int {
	m := make(map[Status]int)
	for _, t := range a.Trials {
		m[t.Status]++
	}
	return m
}

// Sorted returns trials ordered best-first according to Mode; failed trials
// come last.
func (a *Analysis) Sorted() []*Trial {
	out := append([]*Trial(nil), a.Trials...)
	sort.SliceStable(out, func(i, j int) bool {
		ti, tj := out[i], out[j]
		okI := ti.Status == Completed || ti.Status == Stopped
		okJ := tj.Status == Completed || tj.Status == Stopped
		if okI != okJ {
			return okI
		}
		if !okI {
			return false
		}
		if a.Mode == space.Max {
			return ti.Value > tj.Value
		}
		return ti.Value < tj.Value
	})
	return out
}
