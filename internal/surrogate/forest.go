package surrogate

import (
	"math"
	"math/rand"
)

// ForestConfig controls Random Forest / Extra Trees ensembles.
type ForestConfig struct {
	NEstimators    int
	MaxDepth       int
	MinSamplesLeaf int
	// MaxFeatures per split; 0 means all features (sklearn regression
	// default).
	MaxFeatures int
}

// DefaultForestConfig mirrors skopt's forest defaults (100 estimators,
// unbounded depth).
func DefaultForestConfig() ForestConfig {
	return ForestConfig{NEstimators: 100, MinSamplesLeaf: 1}
}

// Forest is an ensemble of regression trees. Predictive uncertainty is the
// across-tree standard deviation, which is how skopt obtains return_std for
// its 'ET' and 'RF' base estimators.
type Forest struct {
	name  string
	trees []*Tree
	// seedSrc/seedRng replay the construction-time tree seeding on Reseed,
	// so a cached forest can be re-fit with fresh streams without
	// reallocating 100 math/rand sources per optimization cycle.
	seedSrc rand.Source
	seedRng *rand.Rand
}

// NewRandomForest builds a Breiman Random Forest: bootstrap resampling with
// exhaustive CART splits.
func NewRandomForest(cfg ForestConfig, r *rand.Rand) *Forest {
	return newForest("RF", cfg, r, false, true)
}

// NewExtraTrees builds an Extremely Randomized Trees ensemble (the paper's
// base_estimator='ET'): full training set per tree, random split thresholds.
func NewExtraTrees(cfg ForestConfig, r *rand.Rand) *Forest {
	return newForest("ET", cfg, r, true, false)
}

func newForest(name string, cfg ForestConfig, r *rand.Rand, randomThresholds, bootstrap bool) *Forest {
	if r == nil {
		//simlint:allow rngseed deterministic fallback for a nil rng; the pipeline always passes a derived stream
		r = rand.New(rand.NewSource(1))
	}
	if cfg.NEstimators <= 0 {
		cfg.NEstimators = 100
	}
	f := &Forest{name: name}
	for i := 0; i < cfg.NEstimators; i++ {
		tc := TreeConfig{
			MaxDepth:         cfg.MaxDepth,
			MinSamplesLeaf:   cfg.MinSamplesLeaf,
			MaxFeatures:      cfg.MaxFeatures,
			RandomThresholds: randomThresholds,
			Bootstrap:        bootstrap,
		}
		src := rand.NewSource(r.Int63())
		t := NewTree(tc, rand.New(src))
		t.src = src
		f.trees = append(f.trees, t)
	}
	return f
}

// Reseed implements Reseeder: it re-seeds every tree's RNG source exactly as
// newForest would with a fresh rand.New(rand.NewSource(seed)), so a
// subsequent Fit is bit-identical to one on a newly constructed forest —
// while node arrays, walk mirrors, and sources stay allocated.
func (f *Forest) Reseed(seed int64) {
	if f.seedSrc == nil {
		f.seedSrc = rand.NewSource(seed)
		f.seedRng = rand.New(f.seedSrc)
	} else {
		f.seedSrc.Seed(seed)
	}
	for _, t := range f.trees {
		if t.src == nil { // e.g. a deserialized forest
			src := rand.NewSource(f.seedRng.Int63())
			t.src = src
			t.rng = rand.New(src)
			continue
		}
		t.src.Seed(f.seedRng.Int63())
	}
}

// Name implements Model.
func (f *Forest) Name() string { return f.name }

// Fit implements Model. Trees train concurrently on the package worker
// pool; results are bit-identical to sequential training because every tree
// draws only from its own RNG, seeded at construction time. Each worker
// shard carries one fit scratch through all of its trees, so buffer
// allocation is per worker, not per tree.
func (f *Forest) Fit(X [][]float64, y []float64) error {
	if _, _, err := validate(X, y); err != nil {
		return err
	}
	errs := make([]error, len(f.trees))
	parallelFor(len(f.trees), 4, func(lo, hi int) {
		var scratch treeScratch
		for i := lo; i < hi; i++ {
			errs[i] = f.trees[i].fit(X, y, &scratch)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Predict implements Model.
func (f *Forest) Predict(x []float64) float64 {
	var s float64
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// PredictWithStd implements Model: mean and standard deviation across trees.
func (f *Forest) PredictWithStd(x []float64) (float64, float64) {
	n := float64(len(f.trees))
	var sum, sumSq float64
	for _, t := range f.trees {
		p := t.Predict(x)
		sum += p
		sumSq += p * p
	}
	m := sum / n
	v := sumSq/n - m*m
	if v < 0 {
		v = 0
	}
	return m, math.Sqrt(v)
}

// PredictBatch implements BatchPredictor: rows are scored concurrently in
// shards, each row exactly as PredictWithStd would score it. Within a shard
// the loop runs tree-outer, row-inner: one tree's node array stays
// cache-resident across the whole candidate pool instead of all trees being
// cycled through for every row. Per-row accumulation order over trees is
// unchanged, so results are bit-identical to PredictWithStd.
func (f *Forest) PredictBatch(X [][]float64) ([]float64, []float64) {
	means := make([]float64, len(X))
	stds := make([]float64, len(X))
	n := float64(len(f.trees))
	parallelFor(len(X), 16, func(lo, hi int) {
		// Tree pairs walk each row together: the two descents are
		// independent dependency chains, so the second hides most of the
		// first's load-compare-select latency. Accumulation stays in tree
		// order (t, then t+1), bit-identical to the sequential loop.
		k := 0
		for ; k+1 < len(f.trees); k += 2 {
			t1, t2 := f.trees[k], f.trees[k+1]
			if len(t1.walk) == 0 || len(t2.walk) == 0 {
				break
			}
			w1, w2 := t1.walk, t2.walk
			for i := lo; i < hi; i++ {
				x := X[i]
				j1, j2 := 0, 0
				for {
					n1, n2 := w1[j1], w2[j2]
					if n1.feat < 0 && n2.feat < 0 {
						break
					}
					if n1.feat >= 0 {
						if x[n1.feat] <= n1.thr {
							j1++
						} else {
							j1 = int(n1.right)
						}
					}
					if n2.feat >= 0 {
						if x[n2.feat] <= n2.thr {
							j2++
						} else {
							j2 = int(n2.right)
						}
					}
				}
				v1 := w1[j1].thr
				v2 := w2[j2].thr
				means[i] += v1
				stds[i] += v1 * v1
				means[i] += v2
				stds[i] += v2 * v2
			}
		}
		for ; k < len(f.trees); k++ {
			t := f.trees[k]
			if len(t.walk) == 0 {
				for i := lo; i < hi; i++ {
					v := t.Predict(X[i])
					means[i] += v
					stds[i] += v * v
				}
				continue
			}
			w := t.walk
			for i := lo; i < hi; i++ {
				v := walkPredict(w, X[i])
				means[i] += v
				stds[i] += v * v
			}
		}
		for i := lo; i < hi; i++ {
			m := means[i] / n
			v := stds[i]/n - m*m
			if v < 0 {
				v = 0
			}
			means[i] = m
			stds[i] = math.Sqrt(v)
		}
	})
	return means, stds
}

// NTrees returns the ensemble size.
func (f *Forest) NTrees() int { return len(f.trees) }
