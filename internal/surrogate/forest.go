package surrogate

import (
	"math"
	"math/rand"
)

// ForestConfig controls Random Forest / Extra Trees ensembles.
type ForestConfig struct {
	NEstimators    int
	MaxDepth       int
	MinSamplesLeaf int
	// MaxFeatures per split; 0 means all features (sklearn regression
	// default).
	MaxFeatures int
}

// DefaultForestConfig mirrors skopt's forest defaults (100 estimators,
// unbounded depth).
func DefaultForestConfig() ForestConfig {
	return ForestConfig{NEstimators: 100, MinSamplesLeaf: 1}
}

// Forest is an ensemble of regression trees. Predictive uncertainty is the
// across-tree standard deviation, which is how skopt obtains return_std for
// its 'ET' and 'RF' base estimators.
type Forest struct {
	name  string
	trees []*Tree
}

// NewRandomForest builds a Breiman Random Forest: bootstrap resampling with
// exhaustive CART splits.
func NewRandomForest(cfg ForestConfig, r *rand.Rand) *Forest {
	return newForest("RF", cfg, r, false, true)
}

// NewExtraTrees builds an Extremely Randomized Trees ensemble (the paper's
// base_estimator='ET'): full training set per tree, random split thresholds.
func NewExtraTrees(cfg ForestConfig, r *rand.Rand) *Forest {
	return newForest("ET", cfg, r, true, false)
}

func newForest(name string, cfg ForestConfig, r *rand.Rand, randomThresholds, bootstrap bool) *Forest {
	if r == nil {
		r = rand.New(rand.NewSource(1))
	}
	if cfg.NEstimators <= 0 {
		cfg.NEstimators = 100
	}
	f := &Forest{name: name}
	for i := 0; i < cfg.NEstimators; i++ {
		tc := TreeConfig{
			MaxDepth:         cfg.MaxDepth,
			MinSamplesLeaf:   cfg.MinSamplesLeaf,
			MaxFeatures:      cfg.MaxFeatures,
			RandomThresholds: randomThresholds,
			Bootstrap:        bootstrap,
		}
		f.trees = append(f.trees, NewTree(tc, rand.New(rand.NewSource(r.Int63()))))
	}
	return f
}

// Name implements Model.
func (f *Forest) Name() string { return f.name }

// Fit implements Model. Trees train concurrently on the package worker
// pool; results are bit-identical to sequential training because every tree
// draws only from its own RNG, seeded at construction time.
func (f *Forest) Fit(X [][]float64, y []float64) error {
	if _, _, err := validate(X, y); err != nil {
		return err
	}
	errs := make([]error, len(f.trees))
	parallelFor(len(f.trees), 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			errs[i] = f.trees[i].Fit(X, y)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Predict implements Model.
func (f *Forest) Predict(x []float64) float64 {
	var s float64
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// PredictWithStd implements Model: mean and standard deviation across trees.
func (f *Forest) PredictWithStd(x []float64) (float64, float64) {
	n := float64(len(f.trees))
	var sum, sumSq float64
	for _, t := range f.trees {
		p := t.Predict(x)
		sum += p
		sumSq += p * p
	}
	m := sum / n
	v := sumSq/n - m*m
	if v < 0 {
		v = 0
	}
	return m, math.Sqrt(v)
}

// PredictBatch implements BatchPredictor: rows are scored concurrently in
// shards, each row exactly as PredictWithStd would score it.
func (f *Forest) PredictBatch(X [][]float64) ([]float64, []float64) {
	means := make([]float64, len(X))
	stds := make([]float64, len(X))
	parallelFor(len(X), 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			means[i], stds[i] = f.PredictWithStd(X[i])
		}
	})
	return means, stds
}

// NTrees returns the ensemble size.
func (f *Forest) NTrees() int { return len(f.trees) }
