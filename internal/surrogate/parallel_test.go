package surrogate

import (
	"math/rand"
	"testing"
)

// grid builds a deterministic probe set independent of the training data.
func probeGrid(n, d int) [][]float64 {
	r := rand.New(rand.NewSource(99))
	X := make([][]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		for j := range X[i] {
			X[i][j] = r.Float64()
		}
	}
	return X
}

// TestParallelForestFitDeterminism asserts that a forest fitted on the
// worker pool is byte-identical to one fitted sequentially from the same
// seed: per-tree RNGs are seeded at construction, so tree training order
// cannot change results.
func TestParallelForestFitDeterminism(t *testing.T) {
	X, y := trainSet(rand.New(rand.NewSource(1)), 120, 4, quadratic)
	probes := probeGrid(50, 4)
	for _, mk := range []struct {
		name  string
		build func(seed int64) *Forest
	}{
		{"ET", func(s int64) *Forest { return NewExtraTrees(DefaultForestConfig(), rand.New(rand.NewSource(s))) }},
		{"RF", func(s int64) *Forest { return NewRandomForest(DefaultForestConfig(), rand.New(rand.NewSource(s))) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			seq := mk.build(7)
			restore := setWorkers(1)
			err1 := seq.Fit(X, y)
			restore()
			par := mk.build(7)
			restore = setWorkers(8)
			err2 := par.Fit(X, y)
			restore()
			if err1 != nil || err2 != nil {
				t.Fatalf("fit errors: %v, %v", err1, err2)
			}
			for _, p := range probes {
				m1, s1 := seq.PredictWithStd(p)
				m2, s2 := par.PredictWithStd(p)
				if m1 != m2 || s1 != s2 {
					t.Fatalf("parallel fit diverged: (%v,%v) != (%v,%v)", m2, s2, m1, s1)
				}
			}
		})
	}
}

// TestPredictBatchMatchesSequential asserts the BatchPredictor contract for
// every estimator family: PredictBatch must be bit-identical to a
// PredictWithStd loop, with the worker pool both disabled and enabled.
func TestPredictBatchMatchesSequential(t *testing.T) {
	X, y := trainSet(rand.New(rand.NewSource(2)), 80, 3, quadratic)
	probes := probeGrid(137, 3) // odd size to exercise ragged shards
	for _, name := range []string{"ET", "RF", "GBRT", "GP", "TREE", "POLY", "LSSVM", "KNN"} {
		t.Run(name, func(t *testing.T) {
			factory, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			m := factory(rand.New(rand.NewSource(3)))
			if err := m.Fit(X, y); err != nil {
				t.Fatal(err)
			}
			wantM := make([]float64, len(probes))
			wantS := make([]float64, len(probes))
			for i, p := range probes {
				wantM[i], wantS[i] = m.PredictWithStd(p)
			}
			for _, workers := range []int{1, 8} {
				restore := setWorkers(workers)
				gotM, gotS := PredictBatch(m, probes)
				restore()
				for i := range probes {
					if gotM[i] != wantM[i] || gotS[i] != wantS[i] {
						t.Fatalf("workers=%d row %d: batch (%v,%v) != sequential (%v,%v)",
							workers, i, gotM[i], gotS[i], wantM[i], wantS[i])
					}
				}
			}
		})
	}
}

// TestGBRTParallelFitDeterminism checks the sharded per-stage residual
// update cannot change boosting results.
func TestGBRTParallelFitDeterminism(t *testing.T) {
	X, y := trainSet(rand.New(rand.NewSource(4)), 150, 4, quadratic)
	probes := probeGrid(20, 4)
	restore := setWorkers(1)
	seq := NewGBRT(DefaultGBRTConfig(), rand.New(rand.NewSource(5)))
	err1 := seq.Fit(X, y)
	restore()
	restore = setWorkers(8)
	par := NewGBRT(DefaultGBRTConfig(), rand.New(rand.NewSource(5)))
	err2 := par.Fit(X, y)
	restore()
	if err1 != nil || err2 != nil {
		t.Fatalf("fit errors: %v, %v", err1, err2)
	}
	for _, p := range probes {
		if a, b := seq.Predict(p), par.Predict(p); a != b {
			t.Fatalf("parallel GBRT fit diverged: %v != %v", b, a)
		}
	}
	if seq.residualStd != par.residualStd {
		t.Fatalf("residualStd diverged: %v != %v", par.residualStd, seq.residualStd)
	}
}

// TestParallelForCoversRange asserts every index is visited exactly once
// for a spread of sizes and worker counts.
func TestParallelForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 5, 17, 64, 100} {
			restore := setWorkers(workers)
			counts := make([]int, n) // disjoint shard writes; no lock needed
			parallelFor(n, 1, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					counts[i]++
				}
			})
			restore()
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}
