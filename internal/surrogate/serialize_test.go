package surrogate

import (
	"math"
	"math/rand"
	"testing"
)

// TestMarshalRoundTripAllModels: every fitted model family must predict
// identically after a marshal/unmarshal round trip — the finalize() archive
// of intermediate models must be faithful.
func TestMarshalRoundTripAllModels(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	X, y := trainSet(r, 80, 3, quadratic)
	models := append(allModels(r), NewKNN(DefaultKNNConfig()))
	probes := [][]float64{
		{0.1, 0.2, 0.3}, {0.5, 0.5, 0.5}, {0.9, 0.1, 0.7}, {0.33, 0.77, 0.05},
	}
	for _, m := range models {
		if err := m.Fit(X, y); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		b, err := Marshal(m)
		if err != nil {
			t.Fatalf("%s: marshal: %v", m.Name(), err)
		}
		back, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", m.Name(), err)
		}
		if back.Name() != m.Name() {
			t.Errorf("%s: name became %s", m.Name(), back.Name())
		}
		for _, p := range probes {
			m1, s1 := m.PredictWithStd(p)
			m2, s2 := back.PredictWithStd(p)
			if math.Abs(m1-m2) > 1e-9 || math.Abs(s1-s2) > 1e-9 {
				t.Fatalf("%s: round trip changed prediction at %v: (%v,%v) vs (%v,%v)",
					m.Name(), p, m1, s1, m2, s2)
			}
		}
	}
}

func TestMarshalUnfittedGPRejected(t *testing.T) {
	if _, err := Marshal(NewGP(DefaultGPConfig())); err == nil {
		t.Error("unfitted GP marshaled")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Unmarshal([]byte(`{"type":"XGB"}`)); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := Unmarshal([]byte(`{"type":"GP","gp":{"kernel":"periodic"}}`)); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := Unmarshal([]byte(`{"type":"ET"}`)); err == nil {
		t.Error("missing payload accepted")
	}
	if _, err := Unmarshal([]byte(`{"type":"GP","gp":{"kernel":"rbf","x":[[1]],"alpha":[],"l":[]}}`)); err == nil {
		t.Error("inconsistent GP payload accepted")
	}
}
