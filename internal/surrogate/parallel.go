package surrogate

import (
	"runtime"
	"sync"
)

// numWorkers sizes the worker pool shared by parallel fits and batch
// predictions. It defaults to GOMAXPROCS; tests override it (via
// setWorkers) to force the sequential path when checking that parallel and
// sequential execution produce identical results.
var numWorkers = runtime.GOMAXPROCS(0)

// setWorkers overrides the pool size and returns a restore function. It is
// a test hook; production code never calls it.
func setWorkers(n int) (restore func()) {
	old := numWorkers
	if n < 1 {
		n = 1
	}
	numWorkers = n
	return func() { numWorkers = old }
}

// parallelFor splits [0, n) into contiguous shards and runs fn(lo, hi) on
// up to numWorkers goroutines, blocking until all shards finish. fn must be
// safe to run concurrently on disjoint index ranges and must not depend on
// shard boundaries for its results (every user in this package computes
// element i of an output slice purely from element i of the inputs, so
// sharding cannot change results). Ranges smaller than minPerWorker per
// worker run inline on the caller's goroutine to keep tiny batches free of
// scheduling overhead.
//
//simlint:ordered each shard writes only its own [lo,hi) slots of the output; no draw order, accumulation order, or shared state depends on scheduling (parallel_test.go pins parallel == sequential)
func parallelFor(n, minPerWorker int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minPerWorker < 1 {
		minPerWorker = 1
	}
	workers := numWorkers
	if maxW := n / minPerWorker; workers > maxW {
		workers = maxW
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
