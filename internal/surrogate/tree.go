package surrogate

import (
	"math"
	"math/rand"
	"slices"
)

// TreeConfig controls CART regression-tree growth.
type TreeConfig struct {
	// MaxDepth limits tree depth (0 = unlimited).
	MaxDepth int
	// MinSamplesLeaf is the minimum training rows per leaf.
	MinSamplesLeaf int
	// MaxFeatures is the number of features considered per split
	// (0 = all features).
	MaxFeatures int
	// RandomThresholds draws one uniform threshold per candidate feature
	// instead of scanning all split points — the Extra-Trees splitter.
	RandomThresholds bool
	// Bootstrap resamples the training set with replacement before fitting
	// (used by Random Forest members).
	Bootstrap bool
}

// DefaultTreeConfig mirrors sklearn's regression-tree defaults.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 0, MinSamplesLeaf: 1}
}

// Tree is a CART regression tree.
//
// Fitting runs over per-feature presorted index arrays computed once per
// Fit: every feature's index slice is kept partitioned so each tree node
// owns a contiguous, still-sorted segment. Split search therefore never
// re-sorts (the old splitter sorted the node's rows for every CART feature
// scan), Extra-Trees reads a node's min/max in O(1) from the segment ends
// and accumulates only the left prefix of a cut, and the whole build
// recurses over segment bounds with zero per-node allocations.
type Tree struct {
	cfg     TreeConfig
	rng     *rand.Rand
	src     rand.Source // rng's source when owned by an ensemble (reseedable)
	nodes   []treeNode
	walk    []walkNode   // compact prediction mirror of nodes (see buildWalk)
	scratch *treeScratch // lazily created; reused across Fits of this tree
}

// treeNode is a flat-array tree node; leaves have feature == -1.
type treeNode struct {
	feature     int
	threshold   float64
	left, right int
	value       float64
	count       int
}

// walkNode is the 16-byte prediction-time view of a node: build emits nodes
// in preorder, so an internal node's left child is always the next index and
// only the right index needs storing; a leaf reuses thr for its value.
// Four nodes per cache line make ensemble batch prediction markedly less
// memory-bound than walking the 48-byte treeNode array.
type walkNode struct {
	thr   float64 // split threshold, or the leaf value when feat < 0
	feat  int32
	right int32
}

// buildWalk derives the compact walk array. It requires the preorder
// left == parent+1 layout build produces (and serialization preserves);
// if a foreign layout ever shows up, walk stays nil and prediction falls
// back to the full nodes array.
func (t *Tree) buildWalk() {
	if cap(t.walk) < len(t.nodes) {
		t.walk = make([]walkNode, 0, len(t.nodes))
	}
	t.walk = t.walk[:0]
	for i, nd := range t.nodes {
		if nd.feature >= 0 {
			if nd.left != i+1 {
				t.walk = nil
				return
			}
			t.walk = append(t.walk, walkNode{thr: nd.threshold, feat: int32(nd.feature), right: int32(nd.right)})
		} else {
			t.walk = append(t.walk, walkNode{thr: nd.value, feat: -1})
		}
	}
}

// walkPredict scores one row through a compact walk array.
func walkPredict(w []walkNode, x []float64) float64 {
	j := 0
	for {
		nd := w[j]
		if nd.feat < 0 {
			return nd.thr
		}
		if x[nd.feat] <= nd.thr {
			j++
		} else {
			j = int(nd.right)
		}
	}
}

// treeScratch holds every buffer a fit needs. One scratch serves any number
// of sequential fits (GBRT reuses one across all boosting stages; Forest
// reuses one per worker shard); it grows monotonically and never shrinks.
type treeScratch struct {
	n, d    int
	colX    []float64 // d*n column-major feature values (bootstrap-resolved)
	yv      []float64 // n target values (bootstrap-resolved)
	sortedB []int32   // d*n backing for sorted
	sorted  [][]int32 // per-feature row indices, sorted within node segments
	aux     []int32   // stable-partition spill buffer
	isLeft  []bool    // split membership marks, always cleared after use
	perm    []int     // feature-permutation buffer (replicates rand.Perm)
}

func (s *treeScratch) reset(n, d int) {
	s.n, s.d = n, d
	if cap(s.colX) < n*d {
		s.colX = make([]float64, n*d)
		s.sortedB = make([]int32, n*d)
	}
	s.colX = s.colX[:n*d]
	s.sortedB = s.sortedB[:n*d]
	if cap(s.yv) < n {
		s.yv = make([]float64, n)
		s.aux = make([]int32, 0, n)
		s.isLeft = make([]bool, n)
	}
	s.yv = s.yv[:n]
	s.isLeft = s.isLeft[:n]
	for i := range s.isLeft {
		s.isLeft[i] = false
	}
	if cap(s.perm) < d {
		s.perm = make([]int, d)
	}
	s.perm = s.perm[:d]
	if cap(s.sorted) < d {
		s.sorted = make([][]int32, d)
	}
	s.sorted = s.sorted[:d]
	for f := 0; f < d; f++ {
		s.sorted[f] = s.sortedB[f*n : (f+1)*n : (f+1)*n]
	}
}

// NewTree returns an untrained tree.
func NewTree(cfg TreeConfig, r *rand.Rand) *Tree {
	if r == nil {
		//simlint:allow rngseed deterministic fallback for a nil rng; the pipeline always passes a derived stream (see bo/plantnet seeders)
		r = rand.New(rand.NewSource(1))
	}
	return &Tree{cfg: cfg, rng: r}
}

// Name implements Model.
func (t *Tree) Name() string { return "TREE" }

// Fit implements Model.
func (t *Tree) Fit(X [][]float64, y []float64) error {
	if t.scratch == nil {
		t.scratch = &treeScratch{}
	}
	return t.fit(X, y, t.scratch)
}

// fit trains on X, y using s for every working buffer. Callers that train
// many trees (Forest shards, GBRT stages) pass a shared scratch so the
// buffers are allocated once per worker, not once per tree.
func (t *Tree) fit(X [][]float64, y []float64, s *treeScratch) error {
	n, d, err := validate(X, y)
	if err != nil {
		return err
	}
	s.reset(n, d)
	// Resolve the (possibly bootstrap-resampled) training set into a
	// column-major copy: split scans then read one contiguous array per
	// feature instead of chasing row pointers.
	if t.cfg.Bootstrap {
		for k := 0; k < n; k++ {
			j := t.rng.Intn(n)
			row := X[j]
			for f := 0; f < d; f++ {
				s.colX[f*n+k] = row[f]
			}
			s.yv[k] = y[j]
		}
	} else {
		for k := 0; k < n; k++ {
			row := X[k]
			for f := 0; f < d; f++ {
				s.colX[f*n+k] = row[f]
			}
			s.yv[k] = y[k]
		}
	}
	for f := 0; f < d; f++ {
		sf := s.sorted[f]
		for k := range sf {
			sf[k] = int32(k)
		}
		col := s.colX[f*n : (f+1)*n]
		slices.SortFunc(sf, func(a, b int32) int {
			va, vb := col[a], col[b]
			if va < vb {
				return -1
			}
			if va > vb {
				return 1
			}
			return int(a - b) // index tiebreak: fully deterministic order
		})
	}
	t.nodes = t.nodes[:0]
	t.build(s, 0, n, 0)
	t.buildWalk()
	return nil
}

// build grows a subtree over the rows in segment [start, end) of every
// per-feature sorted array and returns its node index.
func (t *Tree) build(s *treeScratch, start, end, depth int) int {
	node := len(t.nodes)
	t.nodes = append(t.nodes, treeNode{feature: -1})

	var sum, sumSq float64
	for _, i := range s.sorted[0][start:end] {
		v := s.yv[i]
		sum += v
		sumSq += v * v
	}
	m := end - start
	fm := float64(m)
	t.nodes[node].value = sum / fm
	t.nodes[node].count = m
	sse := sumSq - sum*sum/fm

	minLeaf := t.cfg.MinSamplesLeaf
	if minLeaf < 1 {
		minLeaf = 1
	}
	if m < 2*minLeaf || sse <= 1e-12 || (t.cfg.MaxDepth > 0 && depth >= t.cfg.MaxDepth) {
		return node
	}

	feat, thr, ok := t.bestSplit(s, start, end, sum, sumSq, minLeaf)
	if !ok {
		return node
	}
	// The chosen feature's segment is sorted, so its left rows are exactly
	// the prefix with value <= thr.
	n := s.n
	col := s.colX[feat*n : (feat+1)*n]
	sf := s.sorted[feat][start:end]
	nl := 0
	for _, i := range sf {
		if col[i] > thr {
			break
		}
		s.isLeft[i] = true
		nl++
	}
	if nl < minLeaf || m-nl < minLeaf {
		for _, i := range sf[:nl] {
			s.isLeft[i] = false
		}
		return node
	}
	// Stable-partition every other feature's segment by membership, which
	// keeps each child's segments sorted without ever re-sorting.
	for f := 0; f < s.d; f++ {
		if f == feat {
			continue
		}
		g := s.sorted[f][start:end]
		aux := s.aux[:0]
		w := 0
		for _, i := range g {
			if s.isLeft[i] {
				g[w] = i
				w++
			} else {
				aux = append(aux, i)
			}
		}
		copy(g[w:], aux)
	}
	for _, i := range sf[:nl] {
		s.isLeft[i] = false
	}
	t.nodes[node].feature = feat
	t.nodes[node].threshold = thr
	t.nodes[node].left = t.build(s, start, start+nl, depth+1)
	t.nodes[node].right = t.build(s, start+nl, end, depth+1)
	return node
}

// bestSplit searches for the SSE-minimizing split over a random subset of
// features: a single presorted sweep with prefix sums for CART, one random
// threshold with an O(prefix) accumulation for Extra-Trees. tSum/tSq are the
// node's total Σy and Σy², already computed by build. RNG consumption
// matches the old splitter draw for draw (Perm replication, one Float64 per
// spread-positive ET feature), so per-tree streams are unchanged.
func (t *Tree) bestSplit(s *treeScratch, start, end int, tSum, tSq float64, minLeaf int) (feat int, thr float64, ok bool) {
	d := s.d
	nFeat := t.cfg.MaxFeatures
	if nFeat <= 0 || nFeat > d {
		nFeat = d
	}
	// Replicate rand.Perm(d) into the scratch buffer: same algorithm, same
	// Intn sequence, no allocation.
	p := s.perm
	p[0] = 0
	for i := 1; i < d; i++ {
		j := t.rng.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	best := math.Inf(1)
	n := s.n
	m := end - start
	for _, f := range p[:nFeat] {
		col := s.colX[f*n : (f+1)*n]
		sf := s.sorted[f][start:end]
		if t.cfg.RandomThresholds {
			lo, hi := col[sf[0]], col[sf[m-1]]
			if hi <= lo {
				continue
			}
			cut := lo + t.rng.Float64()*(hi-lo)
			var lSum, lSq float64
			nl := 0
			for _, i := range sf {
				if col[i] > cut {
					break
				}
				yi := s.yv[i]
				lSum += yi
				lSq += yi * yi
				nl++
			}
			nr := m - nl
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			rSum, rSq := tSum-lSum, tSq-lSq
			cost := (lSq - lSum*lSum/float64(nl)) + (rSq - rSum*rSum/float64(nr))
			if cost < best {
				best, feat, thr, ok = cost, f, cut, true
			}
			continue
		}
		// Exhaustive CART scan: the segment is already sorted, so evaluate
		// every boundary between distinct values with prefix sums.
		var lSum, lSq float64
		rSum, rSq := tSum, tSq
		for k := 0; k < m-1; k++ {
			yi := s.yv[sf[k]]
			lSum += yi
			lSq += yi * yi
			rSum -= yi
			rSq -= yi * yi
			if col[sf[k]] == col[sf[k+1]] {
				continue
			}
			nl, nr := k+1, m-k-1
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			cost := (lSq - lSum*lSum/float64(nl)) + (rSq - rSum*rSum/float64(nr))
			if cost < best {
				best = cost
				feat = f
				thr = (col[sf[k]] + col[sf[k+1]]) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// Predict implements Model.
func (t *Tree) Predict(x []float64) float64 {
	if len(t.walk) > 0 {
		return walkPredict(t.walk, x)
	}
	if len(t.nodes) == 0 {
		return 0
	}
	i := 0
	for t.nodes[i].feature >= 0 {
		if x[t.nodes[i].feature] <= t.nodes[i].threshold {
			i = t.nodes[i].left
		} else {
			i = t.nodes[i].right
		}
	}
	return t.nodes[i].value
}

// PredictWithStd implements Model. A single tree has no posterior; std is 0.
func (t *Tree) PredictWithStd(x []float64) (float64, float64) {
	return t.Predict(x), 0
}

// Depth returns the fitted tree's depth (for tests and diagnostics).
func (t *Tree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var walk func(i int) int
	walk = func(i int) int {
		if t.nodes[i].feature < 0 {
			return 1
		}
		l, r := walk(t.nodes[i].left), walk(t.nodes[i].right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int {
	n := 0
	for _, nd := range t.nodes {
		if nd.feature < 0 {
			n++
		}
	}
	return n
}
