package surrogate

import (
	"math"
	"math/rand"
	"sort"
)

// TreeConfig controls CART regression-tree growth.
type TreeConfig struct {
	// MaxDepth limits tree depth (0 = unlimited).
	MaxDepth int
	// MinSamplesLeaf is the minimum training rows per leaf.
	MinSamplesLeaf int
	// MaxFeatures is the number of features considered per split
	// (0 = all features).
	MaxFeatures int
	// RandomThresholds draws one uniform threshold per candidate feature
	// instead of scanning all split points — the Extra-Trees splitter.
	RandomThresholds bool
	// Bootstrap resamples the training set with replacement before fitting
	// (used by Random Forest members).
	Bootstrap bool
}

// DefaultTreeConfig mirrors sklearn's regression-tree defaults.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 0, MinSamplesLeaf: 1}
}

// Tree is a CART regression tree.
type Tree struct {
	cfg   TreeConfig
	rng   *rand.Rand
	nodes []treeNode
}

// treeNode is a flat-array tree node; leaves have feature == -1.
type treeNode struct {
	feature     int
	threshold   float64
	left, right int
	value       float64
	count       int
}

// NewTree returns an untrained tree.
func NewTree(cfg TreeConfig, r *rand.Rand) *Tree {
	if r == nil {
		r = rand.New(rand.NewSource(1))
	}
	return &Tree{cfg: cfg, rng: r}
}

// Name implements Model.
func (t *Tree) Name() string { return "TREE" }

// Fit implements Model.
func (t *Tree) Fit(X [][]float64, y []float64) error {
	n, d, err := validate(X, y)
	if err != nil {
		return err
	}
	idx := make([]int, n)
	if t.cfg.Bootstrap {
		for i := range idx {
			idx[i] = t.rng.Intn(n)
		}
	} else {
		for i := range idx {
			idx[i] = i
		}
	}
	t.nodes = t.nodes[:0]
	t.build(X, y, idx, d, 0)
	return nil
}

// build grows a subtree over the rows in idx and returns its node index.
func (t *Tree) build(X [][]float64, y []float64, idx []int, d, depth int) int {
	node := len(t.nodes)
	t.nodes = append(t.nodes, treeNode{feature: -1})

	var sum, sumSq float64
	for _, i := range idx {
		sum += y[i]
		sumSq += y[i] * y[i]
	}
	n := float64(len(idx))
	t.nodes[node].value = sum / n
	t.nodes[node].count = len(idx)
	sse := sumSq - sum*sum/n

	minLeaf := t.cfg.MinSamplesLeaf
	if minLeaf < 1 {
		minLeaf = 1
	}
	if len(idx) < 2*minLeaf || sse <= 1e-12 || (t.cfg.MaxDepth > 0 && depth >= t.cfg.MaxDepth) {
		return node
	}

	feat, thr, ok := t.bestSplit(X, y, idx, d, minLeaf)
	if !ok {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < minLeaf || len(right) < minLeaf {
		return node
	}
	t.nodes[node].feature = feat
	t.nodes[node].threshold = thr
	t.nodes[node].left = t.build(X, y, left, d, depth+1)
	t.nodes[node].right = t.build(X, y, right, d, depth+1)
	return node
}

// bestSplit searches for the SSE-minimizing split over a random subset of
// features (exhaustive thresholds for CART, one random threshold per feature
// for Extra-Trees).
func (t *Tree) bestSplit(X [][]float64, y []float64, idx []int, d, minLeaf int) (feat int, thr float64, ok bool) {
	nFeat := t.cfg.MaxFeatures
	if nFeat <= 0 || nFeat > d {
		nFeat = d
	}
	feats := t.rng.Perm(d)[:nFeat]
	best := math.Inf(1)
	for _, f := range feats {
		if t.cfg.RandomThresholds {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, i := range idx {
				v := X[i][f]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if hi <= lo {
				continue
			}
			cut := lo + t.rng.Float64()*(hi-lo)
			if cost, valid := splitCost(X, y, idx, f, cut, minLeaf); valid && cost < best {
				best, feat, thr, ok = cost, f, cut, true
			}
			continue
		}
		// Exhaustive scan: sort rows by feature value, then evaluate every
		// boundary between distinct values with prefix sums.
		order := append([]int(nil), idx...)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		var lSum, lSq float64
		var rSum, rSq float64
		for _, i := range order {
			rSum += y[i]
			rSq += y[i] * y[i]
		}
		nTot := len(order)
		for k := 0; k < nTot-1; k++ {
			yi := y[order[k]]
			lSum += yi
			lSq += yi * yi
			rSum -= yi
			rSq -= yi * yi
			if X[order[k]][f] == X[order[k+1]][f] {
				continue
			}
			nl, nr := k+1, nTot-k-1
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			cost := (lSq - lSum*lSum/float64(nl)) + (rSq - rSum*rSum/float64(nr))
			if cost < best {
				best = cost
				feat = f
				thr = (X[order[k]][f] + X[order[k+1]][f]) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// splitCost evaluates one (feature, threshold) split's total SSE.
func splitCost(X [][]float64, y []float64, idx []int, f int, thr float64, minLeaf int) (float64, bool) {
	var lSum, lSq, rSum, rSq float64
	var nl, nr int
	for _, i := range idx {
		yi := y[i]
		if X[i][f] <= thr {
			lSum += yi
			lSq += yi * yi
			nl++
		} else {
			rSum += yi
			rSq += yi * yi
			nr++
		}
	}
	if nl < minLeaf || nr < minLeaf {
		return 0, false
	}
	return (lSq - lSum*lSum/float64(nl)) + (rSq - rSum*rSum/float64(nr)), true
}

// Predict implements Model.
func (t *Tree) Predict(x []float64) float64 {
	if len(t.nodes) == 0 {
		return 0
	}
	i := 0
	for t.nodes[i].feature >= 0 {
		if x[t.nodes[i].feature] <= t.nodes[i].threshold {
			i = t.nodes[i].left
		} else {
			i = t.nodes[i].right
		}
	}
	return t.nodes[i].value
}

// PredictWithStd implements Model. A single tree has no posterior; std is 0.
func (t *Tree) PredictWithStd(x []float64) (float64, float64) {
	return t.Predict(x), 0
}

// Depth returns the fitted tree's depth (for tests and diagnostics).
func (t *Tree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var walk func(i int) int
	walk = func(i int) int {
		if t.nodes[i].feature < 0 {
			return 1
		}
		l, r := walk(t.nodes[i].left), walk(t.nodes[i].right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int {
	n := 0
	for _, nd := range t.nodes {
		if nd.feature < 0 {
			n++
		}
	}
	return n
}
