// Package surrogate implements the surrogate-model families the paper's
// Phase II lists for exploring the search space of long-running
// applications: decision trees, Random Forest, Extra Trees (the paper's
// choice, Listing 1 base_estimator='ET'), Gradient Boosting Regression
// Trees, Gaussian process (Kriging), polynomial regression, and a
// least-squares SVM (kernel ridge) standing in for the SVM family.
//
// All models regress y on points in the unit hypercube (package space maps
// real configurations there) and expose predictive uncertainty so that
// acquisition functions can trade exploration against exploitation.
package surrogate

import (
	"fmt"
	"math/rand"
)

// Model is a trainable regression surrogate.
type Model interface {
	// Fit trains on rows X (points in [0,1]^d) and targets y.
	Fit(X [][]float64, y []float64) error
	// Predict returns the posterior mean at x.
	Predict(x []float64) float64
	// PredictWithStd returns the posterior mean and a standard-deviation
	// estimate at x. Models without a principled posterior return a
	// residual-based estimate (documented per model).
	PredictWithStd(x []float64) (mean, std float64)
	// Name identifies the model in reproducibility summaries.
	Name() string
}

// Factory builds a fresh model; optimizers refit from scratch at every
// iteration, mirroring skopt.
type Factory func(r *rand.Rand) Model

// ByName maps the estimator names of skopt ("ET", "RF", "GBRT", "GP") plus
// this package's extras ("TREE", "POLY", "LSSVM") to factories.
func ByName(name string) (Factory, error) {
	switch name {
	case "ET":
		return func(r *rand.Rand) Model { return NewExtraTrees(DefaultForestConfig(), r) }, nil
	case "RF":
		return func(r *rand.Rand) Model { return NewRandomForest(DefaultForestConfig(), r) }, nil
	case "GBRT":
		return func(r *rand.Rand) Model { return NewGBRT(DefaultGBRTConfig(), r) }, nil
	case "GP":
		return func(r *rand.Rand) Model { return NewGP(DefaultGPConfig()) }, nil
	case "TREE":
		return func(r *rand.Rand) Model { return NewTree(DefaultTreeConfig(), r) }, nil
	case "POLY":
		return func(r *rand.Rand) Model { return NewPolynomial(2) }, nil
	case "LSSVM":
		return func(r *rand.Rand) Model { return NewLSSVM(DefaultLSSVMConfig()) }, nil
	case "KNN":
		return func(r *rand.Rand) Model { return NewKNN(DefaultKNNConfig()) }, nil
	default:
		return nil, fmt.Errorf("surrogate: unknown estimator %q", name)
	}
}

// validate checks a training set for shape consistency.
func validate(X [][]float64, y []float64) (n, d int, err error) {
	if len(X) == 0 || len(X) != len(y) {
		return 0, 0, fmt.Errorf("surrogate: bad training set: %d rows, %d targets", len(X), len(y))
	}
	d = len(X[0])
	if d == 0 {
		return 0, 0, fmt.Errorf("surrogate: zero-dimensional inputs")
	}
	for i, row := range X {
		if len(row) != d {
			return 0, 0, fmt.Errorf("surrogate: ragged row %d: %d cols, want %d", i, len(row), d)
		}
	}
	return len(X), d, nil
}

func mean(y []float64) float64 {
	var s float64
	for _, v := range y {
		s += v
	}
	return s / float64(len(y))
}
