// Package surrogate implements the surrogate-model families the paper's
// Phase II lists for exploring the search space of long-running
// applications: decision trees, Random Forest, Extra Trees (the paper's
// choice, Listing 1 base_estimator='ET'), Gradient Boosting Regression
// Trees, Gaussian process (Kriging), polynomial regression, and a
// least-squares SVM (kernel ridge) standing in for the SVM family.
//
// All models regress y on points in the unit hypercube (package space maps
// real configurations there) and expose predictive uncertainty so that
// acquisition functions can trade exploration against exploitation.
//
// # Concurrency model
//
// Training and prediction parallelize internally across a worker pool sized
// by GOMAXPROCS (see parallelFor): Forest.Fit trains its trees concurrently,
// and the BatchPredictor implementations score candidate shards
// concurrently. Parallelism never changes results — each tree owns a
// dedicated RNG seeded at construction time exactly as in the sequential
// code, and batch prediction computes element i of its outputs purely from
// input row i, so outputs are bit-identical to the sequential paths for a
// fixed seed. The models themselves are not safe for concurrent external
// use: callers must not invoke Fit/Predict on the same model from multiple
// goroutines.
//
// # Batch prediction contract
//
// Models that can amortize per-call overhead over many points implement
// BatchPredictor. PredictBatch(X) must return means[i], stds[i] equal (bit
// for bit) to PredictWithStd(X[i]) for every row; callers such as the
// acquisition loop in internal/bo rely on this equivalence and use the
// package-level PredictBatch helper, which falls back to a sequential loop
// for models without a native batch path.
package surrogate

import (
	"fmt"
	"math/rand"
)

// Model is a trainable regression surrogate.
type Model interface {
	// Fit trains on rows X (points in [0,1]^d) and targets y.
	Fit(X [][]float64, y []float64) error
	// Predict returns the posterior mean at x.
	Predict(x []float64) float64
	// PredictWithStd returns the posterior mean and a standard-deviation
	// estimate at x. Models without a principled posterior return a
	// residual-based estimate (documented per model).
	PredictWithStd(x []float64) (mean, std float64)
	// Name identifies the model in reproducibility summaries.
	Name() string
}

// BatchPredictor is implemented by models with a native batched prediction
// path. PredictBatch returns the posterior mean and standard deviation for
// every row of X; element i must be bit-identical to PredictWithStd(X[i]).
// Implementations may parallelize across rows internally.
type BatchPredictor interface {
	PredictBatch(X [][]float64) (means, stds []float64)
}

// PredictBatch scores every row of X under m, using the model's native
// batch path when it implements BatchPredictor and a sequential
// PredictWithStd loop otherwise. It is the entry point acquisition
// optimizers should use to score candidate pools.
func PredictBatch(m Model, X [][]float64) (means, stds []float64) {
	if bp, ok := m.(BatchPredictor); ok {
		return bp.PredictBatch(X)
	}
	means = make([]float64, len(X))
	stds = make([]float64, len(X))
	for i, x := range X {
		means[i], stds[i] = m.PredictWithStd(x)
	}
	return means, stds
}

// Factory builds a fresh model; optimizers refit from scratch at every
// iteration, mirroring skopt.
type Factory func(r *rand.Rand) Model

// Reseeder is implemented by models whose construction-time RNG streams can
// be reset in place. Reseed(seed) must leave the model drawing exactly the
// stream a fresh Factory(rand.New(rand.NewSource(seed))) construction would
// produce, while keeping its internal buffers (tree node arrays, fit
// scratch, ensemble RNG sources) warm. Optimizers that refit a surrogate
// every iteration use this to avoid rebuilding the whole ensemble — in
// particular the 607-word math/rand source per tree — on every Ask.
type Reseeder interface {
	Reseed(seed int64)
}

// ByName maps the estimator names of skopt ("ET", "RF", "GBRT", "GP") plus
// this package's extras ("TREE", "POLY", "LSSVM") to factories.
func ByName(name string) (Factory, error) {
	switch name {
	case "ET":
		return func(r *rand.Rand) Model { return NewExtraTrees(DefaultForestConfig(), r) }, nil
	case "RF":
		return func(r *rand.Rand) Model { return NewRandomForest(DefaultForestConfig(), r) }, nil
	case "GBRT":
		return func(r *rand.Rand) Model { return NewGBRT(DefaultGBRTConfig(), r) }, nil
	case "GP":
		return func(r *rand.Rand) Model { return NewGP(DefaultGPConfig()) }, nil
	case "TREE":
		return func(r *rand.Rand) Model { return NewTree(DefaultTreeConfig(), r) }, nil
	case "POLY":
		return func(r *rand.Rand) Model { return NewPolynomial(2) }, nil
	case "LSSVM":
		return func(r *rand.Rand) Model { return NewLSSVM(DefaultLSSVMConfig()) }, nil
	case "KNN":
		return func(r *rand.Rand) Model { return NewKNN(DefaultKNNConfig()) }, nil
	default:
		return nil, fmt.Errorf("surrogate: unknown estimator %q", name)
	}
}

// validate checks a training set for shape consistency.
func validate(X [][]float64, y []float64) (n, d int, err error) {
	if len(X) == 0 || len(X) != len(y) {
		return 0, 0, fmt.Errorf("surrogate: bad training set: %d rows, %d targets", len(X), len(y))
	}
	d = len(X[0])
	if d == 0 {
		return 0, 0, fmt.Errorf("surrogate: zero-dimensional inputs")
	}
	for i, row := range X {
		if len(row) != d {
			return 0, 0, fmt.Errorf("surrogate: ragged row %d: %d cols, want %d", i, len(row), d)
		}
	}
	return len(X), d, nil
}

func mean(y []float64) float64 {
	var s float64
	for _, v := range y {
		s += v
	}
	return s / float64(len(y))
}
