package surrogate

import (
	"math"
	"math/rand"
	"testing"
)

// trainSet builds n samples of fn over [0,1]^d.
func trainSet(r *rand.Rand, n, d int, fn func([]float64) float64) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		for j := range X[i] {
			X[i][j] = r.Float64()
		}
		y[i] = fn(X[i])
	}
	return X, y
}

func quadratic(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += (v - 0.5) * (v - 0.5)
	}
	return s
}

func allModels(r *rand.Rand) []Model {
	return []Model{
		NewTree(DefaultTreeConfig(), r),
		NewRandomForest(ForestConfig{NEstimators: 50, MinSamplesLeaf: 1}, r),
		NewExtraTrees(ForestConfig{NEstimators: 50, MinSamplesLeaf: 1}, r),
		NewGBRT(GBRTConfig{NEstimators: 80, LearningRate: 0.1, MaxDepth: 3, Subsample: 1}, r),
		NewGP(DefaultGPConfig()),
		NewPolynomial(2),
		NewLSSVM(DefaultLSSVMConfig()),
	}
}

// TestAllModelsLearnQuadratic: every surrogate family must achieve a far
// better RMSE than predicting the mean on a smooth quadratic.
func TestAllModelsLearnQuadratic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	X, y := trainSet(r, 200, 2, quadratic)
	Xt, yt := trainSet(r, 200, 2, quadratic)
	// Baseline: constant mean predictor RMSE.
	m := mean(y)
	var base float64
	for _, v := range yt {
		base += (v - m) * (v - m)
	}
	base = math.Sqrt(base / float64(len(yt)))
	for _, model := range allModels(r) {
		if err := model.Fit(X, y); err != nil {
			t.Fatalf("%s: %v", model.Name(), err)
		}
		var sse float64
		for i := range Xt {
			d := model.Predict(Xt[i]) - yt[i]
			sse += d * d
		}
		rmse := math.Sqrt(sse / float64(len(Xt)))
		if rmse > base*0.5 {
			t.Errorf("%s: rmse %.4f vs baseline %.4f — did not learn", model.Name(), rmse, base)
		}
	}
}

func TestModelsRejectBadInput(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, model := range allModels(r) {
		if err := model.Fit(nil, nil); err == nil {
			t.Errorf("%s accepted empty training set", model.Name())
		}
		if err := model.Fit([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
			t.Errorf("%s accepted ragged rows", model.Name())
		}
		if err := model.Fit([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
			t.Errorf("%s accepted row/target mismatch", model.Name())
		}
	}
}

func TestTreeInterpolatesTrainingData(t *testing.T) {
	// An unpruned CART tree with MinSamplesLeaf=1 and distinct inputs must
	// reproduce its training targets exactly.
	r := rand.New(rand.NewSource(5))
	X, y := trainSet(r, 60, 3, quadratic)
	tr := NewTree(DefaultTreeConfig(), r)
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if math.Abs(tr.Predict(X[i])-y[i]) > 1e-9 {
			t.Fatalf("tree does not interpolate row %d: %v vs %v", i, tr.Predict(X[i]), y[i])
		}
	}
	if tr.LeafCount() < 2 {
		t.Error("tree did not split")
	}
}

func TestTreeMaxDepth(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	X, y := trainSet(r, 200, 2, quadratic)
	tr := NewTree(TreeConfig{MaxDepth: 3, MinSamplesLeaf: 1}, r)
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 4 { // depth counts nodes; 3 splits -> <= 4 levels
		t.Errorf("Depth = %d beyond MaxDepth 3", d)
	}
	if lc := tr.LeafCount(); lc > 8 {
		t.Errorf("LeafCount = %d, want <= 8 at depth 3", lc)
	}
}

func TestTreeMinSamplesLeaf(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	X, y := trainSet(r, 100, 2, quadratic)
	tr := NewTree(TreeConfig{MinSamplesLeaf: 10}, r)
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for _, nd := range tr.nodes {
		if nd.feature < 0 && nd.count < 10 {
			t.Fatalf("leaf with %d samples, want >= 10", nd.count)
		}
	}
}

func TestTreeConstantTarget(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	X, _ := trainSet(r, 50, 2, quadratic)
	y := make([]float64, 50)
	for i := range y {
		y[i] = 7
	}
	tr := NewTree(DefaultTreeConfig(), r)
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tr.LeafCount() != 1 {
		t.Errorf("constant target grew %d leaves, want 1", tr.LeafCount())
	}
	if tr.Predict(X[0]) != 7 {
		t.Errorf("Predict = %v, want 7", tr.Predict(X[0]))
	}
}

func TestForestUncertainty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	// Constant targets: every tree predicts the constant, so the
	// across-tree std must be exactly zero.
	X, _ := trainSet(r, 50, 2, quadratic)
	flat := make([]float64, len(X))
	for i := range flat {
		flat[i] = 4
	}
	f := NewExtraTrees(ForestConfig{NEstimators: 50}, r)
	if err := f.Fit(X, flat); err != nil {
		t.Fatal(err)
	}
	if m, s := f.PredictWithStd([]float64{0.5, 0.5}); m != 4 || s > 1e-9 {
		t.Errorf("constant-target forest: mean %v std %v, want 4, 0", m, s)
	}
	// Two clusters with different targets: in the gap between them the
	// trees must disagree (std > 0), because each tree places its random
	// split boundary differently.
	X2 := make([][]float64, 60)
	y2 := make([]float64, 60)
	for i := range X2 {
		if i%2 == 0 {
			X2[i] = []float64{r.Float64() * 0.2, r.Float64()}
			y2[i] = 0
		} else {
			X2[i] = []float64{0.8 + r.Float64()*0.2, r.Float64()}
			y2[i] = 10
		}
	}
	f2 := NewExtraTrees(ForestConfig{NEstimators: 50}, r)
	if err := f2.Fit(X2, y2); err != nil {
		t.Fatal(err)
	}
	if _, s := f2.PredictWithStd([]float64{0.5, 0.5}); s <= 0 {
		t.Errorf("gap std = %v, want > 0 (trees should disagree)", s)
	}
	// PredictWithStd mean must agree with Predict.
	m, _ := f2.PredictWithStd([]float64{0.3, 0.3})
	if math.Abs(m-f2.Predict([]float64{0.3, 0.3})) > 1e-12 {
		t.Error("PredictWithStd mean != Predict")
	}
}

func TestForestDeterministicGivenSeed(t *testing.T) {
	X, y := trainSet(rand.New(rand.NewSource(2)), 60, 2, quadratic)
	a := NewExtraTrees(ForestConfig{NEstimators: 20}, rand.New(rand.NewSource(77)))
	b := NewExtraTrees(ForestConfig{NEstimators: 20}, rand.New(rand.NewSource(77)))
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pt := []float64{0.3, 0.7}
	if a.Predict(pt) != b.Predict(pt) {
		t.Error("same-seed forests disagree")
	}
}

func TestGBRTImprovesWithStages(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	X, y := trainSet(r, 150, 2, quadratic)
	Xt, yt := trainSet(r, 150, 2, quadratic)
	rmse := func(m Model) float64 {
		var s float64
		for i := range Xt {
			d := m.Predict(Xt[i]) - yt[i]
			s += d * d
		}
		return math.Sqrt(s / float64(len(Xt)))
	}
	small := NewGBRT(GBRTConfig{NEstimators: 5, LearningRate: 0.1, MaxDepth: 3}, rand.New(rand.NewSource(1)))
	big := NewGBRT(GBRTConfig{NEstimators: 100, LearningRate: 0.1, MaxDepth: 3}, rand.New(rand.NewSource(1)))
	if err := small.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := big.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if rmse(big) >= rmse(small) {
		t.Errorf("more stages did not help: %v vs %v", rmse(big), rmse(small))
	}
}

func TestGBRTSubsample(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	X, y := trainSet(r, 100, 2, quadratic)
	g := NewGBRT(GBRTConfig{NEstimators: 30, LearningRate: 0.1, MaxDepth: 3, Subsample: 0.5}, r)
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	_, std := g.PredictWithStd([]float64{0.5, 0.5})
	if std < 0 {
		t.Error("negative residual std")
	}
}

func TestGPExactInterpolationLowNoise(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	X, y := trainSet(r, 30, 2, quadratic)
	gp := NewGP(GPConfig{Kernel: RBF{}, Noise: 1e-8})
	if err := gp.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		m, s := gp.PredictWithStd(X[i])
		if math.Abs(m-y[i]) > 1e-3 {
			t.Fatalf("GP far from training point %d: %v vs %v", i, m, y[i])
		}
		if s > 0.05 {
			t.Fatalf("GP std at training point = %v, want ~0", s)
		}
	}
}

func TestGPUncertaintyGrowsAwayFromData(t *testing.T) {
	X := [][]float64{{0.1, 0.1}, {0.2, 0.2}, {0.15, 0.25}, {0.25, 0.1}}
	y := []float64{1, 2, 1.5, 1.2}
	gp := NewGP(DefaultGPConfig())
	if err := gp.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	_, nearStd := gp.PredictWithStd([]float64{0.15, 0.15})
	_, farStd := gp.PredictWithStd([]float64{0.9, 0.9})
	if farStd <= nearStd {
		t.Errorf("far std %v <= near std %v", farStd, nearStd)
	}
}

func TestGPConstantTargets(t *testing.T) {
	X := [][]float64{{0.1}, {0.5}, {0.9}}
	y := []float64{3, 3, 3}
	gp := NewGP(DefaultGPConfig())
	if err := gp.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m := gp.Predict([]float64{0.3}); math.Abs(m-3) > 1e-6 {
		t.Errorf("constant-target GP predicts %v, want 3", m)
	}
}

func TestKernelsBasicProperties(t *testing.T) {
	kernels := []Kernel{RBF{}, Matern32{}, Matern52{}}
	a := []float64{0.2, 0.4}
	b := []float64{0.6, 0.1}
	for _, k := range kernels {
		if v := k.Eval(a, a, 0.5); math.Abs(v-1) > 1e-12 {
			t.Errorf("%s: k(a,a) = %v, want 1", k.Name(), v)
		}
		ab, ba := k.Eval(a, b, 0.5), k.Eval(b, a, 0.5)
		if ab != ba {
			t.Errorf("%s: not symmetric", k.Name())
		}
		if ab <= 0 || ab >= 1 {
			t.Errorf("%s: k(a,b) = %v outside (0,1)", k.Name(), ab)
		}
		// Longer length scale -> higher correlation.
		if k.Eval(a, b, 2) <= k.Eval(a, b, 0.2) {
			t.Errorf("%s: correlation not increasing in length scale", k.Name())
		}
	}
}

func TestPolynomialExactOnQuadratic(t *testing.T) {
	// A degree-2 polynomial model must fit a noiseless quadratic exactly.
	r := rand.New(rand.NewSource(13))
	X, y := trainSet(r, 50, 3, func(x []float64) float64 {
		return 1 + 2*x[0] - x[1] + 0.5*x[0]*x[1] + 3*x[2]*x[2]
	})
	p := NewPolynomial(2)
	if err := p.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, 0.6, 0.2}
	want := 1 + 2*0.3 - 0.6 + 0.5*0.3*0.6 + 3*0.2*0.2
	if got := p.Predict(probe); math.Abs(got-want) > 1e-6 {
		t.Errorf("Predict = %v, want %v", got, want)
	}
	if _, std := p.PredictWithStd(probe); std > 1e-6 {
		t.Errorf("residual std = %v on noiseless quadratic", std)
	}
}

func TestPolynomialRidgeFallbackSmallN(t *testing.T) {
	// Fewer rows than expanded features triggers the ridge path.
	X := [][]float64{{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.1}}
	y := []float64{1, 2, 3}
	p := NewPolynomial(2)
	if err := p.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if v := p.Predict([]float64{0.2, 0.3}); math.IsNaN(v) {
		t.Error("ridge fallback produced NaN")
	}
}

func TestPolynomialDegree3(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	X, y := trainSet(r, 80, 1, func(x []float64) float64 { return x[0] * x[0] * x[0] })
	p := NewPolynomial(3)
	if err := p.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := p.Predict([]float64{0.5}); math.Abs(got-0.125) > 1e-6 {
		t.Errorf("cubic fit at 0.5 = %v, want 0.125", got)
	}
}

func TestLSSVMFitsSmoothFunction(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	X, y := trainSet(r, 100, 2, func(x []float64) float64 { return math.Sin(3*x[0]) + x[1] })
	s := NewLSSVM(DefaultLSSVMConfig())
	if err := s.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var sse float64
	Xt, yt := trainSet(r, 100, 2, func(x []float64) float64 { return math.Sin(3*x[0]) + x[1] })
	for i := range Xt {
		d := s.Predict(Xt[i]) - yt[i]
		sse += d * d
	}
	if rmse := math.Sqrt(sse / 100); rmse > 0.1 {
		t.Errorf("LSSVM rmse = %v, want < 0.1", rmse)
	}
}

func TestByName(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []string{"ET", "RF", "GBRT", "GP", "TREE", "POLY", "LSSVM"} {
		f, err := ByName(n)
		if err != nil {
			t.Errorf("ByName(%q): %v", n, err)
			continue
		}
		m := f(r)
		if m == nil {
			t.Errorf("ByName(%q) factory returned nil", n)
		}
	}
	if _, err := ByName("XGB"); err == nil {
		t.Error("unknown estimator accepted")
	}
}

func TestUntrainedPredictIsSafe(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, m := range allModels(r) {
		if v := m.Predict([]float64{0.5, 0.5}); math.IsNaN(v) {
			t.Errorf("%s: untrained Predict is NaN", m.Name())
		}
	}
}

func TestKNNBasics(t *testing.T) {
	k := NewKNN(DefaultKNNConfig())
	X := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	y := []float64{0, 1, 1, 2}
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Near a training point, distance weighting pulls toward its target.
	if got := k.Predict([]float64{0.01, 0.01}); math.Abs(got-0) > 0.2 {
		t.Errorf("Predict near (0,0) = %v, want ~0", got)
	}
	// Center: symmetric average.
	if got := k.Predict([]float64{0.5, 0.5}); math.Abs(got-1) > 0.2 {
		t.Errorf("Predict center = %v, want ~1", got)
	}
	// Neighborhood std positive where targets conflict.
	if _, s := k.PredictWithStd([]float64{0.5, 0.5}); s <= 0 {
		t.Errorf("std = %v, want > 0", s)
	}
}

func TestKNNUnweightedExactHit(t *testing.T) {
	k := NewKNN(KNNConfig{K: 3, Weighted: false})
	X := [][]float64{{0}, {0.5}, {1}}
	y := []float64{1, 2, 3}
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got, s := k.PredictWithStd([]float64{0.5}); got != 2 || s != 0 {
		t.Errorf("exact hit = %v (std %v), want 2, 0", got, s)
	}
}

func TestKNNLearnsQuadratic(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	X, y := trainSet(r, 300, 2, quadratic)
	k := NewKNN(DefaultKNNConfig())
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := trainSet(r, 100, 2, quadratic)
	var sse float64
	for i := range Xt {
		d := k.Predict(Xt[i]) - yt[i]
		sse += d * d
	}
	if rmse := math.Sqrt(sse / 100); rmse > 0.05 {
		t.Errorf("KNN rmse = %v", rmse)
	}
}

func TestKNNByName(t *testing.T) {
	f, err := ByName("KNN")
	if err != nil {
		t.Fatal(err)
	}
	if f(rand.New(rand.NewSource(1))).Name() != "KNN" {
		t.Error("factory name mismatch")
	}
}
