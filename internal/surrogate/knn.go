package surrogate

import (
	"math"
	"sort"
)

// KNNConfig controls the k-nearest-neighbors surrogate.
type KNNConfig struct {
	// K is the neighborhood size (default 5, clamped to the training size).
	K int
	// Weighted enables inverse-distance weighting (default true behaviour
	// is uniform when false).
	Weighted bool
}

// DefaultKNNConfig returns distance-weighted 5-NN.
func DefaultKNNConfig() KNNConfig { return KNNConfig{K: 5, Weighted: true} }

// KNN is k-nearest-neighbors regression — the simplest non-parametric
// surrogate, useful as a sanity baseline against the tree and GP families.
// Predictive std is the (weighted) standard deviation of the neighborhood
// targets: small in well-sampled flat regions, large near conflicting
// observations.
type KNN struct {
	cfg KNNConfig
	X   [][]float64
	y   []float64
}

// NewKNN returns an untrained KNN model.
func NewKNN(cfg KNNConfig) *KNN {
	if cfg.K <= 0 {
		cfg.K = 5
	}
	return &KNN{cfg: cfg}
}

// Name implements Model.
func (k *KNN) Name() string { return "KNN" }

// Fit implements Model (lazy learner: it stores the data).
func (k *KNN) Fit(X [][]float64, y []float64) error {
	if _, _, err := validate(X, y); err != nil {
		return err
	}
	k.X = X
	k.y = y
	return nil
}

// Predict implements Model.
func (k *KNN) Predict(x []float64) float64 {
	m, _ := k.PredictWithStd(x)
	return m
}

// PredictWithStd implements Model.
func (k *KNN) PredictWithStd(x []float64) (float64, float64) {
	if len(k.X) == 0 {
		return 0, 0
	}
	type neigh struct {
		d2 float64
		y  float64
	}
	ns := make([]neigh, len(k.X))
	for i, xi := range k.X {
		ns[i] = neigh{d2: sqDist(x, xi), y: k.y[i]}
	}
	sort.Slice(ns, func(a, b int) bool { return ns[a].d2 < ns[b].d2 })
	kk := k.cfg.K
	if kk > len(ns) {
		kk = len(ns)
	}
	ns = ns[:kk]
	// Exact hit: return its target with zero uncertainty.
	if ns[0].d2 == 0 && !k.cfg.Weighted {
		return ns[0].y, 0
	}
	var wSum, mean float64
	ws := make([]float64, kk)
	for i, n := range ns {
		w := 1.0
		if k.cfg.Weighted {
			w = 1 / (math.Sqrt(n.d2) + 1e-9)
		}
		ws[i] = w
		wSum += w
		mean += w * n.y
	}
	mean /= wSum
	var varSum float64
	for i, n := range ns {
		d := n.y - mean
		varSum += ws[i] * d * d
	}
	return mean, math.Sqrt(varSum / wSum)
}
