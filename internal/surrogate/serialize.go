package surrogate

import (
	"encoding/json"
	"fmt"

	"e2clab/internal/linalg"
)

// Model serialization supports the paper's finalize() step: "Saved
// information refers to intermediate models throughout training and points
// evaluated". Marshal/Unmarshal round-trip every model family so archived
// surrogates can be reloaded and queried without retraining.

type modelEnvelope struct {
	Type   string       `json:"type"`
	Tree   *treeState   `json:"tree,omitempty"`
	Forest *forestState `json:"forest,omitempty"`
	GBRT   *gbrtState   `json:"gbrt,omitempty"`
	GP     *gpState     `json:"gp,omitempty"`
	Poly   *polyState   `json:"poly,omitempty"`
	LSSVM  *lssvmState  `json:"lssvm,omitempty"`
	KNN    *knnState    `json:"knn,omitempty"`
}

type treeState struct {
	Nodes []treeNodeState `json:"nodes"`
}

type treeNodeState struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t,omitempty"`
	Left      int     `json:"l,omitempty"`
	Right     int     `json:"r,omitempty"`
	Value     float64 `json:"v"`
	Count     int     `json:"n"`
}

type forestState struct {
	Name  string      `json:"name"`
	Trees []treeState `json:"trees"`
}

type gbrtState struct {
	Base        float64     `json:"base"`
	Rate        float64     `json:"rate"`
	Stages      []treeState `json:"stages"`
	ResidualStd float64     `json:"residual_std"`
}

type gpState struct {
	Kernel string      `json:"kernel"`
	Noise  float64     `json:"noise"`
	X      [][]float64 `json:"x"`
	Alpha  []float64   `json:"alpha"`
	L      []float64   `json:"l"` // row-major lower Cholesky factor
	YMean  float64     `json:"y_mean"`
	YStd   float64     `json:"y_std"`
	LS     float64     `json:"length_scale"`
}

type polyState struct {
	Degree      int       `json:"degree"`
	Dims        int       `json:"dims"`
	Coef        []float64 `json:"coef"`
	ResidualStd float64   `json:"residual_std"`
}

type lssvmState struct {
	Gamma       float64     `json:"gamma"`
	C           float64     `json:"c"`
	X           [][]float64 `json:"x"`
	Alpha       []float64   `json:"alpha"`
	Bias        float64     `json:"bias"`
	ResidualStd float64     `json:"residual_std"`
}

type knnState struct {
	K        int         `json:"k"`
	Weighted bool        `json:"weighted"`
	X        [][]float64 `json:"x"`
	Y        []float64   `json:"y"`
}

func treeToState(t *Tree) treeState {
	s := treeState{Nodes: make([]treeNodeState, len(t.nodes))}
	for i, n := range t.nodes {
		s.Nodes[i] = treeNodeState{Feature: n.feature, Threshold: n.threshold,
			Left: n.left, Right: n.right, Value: n.value, Count: n.count}
	}
	return s
}

func treeFromState(s treeState) *Tree {
	t := NewTree(DefaultTreeConfig(), nil)
	t.nodes = make([]treeNode, len(s.Nodes))
	for i, n := range s.Nodes {
		t.nodes[i] = treeNode{feature: n.Feature, threshold: n.Threshold,
			left: n.Left, right: n.Right, value: n.Value, count: n.Count}
	}
	t.buildWalk()
	return t
}

// Marshal serializes a fitted model.
func Marshal(m Model) ([]byte, error) {
	env := modelEnvelope{}
	switch v := m.(type) {
	case *Tree:
		env.Type = "TREE"
		st := treeToState(v)
		env.Tree = &st
	case *Forest:
		env.Type = v.name
		fs := forestState{Name: v.name}
		for _, t := range v.trees {
			fs.Trees = append(fs.Trees, treeToState(t))
		}
		env.Forest = &fs
	case *GBRT:
		env.Type = "GBRT"
		gs := gbrtState{Base: v.base, Rate: v.cfg.LearningRate, ResidualStd: v.residualStd}
		for _, t := range v.stages {
			gs.Stages = append(gs.Stages, treeToState(t))
		}
		env.GBRT = &gs
	case *GP:
		if !v.ok {
			return nil, fmt.Errorf("surrogate: cannot marshal unfitted GP")
		}
		env.Type = "GP"
		env.GP = &gpState{Kernel: v.cfg.Kernel.Name(), Noise: v.cfg.Noise,
			X: v.X, Alpha: v.alpha, L: v.chol.L.Data,
			YMean: v.yMean, YStd: v.yStd, LS: v.ls}
	case *Polynomial:
		env.Type = "POLY"
		env.Poly = &polyState{Degree: v.degree, Dims: v.dims, Coef: v.coef, ResidualStd: v.residualStd}
	case *LSSVM:
		env.Type = "LSSVM"
		env.LSSVM = &lssvmState{Gamma: v.cfg.Gamma, C: v.cfg.C,
			X: v.X, Alpha: v.alpha, Bias: v.bias, ResidualStd: v.residualStd}
	case *KNN:
		env.Type = "KNN"
		env.KNN = &knnState{K: v.cfg.K, Weighted: v.cfg.Weighted, X: v.X, Y: v.y}
	default:
		return nil, fmt.Errorf("surrogate: cannot marshal %T", m)
	}
	return json.Marshal(env)
}

// Unmarshal reconstructs a model serialized with Marshal.
func Unmarshal(b []byte) (Model, error) {
	var env modelEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("surrogate: %w", err)
	}
	switch env.Type {
	case "TREE":
		if env.Tree == nil {
			return nil, fmt.Errorf("surrogate: TREE payload missing")
		}
		return treeFromState(*env.Tree), nil
	case "ET", "RF":
		if env.Forest == nil {
			return nil, fmt.Errorf("surrogate: forest payload missing")
		}
		f := &Forest{name: env.Forest.Name}
		for _, ts := range env.Forest.Trees {
			f.trees = append(f.trees, treeFromState(ts))
		}
		return f, nil
	case "GBRT":
		if env.GBRT == nil {
			return nil, fmt.Errorf("surrogate: GBRT payload missing")
		}
		g := NewGBRT(GBRTConfig{LearningRate: env.GBRT.Rate}, nil)
		g.base = env.GBRT.Base
		g.residualStd = env.GBRT.ResidualStd
		for _, ts := range env.GBRT.Stages {
			g.stages = append(g.stages, treeFromState(ts))
		}
		return g, nil
	case "GP":
		st := env.GP
		if st == nil {
			return nil, fmt.Errorf("surrogate: GP payload missing")
		}
		var kernel Kernel
		switch st.Kernel {
		case "rbf":
			kernel = RBF{}
		case "matern32":
			kernel = Matern32{}
		case "matern52":
			kernel = Matern52{}
		default:
			return nil, fmt.Errorf("surrogate: unknown kernel %q", st.Kernel)
		}
		g := NewGP(GPConfig{Kernel: kernel, Noise: st.Noise})
		n := len(st.X)
		if n == 0 || len(st.L) != n*n || len(st.Alpha) != n {
			return nil, fmt.Errorf("surrogate: GP payload inconsistent (n=%d)", n)
		}
		l := linalg.NewMatrix(n, n)
		copy(l.Data, st.L)
		g.X = st.X
		g.alpha = st.Alpha
		g.chol = &linalg.Cholesky{L: l}
		g.yMean, g.yStd, g.ls, g.ok = st.YMean, st.YStd, st.LS, true
		return g, nil
	case "POLY":
		if env.Poly == nil {
			return nil, fmt.Errorf("surrogate: POLY payload missing")
		}
		p := NewPolynomial(env.Poly.Degree)
		p.dims = env.Poly.Dims
		p.coef = env.Poly.Coef
		p.residualStd = env.Poly.ResidualStd
		return p, nil
	case "LSSVM":
		st := env.LSSVM
		if st == nil {
			return nil, fmt.Errorf("surrogate: LSSVM payload missing")
		}
		s := NewLSSVM(LSSVMConfig{Gamma: st.Gamma, C: st.C})
		s.X, s.alpha, s.bias, s.residualStd = st.X, st.Alpha, st.Bias, st.ResidualStd
		return s, nil
	case "KNN":
		st := env.KNN
		if st == nil {
			return nil, fmt.Errorf("surrogate: KNN payload missing")
		}
		k := NewKNN(KNNConfig{K: st.K, Weighted: st.Weighted})
		k.X, k.y = st.X, st.Y
		return k, nil
	default:
		return nil, fmt.Errorf("surrogate: unknown model type %q", env.Type)
	}
}
