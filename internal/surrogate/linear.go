package surrogate

import (
	"fmt"
	"math"

	"e2clab/internal/linalg"
)

// Polynomial is polynomial regression ("Modelling using polynomial
// regression"): a least-squares fit on a degree-d feature expansion with all
// monomials and pairwise interaction terms (degree <= 2) or pure powers
// (degree > 2). Predictive std is the training-residual std.
type Polynomial struct {
	degree      int
	coef        []float64
	dims        int
	residualStd float64
}

// NewPolynomial returns an untrained polynomial model of the given degree
// (>= 1).
func NewPolynomial(degree int) *Polynomial {
	if degree < 1 {
		degree = 1
	}
	return &Polynomial{degree: degree}
}

// Name implements Model.
func (p *Polynomial) Name() string { return fmt.Sprintf("POLY%d", p.degree) }

// expand maps x to its feature vector: 1, x_i, then for degree 2 all
// products x_i x_j (i<=j), and for higher degrees pure powers x_i^k.
func (p *Polynomial) expand(x []float64) []float64 {
	f := make([]float64, 0, 1+len(x)*p.degree+len(x)*(len(x)+1)/2)
	f = append(f, 1)
	f = append(f, x...)
	if p.degree >= 2 {
		for i := 0; i < len(x); i++ {
			for j := i; j < len(x); j++ {
				f = append(f, x[i]*x[j])
			}
		}
	}
	for k := 3; k <= p.degree; k++ {
		for _, v := range x {
			f = append(f, math.Pow(v, float64(k)))
		}
	}
	return f
}

// Fit implements Model.
func (p *Polynomial) Fit(X [][]float64, y []float64) error {
	n, d, err := validate(X, y)
	if err != nil {
		return err
	}
	p.dims = d
	rows := make([][]float64, n)
	for i, x := range X {
		rows[i] = p.expand(x)
	}
	nf := len(rows[0])
	if n < nf {
		// Not enough data for the full expansion: fall back to ridge via
		// normal equations with regularization.
		a := linalg.FromRows(rows)
		at := a.T()
		ata := at.Mul(a)
		for i := 0; i < nf; i++ {
			ata.Set(i, i, ata.At(i, i)+1e-6)
		}
		atb := at.MulVec(y)
		ch, err := linalg.NewCholesky(ata)
		if err != nil {
			return fmt.Errorf("surrogate: polynomial ridge fit: %w", err)
		}
		p.coef = ch.Solve(atb)
	} else {
		coef, err := linalg.LeastSquares(linalg.FromRows(rows), y)
		if err != nil {
			return err
		}
		p.coef = coef
	}
	var sse float64
	for i := range X {
		r := y[i] - p.Predict(X[i])
		sse += r * r
	}
	p.residualStd = math.Sqrt(sse / float64(n))
	return nil
}

// Predict implements Model.
func (p *Polynomial) Predict(x []float64) float64 {
	if p.coef == nil {
		return 0
	}
	return linalg.Dot(p.expand(x), p.coef)
}

// PredictWithStd implements Model.
func (p *Polynomial) PredictWithStd(x []float64) (float64, float64) {
	return p.Predict(x), p.residualStd
}

// LSSVMConfig controls the least-squares SVM surrogate.
type LSSVMConfig struct {
	// Gamma is the RBF kernel width parameter exp(-gamma ||a-b||²).
	Gamma float64
	// C is the regularization constant (larger fits tighter).
	C float64
}

// DefaultLSSVMConfig provides moderate defaults for unit-cube inputs.
func DefaultLSSVMConfig() LSSVMConfig { return LSSVMConfig{Gamma: 2, C: 100} }

// LSSVM is a least-squares support vector machine for regression (Suykens'
// LS-SVM): the SVM-family surrogate the paper lists, with the hinge loss
// replaced by squared loss so the dual reduces to a linear system solvable
// with the in-repo Cholesky. Predictive std is the training-residual std.
type LSSVM struct {
	cfg         LSSVMConfig
	X           [][]float64
	alpha       []float64
	bias        float64
	residualStd float64
}

// NewLSSVM returns an untrained LS-SVM.
func NewLSSVM(cfg LSSVMConfig) *LSSVM {
	if cfg.Gamma <= 0 {
		cfg.Gamma = 2
	}
	if cfg.C <= 0 {
		cfg.C = 100
	}
	return &LSSVM{cfg: cfg}
}

// Name implements Model.
func (s *LSSVM) Name() string { return "LSSVM" }

func (s *LSSVM) kernel(a, b []float64) float64 {
	return math.Exp(-s.cfg.Gamma * sqDist(a, b))
}

// Fit implements Model. The LS-SVM dual with bias is solved by centering:
// we absorb the bias as the target mean and solve (K + I/C) α = y - ȳ.
func (s *LSSVM) Fit(X [][]float64, y []float64) error {
	n, _, err := validate(X, y)
	if err != nil {
		return err
	}
	s.X = X
	s.bias = mean(y)
	z := make([]float64, n)
	for i, v := range y {
		z[i] = v - s.bias
	}
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := s.kernel(X[i], X[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Set(i, i, k.At(i, i)+1/s.cfg.C)
	}
	ch, err := linalg.NewCholesky(k)
	if err != nil {
		return fmt.Errorf("surrogate: LSSVM fit: %w", err)
	}
	s.alpha = ch.Solve(z)
	var sse float64
	for i := range X {
		r := y[i] - s.Predict(X[i])
		sse += r * r
	}
	s.residualStd = math.Sqrt(sse / float64(n))
	return nil
}

// Predict implements Model.
func (s *LSSVM) Predict(x []float64) float64 {
	if s.alpha == nil {
		return 0
	}
	v := s.bias
	for i, xi := range s.X {
		v += s.alpha[i] * s.kernel(x, xi)
	}
	return v
}

// PredictWithStd implements Model.
func (s *LSSVM) PredictWithStd(x []float64) (float64, float64) {
	return s.Predict(x), s.residualStd
}
