package surrogate

import (
	"math"
	"math/rand"
	"testing"
)

// TestReseedMatchesFreshConstruction pins the Reseeder contract: reseeding a
// cached (already fitted, on different data!) ensemble and refitting must be
// bit-identical to constructing a fresh model with the same seed. The bo
// optimizer relies on this to cache its surrogate across Asks.
func TestReseedMatchesFreshConstruction(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	Xa, ya := trainSet(r, 60, 4, quadratic)
	Xb, yb := trainSet(r, 90, 4, quadratic)
	grid := make([][]float64, 200)
	for i := range grid {
		grid[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
	}

	build := map[string]func(seed int64) Model{
		"ET":   func(seed int64) Model { return NewExtraTrees(DefaultForestConfig(), rand.New(rand.NewSource(seed))) },
		"RF":   func(seed int64) Model { return NewRandomForest(DefaultForestConfig(), rand.New(rand.NewSource(seed))) },
		"GBRT": func(seed int64) Model { return NewGBRT(DefaultGBRTConfig(), rand.New(rand.NewSource(seed))) },
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			// Cached model: constructed and fitted under a different seed
			// and training set first, then reseeded.
			cached := mk(1234)
			if err := cached.Fit(Xa, ya); err != nil {
				t.Fatal(err)
			}
			rs, ok := cached.(Reseeder)
			if !ok {
				t.Fatalf("%s does not implement Reseeder", name)
			}
			const seed = 77
			rs.Reseed(seed)
			if err := cached.Fit(Xb, yb); err != nil {
				t.Fatal(err)
			}
			fresh := mk(seed)
			if err := fresh.Fit(Xb, yb); err != nil {
				t.Fatal(err)
			}
			for _, x := range grid {
				cm, cs := cached.PredictWithStd(x)
				fm, fs := fresh.PredictWithStd(x)
				if math.Float64bits(cm) != math.Float64bits(fm) || math.Float64bits(cs) != math.Float64bits(fs) {
					t.Fatalf("%s: reseeded prediction (%v, %v) != fresh (%v, %v)", name, cm, cs, fm, fs)
				}
			}
		})
	}
}
