package surrogate

import (
	"math/rand"
	"testing"
)

func benchData(n, d int) ([][]float64, []float64) {
	r := rand.New(rand.NewSource(1))
	return trainSet(r, n, d, quadratic)
}

func BenchmarkExtraTreesFit(b *testing.B) {
	X, y := benchData(100, 4)
	r := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewExtraTrees(DefaultForestConfig(), r)
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtraTreesPredict(b *testing.B) {
	X, y := benchData(100, 4)
	m := NewExtraTrees(DefaultForestConfig(), rand.New(rand.NewSource(2)))
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	x := []float64{0.3, 0.5, 0.7, 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictWithStd(x)
	}
}

func BenchmarkGPFit(b *testing.B) {
	X, y := benchData(80, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewGP(DefaultGPConfig())
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestFit measures ensemble training with the worker pool
// disabled and enabled; the parallel case should scale near-linearly with
// cores since trees are independent.
func BenchmarkForestFit(b *testing.B) {
	X, y := benchData(200, 4)
	for _, mode := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			if mode.workers > 0 {
				defer setWorkers(mode.workers)()
			}
			r := rand.New(rand.NewSource(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := NewExtraTrees(DefaultForestConfig(), r)
				if err := m.Fit(X, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredictBatch scores an acquisition-pool-sized batch (1000
// points, the paper's NCandidates) through the batch path vs the
// point-by-point fallback.
func BenchmarkPredictBatch(b *testing.B) {
	X, y := benchData(100, 4)
	pool := make([][]float64, 1000)
	r := rand.New(rand.NewSource(9))
	for i := range pool {
		pool[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
	}
	models := []struct {
		name string
		m    Model
	}{
		{"ET", NewExtraTrees(DefaultForestConfig(), rand.New(rand.NewSource(2)))},
		{"GBRT", NewGBRT(DefaultGBRTConfig(), rand.New(rand.NewSource(3)))},
		{"GP", NewGP(DefaultGPConfig())},
	}
	for _, mm := range models {
		if err := mm.m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
		b.Run(mm.name+"/batch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				PredictBatch(mm.m, pool)
			}
		})
		b.Run(mm.name+"/pointwise", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, x := range pool {
					mm.m.PredictWithStd(x)
				}
			}
		})
	}
}

func BenchmarkGBRTFit(b *testing.B) {
	X, y := benchData(100, 4)
	r := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewGBRT(DefaultGBRTConfig(), r)
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}
