package surrogate

import (
	"math/rand"
	"testing"
)

func benchData(n, d int) ([][]float64, []float64) {
	r := rand.New(rand.NewSource(1))
	return trainSet(r, n, d, quadratic)
}

func BenchmarkExtraTreesFit(b *testing.B) {
	X, y := benchData(100, 4)
	r := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewExtraTrees(DefaultForestConfig(), r)
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtraTreesPredict(b *testing.B) {
	X, y := benchData(100, 4)
	m := NewExtraTrees(DefaultForestConfig(), rand.New(rand.NewSource(2)))
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	x := []float64{0.3, 0.5, 0.7, 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictWithStd(x)
	}
}

func BenchmarkGPFit(b *testing.B) {
	X, y := benchData(80, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewGP(DefaultGPConfig())
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGBRTFit(b *testing.B) {
	X, y := benchData(100, 4)
	r := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewGBRT(DefaultGBRTConfig(), r)
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}
