package surrogate

import (
	"math"
	"math/rand"
)

// GBRTConfig controls gradient-boosted regression trees.
type GBRTConfig struct {
	NEstimators    int
	LearningRate   float64
	MaxDepth       int
	MinSamplesLeaf int
	// Subsample < 1 enables stochastic gradient boosting.
	Subsample float64
}

// DefaultGBRTConfig mirrors sklearn's GradientBoostingRegressor defaults.
func DefaultGBRTConfig() GBRTConfig {
	return GBRTConfig{NEstimators: 100, LearningRate: 0.1, MaxDepth: 3, MinSamplesLeaf: 1, Subsample: 1}
}

// GBRT is least-squares gradient boosting (Friedman 2001, the paper's
// "Gradient Boosting Regression Trees" candidate). Predictive std is the
// training-residual standard deviation — a homoscedastic noise estimate,
// since boosted ensembles have no native posterior.
type GBRT struct {
	cfg         GBRTConfig
	rng         *rand.Rand
	src         rand.Source // rng's source once Reseed has taken ownership
	base        float64
	stages      []*Tree
	stagePool   []*Tree // recycled stage trees (nodes, walk, RNG sources)
	residualStd float64
	scratch     treeScratch // one fit scratch shared by all boosting stages
	pred, resid []float64   // per-row fit buffers, reused across Fits
}

// Reseed implements Reseeder: the boosting RNG restarts exactly as a fresh
// NewGBRT(cfg, rand.New(rand.NewSource(seed))) would, while stage trees and
// fit buffers stay pooled.
func (g *GBRT) Reseed(seed int64) {
	if g.src == nil {
		g.src = rand.NewSource(seed)
		g.rng = rand.New(g.src)
	} else {
		g.src.Seed(seed)
	}
}

// NewGBRT returns an untrained GBRT model.
func NewGBRT(cfg GBRTConfig, r *rand.Rand) *GBRT {
	if r == nil {
		//simlint:allow rngseed deterministic fallback for a nil rng; the pipeline always passes a derived stream
		r = rand.New(rand.NewSource(1))
	}
	if cfg.NEstimators <= 0 {
		cfg.NEstimators = 100
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.Subsample <= 0 || cfg.Subsample > 1 {
		cfg.Subsample = 1
	}
	return &GBRT{cfg: cfg, rng: r}
}

// Name implements Model.
func (g *GBRT) Name() string { return "GBRT" }

// stageTree returns the s-th boosting tree, recycling the pool. The seed
// draw and source seeding replay exactly what a fresh
// NewTree(tc, rand.New(rand.NewSource(g.rng.Int63()))) construction does.
func (g *GBRT) stageTree(s int, tc TreeConfig) *Tree {
	seed := g.rng.Int63()
	if s < len(g.stagePool) {
		t := g.stagePool[s]
		if t.src != nil {
			t.src.Seed(seed)
			t.cfg = tc
			return t
		}
	}
	src := rand.NewSource(seed)
	t := NewTree(tc, rand.New(src))
	t.src = src
	if s < len(g.stagePool) {
		g.stagePool[s] = t
	} else {
		g.stagePool = append(g.stagePool, t)
	}
	return t
}

// Fit implements Model.
func (g *GBRT) Fit(X [][]float64, y []float64) error {
	n, _, err := validate(X, y)
	if err != nil {
		return err
	}
	g.base = mean(y)
	g.stages = g.stages[:0]
	if cap(g.pred) < n {
		g.pred = make([]float64, n)
		g.resid = make([]float64, n)
	}
	pred := g.pred[:n]
	for i := range pred {
		pred[i] = g.base
	}
	resid := g.resid[:n]
	for s := 0; s < g.cfg.NEstimators; s++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		tc := TreeConfig{MaxDepth: g.cfg.MaxDepth, MinSamplesLeaf: g.cfg.MinSamplesLeaf}
		tree := g.stageTree(s, tc)
		fitX, fitY := X, resid
		if g.cfg.Subsample < 1 {
			m := int(math.Max(1, g.cfg.Subsample*float64(n)))
			fitX = make([][]float64, m)
			fitY = make([]float64, m)
			for i := 0; i < m; i++ {
				j := g.rng.Intn(n)
				fitX[i], fitY[i] = X[j], resid[j]
			}
		}
		if err := tree.fit(fitX, fitY, &g.scratch); err != nil {
			return err
		}
		g.stages = append(g.stages, tree)
		// The per-row update only reads the freshly fitted tree and writes
		// pred[i], so rows shard cleanly across the worker pool.
		parallelFor(n, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				pred[i] += g.cfg.LearningRate * tree.Predict(X[i])
			}
		})
	}
	var sse float64
	for i := range pred {
		d := y[i] - pred[i]
		sse += d * d
	}
	g.residualStd = math.Sqrt(sse / float64(n))
	return nil
}

// Predict implements Model.
func (g *GBRT) Predict(x []float64) float64 {
	p := g.base
	for _, t := range g.stages {
		p += g.cfg.LearningRate * t.Predict(x)
	}
	return p
}

// PredictWithStd implements Model.
func (g *GBRT) PredictWithStd(x []float64) (float64, float64) {
	return g.Predict(x), g.residualStd
}

// PredictBatch implements BatchPredictor: rows are scored concurrently in
// shards; each row accumulates its stages in the same order as Predict. The
// shard loop runs stage-outer, row-inner so one stage's node array stays
// cache-resident across the whole pool (see Forest.PredictBatch).
func (g *GBRT) PredictBatch(X [][]float64) ([]float64, []float64) {
	means := make([]float64, len(X))
	stds := make([]float64, len(X))
	parallelFor(len(X), 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			means[i] = g.base
			stds[i] = g.residualStd
		}
		for _, t := range g.stages {
			if len(t.walk) == 0 {
				for i := lo; i < hi; i++ {
					means[i] += g.cfg.LearningRate * t.Predict(X[i])
				}
				continue
			}
			w := t.walk
			for i := lo; i < hi; i++ {
				means[i] += g.cfg.LearningRate * walkPredict(w, X[i])
			}
		}
	})
	return means, stds
}
