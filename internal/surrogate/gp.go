package surrogate

import (
	"fmt"
	"math"

	"e2clab/internal/linalg"
)

// Kernel is a stationary covariance function over unit-cube inputs.
type Kernel interface {
	// Eval returns k(a, b) for the given length scale.
	Eval(a, b []float64, lengthScale float64) float64
	Name() string
}

// RBF is the squared-exponential kernel.
type RBF struct{}

// Eval implements Kernel.
func (RBF) Eval(a, b []float64, ls float64) float64 {
	return math.Exp(-0.5 * sqDist(a, b) / (ls * ls))
}

// Name implements Kernel.
func (RBF) Name() string { return "rbf" }

// Matern32 is the Matérn kernel with ν = 3/2.
type Matern32 struct{}

// Eval implements Kernel.
func (Matern32) Eval(a, b []float64, ls float64) float64 {
	d := math.Sqrt(sqDist(a, b)) / ls
	s := math.Sqrt(3) * d
	return (1 + s) * math.Exp(-s)
}

// Name implements Kernel.
func (Matern32) Name() string { return "matern32" }

// Matern52 is the Matérn kernel with ν = 5/2 (skopt's GP default).
type Matern52 struct{}

// Eval implements Kernel.
func (Matern52) Eval(a, b []float64, ls float64) float64 {
	d := math.Sqrt(sqDist(a, b)) / ls
	s := math.Sqrt(5) * d
	return (1 + s + 5*d*d/3) * math.Exp(-s)
}

// Name implements Kernel.
func (Matern52) Name() string { return "matern52" }

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// GPConfig controls the Gaussian-process (Kriging) surrogate.
type GPConfig struct {
	Kernel Kernel
	// Noise is the diagonal jitter / observation noise variance (alpha).
	Noise float64
	// LengthScales is the grid searched when fitting by maximizing the log
	// marginal likelihood; empty uses a default log-spaced grid.
	LengthScales []float64
}

// DefaultGPConfig uses a Matérn 5/2 kernel, matching skopt.
func DefaultGPConfig() GPConfig {
	return GPConfig{Kernel: Matern52{}, Noise: 1e-6}
}

// GP is Gaussian-process regression ("Kriging models for global
// approximation"). Targets are internally standardized; the length scale is
// selected by grid-search maximum marginal likelihood, which is robust and
// derivative-free (stdlib-only constraint).
type GP struct {
	cfg   GPConfig
	X     [][]float64
	alpha []float64 // K⁻¹ (y - μ)
	chol  *linalg.Cholesky
	yMean float64
	yStd  float64
	ls    float64
	ok    bool
}

// NewGP returns an untrained GP.
func NewGP(cfg GPConfig) *GP {
	if cfg.Kernel == nil {
		cfg.Kernel = Matern52{}
	}
	if cfg.Noise <= 0 {
		cfg.Noise = 1e-6
	}
	return &GP{cfg: cfg}
}

// Name implements Model.
func (g *GP) Name() string { return "GP" }

// Fit implements Model.
func (g *GP) Fit(X [][]float64, y []float64) error {
	n, _, err := validate(X, y)
	if err != nil {
		return err
	}
	g.X = X
	g.yMean = mean(y)
	var varSum float64
	for _, v := range y {
		d := v - g.yMean
		varSum += d * d
	}
	g.yStd = math.Sqrt(varSum / float64(n))
	if g.yStd < 1e-12 {
		g.yStd = 1 // constant targets: predict the mean with unit scaling
	}
	z := make([]float64, n)
	for i, v := range y {
		z[i] = (v - g.yMean) / g.yStd
	}

	grid := g.cfg.LengthScales
	if len(grid) == 0 {
		grid = []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2}
	}
	bestLL := math.Inf(-1)
	var bestChol *linalg.Cholesky
	var bestAlpha []float64
	for _, ls := range grid {
		k := g.gram(X, ls)
		ch, err := linalg.NewCholesky(k)
		if err != nil {
			continue
		}
		a := ch.Solve(z)
		// log marginal likelihood = -0.5 zᵀα - 0.5 log|K| - n/2 log 2π
		ll := -0.5*linalg.Dot(z, a) - 0.5*ch.LogDet() - 0.5*float64(n)*math.Log(2*math.Pi)
		if ll > bestLL {
			bestLL, bestChol, bestAlpha, g.ls = ll, ch, a, ls
		}
	}
	if bestChol == nil {
		return fmt.Errorf("surrogate: GP fit failed for all length scales (n=%d)", n)
	}
	g.chol, g.alpha, g.ok = bestChol, bestAlpha, true
	return nil
}

// gram builds K + noise*I.
func (g *GP) gram(X [][]float64, ls float64) *linalg.Matrix {
	n := len(X)
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.cfg.Kernel.Eval(X[i], X[j], ls)
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Set(i, i, k.At(i, i)+g.cfg.Noise)
	}
	return k
}

// Predict implements Model.
func (g *GP) Predict(x []float64) float64 {
	m, _ := g.PredictWithStd(x)
	return m
}

// PredictWithStd implements Model: standard GP posterior mean and std.
func (g *GP) PredictWithStd(x []float64) (float64, float64) {
	if !g.ok {
		return 0, 0
	}
	n := len(g.X)
	ks := make([]float64, n)
	for i := range g.X {
		ks[i] = g.cfg.Kernel.Eval(x, g.X[i], g.ls)
	}
	zMean := linalg.Dot(ks, g.alpha)
	v := g.chol.SolveVecL(ks)
	variance := g.cfg.Kernel.Eval(x, x, g.ls) - linalg.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	return g.yMean + g.yStd*zMean, g.yStd * math.Sqrt(variance)
}

// PredictBatch implements BatchPredictor. Candidates are sharded across the
// worker pool; each shard builds its cross-covariance block and runs one
// multi-RHS forward substitution (Cholesky.SolveLBatch), reusing the factor
// computed at fit time across the whole pool instead of re-solving per
// point. Per candidate the arithmetic order matches PredictWithStd, so the
// outputs are bit-identical.
func (g *GP) PredictBatch(X [][]float64) ([]float64, []float64) {
	m := len(X)
	means := make([]float64, m)
	stds := make([]float64, m)
	if !g.ok || m == 0 {
		return means, stds
	}
	n := len(g.X)
	// Candidates are processed in blocks small enough that the n x block
	// cross-covariance stays cache-resident through the forward
	// substitution; blocks shard across the worker pool.
	const blockCols = 64
	nBlocks := (m + blockCols - 1) / blockCols
	parallelFor(nBlocks, 1, func(bLo, bHi int) {
		for blk := bLo; blk < bHi; blk++ {
			lo := blk * blockCols
			hi := lo + blockCols
			if hi > m {
				hi = m
			}
			cnt := hi - lo
			// ks holds k(x_j, X_train) column-wise: ks[i][j] pairs training
			// row i with candidate lo+j.
			ks := linalg.NewMatrix(n, cnt)
			zm := make([]float64, cnt)
			for i := 0; i < n; i++ {
				ki := ks.Row(i)
				xi := g.X[i]
				ai := g.alpha[i]
				for j := 0; j < cnt; j++ {
					ki[j] = g.cfg.Kernel.Eval(X[lo+j], xi, g.ls)
					// Posterior mean ksᵀ α, accumulated per candidate in
					// training-row order exactly like linalg.Dot.
					zm[j] += ki[j] * ai
				}
			}
			// Posterior variance: k(x,x) - ||L⁻¹ ks||², one forward
			// substitution for the whole block.
			v := g.chol.SolveLBatch(ks)
			dot := make([]float64, cnt)
			for i := 0; i < n; i++ {
				vi := v.Row(i)
				for j := 0; j < cnt; j++ {
					dot[j] += vi[j] * vi[j]
				}
			}
			for j := 0; j < cnt; j++ {
				means[lo+j] = g.yMean + g.yStd*zm[j]
				x := X[lo+j]
				variance := g.cfg.Kernel.Eval(x, x, g.ls) - dot[j]
				if variance < 0 {
					variance = 0
				}
				stds[lo+j] = g.yStd * math.Sqrt(variance)
			}
		}
	})
	return means, stds
}

// LengthScale returns the fitted length scale (for tests/diagnostics).
func (g *GP) LengthScale() float64 { return g.ls }
