// Package workflow implements E2Clab's workflow manager: the ordered
// execution of per-service lifecycle tasks (prepare, launch, finalize) with
// explicit dependencies — e.g. clients must not start before the engine is
// up, and backups run only after every workload finished. The real
// framework drives this from workflow.yaml; here a Workflow is a small,
// deterministic DAG runner.
package workflow

import (
	"fmt"
	"sort"
	"sync"
)

// Status of a task after a run.
type Status int

const (
	// NotRun means the task was never attempted (upstream failure).
	NotRun Status = iota
	// Succeeded means the task ran and returned nil.
	Succeeded
	// Failed means the task returned an error.
	Failed
	// SkippedUpstream means a dependency failed, so the task was skipped.
	SkippedUpstream
)

func (s Status) String() string {
	switch s {
	case NotRun:
		return "not_run"
	case Succeeded:
		return "succeeded"
	case Failed:
		return "failed"
	case SkippedUpstream:
		return "skipped_upstream"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Task is one unit of the experiment workflow.
type Task struct {
	// Name is unique within the workflow ("cloud/engine:launch").
	Name string
	// DependsOn lists task names that must succeed first.
	DependsOn []string
	// Run performs the work.
	Run func() error
}

// Workflow is a DAG of tasks.
type Workflow struct {
	mu    sync.Mutex
	tasks map[string]*Task
	order []string
}

// New returns an empty workflow.
func New() *Workflow { return &Workflow{tasks: make(map[string]*Task)} }

// Add registers a task. Duplicate names are an error.
func (w *Workflow) Add(t Task) error {
	if t.Name == "" {
		return fmt.Errorf("workflow: task needs a name")
	}
	if t.Run == nil {
		return fmt.Errorf("workflow: task %q has no Run function", t.Name)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.tasks[t.Name]; dup {
		return fmt.Errorf("workflow: duplicate task %q", t.Name)
	}
	cp := t
	w.tasks[t.Name] = &cp
	w.order = append(w.order, t.Name)
	return nil
}

// MustAdd is Add that panics; workflows are assembled from literals.
func (w *Workflow) MustAdd(t Task) {
	if err := w.Add(t); err != nil {
		panic(err)
	}
}

// Len returns the number of tasks.
func (w *Workflow) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.tasks)
}

// Validate checks that all dependencies exist and the graph is acyclic.
func (w *Workflow) Validate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.validateLocked()
}

func (w *Workflow) validateLocked() error {
	for name, t := range w.tasks {
		for _, dep := range t.DependsOn {
			if _, ok := w.tasks[dep]; !ok {
				return fmt.Errorf("workflow: task %q depends on unknown task %q", name, dep)
			}
		}
	}
	if _, err := w.topoOrderLocked(); err != nil {
		return err
	}
	return nil
}

// topoOrderLocked returns a deterministic topological order (Kahn's
// algorithm, ties broken by registration order).
func (w *Workflow) topoOrderLocked() ([]string, error) {
	indeg := make(map[string]int, len(w.tasks))
	dependents := make(map[string][]string)
	for name, t := range w.tasks {
		indeg[name] = len(t.DependsOn)
		for _, dep := range t.DependsOn {
			dependents[dep] = append(dependents[dep], name)
		}
	}
	var ready []string
	for _, name := range w.order {
		if indeg[name] == 0 {
			ready = append(ready, name)
		}
	}
	var out []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		deps := dependents[n]
		sort.SliceStable(deps, func(i, j int) bool {
			return indexOf(w.order, deps[i]) < indexOf(w.order, deps[j])
		})
		for _, d := range deps {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if len(out) != len(w.tasks) {
		return nil, fmt.Errorf("workflow: dependency cycle detected (%d of %d tasks orderable)", len(out), len(w.tasks))
	}
	return out, nil
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}

// Report is the outcome of a workflow run.
type Report struct {
	// Order is the execution order used.
	Order []string
	// Statuses maps task name to outcome.
	Statuses map[string]Status
	// Errors maps failed task names to their error.
	Errors map[string]error
}

// Succeeded reports whether every task succeeded.
func (r *Report) Succeeded() bool {
	for _, s := range r.Statuses {
		if s != Succeeded {
			return false
		}
	}
	return true
}

// FirstError returns the error of the earliest failed task, or nil.
func (r *Report) FirstError() error {
	for _, name := range r.Order {
		if err, ok := r.Errors[name]; ok {
			return fmt.Errorf("workflow: task %q: %w", name, err)
		}
	}
	return nil
}

// Run executes the workflow in dependency order. Tasks whose dependencies
// failed (directly or transitively) are skipped, everything else still
// runs — matching E2Clab's behaviour of finalizing what it can.
func (w *Workflow) Run() (*Report, error) {
	w.mu.Lock()
	if err := w.validateLocked(); err != nil {
		w.mu.Unlock()
		return nil, err
	}
	order, _ := w.topoOrderLocked()
	tasks := make(map[string]*Task, len(w.tasks))
	for k, v := range w.tasks {
		tasks[k] = v
	}
	w.mu.Unlock()

	rep := &Report{
		Order:    order,
		Statuses: make(map[string]Status, len(order)),
		Errors:   make(map[string]error),
	}
	for _, name := range order {
		t := tasks[name]
		blocked := false
		for _, dep := range t.DependsOn {
			if rep.Statuses[dep] != Succeeded {
				blocked = true
				break
			}
		}
		if blocked {
			rep.Statuses[name] = SkippedUpstream
			continue
		}
		if err := t.Run(); err != nil {
			rep.Statuses[name] = Failed
			rep.Errors[name] = err
			continue
		}
		rep.Statuses[name] = Succeeded
	}
	return rep, nil
}
