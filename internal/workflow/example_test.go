package workflow_test

import (
	"fmt"

	"e2clab/internal/workflow"
)

// An experiment cycle as a dependency DAG: the clients start only after the
// engine is up, the backup only after the workload finished.
func Example() {
	w := workflow.New()
	step := func(name string, deps ...string) {
		w.MustAdd(workflow.Task{Name: name, DependsOn: deps, Run: func() error {
			fmt.Println("run:", name)
			return nil
		}})
	}
	step("engine:launch")
	step("clients:launch", "engine:launch")
	step("workload", "clients:launch")
	step("backup", "workload")
	rep, err := w.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println("succeeded:", rep.Succeeded())
	// Output:
	// run: engine:launch
	// run: clients:launch
	// run: workload
	// run: backup
	// succeeded: true
}
