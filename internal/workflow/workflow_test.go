package workflow

import (
	"errors"
	"testing"
)

func TestRunInDependencyOrder(t *testing.T) {
	w := New()
	var order []string
	mk := func(name string, deps ...string) Task {
		return Task{Name: name, DependsOn: deps,
			Run: func() error { order = append(order, name); return nil }}
	}
	// The paper's experiment cycle: deploy engine -> start clients ->
	// run workload -> backup.
	w.MustAdd(mk("engine:launch"))
	w.MustAdd(mk("clients:launch", "engine:launch"))
	w.MustAdd(mk("workload:run", "clients:launch"))
	w.MustAdd(mk("backup", "workload:run"))
	rep, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() {
		t.Fatalf("statuses = %v", rep.Statuses)
	}
	want := []string{"engine:launch", "clients:launch", "workload:run", "backup"}
	for i, n := range want {
		if order[i] != n {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestIndependentTasksKeepRegistrationOrder(t *testing.T) {
	w := New()
	var order []string
	for _, n := range []string{"c", "a", "b"} {
		n := n
		w.MustAdd(Task{Name: n, Run: func() error { order = append(order, n); return nil }})
	}
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "c" || order[1] != "a" || order[2] != "b" {
		t.Errorf("order = %v, want registration order", order)
	}
}

func TestFailurePropagation(t *testing.T) {
	w := New()
	boom := errors.New("deployment failed")
	w.MustAdd(Task{Name: "deploy", Run: func() error { return boom }})
	ran := false
	w.MustAdd(Task{Name: "workload", DependsOn: []string{"deploy"},
		Run: func() error { ran = true; return nil }})
	w.MustAdd(Task{Name: "cleanup-indep", Run: func() error { return nil }})
	w.MustAdd(Task{Name: "post", DependsOn: []string{"workload"},
		Run: func() error { ran = true; return nil }})
	rep, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("downstream of failed task ran")
	}
	if rep.Statuses["deploy"] != Failed {
		t.Errorf("deploy status %v", rep.Statuses["deploy"])
	}
	if rep.Statuses["workload"] != SkippedUpstream || rep.Statuses["post"] != SkippedUpstream {
		t.Errorf("downstream statuses %v", rep.Statuses)
	}
	if rep.Statuses["cleanup-indep"] != Succeeded {
		t.Error("independent task should still run")
	}
	if rep.Succeeded() {
		t.Error("Succeeded() = true with a failure")
	}
	if !errors.Is(rep.FirstError(), boom) {
		t.Errorf("FirstError = %v", rep.FirstError())
	}
}

func TestCycleDetected(t *testing.T) {
	w := New()
	w.MustAdd(Task{Name: "a", DependsOn: []string{"b"}, Run: func() error { return nil }})
	w.MustAdd(Task{Name: "b", DependsOn: []string{"a"}, Run: func() error { return nil }})
	if err := w.Validate(); err == nil {
		t.Error("cycle accepted")
	}
	if _, err := w.Run(); err == nil {
		t.Error("Run on cyclic workflow succeeded")
	}
}

func TestUnknownDependency(t *testing.T) {
	w := New()
	w.MustAdd(Task{Name: "a", DependsOn: []string{"ghost"}, Run: func() error { return nil }})
	if err := w.Validate(); err == nil {
		t.Error("unknown dependency accepted")
	}
}

func TestAddValidation(t *testing.T) {
	w := New()
	if err := w.Add(Task{Name: "", Run: func() error { return nil }}); err == nil {
		t.Error("unnamed task accepted")
	}
	if err := w.Add(Task{Name: "x"}); err == nil {
		t.Error("task without Run accepted")
	}
	if err := w.Add(Task{Name: "x", Run: func() error { return nil }}); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(Task{Name: "x", Run: func() error { return nil }}); err == nil {
		t.Error("duplicate accepted")
	}
	if w.Len() != 1 {
		t.Errorf("Len = %d", w.Len())
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		NotRun: "not_run", Succeeded: "succeeded",
		Failed: "failed", SkippedUpstream: "skipped_upstream",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestDiamondDependency(t *testing.T) {
	w := New()
	var order []string
	mk := func(name string, deps ...string) Task {
		return Task{Name: name, DependsOn: deps,
			Run: func() error { order = append(order, name); return nil }}
	}
	w.MustAdd(mk("root"))
	w.MustAdd(mk("left", "root"))
	w.MustAdd(mk("right", "root"))
	w.MustAdd(mk("join", "left", "right"))
	rep, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() || order[0] != "root" || order[3] != "join" {
		t.Errorf("diamond order = %v", order)
	}
}
