package space

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFloatFromUnitBounds(t *testing.T) {
	d := Float("x", -2, 10)
	if got := d.FromUnit(0); got != -2 {
		t.Errorf("FromUnit(0) = %v, want -2", got)
	}
	if got := d.FromUnit(1); got != 10 {
		t.Errorf("FromUnit(1) = %v, want 10", got)
	}
	if got := d.FromUnit(0.5); got != 4 {
		t.Errorf("FromUnit(0.5) = %v, want 4", got)
	}
}

func TestFloatFromUnitClampsOutOfRange(t *testing.T) {
	d := Float("x", 0, 1)
	if got := d.FromUnit(-0.5); got != 0 {
		t.Errorf("FromUnit(-0.5) = %v, want 0", got)
	}
	if got := d.FromUnit(1.5); got != 1 {
		t.Errorf("FromUnit(1.5) = %v, want 1", got)
	}
}

func TestLogFloatFromUnit(t *testing.T) {
	d := LogFloat("lr", 1e-4, 1e-1)
	if got := d.FromUnit(0); math.Abs(got-1e-4) > 1e-12 {
		t.Errorf("FromUnit(0) = %v, want 1e-4", got)
	}
	if got := d.FromUnit(1); math.Abs(got-1e-1) > 1e-12 {
		t.Errorf("FromUnit(1) = %v, want 1e-1", got)
	}
	// Midpoint in log space is the geometric mean.
	want := math.Sqrt(1e-4 * 1e-1)
	if got := d.FromUnit(0.5); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("FromUnit(0.5) = %v, want %v", got, want)
	}
}

func TestIntFromUnitCoversAllValuesUniformly(t *testing.T) {
	d := Int("extract", 3, 9)
	counts := map[int]int{}
	n := 7000
	for i := 0; i < n; i++ {
		u := (float64(i) + 0.5) / float64(n)
		counts[int(d.FromUnit(u))]++
	}
	for v := 3; v <= 9; v++ {
		if counts[v] != n/7 {
			t.Errorf("value %d drawn %d times, want %d", v, counts[v], n/7)
		}
	}
	if len(counts) != 7 {
		t.Errorf("got %d distinct values, want 7: %v", len(counts), counts)
	}
}

func TestIntFromUnitEdge(t *testing.T) {
	d := Int("x", 0, 4)
	if got := d.FromUnit(1); got != 4 {
		t.Errorf("FromUnit(1) = %v, want 4", got)
	}
	if got := d.FromUnit(0); got != 0 {
		t.Errorf("FromUnit(0) = %v, want 0", got)
	}
}

func TestCategoricalFromUnit(t *testing.T) {
	d := Categorical("est", "ET", "RF", "GBRT")
	if got := d.FromUnit(0.1); got != 0 {
		t.Errorf("FromUnit(0.1) = %v, want 0", got)
	}
	if got := d.FromUnit(0.5); got != 1 {
		t.Errorf("FromUnit(0.5) = %v, want 1", got)
	}
	if got := d.FromUnit(1.0); got != 2 {
		t.Errorf("FromUnit(1.0) = %v, want 2", got)
	}
}

func TestRoundTripPropertyFloat(t *testing.T) {
	d := Float("x", 5, 25)
	f := func(raw float64) bool {
		u := math.Mod(math.Abs(raw), 1)
		v := d.FromUnit(u)
		u2 := d.ToUnit(v)
		return math.Abs(u-u2) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundTripPropertyInt(t *testing.T) {
	d := Int("x", -3, 17)
	f := func(raw float64) bool {
		u := math.Mod(math.Abs(raw), 1)
		v := d.FromUnit(u)
		// ToUnit then FromUnit must reproduce the same integer.
		return d.FromUnit(d.ToUnit(v)) == v && d.Contains(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClip(t *testing.T) {
	d := Int("x", 3, 9)
	cases := []struct{ in, want float64 }{
		{2.2, 3}, {3, 3}, {6.4, 6}, {6.6, 7}, {9.7, 9}, {-100, 3},
	}
	for _, c := range cases {
		if got := d.Clip(c.in); got != c.want {
			t.Errorf("Clip(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	d := Int("x", 3, 9)
	if d.Contains(6.5) {
		t.Error("Contains(6.5) = true for int dimension")
	}
	if !d.Contains(9) {
		t.Error("Contains(9) = false")
	}
	if d.Contains(10) {
		t.Error("Contains(10) = true")
	}
}

func TestSpaceValidation(t *testing.T) {
	if _, err := TryNew(); err == nil {
		t.Error("empty space accepted")
	}
	if _, err := TryNew(Float("x", 1, 1)); err == nil {
		t.Error("degenerate bounds accepted")
	}
	if _, err := TryNew(Float("x", 0, 1), Int("x", 0, 3)); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := TryNew(Dimension{Name: "x", Kind: IntKind, Low: 0.5, High: 3}); err == nil {
		t.Error("non-integer int bounds accepted")
	}
	if _, err := TryNew(Categorical("c", "only")); err == nil {
		t.Error("single-category dimension accepted")
	}
	if _, err := TryNew(Dimension{Name: "x", Kind: FloatKind, Low: 0, High: 1, Log: true}); err == nil {
		t.Error("log dimension with low=0 accepted")
	}
}

func TestSpaceRoundTrip(t *testing.T) {
	s := New(Int("http", 20, 60), Float("w", 0, 1), Categorical("alg", "ga", "de", "pso"))
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		u := []float64{r.Float64(), r.Float64(), r.Float64()}
		x := s.FromUnit(u)
		if !s.Contains(x) {
			t.Fatalf("FromUnit produced out-of-space point %v", x)
		}
		x2 := s.FromUnit(s.ToUnit(x))
		// Int and categorical must round-trip exactly; float within eps.
		if x2[0] != x[0] || x2[2] != x[2] || math.Abs(x2[1]-x[1]) > 1e-12 {
			t.Fatalf("round trip %v -> %v", x, x2)
		}
	}
}

func TestSpaceIndexOfAndFormat(t *testing.T) {
	p := PlantNetProblem()
	s := p.Space
	if s.IndexOf("extract") != 3 {
		t.Errorf("IndexOf(extract) = %d, want 3", s.IndexOf("extract"))
	}
	if s.IndexOf("nope") != -1 {
		t.Errorf("IndexOf(nope) = %d, want -1", s.IndexOf("nope"))
	}
	got := s.Format([]float64{40, 40, 40, 7})
	want := "http=40 download=40 simsearch=40 extract=7"
	if got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
}

// TestEquation2Problem checks the paper's Equation 2: the Pl@ntNet search
// space bounds are ±50% of the production baseline of Table II.
func TestEquation2Problem(t *testing.T) {
	p := PlantNetProblem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	baseline := map[string]float64{"http": 40, "download": 40, "simsearch": 40}
	for name, base := range baseline {
		d := p.Space.Dim(p.Space.IndexOf(name))
		if d.Low != base*0.5 || d.High != base*1.5 {
			t.Errorf("%s bounds [%v,%v], want ±50%% of %v", name, d.Low, d.High, base)
		}
	}
	ext := p.Space.Dim(p.Space.IndexOf("extract"))
	if ext.Low != 3 || ext.High != 9 {
		t.Errorf("extract bounds [%v,%v], want [3,9]", ext.Low, ext.High)
	}
	if p.Objectives[0].Mode != Min || p.Objectives[0].Name != "user_resp_time" {
		t.Errorf("objective %+v, want min user_resp_time", p.Objectives[0])
	}
	if !p.Feasible([]float64{40, 40, 40, 7}) {
		t.Error("baseline configuration must be feasible")
	}
	if p.Feasible([]float64{61, 40, 40, 7}) {
		t.Error("http=61 should violate bounds")
	}
}

func TestProblemConstraints(t *testing.T) {
	p := PlantNetProblem()
	// Paper: "the maximum response time must be less than 3 seconds" style
	// metric constraint, expressed here on a variable for testability.
	p.AddConstraint("http_le_55", func(x []float64) float64 { return x[0] - 55 })
	if p.Feasible([]float64{56, 40, 40, 7}) {
		t.Error("constraint http<=55 not enforced")
	}
	if !p.Feasible([]float64{55, 40, 40, 7}) {
		t.Error("boundary point should be feasible")
	}
	if v := p.Violation([]float64{58, 40, 40, 7}); math.Abs(v-3) > 1e-12 {
		t.Errorf("Violation = %v, want 3", v)
	}
	p.AddEquality("sum", func(x []float64) float64 { return x[0] + x[1] - 80 }, 0.5)
	if !p.Feasible([]float64{40, 40, 40, 7}) {
		t.Error("equality at zero residual should pass")
	}
	if p.Feasible([]float64{42, 40, 40, 7}) {
		t.Error("equality residual 2 > tol 0.5 should fail")
	}
}

func TestViolationBounds(t *testing.T) {
	p := PlantNetProblem()
	v := p.Violation([]float64{10, 70, 40, 7})
	if math.Abs(v-20) > 1e-12 { // 10 below low(20) + 10 above high(60)
		t.Errorf("Violation = %v, want 20", v)
	}
	if p.Violation([]float64{40, 40, 40, 7}) != 0 {
		t.Error("feasible point has nonzero violation")
	}
}

func TestMultiObjective(t *testing.T) {
	s := New(Float("x", 0, 1))
	p := &Problem{Name: "fig4", Space: s, Objectives: []Objective{
		{Name: "comm_cost", Mode: Min}, {Name: "latency", Mode: Min},
	}}
	if !p.MultiObjective() {
		t.Error("MultiObjective() = false for 2 objectives")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if FloatKind.String() != "float" || IntKind.String() != "int" || CategoricalKind.String() != "categorical" {
		t.Error("Kind.String mismatch")
	}
	if Min.String() != "min" || Max.String() != "max" {
		t.Error("Mode.String mismatch")
	}
}
