package space_test

import (
	"fmt"

	"e2clab/internal/space"
)

// Defining the paper's Equation 2 problem and inspecting it.
func ExamplePlantNetProblem() {
	p := space.PlantNetProblem()
	fmt.Println(p.Name, p.Objectives[0].Mode, p.Objectives[0].Name)
	fmt.Println(p.Space.Format([]float64{40, 40, 40, 7}))
	// Output:
	// plantnet_engine min user_resp_time
	// http=40 download=40 simsearch=40 extract=7
}

// Building a custom search space with mixed dimension types.
func ExampleNew() {
	s := space.New(
		space.Int("workers", 1, 64),
		space.LogFloat("learning_rate", 1e-4, 1e-1),
		space.Categorical("estimator", "ET", "RF", "GBRT"),
	)
	x := s.FromUnit([]float64{0.5, 0.5, 0.9})
	fmt.Println(s.Format(x))
	fmt.Println(s.Contains(x))
	// Output:
	// workers=33 learning_rate=0.003162 estimator=GBRT
	// true
}
