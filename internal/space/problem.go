package space

import (
	"fmt"
	"math"
)

// Mode states whether an objective is minimized or maximized.
type Mode int

const (
	// Min minimizes the objective (e.g. user response time).
	Min Mode = iota
	// Max maximizes the objective (e.g. Fog gateway throughput).
	Max
)

func (m Mode) String() string {
	if m == Max {
		return "max"
	}
	return "min"
}

// Objective is one optimized metric f_m(x) of Equation 1.
type Objective struct {
	Name string
	Mode Mode
}

// Constraint is an inequality constraint g_j(x) <= 0 of Equation 1. Fn
// returns the constraint value for a point in value space.
type Constraint struct {
	Name string
	Fn   func(x []float64) float64
}

// Equality is an equality constraint h_k(x) = 0 of Equation 1, satisfied
// when |Fn(x)| <= Tol.
type Equality struct {
	Name string
	Fn   func(x []float64) float64
	Tol  float64
}

// Problem is a full optimization problem definition (Phase I of the
// methodology): variables with bounds, objective(s), and constraints.
type Problem struct {
	Name        string
	Space       *Space
	Objectives  []Objective
	Constraints []Constraint
	Equalities  []Equality
}

// NewProblem builds a single-objective problem.
func NewProblem(name string, s *Space, obj Objective) *Problem {
	return &Problem{Name: name, Space: s, Objectives: []Objective{obj}}
}

// AddConstraint appends an inequality constraint and returns the problem for
// chaining.
func (p *Problem) AddConstraint(name string, fn func(x []float64) float64) *Problem {
	p.Constraints = append(p.Constraints, Constraint{Name: name, Fn: fn})
	return p
}

// AddEquality appends an equality constraint with tolerance tol.
func (p *Problem) AddEquality(name string, fn func(x []float64) float64, tol float64) *Problem {
	p.Equalities = append(p.Equalities, Equality{Name: name, Fn: fn, Tol: tol})
	return p
}

// Feasible reports whether x satisfies every constraint (bounds included).
func (p *Problem) Feasible(x []float64) bool {
	if !p.Space.Contains(x) {
		return false
	}
	for _, c := range p.Constraints {
		if c.Fn(x) > 0 {
			return false
		}
	}
	for _, e := range p.Equalities {
		tol := e.Tol
		if tol == 0 {
			tol = 1e-9
		}
		if math.Abs(e.Fn(x)) > tol {
			return false
		}
	}
	return true
}

// Violation returns the total constraint violation of x: the sum of positive
// inequality values and absolute equality residuals beyond tolerance. Zero
// means feasible. Metaheuristics use it for penalty-based handling.
func (p *Problem) Violation(x []float64) float64 {
	var v float64
	for i, d := range p.Space.dims {
		if d.Kind == CategoricalKind {
			continue
		}
		if x[i] < d.Low {
			v += d.Low - x[i]
		}
		if x[i] > d.High {
			v += x[i] - d.High
		}
	}
	for _, c := range p.Constraints {
		if g := c.Fn(x); g > 0 {
			v += g
		}
	}
	for _, e := range p.Equalities {
		tol := e.Tol
		if tol == 0 {
			tol = 1e-9
		}
		if r := math.Abs(e.Fn(x)); r > tol {
			v += r - tol
		}
	}
	return v
}

// MultiObjective reports whether the problem optimizes more than one metric
// (the right-hand example of Figure 4).
func (p *Problem) MultiObjective() bool { return len(p.Objectives) > 1 }

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	if p.Space == nil || p.Space.Len() == 0 {
		return fmt.Errorf("space: problem %q has no search space", p.Name)
	}
	if len(p.Objectives) == 0 {
		return fmt.Errorf("space: problem %q has no objective", p.Name)
	}
	for _, o := range p.Objectives {
		if o.Name == "" {
			return fmt.Errorf("space: problem %q has unnamed objective", p.Name)
		}
	}
	return nil
}

// PlantNetProblem is the concrete optimization problem of Equation 2 in the
// paper: find (http, download, simsearch, extract) minimizing user response
// time, with pool sizes bounded to ±50% of the production baseline.
func PlantNetProblem() *Problem {
	s := New(
		Int("http", 20, 60),
		Int("download", 20, 60),
		Int("simsearch", 20, 60),
		Int("extract", 3, 9),
	)
	return NewProblem("plantnet_engine", s, Objective{Name: "user_resp_time", Mode: Min})
}
