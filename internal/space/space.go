// Package space defines optimization search spaces: the optimization
// variables x of Equation 1 in the paper, their bounds, and the constraints a
// candidate configuration must satisfy.
//
// A Space is an ordered list of dimensions (integer, float, or categorical).
// Points are represented as []float64 vectors in "value space"; categorical
// dimensions store the category index. Every dimension maps to and from the
// unit interval so that samplers (package sample) and surrogate models
// (package surrogate) can work in the unit hypercube.
package space

import (
	"fmt"
	"math"
	"strings"
)

// Kind discriminates dimension types.
type Kind int

const (
	// FloatKind is a continuous dimension on [Low, High].
	FloatKind Kind = iota
	// IntKind is an integer dimension on [Low, High] inclusive.
	IntKind
	// CategoricalKind is an unordered finite set of choices.
	CategoricalKind
)

func (k Kind) String() string {
	switch k {
	case FloatKind:
		return "float"
	case IntKind:
		return "int"
	case CategoricalKind:
		return "categorical"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Dimension is a single optimization variable with bounds (the
// "bounds on variables" row of Equation 1).
type Dimension struct {
	Name       string
	Kind       Kind
	Low, High  float64  // numeric bounds; for IntKind these are integers
	Categories []string // CategoricalKind only
	Log        bool     // sample on a log10 scale (numeric kinds only)
}

// Float returns a continuous dimension on [low, high].
func Float(name string, low, high float64) Dimension {
	return Dimension{Name: name, Kind: FloatKind, Low: low, High: high}
}

// LogFloat returns a continuous dimension sampled uniformly in log10 space.
func LogFloat(name string, low, high float64) Dimension {
	return Dimension{Name: name, Kind: FloatKind, Low: low, High: high, Log: true}
}

// Int returns an integer dimension on [low, high] inclusive. This is the
// tune.randint(low, high) of Listing 1, except that — following the paper's
// stated bounds "20 <= x <= 60" — both endpoints are inclusive.
func Int(name string, low, high int) Dimension {
	return Dimension{Name: name, Kind: IntKind, Low: float64(low), High: float64(high)}
}

// Categorical returns a categorical dimension over the given choices.
func Categorical(name string, choices ...string) Dimension {
	return Dimension{Name: name, Kind: CategoricalKind, Categories: choices, High: float64(len(choices) - 1)}
}

// Validate reports whether the dimension is well formed.
func (d Dimension) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("space: dimension has empty name")
	}
	switch d.Kind {
	case FloatKind, IntKind:
		if !(d.Low < d.High) {
			return fmt.Errorf("space: dimension %q: low %v must be < high %v", d.Name, d.Low, d.High)
		}
		if d.Kind == IntKind && (d.Low != math.Trunc(d.Low) || d.High != math.Trunc(d.High)) {
			return fmt.Errorf("space: int dimension %q has non-integer bounds [%v, %v]", d.Name, d.Low, d.High)
		}
		if d.Log && d.Low <= 0 {
			return fmt.Errorf("space: log dimension %q requires low > 0, got %v", d.Name, d.Low)
		}
	case CategoricalKind:
		if len(d.Categories) < 2 {
			return fmt.Errorf("space: categorical dimension %q needs >= 2 categories", d.Name)
		}
	default:
		return fmt.Errorf("space: dimension %q has unknown kind %d", d.Name, int(d.Kind))
	}
	return nil
}

// FromUnit maps u in [0,1] to a value of this dimension.
func (d Dimension) FromUnit(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	switch d.Kind {
	case FloatKind:
		if d.Log {
			lo, hi := math.Log10(d.Low), math.Log10(d.High)
			return math.Pow(10, lo+u*(hi-lo))
		}
		return d.Low + u*(d.High-d.Low)
	case IntKind:
		// Partition [0,1] into equal cells, one per integer, so every
		// integer value has identical probability mass.
		n := d.High - d.Low + 1
		v := d.Low + math.Floor(u*n)
		if v > d.High {
			v = d.High
		}
		return v
	case CategoricalKind:
		n := float64(len(d.Categories))
		v := math.Floor(u * n)
		if v > n-1 {
			v = n - 1
		}
		return v
	}
	return math.NaN()
}

// ToUnit maps a dimension value back to [0,1]. It is the pseudo-inverse of
// FromUnit: for integer and categorical kinds it returns the cell midpoint.
func (d Dimension) ToUnit(v float64) float64 {
	switch d.Kind {
	case FloatKind:
		if d.Log {
			lo, hi := math.Log10(d.Low), math.Log10(d.High)
			return clamp01((math.Log10(v) - lo) / (hi - lo))
		}
		return clamp01((v - d.Low) / (d.High - d.Low))
	case IntKind:
		n := d.High - d.Low + 1
		return clamp01((v - d.Low + 0.5) / n)
	case CategoricalKind:
		n := float64(len(d.Categories))
		return clamp01((v + 0.5) / n)
	}
	return math.NaN()
}

// Clip snaps a raw value onto the dimension's domain (rounding integers,
// clamping to bounds).
func (d Dimension) Clip(v float64) float64 {
	switch d.Kind {
	case IntKind:
		v = math.Round(v)
	case CategoricalKind:
		v = math.Round(v)
		if v < 0 {
			v = 0
		}
		if v > float64(len(d.Categories)-1) {
			v = float64(len(d.Categories) - 1)
		}
		return v
	}
	if v < d.Low {
		v = d.Low
	}
	if v > d.High {
		v = d.High
	}
	return v
}

// Contains reports whether v is a valid value of the dimension.
func (d Dimension) Contains(v float64) bool {
	switch d.Kind {
	case FloatKind:
		return v >= d.Low && v <= d.High
	case IntKind:
		return v >= d.Low && v <= d.High && v == math.Round(v)
	case CategoricalKind:
		return v >= 0 && v < float64(len(d.Categories)) && v == math.Round(v)
	}
	return false
}

func clamp01(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Space is an ordered collection of dimensions: the search space of an
// optimization problem.
type Space struct {
	dims  []Dimension
	index map[string]int
}

// New builds a Space from dimensions. It panics on invalid or duplicate
// dimensions; spaces are built from literals at program start, so an error
// here is a programming bug.
func New(dims ...Dimension) *Space {
	s, err := TryNew(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// TryNew is New returning an error instead of panicking.
func TryNew(dims ...Dimension) (*Space, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("space: empty space")
	}
	idx := make(map[string]int, len(dims))
	for i, d := range dims {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if _, dup := idx[d.Name]; dup {
			return nil, fmt.Errorf("space: duplicate dimension name %q", d.Name)
		}
		idx[d.Name] = i
	}
	return &Space{dims: append([]Dimension(nil), dims...), index: idx}, nil
}

// Len returns the number of dimensions.
func (s *Space) Len() int { return len(s.dims) }

// Dim returns the i-th dimension.
func (s *Space) Dim(i int) Dimension { return s.dims[i] }

// Dims returns a copy of the dimension list.
func (s *Space) Dims() []Dimension { return append([]Dimension(nil), s.dims...) }

// IndexOf returns the position of the named dimension, or -1.
func (s *Space) IndexOf(name string) int {
	i, ok := s.index[name]
	if !ok {
		return -1
	}
	return i
}

// FromUnit maps a unit-cube point to value space.
func (s *Space) FromUnit(u []float64) []float64 {
	x := make([]float64, len(s.dims))
	for i, d := range s.dims {
		x[i] = d.FromUnit(u[i])
	}
	return x
}

// ToUnit maps a value-space point to the unit cube.
func (s *Space) ToUnit(x []float64) []float64 {
	u := make([]float64, len(s.dims))
	for i, d := range s.dims {
		u[i] = d.ToUnit(x[i])
	}
	return u
}

// Clip snaps x onto the space in place and returns it.
func (s *Space) Clip(x []float64) []float64 {
	for i, d := range s.dims {
		x[i] = d.Clip(x[i])
	}
	return x
}

// Contains reports whether x is a valid point of the space.
func (s *Space) Contains(x []float64) bool {
	if len(x) != len(s.dims) {
		return false
	}
	for i, d := range s.dims {
		if !d.Contains(x[i]) {
			return false
		}
	}
	return true
}

// Map renders a point as a name->value map (categoricals keep their index).
func (s *Space) Map(x []float64) map[string]float64 {
	m := make(map[string]float64, len(s.dims))
	for i, d := range s.dims {
		m[d.Name] = x[i]
	}
	return m
}

// Format renders a point compactly, e.g. "http=54 download=54 extract=7".
func (s *Space) Format(x []float64) string {
	var b strings.Builder
	for i, d := range s.dims {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch d.Kind {
		case IntKind:
			fmt.Fprintf(&b, "%s=%d", d.Name, int(x[i]))
		case CategoricalKind:
			fmt.Fprintf(&b, "%s=%s", d.Name, d.Categories[int(x[i])])
		default:
			fmt.Fprintf(&b, "%s=%.4g", d.Name, x[i])
		}
	}
	return b.String()
}
