// Package config loads E2Clab-style configuration files. The real
// framework is driven by layers_services.yaml, network.yaml and — with the
// paper's extension — an optimizer configuration ("the whole optimization
// cycle is defined through a configuration file... designed to be easy to
// use and to understand, and it can be easily adapted to different
// optimization problems"). This reproduction uses JSON (stdlib-only
// constraint) with the same structure.
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"e2clab/internal/core"
	"e2clab/internal/netem"
	"e2clab/internal/space"
	"e2clab/internal/testbed"
)

// Scenario mirrors layers_services.yaml + network.yaml: where services run
// and how layers communicate.
type Scenario struct {
	Name string `json:"name"`
	// NetworkModel records how the network rules are evaluated when the
	// scenario is simulated: "analytical" (closed-form transfer times; the
	// default when empty), "simulated" (rules lowered to discrete-event
	// links with gateway queueing), or "packet" (simulated links with
	// packetized TCP-like transport; see internal/scenario).
	NetworkModel string        `json:"network_model,omitempty"`
	Layers       []LayerConfig `json:"layers"`
	Network      []NetworkRule `json:"network,omitempty"`
}

// LayerConfig is one continuum layer (cloud / fog / edge).
type LayerConfig struct {
	Name     string          `json:"name"`
	Services []ServiceConfig `json:"services"`
}

// ServiceConfig places one service on a cluster.
type ServiceConfig struct {
	Name     string            `json:"name"`
	Quantity int               `json:"quantity,omitempty"`
	Cluster  string            `json:"cluster"`
	Env      map[string]string `json:"env,omitempty"`
}

// NetworkRule is one emulated constraint between layers.
type NetworkRule struct {
	Src       string  `json:"src"`
	Dst       string  `json:"dst"`
	DelayMS   float64 `json:"delay_ms,omitempty"`
	RateGbps  float64 `json:"rate_gbps,omitempty"`
	LossPct   float64 `json:"loss_pct,omitempty"`
	Symmetric bool    `json:"symmetric,omitempty"`
}

// LoadScenario reads and validates a scenario file.
func LoadScenario(path string) (*Scenario, error) {
	var s Scenario
	if err := loadJSON(path, &s); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate performs structural checks that do not need a testbed.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("config: scenario needs a name")
	}
	if len(s.Layers) == 0 {
		return fmt.Errorf("config: scenario %q has no layers", s.Name)
	}
	switch s.NetworkModel {
	case "", "analytical", "simulated", "packet":
	default:
		return fmt.Errorf("config: scenario %q has unknown network_model %q", s.Name, s.NetworkModel)
	}
	for _, l := range s.Layers {
		if l.Name == "" {
			return fmt.Errorf("config: scenario %q has an unnamed layer", s.Name)
		}
		if len(l.Services) == 0 {
			return fmt.Errorf("config: layer %q has no services", l.Name)
		}
		for _, svc := range l.Services {
			if svc.Name == "" || svc.Cluster == "" {
				return fmt.Errorf("config: layer %q has a service missing name or cluster", l.Name)
			}
			if svc.Quantity < 0 {
				return fmt.Errorf("config: service %q has negative quantity", svc.Name)
			}
		}
	}
	return nil
}

// Build assembles a core.Experiment on the given testbed.
func (s *Scenario) Build(tb *testbed.Testbed) (*core.Experiment, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	e := &core.Experiment{Name: s.Name, Testbed: tb}
	for _, l := range s.Layers {
		layer := testbed.Layer{Name: l.Name}
		for _, svc := range l.Services {
			layer.Services = append(layer.Services, testbed.Service{
				Name: svc.Name, Quantity: svc.Quantity, Cluster: svc.Cluster, Env: svc.Env,
			})
		}
		e.Layers = append(e.Layers, layer)
	}
	if len(s.Network) > 0 {
		rules := make([]netem.Rule, len(s.Network))
		for i, r := range s.Network {
			rules[i] = netem.Rule{Src: r.Src, Dst: r.Dst, DelayMS: r.DelayMS,
				RateGbps: r.RateGbps, LossPct: r.LossPct, Symmetric: r.Symmetric}
		}
		e.Network = netem.New(rules...)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// Optimizer mirrors the paper's optimizer_conf: the optimization problem
// (Phase I), the methods (Phase II), and the execution protocol.
type Optimizer struct {
	Problem       ProblemConfig `json:"problem"`
	Search        SearchConfig  `json:"search"`
	NumSamples    int           `json:"num_samples"`
	MaxConcurrent int           `json:"max_concurrent,omitempty"`
	UseASHA       bool          `json:"use_asha,omitempty"`
	Repeat        int           `json:"repeat,omitempty"`
	// RepeatParallelism bounds the worker pool each evaluation uses for its
	// repeated experiments (0 = GOMAXPROCS, 1 = sequential); tune it down
	// when max_concurrent already saturates the machine.
	RepeatParallelism int     `json:"repeat_parallelism,omitempty"`
	Duration          float64 `json:"duration,omitempty"`
	Seed              int64   `json:"seed,omitempty"`
	ArchiveDir        string  `json:"archive_dir,omitempty"`
}

// ProblemConfig defines optimization variables, objective, and mode.
type ProblemConfig struct {
	Name      string           `json:"name"`
	Objective string           `json:"objective"`
	Mode      string           `json:"mode"` // "min" or "max"
	Variables []VariableConfig `json:"variables"`
}

// VariableConfig is one optimization variable with bounds.
type VariableConfig struct {
	Name       string   `json:"name"`
	Type       string   `json:"type"` // "int", "float", "categorical"
	Low        float64  `json:"low,omitempty"`
	High       float64  `json:"high,omitempty"`
	Log        bool     `json:"log,omitempty"`
	Categories []string `json:"categories,omitempty"`
}

// SearchConfig selects the search algorithm (Listing 1 parameters).
type SearchConfig struct {
	Algorithm             string `json:"algorithm,omitempty"` // skopt | random | ga | de | sa | pso
	BaseEstimator         string `json:"base_estimator,omitempty"`
	NInitialPoints        int    `json:"n_initial_points,omitempty"`
	InitialPointGenerator string `json:"initial_point_generator,omitempty"`
	AcqFunc               string `json:"acq_func,omitempty"`
}

// LoadOptimizer reads an optimizer configuration file.
func LoadOptimizer(path string) (*Optimizer, error) {
	var o Optimizer
	if err := loadJSON(path, &o); err != nil {
		return nil, err
	}
	return &o, nil
}

// BuildSpec converts the configuration into a core.Spec.
func (o *Optimizer) BuildSpec() (core.Spec, error) {
	problem, err := o.Problem.Build()
	if err != nil {
		return core.Spec{}, err
	}
	return core.Spec{
		Problem: problem,
		Search: core.SearchSpec{
			Algorithm:             o.Search.Algorithm,
			BaseEstimator:         o.Search.BaseEstimator,
			NInitialPoints:        o.Search.NInitialPoints,
			InitialPointGenerator: o.Search.InitialPointGenerator,
			AcqFunc:               o.Search.AcqFunc,
		},
		NumSamples:        o.NumSamples,
		MaxConcurrent:     o.MaxConcurrent,
		UseASHA:           o.UseASHA,
		Repeat:            o.Repeat,
		RepeatParallelism: o.RepeatParallelism,
		Duration:          o.Duration,
		Seed:              o.Seed,
		ArchiveDir:        o.ArchiveDir,
	}, nil
}

// Build converts the problem configuration into a space.Problem.
func (p *ProblemConfig) Build() (*space.Problem, error) {
	if len(p.Variables) == 0 {
		return nil, fmt.Errorf("config: problem %q has no variables", p.Name)
	}
	dims := make([]space.Dimension, len(p.Variables))
	for i, v := range p.Variables {
		switch v.Type {
		case "int":
			dims[i] = space.Int(v.Name, int(v.Low), int(v.High))
		case "float":
			if v.Log {
				dims[i] = space.LogFloat(v.Name, v.Low, v.High)
			} else {
				dims[i] = space.Float(v.Name, v.Low, v.High)
			}
		case "categorical":
			dims[i] = space.Categorical(v.Name, v.Categories...)
		default:
			return nil, fmt.Errorf("config: variable %q has unknown type %q", v.Name, v.Type)
		}
	}
	s, err := space.TryNew(dims...)
	if err != nil {
		return nil, err
	}
	mode := space.Min
	switch p.Mode {
	case "", "min":
	case "max":
		mode = space.Max
	default:
		return nil, fmt.Errorf("config: problem %q has unknown mode %q", p.Name, p.Mode)
	}
	obj := p.Objective
	if obj == "" {
		return nil, fmt.Errorf("config: problem %q has no objective", p.Name)
	}
	return space.NewProblem(p.Name, s, space.Objective{Name: obj, Mode: mode}), nil
}

func loadJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("config: %s: %w", path, err)
	}
	return nil
}
