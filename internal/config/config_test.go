package config

import (
	"os"
	"path/filepath"
	"testing"

	"e2clab/internal/space"
	"e2clab/internal/testbed"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const paperScenario = `{
  "name": "plantnet",
  "layers": [
    {"name": "cloud", "services": [
      {"name": "plantnet_engine", "quantity": 2, "cluster": "chifflot",
       "env": {"http": "40", "download": "40", "extract": "7", "simsearch": "40"}}
    ]},
    {"name": "edge", "services": [
      {"name": "client_chiclet", "quantity": 8, "cluster": "chiclet"},
      {"name": "client_chetemi", "quantity": 15, "cluster": "chetemi"},
      {"name": "client_chifflet", "quantity": 8, "cluster": "chifflet"},
      {"name": "client_gros", "quantity": 9, "cluster": "gros"}
    ]}
  ],
  "network": [
    {"src": "edge", "dst": "cloud", "delay_ms": 2, "rate_gbps": 10, "symmetric": true}
  ]
}`

func TestLoadScenarioAndBuild(t *testing.T) {
	path := writeFile(t, "scenario.json", paperScenario)
	s, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "plantnet" || len(s.Layers) != 2 {
		t.Fatalf("scenario = %+v", s)
	}
	e, err := s.Build(testbed.Grid5000())
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	defer d.ReleaseAll()
	if d.NodeCount() != 42 {
		t.Errorf("deployed %d nodes, want 42", d.NodeCount())
	}
	if e.Network == nil || e.Network.RTTSeconds("edge", "cloud") != 0.004 {
		t.Error("network rules not built")
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []string{
		`{"layers": [{"name": "a", "services": [{"name": "s", "cluster": "c"}]}]}`, // no name
		`{"name": "x", "layers": []}`,
		`{"name": "x", "layers": [{"name": "", "services": [{"name": "s", "cluster": "c"}]}]}`,
		`{"name": "x", "layers": [{"name": "a", "services": []}]}`,
		`{"name": "x", "layers": [{"name": "a", "services": [{"name": "", "cluster": "c"}]}]}`,
		`{"name": "x", "layers": [{"name": "a", "services": [{"name": "s", "cluster": "c", "quantity": -1}]}]}`,
	}
	for i, content := range bad {
		path := writeFile(t, "bad.json", content)
		if _, err := LoadScenario(path); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLoadScenarioUnknownFieldRejected(t *testing.T) {
	path := writeFile(t, "s.json", `{"name": "x", "layres": []}`)
	if _, err := LoadScenario(path); err == nil {
		t.Error("typo'd field accepted (DisallowUnknownFields should catch it)")
	}
}

func TestLoadScenarioMissingFile(t *testing.T) {
	if _, err := LoadScenario("/nonexistent/s.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildRejectsUnknownCluster(t *testing.T) {
	path := writeFile(t, "s.json",
		`{"name": "x", "layers": [{"name": "a", "services": [{"name": "s", "cluster": "mars"}]}]}`)
	s, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Build(testbed.Grid5000()); err == nil {
		t.Error("unknown cluster accepted at build")
	}
}

const paperOptimizer = `{
  "problem": {
    "name": "plantnet_engine",
    "objective": "user_resp_time",
    "mode": "min",
    "variables": [
      {"name": "http", "type": "int", "low": 20, "high": 60},
      {"name": "download", "type": "int", "low": 20, "high": 60},
      {"name": "simsearch", "type": "int", "low": 20, "high": 60},
      {"name": "extract", "type": "int", "low": 3, "high": 9}
    ]
  },
  "search": {
    "algorithm": "skopt",
    "base_estimator": "ET",
    "n_initial_points": 45,
    "initial_point_generator": "lhs",
    "acq_func": "gp_hedge"
  },
  "num_samples": 10,
  "max_concurrent": 2,
  "use_asha": true,
  "repeat": 6,
  "duration": 1380,
  "seed": 42
}`

func TestLoadOptimizerListing1(t *testing.T) {
	path := writeFile(t, "opt.json", paperOptimizer)
	o, err := LoadOptimizer(path)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := o.BuildSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Problem.Name != "plantnet_engine" || spec.Problem.Space.Len() != 4 {
		t.Fatalf("problem = %+v", spec.Problem)
	}
	// The built problem must match the canonical Equation 2 problem.
	ref := space.PlantNetProblem()
	for i := 0; i < 4; i++ {
		got, want := spec.Problem.Space.Dim(i), ref.Space.Dim(i)
		if got.Name != want.Name || got.Low != want.Low || got.High != want.High || got.Kind != want.Kind {
			t.Errorf("dim %d: %+v != %+v", i, got, want)
		}
	}
	if spec.Search.BaseEstimator != "ET" || spec.Search.AcqFunc != "gp_hedge" ||
		spec.Search.NInitialPoints != 45 || spec.Search.InitialPointGenerator != "lhs" {
		t.Errorf("search = %+v", spec.Search)
	}
	if spec.NumSamples != 10 || spec.MaxConcurrent != 2 || !spec.UseASHA ||
		spec.Repeat != 6 || spec.Duration != 1380 || spec.Seed != 42 {
		t.Errorf("protocol = %+v", spec)
	}
}

func TestProblemConfigVariableTypes(t *testing.T) {
	p := ProblemConfig{
		Name: "t", Objective: "y", Mode: "max",
		Variables: []VariableConfig{
			{Name: "i", Type: "int", Low: 0, High: 5},
			{Name: "f", Type: "float", Low: 0.5, High: 2},
			{Name: "lf", Type: "float", Low: 0.001, High: 1, Log: true},
			{Name: "c", Type: "categorical", Categories: []string{"a", "b"}},
		},
	}
	prob, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if prob.Objectives[0].Mode != space.Max {
		t.Error("mode max not honored")
	}
	if prob.Space.Dim(2).Log != true {
		t.Error("log flag lost")
	}
	if prob.Space.Dim(3).Kind != space.CategoricalKind {
		t.Error("categorical kind lost")
	}
}

func TestProblemConfigErrors(t *testing.T) {
	cases := []ProblemConfig{
		{Name: "x", Objective: "y"}, // no variables
		{Name: "x", Objective: "y", Variables: []VariableConfig{{Name: "v", Type: "complex"}}},
		{Name: "x", Objective: "y", Mode: "maximize", Variables: []VariableConfig{{Name: "v", Type: "int", High: 3}}},
		{Name: "x", Variables: []VariableConfig{{Name: "v", Type: "int", High: 3}}}, // no objective
		{Name: "x", Objective: "y", Variables: []VariableConfig{{Name: "v", Type: "int", Low: 3, High: 3}}},
	}
	for i, p := range cases {
		if _, err := p.Build(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
