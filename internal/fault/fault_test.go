package fault

import (
	"reflect"
	"testing"
)

func churnSpec() *Spec {
	return &Spec{
		GatewayChurn:   &Churn{MeanUpSeconds: 60, MeanDownSeconds: 10},
		ReplicaCrashes: []Crash{{Replica: 1, AtSeconds: 30, RecoverAfterSeconds: 20}},
		LinkFlaps:      []Flap{{Gateway: 0, FirstAtSeconds: 15, DownSeconds: 5, PeriodSeconds: 40}},
		LinkSchedule:   []Transition{{Gateway: Backhaul, AtSeconds: 50, DelayMS: 30, RateGbps: -1, LossPct: -1}},
	}
}

func TestCompileDeterministic(t *testing.T) {
	a := Compile(churnSpec(), 42, 300, 4)
	b := Compile(churnSpec(), 42, 300, 4)
	if len(a) == 0 {
		t.Fatal("expected events")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec+seed compiled to different timelines")
	}
	c := Compile(churnSpec(), 43, 300, 4)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds compiled to identical churn timelines")
	}
}

func TestCompileSortedAndAlternating(t *testing.T) {
	ev := Compile(churnSpec(), 7, 600, 3)
	up := map[int]bool{}
	for i, e := range ev {
		if i > 0 && ev[i-1].At > e.At {
			t.Fatalf("events out of order at %d: %g > %g", i, ev[i-1].At, e.At)
		}
		switch e.Kind {
		case GatewayLeave:
			if up[e.Target] {
				t.Fatalf("gateway %d left twice without joining", e.Target)
			}
			up[e.Target] = true
		case GatewayJoin:
			if !up[e.Target] {
				t.Fatalf("gateway %d joined while up", e.Target)
			}
			up[e.Target] = false
		}
	}
}

// A gateway's churn timeline must not depend on how many other gateways
// exist: each gateway draws from its own derived substream.
func TestChurnPerGatewaySubstreams(t *testing.T) {
	spec := &Spec{GatewayChurn: &Churn{MeanUpSeconds: 30, MeanDownSeconds: 5}}
	one := Compile(spec, 99, 500, 1)
	many := Compile(spec, 99, 500, 8)
	var g0 []Event
	for _, e := range many {
		if e.Target == 0 {
			g0 = append(g0, e)
		}
	}
	if !reflect.DeepEqual(one, g0) {
		t.Fatal("gateway 0 timeline changed when more gateways were added")
	}
}

func TestFlapExpansion(t *testing.T) {
	spec := &Spec{LinkFlaps: []Flap{{Gateway: 2, FirstAtSeconds: 10, DownSeconds: 4, PeriodSeconds: 25}}}
	ev := Compile(spec, 1, 60, 4)
	want := []Event{
		{At: 10, Kind: LinkDown, Target: 2},
		{At: 14, Kind: LinkUp, Target: 2},
		{At: 35, Kind: LinkDown, Target: 2},
		{At: 39, Kind: LinkUp, Target: 2},
	}
	if !reflect.DeepEqual(ev, want) {
		t.Fatalf("flap expansion = %+v, want %+v", ev, want)
	}

	single := Compile(&Spec{LinkFlaps: []Flap{{Gateway: 0, FirstAtSeconds: 5, DownSeconds: 2}}}, 1, 60, 1)
	if len(single) != 2 {
		t.Fatalf("single flap expanded to %d events, want 2", len(single))
	}
}

func TestCrashLowering(t *testing.T) {
	spec := &Spec{ReplicaCrashes: []Crash{
		{Replica: 0, AtSeconds: 20},
		{Replica: 1, AtSeconds: 40, RecoverAfterSeconds: 15, RequeueDelayMeanSeconds: 2},
	}}
	ev := Compile(spec, 1, 100, 0)
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	if ev[0].Kind != ReplicaCrash || ev[0].RequeueDelaySec != DefaultRequeueDelaySeconds {
		t.Fatalf("crash 0 = %+v, want default requeue delay", ev[0])
	}
	if ev[1].Kind != ReplicaCrash || ev[1].RequeueDelaySec != 2 {
		t.Fatalf("crash 1 = %+v, want requeue delay 2", ev[1])
	}
	if ev[2].Kind != ReplicaRecover || ev[2].At != 55 || ev[2].Target != 1 {
		t.Fatalf("recover = %+v, want t=55 replica 1", ev[2])
	}
}

func TestTransitionLowering(t *testing.T) {
	spec := &Spec{LinkSchedule: []Transition{
		{Gateway: Backhaul, AtSeconds: 10, DelayMS: 50, RateGbps: 0.5, LossPct: 3},
		{Gateway: 1, AtSeconds: 20, DelayMS: -1, RateGbps: -1, LossPct: 100},
	}}
	ev := Compile(spec, 1, 100, 2)
	if ev[0].DelaySec != 0.05 || ev[0].RateBps != 0.5e9 || ev[0].LossPct != 3 {
		t.Fatalf("transition 0 lowered to %+v", ev[0])
	}
	if ev[1].DelaySec != -1 || ev[1].RateBps != 0 || ev[1].LossPct != 100 {
		t.Fatalf("keep sentinels lowered to %+v", ev[1])
	}
}

func TestCompileIntoReusesBuffer(t *testing.T) {
	buf := Compile(churnSpec(), 42, 300, 4)
	ptr := &buf[:cap(buf)][0]
	again := CompileInto(buf, churnSpec(), 42, 300, 4)
	if &again[:cap(again)][0] != ptr && cap(buf) >= len(again) {
		t.Fatal("CompileInto did not reuse the buffer")
	}
	if !reflect.DeepEqual(buf, again) {
		t.Fatal("CompileInto produced a different timeline")
	}
}

func TestValidate(t *testing.T) {
	cases := []Spec{
		{GatewayChurn: &Churn{MeanUpSeconds: 0, MeanDownSeconds: 5}},
		{GatewayChurn: &Churn{MeanUpSeconds: 5, MeanDownSeconds: -1}},
		{GatewayChurn: &Churn{MeanUpSeconds: 5, MeanDownSeconds: 5, Gateways: -2}},
		{ReplicaCrashes: []Crash{{Replica: -1, AtSeconds: 10}}},
		{ReplicaCrashes: []Crash{{Replica: 0, AtSeconds: -1}}},
		{LinkFlaps: []Flap{{Gateway: -2, FirstAtSeconds: 0, DownSeconds: 1}}},
		{LinkFlaps: []Flap{{Gateway: 0, FirstAtSeconds: 0, DownSeconds: 0}}},
		{LinkFlaps: []Flap{{Gateway: 0, FirstAtSeconds: 0, DownSeconds: 5, PeriodSeconds: 4}}},
		{LinkSchedule: []Transition{{Gateway: -2, AtSeconds: 0}}},
		{LinkSchedule: []Transition{{Gateway: 0, AtSeconds: -3}}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := churnSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(); err != nil {
		t.Errorf("nil spec rejected: %v", err)
	}
	if !nilSpec.IsZero() || !(&Spec{}).IsZero() || churnSpec().IsZero() {
		t.Error("IsZero misclassified")
	}
}

func TestCloneIsolation(t *testing.T) {
	orig := churnSpec()
	c := orig.Clone()
	c.GatewayChurn.MeanUpSeconds = 1
	c.ReplicaCrashes[0].AtSeconds = 999
	c.LinkFlaps[0].Gateway = 3
	c.LinkSchedule[0].LossPct = 50
	if orig.GatewayChurn.MeanUpSeconds != 60 || orig.ReplicaCrashes[0].AtSeconds != 30 ||
		orig.LinkFlaps[0].Gateway != 0 || orig.LinkSchedule[0].LossPct != -1 {
		t.Fatal("Clone shares state with the original")
	}
}

// Two flap schedules overlapping on one target used to double-restore:
// the first Up landing inside the other's down-window restored the link
// early. Compile now merges overlapping (and touching) windows.
func TestFlapOverlapMerged(t *testing.T) {
	spec := &Spec{LinkFlaps: []Flap{
		{Gateway: 1, FirstAtSeconds: 10, DownSeconds: 8},
		{Gateway: 1, FirstAtSeconds: 14, DownSeconds: 10},
	}}
	ev := Compile(spec, 1, 100, 2)
	want := []Event{
		{At: 10, Kind: LinkDown, Target: 1},
		{At: 24, Kind: LinkUp, Target: 1},
	}
	if !reflect.DeepEqual(ev, want) {
		t.Fatalf("overlap merge = %+v, want %+v", ev, want)
	}

	// Touching windows merge too (no same-instant Up/Down churn).
	spec = &Spec{LinkFlaps: []Flap{
		{Gateway: 0, FirstAtSeconds: 5, DownSeconds: 5},
		{Gateway: 0, FirstAtSeconds: 10, DownSeconds: 5},
	}}
	ev = Compile(spec, 1, 100, 1)
	want = []Event{
		{At: 5, Kind: LinkDown, Target: 0},
		{At: 15, Kind: LinkUp, Target: 0},
	}
	if !reflect.DeepEqual(ev, want) {
		t.Fatalf("touch merge = %+v, want %+v", ev, want)
	}

	// Periodic flaps interleaving across entries merge per cycle, and the
	// down/up alternation stays strict.
	spec = &Spec{LinkFlaps: []Flap{
		{Gateway: 0, FirstAtSeconds: 0, DownSeconds: 6, PeriodSeconds: 20},
		{Gateway: 0, FirstAtSeconds: 4, DownSeconds: 6, PeriodSeconds: 20},
	}}
	ev = Compile(spec, 1, 50, 1)
	down := false
	for i, e := range ev {
		switch e.Kind {
		case LinkDown:
			if down {
				t.Fatalf("event %d: double down at %g", i, e.At)
			}
			down = true
		case LinkUp:
			if !down {
				t.Fatalf("event %d: up while up at %g", i, e.At)
			}
			down = false
		}
	}
	if len(ev) != 6 { // cycles [0,10), [20,30), [40,50): one merged pair each
		t.Fatalf("got %d events, want 6: %+v", len(ev), ev)
	}

	// Distinct targets keep the historical per-entry expansion.
	spec = &Spec{LinkFlaps: []Flap{
		{Gateway: 0, FirstAtSeconds: 10, DownSeconds: 4},
		{Gateway: 1, FirstAtSeconds: 11, DownSeconds: 4},
	}}
	ev = Compile(spec, 1, 100, 2)
	want = []Event{
		{At: 10, Kind: LinkDown, Target: 0},
		{At: 11, Kind: LinkDown, Target: 1},
		{At: 14, Kind: LinkUp, Target: 0},
		{At: 15, Kind: LinkUp, Target: 1},
	}
	if !reflect.DeepEqual(ev, want) {
		t.Fatalf("distinct targets = %+v, want %+v", ev, want)
	}
}

func TestWindowsSlicesAndShifts(t *testing.T) {
	tl := []Event{
		{At: 5, Kind: GatewayLeave, Target: 2},
		{At: 8, Kind: LinkSet, Target: Backhaul, DelaySec: 0.05, RateBps: 1e9, LossPct: -1},
		{At: 12, Kind: ReplicaCrash, Target: 1, RequeueDelaySec: 0.5},
		{At: 15, Kind: GatewayJoin, Target: 2},
		{At: 23, Kind: ReplicaRecover, Target: 1},
	}
	wins := Windows(tl, []float64{10, 10, 10})
	if len(wins) != 3 {
		t.Fatalf("got %d windows", len(wins))
	}
	// Window 0: the first two events, unshifted.
	if !reflect.DeepEqual(wins[0], tl[:2]) {
		t.Fatalf("window 0 = %+v", wins[0])
	}
	// Window 1 head: carried state — the LinkSet replay, then the departed
	// gateway — followed by the in-window events shifted by -10.
	want1 := []Event{
		{At: 0, Kind: LinkSet, Target: Backhaul, DelaySec: 0.05, RateBps: 1e9, LossPct: -1},
		{At: 0, Kind: GatewayLeave, Target: 2},
		{At: 2, Kind: ReplicaCrash, Target: 1, RequeueDelaySec: 0.5},
		{At: 5, Kind: GatewayJoin, Target: 2},
	}
	if !reflect.DeepEqual(wins[1], want1) {
		t.Fatalf("window 1 = %+v, want %+v", wins[1], want1)
	}
	// Window 2 head: the LinkSet replay and the still-crashed replica
	// (with its original requeue delay); the recovery shifts to t=3.
	want2 := []Event{
		{At: 0, Kind: LinkSet, Target: Backhaul, DelaySec: 0.05, RateBps: 1e9, LossPct: -1},
		{At: 0, Kind: ReplicaCrash, Target: 1, RequeueDelaySec: 0.5},
		{At: 3, Kind: ReplicaRecover, Target: 1},
	}
	if !reflect.DeepEqual(wins[2], want2) {
		t.Fatalf("window 2 = %+v, want %+v", wins[2], want2)
	}
}

func TestWindowsEdges(t *testing.T) {
	// A boundary event (At == phase end) belongs to the NEXT window at
	// t=0, after the synthesized head; the last window keeps events at or
	// beyond the horizon (they never fire, matching single-run compiles).
	tl := []Event{
		{At: 10, Kind: LinkDown, Target: 0},
		{At: 25, Kind: LinkUp, Target: 0},
	}
	wins := Windows(tl, []float64{10, 10})
	if len(wins[0]) != 0 {
		t.Fatalf("window 0 = %+v, want empty", wins[0])
	}
	if wins[0] == nil || wins[1] == nil {
		t.Fatal("windows must be non-nil so the runner treats them as explicit timelines")
	}
	want := []Event{
		{At: 0, Kind: LinkDown, Target: 0},
		{At: 15, Kind: LinkUp, Target: 0},
	}
	if !reflect.DeepEqual(wins[1], want) {
		t.Fatalf("window 1 = %+v, want %+v", wins[1], want)
	}
	// Empty timeline: every window is empty but non-nil.
	for i, w := range Windows(nil, []float64{5, 5}) {
		if w == nil || len(w) != 0 {
			t.Fatalf("empty-timeline window %d = %+v", i, w)
		}
	}
	// Windows stay time-sorted (the cursor-dispatch invariant).
	big := Compile(churnSpec(), 42, 300, 4)
	for _, w := range Windows(big, []float64{70, 90, 140}) {
		for i := 1; i < len(w); i++ {
			if w[i-1].At > w[i].At {
				t.Fatalf("window unsorted at %d: %g > %g", i, w[i-1].At, w[i].At)
			}
		}
	}
}
