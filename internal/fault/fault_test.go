package fault

import (
	"reflect"
	"testing"
)

func churnSpec() *Spec {
	return &Spec{
		GatewayChurn:   &Churn{MeanUpSeconds: 60, MeanDownSeconds: 10},
		ReplicaCrashes: []Crash{{Replica: 1, AtSeconds: 30, RecoverAfterSeconds: 20}},
		LinkFlaps:      []Flap{{Gateway: 0, FirstAtSeconds: 15, DownSeconds: 5, PeriodSeconds: 40}},
		LinkSchedule:   []Transition{{Gateway: Backhaul, AtSeconds: 50, DelayMS: 30, RateGbps: -1, LossPct: -1}},
	}
}

func TestCompileDeterministic(t *testing.T) {
	a := Compile(churnSpec(), 42, 300, 4)
	b := Compile(churnSpec(), 42, 300, 4)
	if len(a) == 0 {
		t.Fatal("expected events")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec+seed compiled to different timelines")
	}
	c := Compile(churnSpec(), 43, 300, 4)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds compiled to identical churn timelines")
	}
}

func TestCompileSortedAndAlternating(t *testing.T) {
	ev := Compile(churnSpec(), 7, 600, 3)
	up := map[int]bool{}
	for i, e := range ev {
		if i > 0 && ev[i-1].At > e.At {
			t.Fatalf("events out of order at %d: %g > %g", i, ev[i-1].At, e.At)
		}
		switch e.Kind {
		case GatewayLeave:
			if up[e.Target] {
				t.Fatalf("gateway %d left twice without joining", e.Target)
			}
			up[e.Target] = true
		case GatewayJoin:
			if !up[e.Target] {
				t.Fatalf("gateway %d joined while up", e.Target)
			}
			up[e.Target] = false
		}
	}
}

// A gateway's churn timeline must not depend on how many other gateways
// exist: each gateway draws from its own derived substream.
func TestChurnPerGatewaySubstreams(t *testing.T) {
	spec := &Spec{GatewayChurn: &Churn{MeanUpSeconds: 30, MeanDownSeconds: 5}}
	one := Compile(spec, 99, 500, 1)
	many := Compile(spec, 99, 500, 8)
	var g0 []Event
	for _, e := range many {
		if e.Target == 0 {
			g0 = append(g0, e)
		}
	}
	if !reflect.DeepEqual(one, g0) {
		t.Fatal("gateway 0 timeline changed when more gateways were added")
	}
}

func TestFlapExpansion(t *testing.T) {
	spec := &Spec{LinkFlaps: []Flap{{Gateway: 2, FirstAtSeconds: 10, DownSeconds: 4, PeriodSeconds: 25}}}
	ev := Compile(spec, 1, 60, 4)
	want := []Event{
		{At: 10, Kind: LinkDown, Target: 2},
		{At: 14, Kind: LinkUp, Target: 2},
		{At: 35, Kind: LinkDown, Target: 2},
		{At: 39, Kind: LinkUp, Target: 2},
	}
	if !reflect.DeepEqual(ev, want) {
		t.Fatalf("flap expansion = %+v, want %+v", ev, want)
	}

	single := Compile(&Spec{LinkFlaps: []Flap{{Gateway: 0, FirstAtSeconds: 5, DownSeconds: 2}}}, 1, 60, 1)
	if len(single) != 2 {
		t.Fatalf("single flap expanded to %d events, want 2", len(single))
	}
}

func TestCrashLowering(t *testing.T) {
	spec := &Spec{ReplicaCrashes: []Crash{
		{Replica: 0, AtSeconds: 20},
		{Replica: 1, AtSeconds: 40, RecoverAfterSeconds: 15, RequeueDelayMeanSeconds: 2},
	}}
	ev := Compile(spec, 1, 100, 0)
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	if ev[0].Kind != ReplicaCrash || ev[0].RequeueDelaySec != DefaultRequeueDelaySeconds {
		t.Fatalf("crash 0 = %+v, want default requeue delay", ev[0])
	}
	if ev[1].Kind != ReplicaCrash || ev[1].RequeueDelaySec != 2 {
		t.Fatalf("crash 1 = %+v, want requeue delay 2", ev[1])
	}
	if ev[2].Kind != ReplicaRecover || ev[2].At != 55 || ev[2].Target != 1 {
		t.Fatalf("recover = %+v, want t=55 replica 1", ev[2])
	}
}

func TestTransitionLowering(t *testing.T) {
	spec := &Spec{LinkSchedule: []Transition{
		{Gateway: Backhaul, AtSeconds: 10, DelayMS: 50, RateGbps: 0.5, LossPct: 3},
		{Gateway: 1, AtSeconds: 20, DelayMS: -1, RateGbps: -1, LossPct: 100},
	}}
	ev := Compile(spec, 1, 100, 2)
	if ev[0].DelaySec != 0.05 || ev[0].RateBps != 0.5e9 || ev[0].LossPct != 3 {
		t.Fatalf("transition 0 lowered to %+v", ev[0])
	}
	if ev[1].DelaySec != -1 || ev[1].RateBps != 0 || ev[1].LossPct != 100 {
		t.Fatalf("keep sentinels lowered to %+v", ev[1])
	}
}

func TestCompileIntoReusesBuffer(t *testing.T) {
	buf := Compile(churnSpec(), 42, 300, 4)
	ptr := &buf[:cap(buf)][0]
	again := CompileInto(buf, churnSpec(), 42, 300, 4)
	if &again[:cap(again)][0] != ptr && cap(buf) >= len(again) {
		t.Fatal("CompileInto did not reuse the buffer")
	}
	if !reflect.DeepEqual(buf, again) {
		t.Fatal("CompileInto produced a different timeline")
	}
}

func TestValidate(t *testing.T) {
	cases := []Spec{
		{GatewayChurn: &Churn{MeanUpSeconds: 0, MeanDownSeconds: 5}},
		{GatewayChurn: &Churn{MeanUpSeconds: 5, MeanDownSeconds: -1}},
		{GatewayChurn: &Churn{MeanUpSeconds: 5, MeanDownSeconds: 5, Gateways: -2}},
		{ReplicaCrashes: []Crash{{Replica: -1, AtSeconds: 10}}},
		{ReplicaCrashes: []Crash{{Replica: 0, AtSeconds: -1}}},
		{LinkFlaps: []Flap{{Gateway: -2, FirstAtSeconds: 0, DownSeconds: 1}}},
		{LinkFlaps: []Flap{{Gateway: 0, FirstAtSeconds: 0, DownSeconds: 0}}},
		{LinkFlaps: []Flap{{Gateway: 0, FirstAtSeconds: 0, DownSeconds: 5, PeriodSeconds: 4}}},
		{LinkSchedule: []Transition{{Gateway: -2, AtSeconds: 0}}},
		{LinkSchedule: []Transition{{Gateway: 0, AtSeconds: -3}}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := churnSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(); err != nil {
		t.Errorf("nil spec rejected: %v", err)
	}
	if !nilSpec.IsZero() || !(&Spec{}).IsZero() || churnSpec().IsZero() {
		t.Error("IsZero misclassified")
	}
}

func TestCloneIsolation(t *testing.T) {
	orig := churnSpec()
	c := orig.Clone()
	c.GatewayChurn.MeanUpSeconds = 1
	c.ReplicaCrashes[0].AtSeconds = 999
	c.LinkFlaps[0].Gateway = 3
	c.LinkSchedule[0].LossPct = 50
	if orig.GatewayChurn.MeanUpSeconds != 60 || orig.ReplicaCrashes[0].AtSeconds != 30 ||
		orig.LinkFlaps[0].Gateway != 0 || orig.LinkSchedule[0].LossPct != -1 {
		t.Fatal("Clone shares state with the original")
	}
}
