// Package fault defines deterministic, seeded fault schedules for the
// simulation kernel: gateway churn (join/leave renewal processes), engine
// replica crashes with recovery, and time-varying link behavior (flaps and
// stepwise netem transitions). A Spec is declarative and JSON-serializable
// — it rides scenario fingerprints, so changing a schedule invalidates
// checkpoint resume — and Compile lowers it to a flat, time-sorted event
// timeline whose stochastic parts (churn intervals) are drawn from
// rngutil streams derived from the run seed. Compiling the same spec with
// the same seed and horizon yields byte-identical timelines, which is what
// keeps faulted fixed-seed runs bit-identical at any parallelism.
//
// All times are in seconds relative to the start of the engine run the
// schedule is injected into (each phase of a phased scenario replays the
// schedule from its own t=0).
package fault

import (
	"fmt"
	"sort"

	"e2clab/internal/rngutil"
)

// DefaultRequeueDelaySeconds is the mean of the seeded exponential
// failover delay applied to each request requeued off a crashed replica
// when the Crash entry does not set one.
const DefaultRequeueDelaySeconds = 0.5

// Spec is a declarative fault schedule. The zero value (and nil pointer)
// means "no faults".
type Spec struct {
	// GatewayChurn runs an independent seeded up/down renewal process per
	// gateway: while "down" the gateway accepts no new arrivals and its
	// in-flight requests fail with a distinct outcome.
	GatewayChurn *Churn `json:"gateway_churn,omitempty"`

	// ReplicaCrashes are deterministic crash points for engine replicas:
	// in-service work on the replica is cancelled and requeued on the
	// surviving pool after a seeded per-request failover delay.
	ReplicaCrashes []Crash `json:"replica_crashes,omitempty"`

	// LinkFlaps periodically take a gateway's uplink domain (or the
	// backhaul) fully down and back up; payloads stall while down.
	LinkFlaps []Flap `json:"link_flaps,omitempty"`

	// LinkSchedule applies explicit netem transitions (stepwise
	// degradation) at fixed times.
	LinkSchedule []Transition `json:"link_schedule,omitempty"`
}

// Churn parameterizes the per-gateway up/down renewal process: alternating
// exponential intervals with the given means, every gateway starting "up"
// with its own rngutil substream (so timelines do not depend on how many
// other gateways churn).
type Churn struct {
	MeanUpSeconds   float64 `json:"mean_up_seconds"`
	MeanDownSeconds float64 `json:"mean_down_seconds"`
	// Gateways limits churn to the first N gateways; 0 means all.
	Gateways int `json:"gateways,omitempty"`
}

// Crash is one deterministic replica crash.
type Crash struct {
	Replica   int     `json:"replica"`
	AtSeconds float64 `json:"at_seconds"`
	// RecoverAfterSeconds brings the replica back that long after the
	// crash; 0 means it stays down for the rest of the run.
	RecoverAfterSeconds float64 `json:"recover_after_seconds,omitempty"`
	// RequeueDelayMeanSeconds is the mean of the exponential failover
	// delay per requeued request; 0 selects DefaultRequeueDelaySeconds.
	RequeueDelayMeanSeconds float64 `json:"requeue_delay_mean_seconds,omitempty"`
}

// Flap is a periodic down/up cycle on one gateway's uplink domain
// (Gateway >= 0) or the shared backhaul (Gateway == Backhaul).
// Overlapping down windows on the same target — within one flap or
// across flaps — are merged at compile time into a single down/up pair,
// so a link is never double-restored or left mis-priced.
type Flap struct {
	Gateway        int     `json:"gateway"`
	FirstAtSeconds float64 `json:"first_at_seconds"`
	DownSeconds    float64 `json:"down_seconds"`
	// PeriodSeconds repeats the flap every period (measured down-start to
	// down-start); 0 means a single flap. Must exceed DownSeconds.
	PeriodSeconds float64 `json:"period_seconds,omitempty"`
}

// Backhaul is the Gateway value that targets the shared backhaul links
// instead of a gateway's own uplink domain.
const Backhaul = -1

// Transition is one explicit netem transition on a link domain. Keep
// sentinels follow sim.Link.Reconfigure: a negative DelayMS or LossPct and
// a non-positive RateGbps keep the current value, so every field must be
// written explicitly (-1 = keep) — there is no implicit zero.
type Transition struct {
	Gateway   int     `json:"gateway"` // gateway index, or Backhaul (-1)
	AtSeconds float64 `json:"at_seconds"`
	DelayMS   float64 `json:"delay_ms"`
	RateGbps  float64 `json:"rate_gbps"`
	LossPct   float64 `json:"loss_pct"`
}

// Kind discriminates compiled fault events.
type Kind uint8

const (
	GatewayLeave Kind = iota
	GatewayJoin
	ReplicaCrash
	ReplicaRecover
	LinkDown
	LinkUp
	LinkSet
)

// String names the event kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case GatewayLeave:
		return "gateway-leave"
	case GatewayJoin:
		return "gateway-join"
	case ReplicaCrash:
		return "replica-crash"
	case ReplicaRecover:
		return "replica-recover"
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case LinkSet:
		return "link-set"
	}
	return "unknown"
}

// Event is one compiled fault action on the timeline.
type Event struct {
	At     float64
	Kind   Kind
	Target int // gateway index, replica index, or Backhaul for link kinds

	// Link transition parameters (LinkSet), already lowered to
	// sim.Link.Reconfigure units: seconds, bits/s, percent.
	DelaySec, RateBps, LossPct float64

	// RequeueDelaySec is the mean failover delay (ReplicaCrash).
	RequeueDelaySec float64
}

// IsZero reports whether the spec schedules nothing.
func (s *Spec) IsZero() bool {
	return s == nil || (s.GatewayChurn == nil && len(s.ReplicaCrashes) == 0 &&
		len(s.LinkFlaps) == 0 && len(s.LinkSchedule) == 0)
}

// Clone deep-copies the spec so generator-produced scenarios can mutate
// their schedules independently.
func (s Spec) Clone() Spec {
	c := s
	if s.GatewayChurn != nil {
		ch := *s.GatewayChurn
		c.GatewayChurn = &ch
	}
	c.ReplicaCrashes = append([]Crash(nil), s.ReplicaCrashes...)
	c.LinkFlaps = append([]Flap(nil), s.LinkFlaps...)
	c.LinkSchedule = append([]Transition(nil), s.LinkSchedule...)
	return c
}

// Validate checks internal consistency; index bounds against the actual
// gateway/replica counts are the runner's responsibility (it knows the
// lowered topology).
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if c := s.GatewayChurn; c != nil {
		if c.MeanUpSeconds <= 0 || c.MeanDownSeconds <= 0 {
			return fmt.Errorf("fault: gateway churn means must be > 0 (got up %g, down %g)",
				c.MeanUpSeconds, c.MeanDownSeconds)
		}
		if c.Gateways < 0 {
			return fmt.Errorf("fault: gateway churn gateways must be >= 0, got %d", c.Gateways)
		}
	}
	for i, cr := range s.ReplicaCrashes {
		if cr.Replica < 0 {
			return fmt.Errorf("fault: crash %d: replica must be >= 0, got %d", i, cr.Replica)
		}
		if cr.AtSeconds < 0 || cr.RecoverAfterSeconds < 0 || cr.RequeueDelayMeanSeconds < 0 {
			return fmt.Errorf("fault: crash %d: times must be >= 0", i)
		}
	}
	for i, f := range s.LinkFlaps {
		if f.Gateway < Backhaul {
			return fmt.Errorf("fault: flap %d: gateway must be >= -1, got %d", i, f.Gateway)
		}
		if f.FirstAtSeconds < 0 || f.DownSeconds <= 0 {
			return fmt.Errorf("fault: flap %d: first_at must be >= 0 and down > 0", i)
		}
		if f.PeriodSeconds != 0 && f.PeriodSeconds <= f.DownSeconds {
			return fmt.Errorf("fault: flap %d: period %g must exceed down %g",
				i, f.PeriodSeconds, f.DownSeconds)
		}
	}
	for i, tr := range s.LinkSchedule {
		if tr.Gateway < Backhaul {
			return fmt.Errorf("fault: transition %d: gateway must be >= -1, got %d", i, tr.Gateway)
		}
		if tr.AtSeconds < 0 {
			return fmt.Errorf("fault: transition %d: at must be >= 0", i)
		}
	}
	return nil
}

// Compile lowers the spec to a time-sorted event timeline for one engine
// run: seed drives the churn interval draws (per-gateway substreams via
// rngutil.NewSeeder, so a gateway's timeline is independent of the
// others'), horizonSeconds bounds churn generation, and gateways is the
// lowered topology size. The result is stable-sorted by time, spec order
// breaking ties, and byte-identical across calls with equal inputs.
func Compile(s *Spec, seed int64, horizonSeconds float64, gateways int) []Event {
	return CompileInto(nil, s, seed, horizonSeconds, gateways)
}

// CompileInto is Compile appending into dst's backing array, for callers
// that recompile per run and want to reuse the buffer.
func CompileInto(dst []Event, s *Spec, seed int64, horizonSeconds float64, gateways int) []Event {
	ev := dst[:0]
	if s.IsZero() {
		return ev
	}
	if c := s.GatewayChurn; c != nil && horizonSeconds > 0 {
		n := gateways
		if c.Gateways > 0 && c.Gateways < n {
			n = c.Gateways
		}
		seeder := rngutil.NewSeeder(seed)
		for g := 0; g < n; g++ {
			rng := seeder.NextRand()
			t, up := 0.0, true
			for {
				if up {
					t += rng.ExpFloat64() * c.MeanUpSeconds
				} else {
					t += rng.ExpFloat64() * c.MeanDownSeconds
				}
				if t >= horizonSeconds {
					break
				}
				k := GatewayJoin
				if up {
					k = GatewayLeave
				}
				ev = append(ev, Event{At: t, Kind: k, Target: g})
				up = !up
			}
		}
	}
	for _, cr := range s.ReplicaCrashes {
		d := cr.RequeueDelayMeanSeconds
		if d <= 0 {
			d = DefaultRequeueDelaySeconds
		}
		ev = append(ev, Event{At: cr.AtSeconds, Kind: ReplicaCrash, Target: cr.Replica, RequeueDelaySec: d})
		if cr.RecoverAfterSeconds > 0 {
			ev = append(ev, Event{At: cr.AtSeconds + cr.RecoverAfterSeconds, Kind: ReplicaRecover, Target: cr.Replica})
		}
	}
	ev = compileFlaps(ev, s.LinkFlaps, horizonSeconds)
	for _, tr := range s.LinkSchedule {
		ev = append(ev, Event{
			At: tr.AtSeconds, Kind: LinkSet, Target: tr.Gateway,
			DelaySec: lowerDelay(tr.DelayMS),
			RateBps:  lowerRate(tr.RateGbps),
			LossPct:  tr.LossPct,
		})
	}
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].At < ev[j].At })
	return ev
}

// compileFlaps expands every flap entry's periodic down-windows, then
// merges overlapping or touching windows per target before emitting
// Down/Up pairs. Without the merge, two flap schedules on one link
// domain double-restore: the first Up landing inside the other flap's
// down-window brings the link back early, and the second Up then
// "restores" an already-restored link — leaving any interleaved LinkSet
// re-pricing wrong. Targets emit in first-appearance spec order and
// windows in time order, so for non-overlapping specs the emitted events
// are identical to the historical per-entry expansion.
func compileFlaps(ev []Event, flaps []Flap, horizonSeconds float64) []Event {
	if len(flaps) == 0 {
		return ev
	}
	type window struct{ s, e float64 }
	var targets []int
	var perTarget [][]window
	for _, f := range flaps {
		ti := -1
		for i, t := range targets {
			if t == f.Gateway {
				ti = i
				break
			}
		}
		if ti < 0 {
			targets = append(targets, f.Gateway)
			perTarget = append(perTarget, nil)
			ti = len(targets) - 1
		}
		start, period := f.FirstAtSeconds, f.PeriodSeconds
		for {
			perTarget[ti] = append(perTarget[ti], window{start, start + f.DownSeconds})
			if period <= 0 {
				break
			}
			start += period
			if horizonSeconds > 0 && start >= horizonSeconds {
				break
			}
		}
	}
	for i, t := range targets {
		ws := perTarget[i]
		sort.SliceStable(ws, func(a, b int) bool { return ws[a].s < ws[b].s })
		cur := ws[0]
		for _, w := range ws[1:] {
			if w.s <= cur.e {
				if w.e > cur.e {
					cur.e = w.e
				}
				continue
			}
			ev = append(ev,
				Event{At: cur.s, Kind: LinkDown, Target: t},
				Event{At: cur.e, Kind: LinkUp, Target: t})
			cur = w
		}
		ev = append(ev,
			Event{At: cur.s, Kind: LinkDown, Target: t},
			Event{At: cur.e, Kind: LinkUp, Target: t})
	}
	return ev
}

// Windows slices one compiled wall-clock timeline into consecutive
// per-phase windows, so a phased workload lowers a SINGLE fault timeline
// continuously across its phase boundaries instead of replaying the
// schedule from each phase's t=0. Window i covers wall-clock
// [sum(durations[:i]), sum(durations[:i+1])), with event times shifted
// to be window-relative. State that persists across a boundary — a
// departed gateway, a crashed replica, a downed link, and every netem
// re-pricing applied so far — is synthesized as t=0 head events of the
// next window (LinkSet replays in original order so restore targets
// compose, then LinkDown/GatewayLeave/ReplicaCrash in ascending target
// order), which is sound because each phase starts on a fresh engine.
// The final window also receives any events at or beyond the horizon
// (they never fire, matching single-run compilation). Every returned
// window is non-nil, and windows stay time-sorted so the runner's cursor
// dispatch applies unchanged.
func Windows(timeline []Event, durations []float64) [][]Event {
	out := make([][]Event, len(durations))
	maxGw, maxRep, maxLink := -1, -1, -1
	for _, ev := range timeline {
		switch ev.Kind {
		case GatewayLeave, GatewayJoin:
			if ev.Target > maxGw {
				maxGw = ev.Target
			}
		case ReplicaCrash, ReplicaRecover:
			if ev.Target > maxRep {
				maxRep = ev.Target
			}
		case LinkDown, LinkUp:
			if ev.Target > maxLink {
				maxLink = ev.Target
			}
		}
	}
	gwDown := make([]bool, maxGw+1)
	repDown := make([]bool, maxRep+1)
	repDelay := make([]float64, maxRep+1)
	linkDown := make([]bool, maxLink+2) // indexed Target+1 so Backhaul (-1) is slot 0
	var sets []Event
	offset, i := 0.0, 0
	for w, dur := range durations {
		win := make([]Event, 0, 4)
		if w > 0 {
			for _, s := range sets {
				s.At = 0
				win = append(win, s)
			}
			for t := range linkDown {
				if linkDown[t] {
					win = append(win, Event{Kind: LinkDown, Target: t - 1})
				}
			}
			for g := range gwDown {
				if gwDown[g] {
					win = append(win, Event{Kind: GatewayLeave, Target: g})
				}
			}
			for r := range repDown {
				if repDown[r] {
					win = append(win, Event{Kind: ReplicaCrash, Target: r, RequeueDelaySec: repDelay[r]})
				}
			}
		}
		end := offset + dur
		last := w == len(durations)-1
		for ; i < len(timeline); i++ {
			ev := timeline[i]
			if !last && ev.At >= end {
				break
			}
			switch ev.Kind {
			case GatewayLeave:
				gwDown[ev.Target] = true
			case GatewayJoin:
				gwDown[ev.Target] = false
			case ReplicaCrash:
				repDown[ev.Target] = true
				repDelay[ev.Target] = ev.RequeueDelaySec
			case ReplicaRecover:
				repDown[ev.Target] = false
			case LinkDown:
				linkDown[ev.Target+1] = true
			case LinkUp:
				linkDown[ev.Target+1] = false
			case LinkSet:
				sets = append(sets, ev)
			}
			ev.At -= offset
			win = append(win, ev)
		}
		out[w] = win
		offset = end
	}
	return out
}

// lowerDelay converts a Transition delay (ms, negative = keep) to
// sim.Link.Reconfigure seconds (negative = keep).
func lowerDelay(ms float64) float64 {
	if ms < 0 {
		return -1
	}
	return ms / 1000
}

// lowerRate converts a Transition rate (Gbps, non-positive = keep) to
// bits/s (non-positive = keep).
func lowerRate(gbps float64) float64 {
	if gbps <= 0 {
		return 0
	}
	return gbps * 1e9
}
