// Package fault defines deterministic, seeded fault schedules for the
// simulation kernel: gateway churn (join/leave renewal processes), engine
// replica crashes with recovery, and time-varying link behavior (flaps and
// stepwise netem transitions). A Spec is declarative and JSON-serializable
// — it rides scenario fingerprints, so changing a schedule invalidates
// checkpoint resume — and Compile lowers it to a flat, time-sorted event
// timeline whose stochastic parts (churn intervals) are drawn from
// rngutil streams derived from the run seed. Compiling the same spec with
// the same seed and horizon yields byte-identical timelines, which is what
// keeps faulted fixed-seed runs bit-identical at any parallelism.
//
// All times are in seconds relative to the start of the engine run the
// schedule is injected into (each phase of a phased scenario replays the
// schedule from its own t=0).
package fault

import (
	"fmt"
	"sort"

	"e2clab/internal/rngutil"
)

// DefaultRequeueDelaySeconds is the mean of the seeded exponential
// failover delay applied to each request requeued off a crashed replica
// when the Crash entry does not set one.
const DefaultRequeueDelaySeconds = 0.5

// Spec is a declarative fault schedule. The zero value (and nil pointer)
// means "no faults".
type Spec struct {
	// GatewayChurn runs an independent seeded up/down renewal process per
	// gateway: while "down" the gateway accepts no new arrivals and its
	// in-flight requests fail with a distinct outcome.
	GatewayChurn *Churn `json:"gateway_churn,omitempty"`

	// ReplicaCrashes are deterministic crash points for engine replicas:
	// in-service work on the replica is cancelled and requeued on the
	// surviving pool after a seeded per-request failover delay.
	ReplicaCrashes []Crash `json:"replica_crashes,omitempty"`

	// LinkFlaps periodically take a gateway's uplink domain (or the
	// backhaul) fully down and back up; payloads stall while down.
	LinkFlaps []Flap `json:"link_flaps,omitempty"`

	// LinkSchedule applies explicit netem transitions (stepwise
	// degradation) at fixed times.
	LinkSchedule []Transition `json:"link_schedule,omitempty"`
}

// Churn parameterizes the per-gateway up/down renewal process: alternating
// exponential intervals with the given means, every gateway starting "up"
// with its own rngutil substream (so timelines do not depend on how many
// other gateways churn).
type Churn struct {
	MeanUpSeconds   float64 `json:"mean_up_seconds"`
	MeanDownSeconds float64 `json:"mean_down_seconds"`
	// Gateways limits churn to the first N gateways; 0 means all.
	Gateways int `json:"gateways,omitempty"`
}

// Crash is one deterministic replica crash.
type Crash struct {
	Replica   int     `json:"replica"`
	AtSeconds float64 `json:"at_seconds"`
	// RecoverAfterSeconds brings the replica back that long after the
	// crash; 0 means it stays down for the rest of the run.
	RecoverAfterSeconds float64 `json:"recover_after_seconds,omitempty"`
	// RequeueDelayMeanSeconds is the mean of the exponential failover
	// delay per requeued request; 0 selects DefaultRequeueDelaySeconds.
	RequeueDelayMeanSeconds float64 `json:"requeue_delay_mean_seconds,omitempty"`
}

// Flap is a periodic down/up cycle on one gateway's uplink domain
// (Gateway >= 0) or the shared backhaul (Gateway == Backhaul).
type Flap struct {
	Gateway        int     `json:"gateway"`
	FirstAtSeconds float64 `json:"first_at_seconds"`
	DownSeconds    float64 `json:"down_seconds"`
	// PeriodSeconds repeats the flap every period (measured down-start to
	// down-start); 0 means a single flap. Must exceed DownSeconds.
	PeriodSeconds float64 `json:"period_seconds,omitempty"`
}

// Backhaul is the Gateway value that targets the shared backhaul links
// instead of a gateway's own uplink domain.
const Backhaul = -1

// Transition is one explicit netem transition on a link domain. Keep
// sentinels follow sim.Link.Reconfigure: a negative DelayMS or LossPct and
// a non-positive RateGbps keep the current value, so every field must be
// written explicitly (-1 = keep) — there is no implicit zero.
type Transition struct {
	Gateway   int     `json:"gateway"` // gateway index, or Backhaul (-1)
	AtSeconds float64 `json:"at_seconds"`
	DelayMS   float64 `json:"delay_ms"`
	RateGbps  float64 `json:"rate_gbps"`
	LossPct   float64 `json:"loss_pct"`
}

// Kind discriminates compiled fault events.
type Kind uint8

const (
	GatewayLeave Kind = iota
	GatewayJoin
	ReplicaCrash
	ReplicaRecover
	LinkDown
	LinkUp
	LinkSet
)

// String names the event kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case GatewayLeave:
		return "gateway-leave"
	case GatewayJoin:
		return "gateway-join"
	case ReplicaCrash:
		return "replica-crash"
	case ReplicaRecover:
		return "replica-recover"
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case LinkSet:
		return "link-set"
	}
	return "unknown"
}

// Event is one compiled fault action on the timeline.
type Event struct {
	At     float64
	Kind   Kind
	Target int // gateway index, replica index, or Backhaul for link kinds

	// Link transition parameters (LinkSet), already lowered to
	// sim.Link.Reconfigure units: seconds, bits/s, percent.
	DelaySec, RateBps, LossPct float64

	// RequeueDelaySec is the mean failover delay (ReplicaCrash).
	RequeueDelaySec float64
}

// IsZero reports whether the spec schedules nothing.
func (s *Spec) IsZero() bool {
	return s == nil || (s.GatewayChurn == nil && len(s.ReplicaCrashes) == 0 &&
		len(s.LinkFlaps) == 0 && len(s.LinkSchedule) == 0)
}

// Clone deep-copies the spec so generator-produced scenarios can mutate
// their schedules independently.
func (s Spec) Clone() Spec {
	c := s
	if s.GatewayChurn != nil {
		ch := *s.GatewayChurn
		c.GatewayChurn = &ch
	}
	c.ReplicaCrashes = append([]Crash(nil), s.ReplicaCrashes...)
	c.LinkFlaps = append([]Flap(nil), s.LinkFlaps...)
	c.LinkSchedule = append([]Transition(nil), s.LinkSchedule...)
	return c
}

// Validate checks internal consistency; index bounds against the actual
// gateway/replica counts are the runner's responsibility (it knows the
// lowered topology).
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if c := s.GatewayChurn; c != nil {
		if c.MeanUpSeconds <= 0 || c.MeanDownSeconds <= 0 {
			return fmt.Errorf("fault: gateway churn means must be > 0 (got up %g, down %g)",
				c.MeanUpSeconds, c.MeanDownSeconds)
		}
		if c.Gateways < 0 {
			return fmt.Errorf("fault: gateway churn gateways must be >= 0, got %d", c.Gateways)
		}
	}
	for i, cr := range s.ReplicaCrashes {
		if cr.Replica < 0 {
			return fmt.Errorf("fault: crash %d: replica must be >= 0, got %d", i, cr.Replica)
		}
		if cr.AtSeconds < 0 || cr.RecoverAfterSeconds < 0 || cr.RequeueDelayMeanSeconds < 0 {
			return fmt.Errorf("fault: crash %d: times must be >= 0", i)
		}
	}
	for i, f := range s.LinkFlaps {
		if f.Gateway < Backhaul {
			return fmt.Errorf("fault: flap %d: gateway must be >= -1, got %d", i, f.Gateway)
		}
		if f.FirstAtSeconds < 0 || f.DownSeconds <= 0 {
			return fmt.Errorf("fault: flap %d: first_at must be >= 0 and down > 0", i)
		}
		if f.PeriodSeconds != 0 && f.PeriodSeconds <= f.DownSeconds {
			return fmt.Errorf("fault: flap %d: period %g must exceed down %g",
				i, f.PeriodSeconds, f.DownSeconds)
		}
	}
	for i, tr := range s.LinkSchedule {
		if tr.Gateway < Backhaul {
			return fmt.Errorf("fault: transition %d: gateway must be >= -1, got %d", i, tr.Gateway)
		}
		if tr.AtSeconds < 0 {
			return fmt.Errorf("fault: transition %d: at must be >= 0", i)
		}
	}
	return nil
}

// Compile lowers the spec to a time-sorted event timeline for one engine
// run: seed drives the churn interval draws (per-gateway substreams via
// rngutil.NewSeeder, so a gateway's timeline is independent of the
// others'), horizonSeconds bounds churn generation, and gateways is the
// lowered topology size. The result is stable-sorted by time, spec order
// breaking ties, and byte-identical across calls with equal inputs.
func Compile(s *Spec, seed int64, horizonSeconds float64, gateways int) []Event {
	return CompileInto(nil, s, seed, horizonSeconds, gateways)
}

// CompileInto is Compile appending into dst's backing array, for callers
// that recompile per run and want to reuse the buffer.
func CompileInto(dst []Event, s *Spec, seed int64, horizonSeconds float64, gateways int) []Event {
	ev := dst[:0]
	if s.IsZero() {
		return ev
	}
	if c := s.GatewayChurn; c != nil && horizonSeconds > 0 {
		n := gateways
		if c.Gateways > 0 && c.Gateways < n {
			n = c.Gateways
		}
		seeder := rngutil.NewSeeder(seed)
		for g := 0; g < n; g++ {
			rng := seeder.NextRand()
			t, up := 0.0, true
			for {
				if up {
					t += rng.ExpFloat64() * c.MeanUpSeconds
				} else {
					t += rng.ExpFloat64() * c.MeanDownSeconds
				}
				if t >= horizonSeconds {
					break
				}
				k := GatewayJoin
				if up {
					k = GatewayLeave
				}
				ev = append(ev, Event{At: t, Kind: k, Target: g})
				up = !up
			}
		}
	}
	for _, cr := range s.ReplicaCrashes {
		d := cr.RequeueDelayMeanSeconds
		if d <= 0 {
			d = DefaultRequeueDelaySeconds
		}
		ev = append(ev, Event{At: cr.AtSeconds, Kind: ReplicaCrash, Target: cr.Replica, RequeueDelaySec: d})
		if cr.RecoverAfterSeconds > 0 {
			ev = append(ev, Event{At: cr.AtSeconds + cr.RecoverAfterSeconds, Kind: ReplicaRecover, Target: cr.Replica})
		}
	}
	for _, f := range s.LinkFlaps {
		start, period := f.FirstAtSeconds, f.PeriodSeconds
		for {
			ev = append(ev,
				Event{At: start, Kind: LinkDown, Target: f.Gateway},
				Event{At: start + f.DownSeconds, Kind: LinkUp, Target: f.Gateway})
			if period <= 0 {
				break
			}
			start += period
			if horizonSeconds > 0 && start >= horizonSeconds {
				break
			}
		}
	}
	for _, tr := range s.LinkSchedule {
		ev = append(ev, Event{
			At: tr.AtSeconds, Kind: LinkSet, Target: tr.Gateway,
			DelaySec: lowerDelay(tr.DelayMS),
			RateBps:  lowerRate(tr.RateGbps),
			LossPct:  tr.LossPct,
		})
	}
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].At < ev[j].At })
	return ev
}

// lowerDelay converts a Transition delay (ms, negative = keep) to
// sim.Link.Reconfigure seconds (negative = keep).
func lowerDelay(ms float64) float64 {
	if ms < 0 {
		return -1
	}
	return ms / 1000
}

// lowerRate converts a Transition rate (Gbps, non-positive = keep) to
// bits/s (non-positive = keep).
func lowerRate(gbps float64) float64 {
	if gbps <= 0 {
		return 0
	}
	return gbps * 1e9
}
