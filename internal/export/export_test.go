package export

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Table III", "Thread pool", "baseline", "preliminary")
	tb.AddRow("HTTP", 40, 54)
	tb.AddRow("User response time", 2.657, 2.484)
	out := tb.String()
	if !strings.Contains(out, "Table III") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "2.657") || !strings.Contains(out, "2.484") {
		t.Errorf("values missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: header and separator same length.
	if len(lines[1]) != len(lines[2]) {
		t.Error("separator not aligned with header")
	}
}

func TestTableRenderRaggedRow(t *testing.T) {
	// A row with more cells than the header used to panic in Render
	// (line() indexed widths[i] unguarded); ragged rows must render.
	tb := NewTable("ragged", "a", "b")
	tb.AddRow("x", "y")
	tb.AddRow("x", "y", "overflow", "more")
	tb.AddRow("short")
	out := tb.String()
	if !strings.Contains(out, "overflow") || !strings.Contains(out, "more") {
		t.Errorf("extra cells missing:\n%s", out)
	}
	if !strings.Contains(out, "short") {
		t.Errorf("short row missing:\n%s", out)
	}
}

func TestTableCSVRaggedRow(t *testing.T) {
	tb := NewTable("ragged", "a", "b")
	tb.AddRow("x", "y", "overflow")
	tb.AddRow("only")
	path := filepath.Join(t.TempDir(), "ragged.csv")
	if err := tb.WriteCSV(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Ragged rows are padded to a common width, so the default strict
	// reader (FieldsPerRecord inferred from the header) must accept the
	// file.
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(rows[0]) != 3 || rows[1][2] != "overflow" ||
		rows[2][0] != "only" || rows[2][2] != "" {
		t.Errorf("csv = %v", rows)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow(1, "x")
	tb.AddRow(2.5, "y")
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := tb.WriteCSV(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0] != "a" || rows[1][0] != "1" || rows[2][1] != "y" {
		t.Errorf("csv = %v", rows)
	}
}

func TestSeriesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "series.csv")
	err := WriteSeriesCSV(path,
		Series{Name: "baseline", X: []float64{80, 120}, Y: []float64{2.657, 3.86}},
		Series{Name: "preliminary", X: []float64{80}, Y: []float64{2.484}},
	)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (header + 3)", len(rows))
	}
	if rows[1][0] != "baseline" || rows[3][0] != "preliminary" {
		t.Errorf("series order wrong: %v", rows)
	}
}

func TestSeriesLengthMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.csv")
	if err := WriteSeriesCSV(path, Series{Name: "x", X: []float64{1}, Y: nil}); err == nil {
		t.Error("ragged series accepted")
	}
}
