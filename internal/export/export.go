// Package export renders experiment results as aligned text tables and CSV
// files — the output format of the benchmark harness that regenerates the
// paper's tables and figures.
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v unless already
// strings.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Ragged rows may carry more cells than the header; cells
			// beyond the last column have no width to align to.
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV stores the table as a CSV file (header row included). Ragged
// rows are padded with empty cells to a common width so strict CSV readers
// (which reject records of varying length) can parse the file.
func (t *Table) WriteCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("export: %w", err)
	}
	defer f.Close()
	width := len(t.Columns)
	for _, r := range t.Rows {
		if len(r) > width {
			width = len(r)
		}
	}
	pad := func(cells []string) []string {
		if len(cells) >= width {
			return cells
		}
		return append(append(make([]string, 0, width), cells...),
			make([]string, width-len(cells))...)
	}
	w := csv.NewWriter(f)
	if err := w.Write(pad(t.Columns)); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	for _, r := range t.Rows {
		if err := w.Write(pad(r)); err != nil {
			return fmt.Errorf("export: %w", err)
		}
	}
	w.Flush()
	return w.Error()
}

// Series is a named (x, y) sequence — one line of a paper figure.
type Series struct {
	Name string
	X, Y []float64
}

// WriteSeriesCSV writes several series as long-format CSV
// (series,x,y rows) so plots can be regenerated externally.
func WriteSeriesCSV(path string, series ...Series) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("export: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"series", "x", "y"}); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("export: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if err := w.Write([]string{s.Name,
				fmt.Sprintf("%g", s.X[i]), fmt.Sprintf("%g", s.Y[i])}); err != nil {
				return fmt.Errorf("export: %w", err)
			}
		}
	}
	w.Flush()
	return w.Error()
}
