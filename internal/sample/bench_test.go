package sample

import (
	"math/rand"
	"testing"
)

func BenchmarkLHS(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		LatinHypercube{}.Sample(r, 45, 4)
	}
}

func BenchmarkSobol(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		Sobol{}.Sample(r, 45, 4)
	}
}

func BenchmarkHalton(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		Halton{}.Sample(r, 45, 4)
	}
}
