// Package sample implements the initial-point generators of the paper's
// Phase II (Surrogate Model Building, step (a)): "a few sample points are
// generated, respecting the upper and lower limits of each optimization
// variable... Sampling methods such as Latin Hypercube Sample or Low
// Discrepancy Sample may be applied."
//
// All samplers produce points in the d-dimensional unit cube [0,1)^d; package
// space maps them onto the actual variable domains.
package sample

import (
	"fmt"
	"math/rand"
)

// Sampler generates n points in the unit hypercube of the given dimension.
type Sampler interface {
	// Sample returns n rows of dim columns, each value in [0,1).
	Sample(r *rand.Rand, n, dim int) [][]float64
	// Name identifies the sampler in reproducibility summaries.
	Name() string
}

// ByName returns the sampler registered under name ("random", "lhs",
// "sobol", "halton", "grid"), mirroring skopt's initial_point_generator
// string option used in Listing 1 of the paper.
func ByName(name string) (Sampler, error) {
	switch name {
	case "random":
		return Random{}, nil
	case "lhs":
		return LatinHypercube{}, nil
	case "sobol":
		return Sobol{}, nil
	case "halton":
		return Halton{}, nil
	case "grid":
		return Grid{}, nil
	default:
		return nil, fmt.Errorf("sample: unknown sampler %q", name)
	}
}

// Random is plain uniform sampling.
type Random struct{}

// Name implements Sampler.
func (Random) Name() string { return "random" }

// Sample implements Sampler.
func (Random) Sample(r *rand.Rand, n, dim int) [][]float64 {
	pts := alloc(n, dim)
	for i := range pts {
		for j := range pts[i] {
			pts[i][j] = r.Float64()
		}
	}
	return pts
}

// LatinHypercube stratifies each dimension into n equal cells and places
// exactly one point per cell per dimension (the "lhs" generator of
// Listing 1). Centered=true uses cell midpoints instead of jittering.
type LatinHypercube struct {
	Centered bool
}

// Name implements Sampler.
func (l LatinHypercube) Name() string {
	if l.Centered {
		return "lhs-centered"
	}
	return "lhs"
}

// Sample implements Sampler.
func (l LatinHypercube) Sample(r *rand.Rand, n, dim int) [][]float64 {
	pts := alloc(n, dim)
	perm := make([]int, n)
	for j := 0; j < dim; j++ {
		for i := range perm {
			perm[i] = i
		}
		r.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		for i := 0; i < n; i++ {
			off := 0.5
			if !l.Centered {
				off = r.Float64()
			}
			pts[i][j] = (float64(perm[i]) + off) / float64(n)
		}
	}
	return pts
}

// Halton is a scrambled Halton low-discrepancy sequence (one prime base per
// dimension, random digit scrambling for robustness in higher dimensions).
type Halton struct {
	// Unscrambled disables digit scrambling, yielding the classic sequence.
	Unscrambled bool
}

// Name implements Sampler.
func (Halton) Name() string { return "halton" }

// Sample implements Sampler.
func (h Halton) Sample(r *rand.Rand, n, dim int) [][]float64 {
	if dim > len(primes) {
		panic(fmt.Sprintf("sample: Halton supports up to %d dimensions, got %d", len(primes), dim))
	}
	pts := alloc(n, dim)
	for j := 0; j < dim; j++ {
		base := primes[j]
		var scramble []int
		if !h.Unscrambled {
			scramble = randomDigitPermutation(r, base)
		}
		for i := 0; i < n; i++ {
			pts[i][j] = radicalInverse(i+1, base, scramble)
		}
	}
	return pts
}

// radicalInverse computes the base-b radical inverse of k, optionally
// applying a digit permutation (scrambling) that fixes 0.
func radicalInverse(k, base int, scramble []int) float64 {
	inv := 0.0
	f := 1.0 / float64(base)
	for k > 0 {
		d := k % base
		if scramble != nil {
			d = scramble[d]
		}
		inv += float64(d) * f
		f /= float64(base)
		k /= base
	}
	return inv
}

// randomDigitPermutation returns a permutation of 0..base-1 fixing 0 (so
// that the sequence stays in [0,1) and retains its net structure).
func randomDigitPermutation(r *rand.Rand, base int) []int {
	p := make([]int, base)
	for i := range p {
		p[i] = i
	}
	// Shuffle digits 1..base-1 only.
	for i := base - 1; i > 1; i-- {
		j := 1 + r.Intn(i)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

var primes = []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113}

// Grid places points on the regular lattice closest in size to n: it uses
// ceil(n^(1/dim)) levels per axis and returns the first n lattice points.
type Grid struct{}

// Name implements Sampler.
func (Grid) Name() string { return "grid" }

// Sample implements Sampler.
func (Grid) Sample(r *rand.Rand, n, dim int) [][]float64 {
	levels := 1
	for pow(levels, dim) < n {
		levels++
	}
	pts := alloc(n, dim)
	idx := make([]int, dim)
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			pts[i][j] = (float64(idx[j]) + 0.5) / float64(levels)
		}
		// Increment mixed-radix counter.
		for j := 0; j < dim; j++ {
			idx[j]++
			if idx[j] < levels {
				break
			}
			idx[j] = 0
		}
	}
	return pts
}

func pow(b, e int) int {
	p := 1
	for i := 0; i < e; i++ {
		p *= b
		if p < 0 { // overflow guard
			return 1 << 62
		}
	}
	return p
}

func alloc(n, dim int) [][]float64 {
	backing := make([]float64, n*dim)
	pts := make([][]float64, n)
	for i := range pts {
		pts[i], backing = backing[:dim:dim], backing[dim:]
	}
	return pts
}
