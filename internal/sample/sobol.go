package sample

import (
	"fmt"
	"math/rand"
)

// Sobol is the Sobol' low-discrepancy sequence with Joe–Kuo direction
// numbers for up to 16 dimensions. Scrambled=true applies a random digital
// shift (XOR scrambling), which preserves the low-discrepancy structure
// while decorrelating repeated runs.
type Sobol struct {
	Scrambled bool
}

// sobolDim holds the primitive-polynomial parameters of one dimension:
// degree s, coefficient bits a, and initial direction numbers m (odd).
type sobolDim struct {
	s int
	a uint32
	m []uint32
}

// Joe–Kuo (new-joe-kuo-6) parameters for dimensions 2..16; dimension 1 is
// the van der Corput sequence in base 2.
var sobolParams = []sobolDim{
	{1, 0, []uint32{1}},
	{2, 1, []uint32{1, 3}},
	{3, 1, []uint32{1, 3, 1}},
	{3, 2, []uint32{1, 1, 1}},
	{4, 1, []uint32{1, 1, 3, 3}},
	{4, 4, []uint32{1, 3, 5, 13}},
	{5, 2, []uint32{1, 1, 5, 5, 17}},
	{5, 4, []uint32{1, 1, 5, 5, 5}},
	{5, 7, []uint32{1, 1, 7, 11, 19}},
	{5, 11, []uint32{1, 1, 5, 1, 1}},
	{5, 13, []uint32{1, 1, 1, 3, 11}},
	{5, 14, []uint32{1, 3, 5, 5, 31}},
	{6, 1, []uint32{1, 3, 3, 9, 7, 49}},
	{6, 13, []uint32{1, 1, 1, 15, 21, 21}},
	{6, 16, []uint32{1, 3, 1, 13, 27, 49}},
}

const sobolBits = 30

// MaxSobolDim is the largest dimension this Sobol implementation supports.
const MaxSobolDim = 16

// Name implements Sampler.
func (s Sobol) Name() string {
	if s.Scrambled {
		return "sobol-scrambled"
	}
	return "sobol"
}

// Sample implements Sampler.
func (s Sobol) Sample(r *rand.Rand, n, dim int) [][]float64 {
	if dim > MaxSobolDim {
		panic(fmt.Sprintf("sample: Sobol supports up to %d dimensions, got %d", MaxSobolDim, dim))
	}
	v := directionNumbers(dim)
	pts := alloc(n, dim)
	shift := make([]uint32, dim)
	if s.Scrambled {
		for j := range shift {
			shift[j] = uint32(r.Int63()) & ((1 << sobolBits) - 1)
		}
	}
	x := make([]uint32, dim)
	scale := 1.0 / float64(uint32(1)<<sobolBits)
	for i := 0; i < n; i++ {
		// Gray-code construction: point i flips the bit at the position of
		// the lowest zero bit of i.
		if i > 0 {
			c := trailingOnes(uint32(i - 1))
			for j := 0; j < dim; j++ {
				x[j] ^= v[j][c]
			}
		}
		for j := 0; j < dim; j++ {
			pts[i][j] = float64(x[j]^shift[j]) * scale
		}
	}
	return pts
}

// trailingOnes returns the number of consecutive 1 bits at the bottom of k,
// i.e. the index of the lowest zero bit.
func trailingOnes(k uint32) int {
	c := 0
	for k&1 == 1 {
		k >>= 1
		c++
	}
	return c
}

// directionNumbers expands the Joe–Kuo parameters into per-dimension
// direction number tables v[j][bit].
func directionNumbers(dim int) [][]uint32 {
	v := make([][]uint32, dim)
	for j := 0; j < dim; j++ {
		vj := make([]uint32, sobolBits)
		if j == 0 {
			for i := 0; i < sobolBits; i++ {
				vj[i] = 1 << (sobolBits - 1 - i)
			}
			v[0] = vj
			continue
		}
		p := sobolParams[j-1]
		for i := 0; i < p.s && i < sobolBits; i++ {
			vj[i] = p.m[i] << (sobolBits - 1 - i)
		}
		for i := p.s; i < sobolBits; i++ {
			vj[i] = vj[i-p.s] ^ (vj[i-p.s] >> p.s)
			for k := 1; k < p.s; k++ {
				if (p.a>>(p.s-1-k))&1 == 1 {
					vj[i] ^= vj[i-k]
				}
			}
		}
		v[j] = vj
	}
	return v
}
