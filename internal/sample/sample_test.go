package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allSamplers() []Sampler {
	return []Sampler{
		Random{},
		LatinHypercube{},
		LatinHypercube{Centered: true},
		Halton{},
		Halton{Unscrambled: true},
		Sobol{},
		Sobol{Scrambled: true},
		Grid{},
	}
}

func TestAllSamplersInUnitCube(t *testing.T) {
	for _, s := range allSamplers() {
		r := rand.New(rand.NewSource(1))
		for _, dim := range []int{1, 2, 4, 8} {
			pts := s.Sample(r, 97, dim)
			if len(pts) != 97 {
				t.Fatalf("%s: got %d points, want 97", s.Name(), len(pts))
			}
			for i, p := range pts {
				if len(p) != dim {
					t.Fatalf("%s: point %d has %d coords, want %d", s.Name(), i, len(p), dim)
				}
				for j, v := range p {
					if v < 0 || v >= 1 {
						t.Fatalf("%s: point %d coord %d = %v outside [0,1)", s.Name(), i, j, v)
					}
				}
			}
		}
	}
}

func TestSamplersDeterministicForSeed(t *testing.T) {
	for _, s := range allSamplers() {
		a := s.Sample(rand.New(rand.NewSource(42)), 33, 3)
		b := s.Sample(rand.New(rand.NewSource(42)), 33, 3)
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("%s: not deterministic at [%d][%d]", s.Name(), i, j)
				}
			}
		}
	}
}

// TestLHSStratification verifies the defining Latin hypercube property:
// exactly one point in each of the n equal-width cells of every dimension.
func TestLHSStratification(t *testing.T) {
	for _, centered := range []bool{false, true} {
		s := LatinHypercube{Centered: centered}
		r := rand.New(rand.NewSource(5))
		n, dim := 45, 4 // the paper's n_initial_points=45
		pts := s.Sample(r, n, dim)
		for j := 0; j < dim; j++ {
			seen := make([]bool, n)
			for i := 0; i < n; i++ {
				cell := int(pts[i][j] * float64(n))
				if cell < 0 || cell >= n {
					t.Fatalf("cell %d out of range", cell)
				}
				if seen[cell] {
					t.Fatalf("centered=%v dim %d: cell %d occupied twice", centered, j, cell)
				}
				seen[cell] = true
			}
		}
	}
}

func TestLHSPropertyAnyN(t *testing.T) {
	s := LatinHypercube{}
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%50) + 1
		pts := s.Sample(rand.New(rand.NewSource(seed)), n, 2)
		for j := 0; j < 2; j++ {
			seen := make([]bool, n)
			for i := 0; i < n; i++ {
				c := int(pts[i][j] * float64(n))
				if c >= n || seen[c] {
					return false
				}
				seen[c] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSobolFirstPoints checks the canonical start of the unscrambled Sobol
// sequence (dimension 1 is van der Corput base 2; dimension 2 per Joe–Kuo).
func TestSobolFirstPoints(t *testing.T) {
	pts := Sobol{}.Sample(rand.New(rand.NewSource(1)), 8, 2)
	wantD1 := []float64{0, 0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125}
	for i, w := range wantD1 {
		if math.Abs(pts[i][0]-w) > 1e-9 {
			t.Errorf("sobol dim1 point %d = %v, want %v", i, pts[i][0], w)
		}
	}
	wantD2 := []float64{0, 0.5, 0.25, 0.75}
	for i, w := range wantD2 {
		if math.Abs(pts[i][1]-w) > 1e-9 {
			t.Errorf("sobol dim2 point %d = %v, want %v", i, pts[i][1], w)
		}
	}
}

// TestSobolBalance: every power-of-two prefix of a Sobol sequence has
// exactly half its points in each half of every axis.
func TestSobolBalance(t *testing.T) {
	pts := Sobol{}.Sample(rand.New(rand.NewSource(1)), 64, 8)
	for j := 0; j < 8; j++ {
		lo := 0
		for i := 0; i < 64; i++ {
			if pts[i][j] < 0.5 {
				lo++
			}
		}
		if lo != 32 {
			t.Errorf("dim %d: %d points below 0.5, want 32", j, lo)
		}
	}
}

func TestSobolScrambledBalance(t *testing.T) {
	pts := Sobol{Scrambled: true}.Sample(rand.New(rand.NewSource(9)), 64, 4)
	for j := 0; j < 4; j++ {
		lo := 0
		for i := 0; i < 64; i++ {
			if pts[i][j] < 0.5 {
				lo++
			}
		}
		if lo != 32 {
			t.Errorf("scrambled dim %d: %d points below 0.5, want 32", j, lo)
		}
	}
}

func TestSobolDimensionLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sobol beyond MaxSobolDim did not panic")
		}
	}()
	Sobol{}.Sample(rand.New(rand.NewSource(1)), 4, MaxSobolDim+1)
}

// TestHaltonFirstPoints checks the classic unscrambled Halton sequence in
// bases 2 and 3.
func TestHaltonFirstPoints(t *testing.T) {
	pts := Halton{Unscrambled: true}.Sample(rand.New(rand.NewSource(1)), 6, 2)
	wantB2 := []float64{0.5, 0.25, 0.75, 0.125, 0.625, 0.375}
	wantB3 := []float64{1. / 3, 2. / 3, 1. / 9, 4. / 9, 7. / 9, 2. / 9}
	for i := range wantB2 {
		if math.Abs(pts[i][0]-wantB2[i]) > 1e-12 {
			t.Errorf("halton b2 point %d = %v, want %v", i, pts[i][0], wantB2[i])
		}
		if math.Abs(pts[i][1]-wantB3[i]) > 1e-12 {
			t.Errorf("halton b3 point %d = %v, want %v", i, pts[i][1], wantB3[i])
		}
	}
}

// TestDiscrepancyOrdering: low-discrepancy sequences should fill space more
// evenly than random sampling. We measure the max deviation between
// empirical and expected counts over axis-aligned anchored boxes in 2D.
func TestDiscrepancyOrdering(t *testing.T) {
	n := 256
	star := func(pts [][]float64) float64 {
		worst := 0.0
		for _, gx := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			for _, gy := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
				cnt := 0
				for _, p := range pts {
					if p[0] < gx && p[1] < gy {
						cnt++
					}
				}
				dev := math.Abs(float64(cnt)/float64(n) - gx*gy)
				if dev > worst {
					worst = dev
				}
			}
		}
		return worst
	}
	r := rand.New(rand.NewSource(3))
	dRandom := star(Random{}.Sample(r, n, 2))
	dSobol := star(Sobol{}.Sample(r, n, 2))
	dHalton := star(Halton{Unscrambled: true}.Sample(r, n, 2))
	if dSobol >= dRandom {
		t.Errorf("sobol discrepancy %v not better than random %v", dSobol, dRandom)
	}
	if dHalton >= dRandom {
		t.Errorf("halton discrepancy %v not better than random %v", dHalton, dRandom)
	}
}

func TestGridCoversLattice(t *testing.T) {
	pts := Grid{}.Sample(rand.New(rand.NewSource(1)), 9, 2)
	// 9 points in 2D: 3x3 lattice at cell midpoints.
	want := []float64{1. / 6, 0.5, 5. / 6}
	seen := map[[2]int]bool{}
	for _, p := range pts {
		var key [2]int
		for j, v := range p {
			found := -1
			for k, w := range want {
				if math.Abs(v-w) < 1e-12 {
					found = k
				}
			}
			if found < 0 {
				t.Fatalf("grid point coord %v not on 3-level lattice", v)
			}
			key[j] = found
		}
		seen[key] = true
	}
	if len(seen) != 9 {
		t.Errorf("grid produced %d distinct lattice cells, want 9", len(seen))
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"random", "lhs", "sobol", "halton", "grid"} {
		s, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if s == nil {
			t.Errorf("ByName(%q) returned nil", name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) did not error")
	}
}
