package plantnet

import "e2clab/internal/sim"

// Calibration fixes the engine model's free parameters. The defaults are
// chosen so the simulated engine matches the paper's measurements in shape
// and approximate magnitude (EXPERIMENTS.md records paper-vs-measured):
//
//   - Baseline (40/40/7/40) at 80 simultaneous requests is HTTP-pool bound:
//     in-engine time ≈ 1.35 s, throughput ≈ 40/1.35 ≈ 30 req/s, user
//     response time ≈ 80/30 ≈ 2.7 s (paper: 2.657 ± 0.091).
//   - The GPU's aggregate inference throughput peaks at GPUSatConcurrency
//     concurrent inferences and degrades slowly beyond it
//     (GPUOversubPenalty), so extract=6 maximizes throughput and
//     extract=7..9 trade latency for nothing — Figure 9's minimum at 6.
//   - Each extract-pool worker pins ExtractThreadCPU cores of busy-polling
//     and tensor-marshaling overhead whether or not an inference is in
//     flight, so extract=8,9 push the CPU to saturation and inflate the
//     simsearch task time — the paper's explanation of Figure 9b/9c.
//   - Simsearch is part CPU (slowed by contention) and part index I/O
//     (not), which yields the ~50-60% simsearch-pool busy time of
//     Figure 9g at 53 threads.
type Calibration struct {
	// CPU work, in core-seconds, of the HTTP-pool tasks of Table I.
	PreProcessWork  sim.Dist
	ProcessWork     sim.Dist
	PostProcessWork sim.Dist

	// DownloadTime is the image-download I/O time; DownloadCPUWeight is the
	// CPU share held while a download is in flight.
	DownloadTime      sim.Dist
	DownloadCPUWeight float64

	// ExtractWork is the DNN inference work in GPU units; the GPU delivers
	// GPURate units/s in aggregate at saturation, reached at
	// GPUSatConcurrency concurrent inferences. Beyond saturation, aggregate
	// throughput degrades by a factor 1/(1 + GPUOversubPenalty*(k-sat)).
	ExtractWork       sim.Dist
	GPURate           float64
	GPUSatConcurrency float64
	GPUOversubPenalty float64
	// ExtractThreadCPU is the pinned per-extract-pool-thread CPU overhead
	// (cores) for busy polling and tensor marshaling.
	ExtractThreadCPU float64

	// Simsearch: CPU phase (contended) followed by index I/O (not).
	SimsearchCPUWork sim.Dist
	SimsearchIOTime  sim.Dist

	// Memory model (GB): static functions of the configuration, matching
	// the paper's observation that GPU and system memory grow with the
	// extract pool size and stay constant during execution.
	GPUMemBaseGB      float64
	GPUMemPerThreadGB float64
	SysMemBaseGB      float64
	SysMemPerExtract  float64
	SysMemPerThread   float64

	// NetworkRTT is the client<->engine round-trip on the testbed network.
	NetworkRTT float64

	// Power model (Watts). Power = idle + slope * utilization, per device.
	// The paper reports a GPU power draw between 50 and 80 W with GPU
	// utilization 35-60% (nvidia-smi's kernels-executing metric); our
	// utilization is delivered-throughput/peak, so the slope is fitted to
	// land in the same band under load.
	GPUIdlePowerW  float64
	GPUPowerSlopeW float64
	CPUIdlePowerW  float64
	CPUPowerSlopeW float64
}

// DefaultCalibration returns the calibration used throughout the
// reproduction.
func DefaultCalibration() Calibration {
	return Calibration{
		PreProcessWork:  sim.LogNormal{MeanV: 0.012, CV: 0.25},
		ProcessWork:     sim.LogNormal{MeanV: 0.035, CV: 0.25},
		PostProcessWork: sim.LogNormal{MeanV: 0.012, CV: 0.25},

		DownloadTime:      sim.LogNormal{MeanV: 0.22, CV: 0.35},
		DownloadCPUWeight: 0.2,

		ExtractWork:       sim.LogNormal{MeanV: 1.0, CV: 0.12},
		GPURate:           33.0,
		GPUSatConcurrency: 6,
		GPUOversubPenalty: 0.04,
		ExtractThreadCPU:  0.9,

		SimsearchCPUWork: sim.LogNormal{MeanV: 0.46, CV: 0.25},
		SimsearchIOTime:  sim.LogNormal{MeanV: 0.33, CV: 0.30},

		GPUMemBaseGB:      1.3,
		GPUMemPerThreadGB: 1.25,
		SysMemBaseGB:      6,
		SysMemPerExtract:  0.5,
		SysMemPerThread:   0.02,

		NetworkRTT: 0.004,

		GPUIdlePowerW:  28,
		GPUPowerSlopeW: 55,
		CPUIdlePowerW:  70,  // 2x Xeon Gold 6126, package idle
		CPUPowerSlopeW: 180, // up to ~250 W at full load
	}
}

// GPUMemGB returns the engine's GPU memory footprint for a configuration.
func (c Calibration) GPUMemGB(cfg PoolConfig) float64 {
	return c.GPUMemBaseGB + c.GPUMemPerThreadGB*float64(cfg.Extract)
}

// SysMemGB returns the engine container's system memory footprint.
func (c Calibration) SysMemGB(cfg PoolConfig) float64 {
	return c.SysMemBaseGB + c.SysMemPerExtract*float64(cfg.Extract) +
		c.SysMemPerThread*float64(cfg.HTTP+cfg.Download+cfg.Simsearch)
}
