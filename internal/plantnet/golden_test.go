package plantnet

import (
	"math"
	"testing"
)

// TestGoldenBitIdentical pins plantnet.Run outputs bit-for-bit against values
// captured from the pre-ladder-calendar kernel (binary event heap, allocating
// sharedJob/request paths, commit 599e73d). The zero-allocation rework of the
// simulation kernel must not change a single bit of any fixed-seed result:
// event firing order is (time, seq), RNG draws happen at the same program
// points, and all floating-point accumulations keep their order. If this test
// fails, the kernel's determinism contract is broken — do not "update" the
// values without understanding exactly which reordering caused the drift.
func TestGoldenBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		opts RunOptions

		completed            int
		respMean, respStd    float64
		p50, p95, p99        float64
		throughput           float64
		cpuUtil, gpuUtil     float64
		extractBusy, energyJ float64
		extractTaskMean      float64
		nSamples             int
	}{
		{
			name:      "baseline80",
			opts:      RunOptions{Pools: Baseline, Clients: 80, Duration: 200, Seed: 7},
			completed: 5957,
			respMean:  2.6661163636455987, respStd: 0.017318058883301259,
			p50: 2.6535093224944006, p95: 3.016898252596897, p99: 3.1954097412446147,
			throughput: 30, cpuUtil: 0.95392777774525928, gpuUtil: 0.90917691187082017,
			extractBusy: 0.89524800186839915, energyJ: 10.657057671568056,
			extractTaskMean: 0.20892385530610758, nSamples: 13,
		},
		{
			name:      "prelim120",
			opts:      RunOptions{Pools: PreliminaryOptimum, Clients: 120, Duration: 150, Seed: 3},
			completed: 4719,
			respMean:  3.7881800186326182, respStd: 0.019137368474954442,
			p50: 3.7799589872359576, p95: 4.1276176571516316, p99: 4.2914015519222142,
			throughput: 31.712499999999999, cpuUtil: 0.98672745913812698, gpuUtil: 0.9615384615384589,
			extractBusy: 1.0000000000000067, energyJ: 10.358551297736796,
			extractTaskMean: 0.22081591637258235, nSamples: 8,
		},
		{
			name:      "openloop",
			opts:      RunOptions{Pools: Baseline, OpenLoopRate: 12, Duration: 120, Seed: 11, Replicas: 2, TraceRequests: 4},
			completed: 1411,
			respMean:  1.2640183769295184, respStd: 0.01529409463394767,
			p50: 1.2513409557620747, p95: 1.550994470016287, p99: 1.7176824037469938,
			throughput: 11.960000000000001, cpuUtil: 0.40428531335637152, gpuUtil: 0.18350911986641405,
			extractBusy: 0.15729353131406901, energyJ: 30.24487591919727,
			extractTaskMean: 0.1835152950009338, nSamples: 5,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := Run(c.opts)
			if err != nil {
				t.Fatal(err)
			}
			if m.Completed != c.completed {
				t.Errorf("Completed = %d, want %d", m.Completed, c.completed)
			}
			if len(m.Samples) != c.nSamples {
				t.Errorf("len(Samples) = %d, want %d", len(m.Samples), c.nSamples)
			}
			exact := func(field string, got, want float64) {
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("%s = %.17g, want %.17g (bit-exact)", field, got, want)
				}
			}
			exact("UserResponseTime.Mean", m.UserResponseTime.Mean, c.respMean)
			exact("UserResponseTime.StdDev", m.UserResponseTime.StdDev, c.respStd)
			exact("RespP50", m.RespP50, c.p50)
			exact("RespP95", m.RespP95, c.p95)
			exact("RespP99", m.RespP99, c.p99)
			exact("Throughput", m.Throughput, c.throughput)
			exact("CPUUtil.Mean", m.CPUUtil.Mean, c.cpuUtil)
			exact("GPUUtil.Mean", m.GPUUtil.Mean, c.gpuUtil)
			exact("ExtractBusy.Mean", m.ExtractBusy.Mean, c.extractBusy)
			exact("EnergyPerRequestJ", m.EnergyPerRequestJ, c.energyJ)
			exact("TaskTimes[extract].Mean", m.TaskTimes["extract"].Mean, c.extractTaskMean)
		})
	}
}
