package plantnet

// Resilience policies: RunOptions.Resilience compiles at setup into the
// flattened engine fields and the pre-bound retry/hedge continuations on
// each request node — no steady-state closures, no allocations on the
// retry/hedge/reroute paths. A node is one ARM (an attempt in flight);
// the logical request is its primary arm, which a hedge arm points back
// to via pri. Arms are checked against the policy at the pipeline
// checkpoints (arrival, HTTP grant, uplink/downlink hops, completion);
// between checkpoints they run the exact unpolicied pipeline.
//
// Determinism: every policy draw (retry jitter) comes from the request's
// own SplitMix64 substream derived arithmetically from (Seed, serial) —
// resilience never touches e.rng, e.netRng or e.faultRng, so a policied
// run sees the identical fault timeline and service-time draws the
// unpolicied run does (apples-to-apples availability comparisons), and a
// policy-free run consumes zero extra randomness.

import (
	"fmt"
	"math"

	"e2clab/internal/resilience"
	"e2clab/internal/sim"
)

// Per-replica circuit-breaker states.
const (
	brkClosed uint8 = iota
	brkOpen
	brkHalfOpen
	brkProbing
)

// setupResilience validates the policy against the prepared topology and
// flattens it into engine fields. Called from run() on a prepared engine
// (cold path — setup allocations are fine).
func (e *engine) setupResilience(opts RunOptions) error {
	p := opts.Resilience
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Failover && e.net == nil {
		return fmt.Errorf("plantnet: failover routing requires a simulated network model")
	}
	e.resTimeout = math.Inf(1)
	if p.TimeoutSeconds > 0 {
		e.resTimeout = p.TimeoutSeconds
	}
	e.resRetryMax, e.resRetryBase, e.resRetryCap = 0, 0, 0
	if r := p.Retry; r != nil {
		e.resRetryMax = int32(r.Max)
		e.resRetryBase = r.Base()
		e.resRetryCap = r.Cap()
	}
	e.resHedgeOn = p.Hedge != nil
	e.resHedgeQ = 0
	e.resHedgeDelay = math.Inf(1) // dormant until a delay is known
	if h := p.Hedge; h != nil {
		e.resHedgeQ = h.Quantile
		if h.DelaySeconds > 0 {
			e.resHedgeDelay = h.DelaySeconds
		}
	}
	e.resBrkThresh, e.resBrkOpen = 0, 0
	if b := p.Breaker; b != nil {
		e.resBrkThresh = int32(b.FailureThreshold)
		e.resBrkOpen = b.Open()
		e.brkFails = resetInt32s(e.brkFails, len(e.reps))
		e.brkState = resetUint8s(e.brkState, len(e.reps))
		e.brkUntil = resetFloat64s(e.brkUntil, len(e.reps))
	}
	e.resFailover = p.Failover
	e.resShedDepth = 0
	if s := p.Shed; s != nil {
		e.resShedDepth = s.QueueDepth
	}
	e.resSeedBase = resilience.SubstreamBase(opts.Seed)
	if p.Failover {
		// Gateway -> class bookkeeping for nearest-same-class failover;
		// buildNetState appends gateways in class declaration order.
		ngw := len(e.net.paths)
		nc := len(opts.Network.Classes)
		e.gwClass = resetInt32s(e.gwClass, ngw)
		e.classLo = resetInt32s(e.classLo, nc)
		e.classHi = resetInt32s(e.classHi, nc)
		g := 0
		for ci := range opts.Network.Classes {
			e.classLo[ci] = int32(g)
			for k := 0; k < opts.Network.Classes[ci].Gateways && g < ngw; k++ {
				e.gwClass[g] = int32(ci)
				g++
			}
			e.classHi[ci] = int32(g)
		}
	}
	return nil
}

// resetInt32s returns a length-n zeroed slice reusing s's capacity.
func resetInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// resetUint8s returns a length-n zeroed slice reusing s's capacity.
func resetUint8s(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// resetFloat64s returns a length-n zeroed slice reusing s's capacity.
func resetFloat64s(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// initArm resets a node's policy bookkeeping and derives its private
// jitter substream — pure arithmetic, zero stream draws, so policied
// runs do not perturb the engine RNGs.
//
//simlint:noalloc per-arm policy initialization on the request hot path
func (e *engine) initArm(req *request) {
	e.resSerial++
	req.rstate = resilience.RequestState(e.resSeedBase, e.resSerial)
	req.attempts = 0
	req.arms = 1
	req.won = false
	req.retried = false
	req.pri = nil
	req.prevDelay = e.resRetryBase
	req.deadline = math.Inf(1)
	req.hedgeEv = sim.Event{}
}

// armRequest stamps a freshly dispatched arm's per-attempt deadline and
// (primary arms only) arms the hedge-launch timer.
//
//simlint:noalloc arm deadline/hedge arming on the request hot path
func (e *engine) armRequest(req *request) {
	req.deadline = e.sim.Now() + e.resTimeout
	if e.resHedgeOn && req.pri == nil {
		e.armHedge(req)
	}
}

//simlint:noalloc hedge timer arming on the request hot path
func (e *engine) armHedge(p *request) {
	d := e.resHedgeDelay
	if math.IsInf(d, 1) {
		return
	}
	p.hedgeEv = e.sim.Schedule(d, p.hedgeFn)
}

// lostArm reports whether req belongs to a logical request that already
// completed through another arm.
//
//simlint:noalloc arm state check on the request hot path
func (e *engine) lostArm(req *request) bool {
	if req.pri != nil {
		return req.pri.won
	}
	return req.won
}

// arriveGuard runs at a resilient arm's arrival checkpoint: losers tear
// down, late arms fail the deadline (feeding the breaker), and arrivals
// above the shed watermark are rejected. True means the arm was
// consumed.
//
//simlint:noalloc resilience arrival checkpoint on the request hot path
func (e *engine) arriveGuard(req *request) bool {
	if e.lostArm(req) {
		e.resolveArm(req)
		return true
	}
	if e.sim.Now() > req.deadline {
		e.cDeadline++
		e.brkFail(req.repIdx)
		e.resolveArm(req)
		return true
	}
	if e.resShedDepth > 0 && req.rep.http.Queued() >= e.resShedDepth {
		e.cShed++
		e.resolveArm(req)
		return true
	}
	return false
}

// grantGuard runs when a resilient arm is granted its HTTP slot: losers
// and deadline-exceeded arms give the slot straight back.
//
//simlint:noalloc resilience grant checkpoint on the request hot path
func (e *engine) grantGuard(req *request) bool {
	lost := e.lostArm(req)
	if !lost && e.sim.Now() <= req.deadline {
		return false
	}
	req.rep.http.Release()
	e.untrack(req)
	if !lost {
		e.cDeadline++
		e.brkFail(req.repIdx)
	}
	e.resolveArm(req)
	return true
}

// netUpGuard runs at every uplink hop: losers tear down, late arms fail
// the deadline, and arms headed at a departed gateway fail over to a
// same-class survivor (re-traversing the surviving uplink from hop 0 —
// the re-routed cost) or fail the arm.
//
//simlint:noalloc resilience uplink checkpoint on the request hot path
func (e *engine) netUpGuard(req *request) bool {
	if e.lostArm(req) {
		e.resolveArm(req)
		return true
	}
	if e.sim.Now() > req.deadline {
		e.cDeadline++
		e.brkFail(req.repIdx)
		e.resolveArm(req)
		return true
	}
	if e.faultsOn && e.gwDown[req.gw] {
		if e.resFailover && e.rerouteGateway(req) {
			req.netUp()
			return true
		}
		e.cGatewayFail++
		e.resolveArm(req)
		return true
	}
	return false
}

// netDownGuard is netUpGuard for the response path. The deadline is not
// re-checked once service completed — a late response still completes
// (it just misses the goodput SLO); a departed gateway re-routes the
// response through a survivor or fails the arm.
//
//simlint:noalloc resilience downlink checkpoint on the request hot path
func (e *engine) netDownGuard(req *request) bool {
	if e.lostArm(req) {
		e.resolveArm(req)
		return true
	}
	if e.faultsOn && e.gwDown[req.gw] {
		if e.resFailover && e.rerouteGateway(req) {
			req.netDown()
			return true
		}
		e.cGatewayFail++
		e.resolveArm(req)
		return true
	}
	return false
}

// resolveArm retires one arm. Hedge arms recycle immediately; when the
// last arm of a logical request retires, the request either finishes
// (winner already accounted) or enters the retry/terminal-failure path.
//
//simlint:noalloc arm teardown on the request hot path
func (e *engine) resolveArm(req *request) {
	if e.shRole == shCore {
		// On the core every arm is independent (pri == nil, won never
		// latched), so a resolving arm is always a genuine failure of one
		// crossing: report it to the owning domain, which runs the
		// win/retry/hedge bookkeeping.
		e.coreEmitFail(req)
		return
	}
	p := req.pri
	if p != nil {
		req.pri = nil
		e.freeReqs = append(e.freeReqs, req)
	} else {
		p = req
	}
	p.arms--
	if p.arms > 0 {
		return
	}
	p.hedgeEv.Cancel() // no pending hedge may outlive the logical request
	if p.won {
		e.freeReqs = append(e.freeReqs, p)
		return
	}
	e.failLogical(p)
}

// failLogical handles a logical request whose every arm failed: retry
// with decorrelated-jitter backoff while attempts remain, else count a
// terminal failure (a closed-loop client then issues a fresh request —
// through the managed round-robin, so it parks if nothing is alive).
//
//simlint:noalloc retry/terminal-failure path (request hot path)
func (e *engine) failLogical(p *request) {
	p.hedgeEv.Cancel()
	if p.attempts < e.resRetryMax {
		p.attempts++
		p.retried = true
		p.arms = 1
		e.cRetries++
		d := resilience.NextBackoff(&p.rstate, e.resRetryBase, e.resRetryCap, p.prevDelay)
		p.prevDelay = d
		e.sim.Schedule(d, p.retryFn)
		return
	}
	e.cFailed++
	e.freeReqs = append(e.freeReqs, p)
	if !e.openLoop {
		e.submit()
	}
}

// redispatch re-issues a logical request after its backoff: a fresh
// attempt on a live replica/gateway chosen at fire time. With nothing
// alive the attempt is spent immediately (bounded by Retry.Max).
//
//simlint:noalloc retry redispatch (event path)
func (e *engine) redispatch(p *request) {
	if e.faultsOn && e.repDownCount >= e.repCount() {
		e.failLogical(p)
		return
	}
	if e.net != nil && e.faultsOn && e.gwDownCount >= len(e.net.paths) {
		e.failLogical(p)
		return
	}
	if e.shRole != shDomain {
		idx := e.pickReplica()
		p.rep = e.reps[idx]
		p.repIdx = int32(idx)
	}
	p.tasks = [9]float64{}
	e.dispatchArm(p)
}

// dispatchArm arms and routes one attempt (retry or hedge) through the
// network or the analytical half-RTT, exactly like a fresh submission.
//
//simlint:noalloc arm dispatch (request hot path)
func (e *engine) dispatchArm(req *request) {
	e.armRequest(req)
	if e.net != nil {
		if req.netUp == nil {
			req.bindNet() //simlint:allow noallocclosure bindNet is the //go:noinline lazy closure-build cold path
		}
		g := e.pickGateway()
		req.path = &e.net.paths[g]
		req.gw = int32(g)
		req.hop = 0
		req.netUp()
		return
	}
	e.sim.Schedule(e.cal.NetworkRTT/2, req.arrive)
}

// launchHedge fires when a primary arm's hedge timer expires: if the
// logical request is still undecided and capacity exists, a duplicate
// arm launches on (preferably) another replica; first response wins.
//
//simlint:noalloc hedge launch (event path)
func (e *engine) launchHedge(p *request) {
	if p.won || p.arms != 1 {
		return
	}
	if e.faultsOn && e.repDownCount >= e.repCount() {
		return
	}
	if e.net != nil && e.faultsOn && e.gwDownCount >= len(e.net.paths) {
		return
	}
	if e.shRole == shDomain {
		// The replica is picked by the core at crossing arrival; the hedge
		// message carries the primary's token so the core can prefer a
		// different replica than the primary's.
		h := e.newRequest(nil) //simlint:allow noallocclosure newRequest is the freelist refill point; its cold-branch build is the sanctioned allocation site
		h.repIdx = -1
		h.pri = p
		p.arms = 2
		e.cHedges++
		e.dispatchArm(h)
		return
	}
	idx := e.pickReplicaNot(int(p.repIdx))
	h := e.newRequest(e.reps[idx]) //simlint:allow noallocclosure newRequest is the freelist refill point; its cold-branch build is the sanctioned allocation site
	h.repIdx = int32(idx)
	h.pri = p
	p.arms = 2
	e.cHedges++
	e.dispatchArm(h)
}

// pickReplicaNot prefers a replica other than avoid (one extra
// round-robin advance when the first pick collides).
//
//simlint:noalloc hedge replica selection (event path)
func (e *engine) pickReplicaNot(avoid int) int {
	idx := e.pickReplica()
	if idx != avoid {
		return idx
	}
	return e.pickReplica()
}

// finishResilient is the completion checkpoint: the first arm of a
// logical request to finish wins — accounting happens exactly once, on
// the primary's clock — and every other arm tears down at its next
// checkpoint. Mirrors the unpolicied finish accounting bit-for-bit.
//
//simlint:noalloc resilience completion path (request hot path)
func (e *engine) finishResilient(req *request) {
	p := req.pri
	hedgeArm := p != nil
	if !hedgeArm {
		p = req
	}
	if p.won {
		e.resolveArm(req)
		return
	}
	p.won = true
	p.hedgeEv.Cancel()
	if hedgeArm {
		e.cHedgeWins++
	}
	if p.retried {
		e.cRetrySucc++
	}
	e.brkOk(req.repIdx)
	e.completed++
	resp := e.sim.Now() - p.start
	if resp <= e.resTimeout {
		e.goodDone++
	}
	e.windowResp.Add(resp)
	if e.warmupDone {
		e.respRes.Add(resp)
		if len(e.traces) < e.traceN {
			e.traces = append(e.traces, RequestTrace{
				Start: p.start, Response: resp, Tasks: req.tasks,
			})
		}
	}
	// Recycle before resubmitting so a closed-loop client reuses its own
	// node immediately (matching the unpolicied finish).
	e.resolveArm(req)
	if !e.openLoop {
		e.submit()
	}
}

// crashArm is the per-arm crash outcome under a policy: losers just tear
// down, arms with no survivor fail (retryably), rescued arms requeue on
// a survivor after the seeded failover delay — keeping their deadline,
// so a slow failover can still time out.
//
//simlint:noalloc crash handling under a policy (event path)
func (e *engine) crashArm(req *request, alive bool, meanDelay float64) {
	if e.lostArm(req) {
		e.resolveArm(req)
		return
	}
	if !alive {
		e.cCrashFail++
		e.resolveArm(req)
		return
	}
	e.cCrashReq++
	req.tasks = [9]float64{}
	e.reassign(req)
	e.sim.Schedule(e.faultRng.ExpFloat64()*meanDelay, req.arrive)
}

// brkSkip reports whether the routing round-robin should pass over
// replica idx: open circuits reject until their window elapses (the
// first arrival after that becomes the half-open probe), and a probing
// circuit admits nothing else until the probe resolves.
//
//simlint:noalloc breaker routing check (request hot path)
func (e *engine) brkSkip(idx int) bool {
	switch e.brkState[idx] {
	case brkOpen:
		if e.sim.Now() >= e.brkUntil[idx] {
			e.brkState[idx] = brkHalfOpen
			return false
		}
		return true
	case brkProbing:
		return true
	}
	return false
}

// brkFail records a deadline failure against a replica: threshold
// consecutive failures open the circuit; a failed half-open probe
// re-opens it.
//
//simlint:noalloc breaker failure accounting (request hot path)
func (e *engine) brkFail(ri int32) {
	if e.resBrkThresh == 0 {
		return
	}
	i := int(ri)
	switch e.brkState[i] {
	case brkClosed:
		e.brkFails[i]++
		if e.brkFails[i] >= e.resBrkThresh {
			e.brkFails[i] = 0
			e.brkState[i] = brkOpen
			e.brkUntil[i] = e.sim.Now() + e.resBrkOpen
			e.cBrkOpens++
		}
	case brkHalfOpen, brkProbing:
		e.brkState[i] = brkOpen
		e.brkUntil[i] = e.sim.Now() + e.resBrkOpen
		e.cBrkOpens++
	}
}

// brkOk records a completed request against a replica: any success
// closes the circuit and clears the consecutive-failure count.
//
//simlint:noalloc breaker success accounting (request hot path)
func (e *engine) brkOk(ri int32) {
	if e.resBrkThresh == 0 {
		return
	}
	i := int(ri)
	e.brkFails[i] = 0
	e.brkState[i] = brkClosed
}

// nearestSameClass scans outward from gateway g for the nearest live
// gateway in the same network class; -1 when the whole class is down.
//
//simlint:noalloc failover routing (request hot path)
func (e *engine) nearestSameClass(g int) int {
	c := e.gwClass[g]
	lo, hi := int(e.classLo[c]), int(e.classHi[c])
	for d := 1; ; d++ {
		l, r := g-d, g+d
		if l < lo && r >= hi {
			return -1
		}
		if l >= lo && !e.gwDown[l] {
			return l
		}
		if r < hi && !e.gwDown[r] {
			return r
		}
	}
}

// rerouteGateway re-points an in-flight arm at the nearest surviving
// same-class gateway and restarts the current leg from hop 0 — the
// re-routed uplink cost is paid in full.
//
//simlint:noalloc failover re-route of an in-flight arm (request hot path)
func (e *engine) rerouteGateway(req *request) bool {
	s := e.nearestSameClass(int(req.gw))
	if s < 0 {
		return false
	}
	e.cRerouted++
	req.gw = int32(s)
	req.path = &e.net.paths[s]
	req.hop = 0
	return true
}
