package plantnet

// Fault injection: RunOptions.Faults compiles to a flat event timeline
// (internal/fault) that is scheduled on the calendar at setup. Because
// setup-scheduled events carry the lowest sequence numbers at their
// instant, a fault event fires before any same-instant pipeline event —
// so when a crash handler runs, no pending same-instant pool grant or
// completion exists and the wholesale Pool.Crash/SharedResource.Crash +
// in-flight requeue is exact. All stochastic fault behavior (churn
// intervals, failover delays) draws from dedicated streams derived from
// the run seed (+307 compile, +313 failover), so a non-faulted run's RNG
// consumption — and therefore every existing golden — is untouched.

import (
	"fmt"

	"e2clab/internal/fault"
	"e2clab/internal/rngutil"
	"e2clab/internal/sim"
)

// setupFaults validates the spec against the prepared topology, compiles
// the timeline, and schedules it. Called from run() on a prepared engine.
func (e *engine) setupFaults(opts RunOptions) error {
	spec := opts.Faults
	if err := spec.Validate(); err != nil {
		return err
	}
	ngw := 0
	if e.net != nil {
		ngw = len(e.net.paths)
	}
	checkLinkTarget := func(g int, what string) error {
		if g == fault.Backhaul {
			if len(e.net.backhaul) == 0 {
				return fmt.Errorf("plantnet: %s targets the backhaul, but the model has no backhaul links", what)
			}
			return nil
		}
		if g >= ngw {
			return fmt.Errorf("plantnet: %s targets gateway %d of %d", what, g, ngw)
		}
		if own := e.net.own[g]; own[0] == nil && own[1] == nil {
			return fmt.Errorf("plantnet: %s targets gateway %d, whose class has no dedicated uplink", what, g)
		}
		return nil
	}
	if !spec.IsZero() {
		if spec.GatewayChurn != nil && e.net == nil {
			return fmt.Errorf("plantnet: gateway churn requires a simulated network model")
		}
		if (len(spec.LinkFlaps) > 0 || len(spec.LinkSchedule) > 0) && e.net == nil {
			return fmt.Errorf("plantnet: link flaps/schedules require a simulated network model")
		}
		for _, cr := range spec.ReplicaCrashes {
			if cr.Replica >= len(e.reps) {
				return fmt.Errorf("plantnet: crash targets replica %d of %d", cr.Replica, len(e.reps))
			}
		}
		for _, f := range spec.LinkFlaps {
			if err := checkLinkTarget(f.Gateway, "link flap"); err != nil {
				return err
			}
		}
		for _, tr := range spec.LinkSchedule {
			if err := checkLinkTarget(tr.Gateway, "link transition"); err != nil {
				return err
			}
		}
	}

	if opts.FaultTimeline != nil {
		// A pre-compiled window of a wall-clock timeline (fault.Windows)
		// or an explicit test schedule: validate targets, schedule
		// verbatim.
		for i := range opts.FaultTimeline {
			ev := &opts.FaultTimeline[i]
			switch ev.Kind {
			case fault.GatewayLeave, fault.GatewayJoin:
				if e.net == nil || ev.Target >= ngw {
					return fmt.Errorf("plantnet: timeline event %d targets gateway %d of %d", i, ev.Target, ngw)
				}
			case fault.ReplicaCrash, fault.ReplicaRecover:
				if ev.Target >= len(e.reps) {
					return fmt.Errorf("plantnet: timeline event %d targets replica %d of %d", i, ev.Target, len(e.reps))
				}
			case fault.LinkDown, fault.LinkUp, fault.LinkSet:
				if e.net == nil {
					return fmt.Errorf("plantnet: timeline event %d needs a simulated network model", i)
				}
				if err := checkLinkTarget(ev.Target, "timeline event"); err != nil {
					return err
				}
			}
		}
		e.faultEvents = append(e.faultEvents[:0], opts.FaultTimeline...)
	} else {
		e.faultEvents = fault.CompileInto(e.faultEvents, spec, opts.Seed+307, opts.Duration, ngw)
	}
	if e.faultRng == nil {
		e.faultRng = rngutil.New(opts.Seed + 313)
	} else {
		e.faultRng.Seed(opts.Seed + 313)
	}
	e.gwDown = resetBools(e.gwDown, ngw)
	e.repDown = resetBools(e.repDown, len(e.reps))
	if e.faultStepFn == nil {
		e.faultStepFn = e.faultStep
	}
	for i := range e.faultEvents {
		e.sim.At(e.faultEvents[i].At, e.faultStepFn)
	}
	return nil
}

// resetBools returns a length-n all-false slice reusing b's capacity.
func resetBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// faultStep dispatches the next timeline event. Events are scheduled in
// timeline order at setup, so same-instant events fire in timeline order
// and a single cursor tracks which one is due — one bound closure total,
// zero allocations per event.
//
//simlint:noalloc fault event dispatch (PR 7 contract)
func (e *engine) faultStep() {
	ev := &e.faultEvents[e.faultCursor]
	e.faultCursor++
	switch ev.Kind {
	case fault.GatewayLeave:
		if !e.gwDown[ev.Target] {
			e.gwDown[ev.Target] = true
			e.gwDownCount++
		}
	case fault.GatewayJoin:
		if e.gwDown[ev.Target] {
			e.gwDown[ev.Target] = false
			e.gwDownCount--
			e.drainParked()
		}
	case fault.ReplicaCrash:
		if e.shRole == shDomain {
			e.mirrorReplica(ev.Target, true)
			return
		}
		e.crashReplica(ev.Target, ev.RequeueDelaySec)
	case fault.ReplicaRecover:
		if e.shRole == shDomain {
			e.mirrorReplica(ev.Target, false)
			return
		}
		e.recoverReplica(ev.Target)
	case fault.LinkDown, fault.LinkUp, fault.LinkSet:
		e.applyLinkEvent(ev)
	}
}

// crashReplica kills replica ri: all in-service work is dropped wholesale
// (Pool.Crash / SharedResource.Crash keep the monitoring integrals), then
// every in-flight request is requeued on a surviving replica after a
// seeded exponential failover delay of mean meanDelay — or counted as
// lost when no replica survives.
//
//simlint:noalloc fault event path (crash/failover, PR 7 contract)
func (e *engine) crashReplica(ri int, meanDelay float64) {
	if e.repDown[ri] {
		return
	}
	rep := e.reps[ri]
	e.repDown[ri] = true
	e.repDownCount++
	rep.cpu.Crash()
	rep.gpu.Crash()
	rep.http.Crash()
	rep.dl.Crash()
	rep.ex.Crash()
	rep.ss.Crash()
	alive := e.repDownCount < len(e.reps)
	for i, req := range rep.inflight {
		rep.inflight[i] = nil
		req.timer.Cancel() // pending download / simsearch-IO stage timer
		req.ifIdx = -1
		if e.resOn {
			e.crashArm(req, alive, meanDelay)
			continue
		}
		if !alive {
			e.cCrashFail++
			if e.shRole == shCore {
				// Sharded: the loss crosses back to the owning domain,
				// which does the cFailed accounting and parks its client.
				e.coreEmitFail(req)
				continue
			}
			e.cFailed++
			e.freeReqs = append(e.freeReqs, req)
			if !e.openLoop {
				e.parked++
			}
			continue
		}
		e.cCrashReq++
		req.tasks = [9]float64{}
		e.reassign(req)
		e.sim.Schedule(e.faultRng.ExpFloat64()*meanDelay, req.arrive)
	}
	rep.inflight = rep.inflight[:0]
}

// recoverReplica brings replica ri back empty: pools and resources were
// left clean by Crash, the pinned extract-thread hold is re-added, and
// parked closed-loop clients resume.
//
//simlint:noalloc fault event path (crash/failover, PR 7 contract)
func (e *engine) recoverReplica(ri int) {
	if !e.repDown[ri] {
		return
	}
	e.repDown[ri] = false
	e.repDownCount--
	e.reps[ri].cpu.AddHold(e.extractHold)
	e.drainParked()
}

// applyLinkEvent applies a link transition to the target domain: the
// shared backhaul (both directions) or one gateway's dedicated uplink
// pair.
//
//simlint:noalloc fault event path (link schedules, PR 7 contract)
func (e *engine) applyLinkEvent(ev *fault.Event) {
	if ev.Target == fault.Backhaul {
		for _, l := range e.net.backhaul {
			e.transitionLink(l, ev)
		}
		return
	}
	own := e.net.own[ev.Target]
	if own[0] != nil {
		e.transitionLink(own[0], ev)
	}
	if own[1] != nil {
		e.transitionLink(own[1], ev)
	}
}

//simlint:noalloc fault event path (link schedules, PR 7 contract)
func (e *engine) transitionLink(l *sim.Link, ev *fault.Event) {
	switch ev.Kind {
	case fault.LinkDown:
		l.Reconfigure(-1, 0, 100)
	case fault.LinkUp:
		l.Restore()
	case fault.LinkSet:
		l.Reconfigure(ev.DelaySec, ev.RateBps, ev.LossPct)
	}
}

// admit gates a request's arrival at its replica when faults are active:
// a request bound for a dead replica is reassigned to a survivor (or
// counted lost and, closed-loop, parked); admitted requests enter the
// replica's in-flight set.
//
//simlint:noalloc fault bookkeeping on the request hot path (PR 7 contract)
func (e *engine) admit(req *request) bool {
	if e.repDown[req.repIdx] {
		if e.repDownCount >= len(e.reps) {
			e.cCrashFail++
			if e.resOn {
				e.resolveArm(req)
				return false
			}
			if e.shRole == shCore {
				e.coreEmitFail(req)
				return false
			}
			e.cFailed++
			e.freeReqs = append(e.freeReqs, req)
			if !e.openLoop {
				e.parked++
			}
			return false
		}
		e.reassign(req)
	}
	req.ifIdx = int32(len(req.rep.inflight))
	req.rep.inflight = append(req.rep.inflight, req)
	return true
}

// reassign points req at the next live replica in round-robin order.
// Callers guarantee at least one replica is alive.
//
//simlint:noalloc fault event path (crash/failover, PR 7 contract)
func (e *engine) reassign(req *request) {
	n := len(e.reps)
	idx := e.next % n
	for e.repDown[idx] {
		e.next++
		idx = e.next % n
	}
	e.next++
	req.rep = e.reps[idx]
	req.repIdx = int32(idx)
}

// untrack removes req from its replica's in-flight set (swap-remove).
//
//simlint:noalloc fault bookkeeping on the request hot path (PR 7 contract)
func (e *engine) untrack(req *request) {
	if req.ifIdx < 0 {
		return
	}
	rep := req.rep
	last := len(rep.inflight) - 1
	moved := rep.inflight[last]
	rep.inflight[req.ifIdx] = moved
	moved.ifIdx = req.ifIdx
	rep.inflight[last] = nil
	rep.inflight = rep.inflight[:last]
	req.ifIdx = -1
}

// failGateway fails a request whose gateway departed while it was in
// flight — the churn outcome with its own Metrics counter. The node
// recycles immediately and a closed-loop client retries through the
// (live-gateway) round-robin at once; requests on the up leg never
// reached the replica, and requests on the down leg already left it, so
// no replica resources are held at this point.
//
//simlint:noalloc fault event path (gateway churn, PR 7 contract)
func (e *engine) failGateway(req *request) {
	e.cGatewayFail++
	if e.shRole == shCore {
		// Sharded: the core detected the churn (global gwDown mirror); the
		// owning domain does the cFailed accounting and client resubmit.
		e.coreEmitFail(req)
		return
	}
	e.cFailed++
	e.freeReqs = append(e.freeReqs, req)
	if !e.openLoop {
		e.submit()
	}
}

// submitManaged is submit() under a fault schedule and/or a resilience
// policy: the replica round-robin skips dead replicas and open circuit
// breakers, the gateway round-robin skips departed gateways (failing
// over to a same-class survivor when the policy routes around churn),
// and new arms are deadline/hedge-armed. With nothing alive the arrival
// is dropped (open loop) or the client parks until the next join or
// recovery drains it. With faults on and no policy this is
// branch-for-branch the PR 7 submitFaulted.
//
//simlint:noalloc fault/policy-aware request submission
func (e *engine) submitManaged() {
	n := len(e.reps)
	if e.faultsOn && e.repDownCount >= n {
		e.dropArrival()
		return
	}
	idx := e.pickReplica()
	if e.net != nil {
		if e.faultsOn && e.gwDownCount >= len(e.net.paths) {
			e.dropArrival()
			return
		}
		g := e.pickGateway()
		req := e.newRequest(e.reps[idx]) //simlint:allow noallocclosure newRequest is the freelist refill point; its cold-branch build is the sanctioned allocation site
		req.repIdx = int32(idx)
		if req.netUp == nil {
			req.bindNet() //simlint:allow noallocclosure bindNet is the //go:noinline lazy closure-build cold path
		}
		req.path = &e.net.paths[g]
		req.gw = int32(g)
		req.hop = 0
		if e.resOn {
			e.armRequest(req)
		}
		req.netUp()
		return
	}
	req := e.newRequest(e.reps[idx]) //simlint:allow noallocclosure newRequest is the freelist refill point; its cold-branch build is the sanctioned allocation site
	req.repIdx = int32(idx)
	if e.resOn {
		e.armRequest(req)
	}
	e.sim.Schedule(e.cal.NetworkRTT/2, req.arrive)
}

// pickReplica advances the replica round-robin, skipping crashed
// replicas (fault schedule) and open circuit breakers (resilience
// policy). When every live replica's breaker is open the current live
// candidate is used anyway — admission control must not manufacture a
// total outage. Callers guarantee at least one replica is alive.
//
//simlint:noalloc fault/policy-aware routing (request hot path)
func (e *engine) pickReplica() int {
	n := len(e.reps)
	idx := e.next % n
	for e.faultsOn && e.repDown[idx] {
		e.next++
		idx = e.next % n
	}
	if e.resOn && e.resBrkThresh > 0 {
		for tries := 0; tries < n && e.brkSkip(idx); tries++ {
			e.next++
			idx = e.next % n
			for e.faultsOn && e.repDown[idx] {
				e.next++
				idx = e.next % n
			}
		}
		if e.brkState[idx] == brkHalfOpen {
			e.brkState[idx] = brkProbing
		}
	}
	e.next++
	return idx
}

// pickGateway advances the gateway round-robin, skipping departed
// gateways. Under failover a down slot re-routes to the nearest
// surviving same-class gateway instead of silently advancing, counting
// a re-route. Callers guarantee at least one gateway is up.
//
//simlint:noalloc fault/policy-aware routing (request hot path)
func (e *engine) pickGateway() int {
	ng := len(e.net.paths)
	g := e.nextGw % ng
	if e.faultsOn && e.gwDown[g] {
		if e.resOn && e.resFailover {
			if s := e.nearestSameClass(g); s >= 0 {
				e.nextGw++
				e.cRerouted++
				return s
			}
		}
		for e.gwDown[g] {
			e.nextGw++
			g = e.nextGw % ng
		}
	}
	e.nextGw++
	return g
}

// dropArrival records an arrival that found no live capacity.
//
//simlint:noalloc fault event path (PR 7 contract)
func (e *engine) dropArrival() {
	if e.openLoop {
		e.cDropped++
		e.cFailed++
		return
	}
	e.parked++
}

// drainParked resubmits every parked closed-loop client once; clients
// that still find no capacity re-park (the count is latched up front, so
// a fruitless drain terminates).
//
//simlint:noalloc fault event path (PR 7 contract)
func (e *engine) drainParked() {
	n := e.parked
	e.parked = 0
	for i := 0; i < n; i++ {
		e.submit()
	}
}
