package plantnet

import (
	"math"
	"testing"

	"e2clab/internal/monitor"
)

// shortRun runs a 300-second experiment (enough for stable means in tests;
// benches use the paper's full 1380 s).
func shortRun(t *testing.T, cfg PoolConfig, clients int) *Metrics {
	t.Helper()
	m, err := Run(RunOptions{Pools: cfg, Clients: clients, Duration: 300, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestKnownConfigurations(t *testing.T) {
	if Baseline != (PoolConfig{40, 40, 7, 40}) {
		t.Errorf("Baseline = %+v", Baseline)
	}
	if PreliminaryOptimum != (PoolConfig{54, 54, 7, 53}) {
		t.Errorf("PreliminaryOptimum = %+v", PreliminaryOptimum)
	}
	if RefinedOptimum != (PoolConfig{54, 54, 6, 53}) {
		t.Errorf("RefinedOptimum = %+v", RefinedOptimum)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	v := PreliminaryOptimum.Vector()
	want := []float64{54, 54, 53, 7} // Equation 2 order: http, download, simsearch, extract
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Vector = %v, want %v", v, want)
		}
	}
	if FromVector(v) != PreliminaryOptimum {
		t.Errorf("FromVector(Vector) != identity")
	}
}

func TestValidation(t *testing.T) {
	if err := (PoolConfig{0, 40, 7, 40}).Validate(); err == nil {
		t.Error("zero pool accepted")
	}
	if _, err := Run(RunOptions{Pools: Baseline, Clients: 0}); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := Run(RunOptions{Pools: PoolConfig{}, Clients: 10}); err == nil {
		t.Error("invalid pools accepted")
	}
}

// TestPipelineStructure verifies the Table I pipeline: all nine tasks occur
// in order for every completed request, and their times are finite.
func TestPipelineStructure(t *testing.T) {
	if len(TaskNames) != 9 {
		t.Fatalf("TaskNames has %d entries, want 9 (Table I)", len(TaskNames))
	}
	m := shortRun(t, Baseline, 20)
	if m.Completed == 0 {
		t.Fatal("no requests completed")
	}
	for _, name := range TaskNames {
		s, ok := m.TaskTimes[name]
		if !ok {
			t.Fatalf("task %q missing from metrics", name)
		}
		if s.N == 0 || math.IsNaN(s.Mean) || s.Mean < 0 {
			t.Errorf("task %q has invalid summary %+v", name, s)
		}
	}
	// The GPU inference and similarity search dominate processing, per the
	// paper ("the extraction and similarity search tasks are the most time
	// consuming compared to the remaining ones").
	if m.TaskTimes["simsearch"].Mean < m.TaskTimes["pre-process"].Mean ||
		m.TaskTimes["extract"].Mean < m.TaskTimes["pre-process"].Mean {
		t.Error("extract/simsearch should dominate pre-process")
	}
}

// TestFig3Baseline reproduces the headline of Figure 3: with the baseline
// configuration, ~120 simultaneous requests drive the user response time to
// about 4 seconds (paper: 3.86 ± 0.13), the maximum users tolerate.
func TestFig3Baseline(t *testing.T) {
	m := shortRun(t, Baseline, 120)
	got := m.UserResponseTime.Mean
	if math.Abs(got-3.86)/3.86 > 0.10 {
		t.Errorf("response at 120 requests = %.3f, paper 3.86 (±10%% tolerated)", got)
	}
}

// TestTable3BaselineVsPreliminary checks the Table III comparison at the
// 80-request workload: baseline 2.657 vs preliminary optimum 2.484.
func TestTable3BaselineVsPreliminary(t *testing.T) {
	base := shortRun(t, Baseline, 80)
	pre := shortRun(t, PreliminaryOptimum, 80)
	if math.Abs(base.UserResponseTime.Mean-2.657)/2.657 > 0.10 {
		t.Errorf("baseline = %.3f, paper 2.657", base.UserResponseTime.Mean)
	}
	if math.Abs(pre.UserResponseTime.Mean-2.484)/2.484 > 0.10 {
		t.Errorf("preliminary = %.3f, paper 2.484", pre.UserResponseTime.Mean)
	}
	if pre.UserResponseTime.Mean >= base.UserResponseTime.Mean {
		t.Error("preliminary optimum must beat baseline")
	}
}

// TestFig8PreliminaryWinsAllWorkloads: the preliminary optimum outperforms
// the baseline for all three workloads (80, 120, 140).
func TestFig8PreliminaryWinsAllWorkloads(t *testing.T) {
	for _, n := range []int{80, 120, 140} {
		base := shortRun(t, Baseline, n)
		pre := shortRun(t, PreliminaryOptimum, n)
		if pre.UserResponseTime.Mean >= base.UserResponseTime.Mean {
			t.Errorf("N=%d: preliminary %.3f not better than baseline %.3f",
				n, pre.UserResponseTime.Mean, base.UserResponseTime.Mean)
		}
	}
}

// TestFig9ExtractSweepShape: varying the extract pool (OAT) around the
// preliminary optimum gives the paper's Figure 9a shape — minimum at 6,
// both 5 and 8-9 worse.
func TestFig9ExtractSweepShape(t *testing.T) {
	resp := map[int]float64{}
	for e := 5; e <= 9; e++ {
		cfg := PoolConfig{HTTP: 54, Download: 54, Extract: e, Simsearch: 53}
		resp[e] = shortRun(t, cfg, 80).UserResponseTime.Mean
	}
	for e := 5; e <= 9; e++ {
		if e != 6 && resp[6] >= resp[e] {
			t.Errorf("extract=6 (%.3f) should beat extract=%d (%.3f)", resp[6], e, resp[e])
		}
	}
	// Paper: monotone degradation beyond 6.
	if !(resp[7] < resp[8] && resp[8] < resp[9]) {
		t.Errorf("degradation beyond 6 not monotone: 7=%.3f 8=%.3f 9=%.3f", resp[7], resp[8], resp[9])
	}
}

// TestFig9ResourceShapes checks the resource-usage explanations of
// Figure 9c-g: CPU near saturation at extract>=8, extract task time growing
// with pool size while wait-extract shrinks from 5 to 6, GPU memory
// increasing with pool size, simsearch busy ~40-60% in the 5-7 range.
func TestFig9ResourceShapes(t *testing.T) {
	run := func(e int) *Metrics {
		return shortRun(t, PoolConfig{HTTP: 54, Download: 54, Extract: e, Simsearch: 53}, 80)
	}
	m5, m6, m9 := run(5), run(6), run(9)
	if m9.CPUUtil.Mean < 0.95 {
		t.Errorf("CPU at extract=9 = %.2f, want >= 0.95 (paper: 100%%)", m9.CPUUtil.Mean)
	}
	if m5.CPUUtil.Mean > m9.CPUUtil.Mean {
		t.Error("CPU usage should grow with extract pool size")
	}
	// Extract task time not reduced by more threads (GPU saturated).
	if m9.TaskTimes["extract"].Mean <= m6.TaskTimes["extract"].Mean {
		t.Error("extract task time should grow beyond GPU saturation")
	}
	// wait-extract drops when leaving the GPU-starved regime (5 -> 6).
	if m5.TaskTimes["wait-extract"].Mean <= m6.TaskTimes["wait-extract"].Mean {
		t.Error("wait-extract at 5 threads should exceed 6 threads")
	}
	// simsearch task time increases with extract pool size (CPU contention).
	if m9.TaskTimes["simsearch"].Mean <= m6.TaskTimes["simsearch"].Mean {
		t.Error("simsearch task time should grow with extract pool size")
	}
	// GPU memory grows with the extract pool and stays below the V100's 32GB.
	if !(m5.GPUMemGB < m6.GPUMemGB && m6.GPUMemGB < m9.GPUMemGB) {
		t.Error("GPU memory not increasing with extract pool")
	}
	if m9.GPUMemGB > 32 {
		t.Errorf("GPU memory %.1f exceeds V100 32GB", m9.GPUMemGB)
	}
	// Extract pool busy ~100% when GPU-bound (5..7).
	if m5.ExtractBusy.Mean < 0.95 || m6.ExtractBusy.Mean < 0.95 {
		t.Errorf("extract busy at 5/6 threads = %.2f/%.2f, want ~1.0", m5.ExtractBusy.Mean, m6.ExtractBusy.Mean)
	}
	// Simsearch pool busy around 40-60% at sizes 5-7 (paper: 50-60%).
	if m6.SimsearchBusy.Mean < 0.35 || m6.SimsearchBusy.Mean > 0.65 {
		t.Errorf("simsearch busy = %.2f, want 0.35-0.65", m6.SimsearchBusy.Mean)
	}
}

// TestTable4RefinedOptimum: the refined optimum (extract=6) beats both
// baseline and preliminary for every workload (Figure 11 / Table IV).
func TestTable4RefinedOptimum(t *testing.T) {
	for _, n := range []int{80, 120, 140} {
		base := shortRun(t, Baseline, n).UserResponseTime.Mean
		pre := shortRun(t, PreliminaryOptimum, n).UserResponseTime.Mean
		ref := shortRun(t, RefinedOptimum, n).UserResponseTime.Mean
		if !(ref < pre && pre < base) {
			t.Errorf("N=%d: want refined < preliminary < baseline, got %.3f / %.3f / %.3f",
				n, ref, pre, base)
		}
	}
}

// TestGPUMemorySavings: the refined optimum consumes less GPU memory than
// the baseline (paper: 30% less, 7GB vs 10GB; our linear model gives ~12%).
func TestGPUMemorySavings(t *testing.T) {
	cal := DefaultCalibration()
	base, ref := cal.GPUMemGB(Baseline), cal.GPUMemGB(RefinedOptimum)
	if ref >= base {
		t.Errorf("refined GPU mem %.1f not below baseline %.1f", ref, base)
	}
	if base < 8 || base > 12 {
		t.Errorf("baseline GPU mem %.1f, paper reports ~10GB", base)
	}
}

func TestResponseTimeMonotoneInWorkload(t *testing.T) {
	prev := 0.0
	for _, n := range []int{40, 80, 120, 160} {
		got := shortRun(t, Baseline, n).UserResponseTime.Mean
		if got <= prev {
			t.Errorf("response not increasing: N=%d -> %.3f (prev %.3f)", n, got, prev)
		}
		prev = got
	}
}

func TestThroughputSaturates(t *testing.T) {
	// Beyond saturation, doubling clients should not increase throughput
	// much (closed-loop system pinned at a bottleneck).
	m80 := shortRun(t, Baseline, 80)
	m160 := shortRun(t, Baseline, 160)
	if m160.Throughput > m80.Throughput*1.1 {
		t.Errorf("throughput grew from %.1f to %.1f — bottleneck missing", m80.Throughput, m160.Throughput)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, err := Run(RunOptions{Pools: Baseline, Clients: 40, Duration: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(RunOptions{Pools: Baseline, Clients: 40, Duration: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.UserResponseTime.Mean != b.UserResponseTime.Mean || a.Completed != b.Completed {
		t.Error("same seed produced different results")
	}
	c, err := Run(RunOptions{Pools: Baseline, Clients: 40, Duration: 120, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.UserResponseTime.Mean == c.UserResponseTime.Mean {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestSampleCadence(t *testing.T) {
	m, err := Run(RunOptions{Pools: Baseline, Clients: 40, Duration: 300, Warmup: 60, SampleInterval: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Samples start after warmup: (300-60)/10 - 1 boundary = 23..24 samples.
	if len(m.Samples) < 22 || len(m.Samples) > 24 {
		t.Errorf("got %d samples, want ~23", len(m.Samples))
	}
	for i := 1; i < len(m.Samples); i++ {
		if dt := m.Samples[i].Time - m.Samples[i-1].Time; math.Abs(dt-10) > 1e-9 {
			t.Errorf("sample interval %v, want 10", dt)
		}
	}
}

func TestRunRepeatedAggregates(t *testing.T) {
	rep, err := RunRepeated(RunOptions{Pools: Baseline, Clients: 80, Duration: 200, Seed: 11}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("runs = %d", len(rep.Runs))
	}
	total := 0
	for _, r := range rep.Runs {
		total += len(r.Samples)
	}
	if rep.UserResponseTime.N != total {
		t.Errorf("pooled N = %d, want %d", rep.UserResponseTime.N, total)
	}
	if rep.UserResponseTime.StdDev <= 0 {
		t.Error("pooled std should be positive across repetitions")
	}
	if rep.Throughput <= 0 {
		t.Error("throughput missing")
	}
}

// TestRunRepeatedParallelDeterminism asserts the worker-pool execution of
// RunRepeated is byte-identical to the sequential path for a fixed seed:
// seeds are derived up front and aggregation happens in run-index order
// after all runs complete.
func TestRunRepeatedParallelDeterminism(t *testing.T) {
	base := RunOptions{Pools: Baseline, Clients: 60, Duration: 150, Seed: 17}
	seqOpts := base
	seqOpts.MaxParallel = 1
	parOpts := base
	parOpts.MaxParallel = 4
	seq, err := RunRepeated(seqOpts, 5)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunRepeated(parOpts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if seq.UserResponseTime != par.UserResponseTime {
		t.Fatalf("pooled summary diverged: %+v != %+v", par.UserResponseTime, seq.UserResponseTime)
	}
	if seq.Throughput != par.Throughput {
		t.Fatalf("throughput diverged: %v != %v", par.Throughput, seq.Throughput)
	}
	for i := range seq.Runs {
		s, p := seq.Runs[i], par.Runs[i]
		if s.UserResponseTime != p.UserResponseTime || s.Completed != p.Completed ||
			s.Throughput != p.Throughput || s.RespP99 != p.RespP99 {
			t.Fatalf("run %d diverged: sequential %+v, parallel %+v", i, s.UserResponseTime, p.UserResponseTime)
		}
		if len(s.Samples) != len(p.Samples) {
			t.Fatalf("run %d sample count diverged: %d != %d", i, len(s.Samples), len(p.Samples))
		}
		for k := range s.Samples {
			a, b := s.Samples[k], p.Samples[k]
			// RespTime is NaN for windows with no completions; NaN != NaN,
			// so compare it separately.
			aResp, bResp := a.RespTime, b.RespTime
			a.RespTime, b.RespTime = 0, 0
			sameResp := aResp == bResp || (isNaN(aResp) && isNaN(bResp))
			if a != b || !sameResp {
				t.Fatalf("run %d sample %d diverged", i, k)
			}
		}
	}
}

func TestPaperMeasurementProtocol(t *testing.T) {
	// Paper: 7 repetitions x 23 min, sampled every 10 s -> 966
	// measurements (138 per run). With warmup=0 we reproduce the count.
	m, err := Run(RunOptions{Pools: Baseline, Clients: 20, Duration: 1380, Warmup: 1e-9, SampleInterval: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// First post-warmup sample is consumed as the warmup boundary; the
	// paper's 138 samples correspond to 1380/10.
	if len(m.Samples) < 136 || len(m.Samples) > 138 {
		t.Errorf("samples = %d, want ~138 (paper: 138 per experiment)", len(m.Samples))
	}
}

// TestPowerAndEnergyModel checks the paper's power observation: "the GPU
// power draw is between 50 Watts and 80 Watts" during the extract sweep.
func TestPowerAndEnergyModel(t *testing.T) {
	for _, e := range []int{5, 7, 9} {
		cfg := PoolConfig{HTTP: 54, Download: 54, Extract: e, Simsearch: 53}
		m := shortRun(t, cfg, 80)
		if m.GPUPowerW.Mean < 50 || m.GPUPowerW.Mean > 85 {
			t.Errorf("extract=%d: GPU power %.1f W, paper band 50-80 W", e, m.GPUPowerW.Mean)
		}
		if m.CPUPowerW.Mean <= DefaultCalibration().CPUIdlePowerW {
			t.Errorf("extract=%d: CPU power %.1f W at idle level", e, m.CPUPowerW.Mean)
		}
		if m.EnergyPerRequestJ <= 0 {
			t.Errorf("extract=%d: energy per request %.1f J", e, m.EnergyPerRequestJ)
		}
	}
	// Under a light workload the GPU draws less power than when saturated.
	light := shortRun(t, Baseline, 10)
	heavy := shortRun(t, Baseline, 120)
	if light.GPUPowerW.Mean >= heavy.GPUPowerW.Mean {
		t.Errorf("GPU power not increasing with load: %.1f vs %.1f W",
			light.GPUPowerW.Mean, heavy.GPUPowerW.Mean)
	}
	if light.EnergyPerRequestJ <= heavy.EnergyPerRequestJ {
		t.Error("energy per request should be higher at low utilization (idle power amortized over fewer requests)")
	}
}

// TestOpenLoopWorkload checks the Poisson-arrival mode: at an arrival rate
// far below capacity the system is stable with throughput ~= rate.
func TestOpenLoopWorkload(t *testing.T) {
	m, err := Run(RunOptions{Pools: Baseline, OpenLoopRate: 15, Duration: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Throughput-15)/15 > 0.1 {
		t.Errorf("open-loop throughput %.2f, want ~15", m.Throughput)
	}
	// Light load: response time near the no-queueing service time.
	if m.UserResponseTime.Mean > 2.0 {
		t.Errorf("open-loop light-load response %.3f, want < 2", m.UserResponseTime.Mean)
	}
	// Overload: arrivals above the ~30/s capacity back up; response grows
	// well beyond the closed-loop value and throughput caps out.
	over, err := Run(RunOptions{Pools: Baseline, OpenLoopRate: 40, Duration: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if over.Throughput > 33 {
		t.Errorf("overloaded throughput %.2f exceeds capacity", over.Throughput)
	}
	if over.UserResponseTime.Mean < m.UserResponseTime.Mean*2 {
		t.Errorf("overload response %.2f not growing vs %.2f", over.UserResponseTime.Mean, m.UserResponseTime.Mean)
	}
}

func TestOpenLoopValidation(t *testing.T) {
	if _, err := Run(RunOptions{Pools: Baseline}); err == nil {
		t.Error("no clients and no rate accepted")
	}
}

// TestReplicasScaleThroughput: two engine replicas roughly double the
// saturated throughput and halve the response time of an oversubscribed
// closed-loop population (the §V-B scalability potential).
func TestReplicasScaleThroughput(t *testing.T) {
	one, err := Run(RunOptions{Pools: Baseline, Clients: 160, Duration: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Run(RunOptions{Pools: Baseline, Clients: 160, Duration: 300, Seed: 9, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	ratio := two.Throughput / one.Throughput
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("2-replica throughput ratio %.2f, want ~2", ratio)
	}
	if two.UserResponseTime.Mean >= one.UserResponseTime.Mean {
		t.Error("replicas did not reduce response time under saturation")
	}
	if two.Replicas != 2 {
		t.Errorf("Replicas = %d", two.Replicas)
	}
	// Per-node utilization stays comparable (load is split evenly).
	if math.Abs(two.CPUUtil.Mean-one.CPUUtil.Mean) > 0.15 {
		t.Errorf("per-node CPU: 1-rep %.2f vs 2-rep %.2f", one.CPUUtil.Mean, two.CPUUtil.Mean)
	}
}

// TestMetricsRegistryExport: engine samples flow into the monitoring
// manager with all twelve series present and SLO checks working on them.
func TestMetricsRegistryExport(t *testing.T) {
	m := shortRun(t, Baseline, 140)
	r := m.Registry()
	names := r.Names()
	if len(names) != 12 {
		t.Fatalf("series = %v", names)
	}
	if r.Series("user_resp_time").Len() != len(m.Samples) {
		t.Error("resp series length mismatch")
	}
	// At 140 requests the baseline breaks the 4-second SLO persistently.
	vs := r.Check(monitor.SLO{Series: "user_resp_time", Max: 4, Sustained: 30})
	if len(vs) == 0 {
		t.Error("140-request workload should violate the 4s SLO (paper Fig. 3)")
	}
}

// TestResponsePercentiles: tail percentiles are ordered and bracket the
// mean; p99 exceeds the mean (queueing always has a right tail).
func TestResponsePercentiles(t *testing.T) {
	m := shortRun(t, Baseline, 80)
	if !(m.RespP50 <= m.RespP95 && m.RespP95 <= m.RespP99) {
		t.Errorf("percentiles unordered: p50=%.3f p95=%.3f p99=%.3f", m.RespP50, m.RespP95, m.RespP99)
	}
	if m.RespP99 <= m.UserResponseTime.Mean {
		t.Errorf("p99 %.3f not above mean %.3f", m.RespP99, m.UserResponseTime.Mean)
	}
	if m.RespP50 <= 0 {
		t.Error("p50 missing")
	}
}

// TestRequestTracing: traced requests carry a complete task breakdown that
// sums (with the HTTP queueing and network gap) to the response time.
func TestRequestTracing(t *testing.T) {
	m, err := Run(RunOptions{Pools: Baseline, Clients: 80, Duration: 200, Seed: 13, TraceRequests: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Traces) != 25 {
		t.Fatalf("traces = %d, want 25", len(m.Traces))
	}
	for i, tr := range m.Traces {
		var sum float64
		for _, d := range tr.Tasks {
			if d < 0 {
				t.Fatalf("trace %d has negative task time", i)
			}
			sum += d
		}
		// Tasks exclude the HTTP-pool queueing and the network RTT, so the
		// pipeline sum must be <= the response and dominate it.
		if sum > tr.Response+1e-9 {
			t.Fatalf("trace %d: task sum %.3f exceeds response %.3f", i, sum, tr.Response)
		}
		if sum < tr.Response*0.3 {
			t.Fatalf("trace %d: task sum %.3f implausibly small vs response %.3f", i, sum, tr.Response)
		}
	}
	// Tracing disabled by default.
	m2, err := Run(RunOptions{Pools: Baseline, Clients: 10, Duration: 120, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Traces) != 0 {
		t.Error("tracing should be off by default")
	}
}
