package plantnet

import (
	"math"
	"testing"

	"e2clab/internal/netem"
	"e2clab/internal/sim"
	"e2clab/internal/workload"
)

// deterministicCal replaces every service-time distribution with its mean,
// so a 1-client run has an exactly repeating cycle and the network share of
// the response time can be isolated to float precision.
func deterministicCal() Calibration {
	cal := DefaultCalibration()
	det := func(d sim.Dist) sim.Dist { return sim.Deterministic{V: d.Mean()} }
	cal.PreProcessWork = det(cal.PreProcessWork)
	cal.ProcessWork = det(cal.ProcessWork)
	cal.PostProcessWork = det(cal.PostProcessWork)
	cal.DownloadTime = det(cal.DownloadTime)
	cal.ExtractWork = det(cal.ExtractWork)
	cal.SimsearchCPUWork = det(cal.SimsearchCPUWork)
	cal.SimsearchIOTime = det(cal.SimsearchIOTime)
	return cal
}

func testNetModel(lossPct float64) *NetworkModel {
	return &NetworkModel{
		UploadBytes:   1.2e6,
		ResponseBytes: 5e4,
		Classes: []NetworkClass{{
			Gateways: 1,
			Up:       netem.LinkSpec{Src: "edge", Dst: "fog", DelaySec: 0.05, RateBps: 5e7, LossPct: lossPct},
			Down:     netem.LinkSpec{Src: "fog", Dst: "edge", DelaySec: 0.05, RateBps: 5e7},
		}},
		BackhaulUp:   []netem.LinkSpec{{Src: "fog", Dst: "cloud", DelaySec: 0.01, RateBps: 1e9}},
		BackhaulDown: []netem.LinkSpec{{Src: "cloud", Dst: "fog", DelaySec: 0.01, RateBps: 1e9}},
	}
}

// analyticalPathSeconds prices the model's request path in closed form —
// the exact figure netem.TransferSeconds produces for the same rules.
func analyticalPathSeconds(nm *NetworkModel) float64 {
	var t float64
	c := nm.Classes[0]
	t += c.Up.TransferSeconds(nm.UploadBytes)
	t += c.Down.TransferSeconds(nm.ResponseBytes)
	for _, h := range nm.BackhaulUp {
		t += h.TransferSeconds(nm.UploadBytes)
	}
	for _, h := range nm.BackhaulDown {
		t += h.TransferSeconds(nm.ResponseBytes)
	}
	return t
}

// TestSimulatedNetworkMatchesAnalyticalNoContention: with one client (zero
// contention) and deterministic service times, the simulated network mode's
// response time exceeds the analytical run by exactly the closed-form
// per-hop transfer sum.
func TestSimulatedNetworkMatchesAnalyticalNoContention(t *testing.T) {
	base := RunOptions{Pools: Baseline, Clients: 1, Duration: 120, Seed: 9, Cal: deterministicCal()}
	ana, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withNet := base
	withNet.Network = testNetModel(0)
	simu, err := Run(withNet)
	if err != nil {
		t.Fatal(err)
	}
	want := analyticalPathSeconds(withNet.Network)
	got := simu.UserResponseTime.Mean - ana.UserResponseTime.Mean
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("network share of response = %.12f, closed form %.12f", got, want)
	}
	if simu.NetRetransmits != 0 {
		t.Errorf("lossless path recorded %d retransmits", simu.NetRetransmits)
	}
	// Four hops per request (uplink + backhaul, both directions).
	if want := int64(simu.Completed) * 4; simu.NetDelivered < want {
		t.Errorf("NetDelivered = %d, want >= %d", simu.NetDelivered, want)
	}
}

// TestSimulatedNetworkLossConvergesToAnalytical: geometric retransmission
// on a lossy uplink converges to the closed-form 1/(1-p) inflation.
func TestSimulatedNetworkLossConvergesToAnalytical(t *testing.T) {
	base := RunOptions{Pools: Baseline, Clients: 1, Duration: 1200, Seed: 4, Cal: deterministicCal()}
	ana, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withNet := base
	withNet.Network = testNetModel(20)
	simu, err := Run(withNet)
	if err != nil {
		t.Fatal(err)
	}
	want := analyticalPathSeconds(withNet.Network)
	got := simu.UserResponseTime.Mean - ana.UserResponseTime.Mean
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("lossy network share %.4f, closed form %.4f (±10%%)", got, want)
	}
	if simu.NetRetransmits == 0 {
		t.Error("20% loss produced no retransmissions")
	}
}

// TestSimulatedNetworkQueuesUnderLoad: many clients behind one slow shared
// uplink queue, so the simulated response time exceeds the analytical
// prediction (which lets every request see the full rate) — the phenomenon
// that motivates folding the network into the event kernel.
func TestSimulatedNetworkQueuesUnderLoad(t *testing.T) {
	nm := &NetworkModel{
		UploadBytes:   1.2e6,
		ResponseBytes: 5e4,
		Classes: []NetworkClass{{
			Gateways: 1,
			Up:       netem.LinkSpec{DelaySec: 0.02, RateBps: 2e7}, // 20 Mbps shared by 30 clients
			Down:     netem.LinkSpec{DelaySec: 0.02, RateBps: 2e7},
		}},
	}
	opts := RunOptions{Pools: Baseline, Clients: 30, Duration: 300, Seed: 11, Network: nm}
	simu, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	noNet := opts
	noNet.Network = nil
	ana, err := Run(noNet)
	if err != nil {
		t.Fatal(err)
	}
	analyticalShare := analyticalPathSeconds(nm)
	got := simu.UserResponseTime.Mean - ana.UserResponseTime.Mean
	// With ~30 concurrent 0.48 s uploads on one pipe, queueing must push
	// the observed share well beyond the contention-free closed form.
	if got < analyticalShare*1.5 {
		t.Errorf("loaded uplink share %.3f not above closed form %.3f — no queueing?", got, analyticalShare)
	}
}

// TestSimulatedNetworkBlackHole: a fully lossy uplink delivers nothing; the
// run completes with zero completions instead of hanging.
func TestSimulatedNetworkBlackHole(t *testing.T) {
	nm := testNetModel(100)
	m, err := Run(RunOptions{Pools: Baseline, Clients: 4, Duration: 60, Seed: 2, Network: nm})
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 0 || m.NetDelivered != 0 {
		t.Errorf("black-hole network completed %d requests, delivered %d payloads", m.Completed, m.NetDelivered)
	}
}

// TestNetworkModeRepeatDeterminism: simulated-network RunRepeated is
// bit-identical at any parallelism, like every other mode.
func TestNetworkModeRepeatDeterminism(t *testing.T) {
	opts := RunOptions{Pools: Baseline, Clients: 20, Duration: 120, Seed: 21, Network: testNetModel(5)}
	seq := opts
	seq.MaxParallel = 1
	par := opts
	par.MaxParallel = 3
	a, err := RunRepeated(seq, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRepeated(par, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.UserResponseTime != b.UserResponseTime || a.Throughput != b.Throughput {
		t.Fatalf("parallel simulated-network repeat diverged: %+v vs %+v", a.UserResponseTime, b.UserResponseTime)
	}
	for i := range a.Runs {
		if a.Runs[i].Completed != b.Runs[i].Completed || a.Runs[i].NetRetransmits != b.Runs[i].NetRetransmits {
			t.Fatalf("run %d diverged", i)
		}
	}
}

// TestRunnerReuseBitIdentical: a run on a reused Runner is bit-identical to
// the same run on a fresh engine — the contract that makes pooling the
// per-run setup across RunRepeated repeats safe.
func TestRunnerReuseBitIdentical(t *testing.T) {
	rn := NewRunner()
	// Dirty the runner with runs of different shapes: replicas trigger a
	// replica rebuild, the network run populates links, the open-loop run
	// flips the loop mode.
	warmups := []RunOptions{
		{Pools: PreliminaryOptimum, Clients: 50, Duration: 90, Seed: 5, Replicas: 2},
		{Pools: Baseline, Clients: 10, Duration: 60, Seed: 6, Network: testNetModel(10)},
		{Pools: Baseline, OpenLoopRate: 8, Duration: 60, Seed: 7},
	}
	for _, w := range warmups {
		if _, err := rn.Run(w); err != nil {
			t.Fatal(err)
		}
	}
	check := func(name string, opts RunOptions) {
		t.Helper()
		got, err := rn.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		exact := func(field string, g, w float64) {
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Errorf("%s: reused %s = %.17g, fresh %.17g", name, field, g, w)
			}
		}
		if got.Completed != want.Completed {
			t.Errorf("%s: Completed %d vs %d", name, got.Completed, want.Completed)
		}
		exact("UserResponseTime.Mean", got.UserResponseTime.Mean, want.UserResponseTime.Mean)
		exact("UserResponseTime.StdDev", got.UserResponseTime.StdDev, want.UserResponseTime.StdDev)
		exact("RespP99", got.RespP99, want.RespP99)
		exact("Throughput", got.Throughput, want.Throughput)
		exact("CPUUtil.Mean", got.CPUUtil.Mean, want.CPUUtil.Mean)
		exact("EnergyPerRequestJ", got.EnergyPerRequestJ, want.EnergyPerRequestJ)
		exact("TaskTimes[extract].Mean", got.TaskTimes["extract"].Mean, want.TaskTimes["extract"].Mean)
		if len(got.Samples) != len(want.Samples) {
			t.Errorf("%s: %d samples vs %d", name, len(got.Samples), len(want.Samples))
		}
	}
	check("closed-loop", RunOptions{Pools: Baseline, Clients: 40, Duration: 120, Seed: 5})
	check("traced", RunOptions{Pools: Baseline, Clients: 20, Duration: 90, Seed: 8, TraceRequests: 5})
	check("simulated-net", RunOptions{Pools: Baseline, Clients: 20, Duration: 90, Seed: 12, Network: testNetModel(5)})
	check("arrivals", RunOptions{Pools: Baseline, Duration: 120, Seed: 13,
		Arrivals: &workload.PiecewiseRate{Phases: []workload.RatePhase{
			{Rate: 5, DurationSeconds: 60}, {Rate: 15, DurationSeconds: 60}}}})
}

// TestPiecewiseArrivals: the thinned nonhomogeneous process delivers the
// duration-weighted mean rate, and backlog built during an overload burst
// drains into the following phase (queue state carries across the boundary,
// unlike a phased lowering).
func TestPiecewiseArrivals(t *testing.T) {
	prof := &workload.PiecewiseRate{Phases: []workload.RatePhase{
		{Rate: 6, DurationSeconds: 120},
		{Rate: 24, DurationSeconds: 120},
		{Rate: 6, DurationSeconds: 120},
	}}
	m, err := Run(RunOptions{Pools: Baseline, Duration: prof.TotalDuration(), Seed: 3, Arrivals: prof, Warmup: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if mean := prof.MeanRate(); math.Abs(m.Throughput-mean)/mean > 0.10 {
		t.Errorf("throughput %.2f, want ~%.2f (duration-weighted mean rate)", m.Throughput, mean)
	}

	// Carryover: a burst at 40 req/s (over the ~30/s capacity) builds a
	// backlog; the first sample window after the burst ends must still see
	// responses far above the steady low-rate level.
	burst := &workload.PiecewiseRate{Phases: []workload.RatePhase{
		{Rate: 5, DurationSeconds: 100},
		{Rate: 40, DurationSeconds: 100},
		{Rate: 5, DurationSeconds: 160},
	}}
	b, err := Run(RunOptions{Pools: Baseline, Duration: burst.TotalDuration(), Seed: 3, Arrivals: burst, Warmup: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	var after, steady float64
	for _, s := range b.Samples {
		if s.Time > 200 && s.Time <= 220 && !math.IsNaN(s.RespTime) && after == 0 {
			after = s.RespTime // right after the burst
		}
		if s.Time > 80 && s.Time <= 100 && !math.IsNaN(s.RespTime) && steady == 0 {
			steady = s.RespTime // steady low-rate level before the burst
		}
	}
	if steady == 0 || after == 0 {
		t.Fatalf("missing samples: steady=%v after=%v", steady, after)
	}
	if after < steady*2 {
		t.Errorf("post-burst response %.2f not elevated vs steady %.2f — backlog lost at the phase boundary?", after, steady)
	}
}

func TestArrivalsAndNetworkValidation(t *testing.T) {
	if _, err := Run(RunOptions{Pools: Baseline,
		Arrivals: &workload.PiecewiseRate{}}); err == nil {
		t.Error("empty arrival profile accepted")
	}
	if _, err := Run(RunOptions{Pools: Baseline, Clients: 1, Network: &NetworkModel{}}); err == nil {
		t.Error("network model without classes accepted")
	}
	if _, err := Run(RunOptions{Pools: Baseline, Clients: 1,
		Network: &NetworkModel{Classes: []NetworkClass{{Gateways: 0}}}}); err == nil {
		t.Error("zero-gateway class accepted")
	}
}
