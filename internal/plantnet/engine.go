package plantnet

import (
	"fmt"
	"math"
	"math/rand"

	"e2clab/internal/fault"
	"e2clab/internal/resilience"
	"e2clab/internal/rngutil"
	"e2clab/internal/sim"
	"e2clab/internal/sim/shard"
	"e2clab/internal/stats"
	"e2clab/internal/workload"
)

// RunOptions configures one engine experiment: a thread-pool configuration
// exercised by a closed-loop population of simultaneous requests for a
// fixed duration — exactly the paper's experimental unit (23 minutes, one
// PoolConfig, one workload).
type RunOptions struct {
	Pools PoolConfig
	// Clients is the number of simultaneous requests (the paper's
	// workloads: 80, 120, 140) for the default closed-loop mode.
	Clients int
	// OpenLoopRate, when positive, switches to an open-loop workload:
	// requests arrive as a Poisson process at this rate (req/s) regardless
	// of completions, and Clients is ignored. Useful for what-if capacity
	// studies where demand is exogenous (see examples/capacity).
	OpenLoopRate float64
	// Arrivals, when non-nil, switches to an open-loop workload whose
	// rate follows a piecewise-constant profile — a nonhomogeneous Poisson
	// process realized by seeded Lewis-Shedler thinning. Unlike lowering a
	// shaped workload to independent per-phase runs, queue state carries
	// across the rate changes within the single run. Overrides Clients and
	// OpenLoopRate.
	Arrivals *workload.PiecewiseRate
	// Network, when non-nil, switches the run to the simulated network
	// continuum: every request traverses explicit per-hop sim.Links
	// (per-gateway uplink, shared backhaul) before the pipeline and the
	// reverse path after it, so the measured user response time includes
	// queueing on the network. nil keeps the network out of the run — the
	// analytical mode, where callers price the path in closed form with
	// netem.TransferSeconds.
	Network *NetworkModel
	// Replicas is the number of engine instances, each on its own node
	// with its own pools, CPU and GPU; clients are spread round-robin
	// (the paper deploys the engine "on the chifflot machines"). Default 1.
	Replicas int
	// Duration is the experiment length in seconds (paper: 1380).
	Duration float64
	// Warmup excludes the initial transient from statistics (default 60 s).
	Warmup float64
	// SampleInterval is the metric-collection period (paper: 10 s).
	SampleInterval float64
	// TraceRequests records the full Table I task breakdown of the first N
	// post-warmup completions in Metrics.Traces (0 disables tracing).
	TraceRequests int
	// Faults, when non-nil and non-zero, compiles a deterministic fault
	// schedule into the run's event calendar: gateway churn and link
	// flaps/transitions (both require Network), and replica crashes with
	// failover to the surviving replicas. Schedule times are relative to
	// the start of THIS run; the stochastic parts (churn intervals,
	// failover delays) draw from their own streams derived from Seed, so
	// a non-faulted run consumes exactly the same RNG it always did.
	Faults *fault.Spec
	// FaultTimeline, when non-nil, bypasses the per-run compile and
	// schedules these pre-compiled events verbatim (times relative to
	// this run's t=0). scenario.Run uses it to lower ONE wall-clock fault
	// timeline continuously across the phases of a phased workload
	// (fault.Windows); tests use it to pin exact event times. An empty
	// non-nil slice is a valid window with no events.
	FaultTimeline []fault.Event
	// Resilience, when non-nil and non-zero, compiles the policy into
	// pre-bound event-kernel hooks at setup: per-attempt timeouts,
	// seeded-jitter retries, hedged requests, per-replica circuit
	// breakers, gateway failover and queue-depth shedding. All policy
	// randomness comes from per-request substreams derived from Seed
	// (internal/resilience), never from the engine streams — a policied
	// run sees the exact fault timeline the unpolicied run does, and a
	// policy-free run consumes zero extra randomness.
	Resilience *resilience.Policy
	// MaxParallel bounds the worker pool RunRepeated uses to execute its
	// independent seeded runs concurrently; 0 means GOMAXPROCS, 1 forces
	// sequential execution. A single Run ignores it (the discrete-event
	// kernel is single-threaded by design).
	MaxParallel int
	// Shards >= 2 runs THIS experiment on the sharded event kernel
	// (internal/sim/shard): the gateway classes become domain shards, the
	// replicas/backhaul a core shard, each with a private engine advancing
	// in conservative lookahead windows, executed by up to Shards workers.
	// Requires a simulated Network. Output is a fixed-seed deterministic
	// function of the scenario and is bit-identical for every Shards >= 2
	// and every GOMAXPROCS — but it is a DIFFERENT deterministic family
	// than the sequential kernel (domain-partitioned RNG streams; see
	// sharded.go). Shards <= 1 keeps the sequential kernel, bit-identical
	// to a run without the field.
	Shards   int
	Seed     int64
	Hardware Hardware    // zero value -> Chifflot()
	Cal      Calibration // zero value -> DefaultCalibration()
}

func (o *RunOptions) fillDefaults() {
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.Duration <= 0 {
		o.Duration = 1380
	}
	if o.Warmup <= 0 {
		o.Warmup = 60
	}
	if o.SampleInterval <= 0 {
		o.SampleInterval = 10
	}
	if o.Hardware == (Hardware{}) {
		o.Hardware = Chifflot()
	}
	if o.Cal.GPURate == 0 {
		o.Cal = DefaultCalibration()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Sample is one metric-collection snapshot (every 10 s in the paper).
// Utilizations and busy fractions average over replicas; power is summed.
type Sample struct {
	Time          float64
	RespTime      float64 // mean response time of requests completed in the window (NaN if none)
	Throughput    float64 // completions/s in the window
	CPUUtil       float64
	GPUUtil       float64 // delivered inference throughput / peak
	GPUPowerW     float64
	CPUPowerW     float64
	GPUMemGB      float64
	SysMemGB      float64
	HTTPBusy      float64
	DownloadBusy  float64
	ExtractBusy   float64
	SimsearchBusy float64
}

// Metrics aggregates an experiment, mirroring the quantities in the paper's
// Figures 3 and 8-11: user response time (mean ± std over samples), task
// processing times, resource usage, and pool busy fractions.
type Metrics struct {
	Config    PoolConfig
	Clients   int
	Replicas  int
	Duration  float64
	Completed int

	// UserResponseTime summarizes the per-sample window means, matching
	// the paper's "metric values collected every 10 seconds". In simulated
	// network mode it includes the network path; in analytical mode it is
	// engine-side only.
	UserResponseTime stats.Summary
	// RespP50/P95/P99 are per-request response-time percentiles over the
	// measured period (reservoir-estimated) — tail latency the paper's
	// means do not expose.
	RespP50, RespP95, RespP99 float64
	// Throughput is completions/s over the measured period.
	Throughput float64
	// TaskTimes summarizes each Table I step over completed requests.
	TaskTimes map[string]stats.Summary

	CPUUtil       stats.Summary
	GPUUtil       stats.Summary
	GPUPowerW     stats.Summary
	CPUPowerW     stats.Summary
	HTTPBusy      stats.Summary
	DownloadBusy  stats.Summary
	ExtractBusy   stats.Summary
	SimsearchBusy stats.Summary
	// GPUMemGB and SysMemGB are per-replica (per-node) footprints.
	GPUMemGB float64
	SysMemGB float64
	// EnergyPerRequestJ is the engine energy (CPU+GPU, all replicas)
	// divided by completed requests over the measured period, in Joules.
	EnergyPerRequestJ float64

	// NetDelivered / NetRetransmits count simulated-network payload
	// deliveries and loss-driven retransmissions across all links (zero in
	// analytical mode).
	NetDelivered   int64
	NetRetransmits int64

	// Fault-injection outcome taxonomy (all zero when RunOptions.Faults is
	// nil). GatewayFailures counts in-flight requests failed by a departed
	// gateway (closed-loop clients retry through a live one immediately).
	// CrashRequeues counts requests rescued off a crashed replica and
	// requeued on a survivor after the seeded failover delay; their
	// response time includes the failover penalty. CrashFailures counts
	// requests lost because no replica survived. DroppedArrivals counts
	// open-loop arrivals dropped because no live gateway or replica could
	// accept them (closed-loop clients park instead and resume on the next
	// join/recovery).
	GatewayFailures int64
	CrashRequeues   int64
	CrashFailures   int64
	DroppedArrivals int64

	// Resilience-policy outcome counters (all zero when
	// RunOptions.Resilience is nil). Retries counts re-dispatched
	// attempts; RetrySuccesses, logical requests that completed after at
	// least one retry. Hedges counts duplicate arms launched and
	// HedgeWins the ones that beat their primary. Rerouted counts
	// failover re-routes off churned gateways (both at submission and in
	// flight, each paying the surviving uplink). Shed counts arrivals
	// rejected at the admission watermark, BreakerOpens circuit-breaker
	// open transitions, and DeadlineExceeded attempts failed past their
	// per-attempt deadline.
	Retries          int64
	RetrySuccesses   int64
	Hedges           int64
	HedgeWins        int64
	Rerouted         int64
	Shed             int64
	BreakerOpens     int64
	DeadlineExceeded int64
	// FailedRequests counts terminal logical failures over the whole run
	// — attempts exhausted under a policy, or (in unpolicied faulted
	// runs) gateway failures, crash losses and dropped open-loop
	// arrivals. AvailabilityFraction is Completed/(Completed+Failed),
	// 1 when nothing failed. Goodput is post-warmup completions/s whose
	// user response met the policy timeout (== Throughput when no
	// timeout or no policy) — completions that needed longer than the
	// SLO, e.g. across retries, do not count.
	FailedRequests       int64
	AvailabilityFraction float64
	Goodput              float64

	Samples []Sample
	// Traces holds per-request task breakdowns when
	// RunOptions.TraceRequests > 0.
	Traces []RequestTrace
}

// RequestTrace is the task breakdown of one traced request.
type RequestTrace struct {
	// Start is the request submission time.
	Start float64
	// Response is the total user response time.
	Response float64
	// Tasks are the Table I step durations, in TaskNames order.
	Tasks [9]float64
}

// request tracks one identification query through the Table I pipeline.
// Nodes are owned by the engine's freelist and recycled after each
// completion, and every stage continuation is bound once per node (the
// closures read req.rep, which is reassigned on reuse) — so the steady-state
// request pipeline performs zero heap allocations: no request, no closure,
// no event, no sharedJob, and (in simulated network mode) no transfer.
type request struct {
	e         *engine
	rep       *replica
	path      *gatewayPath // simulated network mode only
	hop       int          // next link index on the current direction
	start     float64
	taskStart float64
	tasks     [9]float64 // durations in TaskNames order

	// Fault-injection bookkeeping (only consulted when the run has a
	// fault schedule): the replica/gateway indices behind rep/path, the
	// request's slot in its replica's in-flight set (-1 when untracked),
	// and the pending bare stage timer (download, simsearch IO) a crash
	// must cancel — stale handles are inert, so it is never cleared.
	repIdx int32
	gw     int32
	ifIdx  int32
	timer  sim.Event

	// Resilience bookkeeping (only consulted when a policy is active).
	// A node is one ARM — an attempt in flight; the logical request is
	// the primary arm (pri == nil), which a hedge arm points back to.
	// rstate is the request's private SplitMix64 jitter substream,
	// prevDelay the decorrelated-backoff memory, deadline the absolute
	// per-attempt cutoff, and hedgeEv the pending hedge-launch timer
	// (generation-counted, so stale handles cancel inertly).
	rstate    uint64
	prevDelay float64
	deadline  float64
	attempts  int32
	arms      int32 // live arms of the logical request (primary only)
	won       bool  // logical completion latched (primary only)
	retried   bool  // at least one retry was dispatched (primary only)
	pri       *request
	hedgeEv   sim.Event

	// Sharded-kernel bookkeeping (only consulted when e.shRole != shNone;
	// see sharded.go): the cross-shard token correlating this arm's
	// up-crossing with its down-crossing, and — on the core — the domain
	// node the down-message answers to.
	shTok int64
	shSrc int32

	// Stage continuations, in pipeline order (bound once in bind).
	arrive, httpGranted, preDone, dlGranted, dlDone,
	exGranted, exDone, procDone, ssGranted, ssCPUDone,
	ssIODone, postDone, finish func()
	// Simulated-network continuations: next uplink hop, response-path
	// start, next downlink hop.
	netUp, netResp, netDown func()
	// Resilience continuations: retry redispatch and hedge launch
	// (bound once in bind, scheduled by the policy hooks).
	retryFn, hedgeFn func()
}

// bind builds the stage continuations. Each samples its service time at the
// same program point the pre-pooling pipeline did, so RNG consumption — and
// therefore every fixed-seed output — is bit-identical.
func (req *request) bind() {
	e := req.e
	req.httpGranted = func() {
		if e.resOn && e.grantGuard(req) {
			return
		}
		e.preProcess(req)
	}
	req.arrive = func() {
		if e.resOn && e.arriveGuard(req) {
			return
		}
		if e.faultsOn && !e.admit(req) {
			return
		}
		req.taskStart = e.sim.Now()
		req.rep.http.Request(req.httpGranted)
	}
	req.retryFn = func() { e.redispatch(req) }
	req.hedgeFn = func() { e.launchHedge(req) }
	req.dlGranted = func() { e.download(req) }
	req.preDone = func() {
		e.rec(req, 0) // pre-process
		req.rep.dl.Request(req.dlGranted)
	}
	req.exGranted = func() { e.extract(req) }
	req.dlDone = func() {
		req.rep.cpu.RemoveHold(e.cal.DownloadCPUWeight)
		req.rep.dl.Release()
		e.rec(req, 2) // download
		req.rep.ex.Request(req.exGranted)
	}
	req.procDone = func() {
		e.rec(req, 5) // process
		req.rep.ss.Request(req.ssGranted)
	}
	req.exDone = func() {
		req.rep.ex.Release()
		e.rec(req, 4) // extract
		req.rep.cpu.Add(e.cal.ProcessWork.Sample(e.rng), 1, req.procDone)
	}
	req.ssGranted = func() { e.simsearch(req) }
	req.ssIODone = func() {
		req.rep.ss.Release()
		e.rec(req, 7) // simsearch
		req.rep.cpu.Add(e.cal.PostProcessWork.Sample(e.rng), 1, req.postDone)
	}
	req.ssCPUDone = func() {
		req.timer = e.sim.Schedule(e.cal.SimsearchIOTime.Sample(e.rng), req.ssIODone)
	}
	req.postDone = func() {
		e.rec(req, 8) // post-process
		if e.faultsOn {
			e.untrack(req) // the response has left the replica
		}
		req.rep.http.Release()
		e.complete(req)
	}
	req.finish = func() {
		if e.resOn {
			e.finishResilient(req)
			return
		}
		e.completed++
		resp := e.sim.Now() - req.start
		e.windowResp.Add(resp)
		if e.warmupDone {
			e.respRes.Add(resp)
			if len(e.traces) < e.traceN {
				e.traces = append(e.traces, RequestTrace{
					Start: req.start, Response: resp, Tasks: req.tasks,
				})
			}
		}
		// Recycle before resubmitting so a closed-loop client reuses its
		// own node immediately.
		e.freeReqs = append(e.freeReqs, req)
		if !e.openLoop {
			e.submit()
		}
	}
}

// bindNet builds the network-stage continuations. They are bound lazily —
// on a node's first simulated-network use, not in bind — so analytical
// runs pay nothing for them; once bound they survive recycling and runner
// reuse like every other stage closure. Kept out of line so its cold-path
// closure allocations are not re-attributed to the //simlint:noalloc
// submission paths that call it.
//
//go:noinline
func (req *request) bindNet() {
	e := req.e
	req.netUp = func() {
		if e.resOn {
			if e.netUpGuard(req) {
				return
			}
		} else if e.faultsOn && e.gwDown[req.gw] {
			e.failGateway(req)
			return
		}
		if req.hop < len(req.path.up) {
			l := req.path.up[req.hop]
			req.hop++
			l.Transfer(e.net.upBytes, req.netUp)
			return
		}
		if e.shRole != shNone {
			// Sharded: the client->replica half-RTT is carried by the
			// cross-shard crossing, not a local schedule. A domain engine
			// finished its own uplink and hands the arm to the core; the
			// core engine finished the backhaul and the request arrives.
			if e.shRole == shDomain {
				e.domainCrossUp(req)
			} else {
				req.arrive()
			}
			return
		}
		e.sim.Schedule(e.cal.NetworkRTT/2, req.arrive)
	}
	req.netDown = func() {
		if e.resOn {
			if e.netDownGuard(req) {
				return
			}
		} else if e.faultsOn && e.gwDown[req.gw] {
			e.failGateway(req)
			return
		}
		if req.hop < len(req.path.down) {
			l := req.path.down[req.hop]
			req.hop++
			l.Transfer(e.net.downBytes, req.netDown)
			return
		}
		if e.shRole == shCore {
			// The response leaves the core: cross back to the owning
			// domain, which walks its own downlink and finishes.
			e.coreCrossDown(req)
			return
		}
		req.finish()
	}
	req.netResp = func() {
		req.hop = 0
		req.netDown()
	}
}

// replica is one engine instance on one node: its own pools, CPU and GPU.
// inflight tracks the requests currently inside the replica (arrive to
// postDone) when a fault schedule is active, so a crash can requeue
// exactly the affected work.
type replica struct {
	cpu      *sim.SharedResource
	gpu      *sim.SharedResource
	http     *sim.Pool
	dl       *sim.Pool
	ex       *sim.Pool
	ss       *sim.Pool
	inflight []*request
}

// engine wires the replicas and runs the pipeline. One engine is reused
// across the runs of a Runner: everything per-run is reset in
// Runner.prepare, while the simulation arena, resource freelists, request
// nodes (with their bound closures), RNGs, and the response reservoir
// survive — which is what cuts the per-run setup allocations.
type engine struct {
	sim    *sim.Engine
	rng    *rand.Rand
	resRng *rand.Rand // reservoir stream, re-seeded per run
	netRng *rand.Rand // link loss stream, re-seeded per run
	cal    Calibration
	hw     Hardware
	reps   []*replica
	next   int // round-robin client-to-replica assignment

	net      *netState     // nil in analytical mode
	netModel *NetworkModel // model net was built from (cache key)
	nextGw   int           // round-robin client-to-gateway assignment

	// Fault-injection state (see fault.go). faultsOn gates every hot-path
	// check so non-faulted runs take exactly the branches they always did.
	faultsOn     bool
	faultEvents  []fault.Event // compiled timeline (buffer reused across runs)
	faultCursor  int
	faultStepFn  func()     // bound once per engine
	faultRng     *rand.Rand // failover-delay stream, re-seeded per run
	gwDown       []bool
	repDown      []bool
	gwDownCount  int
	repDownCount int
	parked       int     // closed-loop clients waiting for capacity to return
	extractHold  float64 // per-replica pinned CPU hold, re-added on recovery

	cGatewayFail int64
	cCrashReq    int64
	cCrashFail   int64
	cDropped     int64

	// Resilience-policy state (see resilience.go). resOn gates every
	// hot-path check, mirroring faultsOn, so policy-free runs take
	// exactly the branches — and consume exactly the randomness — they
	// always did. The flattened policy fields avoid pointer chasing on
	// the request hot path.
	resOn         bool
	resTimeout    float64 // per-attempt deadline; +Inf when unset
	resRetryMax   int32
	resRetryBase  float64
	resRetryCap   float64
	resHedgeOn    bool
	resHedgeQ     float64
	resHedgeDelay float64 // current hedge-launch delay; +Inf = dormant
	resBrkThresh  int32
	resBrkOpen    float64
	resFailover   bool
	resShedDepth  int
	resSeedBase   uint64 // per-run base of the request jitter substreams
	resSerial     uint64
	brkFails      []int32
	brkState      []uint8
	brkUntil      []float64
	gwClass       []int32 // gateway -> network-class index (failover)
	classLo       []int32 // class -> first gateway index
	classHi       []int32 // class -> one past last gateway index

	cRetries   int64
	cRetrySucc int64
	cHedges    int64
	cHedgeWins int64
	cRerouted  int64
	cShed      int64
	cBrkOpens  int64
	cDeadline  int64
	cFailed    int64
	goodDone   int64 // completions within the policy timeout (SLO)

	// Sharded-kernel state (see sharded.go). shRole is shNone in the
	// legacy single-engine discipline; every hot-path branch below is
	// gated on it so legacy runs take exactly the branches they always
	// did. A domain engine owns one gateway class and its clients; the
	// core engine owns the replicas and the backhaul. Crossing latencies
	// are the halves of the client<->replica path that the cross-shard
	// message itself travels (at least the window width, by construction).
	shRole     uint8
	shCoreID   int32         // domain: node index of the core shard
	shRepCount int32         // domain: mirrored replica count (e.reps is empty)
	shDomGw0   int32         // domain: global index of this domain's first gateway
	shUpLat    float64       // domain->core crossing latency
	shDownLat  float64       // core->domain crossing latency
	shOut      *shard.Outbox // current window's outbox (set per Advance)
	shArms     []*request    // domain: token -> arm awaiting its down-message
	shArmFree  []int32       // domain: free token slots
	shTokRep   [][]int32     // core: [domain][token] -> replica index + 1
	shSlots    []*shSlot     // every inbox slot ever built (refills the freelist)
	shSlotFree []*shSlot

	openLoop   bool
	warmupDone bool
	completed  int
	traceN     int
	traces     []RequestTrace
	windowResp stats.Welford    // responses completed in current sample window
	respRes    *stats.Reservoir // per-request response times, post-warmup
	qScratch   []float64        // reused quantile output buffer (see Reservoir.Quantiles)
	taskAgg    [9]stats.Welford
	freeReqs   []*request // recycled request nodes (closures pre-bound)
	allReqs    []*request // every node ever built, to refill freeReqs on reset
}

// newRequest takes a node from the freelist (or builds and binds a fresh
// one) and points it at rep.
func (e *engine) newRequest(rep *replica) *request {
	var req *request
	if n := len(e.freeReqs); n > 0 {
		req = e.freeReqs[n-1]
		e.freeReqs = e.freeReqs[:n-1]
	} else {
		req = &request{e: e}
		req.bind()
		e.allReqs = append(e.allReqs, req)
	}
	req.rep = rep
	req.start = e.sim.Now()
	req.tasks = [9]float64{}
	req.ifIdx = -1
	req.shTok = -1 // no crossing yet (a hedge may reference its primary's token)
	if e.resOn {
		e.initArm(req)
	}
	return req
}

// Runner executes engine experiments, recycling the simulation engine,
// replicas, pools, samplers' RNGs, the response reservoir, and the request
// freelist across runs — the per-run setup cost that dominated
// RunRepeated's allocation profile. A Runner is NOT safe for concurrent
// use; RunRepeated gives each of its workers a private one. Every run's
// output is bit-identical to a run on a fresh Runner (the reset is
// complete), which the golden and repeat-determinism tests enforce.
type Runner struct {
	e *engine
	// sh holds the pooled sharded-kernel machinery (per-shard engines,
	// coordinator, derived network models) when Shards >= 2 is used; nil
	// otherwise. See sharded.go.
	sh *shardedState
}

// NewRunner returns an empty Runner; the first Run populates it.
func NewRunner() *Runner { return &Runner{} }

// Run executes one experiment and returns its metrics.
func Run(opts RunOptions) (*Metrics, error) {
	return NewRunner().Run(opts)
}

// Run executes one experiment on the runner's pooled state.
func (r *Runner) Run(opts RunOptions) (*Metrics, error) {
	opts.fillDefaults()
	if err := opts.Pools.Validate(); err != nil {
		return nil, err
	}
	if opts.Clients < 1 && opts.OpenLoopRate <= 0 && opts.Arrivals == nil {
		return nil, fmt.Errorf("plantnet: need at least one client, a positive OpenLoopRate, or an Arrivals profile")
	}
	if opts.Arrivals != nil {
		if err := opts.Arrivals.Validate(); err != nil {
			return nil, err
		}
	}
	if opts.Network != nil {
		if err := opts.Network.Validate(); err != nil {
			return nil, err
		}
	}
	if opts.Shards >= 2 {
		return r.runSharded(opts)
	}
	return r.prepare(opts).run(opts)
}

// prepare builds the engine on first use and resets it on every subsequent
// run. The reset is exhaustive: clock, arena, RNG streams, reservoir,
// resources, request nodes, links, and aggregation state all return to the
// fresh-construction state, so a reused engine's run is bit-identical to a
// fresh one. Construction performs no RNG draws, so build/reuse ordering
// cannot perturb determinism.
func (r *Runner) prepare(opts RunOptions) *engine {
	r.e = prepareEngine(r.e, opts)
	return r.e
}

// prepareEngine is prepare's engine-level body, shared with the sharded
// runner (which prepares one engine per shard from role-specific options;
// see sharded.go). A nil e builds a fresh engine.
func prepareEngine(e *engine, opts RunOptions) *engine {
	if e == nil {
		e = &engine{
			sim:    sim.NewEngine(),
			rng:    rngutil.New(opts.Seed),
			resRng: rngutil.New(opts.Seed + 101),
		}
		e.respRes = stats.NewReservoir(8192, e.resRng)
	} else {
		e.sim.Reset()
		e.rng.Seed(opts.Seed)
		e.resRng.Seed(opts.Seed + 101)
		e.respRes.Reset()
		// Every request node becomes reusable after the calendar reset,
		// including the ones that were in flight when the last run ended.
		e.freeReqs = append(e.freeReqs[:0], e.allReqs...)
		e.next, e.nextGw = 0, 0
		e.openLoop, e.warmupDone = false, false
		e.completed = 0
		e.traces = nil // the previous run's Metrics owns its slice
		e.windowResp = stats.Welford{}
		e.taskAgg = [9]stats.Welford{}
	}
	e.cal, e.hw = opts.Cal, opts.Hardware
	e.traceN = opts.TraceRequests
	e.extractHold = opts.Cal.ExtractThreadCPU * float64(opts.Pools.Extract)
	e.faultsOn = !opts.Faults.IsZero() || opts.FaultTimeline != nil
	e.faultCursor, e.parked = 0, 0
	e.gwDownCount, e.repDownCount = 0, 0
	e.cGatewayFail, e.cCrashReq, e.cCrashFail, e.cDropped = 0, 0, 0, 0
	e.resOn = !opts.Resilience.IsZero()
	e.resSerial = 0
	e.cRetries, e.cRetrySucc, e.cHedges, e.cHedgeWins = 0, 0, 0, 0
	e.cRerouted, e.cShed, e.cBrkOpens, e.cDeadline = 0, 0, 0, 0
	e.cFailed, e.goodDone = 0, 0
	// Role state returns to the legacy discipline; the sharded runner
	// re-establishes roles after preparing each shard's engine.
	e.shRole, e.shOut = shNone, nil

	cal, hw := opts.Cal, opts.Hardware
	gpuRate := func(k float64) float64 {
		if k <= 0 {
			return 0
		}
		rate := cal.GPURate * math.Min(k, cal.GPUSatConcurrency) / cal.GPUSatConcurrency
		if over := k - cal.GPUSatConcurrency; over > 0 {
			rate /= 1 + cal.GPUOversubPenalty*over
		}
		return rate
	}
	if len(e.reps) == opts.Replicas {
		for _, rep := range e.reps {
			rep.cpu.Reset(hw.CPUCores, sim.CPURate(hw.CPUCores))
			rep.gpu.Reset(cal.GPURate, gpuRate)
			rep.http.Reset(opts.Pools.HTTP)
			rep.dl.Reset(opts.Pools.Download)
			rep.ex.Reset(opts.Pools.Extract)
			rep.ss.Reset(opts.Pools.Simsearch)
			rep.cpu.AddHold(cal.ExtractThreadCPU * float64(opts.Pools.Extract))
			for i := range rep.inflight {
				rep.inflight[i] = nil
			}
			rep.inflight = rep.inflight[:0]
		}
	} else {
		e.reps = e.reps[:0]
		for i := 0; i < opts.Replicas; i++ {
			rep := &replica{
				cpu:  sim.NewCPU(e.sim, hw.CPUCores),
				gpu:  sim.NewSharedResource(e.sim, cal.GPURate, gpuRate),
				http: sim.NewPool(e.sim, "http", opts.Pools.HTTP),
				dl:   sim.NewPool(e.sim, "download", opts.Pools.Download),
				ex:   sim.NewPool(e.sim, "extract", opts.Pools.Extract),
				ss:   sim.NewPool(e.sim, "simsearch", opts.Pools.Simsearch),
			}
			// Pinned per-extract-worker CPU overhead (busy polling, marshaling).
			rep.cpu.AddHold(cal.ExtractThreadCPU * float64(opts.Pools.Extract))
			e.reps = append(e.reps, rep)
		}
	}

	if opts.Network != nil {
		if e.netRng == nil {
			e.netRng = rngutil.New(opts.Seed + 211)
		} else {
			e.netRng.Seed(opts.Seed + 211)
		}
		if e.net != nil && e.netModel == opts.Network {
			e.net.reset()
		} else {
			e.net = buildNetState(e.sim, opts.Network, e.netRng)
			e.netModel = opts.Network
		}
	} else {
		e.net, e.netModel = nil, nil
	}
	return e
}

// run executes the experiment on a prepared engine.
func (e *engine) run(opts RunOptions) (*Metrics, error) {
	se := e.sim
	cal, hw := e.cal, e.hw

	// Fault schedule and resilience policy first: compiled and placed on
	// the calendar before anything else, so at any shared instant —
	// including exactly t=0, where a windowed phase carries crashed/churned
	// state in — fault events hold the lowest sequence numbers and fire
	// before the first arrival or sampler tick. No pending same-instant
	// pipeline event can slip in between, which is what makes crash/churn
	// handlers sound.
	if e.faultsOn {
		if err := e.setupFaults(opts); err != nil {
			return nil, err
		}
	}
	if e.resOn {
		if err := e.setupResilience(opts); err != nil {
			return nil, err
		}
	}

	switch {
	case opts.Arrivals != nil:
		// Open-loop, time-varying rate: nonhomogeneous Poisson arrivals by
		// Lewis-Shedler thinning — candidates at the envelope rate λmax,
		// accepted with probability λ(now)/λmax. Per candidate, the accept
		// draw precedes the gap draw, fixing the RNG consumption order.
		e.openLoop = true
		rates := opts.Arrivals
		lmax := rates.Max()
		var arrive func()
		arrive = func() {
			if e.rng.Float64()*lmax < rates.At(se.Now()) {
				e.submit()
			}
			se.Schedule(e.rng.ExpFloat64()/lmax, arrive)
		}
		se.Schedule(e.rng.ExpFloat64()/lmax, arrive)
	case opts.OpenLoopRate > 0:
		// Open-loop: Poisson arrivals, independent of completions.
		e.openLoop = true
		rate := opts.OpenLoopRate
		var arrive func()
		arrive = func() {
			e.submit()
			se.Schedule(e.rng.ExpFloat64()/rate, arrive)
		}
		se.Schedule(e.rng.ExpFloat64()/rate, arrive)
	default:
		// Closed-loop clients: each keeps exactly one request in flight,
		// starting staggered over the first seconds to avoid lockstep.
		for i := 0; i < opts.Clients; i++ {
			se.Schedule(e.rng.Float64()*2, e.submit)
		}
	}

	// Metric sampler.
	m := &Metrics{Config: opts.Pools, Clients: opts.Clients, Replicas: opts.Replicas,
		Duration: opts.Duration, TaskTimes: make(map[string]stats.Summary)}
	nRep := float64(opts.Replicas)
	var (
		lastCPUWork, lastGPUWork          float64
		lastHTTPB, lastDLB                float64
		lastExB, lastSSB                  float64
		lastT                             float64
		respW, cpuW, gpuW, hB, dB, xB, sB stats.Welford
		gpuPW, cpuPW                      stats.Welford
		energyJ                           float64
		measStartT                        float64
		measStartCompleted                int
		measStartGood                     int64
	)
	gpuMem := cal.GPUMemGB(opts.Pools)
	sysMem := cal.SysMemGB(opts.Pools)

	sumCPUWork := func() float64 {
		var s float64
		for _, r := range e.reps {
			s += r.cpu.WorkIntegral()
		}
		return s
	}
	sumGPUWork := func() float64 {
		var s float64
		for _, r := range e.reps {
			s += r.gpu.WorkIntegral()
		}
		return s
	}
	sumBusy := func(pick func(*replica) *sim.Pool) float64 {
		var s float64
		for _, r := range e.reps {
			s += pick(r).BusyIntegral()
		}
		return s
	}

	sampleAt := func(t float64) {
		dt := t - lastT
		if dt <= 0 {
			return
		}
		s := Sample{Time: t, GPUMemGB: gpuMem, SysMemGB: sysMem}
		cw := sumCPUWork()
		s.CPUUtil = (cw - lastCPUWork) / (hw.CPUCores * nRep * dt)
		lastCPUWork = cw
		gw := sumGPUWork()
		s.GPUUtil = (gw - lastGPUWork) / (cal.GPURate * nRep * dt)
		lastGPUWork = gw
		// Power sums over replicas (nodes); utilizations are averages.
		s.GPUPowerW = (cal.GPUIdlePowerW + cal.GPUPowerSlopeW*s.GPUUtil) * nRep
		s.CPUPowerW = (cal.CPUIdlePowerW + cal.CPUPowerSlopeW*s.CPUUtil) * nRep
		hb := sumBusy(func(r *replica) *sim.Pool { return r.http })
		db := sumBusy(func(r *replica) *sim.Pool { return r.dl })
		xb := sumBusy(func(r *replica) *sim.Pool { return r.ex })
		sb := sumBusy(func(r *replica) *sim.Pool { return r.ss })
		s.HTTPBusy = (hb - lastHTTPB) / (float64(opts.Pools.HTTP) * nRep * dt)
		s.DownloadBusy = (db - lastDLB) / (float64(opts.Pools.Download) * nRep * dt)
		s.ExtractBusy = (xb - lastExB) / (float64(opts.Pools.Extract) * nRep * dt)
		s.SimsearchBusy = (sb - lastSSB) / (float64(opts.Pools.Simsearch) * nRep * dt)
		lastHTTPB, lastDLB, lastExB, lastSSB = hb, db, xb, sb
		if e.windowResp.N() > 0 {
			s.RespTime = e.windowResp.Mean()
			s.Throughput = float64(e.windowResp.N()) / dt
		} else {
			s.RespTime = math.NaN()
		}
		e.windowResp = stats.Welford{}
		lastT = t

		// Adaptive hedge delay: re-derive the launch threshold from the
		// live post-warmup response distribution once enough samples
		// accumulated (cold path, once per sample interval).
		if e.resOn && e.resHedgeQ > 0 && e.respRes.N() >= resilience.HedgeMinSamples {
			e.qScratch = e.respRes.Quantiles(e.qScratch[:0], e.resHedgeQ)
			e.resHedgeDelay = e.qScratch[0]
		}
		if t > opts.Warmup {
			if !e.warmupDone {
				e.warmupDone = true
				measStartT = t
				measStartCompleted = e.completed
				measStartGood = e.goodDone
			} else {
				// Aggregate post-warmup samples.
				if !math.IsNaN(s.RespTime) {
					respW.Add(s.RespTime)
				}
				cpuW.Add(s.CPUUtil)
				gpuW.Add(s.GPUUtil)
				gpuPW.Add(s.GPUPowerW)
				cpuPW.Add(s.CPUPowerW)
				energyJ += (s.GPUPowerW + s.CPUPowerW) * dt
				hB.Add(s.HTTPBusy)
				dB.Add(s.DownloadBusy)
				xB.Add(s.ExtractBusy)
				sB.Add(s.SimsearchBusy)
				m.Samples = append(m.Samples, s)
			}
		}
	}
	// One shared tick closure for every sampling instant: At stores the
	// exact tick time and Now() returns it bit-for-bit inside the event,
	// so hoisting the per-tick closures out of the loop changes no output
	// (it removes ~2 allocations per simulated sample interval).
	tick := func() { sampleAt(se.Now()) }
	for t := opts.SampleInterval; t <= opts.Duration+1e-9; t += opts.SampleInterval {
		se.At(t, tick)
	}

	se.Run(opts.Duration)

	m.Completed = e.completed
	m.UserResponseTime = respW.Snapshot()
	if e.respRes.N() > 0 {
		e.qScratch = e.respRes.Quantiles(e.qScratch[:0], 0.50, 0.95, 0.99)
		m.RespP50, m.RespP95, m.RespP99 = e.qScratch[0], e.qScratch[1], e.qScratch[2]
	}
	m.CPUUtil = cpuW.Snapshot()
	m.GPUUtil = gpuW.Snapshot()
	m.GPUPowerW = gpuPW.Snapshot()
	m.CPUPowerW = cpuPW.Snapshot()
	if measured := e.completed - measStartCompleted; measured > 0 {
		m.EnergyPerRequestJ = energyJ / float64(measured)
	}
	m.HTTPBusy = hB.Snapshot()
	m.DownloadBusy = dB.Snapshot()
	m.ExtractBusy = xB.Snapshot()
	m.SimsearchBusy = sB.Snapshot()
	m.GPUMemGB = gpuMem
	m.SysMemGB = sysMem
	if span := se.Now() - measStartT; span > 0 && e.warmupDone {
		m.Throughput = float64(e.completed-measStartCompleted) / span
	}
	for i, name := range TaskNames {
		m.TaskTimes[name] = e.taskAgg[i].Snapshot()
	}
	m.Traces = e.traces
	if e.net != nil {
		for _, l := range e.net.links {
			m.NetDelivered += l.Delivered()
			m.NetRetransmits += l.Retransmits()
		}
	}
	m.GatewayFailures = e.cGatewayFail
	m.CrashRequeues = e.cCrashReq
	m.CrashFailures = e.cCrashFail
	m.DroppedArrivals = e.cDropped
	m.Retries = e.cRetries
	m.RetrySuccesses = e.cRetrySucc
	m.Hedges = e.cHedges
	m.HedgeWins = e.cHedgeWins
	m.Rerouted = e.cRerouted
	m.Shed = e.cShed
	m.BreakerOpens = e.cBrkOpens
	m.DeadlineExceeded = e.cDeadline
	m.FailedRequests = e.cFailed
	if tot := int64(e.completed) + e.cFailed; tot > 0 {
		m.AvailabilityFraction = float64(int64(e.completed)) / float64(tot)
	} else {
		m.AvailabilityFraction = 1
	}
	m.Goodput = m.Throughput
	if e.resOn {
		m.Goodput = 0
		if span := se.Now() - measStartT; span > 0 && e.warmupDone {
			m.Goodput = float64(e.goodDone-measStartGood) / span
		}
	}
	return m, nil
}

// submit issues one request, assigned round-robin to a replica (and, in
// simulated network mode, to a gateway), and re-submits on completion
// (closed loop). Under a fault schedule or a resilience policy the
// round-robin is managed: dead replicas, departed gateways and open
// circuit breakers are skipped, and arms are deadline/hedge-armed (see
// submitManaged).
//
//simlint:noalloc steady-state submission reuses freelist nodes and pre-bound closures
func (e *engine) submit() {
	if e.shRole == shDomain {
		e.submitDomain()
		return
	}
	if e.faultsOn || e.resOn {
		e.submitManaged()
		return
	}
	rep := e.reps[e.next%len(e.reps)]
	e.next++
	req := e.newRequest(rep) //simlint:allow noallocclosure newRequest is the freelist refill point; its cold-branch build is the sanctioned allocation site
	if e.net != nil {
		// Device -> engine: gateway uplink, then the shared backhaul.
		if req.netUp == nil {
			req.bindNet() //simlint:allow noallocclosure bindNet is the //go:noinline lazy closure-build cold path
		}
		req.path = &e.net.paths[e.nextGw%len(e.net.paths)]
		e.nextGw++
		req.hop = 0
		req.netUp()
		return
	}
	// Client -> engine network half-RTT.
	e.sim.Schedule(e.cal.NetworkRTT/2, req.arrive)
}

// rec records the duration of task idx and resets the task clock.
func (e *engine) rec(req *request, idx int) {
	now := e.sim.Now()
	req.tasks[idx] = now - req.taskStart
	req.taskStart = now
	if e.warmupDone {
		e.taskAgg[idx].Add(req.tasks[idx])
	}
}

// The pipeline below follows Table I exactly; each stage records its
// duration then chains to the next.

func (e *engine) preProcess(req *request) {
	// HTTP slot acquired; queueing before this point is part of the user
	// response time but not a Table I step.
	req.taskStart = e.sim.Now()
	req.rep.cpu.Add(e.cal.PreProcessWork.Sample(e.rng), 1, req.preDone)
}

func (e *engine) download(req *request) {
	e.rec(req, 1) // wait-download
	req.rep.cpu.AddHold(e.cal.DownloadCPUWeight)
	req.timer = e.sim.Schedule(e.cal.DownloadTime.Sample(e.rng), req.dlDone)
}

func (e *engine) extract(req *request) {
	e.rec(req, 3) // wait-extract
	req.rep.gpu.Add(e.cal.ExtractWork.Sample(e.rng), 1, req.exDone)
}

func (e *engine) simsearch(req *request) {
	e.rec(req, 6) // wait-simsearch
	req.rep.cpu.Add(e.cal.SimsearchCPUWork.Sample(e.rng), 1, req.ssCPUDone)
}

func (e *engine) complete(req *request) {
	// Engine -> client network half-RTT, then (in simulated network mode)
	// the response path hop by hop; the client sees the response and
	// immediately issues the next request.
	if e.net != nil {
		if e.shRole == shCore {
			// Sharded: the engine->client half-RTT is paid by the
			// core->domain crossing at the end of the backhaul walk.
			req.netResp()
			return
		}
		e.sim.Schedule(e.cal.NetworkRTT/2, req.netResp)
		return
	}
	e.sim.Schedule(e.cal.NetworkRTT/2, req.finish)
}
