package plantnet

import (
	"math"
	"testing"

	"e2clab/internal/fault"
	"e2clab/internal/netem"
)

// multiGatewayModel is a 4-gateway single-class model for churn/flap tests.
func multiGatewayModel() *NetworkModel {
	return &NetworkModel{
		UploadBytes:   1.2e6,
		ResponseBytes: 5e4,
		Classes: []NetworkClass{{
			Gateways: 4,
			Up:       netem.LinkSpec{Src: "edge", Dst: "fog", DelaySec: 0.02, RateBps: 1e8},
			Down:     netem.LinkSpec{Src: "fog", Dst: "edge", DelaySec: 0.02, RateBps: 1e8},
		}},
		BackhaulUp:   []netem.LinkSpec{{Src: "fog", Dst: "cloud", DelaySec: 0.01, RateBps: 1e9}},
		BackhaulDown: []netem.LinkSpec{{Src: "cloud", Dst: "fog", DelaySec: 0.01, RateBps: 1e9}},
	}
}

func TestReplicaCrashFailover(t *testing.T) {
	base := RunOptions{Pools: Baseline, Clients: 40, Replicas: 2, Duration: 200, Seed: 9}
	healthy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	faulted := base
	faulted.Faults = &fault.Spec{ReplicaCrashes: []fault.Crash{
		{Replica: 0, AtSeconds: 80, RecoverAfterSeconds: 60},
	}}
	m, err := Run(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if m.CrashRequeues == 0 {
		t.Error("expected in-flight requests requeued off the crashed replica")
	}
	if m.CrashFailures != 0 {
		t.Errorf("CrashFailures = %d, want 0 (a replica survived)", m.CrashFailures)
	}
	if m.Completed == 0 || m.Completed >= healthy.Completed {
		t.Errorf("faulted Completed = %d, want in (0, %d)", m.Completed, healthy.Completed)
	}
	// The failover penalty must show up in the tail.
	if !(m.RespP99 > healthy.RespP99) {
		t.Errorf("faulted p99 %v not above healthy p99 %v", m.RespP99, healthy.RespP99)
	}
}

func TestAllReplicasDown(t *testing.T) {
	crash := &fault.Spec{ReplicaCrashes: []fault.Crash{{Replica: 0, AtSeconds: 30, RecoverAfterSeconds: 40}}}

	// Open loop: arrivals during the outage are dropped.
	open, err := Run(RunOptions{Pools: Baseline, OpenLoopRate: 8, Duration: 120, Seed: 5, Faults: crash})
	if err != nil {
		t.Fatal(err)
	}
	if open.DroppedArrivals == 0 {
		t.Error("open loop: expected dropped arrivals while the only replica was down")
	}
	if open.CrashFailures == 0 {
		t.Error("open loop: expected in-flight requests lost with no surviving replica")
	}

	// Closed loop: clients park and resume after recovery.
	closed, err := Run(RunOptions{Pools: Baseline, Clients: 20, Duration: 120, Seed: 5, Faults: crash})
	if err != nil {
		t.Fatal(err)
	}
	if closed.DroppedArrivals != 0 {
		t.Errorf("closed loop: DroppedArrivals = %d, want 0 (clients park)", closed.DroppedArrivals)
	}
	if closed.Completed == 0 {
		t.Error("closed loop: expected completions to resume after recovery")
	}
}

func TestGatewayChurnFailsInflight(t *testing.T) {
	opts := RunOptions{
		Pools: Baseline, Clients: 24, Duration: 240, Seed: 21,
		Network: multiGatewayModel(),
		Faults: &fault.Spec{
			GatewayChurn: &fault.Churn{MeanUpSeconds: 30, MeanDownSeconds: 15},
		},
	}
	m, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.GatewayFailures == 0 {
		t.Error("expected in-flight requests failed by departing gateways")
	}
	if m.Completed == 0 {
		t.Error("expected completions through the surviving gateways")
	}
}

func TestLinkFlapDelaysTraffic(t *testing.T) {
	base := RunOptions{Pools: Baseline, Clients: 8, Duration: 200, Seed: 13, Network: testNetModel(0)}
	healthy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	flapped := base
	flapped.Faults = &fault.Spec{LinkFlaps: []fault.Flap{
		{Gateway: 0, FirstAtSeconds: 70, DownSeconds: 10, PeriodSeconds: 50},
	}}
	m, err := Run(flapped)
	if err != nil {
		t.Fatal(err)
	}
	// Payloads stall while the single uplink is down, so the tail must
	// absorb multi-second outages and fewer requests finish.
	if !(m.RespP99 > healthy.RespP99+5) {
		t.Errorf("flapped p99 %v not well above healthy p99 %v", m.RespP99, healthy.RespP99)
	}
	if m.Completed >= healthy.Completed {
		t.Errorf("flapped Completed = %d, want < %d", m.Completed, healthy.Completed)
	}
}

// A faulted run on a reused Runner must be bit-identical to the same run
// on a fresh Runner, and a non-faulted run after a faulted one must be
// bit-identical to a never-faulted run — the reset is complete.
func TestFaultedRunnerReuseBitIdentical(t *testing.T) {
	faulted := RunOptions{
		Pools: Baseline, Clients: 24, Duration: 150, Seed: 31,
		Network: multiGatewayModel(), Replicas: 2,
		Faults: &fault.Spec{
			GatewayChurn:   &fault.Churn{MeanUpSeconds: 40, MeanDownSeconds: 10},
			ReplicaCrashes: []fault.Crash{{Replica: 1, AtSeconds: 60, RecoverAfterSeconds: 30}},
			LinkFlaps:      []fault.Flap{{Gateway: 0, FirstAtSeconds: 45, DownSeconds: 8, PeriodSeconds: 60}},
		},
	}
	clean := faulted
	clean.Faults = nil

	fresh1, err := Run(faulted)
	if err != nil {
		t.Fatal(err)
	}
	freshClean, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}

	r := NewRunner()
	for i := 0; i < 2; i++ {
		m, err := r.Run(faulted)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRun(t, fresh1, m)
	}
	m, err := r.Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, freshClean, m)
	if m.GatewayFailures != 0 || m.CrashRequeues != 0 || m.DroppedArrivals != 0 {
		t.Error("non-faulted run reported fault outcomes")
	}
}

func assertSameRun(t *testing.T, want, got *Metrics) {
	t.Helper()
	if got.Completed != want.Completed {
		t.Errorf("Completed = %d, want %d", got.Completed, want.Completed)
	}
	for _, f := range []struct {
		name      string
		got, want float64
	}{
		{"RespMean", got.UserResponseTime.Mean, want.UserResponseTime.Mean},
		{"RespStd", got.UserResponseTime.StdDev, want.UserResponseTime.StdDev},
		{"P99", got.RespP99, want.RespP99},
		{"Throughput", got.Throughput, want.Throughput},
	} {
		if math.Float64bits(f.got) != math.Float64bits(f.want) {
			t.Errorf("%s = %.17g, want %.17g (bit-exact)", f.name, f.got, f.want)
		}
	}
	for _, c := range []struct {
		name      string
		got, want int64
	}{
		{"GatewayFailures", got.GatewayFailures, want.GatewayFailures},
		{"CrashRequeues", got.CrashRequeues, want.CrashRequeues},
		{"CrashFailures", got.CrashFailures, want.CrashFailures},
		{"DroppedArrivals", got.DroppedArrivals, want.DroppedArrivals},
		{"NetRetransmits", got.NetRetransmits, want.NetRetransmits},
	} {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestFaultValidation(t *testing.T) {
	base := RunOptions{Pools: Baseline, Clients: 4, Duration: 30, Seed: 1}

	churnNoNet := base
	churnNoNet.Faults = &fault.Spec{GatewayChurn: &fault.Churn{MeanUpSeconds: 10, MeanDownSeconds: 5}}
	if _, err := Run(churnNoNet); err == nil {
		t.Error("gateway churn without a network model accepted")
	}

	flapNoNet := base
	flapNoNet.Faults = &fault.Spec{LinkFlaps: []fault.Flap{{Gateway: 0, FirstAtSeconds: 1, DownSeconds: 1}}}
	if _, err := Run(flapNoNet); err == nil {
		t.Error("link flap without a network model accepted")
	}

	badReplica := base
	badReplica.Faults = &fault.Spec{ReplicaCrashes: []fault.Crash{{Replica: 3, AtSeconds: 5}}}
	if _, err := Run(badReplica); err == nil {
		t.Error("crash on nonexistent replica accepted")
	}

	badGw := base
	badGw.Network = testNetModel(0)
	badGw.Faults = &fault.Spec{LinkFlaps: []fault.Flap{{Gateway: 5, FirstAtSeconds: 1, DownSeconds: 1}}}
	if _, err := Run(badGw); err == nil {
		t.Error("flap on nonexistent gateway accepted")
	}

	badSpec := base
	badSpec.Faults = &fault.Spec{GatewayChurn: &fault.Churn{MeanUpSeconds: -1, MeanDownSeconds: 5}}
	if _, err := Run(badSpec); err == nil {
		t.Error("invalid churn spec accepted")
	}
}

func TestPacketModeNetwork(t *testing.T) {
	whole := RunOptions{Pools: Baseline, Clients: 8, Duration: 150, Seed: 17, Network: testNetModel(2)}
	packetModel := testNetModel(2)
	packetModel.Packet = true
	packet := whole
	packet.Network = packetModel

	mw, err := Run(whole)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Run(packet)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Completed == 0 || mp.NetDelivered == 0 {
		t.Fatal("packet mode delivered nothing")
	}
	if mp.NetRetransmits == 0 {
		t.Error("packet mode on a lossy path produced no packet retransmissions")
	}
	// Per-packet loss on a ~800-packet payload retransmits far more units
	// than whole-payload geometric resend.
	if mp.NetRetransmits <= mw.NetRetransmits {
		t.Errorf("packet retransmits %d not above whole-payload %d", mp.NetRetransmits, mw.NetRetransmits)
	}
	// Determinism: packet mode re-runs bit-identically.
	mp2, err := Run(packet)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, mp, mp2)
}
