package plantnet

import (
	"math"
	"testing"

	"e2clab/internal/fault"
	"e2clab/internal/resilience"
)

// chaosOpts is the shared faulted deployment the resilience tests run
// against: 4 gateways churning, a replica crash mid-run.
func chaosOpts() RunOptions {
	return RunOptions{
		Pools: Baseline, Replicas: 3, Clients: 60, Duration: 200, Seed: 55,
		Network: multiGatewayModel(),
		Faults: &fault.Spec{
			GatewayChurn:   &fault.Churn{MeanUpSeconds: 45, MeanDownSeconds: 20},
			ReplicaCrashes: []fault.Crash{{Replica: 1, AtSeconds: 30, RecoverAfterSeconds: 20}},
		},
	}
}

// retryFailoverPolicy is the pinned policy of the golden below.
func retryFailoverPolicy() *resilience.Policy {
	return &resilience.Policy{
		TimeoutSeconds: 8,
		Retry:          &resilience.Retry{Max: 3, BaseDelaySeconds: 0.25, MaxDelaySeconds: 4},
		Failover:       true,
	}
}

// Golden pins for the policied chaos run (seed 55). Regenerate knowingly:
// any drift here is a change to the resilience semantics or to the
// determinism of the policy substreams.
const (
	goldenResCompleted = 5045
	goldenResRespMean  = 3.025959034205608
	goldenResRerouted  = 1014
	goldenResGoodput   = 20.384615384615383
)

func TestResilienceGolden(t *testing.T) {
	opts := chaosOpts()
	opts.Resilience = retryFailoverPolicy()
	m, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != goldenResCompleted {
		t.Errorf("Completed = %d, want %d", m.Completed, goldenResCompleted)
	}
	if math.Float64bits(m.UserResponseTime.Mean) != math.Float64bits(goldenResRespMean) {
		t.Errorf("RespMean = %.17g, want %.17g (bit-exact)", m.UserResponseTime.Mean, goldenResRespMean)
	}
	if m.Rerouted != goldenResRerouted {
		t.Errorf("Rerouted = %d, want %d", m.Rerouted, goldenResRerouted)
	}
	if math.Float64bits(m.Goodput) != math.Float64bits(goldenResGoodput) {
		t.Errorf("Goodput = %.17g, want %.17g (bit-exact)", m.Goodput, goldenResGoodput)
	}
	if m.FailedRequests != 0 || m.AvailabilityFraction != 1 {
		t.Errorf("failed=%d availability=%v, want 0 and 1 (failover absorbs the churn)",
			m.FailedRequests, m.AvailabilityFraction)
	}
	// Determinism: the policied run replays bit-identically, including the
	// policy counters.
	m2, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, m, m2)
	assertSameResilience(t, m, m2)
}

func assertSameResilience(t *testing.T, want, got *Metrics) {
	t.Helper()
	for _, c := range []struct {
		name      string
		got, want int64
	}{
		{"FailedRequests", got.FailedRequests, want.FailedRequests},
		{"Retries", got.Retries, want.Retries},
		{"RetrySuccesses", got.RetrySuccesses, want.RetrySuccesses},
		{"Hedges", got.Hedges, want.Hedges},
		{"HedgeWins", got.HedgeWins, want.HedgeWins},
		{"Rerouted", got.Rerouted, want.Rerouted},
		{"Shed", got.Shed, want.Shed},
		{"BreakerOpens", got.BreakerOpens, want.BreakerOpens},
		{"DeadlineExceeded", got.DeadlineExceeded, want.DeadlineExceeded},
	} {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	for _, f := range []struct {
		name      string
		got, want float64
	}{
		{"AvailabilityFraction", got.AvailabilityFraction, want.AvailabilityFraction},
		{"Goodput", got.Goodput, want.Goodput},
	} {
		if math.Float64bits(f.got) != math.Float64bits(f.want) {
			t.Errorf("%s = %.17g, want %.17g (bit-exact)", f.name, f.got, f.want)
		}
	}
}

// A nil policy and the zero policy must leave runs bit-identical to the
// pre-policy engine: same branches, zero extra randomness.
func TestZeroPolicyIsBitIdenticalToNoPolicy(t *testing.T) {
	plain, err := Run(chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	zero := chaosOpts()
	zero.Resilience = &resilience.Policy{}
	m, err := Run(zero)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, plain, m)
	if m.Retries != 0 || m.Hedges != 0 || m.Rerouted != 0 || m.Shed != 0 ||
		m.BreakerOpens != 0 || m.DeadlineExceeded != 0 {
		t.Error("zero policy produced resilience outcomes")
	}
	// Unfaulted, unpolicied runs carry the degenerate SLO values.
	clean, err := Run(RunOptions{Pools: Baseline, Clients: 20, Duration: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if clean.AvailabilityFraction != 1 {
		t.Errorf("clean availability = %v, want 1", clean.AvailabilityFraction)
	}
	if math.Float64bits(clean.Goodput) != math.Float64bits(clean.Throughput) {
		t.Errorf("clean goodput %v != throughput %v", clean.Goodput, clean.Throughput)
	}
}

// Retry without failover: every gateway-churn loss becomes a retry, and
// retries that land on a live gateway win back availability.
func TestRetryImprovesAvailability(t *testing.T) {
	plain, err := Run(chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	if plain.FailedRequests == 0 || plain.AvailabilityFraction >= 1 {
		t.Fatalf("chaos baseline lost nothing (failed=%d) — the comparison is vacuous", plain.FailedRequests)
	}
	opts := chaosOpts()
	opts.Resilience = &resilience.Policy{
		Retry: &resilience.Retry{Max: 3, BaseDelaySeconds: 0.25, MaxDelaySeconds: 4},
	}
	m, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Retries == 0 || m.RetrySuccesses == 0 {
		t.Fatalf("retries=%d successes=%d, want both > 0", m.Retries, m.RetrySuccesses)
	}
	if !(m.AvailabilityFraction > plain.AvailabilityFraction) {
		t.Errorf("availability %v not above unpolicied %v", m.AvailabilityFraction, plain.AvailabilityFraction)
	}
	// Bounded amplification: at most Max retries per logical request that
	// needed one.
	if max := int64(3) * (m.FailedRequests + int64(m.RetrySuccesses)); m.Retries > max {
		t.Errorf("retry amplification: %d retries > bound %d", m.Retries, max)
	}
}

// Hedging under churn: the adaptive quantile delay activates once the
// post-warmup reservoir holds enough samples, and hedge arms win the
// requests whose primary arm died with its gateway.
func TestHedgeQuantileDelay(t *testing.T) {
	plain, err := Run(chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := chaosOpts()
	opts.Resilience = &resilience.Policy{Hedge: &resilience.Hedge{Quantile: 0.9}}
	m, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hedges == 0 {
		t.Fatal("adaptive hedge never launched")
	}
	if m.HedgeWins == 0 {
		t.Error("no hedge arm ever won")
	}
	if !(m.AvailabilityFraction > plain.AvailabilityFraction) {
		t.Errorf("availability %v not above unpolicied %v (hedges should rescue churned primaries)",
			m.AvailabilityFraction, plain.AvailabilityFraction)
	}
}

// An aggressive timeout on a saturated engine trips the per-replica
// breakers; half-open probes eventually close them and the run survives.
func TestTimeoutAndBreaker(t *testing.T) {
	// 200 closed-loop clients on 2 replicas queue far past a 1.5 s budget
	// at the HTTP pool, so deadlines fire at the grant checkpoint.
	opts := RunOptions{Pools: Baseline, Replicas: 2, Clients: 200, Duration: 200, Seed: 7}
	opts.Resilience = &resilience.Policy{
		TimeoutSeconds: 1.5, // well under the queueing delay at this load
		Retry:          &resilience.Retry{Max: 2},
		Breaker:        &resilience.Breaker{FailureThreshold: 5, OpenSeconds: 5},
	}
	m, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.DeadlineExceeded == 0 {
		t.Fatal("aggressive timeout never fired")
	}
	if m.BreakerOpens == 0 {
		t.Error("deadline storm never opened a breaker")
	}
	if m.Completed == 0 {
		t.Error("breaker run completed nothing")
	}
	if m.AvailabilityFraction >= 1 {
		t.Error("expected terminal failures once retries exhaust under a 1.5 s deadline")
	}
}

// Admission control: a tight queue-depth watermark sheds load instead of
// queueing it, and shed arms are retried like any other arm failure.
func TestShedWatermark(t *testing.T) {
	opts := RunOptions{Pools: Baseline, Replicas: 1, Clients: 80, Duration: 200, Seed: 19}
	opts.Resilience = &resilience.Policy{Shed: &resilience.Shed{QueueDepth: 4}}
	m, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shed == 0 {
		t.Fatal("watermark never shed an arrival")
	}
	if m.Completed == 0 {
		t.Error("shedding run completed nothing")
	}
}

// Satellite: a fault event at exactly t=0 takes effect before the first
// arrival — nothing is ever routed to a pre-crashed replica or a
// pre-departed gateway. Exercised through the FaultTimeline seam the
// windowed phase lowering uses.
func TestTimelineEventAtTimeZero(t *testing.T) {
	opts := RunOptions{
		Pools: Baseline, Replicas: 2, Clients: 24, Duration: 120, Seed: 41,
		Faults:        &fault.Spec{},
		FaultTimeline: []fault.Event{{Kind: fault.ReplicaCrash, At: 0, Target: 0}},
	}
	m, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.CrashRequeues != 0 || m.CrashFailures != 0 {
		t.Errorf("t=0 crash requeued %d / failed %d in-flight requests, want 0/0 (nothing was in flight)",
			m.CrashRequeues, m.CrashFailures)
	}
	if m.Completed == 0 {
		t.Error("surviving replica completed nothing")
	}

	gw := RunOptions{
		Pools: Baseline, Replicas: 2, Clients: 24, Duration: 120, Seed: 41,
		Network: multiGatewayModel(),
		Faults:  &fault.Spec{},
		FaultTimeline: []fault.Event{
			{Kind: fault.GatewayLeave, At: 0, Target: 1},
			{Kind: fault.GatewayLeave, At: 0, Target: 2},
			{Kind: fault.GatewayLeave, At: 0, Target: 3},
		},
	}
	mg, err := Run(gw)
	if err != nil {
		t.Fatal(err)
	}
	if mg.GatewayFailures != 0 {
		t.Errorf("t=0 gateway departures failed %d in-flight requests, want 0", mg.GatewayFailures)
	}
	if mg.Completed == 0 {
		t.Error("surviving gateway completed nothing")
	}
}

// Satellite fault-edge matrix, engine level: a zero-duration link outage
// (down and up at the same instant) must not strand or lose anything; a
// crash whose recovery lands exactly on the horizon still fires; churn
// far slower than the run leaves the run bit-identical to the unfaulted
// one (the compiled timeline is empty).
func TestFaultEdgeMatrix(t *testing.T) {
	t.Run("zero-duration flap", func(t *testing.T) {
		opts := RunOptions{
			Pools: Baseline, Clients: 8, Duration: 150, Seed: 13,
			Network: testNetModel(0),
			Faults:  &fault.Spec{},
			FaultTimeline: []fault.Event{
				{Kind: fault.LinkDown, At: 50, Target: 0},
				{Kind: fault.LinkUp, At: 50, Target: 0},
			},
		}
		m, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if m.Completed == 0 || m.GatewayFailures != 0 || m.FailedRequests != 0 {
			t.Errorf("zero-duration flap: completed=%d gwfail=%d failed=%d",
				m.Completed, m.GatewayFailures, m.FailedRequests)
		}
	})

	t.Run("recovery at horizon", func(t *testing.T) {
		opts := RunOptions{
			Pools: Baseline, Replicas: 2, Clients: 24, Duration: 120, Seed: 23,
			Faults: &fault.Spec{ReplicaCrashes: []fault.Crash{
				{Replica: 0, AtSeconds: 60, RecoverAfterSeconds: 60},
			}},
		}
		m, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if m.CrashRequeues == 0 {
			t.Error("mid-run crash requeued nothing")
		}
		if m.Completed == 0 {
			t.Error("run with horizon-edge recovery completed nothing")
		}
	})

	t.Run("churn slower than run", func(t *testing.T) {
		opts := RunOptions{
			Pools: Baseline, Clients: 16, Duration: 100, Seed: 29,
			Network: multiGatewayModel(),
		}
		plain, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		churned := opts
		churned.Faults = &fault.Spec{GatewayChurn: &fault.Churn{
			MeanUpSeconds: 1e9, MeanDownSeconds: 5,
		}}
		m, err := Run(churned)
		if err != nil {
			t.Fatal(err)
		}
		// The first departure draw lands ~1e9 s out: the compiled timeline
		// is empty within the horizon and the engine RNGs are untouched,
		// so the run is bit-identical to the unfaulted one.
		assertSameRun(t, plain, m)
	})
}

// Crashing every replica under a retry policy: lost in-flight arms retry
// and succeed once the replica recovers — no logical request is charged
// until its attempts are exhausted.
func TestRetryAcrossTotalOutage(t *testing.T) {
	opts := RunOptions{
		Pools: Baseline, Replicas: 1, Clients: 20, Duration: 120, Seed: 5,
		Faults: &fault.Spec{ReplicaCrashes: []fault.Crash{
			{Replica: 0, AtSeconds: 30, RecoverAfterSeconds: 10},
		}},
	}
	plain, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.CrashFailures == 0 {
		t.Fatal("total outage lost nothing unpolicied — vacuous")
	}
	opts.Resilience = &resilience.Policy{
		Retry: &resilience.Retry{Max: 5, BaseDelaySeconds: 2, MaxDelaySeconds: 8},
	}
	m, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Retries == 0 || m.RetrySuccesses == 0 {
		t.Errorf("retries=%d successes=%d, want both > 0 across the outage", m.Retries, m.RetrySuccesses)
	}
	if !(m.AvailabilityFraction > plain.AvailabilityFraction) {
		t.Errorf("availability %v not above unpolicied %v", m.AvailabilityFraction, plain.AvailabilityFraction)
	}
}

// Policy validation at the engine boundary.
func TestResilienceValidation(t *testing.T) {
	bad := RunOptions{Pools: Baseline, Clients: 4, Duration: 30, Seed: 1,
		Resilience: &resilience.Policy{Retry: &resilience.Retry{Max: 99}}}
	if _, err := Run(bad); err == nil {
		t.Error("retry max beyond the bound accepted")
	}
	noNet := RunOptions{Pools: Baseline, Clients: 4, Duration: 30, Seed: 1,
		Resilience: &resilience.Policy{Failover: true}}
	if _, err := Run(noNet); err == nil {
		t.Error("failover without a network model accepted")
	}
	badTimeline := RunOptions{Pools: Baseline, Clients: 4, Duration: 30, Seed: 1,
		Faults:        &fault.Spec{},
		FaultTimeline: []fault.Event{{Kind: fault.GatewayLeave, At: 1, Target: 0}}}
	if _, err := Run(badTimeline); err == nil {
		t.Error("gateway timeline event without a network model accepted")
	}
}
