package plantnet

// Sharded event kernel: one experiment partitioned over internal/sim/shard.
//
// The decomposition is two-tier. Each gateway CLASS becomes a domain shard
// owning its clients, its per-gateway uplink/downlink links, its RNG
// streams, churn bookkeeping and resilience arming; one core shard owns the
// replicas (pools, CPU, GPU), the shared backhaul, circuit breakers,
// shedding and crash/requeue handling. A request's life is: domain walks its
// own uplink, crosses to the core (an up-message paying the client->replica
// half-RTT plus any hoisted backhaul propagation), the core walks the
// backhaul and runs the Table I pipeline, then crosses back (a down-message
// paying the reverse half) and the domain walks its own downlink and
// finishes. Every up-message produces exactly one down-message (msgDone or
// msgFail), which is what lets the domain own the logical request (win
// latch, retries, hedging, client resubmission) while the core owns the
// attempt.
//
// Determinism: the coordinator delivers cross-shard messages in (At, Src,
// Seq) order at window barriers, so output is a fixed-seed deterministic
// function of the scenario — bit-identical for every Shards >= 2 and every
// GOMAXPROCS. It is, however, a DIFFERENT deterministic family than the
// sequential kernel: each domain draws arrivals and link loss from its own
// seeded streams (rngutil.NewSeeder(Seed+401)), the core picks the replica
// when the crossing arrives (not when the client submits), breaker success
// resets on every core completion, hedge losers run to their natural end on
// the core (the domain win-latch discards them), and hoisted backhaul
// propagation is paid in the crossing rather than on the link (retransmits
// re-pay bandwidth but not propagation). Shards <= 1 never reaches this
// file and stays byte-for-byte the sequential kernel.

import (
	"fmt"
	"math"
	"sort"

	"e2clab/internal/fault"
	"e2clab/internal/netem"
	"e2clab/internal/resilience"
	"e2clab/internal/rngutil"
	"e2clab/internal/sim/shard"
	"e2clab/internal/stats"
)

// Engine roles in a sharded run.
const (
	shNone uint8 = iota
	shDomain
	shCore
)

// Cross-shard message opcodes (Msg.Kind).
const (
	msgUp      int32 = iota + 1 // domain -> core: dispatch one arm (Ref = global gateway, Token = arm token, F0 = deadline)
	msgUpHedge                  // as msgUp, for a hedge arm (Token2 = primary's token, for the avoid-replica hint)
	msgDone                     // core -> domain: the arm completed (Vec = task breakdown)
	msgFail                     // core -> domain: the arm failed on the core side
)

// shWindowShrink keeps the window width strictly below the minimum crossing
// latency, so a message emitted at the very first instant of a run (or at a
// window's open boundary) is still due strictly after the window ends.
const shWindowShrink = 1 - 1.0/(1<<20)

// shSlot is one in-flight inbox delivery: the message value and a bound
// continuation that applies it. Slots are pooled per engine so the window
// loop applies messages without allocating.
type shSlot struct {
	m  shard.Msg
	fn func()
}

// shSlotGet pops a free slot or builds one (the sanctioned cold-path
// allocation, mirroring newRequest's freelist refill).
//
//simlint:noalloc steady-state delivery reuses pooled slots; the cold branch is the refill point
func (e *engine) shSlotGet() *shSlot {
	if n := len(e.shSlotFree); n > 0 {
		s := e.shSlotFree[n-1]
		e.shSlotFree = e.shSlotFree[:n-1]
		return s
	}
	return e.shSlotNew() //simlint:allow noallocclosure freelist refill is the sanctioned cold path; steady state pops pooled slots above
}

// shSlotNew is the freelist refill: a new slot with its apply continuation
// bound once. Kept out of line so shSlotGet's steady state stays provably
// allocation-free.
//
//go:noinline
func (e *engine) shSlotNew() *shSlot {
	s := &shSlot{}
	s.fn = func() {
		e.applyMsg(&s.m)
		e.shSlotFree = append(e.shSlotFree, s)
	}
	e.shSlots = append(e.shSlots, s)
	return s
}

// shardNode adapts an engine to shard.Node: apply the window's inbox at the
// stamped delivery times, then advance the private engine to the barrier.
type shardNode struct{ e *engine }

func (n shardNode) Advance(until float64, inbox []shard.Msg, out *shard.Outbox) {
	e := n.e
	e.shOut = out
	for i := range inbox {
		s := e.shSlotGet()
		s.m = inbox[i]
		e.sim.At(s.m.At, s.fn)
	}
	e.sim.Run(until)
}

// applyMsg dispatches one delivered cross-shard message.
//
//simlint:noalloc cross-shard message dispatch (request hot path)
func (e *engine) applyMsg(m *shard.Msg) {
	switch m.Kind {
	case msgUp, msgUpHedge:
		e.coreArrive(m)
	case msgDone, msgFail:
		e.domainResolve(m)
	}
}

// shArmPut parks an arm awaiting its down-message and returns its token.
//
//simlint:noalloc token table reuses freelist slots (request hot path)
func (e *engine) shArmPut(req *request) int64 {
	if n := len(e.shArmFree); n > 0 {
		t := e.shArmFree[n-1]
		e.shArmFree = e.shArmFree[:n-1]
		e.shArms[t] = req
		return int64(t)
	}
	e.shArms = append(e.shArms, req)
	return int64(len(e.shArms) - 1)
}

// setTokRep records which replica the core bound to a domain's token, so a
// later hedge crossing can prefer a different one.
//
//simlint:noalloc token->replica table reuses per-domain buffers (request hot path)
func (e *engine) setTokRep(src int32, tok int64, idx int32) {
	s := e.shTokRep[src]
	for int64(len(s)) <= tok {
		s = append(s, 0)
	}
	s[tok] = idx + 1
	e.shTokRep[src] = s
}

// tokRep returns the replica bound to (src, tok), or -1.
//
//simlint:noalloc token->replica lookup (request hot path)
func (e *engine) tokRep(src int32, tok int64) int32 {
	if tok < 0 {
		return -1
	}
	s := e.shTokRep[src]
	if tok >= int64(len(s)) {
		return -1
	}
	return s[tok] - 1
}

//simlint:noalloc token->replica clear (request hot path)
func (e *engine) clearTokRep(src int32, tok int64) {
	if s := e.shTokRep[src]; tok >= 0 && tok < int64(len(s)) {
		s[tok] = 0
	}
}

// domainCrossUp hands an arm that finished its own uplink to the core. The
// crossing itself pays the client->replica half-RTT (plus any hoisted
// backhaul propagation); the arm parks in the token table until its
// down-message.
//
//simlint:noalloc cross-shard emission reuses outbox buffers (request hot path)
func (e *engine) domainCrossUp(req *request) {
	tok := e.shArmPut(req)
	req.shTok = tok
	m := shard.Msg{
		At:    e.sim.Now() + e.shUpLat,
		Kind:  msgUp,
		Ref:   e.shDomGw0 + req.gw,
		Token: tok,
	}
	if e.resOn {
		m.F0 = req.deadline
		if req.pri != nil {
			m.Kind = msgUpHedge
			m.Token2 = req.pri.shTok
		}
	}
	e.shOut.Send(e.shCoreID, m)
}

// domainResolve applies a down-message: the parked arm resumes with the
// core's outcome. The domain owns the logical request — win latch, retry,
// terminal failure and client resubmission all run here.
//
//simlint:noalloc down-message application (request hot path)
func (e *engine) domainResolve(m *shard.Msg) {
	req := e.shArms[m.Token]
	e.shArms[m.Token] = nil
	e.shArmFree = append(e.shArmFree, int32(m.Token))
	if m.Kind == msgDone {
		req.tasks = m.Vec
		req.hop = 0
		req.netDown()
		return
	}
	// msgFail: the attempt died on the core side (deadline, shed, crash
	// loss, churned gateway). The taxonomy counter lives on the core; the
	// domain runs the logical outcome.
	if e.resOn {
		e.resolveArm(req)
		return
	}
	e.cFailed++
	e.freeReqs = append(e.freeReqs, req)
	if !e.openLoop {
		e.submit() // resubmits through live capacity, or parks via dropArrival
	}
}

// coreArrive admits an up-message: pick a live replica (preferring not to
// share the primary's for a hedge), take a request node, and walk the
// backhaul toward the pipeline.
//
//simlint:noalloc up-message admission reuses freelist nodes (request hot path)
func (e *engine) coreArrive(m *shard.Msg) {
	if e.faultsOn && e.repDownCount >= len(e.reps) {
		// Crossed while the last replica was down: the no-survivor loss.
		e.cCrashFail++
		e.coreFailTok(m.Src, m.Token)
		return
	}
	idx := -1
	if m.Kind == msgUpHedge {
		if avoid := e.tokRep(m.Src, m.Token2); avoid >= 0 {
			idx = e.pickReplicaNot(int(avoid))
		}
	}
	if idx < 0 {
		idx = e.pickReplica()
	}
	req := e.newRequest(e.reps[idx]) //simlint:allow noallocclosure newRequest is the freelist refill point; its cold-branch build is the sanctioned allocation site
	req.repIdx = int32(idx)
	req.shSrc = m.Src
	req.shTok = m.Token
	e.setTokRep(m.Src, m.Token, int32(idx))
	if req.netUp == nil {
		req.bindNet() //simlint:allow noallocclosure bindNet is the //go:noinline lazy closure-build cold path
	}
	req.gw = m.Ref
	req.path = &e.net.paths[m.Ref]
	req.hop = 0
	if e.resOn {
		// Overwrite initArm's +Inf with the deadline the domain stamped
		// (same virtual clock on both shards).
		req.deadline = m.F0
	}
	req.netUp()
}

// coreCrossDown sends a completed arm's response back to its domain; the
// crossing pays the replica->client half-RTT plus any hoisted propagation.
//
//simlint:noalloc cross-shard emission reuses outbox buffers (request hot path)
func (e *engine) coreCrossDown(req *request) {
	if e.resOn {
		// Every core completion is a replica success (the domain decides
		// wins); deviation: legacy credits breakers only on winning arms.
		e.brkOk(req.repIdx)
	}
	e.clearTokRep(req.shSrc, req.shTok)
	e.shOut.Send(req.shSrc, shard.Msg{
		At:    e.sim.Now() + e.shDownLat,
		Kind:  msgDone,
		Token: req.shTok,
		Vec:   req.tasks,
	})
	e.freeReqs = append(e.freeReqs, req)
}

// coreEmitFail retires a core-side arm as failed and reports it to the
// owning domain.
//
//simlint:noalloc cross-shard failure emission (event path)
func (e *engine) coreEmitFail(req *request) {
	e.clearTokRep(req.shSrc, req.shTok)
	e.coreFailTok(req.shSrc, req.shTok)
	e.freeReqs = append(e.freeReqs, req)
}

//simlint:noalloc cross-shard failure emission (event path)
func (e *engine) coreFailTok(dst int32, tok int64) {
	e.shOut.Send(dst, shard.Msg{At: e.sim.Now() + e.shDownLat, Kind: msgFail, Token: tok})
}

// submitDomain is submit() on a domain shard: no replica to pick (the core
// does that at crossing arrival), but the mirrored replica count and local
// gateway state gate admission exactly like submitManaged.
//
//simlint:noalloc domain-side submission reuses freelist nodes (request hot path)
func (e *engine) submitDomain() {
	if e.faultsOn {
		if e.repDownCount >= int(e.shRepCount) {
			e.dropArrival()
			return
		}
		if e.gwDownCount >= len(e.net.paths) {
			e.dropArrival()
			return
		}
	}
	g := e.pickGateway()
	req := e.newRequest(nil) //simlint:allow noallocclosure newRequest is the freelist refill point; its cold-branch build is the sanctioned allocation site
	req.repIdx = -1
	if req.netUp == nil {
		req.bindNet() //simlint:allow noallocclosure bindNet is the //go:noinline lazy closure-build cold path
	}
	req.path = &e.net.paths[g]
	req.gw = int32(g)
	req.hop = 0
	if e.resOn {
		e.armRequest(req)
	}
	req.netUp()
}

// mirrorReplica tracks global replica liveness on a domain shard (the
// replica objects live on the core): admission, parking and retry gating
// read the mirrored count.
//
//simlint:noalloc fault mirror on a domain shard (event path)
func (e *engine) mirrorReplica(ri int, down bool) {
	if down {
		if !e.repDown[ri] {
			e.repDown[ri] = true
			e.repDownCount++
		}
		return
	}
	if e.repDown[ri] {
		e.repDown[ri] = false
		e.repDownCount--
		e.drainParked()
	}
}

// repCount is the replica population as seen from this engine's role: a
// domain engine holds no replica objects but mirrors the global count.
//
//simlint:noalloc replica-count check on the request hot path
func (e *engine) repCount() int {
	if e.shRole == shDomain {
		return int(e.shRepCount)
	}
	return len(e.reps)
}

// domRow is one domain's per-tick sampler snapshot; coreRow the core's raw
// resource integrals. The merge in finalize replays the sequential
// sampler's arithmetic over them.
type domRow struct {
	resp      stats.Welford
	completed int
	good      int64
}

type coreRow struct {
	cpuW, gpuW, hB, dB, xB, sB float64
}

// shardedState is a Runner's pooled sharded-run machinery: the derived
// per-role network models, the per-role engines, the coordinator, and the
// reusable fault-routing and sampler-row buffers. Rebuilt when the source
// model pointer or the hoisting decision changes, reused otherwise.
type shardedState struct {
	src                    *NetworkModel
	upHoisted, downHoisted bool

	domModels []*NetworkModel
	coreModel *NetworkModel
	classOf   []int32 // global gateway -> domain index
	classLo   []int32 // domain -> first global gateway index

	domains []*engine
	core    *engine
	nodes   []shard.Node
	coord   *shard.Coordinator

	faultBuf []fault.Event   // compiled global timeline (buffer reused)
	evDom    [][]fault.Event // per-domain routed events (local gateway targets)
	evCore   []fault.Event

	domRows  [][]domRow
	coreRows []coreRow
	ticks    []float64
}

// backhaulFaulted reports whether the run schedules any backhaul link
// event — in which case propagation hoisting is disabled (a LinkDown must
// keep its full semantics on the core's links).
func backhaulFaulted(opts RunOptions) bool {
	if s := opts.Faults; !s.IsZero() {
		for _, f := range s.LinkFlaps {
			if f.Gateway == fault.Backhaul {
				return true
			}
		}
		for _, tr := range s.LinkSchedule {
			if tr.Gateway == fault.Backhaul {
				return true
			}
		}
	}
	for i := range opts.FaultTimeline {
		switch opts.FaultTimeline[i].Kind {
		case fault.LinkDown, fault.LinkUp, fault.LinkSet:
			if opts.FaultTimeline[i].Target == fault.Backhaul {
				return true
			}
		}
	}
	return false
}

// crossingHoists returns the backhaul propagation delay folded into each
// crossing: the first uplink hop's and last downlink hop's DelaySec, in
// whole-payload mode with no backhaul fault events. Packet mode never
// hoists (per-packet pacing depends on the hop's own delay), and faulted
// backhauls keep their delays so LinkDown/LinkSet semantics are exact.
func crossingHoists(nm *NetworkModel, opts RunOptions) (up, down float64) {
	if nm.Packet || backhaulFaulted(opts) {
		return 0, 0
	}
	for _, s := range nm.BackhaulUp {
		if !s.IsZero() {
			up = s.DelaySec
			break
		}
	}
	for i := len(nm.BackhaulDown) - 1; i >= 0; i-- {
		if !nm.BackhaulDown[i].IsZero() {
			down = nm.BackhaulDown[i].DelaySec
			break
		}
	}
	return up, down
}

// hoistDelays copies specs, zeroing the hoisted hop's DelaySec (the
// crossing pays it instead). A pure-delay hop becomes IsZero and is elided
// when the core's links are built.
func hoistDelays(specs []netem.LinkSpec, hoist, last bool) []netem.LinkSpec {
	out := append([]netem.LinkSpec(nil), specs...)
	if !hoist {
		return out
	}
	if last {
		for i := len(out) - 1; i >= 0; i-- {
			if !out[i].IsZero() {
				out[i].DelaySec = 0
				break
			}
		}
		return out
	}
	for i := range out {
		if !out[i].IsZero() {
			out[i].DelaySec = 0
			break
		}
	}
	return out
}

// newShardedState derives the partition from the global model: one
// single-class model per domain (own links only), and a core model whose
// classes keep their gateway counts but lose their link specs (every core
// path aliases the backhaul; global gateway indexing is preserved).
func newShardedState(nm *NetworkModel, upHoisted, downHoisted bool) *shardedState {
	sh := &shardedState{src: nm, upHoisted: upHoisted, downHoisted: downHoisted}
	D := len(nm.Classes)
	ngw := 0
	for _, c := range nm.Classes {
		ngw += c.Gateways
	}
	sh.classOf = make([]int32, ngw)
	sh.classLo = make([]int32, D)
	g := 0
	for ci, c := range nm.Classes {
		sh.classLo[ci] = int32(g)
		for k := 0; k < c.Gateways; k++ {
			sh.classOf[g] = int32(ci)
			g++
		}
	}
	sh.domModels = make([]*NetworkModel, D)
	for d := range sh.domModels {
		sh.domModels[d] = &NetworkModel{
			UploadBytes:   nm.UploadBytes,
			ResponseBytes: nm.ResponseBytes,
			Classes:       []NetworkClass{nm.Classes[d]},
			Packet:        nm.Packet,
			MTUBytes:      nm.MTUBytes,
		}
	}
	core := &NetworkModel{
		UploadBytes:   nm.UploadBytes,
		ResponseBytes: nm.ResponseBytes,
		Classes:       make([]NetworkClass, D),
		BackhaulUp:    hoistDelays(nm.BackhaulUp, upHoisted, false),
		BackhaulDown:  hoistDelays(nm.BackhaulDown, downHoisted, true),
		Packet:        nm.Packet,
		MTUBytes:      nm.MTUBytes,
	}
	for d, c := range nm.Classes {
		core.Classes[d] = NetworkClass{Gateways: c.Gateways} // zero specs: elided, paths alias the backhaul only
	}
	sh.coreModel = core
	sh.domains = make([]*engine, D)
	sh.evDom = make([][]fault.Event, D)
	sh.domRows = make([][]domRow, D)
	return sh
}

// routeFaults validates the fault schedule against the GLOBAL topology
// (mirroring setupFaults), compiles it once with the sequential kernel's
// stream (Seed+307 over the global gateway count), and routes each event:
// gateway and non-backhaul link events to their owning domain (with local
// gateway targets; gateway churn also mirrors globally to the core, which
// fails in-flight crossings), replica events to the core (full crash
// semantics) and to every domain (liveness mirror), backhaul link events to
// the core.
func (sh *shardedState) routeFaults(opts RunOptions, ngw int) error {
	spec := opts.Faults
	if err := spec.Validate(); err != nil {
		return err
	}
	nm := sh.src
	hasBackhaul := false
	for _, s := range nm.BackhaulUp {
		if !s.IsZero() {
			hasBackhaul = true
		}
	}
	for _, s := range nm.BackhaulDown {
		if !s.IsZero() {
			hasBackhaul = true
		}
	}
	checkLinkTarget := func(g int, what string) error {
		if g == fault.Backhaul {
			if !hasBackhaul {
				return fmt.Errorf("plantnet: %s targets the backhaul, but the model has no backhaul links", what)
			}
			return nil
		}
		if g >= ngw {
			return fmt.Errorf("plantnet: %s targets gateway %d of %d", what, g, ngw)
		}
		if c := nm.Classes[sh.classOf[g]]; c.Up.IsZero() && c.Down.IsZero() {
			return fmt.Errorf("plantnet: %s targets gateway %d, whose class has no dedicated uplink", what, g)
		}
		return nil
	}
	if !spec.IsZero() {
		for _, cr := range spec.ReplicaCrashes {
			if cr.Replica >= opts.Replicas {
				return fmt.Errorf("plantnet: crash targets replica %d of %d", cr.Replica, opts.Replicas)
			}
		}
		for _, f := range spec.LinkFlaps {
			if err := checkLinkTarget(f.Gateway, "link flap"); err != nil {
				return err
			}
		}
		for _, tr := range spec.LinkSchedule {
			if err := checkLinkTarget(tr.Gateway, "link transition"); err != nil {
				return err
			}
		}
	}
	if opts.FaultTimeline != nil {
		for i := range opts.FaultTimeline {
			ev := &opts.FaultTimeline[i]
			switch ev.Kind {
			case fault.GatewayLeave, fault.GatewayJoin:
				if ev.Target >= ngw {
					return fmt.Errorf("plantnet: timeline event %d targets gateway %d of %d", i, ev.Target, ngw)
				}
			case fault.ReplicaCrash, fault.ReplicaRecover:
				if ev.Target >= opts.Replicas {
					return fmt.Errorf("plantnet: timeline event %d targets replica %d of %d", i, ev.Target, opts.Replicas)
				}
			case fault.LinkDown, fault.LinkUp, fault.LinkSet:
				if err := checkLinkTarget(ev.Target, "timeline event"); err != nil {
					return err
				}
			}
		}
		sh.faultBuf = append(sh.faultBuf[:0], opts.FaultTimeline...)
	} else {
		sh.faultBuf = fault.CompileInto(sh.faultBuf, spec, opts.Seed+307, opts.Duration, ngw)
	}
	for d := range sh.evDom {
		sh.evDom[d] = sh.evDom[d][:0]
	}
	sh.evCore = sh.evCore[:0]
	for _, ev := range sh.faultBuf {
		switch ev.Kind {
		case fault.GatewayLeave, fault.GatewayJoin:
			d := sh.classOf[ev.Target]
			lev := ev
			lev.Target = ev.Target - int(sh.classLo[d])
			sh.evDom[d] = append(sh.evDom[d], lev)
			sh.evCore = append(sh.evCore, ev) // global mirror: the core fails in-flight crossings of a departed gateway
		case fault.ReplicaCrash, fault.ReplicaRecover:
			sh.evCore = append(sh.evCore, ev)
			for d := range sh.evDom {
				sh.evDom[d] = append(sh.evDom[d], ev) // liveness mirror for admission/parking/retry gating
			}
		case fault.LinkDown, fault.LinkUp, fault.LinkSet:
			if ev.Target == fault.Backhaul {
				sh.evCore = append(sh.evCore, ev)
				continue
			}
			d := sh.classOf[ev.Target]
			lev := ev
			lev.Target = ev.Target - int(sh.classLo[d])
			sh.evDom[d] = append(sh.evDom[d], lev)
		}
	}
	return nil
}

// installShardFaults schedules an engine's routed fault slice, mirroring
// setupFaults' ordering guarantee: fault events are placed on the calendar
// before arrivals and sampler ticks, so at any shared instant they fire
// first. replicas sizes the liveness mirror (a domain tracks the GLOBAL
// replica count; its own reps slice is empty).
func installShardFaults(e *engine, evs []fault.Event, seed int64, replicas int, withRng bool) {
	e.faultEvents = append(e.faultEvents[:0], evs...)
	e.gwDown = resetBools(e.gwDown, len(e.net.paths))
	e.repDown = resetBools(e.repDown, replicas)
	if withRng {
		if e.faultRng == nil {
			e.faultRng = rngutil.New(seed + 313)
		} else {
			e.faultRng.Seed(seed + 313)
		}
	}
	if e.faultStepFn == nil {
		e.faultStepFn = e.faultStep
	}
	for i := range e.faultEvents {
		e.sim.At(e.faultEvents[i].At, e.faultStepFn)
	}
}

// runSharded executes one experiment on the sharded kernel (Shards >= 2;
// opts already defaults-filled and validated by Run).
func (r *Runner) runSharded(opts RunOptions) (*Metrics, error) {
	nm := opts.Network
	if nm == nil {
		return nil, fmt.Errorf("plantnet: Shards >= 2 requires a simulated network model (set RunOptions.Network)")
	}
	hoistUp, hoistDown := crossingHoists(nm, opts)
	upLat := opts.Cal.NetworkRTT/2 + hoistUp
	downLat := opts.Cal.NetworkRTT/2 + hoistDown
	window := math.Min(upLat, downLat) * shWindowShrink
	if window <= 0 {
		return nil, fmt.Errorf("plantnet: sharded kernel needs positive cross-shard lookahead (NetworkRTT is %v)", opts.Cal.NetworkRTT)
	}

	sh := r.sh
	if sh == nil || sh.src != nm || sh.upHoisted != (hoistUp > 0) || sh.downHoisted != (hoistDown > 0) {
		sh = newShardedState(nm, hoistUp > 0, hoistDown > 0)
		r.sh = sh
	}
	D := len(nm.Classes)
	ngw := len(sh.classOf)
	faulted := !opts.Faults.IsZero() || opts.FaultTimeline != nil
	if faulted {
		if err := sh.routeFaults(opts, ngw); err != nil {
			return nil, err
		}
	}

	// Core shard: replicas, pools, backhaul. It inherits the run seed, so
	// its service-time stream (rng) and backhaul loss stream (netRng) are
	// seeded exactly like the sequential kernel's.
	coreOpts := opts
	coreOpts.Network = sh.coreModel
	coreOpts.Clients, coreOpts.OpenLoopRate, coreOpts.Arrivals = 0, 0, nil
	coreOpts.Faults, coreOpts.FaultTimeline = nil, nil
	coreOpts.TraceRequests = 0
	coreOpts.Shards = 0
	ce := prepareEngine(sh.core, coreOpts)
	sh.core = ce
	ce.shRole = shCore
	ce.shDownLat = downLat
	ce.openLoop = true // the core never resubmits; clients live on the domains
	ce.faultsOn = faulted
	if len(ce.shTokRep) != D {
		ce.shTokRep = make([][]int32, D)
	}
	for i := range ce.shTokRep {
		ce.shTokRep[i] = ce.shTokRep[i][:0]
	}
	ce.shSlotFree = append(ce.shSlotFree[:0], ce.shSlots...)
	if faulted {
		installShardFaults(ce, sh.evCore, opts.Seed, opts.Replicas, true)
	}
	if ce.resOn {
		if err := ce.setupResilience(coreOpts); err != nil {
			return nil, err
		}
		// Retries and hedges are domain decisions; the core runs each arm
		// to exactly one outcome.
		ce.resHedgeOn = false
		ce.resHedgeDelay = math.Inf(1)
		ce.resRetryMax = 0
	}

	// Domain shards: one per gateway class, each with its own seeded
	// streams (the domain-partitioned RNG family).
	seeder := rngutil.NewSeeder(opts.Seed + 401)
	for d := 0; d < D; d++ {
		domOpts := opts
		domOpts.Network = sh.domModels[d]
		domOpts.Replicas = 0 // replica objects live on the core
		domOpts.Clients, domOpts.OpenLoopRate, domOpts.Arrivals = 0, 0, nil
		domOpts.Faults, domOpts.FaultTimeline = nil, nil
		domOpts.Shards = 0
		domOpts.Seed = seeder.Next()
		de := prepareEngine(sh.domains[d], domOpts)
		sh.domains[d] = de
		de.shRole = shDomain
		de.shCoreID = int32(D)
		de.shDomGw0 = sh.classLo[d]
		de.shUpLat = upLat
		de.shRepCount = int32(opts.Replicas)
		de.faultsOn = faulted
		for i := range de.shArms {
			de.shArms[i] = nil
		}
		de.shArms = de.shArms[:0]
		de.shArmFree = de.shArmFree[:0]
		de.shSlotFree = append(de.shSlotFree[:0], de.shSlots...)
		if faulted {
			installShardFaults(de, sh.evDom[d], domOpts.Seed, opts.Replicas, false)
		}
		if de.resOn {
			if err := de.setupResilience(domOpts); err != nil {
				return nil, err
			}
			// Breakers guard replicas, which live on the core; serials get
			// a per-domain offset so arm substreams never collide.
			de.resBrkThresh = 0
			de.resSerial = uint64(d+1) << 40
		}
	}

	// Arrivals, split by each domain's share of the gateway population.
	// Closed-loop clients map to gateways exactly like the sequential
	// round-robin (client i -> gateway i mod ngw) and stagger with their
	// own domain's stream; open-loop processes thin the global rate by the
	// domain's gateway fraction.
	switch {
	case opts.Arrivals != nil:
		rates := opts.Arrivals
		lmax := rates.Max()
		for d := 0; d < D; d++ {
			de := sh.domains[d]
			de.openLoop = true
			ld := lmax * float64(nm.Classes[d].Gateways) / float64(ngw)
			se := de.sim
			e := de
			var arrive func()
			arrive = func() {
				if e.rng.Float64()*lmax < rates.At(se.Now()) {
					e.submit()
				}
				se.Schedule(e.rng.ExpFloat64()/ld, arrive)
			}
			se.Schedule(e.rng.ExpFloat64()/ld, arrive)
		}
	case opts.OpenLoopRate > 0:
		for d := 0; d < D; d++ {
			de := sh.domains[d]
			de.openLoop = true
			rate := opts.OpenLoopRate * float64(nm.Classes[d].Gateways) / float64(ngw)
			se := de.sim
			e := de
			var arrive func()
			arrive = func() {
				e.submit()
				se.Schedule(e.rng.ExpFloat64()/rate, arrive)
			}
			se.Schedule(e.rng.ExpFloat64()/rate, arrive)
		}
	default:
		for i := 0; i < opts.Clients; i++ {
			de := sh.domains[sh.classOf[i%ngw]]
			de.sim.Schedule(de.rng.Float64()*2, de.submit)
		}
	}

	// Sampler ticks: each domain snapshots its completion window, the core
	// its resource integrals; finalize merges the rows with the sequential
	// sampler's arithmetic.
	sh.ticks = sh.ticks[:0]
	for t := opts.SampleInterval; t <= opts.Duration+1e-9; t += opts.SampleInterval {
		sh.ticks = append(sh.ticks, t)
	}
	for d := range sh.domRows {
		sh.domRows[d] = sh.domRows[d][:0]
	}
	sh.coreRows = sh.coreRows[:0]
	warmup := opts.Warmup
	for d := 0; d < D; d++ {
		de := sh.domains[d]
		rows := &sh.domRows[d]
		tick := func() {
			*rows = append(*rows, domRow{resp: de.windowResp, completed: de.completed, good: de.goodDone})
			de.windowResp = stats.Welford{}
			if de.resOn && de.resHedgeQ > 0 && de.respRes.N() >= resilience.HedgeMinSamples {
				de.qScratch = de.respRes.Quantiles(de.qScratch[:0], de.resHedgeQ)
				de.resHedgeDelay = de.qScratch[0]
			}
			if de.sim.Now() > warmup && !de.warmupDone {
				de.warmupDone = true
			}
		}
		for _, t := range sh.ticks {
			de.sim.At(t, tick)
		}
	}
	coreTick := func() {
		var row coreRow
		for _, rep := range ce.reps {
			row.cpuW += rep.cpu.WorkIntegral()
			row.gpuW += rep.gpu.WorkIntegral()
			row.hB += rep.http.BusyIntegral()
			row.dB += rep.dl.BusyIntegral()
			row.xB += rep.ex.BusyIntegral()
			row.sB += rep.ss.BusyIntegral()
		}
		sh.coreRows = append(sh.coreRows, row)
		if ce.sim.Now() > warmup && !ce.warmupDone {
			ce.warmupDone = true
		}
	}
	for _, t := range sh.ticks {
		ce.sim.At(t, coreTick)
	}

	if sh.coord == nil {
		nodes := make([]shard.Node, D+1)
		for d := 0; d < D; d++ {
			nodes[d] = shardNode{sh.domains[d]}
		}
		nodes[D] = shardNode{ce}
		sh.nodes = nodes
		sh.coord = shard.NewCoordinator(nodes, window)
	} else {
		sh.coord.Reset(window)
	}
	sh.coord.Run(opts.Duration, opts.Shards)

	return sh.finalize(opts)
}

// weightedVals sorts a (value, weight) pair of parallel slices by value.
type weightedVals struct{ v, w []float64 }

func (p *weightedVals) Len() int           { return len(p.v) }
func (p *weightedVals) Less(i, j int) bool { return p.v[i] < p.v[j] }
func (p *weightedVals) Swap(i, j int) {
	p.v[i], p.v[j] = p.v[j], p.v[i]
	p.w[i], p.w[j] = p.w[j], p.w[i]
}

// weightedQuantile is stats.Quantile generalized to weighted samples: each
// sample covers weight ranks of a total-rank line, and the quantile
// interpolates in the unit gap between adjacent samples' rank spans. With
// all weights 1 it degenerates exactly to the sequential Quantile.
func weightedQuantile(vals, ws []float64, total, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	target := q * (total - 1)
	cum := 0.0
	for i := range vals {
		hi := cum + ws[i] - 1 // highest rank this sample covers
		if target <= hi || i == len(vals)-1 {
			return vals[i]
		}
		if next := cum + ws[i]; target < next {
			frac := target - hi
			return vals[i]*(1-frac) + vals[i+1]*frac
		}
		cum += ws[i]
	}
	return vals[len(vals)-1]
}

// finalize merges the per-shard sampler rows, counters, reservoirs and
// traces into one Metrics, replaying the sequential sampler's arithmetic
// tick by tick (domain windows merge in domain order; resource integrals
// come whole from the core).
func (sh *shardedState) finalize(opts RunOptions) (*Metrics, error) {
	m := &Metrics{Config: opts.Pools, Clients: opts.Clients, Replicas: opts.Replicas,
		Duration: opts.Duration, TaskTimes: make(map[string]stats.Summary)}
	cal, hw := opts.Cal, opts.Hardware
	nRep := float64(opts.Replicas)
	gpuMem := cal.GPUMemGB(opts.Pools)
	sysMem := cal.SysMemGB(opts.Pools)
	D := len(sh.domains)

	var (
		lastCPUWork, lastGPUWork          float64
		lastHTTPB, lastDLB                float64
		lastExB, lastSSB                  float64
		lastT                             float64
		respW, cpuW, gpuW, hB, dB, xB, sB stats.Welford
		gpuPW, cpuPW                      stats.Welford
		energyJ                           float64
		measStartT                        float64
		measStartCompleted                int
		measStartGood                     int64
		warmupSeen                        bool
	)
	for i, t := range sh.ticks {
		dt := t - lastT
		if dt <= 0 {
			continue
		}
		row := sh.coreRows[i]
		s := Sample{Time: t, GPUMemGB: gpuMem, SysMemGB: sysMem}
		s.CPUUtil = (row.cpuW - lastCPUWork) / (hw.CPUCores * nRep * dt)
		lastCPUWork = row.cpuW
		s.GPUUtil = (row.gpuW - lastGPUWork) / (cal.GPURate * nRep * dt)
		lastGPUWork = row.gpuW
		s.GPUPowerW = (cal.GPUIdlePowerW + cal.GPUPowerSlopeW*s.GPUUtil) * nRep
		s.CPUPowerW = (cal.CPUIdlePowerW + cal.CPUPowerSlopeW*s.CPUUtil) * nRep
		s.HTTPBusy = (row.hB - lastHTTPB) / (float64(opts.Pools.HTTP) * nRep * dt)
		s.DownloadBusy = (row.dB - lastDLB) / (float64(opts.Pools.Download) * nRep * dt)
		s.ExtractBusy = (row.xB - lastExB) / (float64(opts.Pools.Extract) * nRep * dt)
		s.SimsearchBusy = (row.sB - lastSSB) / (float64(opts.Pools.Simsearch) * nRep * dt)
		lastHTTPB, lastDLB, lastExB, lastSSB = row.hB, row.dB, row.xB, row.sB
		var w stats.Welford
		completedNow := 0
		goodNow := int64(0)
		for d := 0; d < D; d++ {
			dr := sh.domRows[d][i]
			w.Merge(dr.resp)
			completedNow += dr.completed
			goodNow += dr.good
		}
		if w.N() > 0 {
			s.RespTime = w.Mean()
			s.Throughput = float64(w.N()) / dt
		} else {
			s.RespTime = math.NaN()
		}
		lastT = t
		if t > opts.Warmup {
			if !warmupSeen {
				warmupSeen = true
				measStartT = t
				measStartCompleted = completedNow
				measStartGood = goodNow
			} else {
				if !math.IsNaN(s.RespTime) {
					respW.Add(s.RespTime)
				}
				cpuW.Add(s.CPUUtil)
				gpuW.Add(s.GPUUtil)
				gpuPW.Add(s.GPUPowerW)
				cpuPW.Add(s.CPUPowerW)
				energyJ += (s.GPUPowerW + s.CPUPowerW) * dt
				hB.Add(s.HTTPBusy)
				dB.Add(s.DownloadBusy)
				xB.Add(s.ExtractBusy)
				sB.Add(s.SimsearchBusy)
				m.Samples = append(m.Samples, s)
			}
		}
	}

	totCompleted := 0
	var totGood int64
	for _, de := range sh.domains {
		totCompleted += de.completed
		totGood += de.goodDone
	}
	m.Completed = totCompleted
	m.UserResponseTime = respW.Snapshot()
	m.CPUUtil = cpuW.Snapshot()
	m.GPUUtil = gpuW.Snapshot()
	m.GPUPowerW = gpuPW.Snapshot()
	m.CPUPowerW = cpuPW.Snapshot()
	if measured := totCompleted - measStartCompleted; measured > 0 {
		m.EnergyPerRequestJ = energyJ / float64(measured)
	}
	m.HTTPBusy = hB.Snapshot()
	m.DownloadBusy = dB.Snapshot()
	m.ExtractBusy = xB.Snapshot()
	m.SimsearchBusy = sB.Snapshot()
	m.GPUMemGB = gpuMem
	m.SysMemGB = sysMem
	if span := opts.Duration - measStartT; span > 0 && warmupSeen {
		m.Throughput = float64(totCompleted-measStartCompleted) / span
	}

	// Response percentiles: merge the per-domain reservoirs as weighted
	// samples (each reservoir value stands for N/len(values) requests), so
	// unevenly loaded domains contribute in proportion to their traffic.
	var pv, pw []float64
	var totalN float64
	for _, de := range sh.domains {
		n := de.respRes.N()
		if n == 0 {
			continue
		}
		vals := de.respRes.Values()
		wgt := float64(n) / float64(len(vals))
		for _, v := range vals {
			pv = append(pv, v)
			pw = append(pw, wgt)
		}
		totalN += float64(n)
	}
	if totalN > 0 {
		sort.Sort(&weightedVals{pv, pw})
		m.RespP50 = weightedQuantile(pv, pw, totalN, 0.50)
		m.RespP95 = weightedQuantile(pv, pw, totalN, 0.95)
		m.RespP99 = weightedQuantile(pv, pw, totalN, 0.99)
	}

	for i, name := range TaskNames {
		var w stats.Welford
		w.Merge(sh.core.taskAgg[i])
		for _, de := range sh.domains {
			w.Merge(de.taskAgg[i])
		}
		m.TaskTimes[name] = w.Snapshot()
	}

	if opts.TraceRequests > 0 {
		var all []RequestTrace
		for _, de := range sh.domains {
			all = append(all, de.traces...)
		}
		sort.SliceStable(all, func(i, j int) bool {
			return all[i].Start+all[i].Response < all[j].Start+all[j].Response
		})
		if len(all) > opts.TraceRequests {
			all = all[:opts.TraceRequests]
		}
		m.Traces = all
	}

	sumCounters := func(en *engine) {
		if en.net != nil {
			for _, l := range en.net.links {
				m.NetDelivered += l.Delivered()
				m.NetRetransmits += l.Retransmits()
			}
		}
		m.GatewayFailures += en.cGatewayFail
		m.CrashRequeues += en.cCrashReq
		m.CrashFailures += en.cCrashFail
		m.DroppedArrivals += en.cDropped
		m.Retries += en.cRetries
		m.RetrySuccesses += en.cRetrySucc
		m.Hedges += en.cHedges
		m.HedgeWins += en.cHedgeWins
		m.Rerouted += en.cRerouted
		m.Shed += en.cShed
		m.BreakerOpens += en.cBrkOpens
		m.DeadlineExceeded += en.cDeadline
		m.FailedRequests += en.cFailed
	}
	for _, de := range sh.domains {
		sumCounters(de)
	}
	sumCounters(sh.core)

	if tot := int64(totCompleted) + m.FailedRequests; tot > 0 {
		m.AvailabilityFraction = float64(int64(totCompleted)) / float64(tot)
	} else {
		m.AvailabilityFraction = 1
	}
	m.Goodput = m.Throughput
	if sh.core.resOn {
		m.Goodput = 0
		if span := opts.Duration - measStartT; span > 0 && warmupSeen {
			m.Goodput = float64(totGood-measStartGood) / span
		}
	}
	return m, nil
}
