package plantnet

import "e2clab/internal/monitor"

// Registry exports the experiment's sampled metrics as monitoring time
// series — the hand-off from the engine model to E2Clab's monitoring
// manager (SLO checks, CSV persistence, downsampling).
func (m *Metrics) Registry() *monitor.Registry {
	r := monitor.NewRegistry()
	series := []struct {
		name string
		get  func(Sample) float64
	}{
		{"user_resp_time", func(s Sample) float64 { return s.RespTime }},
		{"throughput", func(s Sample) float64 { return s.Throughput }},
		{"cpu_util", func(s Sample) float64 { return s.CPUUtil }},
		{"gpu_util", func(s Sample) float64 { return s.GPUUtil }},
		{"gpu_power_w", func(s Sample) float64 { return s.GPUPowerW }},
		{"cpu_power_w", func(s Sample) float64 { return s.CPUPowerW }},
		{"gpu_mem_gb", func(s Sample) float64 { return s.GPUMemGB }},
		{"sys_mem_gb", func(s Sample) float64 { return s.SysMemGB }},
		{"http_busy", func(s Sample) float64 { return s.HTTPBusy }},
		{"download_busy", func(s Sample) float64 { return s.DownloadBusy }},
		{"extract_busy", func(s Sample) float64 { return s.ExtractBusy }},
		{"simsearch_busy", func(s Sample) float64 { return s.SimsearchBusy }},
	}
	for _, def := range series {
		ts := r.Series(def.name)
		for _, s := range m.Samples {
			// Samples are time-ordered by construction; Add cannot fail.
			_ = ts.Add(s.Time, def.get(s))
		}
	}
	return r
}
