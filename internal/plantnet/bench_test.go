package plantnet

import "testing"

// BenchmarkEngineSimulation measures the cost of one 200-second engine
// experiment at the 80-request workload (the unit of every optimization
// evaluation).
func BenchmarkEngineSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(RunOptions{Pools: Baseline, Clients: 80, Duration: 200, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSimulationPooled is the same experiment on a reused
// Runner — the RunRepeated steady state, where the per-run setup
// (engine arena, replicas, reservoir, request nodes) is already paid.
func BenchmarkEngineSimulationPooled(b *testing.B) {
	rn := NewRunner()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rn.Run(RunOptions{Pools: Baseline, Clients: 80, Duration: 200, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSimulationHeavy is the 160-client saturated case.
func BenchmarkEngineSimulationHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(RunOptions{Pools: PreliminaryOptimum, Clients: 160, Duration: 200, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}
