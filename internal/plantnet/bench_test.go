package plantnet

import (
	"runtime"
	"testing"

	"e2clab/internal/netem"
)

// BenchmarkEngineSimulation measures the cost of one 200-second engine
// experiment at the 80-request workload (the unit of every optimization
// evaluation).
func BenchmarkEngineSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(RunOptions{Pools: Baseline, Clients: 80, Duration: 200, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSimulationPooled is the same experiment on a reused
// Runner — the RunRepeated steady state, where the per-run setup
// (engine arena, replicas, reservoir, request nodes) is already paid.
func BenchmarkEngineSimulationPooled(b *testing.B) {
	rn := NewRunner()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rn.Run(RunOptions{Pools: Baseline, Clients: 80, Duration: 200, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSimulationHeavy is the 160-client saturated case.
func BenchmarkEngineSimulationHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(RunOptions{Pools: PreliminaryOptimum, Clients: 160, Duration: 200, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// shardedScaleOpts is the BenchmarkShardedScale configuration: a 10k-gateway
// edge tier (64 classes x 160 gateways) on packetized lossy uplinks with no
// shared backhaul, so the domain shards carry the packet-level event load.
// NetworkRTT is set to a remote-edge 160 ms so the conservative windows
// (RTT/2) are wide enough to amortize the barrier — the regime the sharded
// kernel is for (the README's "when shards help"). Even on ONE core this
// config runs the sharded kernel at parity or slightly ahead of the
// sequential one (65 small calendar heaps beat one 10k-gateway heap); the
// headline >= 2x wall-clock win needs >= 4 real cores for the worker pool.
func shardedScaleOpts(shards int, seed int64) RunOptions {
	nm := &NetworkModel{
		UploadBytes:   80e3,
		ResponseBytes: 8e3,
		Packet:        true,
		MTUBytes:      1500,
	}
	for c := 0; c < 64; c++ {
		nm.Classes = append(nm.Classes, NetworkClass{
			Gateways: 160,
			Up:       netem.LinkSpec{DelaySec: 0.010 + float64(c%8)*0.005, RateBps: 8e6, LossPct: 0.5},
			Down:     netem.LinkSpec{DelaySec: 0.010 + float64(c%8)*0.005, RateBps: 10e6},
		})
	}
	cal := DefaultCalibration()
	cal.NetworkRTT = 0.16
	return RunOptions{
		Pools:    Baseline,
		Clients:  10240,
		Network:  nm,
		Replicas: 4,
		Duration: 60,
		Warmup:   20,
		Seed:     seed,
		Shards:   shards,
		Cal:      cal,
	}
}

// BenchmarkShardedScale compares the sequential kernel against the
// domain-sharded kernel at 10,240 gateways. The shards=4 case is the
// headline number: on a host with >= 4 real cores it must beat shards=1 by
// >= 2x wall-clock (both subbenches pin GOMAXPROCS=4 so the ratio measures
// the conservative-window parallelism, not core count drift). On a
// single-core host the two land near parity — the snapshot then records the
// sharding overhead, not the speedup.
func BenchmarkShardedScale(b *testing.B) {
	for _, bc := range []struct {
		name   string
		shards int
	}{{"shards=1", 1}, {"shards=4", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			prev := runtime.GOMAXPROCS(4)
			defer runtime.GOMAXPROCS(prev)
			rn := NewRunner()
			// One options value across iterations: the sharded state cache
			// is keyed by the NetworkModel pointer, so rebuilding the spec
			// every iteration would re-derive the per-domain models and
			// measure setup, not simulation.
			opts := shardedScaleOpts(bc.shards, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts.Seed = int64(i + 1)
				if _, err := rn.Run(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
