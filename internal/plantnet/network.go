package plantnet

import (
	"fmt"
	"math/rand"

	"e2clab/internal/netem"
	"e2clab/internal/sim"
)

// NetworkModel switches a run from the analytical network (the caller
// prices the request path in closed form via netem.TransferSeconds and adds
// it outside the engine) to the simulated network continuum: every request
// traverses explicit per-hop sim.Links — its gateway's uplink, then the
// shared backhaul toward the engine — before the pipeline, and the reverse
// path after it. Links are bandwidth-shared and loss-aware, so bursts queue
// on slow uplinks and degradation interacts with load, which the analytical
// constant cannot capture.
//
// Clients are spread round-robin over the gateways of all classes in
// declaration order (mirroring the replica assignment), so a class with
// twice the gateways carries twice the traffic. Each gateway is its own
// uplink contention domain; the backhaul hops are shared by every request
// in the run.
type NetworkModel struct {
	// UploadBytes / ResponseBytes size the payloads crossing the links
	// (request photo up, identification result down).
	UploadBytes   float64
	ResponseBytes float64
	// Classes describes the gateway tiers (at least one).
	Classes []NetworkClass
	// BackhaulUp holds the shared hops beyond the gateway uplink in
	// device->engine order; BackhaulDown the response hops in
	// engine->device order. Zero specs are elided when links are built.
	BackhaulUp   []netem.LinkSpec
	BackhaulDown []netem.LinkSpec
	// Packet switches every link to packetized TCP-like transport
	// (per-packet loss + AIMD congestion windows of MTUBytes packets)
	// instead of whole-payload geometric resend — the "packet" network
	// model. MTUBytes <= 0 selects the 1500-byte default.
	Packet   bool
	MTUBytes float64
}

// NetworkClass is a homogeneous group of gateways sharing an uplink
// quality; each gateway gets its own pair of uplink links (one per
// direction) shared by the clients routed through it.
type NetworkClass struct {
	Gateways int
	Up, Down netem.LinkSpec
}

// Validate rejects structurally unusable models.
func (nm *NetworkModel) Validate() error {
	if len(nm.Classes) == 0 {
		return fmt.Errorf("plantnet: network model needs at least one gateway class")
	}
	for i, c := range nm.Classes {
		if c.Gateways < 1 {
			return fmt.Errorf("plantnet: network class %d has %d gateways", i, c.Gateways)
		}
	}
	if nm.UploadBytes < 0 || nm.ResponseBytes < 0 {
		return fmt.Errorf("plantnet: negative payload sizes %v/%v", nm.UploadBytes, nm.ResponseBytes)
	}
	return nil
}

// gatewayPath is one gateway's hop sequence: up in device->engine order,
// down in engine->device order. Backhaul entries alias the shared links.
type gatewayPath struct {
	up, down []*sim.Link
}

// netState is the instantiated network of one run: every built link (for
// reset and stat aggregation) plus the per-gateway paths requests cycle
// through. For fault targeting it also records each gateway's OWN uplink
// pair (excluding backhaul aliases) and the shared backhaul links.
type netState struct {
	links              []*sim.Link
	paths              []gatewayPath
	own                [][2]*sim.Link // per gateway: dedicated up/down links (nil when the class has none)
	backhaul           []*sim.Link    // shared backhaul links, both directions
	upBytes, downBytes float64
}

// buildNetState instantiates the model's links on the engine. All loss
// draws come from rng in event order, so a run is deterministic in its
// seed; the construction itself draws nothing.
func buildNetState(se *sim.Engine, nm *NetworkModel, rng *rand.Rand) *netState {
	ns := &netState{upBytes: nm.UploadBytes, downBytes: nm.ResponseBytes}
	build := func(spec netem.LinkSpec) *sim.Link {
		l := spec.Build(se, rng)
		if nm.Packet {
			l.EnablePacket(nm.MTUBytes)
		}
		ns.links = append(ns.links, l)
		return l
	}
	var backUp, backDown []*sim.Link
	for _, spec := range nm.BackhaulUp {
		if !spec.IsZero() {
			backUp = append(backUp, build(spec))
		}
	}
	for _, spec := range nm.BackhaulDown {
		if !spec.IsZero() {
			backDown = append(backDown, build(spec))
		}
	}
	ns.backhaul = append(append([]*sim.Link(nil), backUp...), backDown...)
	for _, c := range nm.Classes {
		for g := 0; g < c.Gateways; g++ {
			var up, down []*sim.Link
			var pair [2]*sim.Link
			if !c.Up.IsZero() {
				pair[0] = build(c.Up)
				up = append(up, pair[0])
			}
			up = append(up, backUp...)
			down = append(down, backDown...)
			if !c.Down.IsZero() {
				pair[1] = build(c.Down)
				down = append(down, pair[1])
			}
			ns.own = append(ns.own, pair)
			ns.paths = append(ns.paths, gatewayPath{up: up, down: down})
		}
	}
	return ns
}

// reset returns every link to a fresh state after an Engine.Reset; the
// owner re-seeds the shared rng.
func (ns *netState) reset() {
	for _, l := range ns.links {
		l.Reset()
	}
}
