package plantnet

import (
	"e2clab/internal/rngutil"
	"e2clab/internal/stats"
)

// Repeated runs the same experiment `repeats` times with derived seeds and
// aggregates the user response time across all samples of all runs — the
// paper's protocol: 7 experiments of 23 minutes, metric collected every
// 10 s, reported as mean ± std over the 966 measurements.
type Repeated struct {
	Runs []*Metrics
	// UserResponseTime pools every post-warmup sample of every run.
	UserResponseTime stats.Summary
	// Throughput averages the per-run throughputs.
	Throughput float64
}

// RunRepeated executes opts.Pools under opts repeats times.
func RunRepeated(opts RunOptions, repeats int) (*Repeated, error) {
	if repeats < 1 {
		repeats = 1
	}
	seeder := rngutil.NewSeeder(opts.Seed + 7)
	out := &Repeated{}
	var pooled stats.Welford
	var thr float64
	for i := 0; i < repeats; i++ {
		o := opts
		o.Seed = seeder.Next()
		m, err := Run(o)
		if err != nil {
			return nil, err
		}
		out.Runs = append(out.Runs, m)
		for _, s := range m.Samples {
			if !isNaN(s.RespTime) {
				pooled.Add(s.RespTime)
			}
		}
		thr += m.Throughput
	}
	out.UserResponseTime = pooled.Snapshot()
	out.Throughput = thr / float64(repeats)
	return out, nil
}

func isNaN(v float64) bool { return v != v }
