package plantnet

import (
	"runtime"
	"sync"
	"sync/atomic"

	"e2clab/internal/rngutil"
	"e2clab/internal/stats"
)

// Repeated runs the same experiment `repeats` times with derived seeds and
// aggregates the user response time across all samples of all runs — the
// paper's protocol: 7 experiments of 23 minutes, metric collected every
// 10 s, reported as mean ± std over the 966 measurements.
type Repeated struct {
	Runs []*Metrics
	// UserResponseTime pools every post-warmup sample of every run.
	UserResponseTime stats.Summary
	// Throughput averages the per-run throughputs.
	Throughput float64
}

// RunRepeated executes opts.Pools under opts repeats times. All run seeds
// are derived up front from opts.Seed, so the runs are independent and
// execute concurrently on a worker pool bounded by opts.MaxParallel
// (default GOMAXPROCS). Results are aggregated in run-index order after
// every run completes, so the output — including the floating-point
// accumulation order of the pooled statistics — is identical to a
// sequential execution for a fixed seed. On error, the first failure in
// run-index order is returned.
//
// Each worker carries one Runner across its runs, so the per-run setup —
// simulation arena, replicas, pools, reservoir, request nodes and their
// bound stage closures — is paid once per worker instead of once per
// repeat. A Runner's reset is bit-complete, so the pooled execution is
// byte-identical to running every repeat on a fresh engine (enforced by
// the golden and repeat-determinism tests).
func RunRepeated(opts RunOptions, repeats int) (*Repeated, error) {
	return NewRunner().RunRepeated(opts, repeats)
}

// RunRepeated is the Runner-bound form of the package-level RunRepeated:
// the sequential path reuses the receiver's pooled state, so callers that
// execute many RunRepeated batches (e.g. the phases of one scenario) pay
// engine setup once. Parallel workers pool privately (a Runner is
// single-threaded).
//
//simlint:ordered seeds are derived up front and each worker writes runs[i]/errs[i] for the indices it claims; aggregation below walks index order (determinism pinned by repeat tests)
func (r *Runner) RunRepeated(opts RunOptions, repeats int) (*Repeated, error) {
	if repeats < 1 {
		repeats = 1
	}
	seeder := rngutil.NewSeeder(opts.Seed + 7)
	seeds := make([]int64, repeats)
	for i := range seeds {
		seeds[i] = seeder.Next()
	}
	runs := make([]*Metrics, repeats)
	errs := make([]error, repeats)
	workers := opts.MaxParallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > repeats {
		workers = repeats
	}
	if workers <= 1 {
		for i := 0; i < repeats; i++ {
			o := opts
			o.Seed = seeds[i]
			runs[i], errs[i] = r.Run(o)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rn := NewRunner()
				for {
					i := int(next.Add(1)) - 1
					if i >= repeats {
						return
					}
					o := opts
					o.Seed = seeds[i]
					runs[i], errs[i] = rn.Run(o)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := &Repeated{Runs: runs}
	var pooled stats.Welford
	var thr float64
	for _, m := range runs {
		for _, s := range m.Samples {
			if !isNaN(s.RespTime) {
				pooled.Add(s.RespTime)
			}
		}
		thr += m.Throughput
	}
	out.UserResponseTime = pooled.Snapshot()
	out.Throughput = thr / float64(repeats)
	return out, nil
}

func isNaN(v float64) bool { return v != v }
