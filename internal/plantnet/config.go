// Package plantnet models the Pl@ntNet Identification Engine: the exact
// nine-task pipeline of Table I executing on the four thread pools of
// Table II, over a processor-sharing CPU and a limited-parallelism GPU.
//
// The real engine is a proprietary Docker service; this package is the
// calibrated discrete-event substitute (see DESIGN.md). Its free parameters
// live in Calibration and are fixed so that the simulated engine reproduces
// the queueing phenomena the paper measures on Grid'5000 chifflot nodes:
// HTTP-pool-bound throughput at the baseline configuration, GPU saturation
// at ~6 concurrent inferences, CPU saturation when the extract pool grows
// to 8-9 threads, and the response-time optima at extract=6 / simsearch=55.
package plantnet

import "fmt"

// PoolConfig is a thread-pool configuration of the Identification Engine —
// the optimization variables of the paper's Equation 2.
type PoolConfig struct {
	HTTP      int // simultaneous requests being processed (CPU)
	Download  int // simultaneous images being downloaded (CPU)
	Extract   int // simultaneous inferences in a single GPU (GPU)
	Simsearch int // simultaneous similarity searches (CPU)
}

// Baseline is the production configuration of Table II, defined by
// Pl@ntNet engineers from practical experience.
var Baseline = PoolConfig{HTTP: 40, Download: 40, Extract: 7, Simsearch: 40}

// PreliminaryOptimum is the configuration found by the paper's Bayesian
// optimization methodology (Table III).
var PreliminaryOptimum = PoolConfig{HTTP: 54, Download: 54, Extract: 7, Simsearch: 53}

// RefinedOptimum is the configuration after OAT sensitivity analysis
// (Table IV): extract refined from 7 to 6.
var RefinedOptimum = PoolConfig{HTTP: 54, Download: 54, Extract: 6, Simsearch: 53}

// Validate checks pool sizes are positive.
func (c PoolConfig) Validate() error {
	if c.HTTP < 1 || c.Download < 1 || c.Extract < 1 || c.Simsearch < 1 {
		return fmt.Errorf("plantnet: invalid pool config %+v", c)
	}
	return nil
}

// Vector renders the configuration in the optimization-variable order of
// Equation 2: (http, download, simsearch, extract).
func (c PoolConfig) Vector() []float64 {
	return []float64{float64(c.HTTP), float64(c.Download), float64(c.Simsearch), float64(c.Extract)}
}

// FromVector builds a PoolConfig from the Equation 2 variable order.
func FromVector(x []float64) PoolConfig {
	return PoolConfig{
		HTTP:      int(x[0]),
		Download:  int(x[1]),
		Simsearch: int(x[2]),
		Extract:   int(x[3]),
	}
}

func (c PoolConfig) String() string {
	return fmt.Sprintf("http=%d download=%d extract=%d simsearch=%d", c.HTTP, c.Download, c.Extract, c.Simsearch)
}

// Hardware describes the node running the Identification Engine. Defaults
// follow Grid'5000 chifflot: 2x Xeon Gold 6126 (24 cores), one Tesla
// V100-PCIE-32GB.
type Hardware struct {
	CPUCores float64
	GPUMemGB float64
	SysMemGB float64
}

// Chifflot is the paper's engine node.
func Chifflot() Hardware { return Hardware{CPUCores: 24, GPUMemGB: 32, SysMemGB: 192} }

// TaskNames lists the identification processing steps of Table I, in
// execution order.
var TaskNames = []string{
	"pre-process",
	"wait-download",
	"download",
	"wait-extract",
	"extract",
	"process",
	"wait-simsearch",
	"simsearch",
	"post-process",
}
