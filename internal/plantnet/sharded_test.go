package plantnet

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"e2clab/internal/fault"
	"e2clab/internal/netem"
	"e2clab/internal/resilience"
)

// metricsFingerprint renders every Metrics field bit-exactly (floats as raw
// IEEE-754 bits), so two runs compare byte-for-byte including NaN samples.
func metricsFingerprint(m *Metrics) string {
	var b strings.Builder
	f := func(name string, x float64) { fmt.Fprintf(&b, "%s=%016x\n", name, math.Float64bits(x)) }
	i := func(name string, x int64) { fmt.Fprintf(&b, "%s=%d\n", name, x) }
	sum := func(name string, s struct {
		N      int
		Mean   float64
		StdDev float64
		Min    float64
		Max    float64
	}) {
		i(name+".N", int64(s.N))
		f(name+".Mean", s.Mean)
		f(name+".StdDev", s.StdDev)
		f(name+".Min", s.Min)
		f(name+".Max", s.Max)
	}
	i("Completed", int64(m.Completed))
	sum("UserResponseTime", m.UserResponseTime)
	f("RespP50", m.RespP50)
	f("RespP95", m.RespP95)
	f("RespP99", m.RespP99)
	f("Throughput", m.Throughput)
	for _, name := range TaskNames {
		sum("TaskTimes."+name, m.TaskTimes[name])
	}
	sum("CPUUtil", m.CPUUtil)
	sum("GPUUtil", m.GPUUtil)
	sum("GPUPowerW", m.GPUPowerW)
	sum("CPUPowerW", m.CPUPowerW)
	sum("HTTPBusy", m.HTTPBusy)
	sum("DownloadBusy", m.DownloadBusy)
	sum("ExtractBusy", m.ExtractBusy)
	sum("SimsearchBusy", m.SimsearchBusy)
	f("GPUMemGB", m.GPUMemGB)
	f("SysMemGB", m.SysMemGB)
	f("EnergyPerRequestJ", m.EnergyPerRequestJ)
	i("NetDelivered", m.NetDelivered)
	i("NetRetransmits", m.NetRetransmits)
	i("GatewayFailures", m.GatewayFailures)
	i("CrashRequeues", m.CrashRequeues)
	i("CrashFailures", m.CrashFailures)
	i("DroppedArrivals", m.DroppedArrivals)
	i("Retries", m.Retries)
	i("RetrySuccesses", m.RetrySuccesses)
	i("Hedges", m.Hedges)
	i("HedgeWins", m.HedgeWins)
	i("Rerouted", m.Rerouted)
	i("Shed", m.Shed)
	i("BreakerOpens", m.BreakerOpens)
	i("DeadlineExceeded", m.DeadlineExceeded)
	i("FailedRequests", m.FailedRequests)
	f("AvailabilityFraction", m.AvailabilityFraction)
	f("Goodput", m.Goodput)
	for k, s := range m.Samples {
		fmt.Fprintf(&b, "S%d=%016x,%016x,%016x,%016x,%016x,%016x,%016x,%016x,%016x,%016x,%016x,%016x\n",
			k, math.Float64bits(s.Time), math.Float64bits(s.RespTime), math.Float64bits(s.Throughput),
			math.Float64bits(s.CPUUtil), math.Float64bits(s.GPUUtil), math.Float64bits(s.GPUPowerW),
			math.Float64bits(s.CPUPowerW), math.Float64bits(s.GPUMemGB), math.Float64bits(s.SysMemGB),
			math.Float64bits(s.HTTPBusy), math.Float64bits(s.DownloadBusy), math.Float64bits(s.ExtractBusy))
	}
	for k, tr := range m.Traces {
		fmt.Fprintf(&b, "T%d=%016x,%016x", k, math.Float64bits(tr.Start), math.Float64bits(tr.Response))
		for _, v := range tr.Tasks {
			fmt.Fprintf(&b, ",%016x", math.Float64bits(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// shardedNetModel is a small heterogeneous two-class topology with a shared
// backhaul, used by the fixed sharded tests.
func shardedNetModel(packet bool) *NetworkModel {
	return &NetworkModel{
		UploadBytes:   100e3,
		ResponseBytes: 10e3,
		Classes: []NetworkClass{
			{Gateways: 3, Up: netem.LinkSpec{DelaySec: 0.010, RateBps: 20e6}, Down: netem.LinkSpec{DelaySec: 0.010, RateBps: 20e6}},
			{Gateways: 2, Up: netem.LinkSpec{DelaySec: 0.030, RateBps: 6e6, LossPct: 1}, Down: netem.LinkSpec{DelaySec: 0.030, RateBps: 8e6}},
		},
		BackhaulUp:   []netem.LinkSpec{{DelaySec: 0.020, RateBps: 200e6}},
		BackhaulDown: []netem.LinkSpec{{DelaySec: 0.020, RateBps: 200e6}},
		Packet:       packet,
		MTUBytes:     1500,
	}
}

// TestShardedShardCountInvariance is the tentpole determinism contract: a
// faulted, policied, simulated-network run must be bit-identical for every
// Shards >= 2 — the shard count is only the worker count.
func TestShardedShardCountInvariance(t *testing.T) {
	for _, packet := range []bool{false, true} {
		name := "payload"
		if packet {
			name = "packet"
		}
		t.Run(name, func(t *testing.T) {
			opts := RunOptions{
				Pools:    Baseline,
				Clients:  40,
				Network:  shardedNetModel(packet),
				Replicas: 2,
				Duration: 120,
				Warmup:   30,
				Seed:     17,
				Shards:   2,
				Faults: &fault.Spec{
					GatewayChurn:   &fault.Churn{MeanUpSeconds: 40, MeanDownSeconds: 6},
					ReplicaCrashes: []fault.Crash{{Replica: 1, AtSeconds: 50, RecoverAfterSeconds: 25}},
				},
				Resilience: &resilience.Policy{
					TimeoutSeconds: 12,
					Retry:          &resilience.Retry{Max: 2},
					Hedge:          &resilience.Hedge{DelaySeconds: 6},
					Failover:       true,
					Shed:           &resilience.Shed{QueueDepth: 200},
				},
				TraceRequests: 8,
			}
			ref, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Completed == 0 {
				t.Fatal("sharded reference run completed nothing")
			}
			want := metricsFingerprint(ref)
			for _, shards := range []int{3, 4, 8} {
				o := opts
				o.Shards = shards
				m, err := Run(o)
				if err != nil {
					t.Fatal(err)
				}
				if got := metricsFingerprint(m); got != want {
					t.Errorf("Shards=%d diverged from Shards=2:\n%s", shards, firstDiff(got, want))
				}
			}
		})
	}
}

// firstDiff returns the first differing line of two fingerprints.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d: got %s want %s", i, g[i], w[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(g), len(w))
}

// TestShardedRandomizedInvariance fuzzes scenario shapes — class layout,
// link specs, transport, workload mode, faults, policies — and checks the
// full-metrics bit-identity across shard counts for each.
func TestShardedRandomizedInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for c := 0; c < 6; c++ {
		opts := RunOptions{
			Pools:    Baseline,
			Duration: 90,
			Warmup:   30,
			Seed:     int64(1000 + c),
			Replicas: 1 + rng.Intn(3),
			Shards:   2,
		}
		nm := &NetworkModel{
			UploadBytes:   50e3 + rng.Float64()*100e3,
			ResponseBytes: 5e3 + rng.Float64()*20e3,
			Packet:        rng.Intn(2) == 0,
			MTUBytes:      1500,
		}
		nc := 2 + rng.Intn(3)
		for k := 0; k < nc; k++ {
			nm.Classes = append(nm.Classes, NetworkClass{
				Gateways: 1 + rng.Intn(3),
				Up:       netem.LinkSpec{DelaySec: 0.005 + rng.Float64()*0.03, RateBps: 5e6 + rng.Float64()*20e6, LossPct: rng.Float64()},
				Down:     netem.LinkSpec{DelaySec: 0.005 + rng.Float64()*0.03, RateBps: 5e6 + rng.Float64()*20e6},
			})
		}
		if rng.Intn(2) == 0 {
			nm.BackhaulUp = []netem.LinkSpec{{DelaySec: 0.015, RateBps: 100e6}}
			nm.BackhaulDown = []netem.LinkSpec{{DelaySec: 0.015, RateBps: 100e6}}
		}
		opts.Network = nm
		if rng.Intn(2) == 0 {
			opts.Clients = 20 + rng.Intn(30)
		} else {
			opts.OpenLoopRate = 5 + rng.Float64()*10
		}
		if rng.Intn(2) == 0 {
			opts.Faults = &fault.Spec{GatewayChurn: &fault.Churn{MeanUpSeconds: 30, MeanDownSeconds: 5}}
			if opts.Replicas > 1 {
				opts.Faults.ReplicaCrashes = []fault.Crash{{Replica: 0, AtSeconds: 45, RecoverAfterSeconds: 20}}
			}
		}
		if rng.Intn(2) == 0 {
			opts.Resilience = &resilience.Policy{TimeoutSeconds: 15, Retry: &resilience.Retry{Max: 1}, Failover: true}
			if rng.Intn(2) == 0 {
				opts.Resilience.Hedge = &resilience.Hedge{Quantile: 0.95, DelaySeconds: 8}
			}
		}
		name := fmt.Sprintf("case%d", c)
		t.Run(name, func(t *testing.T) {
			ref, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			want := metricsFingerprint(ref)
			for _, shards := range []int{4, 8} {
				o := opts
				o.Shards = shards
				m, err := Run(o)
				if err != nil {
					t.Fatal(err)
				}
				if got := metricsFingerprint(m); got != want {
					t.Errorf("Shards=%d diverged from Shards=2:\n%s", shards, firstDiff(got, want))
				}
			}
		})
	}
}

// TestShardedRunnerReuseBitIdentical: a pooled Runner's sharded run is
// bit-identical to a fresh Runner's, including after interleaving a
// different experiment on the same Runner.
func TestShardedRunnerReuseBitIdentical(t *testing.T) {
	opts := RunOptions{
		Pools: Baseline, Clients: 30, Network: shardedNetModel(true),
		Replicas: 2, Duration: 90, Warmup: 30, Seed: 5, Shards: 4,
		Resilience: &resilience.Policy{TimeoutSeconds: 10, Retry: &resilience.Retry{Max: 1}},
	}
	fresh, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := metricsFingerprint(fresh)
	r := NewRunner()
	for rep := 0; rep < 2; rep++ {
		m, err := r.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := metricsFingerprint(m); got != want {
			t.Errorf("pooled run %d diverged from fresh run:\n%s", rep, firstDiff(got, want))
		}
		// Interleave a sequential run (different mode entirely) to prove
		// the reset discipline covers role state.
		if _, err := r.Run(RunOptions{Pools: Baseline, Clients: 10, Duration: 40, Seed: 3}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedVsSequentialThroughput: the sharded family is a different
// deterministic family, but it simulates the same physical system — under
// a closed-loop load its throughput and completion count must land within
// a few percent of the sequential kernel's.
func TestShardedVsSequentialThroughput(t *testing.T) {
	base := RunOptions{
		Pools: Baseline, Clients: 40, Network: shardedNetModel(false),
		Replicas: 2, Duration: 150, Warmup: 30, Seed: 9,
	}
	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	shardedOpts := base
	shardedOpts.Shards = 4
	shd, err := Run(shardedOpts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Completed == 0 || shd.Completed == 0 {
		t.Fatalf("empty runs: seq=%d sharded=%d", seq.Completed, shd.Completed)
	}
	rel := math.Abs(float64(shd.Completed-seq.Completed)) / float64(seq.Completed)
	if rel > 0.05 {
		t.Errorf("sharded completions %d deviate %.1f%% from sequential %d", shd.Completed, 100*rel, seq.Completed)
	}
	relResp := math.Abs(shd.UserResponseTime.Mean-seq.UserResponseTime.Mean) / seq.UserResponseTime.Mean
	if relResp > 0.10 {
		t.Errorf("sharded mean response %.4f deviates %.1f%% from sequential %.4f",
			shd.UserResponseTime.Mean, 100*relResp, seq.UserResponseTime.Mean)
	}
}

// shardedGoldenOpts is the pinned configuration for the sharded golden.
func shardedGoldenOpts() RunOptions {
	return RunOptions{
		Pools: Baseline, Clients: 50, Network: shardedNetModel(true),
		Replicas: 2, Duration: 180, Warmup: 60, Seed: 42, Shards: 4,
		Faults:     &fault.Spec{GatewayChurn: &fault.Churn{MeanUpSeconds: 60, MeanDownSeconds: 8}},
		Resilience: &resilience.Policy{TimeoutSeconds: 12, Retry: &resilience.Retry{Max: 2}, Failover: true},
	}
}

// TestShardedValidation: Shards >= 2 without a simulated network is an
// error; Shards <= 1 stays the sequential kernel bit-for-bit.
func TestShardedValidation(t *testing.T) {
	if _, err := Run(RunOptions{Pools: Baseline, Clients: 10, Duration: 30, Shards: 2}); err == nil {
		t.Error("Shards=2 without Network should fail")
	}
	a, err := Run(RunOptions{Pools: Baseline, Clients: 10, Duration: 60, Seed: 4, Network: shardedNetModel(false), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(RunOptions{Pools: Baseline, Clients: 10, Duration: 60, Seed: 4, Network: shardedNetModel(false)})
	if err != nil {
		t.Fatal(err)
	}
	if metricsFingerprint(a) != metricsFingerprint(b) {
		t.Error("Shards=1 must be bit-identical to the sequential kernel")
	}
}

// TestShardedGoldenBitIdentical pins the sharded family's outputs for a
// fixed faulted + policied configuration. The sharded kernel is a distinct
// deterministic family from the sequential one (its own seed derivation per
// domain), so it carries its own golden; any drift here is a determinism
// regression in the shard protocol, the merge, or the seeding.
func TestShardedGoldenBitIdentical(t *testing.T) {
	m, err := Run(shardedGoldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	exact := func(name string, got, want float64) {
		t.Helper()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s = %v (bits %016x), want %v (bits %016x)",
				name, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	if m.Completed != 4859 {
		t.Errorf("Completed = %d, want 4859", m.Completed)
	}
	exact("UserResponseTime.Mean", m.UserResponseTime.Mean, 1.8144704770432827)
	exact("RespP50", m.RespP50, 1.7491267395591592)
	exact("RespP95", m.RespP95, 2.3554478926149756)
	exact("RespP99", m.RespP99, 2.7600981516999465)
	exact("Throughput", m.Throughput, 27.51818181818182)
	exact("Goodput", m.Goodput, 27.51818181818182)
	exact("CPUUtil.Mean", m.CPUUtil.Mean, 0.5871791636614585)
	exact("EnergyPerRequestJ", m.EnergyPerRequestJ, 16.472211519234506)
	if m.NetDelivered != 19544 {
		t.Errorf("NetDelivered = %d, want 19544", m.NetDelivered)
	}
	if m.Rerouted != 544 {
		t.Errorf("Rerouted = %d, want 544", m.Rerouted)
	}
}

// TestShardedSteadyStateNoWindowLeak: a warm sharded Runner's per-run
// allocations must not scale with the number of lookahead windows — a 10x
// longer run (same tick count, so identical setup/merge work) may not
// allocate meaningfully more.
func TestShardedSteadyStateNoWindowLeak(t *testing.T) {
	cal := DefaultCalibration()
	cal.NetworkRTT = 0.2 // wide windows keep the long run fast
	mk := func(duration, interval float64) RunOptions {
		return RunOptions{
			Pools: Baseline, Clients: 20, Network: shardedNetModel(true),
			Replicas: 2, Duration: duration, Warmup: interval, SampleInterval: interval,
			Seed: 21, Shards: 2, Cal: cal,
		}
	}
	r := NewRunner()
	for w := 0; w < 2; w++ { // warm freelists, mailboxes, row buffers
		if _, err := r.Run(mk(400, 50)); err != nil {
			t.Fatal(err)
		}
	}
	measure := func(opts RunOptions) float64 {
		return testing.AllocsPerRun(3, func() {
			if _, err := r.Run(opts); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(mk(40, 5))  // 200 windows, 8 ticks
	long := measure(mk(400, 50)) // 2000 windows, 8 ticks
	if long > short*1.5+256 {
		t.Errorf("window loop leaks allocations: short-run=%v long-run=%v", short, long)
	}
}
