// Package monitor implements E2Clab's monitoring manager: named time
// series collected from the deployed system, windowed aggregation, and SLO
// rules (e.g. "user response time must stay below 4 s") with sustained-
// violation detection. The engine model exports its samples here so the
// harness and examples can analyze and persist them uniformly.
package monitor

import (
	"fmt"
	"math"
	"sort"

	"e2clab/internal/export"
	"e2clab/internal/stats"
)

// Point is one sample of a series.
type Point struct {
	Time  float64
	Value float64
}

// TimeSeries is an ordered sequence of samples of one metric.
type TimeSeries struct {
	Name   string
	Points []Point
}

// Add appends a sample; times must be non-decreasing.
func (ts *TimeSeries) Add(t, v float64) error {
	if n := len(ts.Points); n > 0 && t < ts.Points[n-1].Time {
		return fmt.Errorf("monitor: series %q: time %v before last %v", ts.Name, t, ts.Points[n-1].Time)
	}
	ts.Points = append(ts.Points, Point{Time: t, Value: v})
	return nil
}

// Len returns the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.Points) }

// Values returns the sample values (copy).
func (ts *TimeSeries) Values() []float64 {
	out := make([]float64, len(ts.Points))
	for i, p := range ts.Points {
		out[i] = p.Value
	}
	return out
}

// Summary aggregates the series, skipping NaN samples.
func (ts *TimeSeries) Summary() stats.Summary {
	var w stats.Welford
	for _, p := range ts.Points {
		if !math.IsNaN(p.Value) {
			w.Add(p.Value)
		}
	}
	return w.Snapshot()
}

// Window returns the sub-series with Time in [from, to).
func (ts *TimeSeries) Window(from, to float64) *TimeSeries {
	out := &TimeSeries{Name: ts.Name}
	for _, p := range ts.Points {
		if p.Time >= from && p.Time < to {
			out.Points = append(out.Points, p)
		}
	}
	return out
}

// Downsample reduces the series to buckets of the given width, averaging
// values within each bucket (NaN samples skipped).
func (ts *TimeSeries) Downsample(bucket float64) *TimeSeries {
	if bucket <= 0 || len(ts.Points) == 0 {
		return &TimeSeries{Name: ts.Name, Points: append([]Point(nil), ts.Points...)}
	}
	out := &TimeSeries{Name: ts.Name}
	start := ts.Points[0].Time
	var sum float64
	var n int
	cur := start
	flush := func(end float64) {
		if n > 0 {
			out.Points = append(out.Points, Point{Time: cur, Value: sum / float64(n)})
		}
		sum, n = 0, 0
		cur = end
	}
	for _, p := range ts.Points {
		for p.Time >= cur+bucket {
			flush(cur + bucket)
		}
		if !math.IsNaN(p.Value) {
			sum += p.Value
			n++
		}
	}
	flush(cur + bucket)
	return out
}

// Registry holds the series of one experiment.
type Registry struct {
	series map[string]*TimeSeries
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{series: make(map[string]*TimeSeries)} }

// Series returns (creating if needed) the named series.
func (r *Registry) Series(name string) *TimeSeries {
	ts, ok := r.series[name]
	if !ok {
		ts = &TimeSeries{Name: name}
		r.series[name] = ts
		r.order = append(r.order, name)
	}
	return ts
}

// Names lists series in creation order.
func (r *Registry) Names() []string { return append([]string(nil), r.order...) }

// Export converts the registry to export.Series for CSV persistence, in
// creation order.
func (r *Registry) Export() []export.Series {
	out := make([]export.Series, 0, len(r.order))
	for _, name := range r.order {
		ts := r.series[name]
		s := export.Series{Name: name}
		for _, p := range ts.Points {
			if math.IsNaN(p.Value) {
				continue
			}
			s.X = append(s.X, p.Time)
			s.Y = append(s.Y, p.Value)
		}
		out = append(out, s)
	}
	return out
}

// SLO is a service-level objective on one series: the value must not exceed
// (or fall below) a threshold for longer than Sustained seconds.
type SLO struct {
	Series string
	// Max is the upper bound (used when Above is false is meaningless;
	// Max applies unless Below is set).
	Max float64
	// Below, when true, makes Max act as a lower bound instead (violation
	// when value < Max).
	Below bool
	// Sustained is the minimum violation duration to report (0 = any
	// single sample).
	Sustained float64
}

// Violation is one sustained SLO breach.
type Violation struct {
	Series     string
	From, To   float64
	WorstValue float64
}

// Check evaluates an SLO against the registry and returns the sustained
// violations, ordered by start time.
func (r *Registry) Check(slo SLO) []Violation {
	ts, ok := r.series[slo.Series]
	if !ok {
		return nil
	}
	violates := func(v float64) bool {
		if math.IsNaN(v) {
			return false
		}
		if slo.Below {
			return v < slo.Max
		}
		return v > slo.Max
	}
	var out []Violation
	var cur *Violation
	for _, p := range ts.Points {
		if violates(p.Value) {
			if cur == nil {
				cur = &Violation{Series: slo.Series, From: p.Time, To: p.Time, WorstValue: p.Value}
			} else {
				cur.To = p.Time
				if (!slo.Below && p.Value > cur.WorstValue) || (slo.Below && p.Value < cur.WorstValue) {
					cur.WorstValue = p.Value
				}
			}
			continue
		}
		if cur != nil {
			if cur.To-cur.From >= slo.Sustained {
				out = append(out, *cur)
			}
			cur = nil
		}
	}
	if cur != nil && cur.To-cur.From >= slo.Sustained {
		out = append(out, *cur)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
	return out
}
