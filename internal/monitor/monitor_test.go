package monitor

import (
	"math"
	"testing"
)

func mkSeries(t *testing.T, name string, vals ...float64) *TimeSeries {
	t.Helper()
	ts := &TimeSeries{Name: name}
	for i, v := range vals {
		if err := ts.Add(float64(i*10), v); err != nil {
			t.Fatal(err)
		}
	}
	return ts
}

func TestAddOrdering(t *testing.T) {
	ts := &TimeSeries{Name: "x"}
	if err := ts.Add(10, 1); err != nil {
		t.Fatal(err)
	}
	if err := ts.Add(5, 2); err == nil {
		t.Error("out-of-order sample accepted")
	}
	if err := ts.Add(10, 3); err != nil {
		t.Error("equal timestamp rejected")
	}
	if ts.Len() != 2 {
		t.Errorf("Len = %d", ts.Len())
	}
}

func TestSummarySkipsNaN(t *testing.T) {
	ts := mkSeries(t, "resp", 2, math.NaN(), 4)
	s := ts.Summary()
	if s.N != 2 || s.Mean != 3 {
		t.Errorf("summary = %+v", s)
	}
}

func TestWindow(t *testing.T) {
	ts := mkSeries(t, "x", 0, 1, 2, 3, 4) // times 0,10,20,30,40
	w := ts.Window(10, 40)
	if w.Len() != 3 || w.Points[0].Value != 1 || w.Points[2].Value != 3 {
		t.Errorf("window = %+v", w.Points)
	}
}

func TestDownsample(t *testing.T) {
	ts := mkSeries(t, "x", 1, 3, 5, 7) // times 0,10,20,30
	d := ts.Downsample(20)
	if d.Len() != 2 {
		t.Fatalf("downsample len = %d", d.Len())
	}
	if d.Points[0].Value != 2 || d.Points[1].Value != 6 {
		t.Errorf("downsample = %+v", d.Points)
	}
	// Zero bucket: identity copy.
	id := ts.Downsample(0)
	if id.Len() != 4 {
		t.Error("zero-bucket downsample should copy")
	}
}

func TestRegistryAndExport(t *testing.T) {
	r := NewRegistry()
	a := r.Series("resp")
	_ = a.Add(0, 2.5)
	_ = a.Add(10, math.NaN())
	_ = a.Add(20, 2.7)
	b := r.Series("cpu")
	_ = b.Add(0, 0.9)
	if r.Series("resp") != a {
		t.Error("Series not idempotent")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "resp" || names[1] != "cpu" {
		t.Errorf("Names = %v", names)
	}
	ex := r.Export()
	if len(ex) != 2 || len(ex[0].X) != 2 { // NaN dropped
		t.Errorf("Export = %+v", ex)
	}
}

func TestSLOUpperBound(t *testing.T) {
	r := NewRegistry()
	ts := r.Series("user_resp_time")
	// 4-second SLO: violation sustained from t=20..40, single blip at 80.
	for i, v := range []float64{3, 3.5, 4.5, 5, 4.2, 3.9, 3.8, 3.7, 4.1, 3.9} {
		_ = ts.Add(float64(i*10), v)
	}
	vs := r.Check(SLO{Series: "user_resp_time", Max: 4, Sustained: 15})
	if len(vs) != 1 {
		t.Fatalf("violations = %+v", vs)
	}
	if vs[0].From != 20 || vs[0].To != 40 || vs[0].WorstValue != 5 {
		t.Errorf("violation = %+v", vs[0])
	}
	// Without the sustained filter, the single blip at t=80 also reports.
	all := r.Check(SLO{Series: "user_resp_time", Max: 4})
	if len(all) != 2 {
		t.Errorf("unsustained violations = %+v", all)
	}
}

func TestSLOLowerBound(t *testing.T) {
	r := NewRegistry()
	ts := r.Series("throughput")
	for i, v := range []float64{30, 29, 10, 12, 30} {
		_ = ts.Add(float64(i*10), v)
	}
	vs := r.Check(SLO{Series: "throughput", Max: 25, Below: true})
	if len(vs) != 1 || vs[0].WorstValue != 10 {
		t.Errorf("violations = %+v", vs)
	}
}

func TestSLOMissingSeries(t *testing.T) {
	r := NewRegistry()
	if vs := r.Check(SLO{Series: "ghost", Max: 1}); vs != nil {
		t.Errorf("missing series produced %v", vs)
	}
}

func TestSLOViolationAtEnd(t *testing.T) {
	r := NewRegistry()
	ts := r.Series("m")
	_ = ts.Add(0, 1)
	_ = ts.Add(10, 9)
	_ = ts.Add(20, 9)
	vs := r.Check(SLO{Series: "m", Max: 5, Sustained: 10})
	if len(vs) != 1 || vs[0].To != 20 {
		t.Errorf("trailing violation missed: %+v", vs)
	}
}
