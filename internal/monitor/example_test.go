package monitor_test

import (
	"fmt"

	"e2clab/internal/monitor"
)

// Checking the paper's 4-second user-tolerance SLO against a response-time
// series.
func ExampleRegistry_Check() {
	r := monitor.NewRegistry()
	resp := r.Series("user_resp_time")
	for i, v := range []float64{3.8, 3.9, 4.2, 4.5, 4.3, 3.9} {
		_ = resp.Add(float64(i*10), v)
	}
	for _, v := range r.Check(monitor.SLO{Series: "user_resp_time", Max: 4, Sustained: 10}) {
		fmt.Printf("SLO violated from t=%.0fs to t=%.0fs (worst %.1fs)\n", v.From, v.To, v.WorstValue)
	}
	// Output:
	// SLO violated from t=20s to t=40s (worst 4.5s)
}
