// Package bo implements sequential model-based (Bayesian) optimization with
// an ask/tell interface, mirroring skopt.Optimizer as configured in the
// paper's Listing 1:
//
//	Optimizer(base_estimator='ET', n_initial_points=45,
//	          initial_point_generator="lhs", acq_func="gp_hedge")
//
// The optimizer works for minimization (the paper's objective is minimizing
// user response time). Maximization problems negate their metric (package
// optimize does this automatically).
package bo

import (
	"fmt"
	"math"
	"math/rand"

	"e2clab/internal/acquisition"
	"e2clab/internal/rngutil"
	"e2clab/internal/sample"
	"e2clab/internal/space"
	"e2clab/internal/surrogate"
)

// Config selects the optimizer's strategy; the zero value is completed with
// the paper's defaults.
type Config struct {
	// BaseEstimator is the surrogate family: "ET", "RF", "GBRT", "GP",
	// "TREE", "POLY", "LSSVM". Default "ET".
	BaseEstimator string
	// NInitialPoints is the size of the space-filling design evaluated
	// before the surrogate takes over. Default 10.
	NInitialPoints int
	// InitialPointGenerator: "lhs", "sobol", "halton", "random", "grid".
	// Default "lhs".
	InitialPointGenerator string
	// AcqFunc: "gp_hedge" (default), "EI", "PI", "LCB".
	AcqFunc string
	// NCandidates is the size of the random candidate pool scanned to
	// maximize the acquisition function. Default 1000.
	NCandidates int
	// AcqOptimizer selects how the acquisition is maximized: "sampling"
	// (candidate pool only, default) or "sampling+local" (hill-climb the
	// pool winner through value-space neighbors — one thread-pool step at a
	// time on integer spaces). Mirrors skopt's acq_optimizer option.
	AcqOptimizer string
	// Seed makes the whole optimization deterministic.
	Seed int64
}

func (c *Config) fillDefaults() {
	if c.BaseEstimator == "" {
		c.BaseEstimator = "ET"
	}
	if c.NInitialPoints <= 0 {
		c.NInitialPoints = 10
	}
	if c.InitialPointGenerator == "" {
		c.InitialPointGenerator = "lhs"
	}
	if c.AcqFunc == "" {
		c.AcqFunc = "gp_hedge"
	}
	if c.NCandidates <= 0 {
		c.NCandidates = 1000
	}
	if c.AcqOptimizer == "" {
		c.AcqOptimizer = "sampling"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Optimizer is an ask/tell sequential model-based optimizer.
type Optimizer struct {
	space   *space.Space
	cfg     Config
	rng     *rand.Rand
	factory surrogate.Factory
	sampler sample.Sampler
	acq     acquisition.Function
	hedge   *acquisition.Hedge

	initQueue [][]float64 // unit-space initial design, consumed by Ask
	X         [][]float64 // unit-space evaluated points
	y         []float64
	pending   [][]float64 // asked but not yet told (parallel workers)
	seen      map[string]bool
}

// New builds an optimizer over s.
func New(s *space.Space, cfg Config) (*Optimizer, error) {
	cfg.fillDefaults()
	factory, err := surrogate.ByName(cfg.BaseEstimator)
	if err != nil {
		return nil, err
	}
	smp, err := sample.ByName(cfg.InitialPointGenerator)
	if err != nil {
		return nil, err
	}
	o := &Optimizer{
		space:   s,
		cfg:     cfg,
		rng:     rngutil.New(cfg.Seed),
		factory: factory,
		sampler: smp,
		seen:    make(map[string]bool),
	}
	switch cfg.AcqFunc {
	case "gp_hedge":
		o.hedge = acquisition.NewHedge(rngutil.New(cfg.Seed + 1))
	default:
		fn, ok := acquisition.Default(cfg.AcqFunc)
		if !ok {
			return nil, fmt.Errorf("bo: unknown acquisition function %q", cfg.AcqFunc)
		}
		o.acq = fn
	}
	o.initQueue = smp.Sample(o.rng, cfg.NInitialPoints, s.Len())
	return o, nil
}

// Config returns the effective configuration (defaults filled), recorded by
// the reproducibility summary.
func (o *Optimizer) Config() Config { return o.cfg }

// N returns the number of evaluations told so far.
func (o *Optimizer) N() int { return len(o.y) }

// Ask proposes the next configuration to evaluate, in value space. Repeated
// Asks without Tells are allowed (parallel evaluation); pending points are
// assumed to return the best value seen so far ("constant liar"), which
// pushes subsequent proposals away from in-flight configurations.
func (o *Optimizer) Ask() []float64 {
	// Space-filling phase.
	for len(o.initQueue) > 0 {
		u := o.initQueue[0]
		o.initQueue = o.initQueue[1:]
		x := o.space.FromUnit(u)
		if !o.seen[o.key(x)] {
			o.track(x)
			return x
		}
	}
	if len(o.y)+len(o.pending) < 2 {
		return o.randomPoint()
	}
	x := o.modelAsk()
	o.track(x)
	return x
}

// track records x as pending and marks it seen.
func (o *Optimizer) track(x []float64) {
	o.pending = append(o.pending, o.space.ToUnit(x))
	o.seen[o.key(x)] = true
}

func (o *Optimizer) randomPoint() []float64 {
	for i := 0; i < 256; i++ {
		u := make([]float64, o.space.Len())
		for j := range u {
			u[j] = o.rng.Float64()
		}
		x := o.space.FromUnit(u)
		if !o.seen[o.key(x)] {
			o.track(x)
			return x
		}
	}
	// Space exhausted (tiny discrete spaces): re-propose the best point.
	x, _ := o.Best()
	if x == nil {
		x = o.space.FromUnit(make([]float64, o.space.Len()))
	}
	o.track(x)
	return x
}

// modelAsk fits the surrogate and maximizes the acquisition over a random
// candidate pool.
func (o *Optimizer) modelAsk() []float64 {
	// Training set: evaluated points plus constant-liar pending points.
	n := len(o.X) + len(o.pending)
	X := make([][]float64, 0, n)
	y := make([]float64, 0, n)
	X = append(X, o.X...)
	y = append(y, o.y...)
	if len(o.pending) > 0 {
		liar := o.bestY()
		for _, u := range o.pending {
			X = append(X, u)
			y = append(y, liar)
		}
	}
	model := o.factory(rngutil.New(o.rng.Int63()))
	if err := model.Fit(X, y); err != nil {
		return o.randomUntracked()
	}
	best := o.bestY()

	cands := o.candidates()
	if o.hedge != nil {
		// Find each base function's favorite candidate, pick via hedge.
		picks := make([][]float64, len(o.hedge.Funcs))
		means := make([]float64, len(o.hedge.Funcs))
		scores := make([]float64, len(o.hedge.Funcs))
		for i := range scores {
			scores[i] = math.Inf(-1)
		}
		for _, u := range cands {
			m, s := model.PredictWithStd(u)
			for i, fn := range o.hedge.Funcs {
				if sc := fn.Score(m, s, best); sc > scores[i] {
					scores[i], picks[i], means[i] = sc, u, m
				}
			}
		}
		choice := o.hedge.Choose()
		o.hedge.Update(means)
		if picks[choice] == nil {
			return o.randomUntracked()
		}
		u := o.localRefine(picks[choice], model, o.hedge.Funcs[choice], best)
		return o.space.FromUnit(u)
	}
	var bestU []float64
	bestScore := math.Inf(-1)
	for _, u := range cands {
		m, s := model.PredictWithStd(u)
		if sc := o.acq.Score(m, s, best); sc > bestScore {
			bestScore, bestU = sc, u
		}
	}
	if bestU == nil {
		return o.randomUntracked()
	}
	bestU = o.localRefine(bestU, model, o.acq, best)
	return o.space.FromUnit(bestU)
}

// localRefine hill-climbs the acquisition score from u through value-space
// neighbors (when AcqOptimizer is "sampling+local"): integer dimensions
// move ±1, floats ±2% of their range, categoricals try every choice.
// Already-proposed points are skipped.
func (o *Optimizer) localRefine(u []float64, model surrogate.Model, acq acquisition.Function, best float64) []float64 {
	if o.cfg.AcqOptimizer != "sampling+local" {
		return u
	}
	score := func(uu []float64) float64 {
		m, s := model.PredictWithStd(uu)
		return acq.Score(m, s, best)
	}
	cur := u
	curScore := score(cur)
	for step := 0; step < 32; step++ {
		improved := false
		x := o.space.FromUnit(cur)
		for j := 0; j < o.space.Len(); j++ {
			d := o.space.Dim(j)
			var moves []float64
			switch d.Kind {
			case space.IntKind:
				moves = []float64{x[j] - 1, x[j] + 1}
			case space.CategoricalKind:
				for c := 0; c < len(d.Categories); c++ {
					if float64(c) != x[j] {
						moves = append(moves, float64(c))
					}
				}
			default:
				st := (d.High - d.Low) * 0.02
				moves = []float64{x[j] - st, x[j] + st}
			}
			for _, mv := range moves {
				if !d.Contains(d.Clip(mv)) {
					continue
				}
				x2 := append([]float64(nil), x...)
				x2[j] = d.Clip(mv)
				if o.seen[o.key(x2)] {
					continue
				}
				u2 := o.space.ToUnit(x2)
				if sc := score(u2); sc > curScore {
					cur, curScore = u2, sc
					x = x2
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

// candidates draws the random pool, excluding already-proposed points.
func (o *Optimizer) candidates() [][]float64 {
	out := make([][]float64, 0, o.cfg.NCandidates)
	for i := 0; i < o.cfg.NCandidates*4 && len(out) < o.cfg.NCandidates; i++ {
		u := make([]float64, o.space.Len())
		for j := range u {
			u[j] = o.rng.Float64()
		}
		x := o.space.FromUnit(u)
		if o.seen[o.key(x)] {
			continue
		}
		out = append(out, o.space.ToUnit(x))
	}
	return out
}

func (o *Optimizer) randomUntracked() []float64 {
	u := make([]float64, o.space.Len())
	for j := range u {
		u[j] = o.rng.Float64()
	}
	return o.space.FromUnit(u)
}

// Tell reports the objective value for a previously Asked (or external)
// point.
func (o *Optimizer) Tell(x []float64, yv float64) {
	u := o.space.ToUnit(x)
	// Drop the matching pending entry, if any.
	for i, p := range o.pending {
		if equal(p, u) {
			o.pending = append(o.pending[:i], o.pending[i+1:]...)
			break
		}
	}
	o.seen[o.key(x)] = true
	o.X = append(o.X, u)
	o.y = append(o.y, yv)
}

// Best returns the best (lowest-objective) evaluated point in value space,
// or (nil, +Inf) before any Tell.
func (o *Optimizer) Best() ([]float64, float64) {
	bi, bv := -1, math.Inf(1)
	for i, v := range o.y {
		if v < bv {
			bi, bv = i, v
		}
	}
	if bi < 0 {
		return nil, bv
	}
	return o.space.FromUnit(o.X[bi]), bv
}

func (o *Optimizer) bestY() float64 {
	_, v := o.Best()
	if math.IsInf(v, 1) {
		return 0
	}
	return v
}

// SnapshotModel refits the surrogate on all evidence told so far and
// serializes it — the "intermediate models throughout training" that the
// paper's finalize() archives.
func (o *Optimizer) SnapshotModel() ([]byte, error) {
	if len(o.y) < 2 {
		return nil, fmt.Errorf("bo: need >= 2 observations to snapshot a model, have %d", len(o.y))
	}
	model := o.factory(rngutil.New(o.cfg.Seed + 999))
	if err := model.Fit(o.X, o.y); err != nil {
		return nil, err
	}
	return surrogate.Marshal(model)
}

// BestSeries returns the running best value after each Tell (the
// convergence curve reported in optimization summaries).
func (o *Optimizer) BestSeries() []float64 {
	out := make([]float64, len(o.y))
	best := math.Inf(1)
	for i, v := range o.y {
		if v < best {
			best = v
		}
		out[i] = best
	}
	return out
}

// Evaluations returns copies of all (x, y) pairs told so far, in value
// space, for the Phase III archive.
func (o *Optimizer) Evaluations() ([][]float64, []float64) {
	X := make([][]float64, len(o.X))
	for i, u := range o.X {
		X[i] = o.space.FromUnit(u)
	}
	return X, append([]float64(nil), o.y...)
}

func (o *Optimizer) key(x []float64) string { return o.space.Format(x) }

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
