// Package bo implements sequential model-based (Bayesian) optimization with
// an ask/tell interface, mirroring skopt.Optimizer as configured in the
// paper's Listing 1:
//
//	Optimizer(base_estimator='ET', n_initial_points=45,
//	          initial_point_generator="lhs", acq_func="gp_hedge")
//
// The optimizer works for minimization (the paper's objective is minimizing
// user response time). Maximization problems negate their metric (package
// optimize does this automatically).
//
// # Performance model
//
// Ask is the hot path of every optimization cycle: each call fits a fresh
// surrogate and scores a candidate pool of cfg.NCandidates points. The
// acquisition loop scores the whole pool through surrogate.PredictBatch, so
// batch-capable models (forests, GBRT, GP) amortize per-point overhead and
// shard the pool across CPU cores; candidate and unit buffers are
// preallocated once and reused across Asks; and the dedup index uses a
// cheap quantized FNV-1a hash of the value-space point instead of the
// space.Format string it used to allocate for every draw. An Optimizer is
// NOT safe for concurrent use — drivers that evaluate in parallel (package
// tune) serialize Ask/Tell and rely on the constant-liar pending mechanism
// instead.
package bo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"e2clab/internal/acquisition"
	"e2clab/internal/rngutil"
	"e2clab/internal/sample"
	"e2clab/internal/space"
	"e2clab/internal/surrogate"
)

// Config selects the optimizer's strategy; the zero value is completed with
// the paper's defaults.
type Config struct {
	// BaseEstimator is the surrogate family: "ET", "RF", "GBRT", "GP",
	// "TREE", "POLY", "LSSVM". Default "ET".
	BaseEstimator string
	// NInitialPoints is the size of the space-filling design evaluated
	// before the surrogate takes over. Default 10.
	NInitialPoints int
	// InitialPointGenerator: "lhs", "sobol", "halton", "random", "grid".
	// Default "lhs".
	InitialPointGenerator string
	// AcqFunc: "gp_hedge" (default), "EI", "PI", "LCB".
	AcqFunc string
	// NCandidates is the size of the random candidate pool scanned to
	// maximize the acquisition function. Default 1000.
	NCandidates int
	// AcqOptimizer selects how the acquisition is maximized: "sampling"
	// (candidate pool only, default) or "sampling+local" (hill-climb the
	// pool winner through value-space neighbors — one thread-pool step at a
	// time on integer spaces). Mirrors skopt's acq_optimizer option.
	AcqOptimizer string
	// Seed makes the whole optimization deterministic.
	Seed int64
}

func (c *Config) fillDefaults() {
	if c.BaseEstimator == "" {
		c.BaseEstimator = "ET"
	}
	if c.NInitialPoints <= 0 {
		c.NInitialPoints = 10
	}
	if c.InitialPointGenerator == "" {
		c.InitialPointGenerator = "lhs"
	}
	if c.AcqFunc == "" {
		c.AcqFunc = "gp_hedge"
	}
	if c.NCandidates <= 0 {
		c.NCandidates = 1000
	}
	if c.AcqOptimizer == "" {
		c.AcqOptimizer = "sampling"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// pendingPoint is an asked-but-not-told point. seq preserves ask order so
// the constant-liar training rows stay in deterministic insertion order
// even though removal is key-indexed.
type pendingPoint struct {
	u   []float64
	seq uint64
}

// Optimizer is an ask/tell sequential model-based optimizer.
type Optimizer struct {
	space   *space.Space
	dims    []space.Dimension
	cfg     Config
	rng     *rand.Rand
	factory surrogate.Factory
	sampler sample.Sampler
	acq     acquisition.Function
	hedge   *acquisition.Hedge

	initQueue [][]float64 // unit-space initial design, consumed by Ask
	X         [][]float64 // unit-space evaluated points
	y         []float64
	// pending indexes asked-but-not-told points by their dedup key so Tell
	// removes them in O(1) instead of scanning (parallel ask/tell issues
	// many Tells against a hot pending set).
	pending    map[uint64][]pendingPoint
	nPending   int
	pendingSeq uint64
	seen       map[uint64]struct{}

	// Reusable per-Ask buffers: candidate pool in canonical unit space and
	// value space (parallel slices over flat backing arrays), plus scratch
	// for key hashing and pending ordering.
	candU        [][]float64
	candX        [][]float64
	candUBack    []float64
	candXBack    []float64
	keyBuf       []byte
	pendingOrder []pendingPoint
	// model is the cached surrogate: reseedable families (forests, GBRT)
	// are re-seeded and refit in place each Ask — bit-identical to a fresh
	// factory construction, without rebuilding the ensemble — while other
	// families are constructed fresh as before. trainX/trainY are the
	// constant-liar training buffers, reused across Asks.
	model  surrogate.Model
	trainX [][]float64
	trainY []float64
}

// New builds an optimizer over s.
func New(s *space.Space, cfg Config) (*Optimizer, error) {
	cfg.fillDefaults()
	factory, err := surrogate.ByName(cfg.BaseEstimator)
	if err != nil {
		return nil, err
	}
	smp, err := sample.ByName(cfg.InitialPointGenerator)
	if err != nil {
		return nil, err
	}
	o := &Optimizer{
		space:   s,
		dims:    s.Dims(),
		cfg:     cfg,
		rng:     rngutil.New(cfg.Seed),
		factory: factory,
		sampler: smp,
		pending: make(map[uint64][]pendingPoint),
		seen:    make(map[uint64]struct{}),
	}
	switch cfg.AcqFunc {
	case "gp_hedge":
		o.hedge = acquisition.NewHedge(rngutil.New(cfg.Seed + 1))
	default:
		fn, ok := acquisition.Default(cfg.AcqFunc)
		if !ok {
			return nil, fmt.Errorf("bo: unknown acquisition function %q", cfg.AcqFunc)
		}
		o.acq = fn
	}
	o.initQueue = smp.Sample(o.rng, cfg.NInitialPoints, s.Len())
	return o, nil
}

// Config returns the effective configuration (defaults filled), recorded by
// the reproducibility summary.
func (o *Optimizer) Config() Config { return o.cfg }

// N returns the number of evaluations told so far.
func (o *Optimizer) N() int { return len(o.y) }

// Ask proposes the next configuration to evaluate, in value space. Repeated
// Asks without Tells are allowed (parallel evaluation); pending points are
// assumed to return the best value seen so far ("constant liar"), which
// pushes subsequent proposals away from in-flight configurations.
func (o *Optimizer) Ask() []float64 {
	// Space-filling phase.
	for len(o.initQueue) > 0 {
		u := o.initQueue[0]
		o.initQueue = o.initQueue[1:]
		x := o.space.FromUnit(u)
		if !o.isSeen(x) {
			o.track(x)
			return x
		}
	}
	if len(o.y)+o.nPending < 2 {
		return o.randomPoint()
	}
	x := o.modelAsk()
	o.track(x)
	return x
}

// track records x as pending and marks it seen.
func (o *Optimizer) track(x []float64) {
	k := o.key(x)
	o.pendingSeq++
	o.pending[k] = append(o.pending[k], pendingPoint{u: o.space.ToUnit(x), seq: o.pendingSeq})
	o.nPending++
	o.seen[k] = struct{}{}
}

func (o *Optimizer) isSeen(x []float64) bool {
	_, ok := o.seen[o.key(x)]
	return ok
}

func (o *Optimizer) randomPoint() []float64 {
	for i := 0; i < 256; i++ {
		u := make([]float64, o.space.Len())
		for j := range u {
			u[j] = o.rng.Float64()
		}
		x := o.space.FromUnit(u)
		if !o.isSeen(x) {
			o.track(x)
			return x
		}
	}
	// Space exhausted (tiny discrete spaces): re-propose the best point.
	x, _ := o.Best()
	if x == nil {
		x = o.space.FromUnit(make([]float64, o.space.Len()))
	}
	o.track(x)
	return x
}

// orderedPending returns the pending points sorted by ask order (the
// deterministic order the old slice representation had for free).
func (o *Optimizer) orderedPending() []pendingPoint {
	o.pendingOrder = o.pendingOrder[:0]
	for _, lst := range o.pending {
		o.pendingOrder = append(o.pendingOrder, lst...)
	}
	sort.Slice(o.pendingOrder, func(a, b int) bool {
		return o.pendingOrder[a].seq < o.pendingOrder[b].seq
	})
	return o.pendingOrder
}

// modelAsk fits the surrogate and maximizes the acquisition over a random
// candidate pool, scoring the whole pool in one PredictBatch call.
func (o *Optimizer) modelAsk() []float64 {
	// Training set: evaluated points plus constant-liar pending points, in
	// buffers reused across Asks.
	o.trainX = append(o.trainX[:0], o.X...)
	o.trainY = append(o.trainY[:0], o.y...)
	if o.nPending > 0 {
		liar := o.bestY()
		for _, p := range o.orderedPending() {
			o.trainX = append(o.trainX, p.u)
			o.trainY = append(o.trainY, liar)
		}
	}
	seed := o.rng.Int63()
	if rs, ok := o.model.(surrogate.Reseeder); ok {
		rs.Reseed(seed)
	} else {
		o.model = o.factory(rngutil.New(seed))
	}
	model := o.model
	if err := model.Fit(o.trainX, o.trainY); err != nil {
		return o.randomUntracked()
	}
	best := o.bestY()

	units, values := o.candidates()
	means, stds := surrogate.PredictBatch(model, units)
	if o.hedge != nil {
		// Find each base function's favorite candidate, pick via hedge.
		picks := make([]int, len(o.hedge.Funcs))
		hmeans := make([]float64, len(o.hedge.Funcs))
		scores := make([]float64, len(o.hedge.Funcs))
		for i := range scores {
			picks[i] = -1
			scores[i] = math.Inf(-1)
		}
		for c := range units {
			m, s := means[c], stds[c]
			for i, fn := range o.hedge.Funcs {
				if sc := fn.Score(m, s, best); sc > scores[i] {
					scores[i], picks[i], hmeans[i] = sc, c, m
				}
			}
		}
		choice := o.hedge.Choose()
		o.hedge.Update(hmeans)
		if picks[choice] < 0 {
			return o.randomUntracked()
		}
		c := picks[choice]
		_, x := o.localRefine(units[c], values[c], model, o.hedge.Funcs[choice], best)
		return x
	}
	bestIdx := -1
	bestScore := math.Inf(-1)
	for c := range units {
		if sc := o.acq.Score(means[c], stds[c], best); sc > bestScore {
			bestScore, bestIdx = sc, c
		}
	}
	if bestIdx < 0 {
		return o.randomUntracked()
	}
	_, x := o.localRefine(units[bestIdx], values[bestIdx], model, o.acq, best)
	return x
}

// localRefine hill-climbs the acquisition score from (u, x) through
// value-space neighbors (when AcqOptimizer is "sampling+local"): integer
// dimensions move ±1, floats ±2% of their range, categoricals try every
// choice. Each step enumerates all neighbor moves of the current point,
// scores them in one PredictBatch call (steepest ascent), and takes the
// best improving move. Already-proposed points are skipped. Returns the
// refined point in unit and value space; the returned slices are fresh
// copies the caller may retain.
func (o *Optimizer) localRefine(u, x []float64, model surrogate.Model, acq acquisition.Function, best float64) ([]float64, []float64) {
	cur := append([]float64(nil), u...)
	curX := append([]float64(nil), x...)
	if o.cfg.AcqOptimizer != "sampling+local" {
		return cur, curX
	}
	m0, s0 := model.PredictWithStd(cur)
	curScore := acq.Score(m0, s0, best)
	var nbrU, nbrX [][]float64
	for step := 0; step < 32; step++ {
		nbrU, nbrX = nbrU[:0], nbrX[:0]
		for j := range o.dims {
			d := o.dims[j]
			var moves []float64
			switch d.Kind {
			case space.IntKind:
				moves = []float64{curX[j] - 1, curX[j] + 1}
			case space.CategoricalKind:
				for c := 0; c < len(d.Categories); c++ {
					if float64(c) != curX[j] {
						moves = append(moves, float64(c))
					}
				}
			default:
				st := (d.High - d.Low) * 0.02
				moves = []float64{curX[j] - st, curX[j] + st}
			}
			for _, mv := range moves {
				mv = d.Clip(mv)
				if !d.Contains(mv) || mv == curX[j] {
					continue
				}
				x2 := append([]float64(nil), curX...)
				x2[j] = mv
				if o.isSeen(x2) {
					continue
				}
				u2 := append([]float64(nil), cur...)
				u2[j] = d.ToUnit(mv)
				nbrU = append(nbrU, u2)
				nbrX = append(nbrX, x2)
			}
		}
		if len(nbrU) == 0 {
			break
		}
		means, stds := surrogate.PredictBatch(model, nbrU)
		bestIdx := -1
		for i := range nbrU {
			if sc := acq.Score(means[i], stds[i], best); sc > curScore {
				curScore, bestIdx = sc, i
			}
		}
		if bestIdx < 0 {
			break
		}
		cur, curX = nbrU[bestIdx], nbrX[bestIdx]
	}
	return cur, curX
}

// candidates draws the random pool, excluding already-proposed points. It
// returns parallel slices: the canonical unit-space points handed to the
// surrogate and their value-space counterparts, converted exactly once per
// draw (per dimension: unit -> value -> canonical unit in a single pass).
// Both views are backed by buffers reused across Asks; callers must copy
// any row they retain past the next Ask.
func (o *Optimizer) candidates() (units, values [][]float64) {
	d := o.space.Len()
	nc := o.cfg.NCandidates
	if o.candUBack == nil {
		o.candUBack = make([]float64, nc*d)
		o.candXBack = make([]float64, nc*d)
		o.candU = make([][]float64, 0, nc)
		o.candX = make([][]float64, 0, nc)
	}
	o.candU, o.candX = o.candU[:0], o.candX[:0]
	for i := 0; i < nc*4 && len(o.candU) < nc; i++ {
		k := len(o.candU)
		urow := o.candUBack[k*d : (k+1)*d : (k+1)*d]
		xrow := o.candXBack[k*d : (k+1)*d : (k+1)*d]
		for j := 0; j < d; j++ {
			xv := o.dims[j].FromUnit(o.rng.Float64())
			xrow[j] = xv
			urow[j] = o.dims[j].ToUnit(xv)
		}
		if o.isSeen(xrow) {
			continue
		}
		o.candU = append(o.candU, urow)
		o.candX = append(o.candX, xrow)
	}
	return o.candU, o.candX
}

func (o *Optimizer) randomUntracked() []float64 {
	u := make([]float64, o.space.Len())
	for j := range u {
		u[j] = o.rng.Float64()
	}
	return o.space.FromUnit(u)
}

// Tell reports the objective value for a previously Asked (or external)
// point.
func (o *Optimizer) Tell(x []float64, yv float64) {
	u := o.space.ToUnit(x)
	k := o.key(x)
	// Drop the matching pending entry, if any: key-indexed, oldest first.
	if lst := o.pending[k]; len(lst) > 0 {
		if len(lst) == 1 {
			delete(o.pending, k)
		} else {
			o.pending[k] = lst[1:]
		}
		o.nPending--
	}
	o.seen[k] = struct{}{}
	o.X = append(o.X, u)
	o.y = append(o.y, yv)
}

// Best returns the best (lowest-objective) evaluated point in value space,
// or (nil, +Inf) before any Tell.
func (o *Optimizer) Best() ([]float64, float64) {
	bi, bv := -1, math.Inf(1)
	for i, v := range o.y {
		if v < bv {
			bi, bv = i, v
		}
	}
	if bi < 0 {
		return nil, bv
	}
	return o.space.FromUnit(o.X[bi]), bv
}

func (o *Optimizer) bestY() float64 {
	_, v := o.Best()
	if math.IsInf(v, 1) {
		return 0
	}
	return v
}

// SnapshotModel refits the surrogate on all evidence told so far and
// serializes it — the "intermediate models throughout training" that the
// paper's finalize() archives.
func (o *Optimizer) SnapshotModel() ([]byte, error) {
	if len(o.y) < 2 {
		return nil, fmt.Errorf("bo: need >= 2 observations to snapshot a model, have %d", len(o.y))
	}
	model := o.factory(rngutil.New(o.cfg.Seed + 999))
	if err := model.Fit(o.X, o.y); err != nil {
		return nil, err
	}
	return surrogate.Marshal(model)
}

// BestSeries returns the running best value after each Tell (the
// convergence curve reported in optimization summaries).
func (o *Optimizer) BestSeries() []float64 {
	out := make([]float64, len(o.y))
	best := math.Inf(1)
	for i, v := range o.y {
		if v < best {
			best = v
		}
		out[i] = best
	}
	return out
}

// Evaluations returns copies of all (x, y) pairs told so far, in value
// space, for the Phase III archive.
func (o *Optimizer) Evaluations() ([][]float64, []float64) {
	X := make([][]float64, len(o.X))
	for i, u := range o.X {
		X[i] = o.space.FromUnit(u)
	}
	return X, append([]float64(nil), o.y...)
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// key hashes a value-space point into the dedup key used by the seen map
// and the pending index. Integer and categorical dimensions hash their
// exact value; float dimensions are quantized to the 4 significant digits
// space.Format prints, so dedup semantics match the Format-string keys this
// replaced — without the fmt round trip and string allocation per draw.
func (o *Optimizer) key(x []float64) uint64 {
	h := uint64(fnvOffset64)
	for i, v := range x {
		switch o.dims[i].Kind {
		case space.IntKind, space.CategoricalKind:
			u := uint64(int64(v))
			for s := 0; s < 64; s += 8 {
				h ^= (u >> s) & 0xff
				h *= fnvPrime64
			}
		default:
			o.keyBuf = strconv.AppendFloat(o.keyBuf[:0], v, 'g', 4, 64)
			for _, c := range o.keyBuf {
				h ^= uint64(c)
				h *= fnvPrime64
			}
		}
		// Dimension separator, so (1, 12) and (11, 2) hash differently.
		h ^= 0xff
		h *= fnvPrime64
	}
	return h
}
