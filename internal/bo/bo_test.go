package bo

import (
	"math"
	"testing"

	"e2clab/internal/space"
)

func sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += (v - 0.3) * (v - 0.3)
	}
	return s
}

func floatSpace(d int) *space.Space {
	dims := make([]space.Dimension, d)
	for i := range dims {
		dims[i] = space.Float(string(rune('a'+i)), 0, 1)
	}
	return space.New(dims...)
}

func runLoop(t *testing.T, o *Optimizer, fn func([]float64) float64, n int) float64 {
	t.Helper()
	for i := 0; i < n; i++ {
		x := o.Ask()
		if x == nil {
			t.Fatal("Ask returned nil")
		}
		o.Tell(x, fn(x))
	}
	_, best := o.Best()
	return best
}

func TestOptimizerBeatsInitialDesign(t *testing.T) {
	for _, est := range []string{"ET", "RF", "GBRT", "GP"} {
		s := floatSpace(2)
		o, err := New(s, Config{BaseEstimator: est, NInitialPoints: 10, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		best := runLoop(t, o, sphere, 45)
		// The model phase must improve on the best of the 10-point design.
		series := o.BestSeries()
		initBest := series[9]
		if best > initBest {
			t.Errorf("%s: final best %v worse than initial design best %v", est, best, initBest)
		}
		if best > 0.05 {
			t.Errorf("%s: best %v after 45 evals, want < 0.05", est, best)
		}
	}
}

func TestAcquisitionFunctions(t *testing.T) {
	for _, acq := range []string{"EI", "PI", "LCB", "gp_hedge"} {
		s := floatSpace(2)
		o, err := New(s, Config{AcqFunc: acq, NInitialPoints: 8, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if best := runLoop(t, o, sphere, 40); best > 0.08 {
			t.Errorf("%s: best %v after 40 evals", acq, best)
		}
	}
}

func TestUnknownConfigRejected(t *testing.T) {
	s := floatSpace(1)
	if _, err := New(s, Config{BaseEstimator: "XGB"}); err == nil {
		t.Error("unknown estimator accepted")
	}
	if _, err := New(s, Config{AcqFunc: "UCBX"}); err == nil {
		t.Error("unknown acquisition accepted")
	}
	if _, err := New(s, Config{InitialPointGenerator: "magic"}); err == nil {
		t.Error("unknown generator accepted")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	mk := func() []float64 {
		s := floatSpace(2)
		o, err := New(s, Config{NInitialPoints: 6, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		runLoop(t, o, sphere, 20)
		x, _ := o.Best()
		return x
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestIntSpaceNoDuplicateProposals(t *testing.T) {
	// On the Pl@ntNet integer space, Ask must not re-propose evaluated
	// configurations (wasted testbed deployments).
	p := space.PlantNetProblem()
	o, err := New(p.Space, Config{NInitialPoints: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 30; i++ {
		x := o.Ask()
		k := p.Space.Format(x)
		if seen[k] {
			t.Fatalf("iteration %d re-proposed %s", i, k)
		}
		seen[k] = true
		// Simple separable objective with optimum at upper bounds.
		o.Tell(x, -(x[0] + x[1] + x[2] + 10*x[3]))
	}
}

func TestIntSpaceConvergesToGoodCorner(t *testing.T) {
	p := space.PlantNetProblem()
	o, err := New(p.Space, Config{NInitialPoints: 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Minimum at http=54, extract=6 (quadratic bowl).
	fn := func(x []float64) float64 {
		return math.Pow(x[0]-54, 2)/100 + math.Pow(x[3]-6, 2)
	}
	best := runLoop(t, o, fn, 60)
	x, _ := o.Best()
	if best > 1.2 {
		t.Errorf("best %v at %v, want near (54, *, *, 6)", best, x)
	}
	if math.Abs(x[3]-6) > 1 {
		t.Errorf("extract converged to %v, want 6±1", x[3])
	}
}

func TestConstantLiarParallelAsks(t *testing.T) {
	s := floatSpace(2)
	o, err := New(s, Config{NInitialPoints: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// Drain initial design.
	for i := 0; i < 4; i++ {
		x := o.Ask()
		o.Tell(x, sphere(x))
	}
	// Two parallel asks (max_concurrent=2 in Listing 1) must differ.
	a := o.Ask()
	b := o.Ask()
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Errorf("parallel asks identical: %v", a)
	}
	o.Tell(a, sphere(a))
	o.Tell(b, sphere(b))
	if o.N() != 6 {
		t.Errorf("N = %d, want 6", o.N())
	}
}

func TestBestSeriesMonotone(t *testing.T) {
	s := floatSpace(2)
	o, err := New(s, Config{NInitialPoints: 8, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	runLoop(t, o, sphere, 30)
	series := o.BestSeries()
	if len(series) != 30 {
		t.Fatalf("series length %d", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i] > series[i-1] {
			t.Fatalf("best series not monotone at %d: %v > %v", i, series[i], series[i-1])
		}
	}
}

func TestBestBeforeAnyTell(t *testing.T) {
	s := floatSpace(1)
	o, err := New(s, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	x, v := o.Best()
	if x != nil || !math.IsInf(v, 1) {
		t.Errorf("Best before Tell = %v, %v", x, v)
	}
}

func TestEvaluationsArchive(t *testing.T) {
	s := floatSpace(2)
	o, err := New(s, Config{NInitialPoints: 3, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	runLoop(t, o, sphere, 5)
	X, y := o.Evaluations()
	if len(X) != 5 || len(y) != 5 {
		t.Fatalf("archive sizes %d, %d", len(X), len(y))
	}
	// Mutating the returned slices must not corrupt the optimizer.
	y[0] = -999
	_, best := o.Best()
	if best == -999 {
		t.Error("Evaluations leaked internal state")
	}
}

func TestTellExternalPoint(t *testing.T) {
	// Users can seed the optimizer with externally evaluated points (e.g.
	// the production baseline configuration).
	p := space.PlantNetProblem()
	o, err := New(p.Space, Config{NInitialPoints: 2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	baseline := []float64{40, 40, 40, 7}
	o.Tell(baseline, 2.657)
	x, v := o.Best()
	if v != 2.657 {
		t.Errorf("Best = %v, want 2.657", v)
	}
	for i := range baseline {
		if x[i] != baseline[i] {
			t.Errorf("Best x = %v, want baseline", x)
		}
	}
}

func TestLHSInitialDesignUsed(t *testing.T) {
	s := floatSpace(2)
	o, err := New(s, Config{NInitialPoints: 16, InitialPointGenerator: "lhs", Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	// First 16 asks come from the LHS design: each dimension stratified.
	var xs []float64
	for i := 0; i < 16; i++ {
		x := o.Ask()
		o.Tell(x, sphere(x))
		xs = append(xs, x[0])
	}
	seen := make([]bool, 16)
	for _, v := range xs {
		c := int(v * 16)
		if c >= 16 || seen[c] {
			t.Fatalf("initial design not LHS-stratified (cell %d)", c)
		}
		seen[c] = true
	}
}
