package bo_test

import (
	"fmt"

	"e2clab/internal/bo"
	"e2clab/internal/space"
)

// The ask/tell loop of the paper's Listing 1: an Extra-Trees surrogate with
// LHS initial design and the gp_hedge acquisition portfolio, minimizing a
// response-time-like surface over the Pl@ntNet space.
func Example() {
	p := space.PlantNetProblem()
	opt, err := bo.New(p.Space, bo.Config{
		BaseEstimator:         "ET",
		NInitialPoints:        10,
		InitialPointGenerator: "lhs",
		AcqFunc:               "gp_hedge",
		Seed:                  1,
	})
	if err != nil {
		panic(err)
	}
	surface := func(x []float64) float64 {
		d := x[3] - 6 // extract optimum at 6
		return 2.4 + d*d/40
	}
	for i := 0; i < 40; i++ {
		x := opt.Ask()
		opt.Tell(x, surface(x))
	}
	x, y := opt.Best()
	fmt.Printf("best extract=%d resp=%.2f after %d evaluations\n", int(x[3]), y, opt.N())
	// Output:
	// best extract=6 resp=2.40 after 40 evaluations
}
