package bo

import (
	"math"
	"testing"

	"e2clab/internal/space"
)

// askSurface is a smooth engine-like response surface, cheap enough that
// the benchmark time is dominated by the optimizer itself.
func askSurface(x []float64) float64 {
	return 2.4 + math.Pow(x[0]-54, 2)/800 + math.Pow(x[1]-54, 2)/3000 +
		math.Pow(x[2]-53, 2)/2500 + math.Pow(x[3]-6, 2)/40
}

// BenchmarkAskLoop measures a full ask/tell optimization loop — surrogate
// refit plus acquisition maximization over the default 1000-candidate pool
// each iteration — the per-cycle cost Listing 1 pays for every model
// evaluation.
func BenchmarkAskLoop(b *testing.B) {
	for _, est := range []string{"ET", "GBRT", "GP"} {
		b.Run(est, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt, err := New(space.PlantNetProblem().Space, Config{
					BaseEstimator: est, NInitialPoints: 10, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 30; k++ {
					x := opt.Ask()
					opt.Tell(x, askSurface(x))
				}
			}
		})
	}
}

// BenchmarkAskLoopLocalRefine exercises the "sampling+local" acquisition
// optimizer, whose neighbor scoring now also goes through PredictBatch.
func BenchmarkAskLoopLocalRefine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt, err := New(space.PlantNetProblem().Space, Config{
			BaseEstimator: "ET", NInitialPoints: 10,
			AcqOptimizer: "sampling+local", Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 30; k++ {
			x := opt.Ask()
			opt.Tell(x, askSurface(x))
		}
	}
}
