package metaheur

import (
	"math"
	"testing"

	"e2clab/internal/space"
)

// schaffer is the classic two-objective benchmark: f1 = x², f2 = (x-2)².
// Its Pareto set is x in [0, 2].
func schaffer(x []float64) []float64 {
	return []float64{x[0] * x[0], (x[0] - 2) * (x[0] - 2)}
}

func TestNSGA2SchafferFront(t *testing.T) {
	s := space.New(space.Float("x", -5, 5))
	front := NSGA2{Seed: 3}.MinimizeMulti(s, schaffer, 60)
	if len(front) < 10 {
		t.Fatalf("front has %d points, want a spread", len(front))
	}
	for _, p := range front {
		if p.X[0] < -0.15 || p.X[0] > 2.15 {
			t.Errorf("front point x=%.3f outside Pareto set [0,2]", p.X[0])
		}
	}
	// The front should cover both extremes reasonably.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range front {
		lo = math.Min(lo, p.X[0])
		hi = math.Max(hi, p.X[0])
	}
	if lo > 0.5 || hi < 1.5 {
		t.Errorf("front spans [%.2f, %.2f], want ~[0, 2]", lo, hi)
	}
}

func TestNSGA2FrontIsNonDominated(t *testing.T) {
	s := space.New(space.Float("a", 0, 1), space.Float("b", 0, 1))
	fn := func(x []float64) []float64 {
		return []float64{x[0], 1 - x[0] + 0.3*x[1]}
	}
	front := NSGA2{Seed: 7}.MinimizeMulti(s, fn, 40)
	for i, a := range front {
		for j, b := range front {
			if i != j && dominatesVec(a.Y, b.Y) {
				t.Fatalf("front point %d dominates %d: %v vs %v", i, j, a.Y, b.Y)
			}
		}
	}
}

func TestNSGA2Deterministic(t *testing.T) {
	s := space.New(space.Float("x", -5, 5))
	a := NSGA2{Seed: 11}.MinimizeMulti(s, schaffer, 20)
	b := NSGA2{Seed: 11}.MinimizeMulti(s, schaffer, 20)
	if len(a) != len(b) {
		t.Fatalf("same seed different front sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].X[0] != b[i].X[0] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestNSGA2IntegerSpace(t *testing.T) {
	// Placement-style problem over a categorical/int space: trade off two
	// costs with opposite monotonicity.
	s := space.New(space.Int("place", 0, 10))
	fn := func(x []float64) []float64 {
		return []float64{x[0], 10 - x[0]}
	}
	front := NSGA2{Seed: 5, PopSize: 30}.MinimizeMulti(s, fn, 30)
	// Every integer value is Pareto-optimal here; the front should find
	// several distinct ones and stay integer.
	if len(front) < 5 {
		t.Errorf("front found %d of 11 optimal placements", len(front))
	}
	for _, p := range front {
		if p.X[0] != math.Round(p.X[0]) {
			t.Errorf("non-integer solution %v", p.X)
		}
	}
}

func TestRankAndCrowd(t *testing.T) {
	mk := func(y ...float64) *nsgaInd { return &nsgaInd{y: y} }
	pop := []*nsgaInd{
		mk(1, 1), // rank 0
		mk(2, 2), // dominated by (1,1) -> rank 1
		mk(0, 3), // rank 0 (incomparable with (1,1))
		mk(3, 3), // dominated by all above -> rank 2? dominated by (2,2) and (1,1)
	}
	rankAndCrowd(pop)
	if pop[0].rank != 0 || pop[2].rank != 0 {
		t.Errorf("rank-0 wrong: %d %d", pop[0].rank, pop[2].rank)
	}
	if pop[1].rank != 1 {
		t.Errorf("(2,2) rank = %d, want 1", pop[1].rank)
	}
	if pop[3].rank != 2 {
		t.Errorf("(3,3) rank = %d, want 2", pop[3].rank)
	}
	// Boundary points of a front get infinite crowding.
	if !math.IsInf(pop[0].crowd, 1) || !math.IsInf(pop[2].crowd, 1) {
		t.Error("front extremes should have infinite crowding")
	}
}
