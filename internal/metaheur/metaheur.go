// Package metaheur implements the evolutionary and swarm-intelligence
// optimizers the paper's Phase II prescribes for short-time running
// applications: Genetic Algorithm, Differential Evolution, Simulated
// Annealing, and Particle Swarm Optimization.
//
// All algorithms minimize a black-box objective over a space.Space within a
// fixed evaluation budget, operate internally in the unit hypercube, and are
// deterministic given their seed.
package metaheur

import (
	"math"
	"math/rand"

	"e2clab/internal/rngutil"
	"e2clab/internal/space"
)

// Result reports the outcome of one optimization run.
type Result struct {
	// X is the best point found, in value space.
	X []float64
	// Y is the objective value at X.
	Y float64
	// Evals is the number of objective evaluations spent.
	Evals int
	// History is the running best value after each evaluation (convergence
	// curve for the reproducibility summary).
	History []float64
}

// Algorithm is a budgeted black-box minimizer.
type Algorithm interface {
	// Minimize runs up to budget objective evaluations of fn (value-space
	// input) over s.
	Minimize(s *space.Space, fn func([]float64) float64, budget int) Result
	// Name identifies the algorithm in summaries.
	Name() string
}

// tracker accumulates evaluations and the convergence history.
type tracker struct {
	s       *space.Space
	fn      func([]float64) float64
	budget  int
	evals   int
	bestX   []float64
	bestY   float64
	history []float64
}

func newTracker(s *space.Space, fn func([]float64) float64, budget int) *tracker {
	return &tracker{s: s, fn: fn, budget: budget, bestY: math.Inf(1)}
}

// eval evaluates a unit-space point; returns +Inf without evaluating when
// the budget is exhausted.
func (t *tracker) eval(u []float64) float64 {
	if t.evals >= t.budget {
		return math.Inf(1)
	}
	x := t.s.FromUnit(u)
	y := t.fn(x)
	t.evals++
	if y < t.bestY {
		t.bestY = y
		t.bestX = x
	}
	t.history = append(t.history, t.bestY)
	return y
}

func (t *tracker) done() bool { return t.evals >= t.budget }

func (t *tracker) result() Result {
	return Result{X: t.bestX, Y: t.bestY, Evals: t.evals, History: t.history}
}

func randomUnit(r *rand.Rand, d int) []float64 {
	u := make([]float64, d)
	for i := range u {
		u[i] = r.Float64()
	}
	return u
}

func clampUnit(u []float64) {
	for i, v := range u {
		if v < 0 {
			u[i] = 0
		}
		if v > 1 {
			u[i] = 1
		}
	}
}

// Penalized wraps an objective with the problem's constraint-violation
// penalty so that constrained problems can be handled by any unconstrained
// algorithm in this package.
func Penalized(p *space.Problem, fn func([]float64) float64, weight float64) func([]float64) float64 {
	if weight <= 0 {
		weight = 1e6
	}
	return func(x []float64) float64 {
		if v := p.Violation(x); v > 0 {
			return fn(x) + weight*v
		}
		return fn(x)
	}
}

// GA is a real-coded genetic algorithm with tournament selection, BLX-alpha
// crossover, Gaussian mutation, and elitism.
type GA struct {
	PopSize    int
	Alpha      float64 // BLX-alpha blend range (default 0.3)
	MutProb    float64 // per-gene mutation probability (default 1/d)
	MutSigma   float64 // mutation std in unit space (default 0.1)
	Tournament int     // tournament size (default 3)
	Elite      int     // elites carried over (default 1)
	Seed       int64
}

// Name implements Algorithm.
func (GA) Name() string { return "ga" }

// Minimize implements Algorithm.
func (g GA) Minimize(s *space.Space, fn func([]float64) float64, budget int) Result {
	d := s.Len()
	pop := g.PopSize
	if pop <= 0 {
		pop = 20
	}
	alpha := g.Alpha
	if alpha <= 0 {
		alpha = 0.3
	}
	mutProb := g.MutProb
	if mutProb <= 0 {
		mutProb = 1 / float64(d)
	}
	sigma := g.MutSigma
	if sigma <= 0 {
		sigma = 0.1
	}
	tourn := g.Tournament
	if tourn <= 1 {
		tourn = 3
	}
	elite := g.Elite
	if elite < 0 {
		elite = 1
	}
	r := rngutil.New(g.Seed + 1)
	t := newTracker(s, fn, budget)

	type ind struct {
		u []float64
		y float64
	}
	cur := make([]ind, pop)
	for i := range cur {
		cur[i].u = randomUnit(r, d)
		cur[i].y = t.eval(cur[i].u)
	}
	pick := func() ind {
		best := cur[r.Intn(pop)]
		for k := 1; k < tourn; k++ {
			c := cur[r.Intn(pop)]
			if c.y < best.y {
				best = c
			}
		}
		return best
	}
	for !t.done() {
		next := make([]ind, 0, pop)
		// Elitism: copy the best individuals unchanged (no re-evaluation).
		order := make([]int, pop)
		for i := range order {
			order[i] = i
		}
		for i := 0; i < elite && i < pop; i++ {
			bi := i
			for j := i + 1; j < pop; j++ {
				if cur[order[j]].y < cur[order[bi]].y {
					bi = j
				}
			}
			order[i], order[bi] = order[bi], order[i]
			next = append(next, cur[order[i]])
		}
		for len(next) < pop && !t.done() {
			p1, p2 := pick(), pick()
			child := make([]float64, d)
			for j := 0; j < d; j++ {
				lo, hi := p1.u[j], p2.u[j]
				if lo > hi {
					lo, hi = hi, lo
				}
				span := hi - lo
				child[j] = lo - alpha*span + r.Float64()*(span+2*alpha*span)
				if r.Float64() < mutProb {
					child[j] += r.NormFloat64() * sigma
				}
			}
			clampUnit(child)
			next = append(next, ind{u: child, y: t.eval(child)})
		}
		if len(next) == pop {
			cur = next
		}
	}
	return t.result()
}

// DE is Differential Evolution, DE/rand/1/bin.
type DE struct {
	PopSize int
	F       float64 // differential weight (default 0.5)
	CR      float64 // crossover rate (default 0.9)
	Seed    int64
}

// Name implements Algorithm.
func (DE) Name() string { return "de" }

// Minimize implements Algorithm.
func (de DE) Minimize(s *space.Space, fn func([]float64) float64, budget int) Result {
	d := s.Len()
	pop := de.PopSize
	if pop <= 0 {
		pop = 4 * d
		if pop < 8 {
			pop = 8
		}
	}
	f := de.F
	if f <= 0 {
		f = 0.5
	}
	cr := de.CR
	if cr <= 0 {
		cr = 0.9
	}
	r := rngutil.New(de.Seed + 1)
	t := newTracker(s, fn, budget)

	us := make([][]float64, pop)
	ys := make([]float64, pop)
	for i := range us {
		us[i] = randomUnit(r, d)
		ys[i] = t.eval(us[i])
	}
	for !t.done() {
		for i := 0; i < pop && !t.done(); i++ {
			// Three distinct donors, all different from i.
			a, b, c := i, i, i
			for a == i {
				a = r.Intn(pop)
			}
			for b == i || b == a {
				b = r.Intn(pop)
			}
			for c == i || c == a || c == b {
				c = r.Intn(pop)
			}
			trial := make([]float64, d)
			jRand := r.Intn(d)
			for j := 0; j < d; j++ {
				if j == jRand || r.Float64() < cr {
					trial[j] = us[a][j] + f*(us[b][j]-us[c][j])
				} else {
					trial[j] = us[i][j]
				}
			}
			clampUnit(trial)
			if y := t.eval(trial); y <= ys[i] {
				us[i], ys[i] = trial, y
			}
		}
	}
	return t.result()
}

// SA is simulated annealing with Gaussian moves and geometric cooling.
type SA struct {
	T0      float64 // initial temperature (default: auto from first moves)
	Cooling float64 // geometric cooling factor per evaluation (default 0.995)
	Sigma   float64 // move std in unit space (default 0.15)
	Seed    int64
}

// Name implements Algorithm.
func (SA) Name() string { return "sa" }

// Minimize implements Algorithm.
func (sa SA) Minimize(s *space.Space, fn func([]float64) float64, budget int) Result {
	d := s.Len()
	cooling := sa.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.995
	}
	sigma := sa.Sigma
	if sigma <= 0 {
		sigma = 0.15
	}
	r := rngutil.New(sa.Seed + 1)
	t := newTracker(s, fn, budget)

	cur := randomUnit(r, d)
	curY := t.eval(cur)
	temp := sa.T0
	if temp <= 0 {
		temp = math.Abs(curY)*0.3 + 1e-3
	}
	// The move size anneals with the temperature so late iterations refine
	// locally instead of hopping at the initial scale.
	step := sigma
	for !t.done() {
		cand := make([]float64, d)
		for j := range cand {
			cand[j] = cur[j] + r.NormFloat64()*step
		}
		clampUnit(cand)
		y := t.eval(cand)
		if y <= curY || r.Float64() < math.Exp((curY-y)/temp) {
			cur, curY = cand, y
		}
		temp *= cooling
		if temp < 1e-12 {
			temp = 1e-12
		}
		step *= cooling
		if step < sigma*0.02 {
			step = sigma * 0.02
		}
	}
	return t.result()
}

// PSO is global-best particle swarm optimization with the standard
// constriction coefficients.
type PSO struct {
	Swarm   int     // particles (default 20)
	Inertia float64 // w (default 0.729)
	C1, C2  float64 // cognitive/social (default 1.49445)
	VMax    float64 // velocity clamp in unit space (default 0.25)
	Seed    int64
}

// Name implements Algorithm.
func (PSO) Name() string { return "pso" }

// Minimize implements Algorithm.
func (p PSO) Minimize(s *space.Space, fn func([]float64) float64, budget int) Result {
	d := s.Len()
	n := p.Swarm
	if n <= 0 {
		n = 20
	}
	w := p.Inertia
	if w <= 0 {
		w = 0.729
	}
	c1, c2 := p.C1, p.C2
	if c1 <= 0 {
		c1 = 1.49445
	}
	if c2 <= 0 {
		c2 = 1.49445
	}
	vmax := p.VMax
	if vmax <= 0 {
		vmax = 0.25
	}
	r := rngutil.New(p.Seed + 1)
	t := newTracker(s, fn, budget)

	pos := make([][]float64, n)
	vel := make([][]float64, n)
	pbest := make([][]float64, n)
	pbestY := make([]float64, n)
	var gbest []float64
	gbestY := math.Inf(1)
	for i := 0; i < n; i++ {
		pos[i] = randomUnit(r, d)
		vel[i] = make([]float64, d)
		for j := range vel[i] {
			vel[i][j] = (r.Float64()*2 - 1) * vmax
		}
		y := t.eval(pos[i])
		pbest[i] = append([]float64(nil), pos[i]...)
		pbestY[i] = y
		if y < gbestY {
			gbestY = y
			gbest = append([]float64(nil), pos[i]...)
		}
	}
	for !t.done() {
		for i := 0; i < n && !t.done(); i++ {
			for j := 0; j < d; j++ {
				vel[i][j] = w*vel[i][j] +
					c1*r.Float64()*(pbest[i][j]-pos[i][j]) +
					c2*r.Float64()*(gbest[j]-pos[i][j])
				if vel[i][j] > vmax {
					vel[i][j] = vmax
				}
				if vel[i][j] < -vmax {
					vel[i][j] = -vmax
				}
				pos[i][j] += vel[i][j]
			}
			clampUnit(pos[i])
			y := t.eval(pos[i])
			if y < pbestY[i] {
				pbestY[i] = y
				copy(pbest[i], pos[i])
				if y < gbestY {
					gbestY = y
					copy(gbest, pos[i])
				}
			}
		}
	}
	return t.result()
}
