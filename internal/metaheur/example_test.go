package metaheur_test

import (
	"fmt"

	"e2clab/internal/metaheur"
	"e2clab/internal/space"
)

// Differential evolution on the Pl@ntNet integer space: the Phase II choice
// for short-time running applications.
func ExampleDE() {
	p := space.PlantNetProblem()
	surface := func(x []float64) float64 {
		d := x[3] - 6
		return 2.4 + d*d/40
	}
	res := metaheur.DE{Seed: 2}.Minimize(p.Space, surface, 800)
	fmt.Printf("extract=%d resp=%.2f after %d evaluations\n", int(res.X[3]), res.Y, res.Evals)
	// Output:
	// extract=6 resp=2.40 after 800 evaluations
}

// NSGA-II on a two-objective trade-off returns the whole Pareto front in
// one run.
func ExampleNSGA2() {
	s := space.New(space.Int("placement", 0, 4))
	fn := func(x []float64) []float64 {
		return []float64{x[0], 4 - x[0]} // every placement is Pareto-optimal
	}
	front := metaheur.NSGA2{Seed: 3, PopSize: 20}.MinimizeMulti(s, fn, 25)
	fmt.Println("front size:", len(front))
	// Output:
	// front size: 5
}
