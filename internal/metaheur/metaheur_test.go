package metaheur

import (
	"math"
	"testing"

	"e2clab/internal/space"
)

// Standard test functions over value space.
func sphereAt(c float64) func([]float64) float64 {
	return func(x []float64) float64 {
		var s float64
		for _, v := range x {
			s += (v - c) * (v - c)
		}
		return s
	}
}

func rastrigin(x []float64) float64 {
	s := 10 * float64(len(x))
	for _, v := range x {
		s += v*v - 10*math.Cos(2*math.Pi*v)
	}
	return s
}

func floatSpace(d int, lo, hi float64) *space.Space {
	dims := make([]space.Dimension, d)
	for i := range dims {
		dims[i] = space.Float(string(rune('a'+i)), lo, hi)
	}
	return space.New(dims...)
}

func algorithms(seed int64) []Algorithm {
	return []Algorithm{
		GA{Seed: seed},
		DE{Seed: seed},
		SA{Seed: seed},
		PSO{Seed: seed},
	}
}

func TestAllAlgorithmsSolveSphere(t *testing.T) {
	s := floatSpace(3, -5, 5)
	for _, alg := range algorithms(3) {
		res := alg.Minimize(s, sphereAt(1.2), 2000)
		if res.Y > 0.05 {
			t.Errorf("%s: best %v after %d evals, want < 0.05 (x=%v)", alg.Name(), res.Y, res.Evals, res.X)
		}
		for _, v := range res.X {
			if math.Abs(v-1.2) > 0.5 {
				t.Errorf("%s: solution %v far from optimum 1.2", alg.Name(), res.X)
			}
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	s := floatSpace(2, 0, 1)
	for _, alg := range algorithms(5) {
		count := 0
		fn := func(x []float64) float64 { count++; return sphereAt(0.5)(x) }
		res := alg.Minimize(s, fn, 137)
		if count != 137 {
			t.Errorf("%s: %d evaluations, budget 137", alg.Name(), count)
		}
		if res.Evals != 137 {
			t.Errorf("%s: Evals = %d", alg.Name(), res.Evals)
		}
		if len(res.History) != 137 {
			t.Errorf("%s: history length %d", alg.Name(), len(res.History))
		}
	}
}

func TestHistoryMonotoneNonIncreasing(t *testing.T) {
	s := floatSpace(2, -3, 3)
	for _, alg := range algorithms(7) {
		res := alg.Minimize(s, rastrigin, 500)
		for i := 1; i < len(res.History); i++ {
			if res.History[i] > res.History[i-1] {
				t.Fatalf("%s: history increased at %d", alg.Name(), i)
			}
		}
		if res.History[len(res.History)-1] != res.Y {
			t.Errorf("%s: final history %v != Y %v", alg.Name(), res.History[len(res.History)-1], res.Y)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	s := floatSpace(2, -2, 2)
	for _, mk := range []func(int64) Algorithm{
		func(seed int64) Algorithm { return GA{Seed: seed} },
		func(seed int64) Algorithm { return DE{Seed: seed} },
		func(seed int64) Algorithm { return SA{Seed: seed} },
		func(seed int64) Algorithm { return PSO{Seed: seed} },
	} {
		a := mk(9).Minimize(s, rastrigin, 300)
		b := mk(9).Minimize(s, rastrigin, 300)
		if a.Y != b.Y {
			t.Errorf("%s: same seed, different results %v vs %v", mk(9).Name(), a.Y, b.Y)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	s := floatSpace(2, -2, 2)
	a := DE{Seed: 1}.Minimize(s, rastrigin, 100)
	b := DE{Seed: 2}.Minimize(s, rastrigin, 100)
	if a.Y == b.Y && a.X[0] == b.X[0] {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestDEOnRastrigin(t *testing.T) {
	// DE is the strongest of the four on multimodal functions; it should
	// get close to the global optimum at 0.
	s := floatSpace(2, -5.12, 5.12)
	res := DE{Seed: 4, PopSize: 20}.Minimize(s, rastrigin, 4000)
	if res.Y > 1.0 {
		t.Errorf("DE on rastrigin: %v, want < 1.0", res.Y)
	}
}

func TestIntegerSpace(t *testing.T) {
	// The Pl@ntNet space is integer-valued; solutions must be integers in
	// bounds.
	p := space.PlantNetProblem()
	fn := func(x []float64) float64 {
		return math.Abs(x[0]-54) + math.Abs(x[1]-54) + math.Abs(x[2]-53) + 10*math.Abs(x[3]-6)
	}
	for _, alg := range algorithms(11) {
		res := alg.Minimize(p.Space, fn, 1500)
		if !p.Space.Contains(res.X) {
			t.Errorf("%s: solution %v not in space", alg.Name(), res.X)
		}
		if res.Y > 6 {
			t.Errorf("%s: best %v (x=%v), want near optimum", alg.Name(), res.Y, res.X)
		}
	}
}

func TestPenalizedConstraintHandling(t *testing.T) {
	p := space.PlantNetProblem()
	p.AddConstraint("http_le_40", func(x []float64) float64 { return x[0] - 40 })
	// Unconstrained optimum at http=60, but constraint forces http<=40.
	fn := Penalized(p, func(x []float64) float64 { return -x[0] }, 1e6)
	res := DE{Seed: 13}.Minimize(p.Space, fn, 1500)
	if res.X[0] > 40 {
		t.Errorf("constraint violated: http=%v", res.X[0])
	}
	if res.X[0] < 39 {
		t.Errorf("over-penalized: http=%v, want 40", res.X[0])
	}
}

func TestPenalizedNoPenaltyWhenFeasible(t *testing.T) {
	p := space.PlantNetProblem()
	fn := Penalized(p, func(x []float64) float64 { return 7 }, 1e6)
	if got := fn([]float64{40, 40, 40, 7}); got != 7 {
		t.Errorf("feasible point penalized: %v", got)
	}
}

func TestSmallBudgetSafe(t *testing.T) {
	s := floatSpace(2, 0, 1)
	for _, alg := range algorithms(15) {
		res := alg.Minimize(s, sphereAt(0.5), 3)
		if res.Evals != 3 || res.X == nil {
			t.Errorf("%s: tiny budget mishandled: %+v", alg.Name(), res)
		}
	}
}

func TestTabuSolvesSphere(t *testing.T) {
	s := floatSpace(3, -5, 5)
	res := Tabu{Seed: 21}.Minimize(s, sphereAt(1.2), 3000)
	if res.Y > 0.1 {
		t.Errorf("tabu best %v (x=%v)", res.Y, res.X)
	}
}

func TestTabuBudgetAndDeterminism(t *testing.T) {
	s := floatSpace(2, -2, 2)
	count := 0
	fn := func(x []float64) float64 { count++; return rastrigin(x) }
	a := Tabu{Seed: 4}.Minimize(s, fn, 250)
	if count != 250 || a.Evals != 250 {
		t.Errorf("evals = %d/%d", count, a.Evals)
	}
	b := Tabu{Seed: 4}.Minimize(s, rastrigin, 250)
	if a.Y != b.Y {
		t.Error("tabu not deterministic for seed")
	}
}

func TestTabuEscapesRevisits(t *testing.T) {
	// On a small integer space, tabu memory must keep the search moving:
	// it should visit many distinct configurations, not oscillate.
	s := space.New(space.Int("a", 0, 9), space.Int("b", 0, 9))
	visited := map[string]int{}
	fn := func(x []float64) float64 {
		visited[s.Format(x)]++
		return math.Abs(x[0]-5) + math.Abs(x[1]-5)
	}
	res := Tabu{Seed: 6, Sigma: 0.2}.Minimize(s, fn, 400)
	if res.Y != 0 {
		t.Errorf("tabu missed the optimum on a 100-point space: %v", res.Y)
	}
	if len(visited) < 30 {
		t.Errorf("tabu visited only %d distinct configs", len(visited))
	}
}
