package metaheur

import (
	"math"

	"e2clab/internal/rngutil"
	"e2clab/internal/space"
)

// Tabu is tabu search, the remaining technique of the paper's
// "Intelligent optimisation techniques" reference [13]: local search with a
// short-term memory of recently visited configurations that may not be
// revisited, plus the standard aspiration criterion (a tabu move is allowed
// if it improves on the global best).
type Tabu struct {
	// Tenure is how many recent configurations stay tabu (default 25).
	Tenure int
	// Neighbors is the candidate moves evaluated per iteration (default 15).
	Neighbors int
	// Sigma is the move size in unit space (default 0.12).
	Sigma float64
	Seed  int64
}

// Name implements Algorithm.
func (Tabu) Name() string { return "tabu" }

// Minimize implements Algorithm.
func (tb Tabu) Minimize(s *space.Space, fn func([]float64) float64, budget int) Result {
	d := s.Len()
	tenure := tb.Tenure
	if tenure <= 0 {
		tenure = 25
	}
	neighbors := tb.Neighbors
	if neighbors <= 0 {
		neighbors = 15
	}
	sigma := tb.Sigma
	if sigma <= 0 {
		sigma = 0.12
	}
	r := rngutil.New(tb.Seed + 1)
	t := newTracker(s, fn, budget)

	cur := randomUnit(r, d)
	t.eval(cur)
	tabuList := make([]string, 0, tenure)
	tabuSet := map[string]bool{s.Format(s.FromUnit(cur)): true}
	pushTabu := func(key string) {
		tabuList = append(tabuList, key)
		tabuSet[key] = true
		if len(tabuList) > tenure {
			old := tabuList[0]
			tabuList = tabuList[1:]
			delete(tabuSet, old)
		}
	}

	for !t.done() {
		bestU := []float64(nil)
		bestY := math.Inf(1)
		bestKey := ""
		for k := 0; k < neighbors && !t.done(); k++ {
			cand := make([]float64, d)
			for j := range cand {
				cand[j] = cur[j] + r.NormFloat64()*sigma
			}
			clampUnit(cand)
			key := s.Format(s.FromUnit(cand))
			y := t.eval(cand)
			// Tabu unless aspiration (beats the global best).
			if tabuSet[key] && y >= t.bestY {
				continue
			}
			if y < bestY {
				bestU, bestY, bestKey = cand, y, key
			}
		}
		if bestU == nil {
			// Entire neighborhood tabu: diversify with a random restart.
			cur = randomUnit(r, d)
			t.eval(cur)
			continue
		}
		cur = bestU
		pushTabu(bestKey)
	}
	return t.result()
}
