package metaheur

import (
	"math"
	"sort"

	"e2clab/internal/rngutil"
	"e2clab/internal/space"
)

// MultiResult is one non-dominated solution of a multi-objective run.
type MultiResult struct {
	// X is the solution in value space.
	X []float64
	// Y is its objective vector (all minimized).
	Y []float64
}

// NSGA2 is the NSGA-II multi-objective evolutionary algorithm: fast
// non-dominated sorting, crowding-distance selection, BLX crossover and
// Gaussian mutation. It addresses the paper's Figure 4 right-hand problem
// class — single multi-objective problems like "minimize communication
// costs and end-to-end latency" — directly, without scalarization.
type NSGA2 struct {
	PopSize   int     // population size (default 40)
	Alpha     float64 // BLX-alpha blend (default 0.3)
	MutProb   float64 // per-gene mutation probability (default 1/d)
	MutSigma  float64 // mutation std in unit space (default 0.1)
	CrossProb float64 // crossover probability (default 0.9)
	Seed      int64
}

// Name identifies the algorithm.
func (NSGA2) Name() string { return "nsga2" }

type nsgaInd struct {
	u     []float64
	x     []float64
	y     []float64
	rank  int
	crowd float64
}

// MinimizeMulti evolves the population for the given number of generations
// and returns the final non-dominated front, deduplicated by decoded
// configuration.
func (n NSGA2) MinimizeMulti(s *space.Space, fn func(x []float64) []float64, generations int) []MultiResult {
	d := s.Len()
	pop := n.PopSize
	if pop <= 0 {
		pop = 40
	}
	alpha := n.Alpha
	if alpha <= 0 {
		alpha = 0.3
	}
	mutProb := n.MutProb
	if mutProb <= 0 {
		mutProb = 1 / float64(d)
	}
	sigma := n.MutSigma
	if sigma <= 0 {
		sigma = 0.1
	}
	crossProb := n.CrossProb
	if crossProb <= 0 {
		crossProb = 0.9
	}
	if generations < 1 {
		generations = 1
	}
	r := rngutil.New(n.Seed + 1)

	eval := func(u []float64) *nsgaInd {
		x := s.FromUnit(u)
		return &nsgaInd{u: u, x: x, y: fn(x)}
	}
	cur := make([]*nsgaInd, pop)
	for i := range cur {
		cur[i] = eval(randomUnit(r, d))
	}
	rankAndCrowd(cur)

	for g := 0; g < generations; g++ {
		// Offspring via binary tournament + BLX + mutation.
		off := make([]*nsgaInd, 0, pop)
		pick := func() *nsgaInd {
			a, b := cur[r.Intn(pop)], cur[r.Intn(pop)]
			if better(a, b) {
				return a
			}
			return b
		}
		for len(off) < pop {
			p1, p2 := pick(), pick()
			child := make([]float64, d)
			for j := 0; j < d; j++ {
				if r.Float64() < crossProb {
					lo, hi := p1.u[j], p2.u[j]
					if lo > hi {
						lo, hi = hi, lo
					}
					span := hi - lo
					child[j] = lo - alpha*span + r.Float64()*(span+2*alpha*span)
				} else {
					child[j] = p1.u[j]
				}
				if r.Float64() < mutProb {
					child[j] += r.NormFloat64() * sigma
				}
			}
			clampUnit(child)
			off = append(off, eval(child))
		}
		// Environmental selection over parents + offspring.
		union := append(append([]*nsgaInd(nil), cur...), off...)
		rankAndCrowd(union)
		sort.SliceStable(union, func(i, j int) bool { return better(union[i], union[j]) })
		cur = union[:pop]
		rankAndCrowd(cur)
	}

	// Extract the rank-0 front, deduplicated by decoded point.
	seen := map[string]bool{}
	var out []MultiResult
	for _, ind := range cur {
		if ind.rank != 0 {
			continue
		}
		key := s.Format(ind.x)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, MultiResult{
			X: append([]float64(nil), ind.x...),
			Y: append([]float64(nil), ind.y...),
		})
	}
	return out
}

// better orders individuals by (rank asc, crowding desc) — NSGA-II's
// crowded-comparison operator.
func better(a, b *nsgaInd) bool {
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.crowd > b.crowd
}

// dominatesVec reports Pareto dominance for minimization.
func dominatesVec(a, b []float64) bool {
	strictly := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strictly = true
		}
	}
	return strictly
}

// rankAndCrowd assigns non-domination ranks (fast non-dominated sort) and
// crowding distances in place.
func rankAndCrowd(pop []*nsgaInd) {
	n := len(pop)
	domCount := make([]int, n)
	dominated := make([][]int, n)
	var fronts [][]int
	var first []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if dominatesVec(pop[i].y, pop[j].y) {
				dominated[i] = append(dominated[i], j)
			} else if dominatesVec(pop[j].y, pop[i].y) {
				domCount[i]++
			}
		}
		if domCount[i] == 0 {
			pop[i].rank = 0
			first = append(first, i)
		}
	}
	fronts = append(fronts, first)
	for f := 0; len(fronts[f]) > 0; f++ {
		var next []int
		for _, i := range fronts[f] {
			for _, j := range dominated[i] {
				domCount[j]--
				if domCount[j] == 0 {
					pop[j].rank = f + 1
					next = append(next, j)
				}
			}
		}
		fronts = append(fronts, next)
	}
	// Crowding distance per front, per objective.
	for _, front := range fronts {
		if len(front) == 0 {
			continue
		}
		for _, i := range front {
			pop[i].crowd = 0
		}
		m := len(pop[front[0]].y)
		for obj := 0; obj < m; obj++ {
			idx := append([]int(nil), front...)
			sort.Slice(idx, func(a, b int) bool { return pop[idx[a]].y[obj] < pop[idx[b]].y[obj] })
			lo, hi := pop[idx[0]].y[obj], pop[idx[len(idx)-1]].y[obj]
			pop[idx[0]].crowd = math.Inf(1)
			pop[idx[len(idx)-1]].crowd = math.Inf(1)
			if hi <= lo {
				continue
			}
			for k := 1; k < len(idx)-1; k++ {
				pop[idx[k]].crowd += (pop[idx[k+1]].y[obj] - pop[idx[k-1]].y[obj]) / (hi - lo)
			}
		}
	}
}
