package sensitivity

import (
	"math"
	"testing"

	"e2clab/internal/space"
)

func quad(opt []float64, weights []float64) func([]float64) float64 {
	return func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - opt[i]
			s += weights[i] * d * d
		}
		return s
	}
}

func TestOATSweepExtract(t *testing.T) {
	p := space.PlantNetProblem()
	center := []float64{54, 54, 53, 7}
	// Objective with extract optimum at 6.
	fn := func(x []float64) float64 { return math.Abs(x[3] - 6) }
	r, err := OAT(p.Space, center, "extract", 2, fn)
	if err != nil {
		t.Fatal(err)
	}
	// extract 7 ± 2 -> values 5..9: 5 points, the paper's Figure 9 sweep.
	if len(r.Points) != 5 {
		t.Fatalf("points = %d, want 5", len(r.Points))
	}
	for i, want := range []float64{5, 6, 7, 8, 9} {
		if r.Points[i].Value != want {
			t.Errorf("point %d value %v, want %v", i, r.Points[i].Value, want)
		}
		// All other dims stay at the center.
		for j := 0; j < 3; j++ {
			if r.Points[i].X[j] != center[j] {
				t.Errorf("point %d mutated dim %d", i, j)
			}
		}
	}
	if best := r.Best(); best.Value != 6 {
		t.Errorf("Best = %v, want 6", best.Value)
	}
	if r.Range() != 3 {
		t.Errorf("Range = %v, want 3", r.Range())
	}
}

func TestOATClippingAtBounds(t *testing.T) {
	p := space.PlantNetProblem()
	center := []float64{54, 54, 53, 9} // extract at its upper bound
	fn := func(x []float64) float64 { return x[3] }
	r, err := OAT(p.Space, center, "extract", 2, fn)
	if err != nil {
		t.Fatal(err)
	}
	// 9 ± 2 clips to {7, 8, 9}: duplicates removed.
	if len(r.Points) != 3 {
		t.Errorf("points = %d, want 3 after clipping", len(r.Points))
	}
}

func TestOATErrors(t *testing.T) {
	p := space.PlantNetProblem()
	fn := func(x []float64) float64 { return 0 }
	if _, err := OAT(p.Space, []float64{54, 54, 53, 7}, "nope", 1, fn); err == nil {
		t.Error("unknown dimension accepted")
	}
	if _, err := OAT(p.Space, []float64{54, 54, 53, 99}, "extract", 1, fn); err == nil {
		t.Error("out-of-space center accepted")
	}
	if _, err := OAT(p.Space, []float64{54, 54, 53, 7}, "extract", 0, fn); err == nil {
		t.Error("zero delta accepted")
	}
}

// TestRefinePaperProtocol reproduces Section IV-C's refinement: sweep
// extract ±2 then simsearch ±3 from the preliminary optimum, adopting each
// best — landing on the refined optimum.
func TestRefinePaperProtocol(t *testing.T) {
	p := space.PlantNetProblem()
	center := []float64{54, 54, 53, 7}
	// Response surface with minimum at simsearch=55, extract=6.
	fn := func(x []float64) float64 {
		return 2.4 + 0.02*math.Pow(x[3]-6, 2) + 0.001*math.Pow(x[2]-55, 2)
	}
	refined, sweeps, err := Refine(p.Space, center, []string{"extract", "simsearch"}, 3, fn)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 2 {
		t.Fatalf("sweeps = %d", len(sweeps))
	}
	if refined[3] != 6 {
		t.Errorf("refined extract = %v, want 6", refined[3])
	}
	if refined[2] != 55 {
		t.Errorf("refined simsearch = %v, want 55", refined[2])
	}
	// The refined point must be at least as good as the center.
	if fn(refined) > fn(center) {
		t.Error("refinement made things worse")
	}
}

func TestMorrisRanksInfluence(t *testing.T) {
	s := space.New(
		space.Float("big", 0, 1),
		space.Float("small", 0, 1),
		space.Float("none", 0, 1),
	)
	fn := func(x []float64) float64 { return 100*x[0] + 1*x[1] + 0*x[2] }
	res, err := Morris(s, 20, 4, 7, fn)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Dimension != "big" {
		t.Errorf("most influential = %q, want big", res[0].Dimension)
	}
	if res[2].Dimension != "none" {
		t.Errorf("least influential = %q, want none", res[2].Dimension)
	}
	// Linear function: sigma ~ 0, mu ~ mu* for the positive-effect dims.
	if res[0].Sigma > 1e-6 {
		t.Errorf("linear effect has sigma %v", res[0].Sigma)
	}
	if math.Abs(res[0].Mu-res[0].MuStar) > 1e-9 {
		t.Error("monotone effect should have Mu == MuStar")
	}
}

func TestMorrisDetectsNonlinearity(t *testing.T) {
	s := space.New(space.Float("x", 0, 1), space.Float("y", 0, 1))
	// x enters quadratically (effects vary with position -> sigma > 0).
	fn := func(v []float64) float64 { return 10*(v[0]-0.5)*(v[0]-0.5) + v[1] }
	res, err := Morris(s, 30, 4, 3, fn)
	if err != nil {
		t.Fatal(err)
	}
	var xres, yres MorrisResult
	for _, r := range res {
		if r.Dimension == "x" {
			xres = r
		} else {
			yres = r
		}
	}
	if xres.Sigma <= yres.Sigma {
		t.Errorf("nonlinear dim sigma %v not above linear %v", xres.Sigma, yres.Sigma)
	}
}

func TestMorrisValidation(t *testing.T) {
	s := space.New(space.Float("x", 0, 1))
	if _, err := Morris(s, 1, 4, 1, func([]float64) float64 { return 0 }); err == nil {
		t.Error("single trajectory accepted")
	}
}

func TestMorrisIntegerSpace(t *testing.T) {
	p := space.PlantNetProblem()
	fn := quad([]float64{54, 54, 53, 6}, []float64{0.001, 0.0001, 0.0001, 1})
	res, err := Morris(p.Space, 25, 4, 11, fn)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Dimension != "extract" {
		t.Errorf("extract should dominate, got %q", res[0].Dimension)
	}
}
