package sensitivity_test

import (
	"fmt"
	"math"

	"e2clab/internal/sensitivity"
	"e2clab/internal/space"
)

// The paper's Section IV-C protocol: a One-at-a-time sweep of the extract
// pool (±2) around the preliminary optimum.
func ExampleOAT() {
	p := space.PlantNetProblem()
	center := []float64{54, 54, 53, 7}
	resp := func(x []float64) float64 { return 2.4 + 0.05*math.Abs(x[3]-6) }
	sweep, err := sensitivity.OAT(p.Space, center, "extract", 2, resp)
	if err != nil {
		panic(err)
	}
	for _, pt := range sweep.Points {
		fmt.Printf("extract=%d resp=%.2f\n", int(pt.Value), pt.Y)
	}
	fmt.Printf("best: extract=%d\n", int(sweep.Best().Value))
	// Output:
	// extract=5 resp=2.45
	// extract=6 resp=2.40
	// extract=7 resp=2.45
	// extract=8 resp=2.50
	// extract=9 resp=2.55
	// best: extract=6
}
